package clsacim

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden timeline fixtures under testdata/golden")

// TestGoldenTimelines pins the exact set-level timelines of the paper
// models under the three canonical policies (lbl, x4, xinf) at the
// coarse benchmark granularity. Any schedule drift — a policy tweak, a
// Stage I/II change, a dependency-ordering fix — shows up as an explicit
// fixture diff instead of silently shifting the paper's numbers.
//
// Regenerate after an intentional change with
//
//	go test -run TestGoldenTimelines -update .
//
// and review the fixture diff like any other code change.
func TestGoldenTimelines(t *testing.T) {
	for _, model := range []string{"tinyyolov4", "vgg16"} {
		model := model
		t.Run(model, func(t *testing.T) {
			c, err := Compile(load(t, model), Config{TargetSets: 26})
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []ScheduleMode{ModeLayerByLayer, ModeWindow(4), ModeCrossLayer} {
				rep, err := c.Schedule(mode)
				if err != nil {
					t.Fatalf("%s: %v", mode, err)
				}
				var got bytes.Buffer
				if err := rep.WriteScheduleJSON(&got); err != nil {
					t.Fatalf("%s: %v", mode, err)
				}
				path := filepath.Join("testdata", "golden", fmt.Sprintf("%s_%s.json", model, mode.Name()))
				if *update {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("%s: %v (run 'go test -run TestGoldenTimelines -update .' to create fixtures)", mode, err)
				}
				if !bytes.Equal(got.Bytes(), want) {
					t.Errorf("%s: timeline drifted from %s (%d vs %d bytes); diff line %d.\n"+
						"If the change is intentional, regenerate with -update and review the fixture diff.",
						mode, path, got.Len(), len(want), firstDiffLine(got.Bytes(), want))
				}
			}
		})
	}
}

// firstDiffLine returns the 1-based line of the first differing byte.
func firstDiffLine(a, b []byte) int {
	line := 1
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return line
		}
		if a[i] == '\n' {
			line++
		}
	}
	return line
}
