package serve

import "clsacim"

// This file defines the JSON wire schema of the service. Requests reuse
// clsacim.Request verbatim (its json tags are the wire format);
// responses get dedicated types here so the schema is stable and
// snake_case even if the in-process result structs grow fields. The
// client package decodes into these same types, so a Go caller of the
// HTTP API never sees the encoding.

// Report is the wire form of one scheduling outcome (clsacim.Report):
// the paper's per-configuration metrics.
type Report struct {
	// Model is the evaluated model's registered name.
	Model string `json:"model"`
	// Mode is the scheduling mode's wire name: "lbl", "xinf", or "x<K>".
	Mode string `json:"mode"`
	// F is the PE count of the compiled architecture (PEmin + x).
	F int `json:"f"`
	// PEMin is the minimum PE count storing every weight once.
	PEMin int `json:"pe_min"`
	// MakespanCycles is the schedule length in MVM cycles.
	MakespanCycles int64 `json:"makespan_cycles"`
	// LatencyNanos is MakespanCycles * tMVM.
	LatencyNanos float64 `json:"latency_nanos"`
	// Utilization is paper Eq. 2, in [0, 1].
	Utilization float64 `json:"utilization"`
	// Duplication is the applied weight-duplication vector d in plan
	// order.
	Duplication []int `json:"duplication,omitempty"`
	// EnergyMicroJoule is the dynamic energy estimate (0 unless the
	// engine configures EnergyPerMVMNanoJ).
	EnergyMicroJoule float64 `json:"energy_uj,omitempty"`
	// ReloadCycles is the crossbar-programming time included in the
	// makespan (weight virtualization only).
	ReloadCycles int64 `json:"reload_cycles,omitempty"`
}

// Evaluation is the wire form of clsacim.Evaluation: one configuration
// measured against the paper's layer-by-layer reference.
type Evaluation struct {
	Baseline Report `json:"baseline"`
	Result   Report `json:"result"`
	// Speedup is Baseline.MakespanCycles / Result.MakespanCycles.
	Speedup float64 `json:"speedup"`
	// UtilizationGain is Result.Utilization / Baseline.Utilization.
	UtilizationGain float64 `json:"utilization_gain"`
	// Eq3Speedup is the paper's Eq. 3 estimate from the utilizations.
	Eq3Speedup float64 `json:"eq3_speedup"`
	// Degraded marks an evaluation served by the coarse fast path
	// because the request's deadline was too tight for the full
	// pipeline and it opted in with allow_degraded. Scalar metrics are
	// exact; timeline-derived extras (energy, schedule JSON) are absent.
	Degraded bool `json:"degraded,omitempty"`
}

// BatchRequest is the body of POST /v1/evaluate/batch.
type BatchRequest struct {
	Requests []clsacim.Request `json:"requests"`
}

// BatchResult is one positional outcome of a batch: exactly one of
// Evaluation and Error is set.
type BatchResult struct {
	Request    clsacim.Request `json:"request"`
	Evaluation *Evaluation     `json:"evaluation,omitempty"`
	Error      string          `json:"error,omitempty"`
}

// BatchResponse is the body of a successful POST /v1/evaluate/batch:
// results are positionally aligned with the submitted requests, and
// per-request failures land in their slot's Error instead of failing
// the batch.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
}

// ModelsResponse is the body of GET /v1/models: every model name a
// Request can reference on this daemon (builtin and registered), plus
// the registered duplication solvers and the scheduling-mode family.
type ModelsResponse struct {
	Models  []string `json:"models"`
	Solvers []string `json:"solvers"`
	// Modes documents the accepted scheduling-mode names.
	Modes []string `json:"modes"`
}

// StreamLatency is the wire form of clsacim.LatencyStats: the
// per-inference sojourn-time distribution in nanoseconds.
type StreamLatency struct {
	P50Nanos  float64 `json:"p50_nanos"`
	P95Nanos  float64 `json:"p95_nanos"`
	P99Nanos  float64 `json:"p99_nanos"`
	MeanNanos float64 `json:"mean_nanos"`
	MaxNanos  float64 `json:"max_nanos"`
}

// StreamJob is the wire form of one served inference's lifecycle.
type StreamJob struct {
	Model        string  `json:"model"`
	ArrivalCycle int64   `json:"arrival_cycle"`
	StartCycle   int64   `json:"start_cycle"`
	EndCycle     int64   `json:"end_cycle"`
	LatencyNanos float64 `json:"latency_nanos"`
}

// StreamQueueSample is one point of the queue-depth trace.
type StreamQueueSample struct {
	Cycle int64 `json:"cycle"`
	Depth int   `json:"depth"`
}

// StreamModelResult is the per-model slice of a streamed evaluation,
// including the single-inference reference that quantifies the
// pipelining gain.
type StreamModelResult struct {
	Model                string        `json:"model"`
	Inferences           int           `json:"inferences"`
	SingleMakespanCycles int64         `json:"single_makespan_cycles"`
	SingleRatePerSec     float64       `json:"single_rate_per_sec"`
	ThroughputPerSec     float64       `json:"throughput_per_sec"`
	Latency              StreamLatency `json:"latency"`
}

// StreamResponse is the body of a successful POST /v1/stream: the wire
// form of clsacim.StreamResult.
type StreamResponse struct {
	Inferences       int                 `json:"inferences"`
	MakespanCycles   int64               `json:"makespan_cycles"`
	ElapsedNanos     float64             `json:"elapsed_nanos"`
	ThroughputPerSec float64             `json:"throughput_per_sec"`
	Latency          StreamLatency       `json:"latency"`
	FabricPEs        int                 `json:"fabric_pes"`
	PEUtilization    float64             `json:"pe_utilization"`
	UtilizationPerPE []float64           `json:"utilization_per_pe"`
	QueueDepth       []StreamQueueSample `json:"queue_depth"`
	Jobs             []StreamJob         `json:"jobs"`
	PerModel         []StreamModelResult `json:"per_model"`
}

// EngineStats is the wire form of clsacim.Stats: the compile-cache and
// work accounting of the daemon's engine.
type EngineStats struct {
	Compiles  int64 `json:"compiles"`
	CacheHits int64 `json:"cache_hits"`
	// PartialHits are cache hits that still ran Stage III/IV because
	// the requested mode's timeline was not cached yet (the incremental
	// re-simulation path); CacheHits - PartialHits served everything
	// from cache.
	PartialHits int64 `json:"partial_hits"`
	CacheMisses int64 `json:"cache_misses"`
	Evictions   int64 `json:"cache_evictions"`
	Evaluations int64 `json:"evaluations"`
	// DegradedEvaluations counts evaluations served by the coarse fast
	// path after their deadline expired (graceful degradation).
	DegradedEvaluations int64 `json:"degraded_evaluations"`
	StreamEvaluations   int64 `json:"stream_evaluations"`
	StreamInferences    int64 `json:"stream_inferences"`
	CachedEntries       int   `json:"cached_entries"`
	CacheLimit          int   `json:"cache_limit"`
}

// ServerStats counts HTTP-level activity since the server started.
type ServerStats struct {
	// Requests counts every handled request, including failed ones.
	Requests int64 `json:"requests"`
	// Errors counts requests answered with a 4xx/5xx status.
	Errors int64 `json:"errors"`
	// BatchItems counts individual evaluations submitted through the
	// batch endpoint.
	BatchItems int64 `json:"batch_items"`
	// InFlight is the number of requests currently being handled.
	InFlight int64 `json:"in_flight"`
	// Panics counts handler panics converted into 500 responses by the
	// recovery middleware. Nonzero means a bug (or injected fault) —
	// the daemon survived it, but it should be investigated.
	Panics int64 `json:"panics"`
	// Shed counts requests rejected by admission gates (429/503 with
	// Retry-After), summed across classes; the per-class split is in
	// Admission.
	Shed int64 `json:"shed"`
	// Degraded counts evaluations served degraded (coarse fast path)
	// over HTTP, single and batch items combined.
	Degraded int64 `json:"degraded"`
	// UptimeSeconds is the time since the server was constructed.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Admission reports each configured admission gate; absent when no
	// gates are configured.
	Admission []AdmissionClassStats `json:"admission,omitempty"`
}

// AdmissionClassStats is one endpoint class's admission accounting.
type AdmissionClassStats struct {
	// Class is "evaluate", "batch", or "stream".
	Class string `json:"class"`
	// MaxConcurrent and MaxQueue echo the configured bounds.
	MaxConcurrent int `json:"max_concurrent"`
	MaxQueue      int `json:"max_queue"`
	// InFlight and Queued are the current occupancy of the gate.
	InFlight int64 `json:"in_flight"`
	Queued   int64 `json:"queued"`
	// Admitted counts requests that got an execution slot; Shed counts
	// requests rejected with 429 (queue full) or 503 (wait expired).
	Admitted int64 `json:"admitted"`
	Shed     int64 `json:"shed"`
}

// StreamStats summarizes streamed evaluations served by this daemon.
// It appears in StatsResponse only after the first POST /v1/stream
// completed successfully; the Last* fields snapshot the most recent
// stream so dashboards can read current throughput and tail latency
// without re-running the evaluation.
type StreamStats struct {
	// Evaluations and Inferences count streamed work served over HTTP
	// (the engine's own counters also include in-process callers).
	Evaluations int64 `json:"evaluations"`
	Inferences  int64 `json:"inferences"`
	// LastModels names the resident models of the most recent stream.
	LastModels []string `json:"last_models"`
	// LastThroughputPerSec is the most recent stream's steady-state
	// serving rate (inferences per second of simulated time).
	LastThroughputPerSec float64 `json:"last_throughput_per_sec"`
	// LastP99Nanos is the most recent stream's p99 sojourn time.
	LastP99Nanos float64 `json:"last_p99_nanos"`
}

// StatsResponse is the body of GET /v1/stats. Stream is omitted until
// the first streamed evaluation has run.
type StatsResponse struct {
	Engine EngineStats  `json:"engine"`
	Server ServerStats  `json:"server"`
	Stream *StreamStats `json:"stream,omitempty"`
}

// Machine-readable error codes carried in ErrorResponse.Code. The
// client package maps them back onto the sentinel errors a local
// Engine would return; the human-readable Error message is not part of
// the contract.
const (
	CodeUnknownModel     = "unknown_model"
	CodeDeadlineExceeded = "deadline_exceeded"
	CodeCanceled         = "canceled"
	// CodeInternal marks 500s from recovered handler panics and other
	// unclassified server-side failures. The request itself may well
	// succeed on retry — the client treats it as temporary.
	CodeInternal = "internal"
	// CodeOverloaded marks 429/503 shed responses from the admission
	// gates; Retry-After on the response says when to come back.
	CodeOverloaded = "overloaded"
)

// ErrorResponse is the body of every non-2xx response. Code is set for
// the conditions a caller is expected to branch on (see the Code*
// constants); other failures carry only the message. RequestID repeats
// the response's X-Request-ID header so the envelope alone suffices to
// correlate a failure with the daemon's logs.
type ErrorResponse struct {
	Error     string `json:"error"`
	Code      string `json:"code,omitempty"`
	RequestID string `json:"request_id,omitempty"`
}

// wireReport converts an in-process report.
func wireReport(r *clsacim.Report) Report {
	return Report{
		Model:            r.Model,
		Mode:             r.Mode.Name(),
		F:                r.F,
		PEMin:            r.PEmin,
		MakespanCycles:   r.MakespanCycles,
		LatencyNanos:     r.LatencyNanos,
		Utilization:      r.Utilization,
		Duplication:      r.Duplication,
		EnergyMicroJoule: r.EnergyMicroJoule,
		ReloadCycles:     r.ReloadCycles,
	}
}

// wireEvaluation converts an in-process evaluation.
func wireEvaluation(ev *clsacim.Evaluation) *Evaluation {
	return &Evaluation{
		Baseline:        wireReport(ev.Baseline),
		Result:          wireReport(ev.Result),
		Speedup:         ev.Speedup,
		UtilizationGain: ev.UtilizationGain,
		Eq3Speedup:      ev.Eq3Speedup,
		Degraded:        ev.Degraded,
	}
}

// wireStats converts an engine stats snapshot.
func wireStats(s clsacim.Stats) EngineStats {
	return EngineStats{
		Compiles:            s.Compiles,
		CacheHits:           s.CacheHits,
		PartialHits:         s.PartialHits,
		CacheMisses:         s.CacheMisses,
		Evictions:           s.Evictions,
		Evaluations:         s.Evaluations,
		DegradedEvaluations: s.DegradedEvaluations,
		StreamEvaluations:   s.StreamEvaluations,
		StreamInferences:    s.StreamInferences,
		CachedEntries:       s.CachedEntries,
		CacheLimit:          s.CacheLimit,
	}
}

// wireStreamResult converts an in-process stream result.
func wireStreamResult(res *clsacim.StreamResult) *StreamResponse {
	out := &StreamResponse{
		Inferences:       res.Inferences,
		MakespanCycles:   res.MakespanCycles,
		ElapsedNanos:     res.ElapsedNanos,
		ThroughputPerSec: res.ThroughputPerSec,
		Latency:          wireLatency(res.Latency),
		FabricPEs:        res.FabricPEs,
		PEUtilization:    res.PEUtilization,
		UtilizationPerPE: res.UtilizationPerPE,
	}
	for _, js := range res.Jobs {
		out.Jobs = append(out.Jobs, StreamJob{
			Model:        js.Model,
			ArrivalCycle: js.ArrivalCycle,
			StartCycle:   js.StartCycle,
			EndCycle:     js.EndCycle,
			LatencyNanos: js.LatencyNanos,
		})
	}
	for _, qs := range res.QueueDepth {
		out.QueueDepth = append(out.QueueDepth, StreamQueueSample{Cycle: qs.Cycle, Depth: qs.Depth})
	}
	for _, pm := range res.PerModel {
		out.PerModel = append(out.PerModel, StreamModelResult{
			Model:                pm.Model,
			Inferences:           pm.Inferences,
			SingleMakespanCycles: pm.SingleMakespanCycles,
			SingleRatePerSec:     pm.SingleRatePerSec,
			ThroughputPerSec:     pm.ThroughputPerSec,
			Latency:              wireLatency(pm.Latency),
		})
	}
	return out
}

func wireLatency(l clsacim.LatencyStats) StreamLatency {
	return StreamLatency{
		P50Nanos:  l.P50Nanos,
		P95Nanos:  l.P95Nanos,
		P99Nanos:  l.P99Nanos,
		MeanNanos: l.MeanNanos,
		MaxNanos:  l.MaxNanos,
	}
}
