package serve

import "clsacim"

// This file defines the JSON wire schema of the service. Requests reuse
// clsacim.Request verbatim (its json tags are the wire format);
// responses get dedicated types here so the schema is stable and
// snake_case even if the in-process result structs grow fields. The
// client package decodes into these same types, so a Go caller of the
// HTTP API never sees the encoding.

// Report is the wire form of one scheduling outcome (clsacim.Report):
// the paper's per-configuration metrics.
type Report struct {
	// Model is the evaluated model's registered name.
	Model string `json:"model"`
	// Mode is the scheduling mode's wire name: "lbl", "xinf", or "x<K>".
	Mode string `json:"mode"`
	// F is the PE count of the compiled architecture (PEmin + x).
	F int `json:"f"`
	// PEMin is the minimum PE count storing every weight once.
	PEMin int `json:"pe_min"`
	// MakespanCycles is the schedule length in MVM cycles.
	MakespanCycles int64 `json:"makespan_cycles"`
	// LatencyNanos is MakespanCycles * tMVM.
	LatencyNanos float64 `json:"latency_nanos"`
	// Utilization is paper Eq. 2, in [0, 1].
	Utilization float64 `json:"utilization"`
	// Duplication is the applied weight-duplication vector d in plan
	// order.
	Duplication []int `json:"duplication,omitempty"`
	// EnergyMicroJoule is the dynamic energy estimate (0 unless the
	// engine configures EnergyPerMVMNanoJ).
	EnergyMicroJoule float64 `json:"energy_uj,omitempty"`
	// ReloadCycles is the crossbar-programming time included in the
	// makespan (weight virtualization only).
	ReloadCycles int64 `json:"reload_cycles,omitempty"`
}

// Evaluation is the wire form of clsacim.Evaluation: one configuration
// measured against the paper's layer-by-layer reference.
type Evaluation struct {
	Baseline Report `json:"baseline"`
	Result   Report `json:"result"`
	// Speedup is Baseline.MakespanCycles / Result.MakespanCycles.
	Speedup float64 `json:"speedup"`
	// UtilizationGain is Result.Utilization / Baseline.Utilization.
	UtilizationGain float64 `json:"utilization_gain"`
	// Eq3Speedup is the paper's Eq. 3 estimate from the utilizations.
	Eq3Speedup float64 `json:"eq3_speedup"`
}

// BatchRequest is the body of POST /v1/evaluate/batch.
type BatchRequest struct {
	Requests []clsacim.Request `json:"requests"`
}

// BatchResult is one positional outcome of a batch: exactly one of
// Evaluation and Error is set.
type BatchResult struct {
	Request    clsacim.Request `json:"request"`
	Evaluation *Evaluation     `json:"evaluation,omitempty"`
	Error      string          `json:"error,omitempty"`
}

// BatchResponse is the body of a successful POST /v1/evaluate/batch:
// results are positionally aligned with the submitted requests, and
// per-request failures land in their slot's Error instead of failing
// the batch.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
}

// ModelsResponse is the body of GET /v1/models: every model name a
// Request can reference on this daemon (builtin and registered), plus
// the registered duplication solvers and the scheduling-mode family.
type ModelsResponse struct {
	Models  []string `json:"models"`
	Solvers []string `json:"solvers"`
	// Modes documents the accepted scheduling-mode names.
	Modes []string `json:"modes"`
}

// EngineStats is the wire form of clsacim.Stats: the compile-cache and
// work accounting of the daemon's engine.
type EngineStats struct {
	Compiles      int64 `json:"compiles"`
	CacheHits     int64 `json:"cache_hits"`
	CacheMisses   int64 `json:"cache_misses"`
	Evictions     int64 `json:"cache_evictions"`
	Evaluations   int64 `json:"evaluations"`
	CachedEntries int   `json:"cached_entries"`
	CacheLimit    int   `json:"cache_limit"`
}

// ServerStats counts HTTP-level activity since the server started.
type ServerStats struct {
	// Requests counts every handled request, including failed ones.
	Requests int64 `json:"requests"`
	// Errors counts requests answered with a 4xx/5xx status.
	Errors int64 `json:"errors"`
	// BatchItems counts individual evaluations submitted through the
	// batch endpoint.
	BatchItems int64 `json:"batch_items"`
	// InFlight is the number of requests currently being handled.
	InFlight int64 `json:"in_flight"`
	// UptimeSeconds is the time since the server was constructed.
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Engine EngineStats `json:"engine"`
	Server ServerStats `json:"server"`
}

// Machine-readable error codes carried in ErrorResponse.Code. The
// client package maps them back onto the sentinel errors a local
// Engine would return; the human-readable Error message is not part of
// the contract.
const (
	CodeUnknownModel     = "unknown_model"
	CodeDeadlineExceeded = "deadline_exceeded"
	CodeCanceled         = "canceled"
)

// ErrorResponse is the body of every non-2xx response. Code is set for
// the conditions a caller is expected to branch on (see the Code*
// constants); other failures carry only the message.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// wireReport converts an in-process report.
func wireReport(r *clsacim.Report) Report {
	return Report{
		Model:            r.Model,
		Mode:             r.Mode.Name(),
		F:                r.F,
		PEMin:            r.PEmin,
		MakespanCycles:   r.MakespanCycles,
		LatencyNanos:     r.LatencyNanos,
		Utilization:      r.Utilization,
		Duplication:      r.Duplication,
		EnergyMicroJoule: r.EnergyMicroJoule,
		ReloadCycles:     r.ReloadCycles,
	}
}

// wireEvaluation converts an in-process evaluation.
func wireEvaluation(ev *clsacim.Evaluation) *Evaluation {
	return &Evaluation{
		Baseline:        wireReport(ev.Baseline),
		Result:          wireReport(ev.Result),
		Speedup:         ev.Speedup,
		UtilizationGain: ev.UtilizationGain,
		Eq3Speedup:      ev.Eq3Speedup,
	}
}

// wireStats converts an engine stats snapshot.
func wireStats(s clsacim.Stats) EngineStats {
	return EngineStats{
		Compiles:      s.Compiles,
		CacheHits:     s.CacheHits,
		CacheMisses:   s.CacheMisses,
		Evictions:     s.Evictions,
		Evaluations:   s.Evaluations,
		CachedEntries: s.CachedEntries,
		CacheLimit:    s.CacheLimit,
	}
}
