package serve

import (
	"fmt"
	"net/http"
	"strings"
	"testing"

	"clsacim"
)

// TestImportedModelIsServable covers the daemon-startup import flow
// (clsaserved -import): a model registered from a graph file must be
// listed by GET /v1/models and evaluable via POST /v1/evaluate, and a
// misspelled import name must fall through to the unknown_model 404.
func TestImportedModelIsServable(t *testing.T) {
	// clsacim-graph/v1 source for a small servable network. The model
	// registry is process-global with no unregister, so the registered
	// name is unique to this test.
	const name = "served-imported-cnn"
	doc := `{
	  "schema": "clsacim-graph/v1",
	  "name": "` + name + `",
	  "input": {"name": "in", "shape": [16, 16, 3]},
	  "nodes": [
	    {"name": "conv1", "op": "Conv2D", "inputs": ["in"],
	     "attrs": {"kh": 3, "kw": 3, "sh": 1, "sw": 1, "pad": [1, 1, 1, 1], "ki": 3, "ko": 8}},
	    {"name": "relu1", "op": "Activation", "inputs": ["conv1"], "attrs": {"act": "relu"}},
	    {"name": "pool1", "op": "MaxPool", "inputs": ["relu1"],
	     "attrs": {"kh": 2, "kw": 2, "sh": 2, "sw": 2}},
	    {"name": "conv2", "op": "Conv2D", "inputs": ["pool1"],
	     "attrs": {"kh": 3, "kw": 3, "sh": 1, "sw": 1, "ki": 8, "ko": 8}}
	  ],
	  "outputs": ["conv2"]
	}`
	m, err := clsacim.ImportModelReader("", strings.NewReader(doc), clsacim.ModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != name {
		t.Fatalf("imported name %q, want %q (declared in the file)", m.Name, name)
	}
	if err := clsacim.RegisterModel(m.Name, m); err != nil {
		t.Fatal(err)
	}

	s, _ := newTestServer(t, nil)
	var models ModelsResponse
	if rec := doJSON(t, s, http.MethodGet, "/v1/models", "", &models); rec.Code != http.StatusOK {
		t.Fatalf("models status = %d", rec.Code)
	}
	if !contains(models.Models, name) {
		t.Fatalf("models = %v, want %q listed", models.Models, name)
	}

	var ev Evaluation
	rec := doJSON(t, s, http.MethodPost, "/v1/evaluate",
		fmt.Sprintf(`{"model": %q, "mode": "xinf"}`, name), &ev)
	if rec.Code != http.StatusOK {
		t.Fatalf("evaluate status = %d, body %s", rec.Code, rec.Body)
	}
	if ev.Result.Model != name || ev.Result.MakespanCycles <= 0 {
		t.Errorf("evaluation result %+v, want model %q with a positive makespan", ev.Result, name)
	}

	// A bad import name is just an unknown model to the daemon.
	var er ErrorResponse
	rec = doJSON(t, s, http.MethodPost, "/v1/evaluate", `{"model": "served-imported-cnn-typo"}`, &er)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("bad import name status = %d, want 404 (body %s)", rec.Code, rec.Body)
	}
	if er.Code != CodeUnknownModel {
		t.Errorf("code = %q, want %q", er.Code, CodeUnknownModel)
	}
}
