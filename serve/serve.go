// Package serve exposes a clsacim.Engine over HTTP/JSON — the network
// surface of the reproduction's evaluation pipeline. It is the scale
// leg of the system: a single long-running daemon (cmd/clsaserved)
// holds one Engine whose bounded, single-flight compile cache is shared
// by every remote caller, so sweeps from many clients compile each
// distinct (model, architecture, mapping) key once instead of once per
// process.
//
// Endpoints:
//
//	POST /v1/evaluate        one clsacim.Request -> Evaluation
//	POST /v1/evaluate/batch  BatchRequest -> BatchResponse (positional)
//	POST /v1/stream          one clsacim.StreamRequest -> StreamResponse
//	GET  /v1/models          models, solvers, and mode names
//	GET  /v1/stats           engine cache counters + server counters
//	GET  /healthz            liveness probe ("ok")
//
// Errors are returned as ErrorResponse JSON: 400 for malformed or
// invalid requests, 404 for unknown models (clsacim.ErrUnknownModel),
// 405 for wrong methods, 413 for oversized batches, 429/503 when an
// admission gate sheds the request (with Retry-After), 500 (code
// "internal") for recovered handler panics, and 504 when a request
// deadline expires. Every response carries X-Request-ID (generated or
// echoed) and every error envelope repeats it in request_id. The typed
// Go client in package client wraps these endpoints and retries the
// temporary subset.
//
// Resilience: requests pass through a middleware chain (accounting,
// request-ID propagation, panic recovery, optional fault injection,
// per-class admission gates — see middleware.go) before reaching the
// handlers, so one panicking handler or one overload burst cannot take
// the daemon down or hang clients.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync/atomic"
	"time"

	"clsacim"
)

// Default server limits; override with the With* options.
const (
	DefaultMaxBatch     = 1024
	DefaultMaxBodyBytes = 8 << 20 // 8 MiB
)

// Server is an http.Handler serving one Engine. Construct with New;
// the zero value is not usable. All handlers are safe for concurrent
// use — concurrency control is the Engine's job (worker pool, compile
// cache), the Server only enforces wire-level limits.
type Server struct {
	eng          *clsacim.Engine
	mux          *http.ServeMux
	chain        http.Handler // the middleware chain ending in mux
	inner        func(http.Handler) http.Handler
	gates        map[string]*gate
	timeout      time.Duration
	maxBatch     int
	maxBodyBytes int64
	logf         func(format string, args ...any)
	start        time.Time
	reqSeq       atomic.Uint64

	requests   atomic.Int64
	errors     atomic.Int64
	batchItems atomic.Int64
	inFlight   atomic.Int64
	panics     atomic.Int64
	totalShed  atomic.Int64
	degraded   atomic.Int64

	streamEvals atomic.Int64
	streamInfs  atomic.Int64
	// lastStream snapshots the most recent streamed evaluation for the
	// stream block of /v1/stats; nil until the first stream completes.
	lastStream atomic.Pointer[streamSummary]
}

// streamSummary is the retained slice of one streamed evaluation.
type streamSummary struct {
	models     []string
	throughput float64
	p99Nanos   float64
}

// Option configures a Server at construction time.
type Option func(*Server) error

// WithRequestTimeout bounds every request's handling time (0 disables
// the server-side bound; individual requests can still set
// timeout_ms). The per-request timeout_ms, when set, applies on top and
// the earlier deadline wins.
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) error {
		if d < 0 {
			return fmt.Errorf("serve: negative request timeout %v", d)
		}
		s.timeout = d
		return nil
	}
}

// WithMaxBatch caps the number of requests accepted in one batch call
// (default DefaultMaxBatch). Larger batches are rejected with 413.
func WithMaxBatch(n int) Option {
	return func(s *Server) error {
		if n <= 0 {
			return fmt.Errorf("serve: invalid max batch %d", n)
		}
		s.maxBatch = n
		return nil
	}
}

// WithMaxBodyBytes caps request body size (default
// DefaultMaxBodyBytes).
func WithMaxBodyBytes(n int64) Option {
	return func(s *Server) error {
		if n <= 0 {
			return fmt.Errorf("serve: invalid max body size %d", n)
		}
		s.maxBodyBytes = n
		return nil
	}
}

// WithLogger routes request logging to logf (default: the standard
// log package). Pass a no-op func to silence the server.
func WithLogger(logf func(format string, args ...any)) Option {
	return func(s *Server) error {
		if logf == nil {
			return errors.New("serve: nil logger")
		}
		s.logf = logf
		return nil
	}
}

// New builds a Server around eng.
func New(eng *clsacim.Engine, opts ...Option) (*Server, error) {
	if eng == nil {
		return nil, errors.New("serve: nil engine")
	}
	s := &Server{
		eng:          eng,
		gates:        make(map[string]*gate),
		maxBatch:     DefaultMaxBatch,
		maxBodyBytes: DefaultMaxBodyBytes,
		logf:         log.Printf,
		start:        time.Now(),
	}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/evaluate", s.method(http.MethodPost, s.admit(ClassEvaluate, s.handleEvaluate)))
	s.mux.HandleFunc("/v1/evaluate/batch", s.method(http.MethodPost, s.admit(ClassBatch, s.handleBatch)))
	s.mux.HandleFunc("/v1/stream", s.method(http.MethodPost, s.admit(ClassStream, s.handleStream)))
	s.mux.HandleFunc("/v1/models", s.method(http.MethodGet, s.handleModels))
	s.mux.HandleFunc("/v1/stats", s.method(http.MethodGet, s.handleStats))
	s.mux.HandleFunc("/healthz", s.method(http.MethodGet, s.handleHealth))
	// Unknown paths answer in the same JSON envelope as everything
	// else, so clients never have to parse ServeMux's plain-text 404.
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		s.writeError(w, r, http.StatusNotFound,
			fmt.Errorf("serve: no such endpoint %s %s", r.Method, r.URL.Path))
	})
	// The chain wraps outermost-first: request-ID tagging surrounds
	// recovery so panic envelopes carry the ID; injected faults (tests,
	// -faults) fire inside recovery so an injected panic exercises the
	// exact path a real handler panic takes; admission gating sits on
	// the individual endpoints, after routing, so 404/405 never consume
	// an execution slot.
	var h http.Handler = s.mux
	if s.inner != nil {
		h = s.inner(h)
	}
	s.chain = s.requestID(s.recoverPanics(h))
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	if s.maxBodyBytes > 0 && r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
	}
	s.chain.ServeHTTP(w, r)
}

// method gates a handler on one HTTP method.
func (s *Server) method(want string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != want {
			w.Header().Set("Allow", want)
			s.writeError(w, r, http.StatusMethodNotAllowed,
				fmt.Errorf("serve: %s %s: method not allowed (want %s)", r.Method, r.URL.Path, want))
			return
		}
		h(w, r)
	}
}

// requestCtx applies the server-side timeout.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout > 0 {
		return context.WithTimeout(r.Context(), s.timeout)
	}
	return r.Context(), func() {}
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req clsacim.Request
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, r, decodeStatus(err), err)
		return
	}
	if err := req.Validate(); err != nil {
		s.writeError(w, r, validateStatus(err), err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	ev, err := s.eng.Evaluate(ctx, req)
	if err != nil {
		s.writeError(w, r, statusOf(err), err)
		return
	}
	if ev.Degraded {
		s.degraded.Add(1)
	}
	s.writeJSON(w, http.StatusOK, wireEvaluation(ev))
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, r, decodeStatus(err), err)
		return
	}
	if len(req.Requests) > s.maxBatch {
		s.writeError(w, r, http.StatusRequestEntityTooLarge,
			fmt.Errorf("serve: batch of %d exceeds limit %d", len(req.Requests), s.maxBatch))
		return
	}
	s.batchItems.Add(int64(len(req.Requests)))
	// Per-item failures (invalid shape, unknown model, timeout, ...)
	// land in their result slot; the call itself stays 200 so one bad
	// point cannot void a sweep. Items the single-request endpoint
	// would reject with 4xx are pre-validated into their slot and
	// withheld from the engine — silently evaluating them would return
	// a result for a different configuration than the one named.
	resp := BatchResponse{Results: make([]BatchResult, len(req.Requests))}
	var valid []clsacim.Request
	var validIdx []int
	for i, item := range req.Requests {
		resp.Results[i].Request = item
		if err := item.Validate(); err != nil {
			resp.Results[i].Error = err.Error()
			continue
		}
		valid = append(valid, item)
		validIdx = append(validIdx, i)
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	results, _ := s.eng.EvaluateBatch(ctx, valid)
	for j, br := range results {
		i := validIdx[j]
		if br.Err != nil {
			resp.Results[i].Error = br.Err.Error()
		} else {
			if br.Evaluation.Degraded {
				s.degraded.Add(1)
			}
			resp.Results[i].Evaluation = wireEvaluation(br.Evaluation)
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	var req clsacim.StreamRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, r, decodeStatus(err), err)
		return
	}
	if err := req.Validate(); err != nil {
		s.writeError(w, r, validateStatus(err), err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	res, err := s.eng.EvaluateStream(ctx, req)
	if err != nil {
		s.writeError(w, r, statusOf(err), err)
		return
	}
	s.streamEvals.Add(1)
	s.streamInfs.Add(int64(res.Inferences))
	sum := &streamSummary{throughput: res.ThroughputPerSec, p99Nanos: res.Latency.P99Nanos}
	for _, pm := range res.PerModel {
		sum.models = append(sum.models, pm.Model)
	}
	s.lastStream.Store(sum)
	s.writeJSON(w, http.StatusOK, wireStreamResult(res))
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, ModelsResponse{
		Models:  clsacim.AllModels(),
		Solvers: clsacim.Solvers(),
		Modes:   []string{"lbl", "x<K>", "xinf"},
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		Engine: wireStats(s.eng.Stats()),
		Server: ServerStats{
			Requests:      s.requests.Load(),
			Errors:        s.errors.Load(),
			BatchItems:    s.batchItems.Load(),
			InFlight:      s.inFlight.Load(),
			Panics:        s.panics.Load(),
			Shed:          s.totalShed.Load(),
			Degraded:      s.degraded.Load(),
			UptimeSeconds: time.Since(s.start).Seconds(),
			Admission:     s.admissionStats(),
		},
	}
	if sum := s.lastStream.Load(); sum != nil {
		resp.Stream = &StreamStats{
			Evaluations:          s.streamEvals.Load(),
			Inferences:           s.streamInfs.Load(),
			LastModels:           sum.models,
			LastThroughputPerSec: sum.throughput,
			LastP99Nanos:         sum.p99Nanos,
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// decodeJSON strictly decodes one JSON document from the request body.
func decodeJSON(r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("serve: decoding request body: %w", err)
	}
	// A second document (or trailing garbage) is a malformed request,
	// not something to silently ignore.
	if dec.More() {
		return errors.New("serve: trailing data after request body")
	}
	return nil
}

// validateStatus maps a Request.Validate failure: sentinel errors keep
// their dedicated statuses (unknown model -> 404), and every other
// validation failure — empty model, negative knobs — is the client's
// fault, never a 500.
func validateStatus(err error) int {
	if status := statusOf(err); status != http.StatusInternalServerError {
		return status
	}
	return http.StatusBadRequest
}

// decodeStatus distinguishes a body over the size limit (413, split
// the batch and retry) from malformed JSON (400, fix the request).
func decodeStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// errClasses is the single table mapping the sentinel failures callers
// branch on to their HTTP status and wire code, so the two can never
// drift apart: unknown models are 404 (the resource a Request names
// does not exist here), expired deadlines 504, cancellations 499 (the
// nginx convention — the client is gone, the status is for the access
// log), and request shapes the registries reject 400. Codes are set
// only where the client package maps them back to sentinels.
var errClasses = []struct {
	sentinel error
	status   int
	code     string
}{
	{clsacim.ErrUnknownModel, http.StatusNotFound, CodeUnknownModel},
	{context.DeadlineExceeded, http.StatusGatewayTimeout, CodeDeadlineExceeded},
	{context.Canceled, 499, CodeCanceled},
	{clsacim.ErrUnknownSolver, http.StatusBadRequest, ""},
	{clsacim.ErrUnknownMode, http.StatusBadRequest, ""},
	{clsacim.ErrDuplicateModel, http.StatusBadRequest, ""},
	{clsacim.ErrDuplicateSolver, http.StatusBadRequest, ""},
}

// classify resolves an evaluation error against errClasses; anything
// unrecognized is a 500 with no code.
func classify(err error) (status int, code string) {
	for _, c := range errClasses {
		if errors.Is(err, c.sentinel) {
			return c.status, c.code
		}
	}
	return http.StatusInternalServerError, ""
}

// statusOf is classify's status alone, for handlers that picked their
// own code path.
func statusOf(err error) int {
	status, _ := classify(err)
	return status
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is gone; all we can do is log.
		s.logf("serve: encoding response: %v", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	s.errors.Add(1)
	id := RequestID(r.Context())
	if status >= 500 {
		s.logf("serve: %d [%s]: %v", status, id, err)
	}
	// The code comes from the same table as statusOf, so a 404 for an
	// unknown *model* carries unknown_model while a 404 for an unknown
	// *endpoint* (which never matches a sentinel) carries none. Shed
	// and panic responses get their dedicated codes so the retrying
	// client can classify without string matching.
	_, code := classify(err)
	if code == "" {
		switch status {
		case http.StatusInternalServerError:
			code = CodeInternal
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			code = CodeOverloaded
		}
	}
	s.writeJSON(w, status, ErrorResponse{Error: err.Error(), Code: code, RequestID: id})
}
