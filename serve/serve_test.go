package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"clsacim"
)

// newTestServer builds a Server around a fresh engine; the engine is
// returned for direct Stats assertions.
func newTestServer(t *testing.T, engOpts []clsacim.Option, srvOpts ...Option) (*Server, *clsacim.Engine) {
	t.Helper()
	eng, err := clsacim.New(engOpts...)
	if err != nil {
		t.Fatal(err)
	}
	srvOpts = append(srvOpts, WithLogger(t.Logf))
	s, err := New(eng, srvOpts...)
	if err != nil {
		t.Fatal(err)
	}
	return s, eng
}

// doJSON runs one request against the handler and decodes the JSON
// response body into dst (skipped when dst is nil).
func doJSON(t *testing.T, h http.Handler, method, path, body string, dst any) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if dst != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), dst); err != nil {
			t.Fatalf("decoding %s %s response %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec
}

func TestEvaluateHappyPath(t *testing.T) {
	s, eng := newTestServer(t, nil)
	var ev Evaluation
	rec := doJSON(t, s, http.MethodPost, "/v1/evaluate",
		`{"model": "tinyconvnet", "mode": "xinf", "extra_pes": 2, "weight_duplication": true}`, &ev)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	if ev.Result.Model != "tinyconvnet" || ev.Result.Mode != "xinf" {
		t.Errorf("result identifies as (%q, %q)", ev.Result.Model, ev.Result.Mode)
	}
	if ev.Baseline.Mode != "lbl" {
		t.Errorf("baseline mode = %q, want lbl", ev.Baseline.Mode)
	}
	if ev.Speedup < 1 {
		t.Errorf("speedup = %v, want >= 1", ev.Speedup)
	}
	if ev.Result.Utilization <= 0 || ev.Result.Utilization > 1 {
		t.Errorf("utilization = %v outside (0, 1]", ev.Result.Utilization)
	}
	if ev.Result.F != ev.Result.PEMin+2 {
		t.Errorf("F = %d, want PEmin+2 = %d", ev.Result.F, ev.Result.PEMin+2)
	}
	if st := eng.Stats(); st.Evaluations != 1 {
		t.Errorf("engine evaluations = %d, want 1", st.Evaluations)
	}
}

func TestEvaluateMalformedJSON(t *testing.T) {
	s, _ := newTestServer(t, nil)
	for name, body := range map[string]string{
		"syntax":        `{"model": `,
		"unknown field": `{"model": "tinyconvnet", "bogus_field": 1}`,
		"wrong type":    `{"model": 7}`,
		"trailing data": `{"model": "tinyconvnet"} {"model": "tinyconvnet"}`,
		"empty body":    ``,
	} {
		var er ErrorResponse
		rec := doJSON(t, s, http.MethodPost, "/v1/evaluate", body, &er)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", name, rec.Code, rec.Body)
		}
		if er.Error == "" {
			t.Errorf("%s: missing error message", name)
		}
	}
}

func TestEvaluateUnknownModel(t *testing.T) {
	s, _ := newTestServer(t, nil)
	var er ErrorResponse
	rec := doJSON(t, s, http.MethodPost, "/v1/evaluate", `{"model": "no-such-net"}`, &er)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404 (body %s)", rec.Code, rec.Body)
	}
	if !strings.Contains(er.Error, "unknown model") {
		t.Errorf("error = %q, want mention of unknown model", er.Error)
	}
	if er.Code != CodeUnknownModel {
		t.Errorf("code = %q, want %q", er.Code, CodeUnknownModel)
	}
}

func TestUnknownEndpointIsJSON404WithoutCode(t *testing.T) {
	// Unknown paths answer in the same envelope as everything else but
	// carry no code: a wrong base URL must not look like an unknown
	// model to the typed client.
	s, _ := newTestServer(t, nil)
	var er ErrorResponse
	rec := doJSON(t, s, http.MethodGet, "/v2/evaluate", "", &er)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	if er.Error == "" || er.Code != "" {
		t.Errorf("envelope = %+v, want a message and no code", er)
	}
}

func TestEvaluateUnknownSolverIsBadRequest(t *testing.T) {
	s, _ := newTestServer(t, nil)
	rec := doJSON(t, s, http.MethodPost, "/v1/evaluate",
		`{"model": "tinyconvnet", "solver": "no-such-solver"}`, nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (body %s)", rec.Code, rec.Body)
	}
}

func TestEvaluateInvalidValuesAreBadRequest(t *testing.T) {
	// Plain validation failures (not sentinel errors) are still the
	// client's fault: 400, never 500.
	s, _ := newTestServer(t, nil)
	for name, body := range map[string]string{
		"empty model":      `{"mode": "xinf"}`,
		"negative extra":   `{"model": "tinyconvnet", "extra_pes": -1}`,
		"negative total":   `{"model": "tinyconvnet", "total_pes": -4}`,
		"negative timeout": `{"model": "tinyconvnet", "timeout_ms": -1}`,
	} {
		var er ErrorResponse
		rec := doJSON(t, s, http.MethodPost, "/v1/evaluate", body, &er)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", name, rec.Code, rec.Body)
		}
		if er.Error == "" {
			t.Errorf("%s: missing error message", name)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s, _ := newTestServer(t, nil)
	rec := doJSON(t, s, http.MethodGet, "/v1/evaluate", "", nil)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", rec.Code)
	}
	if allow := rec.Header().Get("Allow"); allow != http.MethodPost {
		t.Errorf("Allow = %q, want POST", allow)
	}
}

func TestRequestTimeoutExpires(t *testing.T) {
	// A compilation pinned (via a sleeping solver) well past the 1 ms
	// deadline must fail with 504, not hang and not return a partial
	// result. The sleep makes the race deterministic: the engine's
	// post-compile deadline check always runs long after the timer
	// fired.
	solverName := fmt.Sprintf("test-serve-sleeps-%d", time.Now().UnixNano())
	err := clsacim.RegisterSolver(solverName, func(layers []clsacim.SolverLayer, totalPEs, minPEs int) ([]int, error) {
		time.Sleep(250 * time.Millisecond)
		d := make([]int, len(layers))
		for i := range d {
			d[i] = 1
		}
		return d, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := newTestServer(t, nil)
	var er ErrorResponse
	body := fmt.Sprintf(`{"model": "tinyconvnet", "extra_pes": 1, "weight_duplication": true, "solver": %q, "timeout_ms": 1}`, solverName)
	rec := doJSON(t, s, http.MethodPost, "/v1/evaluate", body, &er)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", rec.Code, rec.Body)
	}
	if !strings.Contains(er.Error, "deadline") {
		t.Errorf("error = %q, want a deadline message", er.Error)
	}
}

func TestBatchHappyPathAndPartialFailure(t *testing.T) {
	s, _ := newTestServer(t, nil)
	body := `{"requests": [
		{"model": "tinyconvnet", "mode": "xinf", "extra_pes": 1, "weight_duplication": true},
		{"model": "no-such-net"},
		{"model": "tinyconvnet", "mode": "lbl"}
	]}`
	var resp BatchResponse
	rec := doJSON(t, s, http.MethodPost, "/v1/evaluate/batch", body, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	if r := resp.Results[0]; r.Error != "" || r.Evaluation == nil || r.Evaluation.Speedup < 1 {
		t.Errorf("result 0 = %+v, want a successful evaluation", r)
	}
	if r := resp.Results[1]; r.Evaluation != nil || !strings.Contains(r.Error, "unknown model") {
		t.Errorf("result 1 = %+v, want an unknown-model error", r)
	}
	if r := resp.Results[2]; r.Error != "" || r.Evaluation == nil {
		t.Errorf("result 2 = %+v, want a successful evaluation", r)
	}
	if m := resp.Results[1].Request.Model; m != "no-such-net" {
		t.Errorf("results are not positionally aligned: result 1 echoes model %q", m)
	}
}

func TestBatchValidatesItems(t *testing.T) {
	// The batch endpoint must apply the same request validation as the
	// single endpoint: a shape /v1/evaluate rejects with 4xx may not
	// silently evaluate to a result for a different configuration.
	s, eng := newTestServer(t, nil)
	body := `{"requests": [
		{"model": "tinyconvnet", "total_pes": -4},
		{"model": "tinyconvnet", "timeout_ms": -1},
		{"model": "tinyconvnet"}
	]}`
	var resp BatchResponse
	rec := doJSON(t, s, http.MethodPost, "/v1/evaluate/batch", body, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	if r := resp.Results[0]; r.Evaluation != nil || !strings.Contains(r.Error, "TotalPEs") {
		t.Errorf("result 0 = %+v, want a TotalPEs validation error", r)
	}
	if r := resp.Results[1]; r.Evaluation != nil || !strings.Contains(r.Error, "TimeoutMillis") {
		t.Errorf("result 1 = %+v, want a TimeoutMillis validation error", r)
	}
	if r := resp.Results[2]; r.Error != "" || r.Evaluation == nil {
		t.Errorf("result 2 = %+v, want the valid item evaluated", r)
	}
	if st := eng.Stats(); st.Evaluations != 1 {
		t.Errorf("engine evaluations = %d, want 1 (invalid items withheld)", st.Evaluations)
	}
}

func TestBodyOverLimitIs413(t *testing.T) {
	// Oversized bodies must be 413 (split and retry), not 400
	// (malformed) — clients treat the two differently. Needs a real
	// server: MaxBytesReader's error surfaces through the connection.
	s, _ := newTestServer(t, nil, WithMaxBodyBytes(512))
	ts := httptest.NewServer(s)
	defer ts.Close()
	big := fmt.Sprintf(`{"requests": [%s]}`,
		strings.Repeat(`{"model": "tinyconvnet"},`, 100)+`{"model": "tinyconvnet"}`)
	resp, err := http.Post(ts.URL+"/v1/evaluate/batch", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, want 413 (body %s)", resp.StatusCode, b)
	}
}

func TestBatchTooLarge(t *testing.T) {
	s, _ := newTestServer(t, nil, WithMaxBatch(2))
	body := `{"requests": [{"model": "tinyconvnet"}, {"model": "tinyconvnet"}, {"model": "tinyconvnet"}]}`
	rec := doJSON(t, s, http.MethodPost, "/v1/evaluate/batch", body, nil)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (body %s)", rec.Code, rec.Body)
	}
}

func TestBatchContextCancellation(t *testing.T) {
	// A client that disconnects mid-batch cancels the request context;
	// every unprocessed item must carry the cancellation instead of
	// evaluating against a dead connection.
	s, _ := newTestServer(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	body := `{"requests": [{"model": "tinyconvnet"}, {"model": "tinyconvnet", "extra_pes": 1}]}`
	req := httptest.NewRequest(http.MethodPost, "/v1/evaluate/batch", strings.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(resp.Results))
	}
	for i, r := range resp.Results {
		if r.Evaluation != nil || !strings.Contains(r.Error, context.Canceled.Error()) {
			t.Errorf("result %d = %+v, want a context cancellation error", i, r)
		}
	}
}

func TestStatsPartialHits(t *testing.T) {
	// /v1/stats must separate full cache hits from partial hits — hits
	// that reused a compilation but still ran Stage III/IV for a mode
	// whose timeline was not cached yet.
	s, eng := newTestServer(t, nil)
	eval := func() {
		t.Helper()
		rec := doJSON(t, s, http.MethodPost, "/v1/evaluate",
			`{"model": "tinyconvnet", "mode": "xinf"}`, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("evaluate: status %d, body %s", rec.Code, rec.Body)
		}
	}
	// First evaluation compiles the key once; the variant probe of the
	// same key is a hit that still has to schedule xinf — one partial.
	eval()
	var st StatsResponse
	doJSON(t, s, http.MethodGet, "/v1/stats", "", &st)
	if st.Engine.PartialHits != 1 || st.Engine.CacheHits != 1 {
		t.Errorf("after first evaluation: partial_hits=%d cache_hits=%d, want 1/1",
			st.Engine.PartialHits, st.Engine.CacheHits)
	}
	// The identical request serves both timelines from cache: hits
	// grow, partial hits don't.
	eval()
	doJSON(t, s, http.MethodGet, "/v1/stats", "", &st)
	if st.Engine.PartialHits != 1 || st.Engine.CacheHits != 3 {
		t.Errorf("after repeat: partial_hits=%d cache_hits=%d, want 1/3",
			st.Engine.PartialHits, st.Engine.CacheHits)
	}
	if es := eng.Stats(); es.PartialHits != st.Engine.PartialHits {
		t.Errorf("wire partial_hits=%d, engine says %d", st.Engine.PartialHits, es.PartialHits)
	}
}

func TestStreamHappyPathAndStats(t *testing.T) {
	// One streamed evaluation over the wire, then its footprint in
	// /v1/stats: engine counters plus the stream block snapshotting the
	// last run's throughput and p99.
	s, eng := newTestServer(t, nil)

	// Before any stream has run the stats payload must omit the block.
	var before StatsResponse
	doJSON(t, s, http.MethodGet, "/v1/stats", "", &before)
	if before.Stream != nil {
		t.Fatalf("stream stats present before any stream ran: %+v", before.Stream)
	}
	if before.Engine.StreamEvaluations != 0 || before.Engine.StreamInferences != 0 {
		t.Fatalf("engine stream counters nonzero at start: %+v", before.Engine)
	}

	var resp StreamResponse
	rec := doJSON(t, s, http.MethodPost, "/v1/stream",
		`{"models": [{"model": "tinyconvnet"}], "inferences": 4, "mode": "xinf",
		  "arrival": {"kind": "closed", "concurrency": 2}}`, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	if resp.Inferences != 4 || len(resp.Jobs) != 4 {
		t.Fatalf("served %d inferences with %d jobs, want 4/4", resp.Inferences, len(resp.Jobs))
	}
	if resp.ThroughputPerSec <= 0 || resp.Latency.P99Nanos <= 0 {
		t.Fatalf("degenerate stream metrics: %+v", resp)
	}
	if len(resp.PerModel) != 1 || resp.PerModel[0].Model != "tinyconvnet" {
		t.Fatalf("per-model results = %+v", resp.PerModel)
	}
	if st := eng.Stats(); st.StreamEvaluations != 1 || st.StreamInferences != 4 {
		t.Errorf("engine stream counters = %d/%d, want 1/4", st.StreamEvaluations, st.StreamInferences)
	}

	var stats StatsResponse
	doJSON(t, s, http.MethodGet, "/v1/stats", "", &stats)
	if stats.Engine.StreamEvaluations != 1 || stats.Engine.StreamInferences != 4 {
		t.Errorf("wire engine stream counters = %d/%d, want 1/4",
			stats.Engine.StreamEvaluations, stats.Engine.StreamInferences)
	}
	if stats.Stream == nil {
		t.Fatal("stream block missing from stats after a streamed evaluation")
	}
	if stats.Stream.Evaluations != 1 || stats.Stream.Inferences != 4 {
		t.Errorf("stream block counters = %+v, want 1 evaluation / 4 inferences", stats.Stream)
	}
	if stats.Stream.LastThroughputPerSec != resp.ThroughputPerSec {
		t.Errorf("last throughput = %g, want %g", stats.Stream.LastThroughputPerSec, resp.ThroughputPerSec)
	}
	if stats.Stream.LastP99Nanos != resp.Latency.P99Nanos {
		t.Errorf("last p99 = %g, want %g", stats.Stream.LastP99Nanos, resp.Latency.P99Nanos)
	}
	if len(stats.Stream.LastModels) != 1 || stats.Stream.LastModels[0] != "tinyconvnet" {
		t.Errorf("last models = %v, want [tinyconvnet]", stats.Stream.LastModels)
	}
}

func TestStreamRejectsInvalidRequests(t *testing.T) {
	s, _ := newTestServer(t, nil)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"unknown model", `{"models": [{"model": "no-such-net"}], "inferences": 1}`, http.StatusNotFound},
		{"no inferences", `{"models": [{"model": "tinyconvnet"}]}`, http.StatusBadRequest},
		{"bad arrival kind", `{"models": [{"model": "tinyconvnet"}], "inferences": 1,
			"arrival": {"kind": "zipf"}}`, http.StatusBadRequest},
		{"malformed", `{"models": `, http.StatusBadRequest},
	}
	for _, tc := range cases {
		var er ErrorResponse
		rec := doJSON(t, s, http.MethodPost, "/v1/stream", tc.body, &er)
		if rec.Code != tc.want {
			t.Errorf("%s: status = %d, want %d (body %s)", tc.name, rec.Code, tc.want, rec.Body)
		}
		if er.Error == "" {
			t.Errorf("%s: missing error message", tc.name)
		}
	}
}

func TestModelsEndpoint(t *testing.T) {
	s, _ := newTestServer(t, nil)
	var resp ModelsResponse
	rec := doJSON(t, s, http.MethodGet, "/v1/models", "", &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if !contains(resp.Models, "tinyyolov4") || !contains(resp.Models, "vgg16") {
		t.Errorf("models = %v, want the paper networks listed", resp.Models)
	}
	if !contains(resp.Solvers, "dp") {
		t.Errorf("solvers = %v, want dp listed", resp.Solvers)
	}
	if len(resp.Modes) == 0 {
		t.Error("modes list is empty")
	}
}

func TestHealthz(t *testing.T) {
	s, _ := newTestServer(t, nil)
	rec := doJSON(t, s, http.MethodGet, "/healthz", "", nil)
	if rec.Code != http.StatusOK || strings.TrimSpace(rec.Body.String()) != "ok" {
		t.Fatalf("healthz = %d %q", rec.Code, rec.Body)
	}
}

func TestStatsReportsLRUEviction(t *testing.T) {
	// A bounded engine under a model-variant sweep: the cache must hold
	// at most the limit, count every eviction, and keep serving
	// correct results; re-requesting an evicted key recompiles.
	const limit = 2
	s, eng := newTestServer(t, []clsacim.Option{clsacim.WithCacheLimit(limit)})
	const variants = 6
	for x := 1; x <= variants; x++ {
		body := fmt.Sprintf(`{"model": "tinyconvnet", "mode": "xinf", "extra_pes": %d, "weight_duplication": true}`, x)
		if rec := doJSON(t, s, http.MethodPost, "/v1/evaluate", body, nil); rec.Code != http.StatusOK {
			t.Fatalf("variant x=%d: status %d, body %s", x, rec.Code, rec.Body)
		}
	}
	var stats StatsResponse
	if rec := doJSON(t, s, http.MethodGet, "/v1/stats", "", &stats); rec.Code != http.StatusOK {
		t.Fatalf("stats status %d", rec.Code)
	}
	es := stats.Engine
	if es.CacheLimit != limit {
		t.Errorf("cache_limit = %d, want %d", es.CacheLimit, limit)
	}
	if es.CachedEntries > limit {
		t.Errorf("cached_entries = %d exceeds limit %d", es.CachedEntries, limit)
	}
	// One shared baseline + one compile per variant; everything beyond
	// the limit was evicted.
	wantCompiles := int64(variants + 1)
	if es.Compiles != wantCompiles {
		t.Errorf("compiles = %d, want %d", es.Compiles, wantCompiles)
	}
	wantEvictions := wantCompiles - limit
	if es.Evictions != wantEvictions {
		t.Errorf("cache_evictions = %d, want %d", es.Evictions, wantEvictions)
	}
	if stats.Server.Requests == 0 || stats.Server.BatchItems != 0 {
		t.Errorf("server stats = %+v, want requests counted and no batch items", stats.Server)
	}

	// The baseline (x=0) was evicted during the sweep; re-evaluating
	// any variant must transparently recompile it.
	before := eng.Stats().Compiles
	if rec := doJSON(t, s, http.MethodPost, "/v1/evaluate",
		`{"model": "tinyconvnet", "mode": "xinf", "extra_pes": 1, "weight_duplication": true}`, nil); rec.Code != http.StatusOK {
		t.Fatalf("re-request: status %d", rec.Code)
	}
	if after := eng.Stats().Compiles; after <= before {
		t.Errorf("re-requesting evicted keys did not recompile (compiles %d -> %d)", before, after)
	}
}

func TestConcurrentEvaluateSharesOneCompile(t *testing.T) {
	// The singleflight property over the wire: N concurrent identical
	// requests through a real HTTP server compile the key once.
	s, eng := newTestServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json",
				bytes.NewReader([]byte(`{"model": "tinyconvnet", "mode": "xinf", "extra_pes": 3, "weight_duplication": true}`)))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(resp.Body)
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, b)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	st := eng.Stats()
	// Two keys total: the shared lbl baseline and the requested point.
	if st.Compiles != 2 {
		t.Errorf("compiles = %d, want 2 (singleflight)", st.Compiles)
	}
	if st.Evaluations != n {
		t.Errorf("evaluations = %d, want %d", st.Evaluations, n)
	}
}

func TestErrorsAreCounted(t *testing.T) {
	s, _ := newTestServer(t, nil)
	doJSON(t, s, http.MethodPost, "/v1/evaluate", `{"model": "no-such-net"}`, nil)
	doJSON(t, s, http.MethodPost, "/v1/evaluate", `{bad json`, nil)
	var stats StatsResponse
	doJSON(t, s, http.MethodGet, "/v1/stats", "", &stats)
	if stats.Server.Errors != 2 {
		t.Errorf("server errors = %d, want 2", stats.Server.Errors)
	}
}

func TestStatusOfMapsSentinels(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{clsacim.ErrUnknownModel, http.StatusNotFound},
		{fmt.Errorf("wrapped: %w", clsacim.ErrUnknownModel), http.StatusNotFound},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{context.Canceled, 499},
		{clsacim.ErrUnknownSolver, http.StatusBadRequest},
		{clsacim.ErrUnknownMode, http.StatusBadRequest},
		{errors.New("boom"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := statusOf(tc.err); got != tc.want {
			t.Errorf("statusOf(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// Stream-counter consistency regression: the engine counter, the serve
// layer's stream block, and each response must all report served jobs —
// the engine previously counted requested inferences instead, so the
// three could drift.
func TestStreamStatsConsistentAcrossLayers(t *testing.T) {
	s, eng := newTestServer(t, nil)
	served := 0
	for _, inferences := range []int{3, 5} {
		var resp StreamResponse
		rec := doJSON(t, s, http.MethodPost, "/v1/stream",
			fmt.Sprintf(`{"models": [{"model": "tinyconvnet"}], "inferences": %d, "mode": "xinf",
			  "arrival": {"kind": "closed", "concurrency": 2}}`, inferences), &resp)
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
		}
		if resp.Inferences != len(resp.Jobs) {
			t.Fatalf("response inferences %d != served jobs %d", resp.Inferences, len(resp.Jobs))
		}
		served += len(resp.Jobs)
	}
	if st := eng.Stats(); st.StreamInferences != int64(served) {
		t.Errorf("engine StreamInferences = %d, want %d served jobs", st.StreamInferences, served)
	}
	var stats StatsResponse
	doJSON(t, s, http.MethodGet, "/v1/stats", "", &stats)
	if stats.Engine.StreamInferences != int64(served) {
		t.Errorf("wire engine stream_inferences = %d, want %d", stats.Engine.StreamInferences, served)
	}
	if stats.Stream == nil || stats.Stream.Inferences != int64(served) {
		t.Errorf("stream block = %+v, want %d inferences", stats.Stream, served)
	}
}
