package serve

// The resilience middleware chain. Every request flows through
//
//	accounting -> request-ID -> panic recovery -> [injected faults] ->
//	  admission gate (per endpoint class) -> handler
//
// assembled in Server.handler(). Each layer is independent: request-ID
// propagation tags every response (and error envelope) with an
// identifier clients and logs can correlate; panic recovery converts
// handler panics into 500 JSON envelopes (code "internal") instead of
// dropped connections, keeping the daemon alive; the admission gates
// bound concurrency and queueing per endpoint class and shed the
// overflow with 429/503 + Retry-After instead of letting a burst take
// every tenant down.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// RequestIDHeader carries the request identifier: clients may supply
// their own (any non-empty value is accepted and echoed), otherwise the
// server generates one. The response always carries the header, and
// error envelopes repeat it in request_id, so a failure in a client log
// can be matched to the daemon's log line.
const RequestIDHeader = "X-Request-ID"

type ctxKey int

const ctxKeyRequestID ctxKey = 0

// RequestID returns the request identifier attached by the Server's
// middleware, "" outside a request handled by it.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// requestID tags the request: accept the caller's ID or mint one, echo
// it on the response, and stash it in the context for error envelopes
// and logs.
func (s *Server) requestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			// Unique per process lifetime: start-time entropy plus a
			// monotonic counter. No coordination with other daemons is
			// attempted — correlation, not global uniqueness, is the job.
			id = fmt.Sprintf("%08x-%06x", uint32(s.start.UnixNano()), s.reqSeq.Add(1))
		}
		w.Header().Set(RequestIDHeader, id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), ctxKeyRequestID, id)))
	})
}

// recoverPanics converts a handler panic into a 500 JSON envelope (code
// "internal") and keeps the daemon serving. http.ErrAbortHandler is
// re-panicked: it is the sanctioned way to abort a connection without a
// response (fault injection uses it for connection drops), and net/http
// handles it quietly.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if err, ok := p.(error); ok && errors.Is(err, http.ErrAbortHandler) {
				panic(p)
			}
			s.panics.Add(1)
			s.logf("serve: panic serving %s %s [%s]: %v\n%s",
				r.Method, r.URL.Path, RequestID(r.Context()), p, debug.Stack())
			// If the handler already wrote a status line the 500 cannot
			// be delivered; the envelope write is then a no-op on the
			// client's view but the panic is logged either way.
			s.writeError(w, r, http.StatusInternalServerError,
				fmt.Errorf("serve: internal error serving %s %s", r.Method, r.URL.Path))
		}()
		next.ServeHTTP(w, r)
	})
}

// Endpoint classes of the admission gates. Evaluate, batch, and stream
// requests cost very different amounts of engine time, so each class is
// weighted (bounded) separately: a burst of heavy stream evaluations
// cannot starve cheap single evaluations of admission.
const (
	ClassEvaluate = "evaluate"
	ClassBatch    = "batch"
	ClassStream   = "stream"
)

// AdmissionLimits bounds one endpoint class: at most MaxConcurrent
// requests execute at once, at most MaxQueue more wait for a slot, and
// no request waits longer than MaxWait. Requests beyond the queue are
// shed immediately with 429; requests whose wait exceeds MaxWait are
// shed with 503. Both carry Retry-After.
type AdmissionLimits struct {
	MaxConcurrent int
	MaxQueue      int
	MaxWait       time.Duration
}

func (l AdmissionLimits) validate(class string) error {
	if l.MaxConcurrent <= 0 {
		return fmt.Errorf("serve: admission class %q needs MaxConcurrent > 0, have %d", class, l.MaxConcurrent)
	}
	if l.MaxQueue < 0 {
		return fmt.Errorf("serve: admission class %q has negative MaxQueue %d", class, l.MaxQueue)
	}
	if l.MaxWait < 0 {
		return fmt.Errorf("serve: admission class %q has negative MaxWait %v", class, l.MaxWait)
	}
	return nil
}

// WithAdmission bounds one endpoint class (ClassEvaluate, ClassBatch,
// ClassStream). Classes without a gate stay unbounded, preserving the
// pre-admission behavior.
func WithAdmission(class string, lim AdmissionLimits) Option {
	return func(s *Server) error {
		switch class {
		case ClassEvaluate, ClassBatch, ClassStream:
		default:
			return fmt.Errorf("serve: unknown admission class %q", class)
		}
		if err := lim.validate(class); err != nil {
			return err
		}
		s.gates[class] = newGate(class, lim)
		return nil
	}
}

// ParseAdmission reads the daemon's -admit flag: comma-separated
// class=concurrent[:queue[:wait]] specs, e.g.
//
//	evaluate=32:64:500ms,batch=4:8:1s,stream=2
//
// Queue defaults to 2x the concurrency, wait to 500ms.
func ParseAdmission(spec string) (map[string]AdmissionLimits, error) {
	out := make(map[string]AdmissionLimits)
	if strings.TrimSpace(spec) == "" {
		return out, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		class, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("serve: admission spec %q is not class=limits", kv)
		}
		parts := strings.Split(val, ":")
		if len(parts) > 3 {
			return nil, fmt.Errorf("serve: admission spec %q wants concurrent[:queue[:wait]]", kv)
		}
		lim := AdmissionLimits{MaxWait: 500 * time.Millisecond}
		var err error
		if lim.MaxConcurrent, err = strconv.Atoi(parts[0]); err != nil {
			return nil, fmt.Errorf("serve: admission spec %q: %w", kv, err)
		}
		lim.MaxQueue = 2 * lim.MaxConcurrent
		if len(parts) > 1 {
			if lim.MaxQueue, err = strconv.Atoi(parts[1]); err != nil {
				return nil, fmt.Errorf("serve: admission spec %q: %w", kv, err)
			}
		}
		if len(parts) > 2 {
			if lim.MaxWait, err = time.ParseDuration(parts[2]); err != nil {
				return nil, fmt.Errorf("serve: admission spec %q: %w", kv, err)
			}
		}
		if err := lim.validate(class); err != nil {
			return nil, err
		}
		out[class] = lim
	}
	return out, nil
}

// WithMiddleware inserts mw into the chain between panic recovery and
// the admission gates. Its intended use is fault injection
// (internal/faultinject): faults fire inside the recovery layer, so an
// injected panic exercises the same path a real handler panic takes,
// while injected connection drops pass through recovery via
// http.ErrAbortHandler.
func WithMiddleware(mw func(http.Handler) http.Handler) Option {
	return func(s *Server) error {
		if mw == nil {
			return errors.New("serve: nil middleware")
		}
		s.inner = mw
		return nil
	}
}

// gate is one endpoint class's admission control: a concurrency
// semaphore with a bounded wait queue. Shedding is immediate when the
// queue is full and deadline-bounded while queued, so an overloaded
// daemon answers quickly instead of hanging clients.
type gate struct {
	class string
	lim   AdmissionLimits
	slots chan struct{}
	queue chan struct{}

	admitted atomic.Int64
	shed     atomic.Int64
	inflight atomic.Int64
	queued   atomic.Int64
}

func newGate(class string, lim AdmissionLimits) *gate {
	return &gate{
		class: class,
		lim:   lim,
		slots: make(chan struct{}, lim.MaxConcurrent),
		queue: make(chan struct{}, lim.MaxQueue),
	}
}

// retryAfterSeconds suggests when a shed client should come back: at
// least one second, or the queue-drain horizon implied by MaxWait.
func (g *gate) retryAfterSeconds() int {
	secs := int(g.lim.MaxWait / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// acquire admits the request or reports how it was shed: status is 0 on
// admission (release must be called exactly once), 429 when the wait
// queue is full, 503 when the slot wait timed out or the client went
// away while queued.
func (g *gate) acquire(ctx context.Context) (release func(), status int) {
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		g.inflight.Add(1)
		return g.releaseSlot, 0
	default:
	}
	// No free slot: try to queue.
	select {
	case g.queue <- struct{}{}:
	default:
		g.shed.Add(1)
		return nil, http.StatusTooManyRequests
	}
	g.queued.Add(1)
	defer func() {
		g.queued.Add(-1)
		<-g.queue
	}()
	timer := time.NewTimer(g.lim.MaxWait)
	defer timer.Stop()
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		g.inflight.Add(1)
		return g.releaseSlot, 0
	case <-timer.C:
		g.shed.Add(1)
		return nil, http.StatusServiceUnavailable
	case <-ctx.Done():
		g.shed.Add(1)
		return nil, http.StatusServiceUnavailable
	}
}

func (g *gate) releaseSlot() {
	g.inflight.Add(-1)
	<-g.slots
}

// admit wraps h with the class's admission gate; classes without a
// configured gate pass through untouched.
func (s *Server) admit(class string, h http.HandlerFunc) http.HandlerFunc {
	g, ok := s.gates[class]
	if !ok {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		release, status := g.acquire(r.Context())
		if status != 0 {
			s.totalShed.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(g.retryAfterSeconds()))
			s.writeError(w, r, status,
				fmt.Errorf("serve: %s overloaded (limit %d in flight, %d queued); retry later",
					class, g.lim.MaxConcurrent, g.lim.MaxQueue))
			return
		}
		defer release()
		h(w, r)
	}
}

// admissionStats snapshots every configured gate, stable by class name.
func (s *Server) admissionStats() []AdmissionClassStats {
	var out []AdmissionClassStats
	for _, class := range []string{ClassEvaluate, ClassBatch, ClassStream} {
		g, ok := s.gates[class]
		if !ok {
			continue
		}
		out = append(out, AdmissionClassStats{
			Class:         class,
			MaxConcurrent: g.lim.MaxConcurrent,
			MaxQueue:      g.lim.MaxQueue,
			InFlight:      g.inflight.Load(),
			Queued:        g.queued.Load(),
			Admitted:      g.admitted.Load(),
			Shed:          g.shed.Load(),
		})
	}
	return out
}
