package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"clsacim"
)

// panicOn is a test middleware that panics (or aborts) when the request
// carries the trigger header, standing in for a buggy handler below the
// recovery layer.
func panicOn(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Header.Get("X-Chaos") {
		case "panic":
			panic("chaos: injected panic")
		case "abort":
			panic(http.ErrAbortHandler)
		}
		next.ServeHTTP(w, r)
	})
}

func TestPanicRecoveryKeepsServing(t *testing.T) {
	s, _ := newTestServer(t, nil, WithMiddleware(panicOn))

	req := httptest.NewRequest(http.MethodPost, "/v1/evaluate", nil)
	req.Header.Set("X-Chaos", "panic")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500; body %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var er ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatalf("500 body %q is not a JSON envelope: %v", rec.Body, err)
	}
	if er.Code != CodeInternal {
		t.Errorf("code = %q, want %q", er.Code, CodeInternal)
	}
	if er.RequestID == "" {
		t.Error("500 envelope has no request_id")
	}

	// The daemon survived: the same server keeps serving real requests.
	var ev Evaluation
	rec = doJSON(t, s, http.MethodPost, "/v1/evaluate", `{"model": "tinyconvnet", "mode": "lbl"}`, &ev)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-panic evaluate: status = %d, body %s", rec.Code, rec.Body)
	}

	var stats StatsResponse
	doJSON(t, s, http.MethodGet, "/v1/stats", "", &stats)
	if stats.Server.Panics != 1 {
		t.Errorf("stats panics = %d, want 1", stats.Server.Panics)
	}
}

func TestAbortHandlerPanicPassesThrough(t *testing.T) {
	s, _ := newTestServer(t, nil, WithMiddleware(panicOn))
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set("X-Chaos", "abort")
	defer func() {
		if p := recover(); p != http.ErrAbortHandler {
			t.Errorf("recovered %v, want http.ErrAbortHandler to pass through", p)
		}
	}()
	s.ServeHTTP(httptest.NewRecorder(), req)
	t.Fatal("ServeHTTP returned; want the abort panic to propagate to net/http")
}

func TestRequestIDEchoedAndMinted(t *testing.T) {
	s, _ := newTestServer(t, nil)

	// A caller-supplied ID is echoed on the response and in error
	// envelopes.
	req := httptest.NewRequest(http.MethodPost, "/v1/evaluate", nil)
	req.Header.Set(RequestIDHeader, "caller-7")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if got := rec.Header().Get(RequestIDHeader); got != "caller-7" {
		t.Errorf("echoed request ID = %q, want caller-7", got)
	}
	var er ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatalf("decoding error envelope: %v", err)
	}
	if er.RequestID != "caller-7" {
		t.Errorf("envelope request_id = %q, want caller-7", er.RequestID)
	}

	// Without a caller ID the server mints distinct ones.
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		rec := doJSON(t, s, http.MethodGet, "/healthz", "", nil)
		id := rec.Header().Get(RequestIDHeader)
		if id == "" {
			t.Fatal("no request ID minted")
		}
		if seen[id] {
			t.Fatalf("request ID %q repeated", id)
		}
		seen[id] = true
	}
}

// TestErrorEnvelopesCarryContentTypeAndRequestID audits every
// non-handler error path: the 404 catch-all, 405, and 413 must all
// return the JSON envelope, not plain text.
func TestErrorEnvelopesCarryContentTypeAndRequestID(t *testing.T) {
	s, _ := newTestServer(t, nil, WithMaxBodyBytes(128))
	cases := []struct {
		name, method, path, body string
		status                   int
	}{
		{"catch-all 404", http.MethodGet, "/nope", "", http.StatusNotFound},
		{"method 405", http.MethodGet, "/v1/evaluate", "", http.StatusMethodNotAllowed},
		{"oversized 413", http.MethodPost, "/v1/evaluate",
			`{"model": "` + strings.Repeat("a", 256) + `"}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var er ErrorResponse
			rec := doJSON(t, s, tc.method, tc.path, tc.body, &er)
			if rec.Code != tc.status {
				t.Fatalf("status = %d, want %d; body %s", rec.Code, tc.status, rec.Body)
			}
			if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type = %q", ct)
			}
			if er.Error == "" {
				t.Error("envelope has no error message")
			}
			if er.RequestID == "" {
				t.Error("envelope has no request_id")
			}
		})
	}
}

// TestAdmissionShedsBurst drives a burst through a tiny gate wrapped
// around a blocking handler: one request executes, one queues (and is
// shed with 503 when its wait expires), the overflow is shed with 429
// immediately, and all shed responses carry Retry-After and the
// overloaded code.
func TestAdmissionShedsBurst(t *testing.T) {
	s, _ := newTestServer(t, nil,
		WithAdmission(ClassEvaluate, AdmissionLimits{
			MaxConcurrent: 1, MaxQueue: 1, MaxWait: 50 * time.Millisecond,
		}))
	g := s.gates[ClassEvaluate]

	release := make(chan struct{})
	h := s.admit(ClassEvaluate, func(w http.ResponseWriter, r *http.Request) {
		<-release
		w.WriteHeader(http.StatusOK)
	})

	do := func() *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h(rec, httptest.NewRequest(http.MethodPost, "/v1/evaluate", nil))
		return rec
	}
	waitFor := func(name string, f func() bool) {
		t.Helper()
		for i := 0; i < 1000; i++ {
			if f() {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", name)
	}

	var wg sync.WaitGroup
	results := make(chan int, 2)
	wg.Add(1)
	go func() { // A: admitted, blocks in the handler
		defer wg.Done()
		results <- do().Code
	}()
	waitFor("A in flight", func() bool { return g.inflight.Load() == 1 })
	wg.Add(1)
	go func() { // B: queued, will wait out MaxWait
		defer wg.Done()
		results <- do().Code
	}()
	waitFor("B queued", func() bool { return g.queued.Load() == 1 })

	// C and D find the slot busy and the queue full: immediate 429.
	for _, name := range []string{"C", "D"} {
		rec := do()
		if rec.Code != http.StatusTooManyRequests {
			t.Errorf("%s: status = %d, want 429", name, rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Errorf("%s: 429 without Retry-After", name)
		}
		var er ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Code != CodeOverloaded {
			t.Errorf("%s: envelope %s, want code %q", name, rec.Body, CodeOverloaded)
		}
	}

	// B's wait expires: 503. Then A is released and completes.
	if code := <-results; code != http.StatusServiceUnavailable {
		t.Errorf("queued request: status = %d, want 503", code)
	}
	close(release)
	if code := <-results; code != http.StatusOK {
		t.Errorf("admitted request: status = %d, want 200", code)
	}
	wg.Wait()

	if a, sh := g.admitted.Load(), g.shed.Load(); a != 1 || sh != 3 {
		t.Errorf("gate counters: admitted %d, shed %d; want 1, 3", a, sh)
	}
	if s.totalShed.Load() != 3 {
		t.Errorf("server shed counter = %d, want 3", s.totalShed.Load())
	}
}

func TestAdmissionStatsExposed(t *testing.T) {
	s, _ := newTestServer(t, nil,
		WithAdmission(ClassEvaluate, AdmissionLimits{MaxConcurrent: 8, MaxQueue: 16, MaxWait: time.Second}),
		WithAdmission(ClassBatch, AdmissionLimits{MaxConcurrent: 2, MaxQueue: 4, MaxWait: time.Second}))
	var ev Evaluation
	rec := doJSON(t, s, http.MethodPost, "/v1/evaluate", `{"model": "tinyconvnet", "mode": "lbl"}`, &ev)
	if rec.Code != http.StatusOK {
		t.Fatalf("evaluate through gate: status = %d, body %s", rec.Code, rec.Body)
	}
	var stats StatsResponse
	doJSON(t, s, http.MethodGet, "/v1/stats", "", &stats)
	if len(stats.Server.Admission) != 2 {
		t.Fatalf("admission stats for %d classes, want 2", len(stats.Server.Admission))
	}
	ev0 := stats.Server.Admission[0]
	if ev0.Class != ClassEvaluate || ev0.MaxConcurrent != 8 || ev0.Admitted != 1 || ev0.Shed != 0 {
		t.Errorf("evaluate class stats = %+v", ev0)
	}
	if stats.Server.Admission[1].Class != ClassBatch {
		t.Errorf("second class = %q, want batch", stats.Server.Admission[1].Class)
	}
}

func TestParseAdmission(t *testing.T) {
	gates, err := ParseAdmission("evaluate=32:64:500ms,batch=4:8:1s,stream=2")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]AdmissionLimits{
		ClassEvaluate: {MaxConcurrent: 32, MaxQueue: 64, MaxWait: 500 * time.Millisecond},
		ClassBatch:    {MaxConcurrent: 4, MaxQueue: 8, MaxWait: time.Second},
		ClassStream:   {MaxConcurrent: 2, MaxQueue: 4, MaxWait: 500 * time.Millisecond},
	}
	for class, w := range want {
		if got := gates[class]; got != w {
			t.Errorf("%s = %+v, want %+v", class, got, w)
		}
	}
	for _, bad := range []string{"evaluate", "evaluate=0", "evaluate=1:2:3:4", "evaluate=x", "evaluate=1:2:nope"} {
		if _, err := ParseAdmission(bad); err == nil {
			t.Errorf("ParseAdmission(%q) accepted", bad)
		}
	}
	// Unknown classes are rejected at option time, not parse time.
	if _, err := New(mustEngine(t), WithAdmission("models", AdmissionLimits{MaxConcurrent: 1})); err == nil {
		t.Error("WithAdmission accepted unknown class")
	}
}

func mustEngine(t *testing.T) *clsacim.Engine {
	t.Helper()
	eng, err := clsacim.New()
	if err != nil {
		t.Fatal(err)
	}
	return eng
}
