package clsacim

import "testing"

// mobilenet_facade_test.go covers the depthwise-separable extension
// through the public API.

func TestMobileNetV1EndToEnd(t *testing.T) {
	m := load(t, "mobilenetv1")
	ev, err := Evaluate(m, Config{ExtraPEs: 32, WeightDuplication: true, TargetSets: 26}, ModeCrossLayer)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Result.PEmin != 238 {
		t.Errorf("MobileNetV1 PEmin = %d, want 238 (packed depthwise mapping)", ev.Result.PEmin)
	}
	if ev.Speedup <= 1 {
		t.Errorf("speedup %.2f <= 1", ev.Speedup)
	}
	rel := (ev.Speedup - ev.Eq3Speedup) / ev.Speedup
	if rel < -0.01 || rel > 0.01 {
		t.Errorf("Eq3 %.3f vs measured %.3f", ev.Eq3Speedup, ev.Speedup)
	}
	// Simulator agreement on the depthwise workload.
	comp, err := Compile(m, Config{ExtraPEs: 32, WeightDuplication: true, TargetSets: 26})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := comp.Schedule(ModeCrossLayer)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := comp.Simulate(ModeCrossLayer)
	if err != nil {
		t.Fatal(err)
	}
	if sr.MakespanCycles != rep.MakespanCycles {
		t.Errorf("sim %d != schedule %d", sr.MakespanCycles, rep.MakespanCycles)
	}
}

func TestVerifyFunctionalDepthwise(t *testing.T) {
	m, err := LoadModel("tinydwnet", ModelOptions{WithWeights: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyFunctional(m, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxErrCanonicalization > 1e-5 {
		t.Errorf("canonicalization error %v", rep.MaxErrCanonicalization)
	}
	if rep.MaxErrDuplication != 0 {
		t.Errorf("duplication rewrite error %v", rep.MaxErrDuplication)
	}
	if rep.MaxErrCrossbar > 0.15*rep.OutputScale+0.05 {
		t.Errorf("crossbar error %v vs scale %v", rep.MaxErrCrossbar, rep.OutputScale)
	}
}

func TestMobileNetListedInZoo(t *testing.T) {
	found := false
	for _, name := range AllModels() {
		if name == "mobilenetv1" {
			found = true
		}
	}
	if !found {
		t.Error("mobilenetv1 missing from AllModels")
	}
}
