package clsacim

import (
	"context"
	"testing"
)

// validation_test.go covers the WithValidation engine option: every
// timeline the Engine produces is machine-checked by the
// engine-independent invariant checker (internal/check).

// TestWithValidationAcceptsAllModes: validation-on evaluation succeeds
// across the policy family, mapping knobs, and data-movement costs —
// i.e. the checker agrees with the scheduler on real workloads.
func TestWithValidationAcceptsAllModes(t *testing.T) {
	eng, err := New(WithValidation(), WithTargetSets(12))
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range []Request{
		{Model: "tinyconvnet", Mode: ModeLayerByLayer},
		{Model: "tinyconvnet", Mode: ModeWindow(2)},
		{Model: "tinybranchnet", Mode: ModeCrossLayer, ExtraPEs: 6, WeightDuplication: true},
		{Model: "tinyyolov4", Mode: ModeCrossLayer, ExtraPEs: 16, WeightDuplication: true},
		// Repeated request: served from the timeline cache, exercising
		// the validate-once memoization path.
		{Model: "tinyconvnet", Mode: ModeLayerByLayer},
	} {
		ev, err := eng.Evaluate(context.Background(), req)
		if err != nil {
			t.Fatalf("%s %s: %v", req.Model, req.Mode, err)
		}
		if ev.Result.MakespanCycles <= 0 {
			t.Fatalf("%s %s: empty result", req.Model, req.Mode)
		}
	}
}

// TestWithValidationEdgeCost: validation must pass when data movement is
// charged on dependency edges (the checker replays the same cost model).
func TestWithValidationEdgeCost(t *testing.T) {
	eng, err := New(WithValidation(), WithTargetSets(9), WithNoC(2), WithGPEU(1))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := eng.Evaluate(context.Background(), Request{Model: "tinybranchnet", Mode: ModeCrossLayer})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Result.MakespanCycles <= 0 {
		t.Fatal("empty result")
	}
}

// TestWithValidationVirtualized: virtualized timelines (layers
// time-sharing a swap pool below PEmin, with reload gaps) satisfy the
// invariant set too — crossbar exclusivity is temporal, so PE sharing is
// legal exactly because layer-by-layer execution serializes it.
func TestWithValidationVirtualized(t *testing.T) {
	cfg := Config{
		TotalPEs:             150,
		WeightVirtualization: true,
		TargetSets:           26,
	}
	eng, err := New(WithValidation(), WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Schedule(context.Background(), Request{Model: "vgg16", Mode: ModeLayerByLayer})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReloadCycles <= 0 {
		t.Fatal("virtualized schedule reports no reload cycles")
	}
}
