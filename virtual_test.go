package clsacim

import (
	"strings"
	"testing"
)

// virtual_test.go covers the weight-virtualization extension (running
// below PEmin, paper §V-C future work) and the energy estimate through
// the public API.

func TestVirtualizationRequiresOptIn(t *testing.T) {
	_, err := Compile(load(t, "vgg16"), Config{TotalPEs: 150})
	if err == nil {
		t.Fatal("running below PEmin without opting in was accepted")
	}
	if !strings.Contains(err.Error(), "WeightVirtualization") {
		t.Errorf("error does not mention the opt-in: %v", err)
	}
}

func TestVirtualizedCompileAndSchedule(t *testing.T) {
	c, err := Compile(load(t, "vgg16"), Config{
		TotalPEs:             150,
		WeightVirtualization: true,
		TargetSets:           26,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Virtualized() {
		t.Fatal("compilation not marked virtualized")
	}
	if c.ResidentLayers() >= c.BaseLayerCount() {
		t.Error("no layers swapped despite F < PEmin")
	}
	if c.ReloadCyclesTotal() <= 0 || c.CrossbarWritesPerInference() <= 0 {
		t.Error("no reload cost accounted")
	}
	rep, err := c.Schedule(ModeLayerByLayer)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReloadCycles != c.ReloadCyclesTotal() {
		t.Errorf("report reload %d != compiled %d", rep.ReloadCycles, c.ReloadCyclesTotal())
	}
	// The virtualized makespan must exceed the fitting architecture's
	// layer-by-layer makespan by exactly the reload time.
	full, err := Compile(load(t, "vgg16"), Config{TargetSets: 26})
	if err != nil {
		t.Fatal(err)
	}
	fullRep, err := full.Schedule(ModeLayerByLayer)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MakespanCycles != fullRep.MakespanCycles+rep.ReloadCycles {
		t.Errorf("virtual makespan %d != full %d + reload %d",
			rep.MakespanCycles, fullRep.MakespanCycles, rep.ReloadCycles)
	}
	if _, err := c.Schedule(ModeCrossLayer); err == nil {
		t.Error("cross-layer scheduling accepted below PEmin")
	}
}

func TestVirtualizationLatencyMonotoneInPEs(t *testing.T) {
	m := load(t, "vgg16")
	var prev int64 // shrinking F must never make inference faster
	for _, f := range []int{240, 186, 139, 93} {
		cfg := Config{TotalPEs: f, WeightVirtualization: f < 233, TargetSets: 26}
		c, err := Compile(m, cfg)
		if err != nil {
			t.Fatalf("F=%d: %v", f, err)
		}
		rep, err := c.Schedule(ModeLayerByLayer)
		if err != nil {
			t.Fatal(err)
		}
		if rep.MakespanCycles < prev {
			t.Errorf("F=%d: makespan %d faster than larger architecture's %d",
				f, rep.MakespanCycles, prev)
		}
		prev = rep.MakespanCycles
	}
}

func TestVirtualizationWriteCostScales(t *testing.T) {
	m := load(t, "vgg16")
	cheap, err := Compile(m, Config{TotalPEs: 150, WeightVirtualization: true,
		WriteCyclesPerCrossbar: 64, TargetSets: 26})
	if err != nil {
		t.Fatal(err)
	}
	expensive, err := Compile(m, Config{TotalPEs: 150, WeightVirtualization: true,
		WriteCyclesPerCrossbar: 4096, TargetSets: 26})
	if err != nil {
		t.Fatal(err)
	}
	if expensive.ReloadCyclesTotal() <= cheap.ReloadCyclesTotal() {
		t.Errorf("reload %d (4096 cy) <= %d (64 cy)",
			expensive.ReloadCyclesTotal(), cheap.ReloadCyclesTotal())
	}
}

func TestEnergyReporting(t *testing.T) {
	m := load(t, "tinyyolov4")
	off, err := Evaluate(m, Config{TargetSets: 26}, ModeCrossLayer)
	if err != nil {
		t.Fatal(err)
	}
	if off.Result.EnergyMicroJoule != 0 {
		t.Error("energy reported without being enabled")
	}
	on, err := Evaluate(m, Config{TargetSets: 26, EnergyPerMVMNanoJ: 0.1}, ModeCrossLayer)
	if err != nil {
		t.Fatal(err)
	}
	if on.Result.EnergyMicroJoule <= 0 {
		t.Error("energy not reported")
	}
	// Dynamic energy is work-proportional: both schedules execute the
	// same MVMs, so lbl and xinf energy must be equal without
	// duplication overheads.
	lbl, err := Evaluate(m, Config{TargetSets: 26, EnergyPerMVMNanoJ: 0.1}, ModeLayerByLayer)
	if err != nil {
		t.Fatal(err)
	}
	if diff := on.Result.EnergyMicroJoule - lbl.Result.EnergyMicroJoule; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("xinf energy %v != lbl energy %v (same work)",
			on.Result.EnergyMicroJoule, lbl.Result.EnergyMicroJoule)
	}
}

func TestVirtualEnergyIncludesWrites(t *testing.T) {
	m := load(t, "vgg16")
	c, err := Compile(m, Config{TotalPEs: 150, WeightVirtualization: true,
		TargetSets: 26, EnergyPerMVMNanoJ: 0.1, EnergyPerWriteNanoJ: 1000})
	if err != nil {
		t.Fatal(err)
	}
	withWrites, err := c.Schedule(ModeLayerByLayer)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Compile(m, Config{TotalPEs: 150, WeightVirtualization: true,
		TargetSets: 26, EnergyPerMVMNanoJ: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	withoutWrites, err := c2.Schedule(ModeLayerByLayer)
	if err != nil {
		t.Fatal(err)
	}
	if withWrites.EnergyMicroJoule <= withoutWrites.EnergyMicroJoule {
		t.Errorf("write energy not included: %v vs %v",
			withWrites.EnergyMicroJoule, withoutWrites.EnergyMicroJoule)
	}
}
