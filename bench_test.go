// bench_test.go regenerates every table and figure of the paper's
// evaluation (§V) as Go benchmarks — one benchmark per artifact — plus
// the ablation studies and per-stage micro benchmarks. Run with
//
//	go test -bench=. -benchmem
//
// The figure benchmarks report the headline quantities (speedups,
// utilizations) as custom metrics next to the usual ns/op, so a bench
// run doubles as a reproduction log. cmd/paperbench prints the same
// experiments as human-readable tables.
package clsacim_test

import (
	"context"
	"fmt"
	"io"
	"testing"

	clsacim "clsacim"
	"clsacim/internal/bench"
	"clsacim/internal/deps"
	"clsacim/internal/frontend"
	"clsacim/internal/im2col"
	"clsacim/internal/mapping"
	"clsacim/internal/models"
	"clsacim/internal/schedule"
	"clsacim/internal/sets"
	"clsacim/internal/sim"

	"clsacim/internal/cim"
)

func harness() *bench.Harness {
	// Default configuration: 256x256 PEs, tMVM = 1400 ns, finest set
	// granularity (the paper's "maximum achievable utilization and
	// minimum inference latency").
	return bench.NewHarness(clsacim.Config{})
}

func find(points []bench.Point, model, label string) bench.Point {
	for _, p := range points {
		if p.Model == model && p.Label() == label {
			return p
		}
	}
	return bench.Point{}
}

// BenchmarkTableI_TinyYOLOv4Structure regenerates paper Table I: the
// TinyYOLOv4 base-layer structure and PEmin = 117.
func BenchmarkTableI_TinyYOLOv4Structure(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		rows, peMin, err := h.RunTableI()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 21 || peMin != 117 {
			b.Fatalf("structure mismatch: %d rows, PEmin %d", len(rows), peMin)
		}
		b.ReportMetric(float64(peMin), "PEmin")
	}
}

// BenchmarkTableII_BenchmarkList regenerates paper Table II: base-layer
// counts and minimum PE requirements of all six benchmarks.
func BenchmarkTableII_BenchmarkList(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		rows, err := h.RunTableII()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatalf("%d rows", len(rows))
		}
		b.ReportMetric(float64(rows[0].MinPEs), "tinyyolov3_PEmin")
		b.ReportMetric(float64(rows[5].MinPEs), "resnet152_PEmin")
	}
}

// BenchmarkFig6a_WdupLayerByLayerGantt regenerates the Fig. 6a
// visualization: TinyYOLOv4 with wdup+16 under layer-by-layer
// scheduling.
func BenchmarkFig6a_WdupLayerByLayerGantt(b *testing.B) {
	h := bench.NewHarness(clsacim.Config{TargetSets: 26})
	for i := 0; i < b.N; i++ {
		rep, dups, err := h.RunFig6Gantt(clsacim.ModeLayerByLayer)
		if err != nil {
			b.Fatal(err)
		}
		if len(dups) == 0 {
			b.Fatal("no duplicated layers at x=16")
		}
		if err := rep.RenderGantt(io.Discard, 100); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.MakespanCycles), "makespan_cycles")
	}
}

// BenchmarkFig6b_WdupCLSAGantt regenerates the Fig. 6b visualization:
// the same mapping under CLSA-CIM cross-layer scheduling.
func BenchmarkFig6b_WdupCLSAGantt(b *testing.B) {
	h := bench.NewHarness(clsacim.Config{TargetSets: 26})
	for i := 0; i < b.N; i++ {
		rep, _, err := h.RunFig6Gantt(clsacim.ModeCrossLayer)
		if err != nil {
			b.Fatal(err)
		}
		if err := rep.RenderGantt(io.Discard, 100); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.MakespanCycles), "makespan_cycles")
		b.ReportMetric(rep.Utilization*100, "utilization_pct")
	}
}

// BenchmarkFig6c_TinyYOLOv4CaseStudy regenerates the Fig. 6c series:
// speedup and utilization of every mapping/scheduling combination for
// TinyYOLOv4. Paper headline: xinf utilization 4.1 %; wdup+32 + xinf
// utilization 28.4 %, speedup 21.9x.
func BenchmarkFig6c_TinyYOLOv4CaseStudy(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		points, err := h.RunFig6c()
		if err != nil {
			b.Fatal(err)
		}
		xinf := find(points, "tinyyolov4", "xinf")
		best := find(points, "tinyyolov4", "wdup+32 xinf")
		b.ReportMetric(xinf.Utilization*100, "xinf_ut_pct")
		b.ReportMetric(best.Utilization*100, "wdup32_xinf_ut_pct")
		b.ReportMetric(best.Speedup, "wdup32_xinf_speedup")
	}
}

// BenchmarkFig7a_SpeedupAllBenchmarks regenerates the Fig. 7a speedup
// sweep over all Table II benchmarks. Paper headline: best combination
// 29.2x (TinyYOLOv3); xinf alone up to 4.4x for large models; wdup alone
// 1.1-1.9x.
func BenchmarkFig7a_SpeedupAllBenchmarks(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		points, err := h.RunFig7()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(find(points, "tinyyolov3", "wdup+32 xinf").Speedup, "tinyyolov3_best_speedup")
		b.ReportMetric(find(points, "resnet152", "xinf").Speedup, "resnet152_xinf_speedup")
		b.ReportMetric(find(points, "vgg19", "wdup+32 lbl").Speedup, "vgg19_wdup32_speedup")
	}
}

// BenchmarkFig7b_UtilizationAllBenchmarks regenerates the Fig. 7b
// utilization sweep. Paper headline: TinyYOLOv3 peaks at 20.1 % (a 17.9x
// gain); deep ResNets stay below 10 %.
func BenchmarkFig7b_UtilizationAllBenchmarks(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		points, err := h.RunFig7()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(find(points, "tinyyolov3", "wdup+32 xinf").Utilization*100, "tinyyolov3_ut_pct")
		b.ReportMetric(find(points, "resnet50", "wdup+32 xinf").Utilization*100, "resnet50_ut_pct")
		b.ReportMetric(find(points, "resnet152", "wdup+32 xinf").Utilization*100, "resnet152_ut_pct")
	}
}

// BenchmarkAblationSetGranularity sweeps the Stage I granularity
// (DESIGN.md ablation: scheduling granularity vs speedup).
func BenchmarkAblationSetGranularity(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		points, err := h.RunGranularity("tinyyolov4", []int{8, 26, 104, 416, 4096})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].Speedup, "coarse8_speedup")
		b.ReportMetric(points[len(points)-1].Speedup, "fine4096_speedup")
	}
}

// BenchmarkAblationDuplicationSolver compares the Optimization Problem 1
// solvers (none/greedy/dp) and the bottleneck-aware minmax extension
// under cross-layer scheduling.
func BenchmarkAblationDuplicationSolver(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		points, err := h.RunSolvers("tinyyolov3", 32)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			b.ReportMetric(p.Speedup, p.Param+"_speedup")
		}
	}
}

// BenchmarkAblationNoCCost quantifies the sensitivity of the headline
// speedup to per-hop NoC data-movement cost (paper §V-C future work).
func BenchmarkAblationNoCCost(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		points, err := h.RunNoCCost("tinyyolov4", []float64{0, 1, 4})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].Speedup, "hop0_speedup")
		b.ReportMetric(points[len(points)-1].Speedup, "hop4_speedup")
	}
}

// BenchmarkAblationCrossbarSize retargets the architecture across PE
// dimensions (paper §V-C: crossbar dimensions are an input parameter).
func BenchmarkAblationCrossbarSize(b *testing.B) {
	h := harness()
	dims := []int{64, 128, 256, 512}
	for i := 0; i < b.N; i++ {
		points, err := h.RunCrossbarSize("vgg16", dims)
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != len(dims) {
			b.Fatalf("%d points for %d crossbar sizes", len(points), len(dims))
		}
		for j, p := range points {
			b.ReportMetric(p.Speedup, fmt.Sprintf("%dx%d_speedup", dims[j], dims[j]))
		}
	}
}

// BenchmarkAblationVirtualization sweeps the PE count below PEmin
// (paper §V-C future work): latency and endurance cost of weight
// reloading.
func BenchmarkAblationVirtualization(b *testing.B) {
	h := harness()
	for i := 0; i < b.N; i++ {
		points, err := h.RunVirtualization("vgg16", []float64{1, 0.8, 0.6, 0.4})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].Speedup, "full_speedup")
		b.ReportMetric(points[len(points)-1].Speedup, "pe40pct_speedup")
	}
}

// --- Per-stage micro benchmarks -------------------------------------

// BenchmarkCompileTinyYOLOv4 measures the full compilation pipeline
// (canonicalize, map, Stage I, Stage II) at fine granularity.
func BenchmarkCompileTinyYOLOv4(b *testing.B) {
	m, err := clsacim.LoadModel("tinyyolov4", clsacim.ModelOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := clsacim.Compile(m, clsacim.Config{ExtraPEs: 32, WeightDuplication: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverSearch measures a full compilation with the scored
// search solver at its default budget: every one of the ~48 candidate
// duplication vectors is scored by a Stage I-IV coarse run, so this is
// the cost of trading compile time for schedule quality. Coarse Stage I
// granularity (26 sets) keeps the per-candidate evaluation at the scale
// the ablation and the serving path use.
func BenchmarkSolverSearch(b *testing.B) {
	m, err := clsacim.LoadModel("tinyyolov4", clsacim.ModelOptions{})
	if err != nil {
		b.Fatal(err)
	}
	cfg := clsacim.Config{
		TargetSets: 26, ExtraPEs: 32, WeightDuplication: true,
		Solver: "search", SolverSeed: 1, SolverMode: "xinf",
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := clsacim.Compile(m, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// stageIVWorkload lowers TinyYOLOv4 (wdup+32, fine granularity) through
// Stages I-II for the scheduler/simulator micro benchmarks.
func stageIVWorkload(b *testing.B) (*mapping.Mapping, *deps.Graph, cim.Config) {
	b.Helper()
	g := models.MustBuild(models.TinyYOLOv4, models.Options{})
	if _, err := frontend.Canonicalize(g, frontend.Options{}); err != nil {
		b.Fatal(err)
	}
	plan, err := mapping.Analyze(g, im2col.PEDims{Rows: 256, Cols: 256})
	if err != nil {
		b.Fatal(err)
	}
	sol, err := mapping.Solve(plan, plan.MinPEs+32, mapping.SolverDP)
	if err != nil {
		b.Fatal(err)
	}
	m, err := mapping.Apply(g, plan, sol, plan.MinPEs+32)
	if err != nil {
		b.Fatal(err)
	}
	sp, err := sets.Determine(g, m, sets.Options{TargetSets: sets.FineGranularity})
	if err != nil {
		b.Fatal(err)
	}
	dg, err := deps.Build(g, sp)
	if err != nil {
		b.Fatal(err)
	}
	arch := cim.Default()
	arch.NumPEs = plan.MinPEs + 32
	return m, dg, arch
}

// BenchmarkStageIV measures the raw Stage IV list scheduler over the
// CSR dependency arrays (no validation, no metrics), per policy.
func BenchmarkStageIV(b *testing.B) {
	_, dg, _ := stageIVWorkload(b)
	for _, p := range []schedule.Policy{schedule.LayerByLayer, schedule.Windowed(4), schedule.CrossLayer} {
		b.Run(p.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := schedule.Schedule(dg, p, schedule.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if s.Makespan <= 0 {
					b.Fatal("empty schedule")
				}
			}
		})
	}
}

// BenchmarkSimulate measures the steady-state discrete-event simulator
// on the same workload and policies: a reused sim.State and a prebuilt
// Stage III dispatch plan, the way Compiled.Simulate drives it. The
// cold path (fresh scratch, dispatch built per run) is sim.Run.
func BenchmarkSimulate(b *testing.B) {
	m, dg, arch := stageIVWorkload(b)
	for _, p := range []schedule.Policy{schedule.LayerByLayer, schedule.Windowed(4), schedule.CrossLayer} {
		b.Run(p.Name(), func(b *testing.B) {
			st := sim.NewState()
			opt := sim.Options{Dispatch: schedule.NewDispatch(dg, p)}
			if _, err := st.Run(arch, dg, m, p, opt); err != nil {
				b.Fatal(err) // warm the scratch so allocs/op is steady-state
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := st.Run(arch, dg, m, p, opt)
				if err != nil {
					b.Fatal(err)
				}
				if res.Makespan <= 0 {
					b.Fatal("empty simulation")
				}
			}
		})
	}
}

// BenchmarkSimulateCoarse measures the scalar-only fast path: same
// event loop, no Timeline materialization, zero steady-state
// allocations.
func BenchmarkSimulateCoarse(b *testing.B) {
	m, dg, arch := stageIVWorkload(b)
	for _, p := range []schedule.Policy{schedule.LayerByLayer, schedule.Windowed(4), schedule.CrossLayer} {
		b.Run(p.Name(), func(b *testing.B) {
			st := sim.NewState()
			opt := sim.Options{Dispatch: schedule.NewDispatch(dg, p)}
			if _, err := st.RunCoarse(arch, dg, m, p, opt); err != nil {
				b.Fatal(err) // warm the scratch so allocs/op is steady-state
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				co, err := st.RunCoarse(arch, dg, m, p, opt)
				if err != nil {
					b.Fatal(err)
				}
				if co.Makespan <= 0 {
					b.Fatal("empty simulation")
				}
			}
		})
	}
}

// BenchmarkScheduleCrossLayer measures Stage III/IV scheduling through
// the facade. Compiled caches validated timelines per mode, so this now
// measures the cached path (report assembly + metrics); BenchmarkStageIV
// above measures the raw scheduler.
func BenchmarkScheduleCrossLayer(b *testing.B) {
	m, err := clsacim.LoadModel("tinyyolov4", clsacim.ModelOptions{})
	if err != nil {
		b.Fatal(err)
	}
	comp, err := clsacim.Compile(m, clsacim.Config{ExtraPEs: 32, WeightDuplication: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := comp.Schedule(clsacim.ModeCrossLayer); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEventSimTinyYOLOv4 measures the discrete-event simulator on
// the same workload.
func BenchmarkEventSimTinyYOLOv4(b *testing.B) {
	m, err := clsacim.LoadModel("tinyyolov4", clsacim.ModelOptions{})
	if err != nil {
		b.Fatal(err)
	}
	comp, err := clsacim.Compile(m, clsacim.Config{ExtraPEs: 32, WeightDuplication: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := comp.Simulate(clsacim.ModeCrossLayer); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileResNet152 measures the pipeline on the deepest
// evaluation model.
func BenchmarkCompileResNet152(b *testing.B) {
	m, err := clsacim.LoadModel("resnet152", clsacim.ModelOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := clsacim.Compile(m, clsacim.Config{ExtraPEs: 32, WeightDuplication: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFunctionalCrossbarConv measures quantized crossbar execution
// of a convolution layer (functional model throughput).
func BenchmarkFunctionalCrossbarConv(b *testing.B) {
	m, err := clsacim.LoadModel("tinyconvnet", clsacim.ModelOptions{WithWeights: true, Seed: 1, InputSize: 32})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := clsacim.VerifyFunctional(m, 2, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamThroughput serves a closed-loop stream of TinyYOLOv4
// inferences under xinf and reports the steady-state serving rate next
// to the single-inference rate. The pipelined throughput must be
// strictly greater than 1/makespan of one inference — the subsystem's
// acceptance criterion.
func BenchmarkStreamThroughput(b *testing.B) {
	eng := clsacim.MustNew()
	for i := 0; i < b.N; i++ {
		res, err := eng.EvaluateStream(context.Background(), clsacim.StreamRequest{
			Models:     []clsacim.StreamModel{{Model: "tinyyolov4"}},
			Inferences: 16,
			Mode:       clsacim.ModeCrossLayer,
			Arrival:    clsacim.ArrivalProcess{Kind: "closed", Concurrency: 4},
		})
		if err != nil {
			b.Fatal(err)
		}
		single := res.PerModel[0].SingleRatePerSec
		if res.ThroughputPerSec <= single {
			b.Fatalf("streamed throughput %.2f/s not above single-inference rate %.2f/s",
				res.ThroughputPerSec, single)
		}
		b.ReportMetric(res.ThroughputPerSec, "inf/s")
		b.ReportMetric(res.ThroughputPerSec/single, "gain")
	}
}

// Example output helper: the benchmarks above are silent; this example
// documents how to print the full evaluation.
func Example() {
	fmt.Println("run: go run ./cmd/paperbench -exp all")
	// Output: run: go run ./cmd/paperbench -exp all
}
