package region

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func box(h0, h1, w0, w1, c0, c1 int) Box { return NewBox(h0, h1, w0, w1, c0, c1) }

func TestEmpty(t *testing.T) {
	cases := []struct {
		b    Box
		want bool
	}{
		{box(0, 1, 0, 1, 0, 1), false},
		{box(0, 0, 0, 1, 0, 1), true},
		{box(0, 1, 5, 5, 0, 1), true},
		{box(0, 1, 0, 1, 3, 2), true},
		{Box{}, true},
		{Full(4, 4, 4), false},
	}
	for _, tc := range cases {
		if got := tc.b.Empty(); got != tc.want {
			t.Errorf("%v.Empty() = %v, want %v", tc.b, got, tc.want)
		}
	}
}

func TestVolumeAndPixels(t *testing.T) {
	b := box(1, 4, 2, 7, 0, 3)
	if got := b.Volume(); got != 3*5*3 {
		t.Errorf("Volume = %d, want 45", got)
	}
	if got := b.Pixels(); got != 15 {
		t.Errorf("Pixels = %d, want 15", got)
	}
	if got := (Box{}).Volume(); got != 0 {
		t.Errorf("empty Volume = %d", got)
	}
}

func TestIntersect(t *testing.T) {
	a := box(0, 10, 0, 10, 0, 4)
	b := box(5, 15, 3, 7, 1, 9)
	want := box(5, 10, 3, 7, 1, 4)
	if got := a.Intersect(b); got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if !a.Intersects(b) {
		t.Error("Intersects = false, want true")
	}
	c := box(10, 12, 0, 10, 0, 4) // touches a at H=10 (half-open: disjoint)
	if a.Intersects(c) {
		t.Error("half-open boxes touching at a face must not intersect")
	}
}

func TestUnionContains(t *testing.T) {
	a := box(0, 2, 0, 2, 0, 1)
	b := box(5, 6, 1, 3, 0, 2)
	u := a.Union(b)
	if !u.ContainsBox(a) || !u.ContainsBox(b) {
		t.Errorf("union %v does not contain operands", u)
	}
	if got := a.Union(Box{}); got != a {
		t.Errorf("union with empty = %v, want %v", got, a)
	}
	if got := (Box{}).Union(b); got != b {
		t.Errorf("empty union b = %v, want %v", got, b)
	}
	if !u.Contains(5, 2, 1) {
		t.Error("Contains(5,2,1) = false")
	}
	if u.Contains(6, 0, 0) {
		t.Error("Contains(6,0,0) = true (out of half-open bound)")
	}
}

func TestTranslateClamp(t *testing.T) {
	b := box(2, 5, 2, 5, 0, 3)
	got := b.Translate(-3, 1, 0)
	want := box(-1, 2, 3, 6, 0, 3)
	if got != want {
		t.Errorf("Translate = %v, want %v", got, want)
	}
	clamped := got.ClampTo(4, 4, 3)
	want = box(0, 2, 3, 4, 0, 3)
	if clamped != want {
		t.Errorf("ClampTo = %v, want %v", clamped, want)
	}
}

func TestCanonEq(t *testing.T) {
	e1 := box(3, 3, 0, 5, 0, 1)
	e2 := box(0, 0, 0, 0, 0, 0)
	if e1.Canon() != e2.Canon() {
		t.Error("canonical empties differ")
	}
	if !e1.Eq(e2) {
		t.Error("empty boxes must be Eq")
	}
	a := box(0, 1, 0, 1, 0, 1)
	if a.Eq(e1) {
		t.Error("non-empty Eq empty")
	}
}

func TestSplitHExact(t *testing.T) {
	b := Full(10, 4, 2)
	for n := 1; n <= 12; n++ {
		parts := b.SplitH(n, 1)
		if !CoversExactly(b, parts) {
			t.Errorf("SplitH(%d) does not tile: %v", n, parts)
		}
		if n <= 10 && len(parts) != n {
			t.Errorf("SplitH(%d) returned %d parts", n, len(parts))
		}
		if n > 10 && len(parts) != 10 {
			t.Errorf("SplitH(%d) returned %d parts, want clamp to 10", n, len(parts))
		}
		// Balanced: sizes differ by at most one.
		min, max := 1<<30, 0
		for _, p := range parts {
			if d := p.DH(); d < min {
				min = d
			}
			if d := p.DH(); d > max {
				max = d
			}
		}
		if n <= 10 && max-min > 1 {
			t.Errorf("SplitH(%d) unbalanced: min %d max %d", n, min, max)
		}
	}
}

func TestSplitHAligned(t *testing.T) {
	b := Full(13, 4, 1)
	parts := b.SplitH(4, 2)
	if !CoversExactly(b, parts) {
		t.Fatalf("aligned split does not tile: %v", parts)
	}
	for i, p := range parts {
		if i < len(parts)-1 && p.H1%2 != 0 {
			t.Errorf("boundary %d of part %d not aligned to 2", p.H1, i)
		}
	}
}

func TestGrid(t *testing.T) {
	b := Full(8, 12, 3)
	parts := b.Grid(3, 4, 1, 1)
	if len(parts) != 12 {
		t.Fatalf("Grid(3,4) gave %d parts", len(parts))
	}
	if !CoversExactly(b, parts) {
		t.Error("grid does not tile")
	}
}

func TestCoversExactlyRejects(t *testing.T) {
	b := Full(4, 4, 1)
	// Overlapping parts.
	if CoversExactly(b, []Box{box(0, 3, 0, 4, 0, 1), box(2, 4, 0, 4, 0, 1)}) {
		t.Error("accepted overlapping cover")
	}
	// Incomplete cover.
	if CoversExactly(b, []Box{box(0, 2, 0, 4, 0, 1)}) {
		t.Error("accepted partial cover")
	}
	// Out-of-bounds part.
	if CoversExactly(b, []Box{box(0, 5, 0, 4, 0, 1)}) {
		t.Error("accepted out-of-bounds cover")
	}
}

func randBox(r *rand.Rand) Box {
	h0, w0, c0 := r.Intn(20)-10, r.Intn(20)-10, r.Intn(20)-10
	return Box{h0, h0 + r.Intn(12), w0, w0 + r.Intn(12), c0, c0 + r.Intn(12)}
}

// TestQuickIntersectProperties checks algebraic properties of Intersect
// on random boxes: commutativity, idempotence, containment, and volume
// consistency with point membership.
func TestQuickIntersectProperties(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		a, b := randBox(r), randBox(r)
		iv := a.Intersect(b)
		if !iv.Canon().Eq(b.Intersect(a).Canon()) {
			return false
		}
		if !a.Intersect(a).Canon().Eq(a.Canon()) {
			return false
		}
		if !iv.Empty() && (!a.ContainsBox(iv) || !b.ContainsBox(iv)) {
			return false
		}
		// Point-count cross-check on a small window.
		count := 0
		for h := -12; h < 12; h++ {
			for w := -12; w < 12; w++ {
				for c := -12; c < 12; c++ {
					if a.Contains(h, w, c) && b.Contains(h, w, c) {
						count++
					}
				}
			}
		}
		return count == iv.Volume()
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickSplitProperties checks that random splits always tile their
// box exactly with aligned internal boundaries.
func TestQuickSplitProperties(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func() bool {
		h := 1 + r.Intn(40)
		b := Full(h, 1+r.Intn(10), 1+r.Intn(8))
		n := 1 + r.Intn(12)
		align := 1 + r.Intn(4)
		parts := b.SplitH(n, align)
		if !CoversExactly(b, parts) {
			return false
		}
		for i, p := range parts {
			if i < len(parts)-1 && p.H1%align != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickUnionContains checks that the union always contains both
// operands and is the smallest such box on the H axis.
func TestQuickUnionContains(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		a, b := randBox(r), randBox(r)
		u := a.Union(b)
		if !u.ContainsBox(a) || !u.ContainsBox(b) {
			return false
		}
		if !a.Empty() && !b.Empty() {
			if u.H0 != min(a.H0, b.H0) || u.H1 != max(a.H1, b.H1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
