// Package region implements three-dimensional half-open boxes
// (hyperrectangles) over tensor coordinates. Boxes are the geometric
// foundation of CLSA-CIM's Stage I (set determination) and Stage II
// (dependency determination): every scheduling set is a box in its
// layer's OFM coordinate space, and dependencies are computed by
// propagating boxes through the non-base-layer paths of the graph.
//
// A Box spans [H0, H1) x [W0, W1) x [C0, C1). The half-open convention
// makes splitting, intersection, and coverage arithmetic exact (no
// off-by-one adjustments), matching the paper's "two coordinates identify
// the set's location and size" representation.
package region

import "fmt"

// Box is a half-open 3-D interval [H0,H1) x [W0,W1) x [C0,C1).
// A Box with any non-positive extent is empty.
type Box struct {
	H0, H1 int
	W0, W1 int
	C0, C1 int
}

// NewBox returns the box [h0,h1) x [w0,w1) x [c0,c1).
func NewBox(h0, h1, w0, w1, c0, c1 int) Box {
	return Box{H0: h0, H1: h1, W0: w0, W1: w1, C0: c0, C1: c1}
}

// Full returns the box covering an entire (h, w, c) volume.
func Full(h, w, c int) Box { return Box{0, h, 0, w, 0, c} }

// Empty reports whether b contains no points.
func (b Box) Empty() bool { return b.H1 <= b.H0 || b.W1 <= b.W0 || b.C1 <= b.C0 }

// DH returns the height extent (0 if empty in H).
func (b Box) DH() int { return max(0, b.H1-b.H0) }

// DW returns the width extent.
func (b Box) DW() int { return max(0, b.W1-b.W0) }

// DC returns the channel extent.
func (b Box) DC() int { return max(0, b.C1-b.C0) }

// Volume returns the number of points in b (0 if empty).
func (b Box) Volume() int {
	if b.Empty() {
		return 0
	}
	return b.DH() * b.DW() * b.DC()
}

// Pixels returns the number of spatial (H, W) positions in b.
func (b Box) Pixels() int {
	if b.Empty() {
		return 0
	}
	return b.DH() * b.DW()
}

// String renders b as [h0:h1, w0:w1, c0:c1].
func (b Box) String() string {
	return fmt.Sprintf("[%d:%d, %d:%d, %d:%d]", b.H0, b.H1, b.W0, b.W1, b.C0, b.C1)
}

// Contains reports whether the point (h, w, c) lies inside b.
func (b Box) Contains(h, w, c int) bool {
	return h >= b.H0 && h < b.H1 && w >= b.W0 && w < b.W1 && c >= b.C0 && c < b.C1
}

// ContainsBox reports whether o is entirely inside b. An empty o is
// contained in every box.
func (b Box) ContainsBox(o Box) bool {
	if o.Empty() {
		return true
	}
	return o.H0 >= b.H0 && o.H1 <= b.H1 &&
		o.W0 >= b.W0 && o.W1 <= b.W1 &&
		o.C0 >= b.C0 && o.C1 <= b.C1
}

// Intersect returns the intersection of b and o (possibly empty).
func (b Box) Intersect(o Box) Box {
	return Box{
		H0: max(b.H0, o.H0), H1: min(b.H1, o.H1),
		W0: max(b.W0, o.W0), W1: min(b.W1, o.W1),
		C0: max(b.C0, o.C0), C1: min(b.C1, o.C1),
	}
}

// Intersects reports whether b and o share at least one point.
func (b Box) Intersects(o Box) bool { return !b.Intersect(o).Empty() }

// Union returns the bounding box of b and o. If either is empty the other
// is returned unchanged.
func (b Box) Union(o Box) Box {
	if b.Empty() {
		return o
	}
	if o.Empty() {
		return b
	}
	return Box{
		H0: min(b.H0, o.H0), H1: max(b.H1, o.H1),
		W0: min(b.W0, o.W0), W1: max(b.W1, o.W1),
		C0: min(b.C0, o.C0), C1: max(b.C1, o.C1),
	}
}

// Translate returns b shifted by (dh, dw, dc).
func (b Box) Translate(dh, dw, dc int) Box {
	return Box{b.H0 + dh, b.H1 + dh, b.W0 + dw, b.W1 + dw, b.C0 + dc, b.C1 + dc}
}

// ClampTo returns b intersected with the full volume (h, w, c).
func (b Box) ClampTo(h, w, c int) Box { return b.Intersect(Full(h, w, c)) }

// Canon returns b unchanged if non-empty, else the canonical empty box.
// Canonicalizing empty boxes makes equality checks meaningful.
func (b Box) Canon() Box {
	if b.Empty() {
		return Box{}
	}
	return b
}

// Eq reports geometric equality: equal coordinates, or both empty.
func (b Box) Eq(o Box) bool {
	if b.Empty() && o.Empty() {
		return true
	}
	return b == o
}

// SplitH splits b into n contiguous slabs along H whose heights differ by
// at most one, each aligned so that every boundary except the last is a
// multiple of align (relative to b.H0). n is clamped to [1, ceil(DH/align)].
// The returned slabs partition b exactly.
func (b Box) SplitH(n, align int) []Box {
	return splitAxis(b, n, align, axisH)
}

// SplitW splits b along W; see SplitH.
func (b Box) SplitW(n, align int) []Box {
	return splitAxis(b, n, align, axisW)
}

type axis int

const (
	axisH axis = iota
	axisW
)

func (b Box) axisRange(a axis) (lo, hi int) {
	if a == axisH {
		return b.H0, b.H1
	}
	return b.W0, b.W1
}

func (b Box) withAxisRange(a axis, lo, hi int) Box {
	if a == axisH {
		b.H0, b.H1 = lo, hi
		return b
	}
	b.W0, b.W1 = lo, hi
	return b
}

// splitAxis cuts b into at most n pieces along the given axis. Boundaries
// are placed on multiples of align (relative to the axis origin) so that
// downstream window operations such as (2,2)-stride pooling see complete
// windows in every piece except possibly the last.
func splitAxis(b Box, n, align int, a axis) []Box {
	if b.Empty() {
		return nil
	}
	if align < 1 {
		align = 1
	}
	lo, hi := b.axisRange(a)
	extent := hi - lo
	units := (extent + align - 1) / align // number of align-sized blocks
	if n < 1 {
		n = 1
	}
	if n > units {
		n = units
	}
	out := make([]Box, 0, n)
	prev := lo
	for i := 1; i <= n; i++ {
		// Distribute blocks evenly: piece i ends after round(i*units/n) blocks.
		end := lo + (units*i/n)*align
		if end > hi || i == n {
			end = hi
		}
		if end > prev {
			out = append(out, b.withAxisRange(a, prev, end))
			prev = end
		}
	}
	return out
}

// Grid partitions b into a gh x gw grid of boxes (channels untouched),
// with H boundaries aligned to alignH and W boundaries to alignW.
// The result covers b exactly and the boxes are pairwise disjoint.
func (b Box) Grid(gh, gw, alignH, alignW int) []Box {
	rows := b.SplitH(gh, alignH)
	var out []Box
	for _, r := range rows {
		out = append(out, r.SplitW(gw, alignW)...)
	}
	return out
}

// CoversExactly reports whether parts tile whole exactly: pairwise
// disjoint, all inside whole, and total volume equal to whole's.
func CoversExactly(whole Box, parts []Box) bool {
	total := 0
	for i, p := range parts {
		if p.Empty() || !whole.ContainsBox(p) {
			return false
		}
		total += p.Volume()
		for j := i + 1; j < len(parts); j++ {
			if p.Intersects(parts[j]) {
				return false
			}
		}
	}
	return total == whole.Volume()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
