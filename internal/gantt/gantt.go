// Package gantt renders ASCII Gantt charts of CIM schedules — the
// textual equivalent of the mapping/scheduling visualizations in paper
// Fig. 6(a)/(b): one row per replica PE group, time on the horizontal
// axis, filled cells where the group computes OFM sets.
package gantt

import (
	"fmt"
	"io"
	"strings"

	"clsacim/internal/deps"
	"clsacim/internal/schedule"
)

// Row is one horizontal band of the chart.
type Row struct {
	Label string
	PEs   int
	Spans []Span
}

// Span is a busy interval in cycles.
type Span struct {
	Start, End int64
}

// FromSchedule builds one row per (layer, replica) PE group from an
// executed timeline, merging adjacent busy intervals.
func FromSchedule(dg *deps.Graph, s *schedule.Timeline) []Row {
	var rows []Row
	for li, ls := range dg.Plan.Layers {
		d := ls.Group.Dup
		perRep := make([][]Span, d)
		for _, it := range s.ItemsOf(li) {
			sp := Span{it.Start, it.End}
			reps := perRep[it.Replica]
			if n := len(reps); n > 0 && reps[n-1].End == sp.Start {
				reps[n-1].End = sp.End
				perRep[it.Replica] = reps
				continue
			}
			perRep[it.Replica] = append(reps, sp)
		}
		for r := 0; r < d; r++ {
			label := ls.Group.Node.Name
			if d > 1 {
				label = fmt.Sprintf("%s[%d/%d]", label, r, d)
			}
			rows = append(rows, Row{Label: label, PEs: ls.Group.PEsPerReplica(), Spans: perRep[r]})
		}
	}
	return rows
}

// Options configures rendering.
type Options struct {
	// Width is the number of time buckets (default 100).
	Width int
	// ShowPEs appends the PE count to each label.
	ShowPEs bool
}

// levels maps a busy fraction of a bucket to a glyph.
var levels = []byte(" .:-=*#@")

// Render writes the chart. Each row shows the busy fraction of its PE
// group per time bucket; the footer shows the time axis in cycles.
func Render(w io.Writer, title string, rows []Row, makespan int64, opt Options) error {
	width := opt.Width
	if width <= 0 {
		width = 100
	}
	if makespan <= 0 {
		return fmt.Errorf("gantt: empty schedule")
	}
	labelW := 0
	for _, r := range rows {
		l := len(r.Label)
		if opt.ShowPEs {
			l += len(fmt.Sprintf(" (%d PE)", r.PEs))
		}
		if l > labelW {
			labelW = l
		}
	}
	if _, err := fmt.Fprintf(w, "%s  (makespan %d cycles, %d PE groups)\n", title, makespan, len(rows)); err != nil {
		return err
	}
	for _, r := range rows {
		label := r.Label
		if opt.ShowPEs {
			label = fmt.Sprintf("%s (%d PE)", r.Label, r.PEs)
		}
		line := make([]byte, width)
		busy := make([]float64, width)
		for _, sp := range r.Spans {
			// Distribute the span over the buckets it covers.
			b0 := float64(sp.Start) * float64(width) / float64(makespan)
			b1 := float64(sp.End) * float64(width) / float64(makespan)
			for b := int(b0); b < width && float64(b) < b1; b++ {
				lo := maxF(b0, float64(b))
				hi := minF(b1, float64(b+1))
				if hi > lo {
					busy[b] += hi - lo
				}
			}
		}
		for i, f := range busy {
			idx := int(f * float64(len(levels)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(levels) {
				idx = len(levels) - 1
			}
			line[i] = levels[idx]
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s|\n", labelW, label, line); err != nil {
			return err
		}
	}
	axis := fmt.Sprintf("0%s%d", strings.Repeat(" ", maxI(1, width-1-len(fmt.Sprint(makespan)))), makespan)
	_, err := fmt.Fprintf(w, "%-*s  %s\n", labelW, "cycles", axis)
	return err
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
