package gantt

import (
	"bytes"
	"strings"
	"testing"

	"clsacim/internal/deps"
	"clsacim/internal/frontend"
	"clsacim/internal/im2col"
	"clsacim/internal/mapping"
	"clsacim/internal/models"
	"clsacim/internal/schedule"
	"clsacim/internal/sets"
)

func sched(t *testing.T, p schedule.Policy) (*deps.Graph, *schedule.Timeline) {
	t.Helper()
	g := models.MustBuild(models.TinyYOLOv4, models.Options{})
	if _, err := frontend.Canonicalize(g, frontend.Options{}); err != nil {
		t.Fatal(err)
	}
	plan, err := mapping.Analyze(g, im2col.PEDims{Rows: 256, Cols: 256})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := mapping.Solve(plan, plan.MinPEs+16, mapping.SolverDP)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.Apply(g, plan, sol, plan.MinPEs+16)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sets.Determine(g, m, sets.Options{TargetSets: 26})
	if err != nil {
		t.Fatal(err)
	}
	dg, err := deps.Build(g, sp)
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule.Schedule(dg, p, schedule.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return dg, s
}

func TestFromScheduleRows(t *testing.T) {
	dg, s := sched(t, schedule.CrossLayer)
	rows := FromSchedule(dg, s)
	// One row per replica PE group.
	want := 0
	for _, ls := range dg.Plan.Layers {
		want += ls.Group.Dup
	}
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	// Duplicated layers must be labeled with replica indices.
	foundDup := false
	for _, r := range rows {
		if strings.Contains(r.Label, "[0/") {
			foundDup = true
		}
		for _, sp := range r.Spans {
			if sp.End <= sp.Start {
				t.Fatalf("degenerate span %+v in %s", sp, r.Label)
			}
			if sp.End > s.Makespan {
				t.Fatalf("span exceeds makespan in %s", r.Label)
			}
		}
	}
	if !foundDup {
		t.Error("no replica-labeled rows found despite duplication")
	}
	// Spans must be merged: no two adjacent spans touching.
	for _, r := range rows {
		for i := 1; i < len(r.Spans); i++ {
			if r.Spans[i].Start <= r.Spans[i-1].End {
				if r.Spans[i].Start == r.Spans[i-1].End {
					t.Fatalf("%s: unmerged adjacent spans", r.Label)
				}
				t.Fatalf("%s: overlapping spans", r.Label)
			}
		}
	}
}

func TestRenderOutput(t *testing.T) {
	dg, s := sched(t, schedule.LayerByLayer)
	rows := FromSchedule(dg, s)
	var buf bytes.Buffer
	if err := Render(&buf, "fig6a", rows, s.Makespan, Options{Width: 80, ShowPEs: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fig6a") || !strings.Contains(out, "makespan") {
		t.Error("header missing")
	}
	if !strings.Contains(out, "conv2d") {
		t.Error("layer labels missing")
	}
	if !strings.Contains(out, "PE)") {
		t.Error("PE counts missing with ShowPEs")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + rows + axis.
	if len(lines) != len(rows)+2 {
		t.Errorf("output has %d lines, want %d", len(lines), len(rows)+2)
	}
	// Every chart line must contain the bar delimiters with exactly the
	// requested width between them.
	for _, l := range lines[1 : len(lines)-1] {
		start := strings.IndexByte(l, '|')
		end := strings.LastIndexByte(l, '|')
		if start < 0 || end <= start {
			t.Fatalf("line %q lacks bars", l)
		}
		if end-start-1 != 80 {
			t.Fatalf("bar width %d, want 80", end-start-1)
		}
	}
}

func TestRenderLayerByLayerIsStaircase(t *testing.T) {
	dg, s := sched(t, schedule.LayerByLayer)
	rows := FromSchedule(dg, s)
	// In lbl mode every row has exactly one merged span.
	for _, r := range rows {
		if len(r.Spans) != 1 {
			t.Errorf("%s has %d spans in layer-by-layer mode", r.Label, len(r.Spans))
		}
	}
}

func TestRenderEmptyScheduleFails(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, "x", nil, 0, Options{}); err == nil {
		t.Error("empty schedule rendered")
	}
}

func TestRenderDefaultWidth(t *testing.T) {
	dg, s := sched(t, schedule.CrossLayer)
	rows := FromSchedule(dg, s)
	var buf bytes.Buffer
	if err := Render(&buf, "t", rows[:3], s.Makespan, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "|") {
		t.Error("no bars rendered")
	}
}
