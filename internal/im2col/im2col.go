// Package im2col implements the Conv2D-to-GEMM transformation of paper
// §III-B (Fig. 3) and the associated PE-tiling arithmetic.
//
// A convolution's kernels are unrolled into a (KW*KH*KI) x KO kernel
// matrix whose columns are the flattened kernels. The matrix is
// subdivided into crossbar-sized submatrices that are statically mapped
// onto PEs: PV vertical tiles (input rows) times PH horizontal tiles
// (output columns). With intra-layer scheduling all PV*PH PEs of a layer
// operate in parallel, producing one (1 x 1 x KO) OFM vector per MVM
// latency, so a layer's initial latency is OH*OW cycles (paper Table I).
package im2col

import (
	"fmt"

	"clsacim/internal/nn"
	"clsacim/internal/tensor"
)

// PEDims describes a crossbar: Rows input word lines (the "N" dimension
// of the paper's M x N submatrices) and Cols output bit lines ("M").
type PEDims struct {
	Rows, Cols int
}

// String renders the dims as RowsxCols.
func (d PEDims) String() string { return fmt.Sprintf("%dx%d", d.Rows, d.Cols) }

// Valid reports whether both dims are positive.
func (d PEDims) Valid() bool { return d.Rows > 0 && d.Cols > 0 }

// Tiling is the static partition of one base layer's kernel matrix onto
// PEs.
type Tiling struct {
	KRows int // unrolled kernel-matrix rows: KW*KH*KI
	KCols int // kernel-matrix columns: KO
	PV    int // vertical PE count  = ceil(KRows / PE.Rows)
	PH    int // horizontal PE count = ceil(KCols / PE.Cols)
}

// PEs returns the number of crossbars the layer occupies (paper Eq. 1,
// c_i = PV * PH).
func (t Tiling) PEs() int { return t.PV * t.PH }

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// TileConv computes the PE tiling of a convolution on crossbars of the
// given dimensions.
func TileConv(op *nn.Conv2D, pe PEDims) (Tiling, error) {
	if !pe.Valid() {
		return Tiling{}, fmt.Errorf("im2col: invalid PE dims %v", pe)
	}
	rows := op.KH * op.KW * op.KI
	if rows <= 0 || op.KO <= 0 {
		return Tiling{}, fmt.Errorf("im2col: invalid conv dims")
	}
	return Tiling{KRows: rows, KCols: op.KO, PV: ceilDiv(rows, pe.Rows), PH: ceilDiv(op.KO, pe.Cols)}, nil
}

// TileDense computes the PE tiling of a dense layer (a 1x1 kernel).
func TileDense(op *nn.Dense, pe PEDims) (Tiling, error) {
	if !pe.Valid() {
		return Tiling{}, fmt.Errorf("im2col: invalid PE dims %v", pe)
	}
	if op.KI <= 0 || op.KO <= 0 {
		return Tiling{}, fmt.Errorf("im2col: invalid dense dims")
	}
	return Tiling{KRows: op.KI, KCols: op.KO, PV: ceilDiv(op.KI, pe.Rows), PH: ceilDiv(op.KO, pe.Cols)}, nil
}

// DepthwisePacking returns how many channels of a KH x KW depthwise
// kernel pack onto one crossbar. The kernel matrix is block-diagonal
// (channel c reads only rows [c*KH*KW, (c+1)*KH*KW) and writes only
// column c), so a crossbar hosts P = min(Rows/(KH*KW), Cols) channels on
// disjoint rows and columns — the shifted/duplicated-kernel packing of
// VWC-SDK (paper reference [14]).
func DepthwisePacking(kh, kw int, pe PEDims) (int, error) {
	if !pe.Valid() {
		return 0, fmt.Errorf("im2col: invalid PE dims %v", pe)
	}
	win := kh * kw
	if win <= 0 {
		return 0, fmt.Errorf("im2col: invalid depthwise kernel %dx%d", kh, kw)
	}
	if win > pe.Rows {
		return 0, fmt.Errorf("im2col: depthwise window %d exceeds crossbar rows %d", win, pe.Rows)
	}
	p := pe.Rows / win
	if p > pe.Cols {
		p = pe.Cols
	}
	return p, nil
}

// TileDepthwise computes the packed PE tiling of a depthwise
// convolution: ceil(C / P) crossbars, P channels per crossbar.
func TileDepthwise(op *nn.DepthwiseConv2D, pe PEDims) (Tiling, error) {
	p, err := DepthwisePacking(op.KH, op.KW, pe)
	if err != nil {
		return Tiling{}, err
	}
	if op.C <= 0 {
		return Tiling{}, fmt.Errorf("im2col: invalid depthwise channels %d", op.C)
	}
	// PV counts crossbars along the (block-diagonal) kernel matrix; the
	// packing makes the tiling one-dimensional.
	return Tiling{KRows: op.KH * op.KW * op.C, KCols: op.C, PV: ceilDiv(op.C, p), PH: 1}, nil
}

// TileBase tiles any base layer node; it errors on non-base nodes.
func TileBase(n *nn.Node, pe PEDims) (Tiling, error) {
	switch op := n.Op.(type) {
	case *nn.Conv2D:
		return TileConv(op, pe)
	case *nn.Dense:
		return TileDense(op, pe)
	case *nn.DepthwiseConv2D:
		return TileDepthwise(op, pe)
	default:
		return Tiling{}, fmt.Errorf("im2col: %v is not a base layer", n)
	}
}

// KernelMatrix unrolls conv weights into the (KW*KH*KI) x KO kernel
// matrix, row-major. Row order is (kh, kw, ki) nested, matching Lower.
func KernelMatrix(w *nn.ConvWeights) *Matrix {
	rows := w.KH * w.KW * w.KI
	m := NewMatrix(rows, w.KO)
	r := 0
	for kh := 0; kh < w.KH; kh++ {
		for kw := 0; kw < w.KW; kw++ {
			for ki := 0; ki < w.KI; ki++ {
				for ko := 0; ko < w.KO; ko++ {
					m.Set(r, ko, w.At(kh, kw, ki, ko))
				}
				r++
			}
		}
	}
	return m
}

// Lower materializes the im2col input matrix of a valid (unpadded)
// convolution over ifm: one row per OFM pixel (row-major OH, OW), one
// column per kernel-matrix row.
func Lower(op *nn.Conv2D, ifm *tensor.Tensor) (*Matrix, error) {
	if op.Pad.Any() {
		return nil, fmt.Errorf("im2col: convolution still carries padding; run the partition pass first")
	}
	s := ifm.Shape
	if s.C != op.KI {
		return nil, fmt.Errorf("im2col: ifm channels %d != KI %d", s.C, op.KI)
	}
	oh := (s.H-op.KH)/op.SH + 1
	ow := (s.W-op.KW)/op.SW + 1
	cols := op.KH * op.KW * op.KI
	m := NewMatrix(oh*ow, cols)
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			row := y*ow + x
			c := 0
			for kh := 0; kh < op.KH; kh++ {
				for kw := 0; kw < op.KW; kw++ {
					for ki := 0; ki < op.KI; ki++ {
						m.Set(row, c, ifm.At(y*op.SH+kh, x*op.SW+kw, ki))
						c++
					}
				}
			}
		}
	}
	return m, nil
}

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	R, C int
	Data []float32
}

// NewMatrix allocates a zero RxC matrix.
func NewMatrix(r, c int) *Matrix {
	return &Matrix{R: r, C: c, Data: make([]float32, r*c)}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float32 { return m.Data[r*m.C+c] }

// Set stores v at (r, c).
func (m *Matrix) Set(r, c int, v float32) { m.Data[r*m.C+c] = v }

// Row returns a view of row r.
func (m *Matrix) Row(r int) []float32 { return m.Data[r*m.C : (r+1)*m.C] }

// Mul returns m x b (float64 accumulation).
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.C != b.R {
		return nil, fmt.Errorf("im2col: matmul dims %dx%d x %dx%d", m.R, m.C, b.R, b.C)
	}
	out := NewMatrix(m.R, b.C)
	for i := 0; i < m.R; i++ {
		for j := 0; j < b.C; j++ {
			var acc float64
			for k := 0; k < m.C; k++ {
				acc += float64(m.At(i, k)) * float64(b.At(k, j))
			}
			out.Set(i, j, float32(acc))
		}
	}
	return out, nil
}

// ToOFM reshapes a (OH*OW) x KO result matrix back into an (OH, OW, KO)
// tensor.
func (m *Matrix) ToOFM(oh, ow int) (*tensor.Tensor, error) {
	if m.R != oh*ow {
		return nil, fmt.Errorf("im2col: %d rows cannot reshape to %dx%d", m.R, oh, ow)
	}
	return tensor.FromSlice(tensor.NewShape(oh, ow, m.C), m.Data), nil
}

// ConvViaGEMM executes a valid convolution through the im2col + GEMM
// path; used as a cross-check against the direct reference executor.
func ConvViaGEMM(op *nn.Conv2D, ifm *tensor.Tensor) (*tensor.Tensor, error) {
	if op.W == nil {
		return nil, fmt.Errorf("im2col: conv has no weights")
	}
	in, err := Lower(op, ifm)
	if err != nil {
		return nil, err
	}
	km := KernelMatrix(op.W)
	prod, err := in.Mul(km)
	if err != nil {
		return nil, err
	}
	if op.Bias != nil {
		for r := 0; r < prod.R; r++ {
			row := prod.Row(r)
			for c := range row {
				row[c] += op.Bias[c]
			}
		}
	}
	s := ifm.Shape
	oh := (s.H-op.KH)/op.SH + 1
	ow := (s.W-op.KW)/op.SW + 1
	return prod.ToOFM(oh, ow)
}
