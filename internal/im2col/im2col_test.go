package im2col

import (
	"math/rand"
	"testing"
	"testing/quick"

	"clsacim/internal/nn"
	"clsacim/internal/tensor"
)

var pe256 = PEDims{Rows: 256, Cols: 256}

// TestTilingTableI checks the PE-count formula against paper Table I
// rows (c_i = ceil(KW*KH*KI/N) * ceil(KO/M)).
func TestTilingTableI(t *testing.T) {
	cases := []struct {
		kh, kw, ki, ko int
		want           int
	}{
		{3, 3, 3, 32, 1},      // conv2d
		{3, 3, 32, 64, 2},     // conv2d_1
		{3, 3, 64, 64, 3},     // conv2d_2
		{3, 3, 256, 512, 18},  // conv2d_16
		{1, 1, 512, 255, 2},   // conv2d_17
		{1, 1, 256, 255, 1},   // conv2d_20
		{3, 3, 512, 512, 36},  // conv2d_14
		{7, 7, 3, 64, 1},      // ResNet stem
		{3, 3, 512, 1024, 72}, // TinyYOLOv3 conv2d_6
	}
	for _, c := range cases {
		op := &nn.Conv2D{KH: c.kh, KW: c.kw, SH: 1, SW: 1, KI: c.ki, KO: c.ko}
		tl, err := TileConv(op, pe256)
		if err != nil {
			t.Fatal(err)
		}
		if tl.PEs() != c.want {
			t.Errorf("TileConv(%dx%dx%d->%d) = %d PEs, want %d",
				c.kh, c.kw, c.ki, c.ko, tl.PEs(), c.want)
		}
		if tl.KRows != c.kh*c.kw*c.ki || tl.KCols != c.ko {
			t.Errorf("kernel matrix dims wrong: %dx%d", tl.KRows, tl.KCols)
		}
	}
}

func TestTileDense(t *testing.T) {
	tl, err := TileDense(&nn.Dense{KI: 700, KO: 300}, pe256)
	if err != nil {
		t.Fatal(err)
	}
	if tl.PV != 3 || tl.PH != 2 || tl.PEs() != 6 {
		t.Errorf("dense tiling = PV %d PH %d", tl.PV, tl.PH)
	}
}

func TestTileErrors(t *testing.T) {
	if _, err := TileConv(&nn.Conv2D{KH: 1, KW: 1, KI: 1, KO: 1}, PEDims{}); err == nil {
		t.Error("invalid PE dims accepted")
	}
	if _, err := TileConv(&nn.Conv2D{}, pe256); err == nil {
		t.Error("zero conv dims accepted")
	}
	g := nn.NewGraph()
	in := g.AddInput("input", tensor.NewShape(4, 4, 1))
	p := g.Add("p", &nn.MaxPool{KH: 2, KW: 2, SH: 2, SW: 2}, in)
	if _, err := TileBase(p, pe256); err == nil {
		t.Error("non-base node tiled")
	}
}

func TestKernelMatrixLayout(t *testing.T) {
	w := nn.NewConvWeights(2, 1, 2, 2)
	// Mark each weight uniquely: value = kh*100 + ki*10 + ko.
	for kh := 0; kh < 2; kh++ {
		for ki := 0; ki < 2; ki++ {
			for ko := 0; ko < 2; ko++ {
				w.Set(kh, 0, ki, ko, float32(kh*100+ki*10+ko))
			}
		}
	}
	m := KernelMatrix(w)
	if m.R != 4 || m.C != 2 {
		t.Fatalf("kernel matrix %dx%d", m.R, m.C)
	}
	// Row order is (kh, kw, ki): rows = [k0i0, k0i1, k1i0, k1i1].
	wantRows := []float32{0, 10, 100, 110}
	for r, base := range wantRows {
		if m.At(r, 0) != base || m.At(r, 1) != base+1 {
			t.Errorf("row %d = (%v, %v), want (%v, %v)", r, m.At(r, 0), m.At(r, 1), base, base+1)
		}
	}
}

func randConv(r *rand.Rand) (*nn.Conv2D, *tensor.Tensor) {
	kh, kw := 1+r.Intn(3), 1+r.Intn(3)
	sh, sw := 1+r.Intn(2), 1+r.Intn(2)
	ki, ko := 1+r.Intn(4), 1+r.Intn(5)
	ih := kh + r.Intn(6) + sh
	iw := kw + r.Intn(6) + sw
	w := nn.NewConvWeights(kh, kw, ki, ko)
	w.FillRand(r.Int63(), 1)
	op := &nn.Conv2D{KH: kh, KW: kw, SH: sh, SW: sw, KI: ki, KO: ko, W: w}
	in := tensor.New(tensor.NewShape(ih, iw, ki))
	in.FillRand(r.Int63(), 1)
	return op, in
}

// TestQuickConvViaGEMM is the central im2col correctness property: the
// GEMM path must match the direct reference convolution on random
// shapes, strides, and data.
func TestQuickConvViaGEMM(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	f := func() bool {
		op, in := randConv(r)
		gemm, err := ConvViaGEMM(op, in)
		if err != nil {
			return false
		}
		g := nn.NewGraph()
		input := g.AddInput("input", in.Shape)
		n := g.Add("conv", op, input)
		g.MarkOutput(n)
		outs, err := (&nn.Executor{}).RunOutputs(g, in)
		if err != nil {
			return false
		}
		return tensor.AllClose(outs[0], gemm, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestConvViaGEMMBias(t *testing.T) {
	w := nn.NewConvWeights(1, 1, 1, 2)
	w.Data[0], w.Data[1] = 2, 3
	op := &nn.Conv2D{KH: 1, KW: 1, SH: 1, SW: 1, KI: 1, KO: 2, W: w, Bias: []float32{10, 20}}
	in := tensor.FromSlice(tensor.NewShape(1, 1, 1), []float32{5})
	out, err := ConvViaGEMM(op, in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Data[0] != 20 || out.Data[1] != 35 {
		t.Errorf("gemm+bias = %v", out.Data)
	}
}

func TestLowerRejectsPadded(t *testing.T) {
	op := &nn.Conv2D{KH: 3, KW: 3, SH: 1, SW: 1, KI: 1, KO: 1,
		Pad: nn.Padding{Top: 1}, W: nn.NewConvWeights(3, 3, 1, 1)}
	if _, err := Lower(op, tensor.New(tensor.NewShape(5, 5, 1))); err == nil {
		t.Error("padded conv lowered")
	}
}

func TestMatrixOps(t *testing.T) {
	a := NewMatrix(2, 3)
	copy(a.Data, []float32{1, 2, 3, 4, 5, 6})
	b := NewMatrix(3, 1)
	copy(b.Data, []float32{1, 0, -1})
	p, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	if p.At(0, 0) != -2 || p.At(1, 0) != -2 {
		t.Errorf("mul = %v", p.Data)
	}
	if _, err := a.Mul(NewMatrix(2, 2)); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, err := a.ToOFM(3, 1); err == nil {
		t.Error("bad reshape accepted")
	}
	ofm, err := a.ToOFM(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ofm.Shape.Equal(tensor.NewShape(2, 1, 3)) {
		t.Errorf("ofm shape = %v", ofm.Shape)
	}
}

func TestPEDims(t *testing.T) {
	if pe256.String() != "256x256" {
		t.Errorf("String = %q", pe256.String())
	}
	if (PEDims{Rows: -1, Cols: 3}).Valid() {
		t.Error("negative dims valid")
	}
}
