package cim

import (
	"fmt"

	"clsacim/internal/im2col"
	"clsacim/internal/nn"
	"clsacim/internal/tensor"
)

// PEGroup is the set of crossbars holding one base layer's kernel matrix:
// a PV x PH grid of tiles (paper Fig. 3). It provides functional
// execution of the layer through the same im2col decomposition the
// scheduler assumes, including the digital accumulation of partial sums
// across vertical tiles.
type PEGroup struct {
	tiling    im2col.Tiling
	pe        im2col.PEDims
	bars      [][]*Crossbar // [pv][ph]
	inputBits int
}

// ProgramConv quantizes and programs a convolution's kernel matrix onto a
// fresh PV x PH grid of crossbars.
func ProgramConv(op *nn.Conv2D, cfg Config) (*PEGroup, error) {
	if op.W == nil {
		return nil, fmt.Errorf("cim: conv has no weights to program")
	}
	t, err := im2col.TileConv(op, cfg.PE)
	if err != nil {
		return nil, err
	}
	return program(im2col.KernelMatrix(op.W), t, cfg)
}

// ProgramDense programs a dense layer's weight matrix.
func ProgramDense(op *nn.Dense, cfg Config) (*PEGroup, error) {
	if op.W == nil {
		return nil, fmt.Errorf("cim: dense has no weights to program")
	}
	t, err := im2col.TileDense(op, cfg.PE)
	if err != nil {
		return nil, err
	}
	return program(im2col.KernelMatrix(op.W), t, cfg)
}

func program(km *im2col.Matrix, t im2col.Tiling, cfg Config) (*PEGroup, error) {
	g := &PEGroup{tiling: t, pe: cfg.PE, inputBits: cfg.InputBits}
	if g.inputBits == 0 {
		g.inputBits = 8
	}
	wb, cb := cfg.WeightBits, cfg.CellBits
	if wb == 0 {
		wb = 8
	}
	if cb == 0 {
		cb = 4
	}
	g.bars = make([][]*Crossbar, t.PV)
	for pv := 0; pv < t.PV; pv++ {
		g.bars[pv] = make([]*Crossbar, t.PH)
		r0 := pv * cfg.PE.Rows
		rows := min(cfg.PE.Rows, t.KRows-r0)
		for ph := 0; ph < t.PH; ph++ {
			c0 := ph * cfg.PE.Cols
			cols := min(cfg.PE.Cols, t.KCols-c0)
			bar := NewCrossbar(cfg.PE)
			if err := bar.Program(km, r0, rows, c0, cols, wb, cb); err != nil {
				return nil, err
			}
			g.bars[pv][ph] = bar
		}
	}
	return g, nil
}

// Tiling returns the group's kernel-matrix tiling.
func (g *PEGroup) Tiling() im2col.Tiling { return g.tiling }

// NumPEs returns the crossbar count of the group.
func (g *PEGroup) NumPEs() int { return g.tiling.PEs() }

// mvmRow computes one kernel-matrix-vector product: the full im2col row
// is split across the PV vertical tiles, each tile's partial products are
// accumulated digitally, and the PH column tiles are concatenated.
func (g *PEGroup) mvmRow(row []float32) ([]float32, error) {
	if len(row) != g.tiling.KRows {
		return nil, fmt.Errorf("cim: im2col row length %d != kernel rows %d", len(row), g.tiling.KRows)
	}
	out := make([]float32, g.tiling.KCols)
	for pv := 0; pv < g.tiling.PV; pv++ {
		r0 := pv * g.pe.Rows
		seg := row[r0:min(r0+g.pe.Rows, len(row))]
		for ph := 0; ph < g.tiling.PH; ph++ {
			part, err := g.bars[pv][ph].MVM(seg, g.inputBits)
			if err != nil {
				return nil, err
			}
			c0 := ph * g.pe.Cols
			for i, v := range part {
				out[c0+i] += v
			}
		}
	}
	return out, nil
}

// ExecuteConv runs the programmed convolution over ifm functionally,
// one OFM pixel (one MVM across the whole group) at a time — the
// intra-layer data flow assumed by the scheduler.
func (g *PEGroup) ExecuteConv(op *nn.Conv2D, ifm *tensor.Tensor) (*tensor.Tensor, error) {
	lowered, err := im2col.Lower(op, ifm)
	if err != nil {
		return nil, err
	}
	s := ifm.Shape
	oh := (s.H-op.KH)/op.SH + 1
	ow := (s.W-op.KW)/op.SW + 1
	out := tensor.New(tensor.NewShape(oh, ow, op.KO))
	for r := 0; r < lowered.R; r++ {
		v, err := g.mvmRow(lowered.Row(r))
		if err != nil {
			return nil, err
		}
		copy(out.Data[r*op.KO:(r+1)*op.KO], v)
	}
	return out, nil
}

// ExecuteDense runs the programmed dense layer over a (1, 1, KI) input.
func (g *PEGroup) ExecuteDense(op *nn.Dense, in *tensor.Tensor) (*tensor.Tensor, error) {
	if in.Shape.H != 1 || in.Shape.W != 1 || in.Shape.C != op.KI {
		return nil, fmt.Errorf("cim: dense input shape %v, want (1,1,%d)", in.Shape, op.KI)
	}
	v, err := g.mvmRow(in.Data)
	if err != nil {
		return nil, err
	}
	return tensor.FromSlice(tensor.NewShape(1, 1, op.KO), v), nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
