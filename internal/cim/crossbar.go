package cim

import (
	"fmt"

	"clsacim/internal/im2col"
	"clsacim/internal/quant"
)

// Crossbar is a functional model of one RRAM PE: a Rows x Cols submatrix
// of a layer's kernel matrix, stored as bit-sliced integer conductance
// levels. MVM computes the analog dot product digitally but with the same
// arithmetic precision: quantized inputs times quantized (bit-sliced)
// weights, accumulated exactly, then rescaled.
type Crossbar struct {
	dims     im2col.PEDims
	rows     int // occupied rows (<= dims.Rows)
	cols     int // occupied cols (<= dims.Cols)
	slices   int
	cellBits int
	wq       quant.Params
	// sign[r*cols+c] and cells[s][r*cols+c] hold the sign-magnitude
	// bit-sliced levels.
	sign  []int8
	cells [][]int16
}

// NewCrossbar returns an unprogrammed crossbar of the given dimensions.
func NewCrossbar(dims im2col.PEDims) *Crossbar {
	return &Crossbar{dims: dims}
}

// Dims returns the crossbar dimensions.
func (x *Crossbar) Dims() im2col.PEDims { return x.dims }

// Program writes the sub-matrix of km spanning rows [r0, r0+rows) and
// columns [c0, c0+cols) into the crossbar, quantizing to weightBits and
// bit-slicing into cellBits-wide cells. RRAM endurance is limited
// (paper §II-A), so a crossbar is programmed exactly once; reprogramming
// returns an error.
func (x *Crossbar) Program(km *im2col.Matrix, r0, rows, c0, cols, weightBits, cellBits int) error {
	if x.cells != nil {
		return fmt.Errorf("cim: crossbar already programmed (RRAM endurance: weights are written once)")
	}
	if rows <= 0 || cols <= 0 || rows > x.dims.Rows || cols > x.dims.Cols {
		return fmt.Errorf("cim: submatrix %dx%d exceeds crossbar %v", rows, cols, x.dims)
	}
	if r0 < 0 || c0 < 0 || r0+rows > km.R || c0+cols > km.C {
		return fmt.Errorf("cim: submatrix [%d:%d)x[%d:%d) outside kernel matrix %dx%d",
			r0, r0+rows, c0, c0+cols, km.R, km.C)
	}
	var maxAbs float32
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := km.At(r0+r, c0+c)
			if v < 0 {
				v = -v
			}
			if v > maxAbs {
				maxAbs = v
			}
		}
	}
	wq, err := quant.Calibrate(weightBits, maxAbs)
	if err != nil {
		return err
	}
	k := quant.SlicesNeeded(weightBits, cellBits)
	x.rows, x.cols = rows, cols
	x.slices, x.cellBits = k, cellBits
	x.wq = wq
	x.sign = make([]int8, rows*cols)
	x.cells = make([][]int16, k)
	for s := range x.cells {
		x.cells[s] = make([]int16, rows*cols)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			q := wq.Quantize(km.At(r0+r, c0+c))
			sign, cs := quant.BitSlices(q, cellBits, k)
			idx := r*cols + c
			x.sign[idx] = int8(sign)
			for s := 0; s < k; s++ {
				x.cells[s][idx] = int16(cs[s])
			}
		}
	}
	return nil
}

// MVM performs one matrix-vector multiplication: input x (length >= the
// programmed row count; extra entries ignored) against the programmed
// submatrix, returning one value per programmed column. Inputs are
// quantized to inputBits (the DAC resolution); partial products from each
// bit slice are shifted and accumulated digitally.
func (x *Crossbar) MVM(in []float32, inputBits int) ([]float32, error) {
	if x.cells == nil {
		return nil, fmt.Errorf("cim: crossbar not programmed")
	}
	if len(in) < x.rows {
		return nil, fmt.Errorf("cim: input length %d < programmed rows %d", len(in), x.rows)
	}
	var maxAbs float32
	for _, v := range in[:x.rows] {
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
		}
	}
	xq, err := quant.Calibrate(inputBits, maxAbs)
	if err != nil {
		return nil, err
	}
	qin := make([]int64, x.rows)
	for r := 0; r < x.rows; r++ {
		qin[r] = int64(xq.Quantize(in[r]))
	}
	out := make([]float32, x.cols)
	scale := float64(x.wq.Scale) * float64(xq.Scale)
	for c := 0; c < x.cols; c++ {
		var acc int64
		for r := 0; r < x.rows; r++ {
			idx := r*x.cols + c
			var w int64
			for s := x.slices - 1; s >= 0; s-- {
				w = w<<x.cellBits | int64(x.cells[s][idx])
			}
			acc += qin[r] * w * int64(x.sign[idx])
		}
		out[c] = float32(float64(acc) * scale)
	}
	return out, nil
}

// Rows returns the number of programmed rows.
func (x *Crossbar) Rows() int { return x.rows }

// Cols returns the number of programmed columns.
func (x *Crossbar) Cols() int { return x.cols }
