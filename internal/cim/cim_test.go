package cim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"clsacim/internal/frontend"
	"clsacim/internal/im2col"
	"clsacim/internal/models"
	"clsacim/internal/nn"
	"clsacim/internal/tensor"
)

func TestConfigValidate(t *testing.T) {
	cfg := Default()
	cfg.NumPEs = 10
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.NumPEs = 0
	if bad.Validate() == nil {
		t.Error("NumPEs=0 accepted")
	}
	bad = cfg
	bad.TMVMNanos = -1
	if bad.Validate() == nil {
		t.Error("negative tMVM accepted")
	}
	bad = cfg
	bad.PE = im2col.PEDims{}
	if bad.Validate() == nil {
		t.Error("zero PE dims accepted")
	}
	bad = cfg
	bad.NoC = NoCConfig{Enabled: true, CyclesPerHop: -2}
	if bad.Validate() == nil {
		t.Error("negative hop cost accepted")
	}
}

func TestTilesAndHops(t *testing.T) {
	cfg := Default()
	cfg.NumPEs = 10
	cfg.PEsPerTile = 4
	if got := cfg.Tiles(); got != 3 {
		t.Errorf("Tiles = %d, want 3", got)
	}
	if got := cfg.TileOf(7); got != 1 {
		t.Errorf("TileOf(7) = %d, want 1", got)
	}
	// 3 tiles -> 2x2 mesh.
	if got := cfg.MeshWidth(); got != 2 {
		t.Errorf("MeshWidth = %d, want 2", got)
	}
	if got := cfg.HopDistance(0, 3); got != 2 {
		t.Errorf("HopDistance(0,3) = %d, want 2 (XY)", got)
	}
	if got := cfg.HopDistance(1, 1); got != 0 {
		t.Errorf("HopDistance(1,1) = %d", got)
	}
	cfg.PEsPerTile = 0
	if got := cfg.Tiles(); got != 10 {
		t.Errorf("Tiles with 0 per tile = %d, want 10 (one PE per tile)", got)
	}
}

func TestCrossbarProgramOnce(t *testing.T) {
	km := im2col.NewMatrix(4, 4)
	x := NewCrossbar(im2col.PEDims{Rows: 4, Cols: 4})
	if err := x.Program(km, 0, 4, 0, 4, 8, 4); err != nil {
		t.Fatal(err)
	}
	if err := x.Program(km, 0, 4, 0, 4, 8, 4); err == nil {
		t.Error("reprogramming accepted (RRAM endurance)")
	}
}

func TestCrossbarProgramBounds(t *testing.T) {
	km := im2col.NewMatrix(4, 4)
	x := NewCrossbar(im2col.PEDims{Rows: 2, Cols: 2})
	if err := x.Program(km, 0, 3, 0, 2, 8, 4); err == nil {
		t.Error("oversize submatrix accepted")
	}
	if err := x.Program(km, 3, 2, 0, 2, 8, 4); err == nil {
		t.Error("out-of-matrix submatrix accepted")
	}
}

func TestCrossbarMVMAccuracy(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	km := im2col.NewMatrix(16, 8)
	for i := range km.Data {
		km.Data[i] = (r.Float32()*2 - 1)
	}
	x := NewCrossbar(im2col.PEDims{Rows: 16, Cols: 8})
	if err := x.Program(km, 0, 16, 0, 8, 8, 4); err != nil {
		t.Fatal(err)
	}
	in := make([]float32, 16)
	for i := range in {
		in[i] = r.Float32()*2 - 1
	}
	got, err := x.MVM(in, 8)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 8; c++ {
		var want float64
		for rI := 0; rI < 16; rI++ {
			want += float64(in[rI]) * float64(km.At(rI, c))
		}
		d := float64(got[c]) - want
		if d < 0 {
			d = -d
		}
		// 8-bit weights x 8-bit inputs over 16 rows: generous bound.
		if d > 0.15 {
			t.Errorf("col %d: got %v want %v (err %v)", c, got[c], want, d)
		}
	}
	if _, err := x.MVM(in[:4], 8); err == nil {
		t.Error("short input accepted")
	}
	if _, err := NewCrossbar(im2col.PEDims{Rows: 2, Cols: 2}).MVM(in, 8); err == nil {
		t.Error("unprogrammed MVM accepted")
	}
}

// TestQuickBitSlicingEquivalence checks cell resolution does not change
// MVM results: 8-bit weights on 4-bit cells (2 slices) equal 8-bit cells
// (1 slice) exactly, since slicing is lossless.
func TestQuickBitSlicingEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	f := func() bool {
		rows, cols := 1+r.Intn(12), 1+r.Intn(6)
		km := im2col.NewMatrix(rows, cols)
		for i := range km.Data {
			km.Data[i] = r.Float32()*4 - 2
		}
		a := NewCrossbar(im2col.PEDims{Rows: rows, Cols: cols})
		b := NewCrossbar(im2col.PEDims{Rows: rows, Cols: cols})
		if a.Program(km, 0, rows, 0, cols, 8, 4) != nil {
			return false
		}
		if b.Program(km, 0, rows, 0, cols, 8, 8) != nil {
			return false
		}
		in := make([]float32, rows)
		for i := range in {
			in[i] = r.Float32()*2 - 1
		}
		va, err := a.MVM(in, 8)
		if err != nil {
			return false
		}
		vb, err := b.MVM(in, 8)
		if err != nil {
			return false
		}
		for i := range va {
			if va[i] != vb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPEGroupConvMatchesReference checks multi-PE group execution (a
// conv whose kernel matrix spans several crossbars) against the float
// reference within quantization noise.
func TestPEGroupConvMatchesReference(t *testing.T) {
	cfg := Default()
	cfg.PE = im2col.PEDims{Rows: 16, Cols: 8} // force PV, PH > 1
	w := nn.NewConvWeights(3, 3, 4, 10)       // 36 rows x 10 cols -> 3x2 grid
	w.FillRand(8, 0.5)
	op := &nn.Conv2D{KH: 3, KW: 3, SH: 1, SW: 1, KI: 4, KO: 10, W: w}
	grp, err := ProgramConv(op, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if grp.NumPEs() != 6 {
		t.Fatalf("group PEs = %d, want 6", grp.NumPEs())
	}
	in := tensor.New(tensor.NewShape(6, 6, 4))
	in.FillRand(9, 1)
	got, err := grp.ExecuteConv(op, in)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := im2col.ConvViaGEMM(op, in)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(got, ref); d > 0.2 {
		t.Errorf("crossbar conv deviates %v", d)
	}
}

func TestPEGroupDense(t *testing.T) {
	cfg := Default()
	cfg.PE = im2col.PEDims{Rows: 8, Cols: 8}
	w := nn.NewConvWeights(1, 1, 20, 12)
	w.FillRand(3, 0.5)
	op := &nn.Dense{KI: 20, KO: 12, W: w}
	grp, err := ProgramDense(op, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if grp.NumPEs() != 3*2 {
		t.Fatalf("dense group PEs = %d", grp.NumPEs())
	}
	in := tensor.New(tensor.NewShape(1, 1, 20))
	in.FillRand(4, 1)
	got, err := grp.ExecuteDense(op, in)
	if err != nil {
		t.Fatal(err)
	}
	for ko := 0; ko < 12; ko++ {
		var want float64
		for ki := 0; ki < 20; ki++ {
			want += float64(in.Data[ki]) * float64(w.At(0, 0, ki, ko))
		}
		d := float64(got.Data[ko]) - want
		if d < 0 {
			d = -d
		}
		if d > 0.1 {
			t.Errorf("dense[%d] err %v", ko, d)
		}
	}
	if _, err := grp.ExecuteDense(op, tensor.New(tensor.NewShape(1, 1, 3))); err == nil {
		t.Error("wrong dense input accepted")
	}
}

func TestProgramRequiresWeights(t *testing.T) {
	if _, err := ProgramConv(&nn.Conv2D{KH: 1, KW: 1, SH: 1, SW: 1, KI: 1, KO: 1}, Default()); err == nil {
		t.Error("weightless conv programmed")
	}
	if _, err := ProgramDense(&nn.Dense{KI: 1, KO: 1}, Default()); err == nil {
		t.Error("weightless dense programmed")
	}
}

// TestGraphExecutorEndToEnd runs a weight-carrying model fully on
// crossbars and compares against the float reference. The graph must be
// canonical (valid convolutions) before crossbar lowering.
func TestGraphExecutorEndToEnd(t *testing.T) {
	g := models.MustBuild(models.TinyConvNet, models.Options{WithWeights: true, Seed: 12})
	if _, err := frontend.Canonicalize(g, frontend.Options{}); err != nil {
		t.Fatal(err)
	}
	in := tensor.New(g.Input.OutShape)
	in.FillRand(5, 1)
	ref, err := (&nn.Executor{}).RunOutputs(g, in)
	if err != nil {
		t.Fatal(err)
	}
	ge := NewGraphExecutor(Default())
	got, err := ge.Run(g, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ref) {
		t.Fatalf("output count %d != %d", len(got), len(ref))
	}
	scale := ref[0].MaxAbs()
	if d := tensor.MaxAbsDiff(got[0], ref[0]); float64(d) > 0.1*float64(scale)+0.02 {
		t.Errorf("crossbar graph deviates %v (scale %v)", d, scale)
	}
	if ge.PEsProgrammed() == 0 {
		t.Error("no PEs programmed")
	}
	// Second run must reuse the programmed crossbars (no reprogram error).
	if _, err := ge.Run(g, in); err != nil {
		t.Errorf("second run failed: %v", err)
	}
}

func TestMeshWidthConfigured(t *testing.T) {
	cfg := Default()
	cfg.NumPEs = 64
	cfg.NoC.MeshWidth = 3
	if got := cfg.MeshWidth(); got != 3 {
		t.Errorf("configured mesh width ignored: %d", got)
	}
	if got := cfg.CycleNanos(); got != DefaultTMVMNanos {
		t.Errorf("CycleNanos = %v", got)
	}
}
