package cim

import (
	"testing"

	"clsacim/internal/frontend"
	"clsacim/internal/im2col"
	"clsacim/internal/models"
	"clsacim/internal/nn"
	"clsacim/internal/tensor"
)

// TestDepthwiseGroupMatchesReference compares packed crossbar execution
// of a depthwise layer against the float reference, across several
// crossbar geometries including multi-crossbar packing.
func TestDepthwiseGroupMatchesReference(t *testing.T) {
	for _, pe := range []im2col.PEDims{
		{Rows: 256, Cols: 256}, // all channels in one crossbar
		{Rows: 27, Cols: 27},   // 3 channels per crossbar -> 6 crossbars
		{Rows: 9, Cols: 1},     // 1 channel per crossbar
	} {
		cfg := Default()
		cfg.PE = pe
		w := nn.NewConvWeights(3, 3, 18, 1)
		w.FillRand(4, 0.5)
		op := &nn.DepthwiseConv2D{KH: 3, KW: 3, SH: 1, SW: 1, C: 18, W: w}
		grp, err := ProgramDepthwise(op, cfg)
		if err != nil {
			t.Fatalf("%v: %v", pe, err)
		}
		p, _ := im2col.DepthwisePacking(3, 3, pe)
		wantPEs := (18 + p - 1) / p
		if grp.NumPEs() != wantPEs {
			t.Errorf("%v: %d crossbars, want %d", pe, grp.NumPEs(), wantPEs)
		}
		in := tensor.New(tensor.NewShape(7, 7, 18))
		in.FillRand(5, 1)
		got, err := grp.ExecuteDepthwise(op, in)
		if err != nil {
			t.Fatal(err)
		}
		// Reference through the generic executor.
		g := nn.NewGraph()
		input := g.AddInput("input", in.Shape)
		n := g.Add("dw", op, input)
		g.MarkOutput(n)
		refs, err := (&nn.Executor{}).RunOutputs(g, in)
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(got, refs[0]); d > 0.15 {
			t.Errorf("%v: crossbar depthwise deviates %v", pe, d)
		}
	}
}

func TestDepthwiseProgramErrors(t *testing.T) {
	cfg := Default()
	if _, err := ProgramDepthwise(&nn.DepthwiseConv2D{KH: 3, KW: 3, SH: 1, SW: 1, C: 4}, cfg); err == nil {
		t.Error("weightless depthwise programmed")
	}
	w := nn.NewConvWeights(3, 3, 4, 1)
	op := &nn.DepthwiseConv2D{KH: 3, KW: 3, SH: 1, SW: 1, C: 4, W: w,
		Pad: nn.Padding{Top: 1}}
	grp, err := ProgramDepthwise(op, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := grp.ExecuteDepthwise(op, tensor.New(tensor.NewShape(5, 5, 4))); err == nil {
		t.Error("padded depthwise executed")
	}
}

// TestGraphExecutorDepthwiseNet runs the full depthwise toy network on
// crossbars.
func TestGraphExecutorDepthwiseNet(t *testing.T) {
	g := models.MustBuild(models.TinyDWNet, models.Options{WithWeights: true, Seed: 6})
	if _, err := frontend.Canonicalize(g, frontend.Options{}); err != nil {
		t.Fatal(err)
	}
	in := tensor.New(g.Input.OutShape)
	in.FillRand(7, 1)
	ref, err := (&nn.Executor{}).RunOutputs(g, in)
	if err != nil {
		t.Fatal(err)
	}
	ge := NewGraphExecutor(Default())
	got, err := ge.Run(g, in)
	if err != nil {
		t.Fatal(err)
	}
	scale := ref[0].MaxAbs()
	if d := tensor.MaxAbsDiff(got[0], ref[0]); float64(d) > 0.1*float64(scale)+0.05 {
		t.Errorf("depthwise graph deviates %v (scale %v)", d, scale)
	}
	if ge.PEsProgrammed() == 0 {
		t.Error("no PEs programmed")
	}
}
