// Package cim models the tiled RRAM computing-in-memory architecture of
// paper §II-A: tiles connected by an NoC, each containing crossbar
// processing elements (PEs), input/output buffers, and a general-purpose
// execution unit (GPEU) for non-MVM operations, with a global DRAM behind
// the NoC. The package provides both the architecture description used by
// the scheduler/simulator and a functional crossbar model used to verify
// that the compilation pipeline preserves inference results.
package cim

import (
	"fmt"

	"clsacim/internal/im2col"
)

// DefaultTMVMNanos is the MVM latency of the reference 256x256 RRAM
// crossbar used in the paper's case study (1400 ns, from Wan et al. [4]).
// One scheduler cycle corresponds to this duration.
const DefaultTMVMNanos = 1400.0

// Config is the architecture description. The scheduler needs only the
// paper's three core simulation parameters (NumPEs, PE dims, tMVM); the
// remaining fields refine the model for the simulator extensions.
type Config struct {
	// NumPEs is the total crossbar count F. The paper's experiments set
	// F = PEmin + x for x in {0, 4, 8, 16, 32}.
	NumPEs int
	// PE gives the crossbar dimensions (rows x cols). CLSA-CIM accepts
	// arbitrary sizes (paper §V-C); the case study uses 256x256.
	PE im2col.PEDims
	// TMVMNanos is the MVM latency in nanoseconds (one cycle).
	TMVMNanos float64
	// PEsPerTile groups PEs into tiles for NoC distance and buffer
	// accounting. 0 means one PE per tile.
	PEsPerTile int
	// WeightBits / CellBits configure the functional crossbar model:
	// weights are quantized to WeightBits and bit-sliced over
	// ceil((WeightBits-1)/CellBits) cells (paper §III-A: up to 4-bit
	// RRAM cells).
	WeightBits int
	CellBits   int
	// InputBits is the DAC resolution for activations in the functional
	// model.
	InputBits int
	// GPEUCyclesPerKElem is the GPEU cost in cycles per 1024 produced
	// elements for non-base layers. The paper's idealized model uses 0.
	GPEUCyclesPerKElem float64
	// NoC models data movement cost between tiles; zero value disables
	// it (the paper's idealized uniform-cost assumption).
	NoC NoCConfig
}

// NoCConfig describes the optional mesh NoC cost model (paper §V-C lists
// data-movement cost differentiation as future work; we provide it as an
// extension to study sensitivity).
type NoCConfig struct {
	// Enabled turns hop-dependent transfer latency on.
	Enabled bool
	// CyclesPerHop is the added latency per mesh hop for forwarding one
	// scheduling set's data.
	CyclesPerHop float64
	// MeshWidth is the number of tiles per mesh row; 0 derives a square
	// mesh from the tile count.
	MeshWidth int
}

// Default returns the paper's case-study architecture: 256x256 crossbars,
// tMVM = 1400 ns, 8-bit weights on 4-bit cells, idealized GPEU and NoC.
// NumPEs is left to the caller (it depends on the network).
func Default() Config {
	return Config{
		PE:         im2col.PEDims{Rows: 256, Cols: 256},
		TMVMNanos:  DefaultTMVMNanos,
		PEsPerTile: 4,
		WeightBits: 8,
		CellBits:   4,
		InputBits:  8,
	}
}

// Validate checks configuration invariants.
func (c Config) Validate() error {
	if c.NumPEs <= 0 {
		return fmt.Errorf("cim: NumPEs %d must be positive", c.NumPEs)
	}
	if !c.PE.Valid() {
		return fmt.Errorf("cim: invalid PE dims %v", c.PE)
	}
	if c.TMVMNanos <= 0 {
		return fmt.Errorf("cim: TMVMNanos %v must be positive", c.TMVMNanos)
	}
	if c.PEsPerTile < 0 {
		return fmt.Errorf("cim: PEsPerTile %d must be >= 0", c.PEsPerTile)
	}
	if c.WeightBits < 0 || c.CellBits < 0 || c.InputBits < 0 {
		return fmt.Errorf("cim: negative bit width")
	}
	if c.NoC.Enabled && c.NoC.CyclesPerHop < 0 {
		return fmt.Errorf("cim: negative NoC hop cost")
	}
	return nil
}

// Tiles returns the number of tiles implied by NumPEs and PEsPerTile.
func (c Config) Tiles() int {
	per := c.PEsPerTile
	if per <= 0 {
		per = 1
	}
	return (c.NumPEs + per - 1) / per
}

// TileOf returns the tile index hosting PE pe.
func (c Config) TileOf(pe int) int {
	per := c.PEsPerTile
	if per <= 0 {
		per = 1
	}
	return pe / per
}

// MeshWidth returns the NoC mesh width (configured or derived square).
func (c Config) MeshWidth() int {
	if c.NoC.MeshWidth > 0 {
		return c.NoC.MeshWidth
	}
	t := c.Tiles()
	w := 1
	for w*w < t {
		w++
	}
	return w
}

// HopDistance returns the Manhattan distance between two tiles on the
// mesh (XY routing).
func (c Config) HopDistance(tileA, tileB int) int {
	w := c.MeshWidth()
	ax, ay := tileA%w, tileA/w
	bx, by := tileB%w, tileB/w
	dx := ax - bx
	if dx < 0 {
		dx = -dx
	}
	dy := ay - by
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// CycleNanos returns the duration of one scheduler cycle.
func (c Config) CycleNanos() float64 { return c.TMVMNanos }
