package cim

import (
	"fmt"

	"clsacim/internal/nn"
	"clsacim/internal/tensor"
)

// GraphExecutor runs whole NN graphs with base layers executed on
// functional crossbar models (quantized weights, integer MVMs) and
// non-base layers on the float GPEU reference — the full functional
// counterpart of the timing simulation. Crossbars are programmed once
// per base layer on first use (RRAM weights are written before
// inference, §II-A).
type GraphExecutor struct {
	Config   Config
	groups   map[*nn.Node]*PEGroup
	dwGroups map[*nn.Node]*DepthwiseGroup
}

// NewGraphExecutor returns an executor for the given architecture
// parameters (PE dims and bit widths are used; PE count is not enforced
// for functional runs).
func NewGraphExecutor(cfg Config) *GraphExecutor {
	return &GraphExecutor{
		Config:   cfg,
		groups:   make(map[*nn.Node]*PEGroup),
		dwGroups: make(map[*nn.Node]*DepthwiseGroup),
	}
}

// PEsProgrammed returns the number of crossbars programmed so far.
func (e *GraphExecutor) PEsProgrammed() int {
	n := 0
	for _, g := range e.groups {
		n += g.NumPEs()
	}
	for _, g := range e.dwGroups {
		n += g.NumPEs()
	}
	return n
}

// Run executes g on input, lowering every base layer to crossbar MVMs.
func (e *GraphExecutor) Run(g *nn.Graph, input *tensor.Tensor) ([]*tensor.Tensor, error) {
	exec := &nn.Executor{BaseOverride: e.execBase}
	return exec.RunOutputs(g, input)
}

func (e *GraphExecutor) execBase(n *nn.Node, in *tensor.Tensor) (*tensor.Tensor, error) {
	if op, ok := n.Op.(*nn.DepthwiseConv2D); ok {
		grp, ok := e.dwGroups[n]
		if !ok {
			var err error
			grp, err = ProgramDepthwise(op, e.Config)
			if err != nil {
				return nil, err
			}
			e.dwGroups[n] = grp
		}
		out, err := grp.ExecuteDepthwise(op, in)
		if err != nil {
			return nil, err
		}
		if op.Bias != nil {
			addBias(out, op.Bias)
		}
		return out, nil
	}
	grp, ok := e.groups[n]
	if !ok {
		var err error
		switch op := n.Op.(type) {
		case *nn.Conv2D:
			grp, err = ProgramConv(op, e.Config)
		case *nn.Dense:
			grp, err = ProgramDense(op, e.Config)
		default:
			err = fmt.Errorf("cim: unsupported base layer %v", n)
		}
		if err != nil {
			return nil, err
		}
		e.groups[n] = grp
	}
	switch op := n.Op.(type) {
	case *nn.Conv2D:
		out, err := grp.ExecuteConv(op, in)
		if err != nil {
			return nil, err
		}
		if op.Bias != nil {
			addBias(out, op.Bias)
		}
		return out, nil
	case *nn.Dense:
		out, err := grp.ExecuteDense(op, in)
		if err != nil {
			return nil, err
		}
		if op.Bias != nil {
			addBias(out, op.Bias)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("cim: unsupported base layer %v", n)
	}
}

// addBias applies a per-channel bias digitally (the crossbar computes
// the pure MVM; bias addition happens in the tile's digital periphery).
func addBias(t *tensor.Tensor, bias []float32) {
	c := t.Shape.C
	for i := range t.Data {
		t.Data[i] += bias[i%c]
	}
}
