package cim

import (
	"fmt"

	"clsacim/internal/im2col"
	"clsacim/internal/nn"
	"clsacim/internal/tensor"
)

// DepthwiseGroup is the packed crossbar realization of a depthwise
// convolution: ceil(C/P) crossbars, each holding P channels as a
// block-diagonal submatrix (channel slot j occupies rows
// [j*KH*KW, (j+1)*KH*KW) and column j; all other cells stay at zero
// conductance). This is the shifted/duplicated-kernel packing of the
// paper's reference [14] (VWC-SDK), adapted to depth multiplier 1.
type DepthwiseGroup struct {
	packing   int
	win       int // KH*KW
	bars      []*Crossbar
	inputBits int
}

// ProgramDepthwise quantizes and programs a depthwise layer.
func ProgramDepthwise(op *nn.DepthwiseConv2D, cfg Config) (*DepthwiseGroup, error) {
	if op.W == nil {
		return nil, fmt.Errorf("cim: depthwise conv has no weights to program")
	}
	p, err := im2col.DepthwisePacking(op.KH, op.KW, cfg.PE)
	if err != nil {
		return nil, err
	}
	wb, cb := cfg.WeightBits, cfg.CellBits
	if wb == 0 {
		wb = 8
	}
	if cb == 0 {
		cb = 4
	}
	g := &DepthwiseGroup{packing: p, win: op.KH * op.KW, inputBits: cfg.InputBits}
	if g.inputBits == 0 {
		g.inputBits = 8
	}
	for c0 := 0; c0 < op.C; c0 += p {
		chans := p
		if c0+chans > op.C {
			chans = op.C - c0
		}
		// Dense block-diagonal submatrix for this crossbar.
		sub := im2col.NewMatrix(chans*g.win, chans)
		for j := 0; j < chans; j++ {
			for kh := 0; kh < op.KH; kh++ {
				for kw := 0; kw < op.KW; kw++ {
					sub.Set(j*g.win+kh*op.KW+kw, j, op.W.At(kh, kw, c0+j, 0))
				}
			}
		}
		bar := NewCrossbar(cfg.PE)
		if err := bar.Program(sub, 0, sub.R, 0, sub.C, wb, cb); err != nil {
			return nil, err
		}
		g.bars = append(g.bars, bar)
	}
	return g, nil
}

// NumPEs returns the crossbar count (= the scheduling cost c_i).
func (g *DepthwiseGroup) NumPEs() int { return len(g.bars) }

// ExecuteDepthwise runs the programmed layer over ifm (valid, unpadded),
// one OFM pixel vector per MVM across the group — the same data flow the
// scheduler assumes for depthwise layers.
func (g *DepthwiseGroup) ExecuteDepthwise(op *nn.DepthwiseConv2D, ifm *tensor.Tensor) (*tensor.Tensor, error) {
	if op.Pad.Any() {
		return nil, fmt.Errorf("cim: depthwise conv still padded; canonicalize first")
	}
	s := ifm.Shape
	if s.C != op.C {
		return nil, fmt.Errorf("cim: ifm channels %d != C %d", s.C, op.C)
	}
	oh := (s.H-op.KH)/op.SH + 1
	ow := (s.W-op.KW)/op.SW + 1
	out := tensor.New(tensor.NewShape(oh, ow, op.C))
	vec := make([]float32, g.packing*g.win)
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			for b, bar := range g.bars {
				c0 := b * g.packing
				chans := bar.Cols()
				seg := vec[:chans*g.win]
				for j := 0; j < chans; j++ {
					for kh := 0; kh < op.KH; kh++ {
						for kw := 0; kw < op.KW; kw++ {
							seg[j*g.win+kh*op.KW+kw] = ifm.At(y*op.SH+kh, x*op.SW+kw, c0+j)
						}
					}
				}
				res, err := bar.MVM(seg, g.inputBits)
				if err != nil {
					return nil, err
				}
				for j, v := range res {
					out.Set(y, x, c0+j, v)
				}
			}
		}
	}
	return out, nil
}
