package mapping

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Func is the signature of a pluggable duplication solver: given the
// mapping plan and the total PE count F, produce a duplication vector
// for Optimization Problem 1 (paper §III-C). Implementations must keep
// sum(c_i * d_i) <= F and every d_i >= 1.
type Func func(plan *Plan, F int) (Solution, error)

// Typed registry errors, matchable with errors.Is.
var (
	ErrUnknownSolver   = fmt.Errorf("mapping: unknown solver")
	ErrDuplicateSolver = fmt.Errorf("mapping: solver already registered")
)

// The two solver registries share one namespace: a name resolves either
// to a plain Func (scored == nil in lookups) or to a ScoredFunc, never
// both.
var registry = struct {
	sync.RWMutex
	m map[string]Func
	s map[string]ScoredFunc
}{m: make(map[string]Func), s: make(map[string]ScoredFunc)}

// Register adds a named solver. Names are case-sensitive and must be
// unique across both plain and scored solvers; registering an existing
// name (including the builtins) returns ErrDuplicateSolver.
func Register(name string, fn Func) error {
	if name == "" {
		return fmt.Errorf("mapping: empty solver name")
	}
	if fn == nil {
		return fmt.Errorf("mapping: nil solver func for %q", name)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, ok := registry.m[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateSolver, name)
	}
	if _, ok := registry.s[name]; ok {
		return fmt.Errorf("%w: %q (as a scored solver)", ErrDuplicateSolver, name)
	}
	registry.m[name] = fn
	return nil
}

// RegisterScored adds a named schedule-aware solver. The name shares the
// namespace of Register: a name can resolve to a plain solver or a
// scored one, never both.
func RegisterScored(name string, fn ScoredFunc) error {
	if name == "" {
		return fmt.Errorf("mapping: empty solver name")
	}
	if fn == nil {
		return fmt.Errorf("mapping: nil scored solver func for %q", name)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, ok := registry.s[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateSolver, name)
	}
	if _, ok := registry.m[name]; ok {
		return fmt.Errorf("%w: %q (as a plain solver)", ErrDuplicateSolver, name)
	}
	registry.s[name] = fn
	return nil
}

// Lookup resolves a plain solver by name, returning ErrUnknownSolver
// (with the available names in the message) when it is not registered.
// Scored solvers do not resolve here; use LookupScored for those.
func Lookup(name string) (Func, error) {
	registry.RLock()
	fn, ok := registry.m[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q (available: %s)", ErrUnknownSolver, name, strings.Join(Names(), ", "))
	}
	return fn, nil
}

// LookupScored resolves a scored solver by name. The boolean reports
// whether the name names a scored solver; callers typically check
// IsScored/LookupScored first and fall back to Lookup.
func LookupScored(name string) (ScoredFunc, bool) {
	registry.RLock()
	fn, ok := registry.s[name]
	registry.RUnlock()
	return fn, ok
}

// IsScored reports whether name names a registered scored solver.
func IsScored(name string) bool {
	registry.RLock()
	_, ok := registry.s[name]
	registry.RUnlock()
	return ok
}

// Names lists all registered solver names — plain and scored — sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.m)+len(registry.s))
	for name := range registry.m {
		out = append(out, name)
	}
	for name := range registry.s {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewSolution validates a duplication vector produced by a custom solver
// and completes it into a Solution (PEsNeeded, Objective).
func NewSolution(plan *Plan, d []int) (Solution, error) {
	if len(d) != len(plan.Layers) {
		return Solution{}, fmt.Errorf("mapping: duplication vector has %d entries, plan has %d layers",
			len(d), len(plan.Layers))
	}
	for i, v := range d {
		if v < 1 {
			return Solution{}, fmt.Errorf("mapping: layer %d duplication %d < 1", i, v)
		}
		if max := MaxDup(plan.Layers[i]); v > max {
			return Solution{}, fmt.Errorf("mapping: layer %d duplication %d exceeds useful maximum %d", i, v, max)
		}
	}
	return finish(plan, append([]int(nil), d...)), nil
}

// The builtin solvers of Solve, addressable by name, plus the builtin
// scored solver.
func init() {
	for _, s := range []Solver{SolverNone, SolverGreedy, SolverDP, SolverBrute, SolverMinMax, SolverUniform} {
		s := s
		if err := Register(s.String(), func(plan *Plan, F int) (Solution, error) {
			return Solve(plan, F, s)
		}); err != nil {
			panic(err)
		}
	}
	if err := RegisterScored("search", SolveSearch); err != nil {
		panic(err)
	}
}
