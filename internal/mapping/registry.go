package mapping

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Func is the signature of a pluggable duplication solver: given the
// mapping plan and the total PE count F, produce a duplication vector
// for Optimization Problem 1 (paper §III-C). Implementations must keep
// sum(c_i * d_i) <= F and every d_i >= 1.
type Func func(plan *Plan, F int) (Solution, error)

// Typed registry errors, matchable with errors.Is.
var (
	ErrUnknownSolver   = fmt.Errorf("mapping: unknown solver")
	ErrDuplicateSolver = fmt.Errorf("mapping: solver already registered")
)

var registry = struct {
	sync.RWMutex
	m map[string]Func
}{m: make(map[string]Func)}

// Register adds a named solver. Names are case-sensitive and must be
// unique; registering an existing name (including the builtins) returns
// ErrDuplicateSolver.
func Register(name string, fn Func) error {
	if name == "" {
		return fmt.Errorf("mapping: empty solver name")
	}
	if fn == nil {
		return fmt.Errorf("mapping: nil solver func for %q", name)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, ok := registry.m[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateSolver, name)
	}
	registry.m[name] = fn
	return nil
}

// Lookup resolves a solver by name, returning ErrUnknownSolver (with the
// available names in the message) when it is not registered.
func Lookup(name string) (Func, error) {
	registry.RLock()
	fn, ok := registry.m[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q (available: %s)", ErrUnknownSolver, name, strings.Join(Names(), ", "))
	}
	return fn, nil
}

// Names lists the registered solver names, sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.m))
	for name := range registry.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewSolution validates a duplication vector produced by a custom solver
// and completes it into a Solution (PEsNeeded, Objective).
func NewSolution(plan *Plan, d []int) (Solution, error) {
	if len(d) != len(plan.Layers) {
		return Solution{}, fmt.Errorf("mapping: duplication vector has %d entries, plan has %d layers",
			len(d), len(plan.Layers))
	}
	for i, v := range d {
		if v < 1 {
			return Solution{}, fmt.Errorf("mapping: layer %d duplication %d < 1", i, v)
		}
		if max := MaxDup(plan.Layers[i]); v > max {
			return Solution{}, fmt.Errorf("mapping: layer %d duplication %d exceeds useful maximum %d", i, v, max)
		}
	}
	return finish(plan, append([]int(nil), d...)), nil
}

// The builtin solvers of Solve, addressable by name.
func init() {
	for _, s := range []Solver{SolverNone, SolverGreedy, SolverDP, SolverBrute, SolverMinMax} {
		s := s
		if err := Register(s.String(), func(plan *Plan, F int) (Solution, error) {
			return Solve(plan, F, s)
		}); err != nil {
			panic(err)
		}
	}
}
