package mapping

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// registryPlan builds a deterministic synthetic plan for registry tests.
func registryPlan(n int) *Plan {
	return randomPlan(rand.New(rand.NewSource(7)), n)
}

func TestRegistryBuiltins(t *testing.T) {
	names := Names()
	for _, want := range []string{"dp", "greedy", "minmax", "none", "brute"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("builtin solver %q not registered (have %v)", want, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted: %v", names)
		}
	}
}

func TestRegistryLookupMatchesSolve(t *testing.T) {
	plan := registryPlan(5)
	fn, err := Lookup("dp")
	if err != nil {
		t.Fatal(err)
	}
	F := plan.MinPEs + 8
	got, err := fn(plan, F)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Solve(plan, F, SolverDP)
	if err != nil {
		t.Fatal(err)
	}
	if got.Objective != want.Objective || got.PEsNeeded != want.PEsNeeded {
		t.Errorf("registry dp (%v, %d) != Solve dp (%v, %d)",
			got.Objective, got.PEsNeeded, want.Objective, want.PEsNeeded)
	}
}

func TestRegistryDuplicateAndInvalid(t *testing.T) {
	fn := func(plan *Plan, F int) (Solution, error) { return Solve(plan, F, SolverNone) }
	if err := Register("registry-test-ok", fn); err != nil {
		t.Fatal(err)
	}
	if err := Register("registry-test-ok", fn); !errors.Is(err, ErrDuplicateSolver) {
		t.Errorf("duplicate = %v, want ErrDuplicateSolver", err)
	}
	if err := Register("dp", fn); !errors.Is(err, ErrDuplicateSolver) {
		t.Errorf("builtin shadowing = %v, want ErrDuplicateSolver", err)
	}
	if err := Register("", fn); err == nil {
		t.Error("empty name accepted")
	}
	if err := Register("registry-test-nil", nil); err == nil {
		t.Error("nil func accepted")
	}
}

func TestRegistryUnknown(t *testing.T) {
	_, err := Lookup("no-such-solver")
	if !errors.Is(err, ErrUnknownSolver) {
		t.Fatalf("err = %v, want ErrUnknownSolver", err)
	}
	if !strings.Contains(err.Error(), "dp") {
		t.Errorf("error does not list available solvers: %v", err)
	}
}

func TestNewSolution(t *testing.T) {
	plan := registryPlan(4)
	ones := []int{1, 1, 1, 1}
	sol, err := NewSolution(plan, ones)
	if err != nil {
		t.Fatal(err)
	}
	if sol.PEsNeeded != plan.MinPEs {
		t.Errorf("all-ones PEsNeeded = %d, want MinPEs %d", sol.PEsNeeded, plan.MinPEs)
	}
	// The input slice must not be aliased.
	ones[0] = 99
	if sol.D[0] == 99 {
		t.Error("NewSolution aliased the caller's slice")
	}
	if _, err := NewSolution(plan, []int{1, 1}); err == nil {
		t.Error("short vector accepted")
	}
	if _, err := NewSolution(plan, []int{0, 1, 1, 1}); err == nil {
		t.Error("d_i < 1 accepted")
	}
	huge := []int{1 << 20, 1, 1, 1}
	if _, err := NewSolution(plan, huge); err == nil {
		t.Error("d_i > MaxDup accepted")
	}
}
