package mapping

import (
	"fmt"

	"clsacim/internal/nn"
	"clsacim/internal/region"
)

// RewriteDuplication applies the TensorFlow-graph realization of weight
// duplication (paper §III-C, Fig. 4) to g in place: each layer with
// d_i > 1 is replaced by d_i Slice -> Conv2D duplicates joined by a
// Concat tree. The OFM is cut into a gh x gw grid of disjoint slabs
// (along OH first, then OW); the IFM slices overlap according to the
// kernel shape and stride, exactly as tf.slice produces them.
//
// This rewrite exists to demonstrate and verify functional equivalence
// of the duplication mapping — the scheduler itself uses the equivalent
// replica-pool model (see the package comment). The rewritten graph
// computes bit-identical results and is revalidated.
func RewriteDuplication(g *nn.Graph, plan *Plan, sol Solution) error {
	if len(sol.D) != len(plan.Layers) {
		return fmt.Errorf("mapping: solution size %d != layers %d", len(sol.D), len(plan.Layers))
	}
	for li, info := range plan.Layers {
		if sol.D[li] <= 1 {
			continue
		}
		if err := rewriteLayer(g, info, sol.D[li]); err != nil {
			return err
		}
	}
	g.Prune()
	if err := g.Validate(); err != nil {
		return fmt.Errorf("mapping: rewritten graph invalid: %w", err)
	}
	return nil
}

// convGeometry extracts the window parameters of a duplicable layer and
// a factory for replica operator instances sharing the original weights.
func convGeometry(op nn.Op) (kh, kw, sh, sw int, mk func() nn.Op, ok bool) {
	switch o := op.(type) {
	case *nn.Conv2D:
		return o.KH, o.KW, o.SH, o.SW, func() nn.Op {
			return &nn.Conv2D{KH: o.KH, KW: o.KW, SH: o.SH, SW: o.SW,
				KI: o.KI, KO: o.KO, W: o.W, Bias: o.Bias}
		}, true
	case *nn.DepthwiseConv2D:
		return o.KH, o.KW, o.SH, o.SW, func() nn.Op {
			return &nn.DepthwiseConv2D{KH: o.KH, KW: o.KW, SH: o.SH, SW: o.SW,
				C: o.C, W: o.W, Bias: o.Bias}
		}, true
	default:
		return 0, 0, 0, 0, nil, false
	}
}

func rewriteLayer(g *nn.Graph, info LayerInfo, d int) error {
	kh, kw, sh, sw, mkOp, ok := convGeometry(info.Node.Op)
	if !ok {
		return fmt.Errorf("mapping: cannot duplicate non-convolution layer %v", info.Node)
	}
	out := info.Node.OutShape
	gh, gw := splitGrid(d, out.H, out.W)
	if gh*gw != d {
		return fmt.Errorf("mapping: cannot split %dx%d OFM into %d duplicates", out.H, out.W, d)
	}
	full := region.Full(out.H, out.W, out.C)
	rows := full.SplitH(gh, 1)
	ifm := info.Node.Inputs[0]
	ifmShape := ifm.OutShape

	var rowOutputs []*nn.Node
	dupIdx := 0
	for _, row := range rows {
		cols := row.SplitW(gw, 1)
		var colOutputs []*nn.Node
		for _, slab := range cols {
			// Receptive field of the slab in the (already padded) IFM.
			rf := region.NewBox(
				slab.H0*sh, (slab.H1-1)*sh+kh,
				slab.W0*sw, (slab.W1-1)*sw+kw,
				0, ifmShape.C,
			).ClampTo(ifmShape.H, ifmShape.W, ifmShape.C)
			sliceNode, err := g.TryAdd(g.FreshName(fmt.Sprintf("%s_dup%d_slice", info.Node.Name, dupIdx)),
				&nn.Slice{Box: rf}, ifm)
			if err != nil {
				return err
			}
			dupNode, err := g.TryAdd(g.FreshName(fmt.Sprintf("%s_dup%d", info.Node.Name, dupIdx)),
				mkOp(), sliceNode)
			if err != nil {
				return err
			}
			if dupNode.OutShape.H != slab.DH() || dupNode.OutShape.W != slab.DW() {
				return fmt.Errorf("mapping: duplicate %v computes %v, want %dx%d",
					dupNode, dupNode.OutShape, slab.DH(), slab.DW())
			}
			colOutputs = append(colOutputs, dupNode)
			dupIdx++
		}
		rowOut := colOutputs[0]
		if len(colOutputs) > 1 {
			var err error
			rowOut, err = g.TryAdd(g.FreshName(info.Node.Name+"_dupcatw"),
				&nn.Concat{Axis: nn.AxisW}, colOutputs...)
			if err != nil {
				return err
			}
		}
		rowOutputs = append(rowOutputs, rowOut)
	}
	result := rowOutputs[0]
	if len(rowOutputs) > 1 {
		var err error
		result, err = g.TryAdd(g.FreshName(info.Node.Name+"_dupcath"),
			&nn.Concat{Axis: nn.AxisH}, rowOutputs...)
		if err != nil {
			return err
		}
	}
	if !result.OutShape.Equal(info.Node.OutShape) {
		return fmt.Errorf("mapping: duplication of %v changed shape %v -> %v",
			info.Node, info.Node.OutShape, result.OutShape)
	}
	g.ReplaceUses(info.Node, result)
	return nil
}

// splitGrid chooses a gh x gw factorization of d with gh <= maxH and
// gw <= maxW, preferring to cut along H (the intra-layer raster
// direction), so gh is maximized. Returns (0, 0) if impossible.
func splitGrid(d, maxH, maxW int) (gh, gw int) {
	for h := minInt(d, maxH); h >= 1; h-- {
		if d%h != 0 {
			continue
		}
		if w := d / h; w <= maxW {
			return h, w
		}
	}
	return 0, 0
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
