package mapping

import (
	"fmt"
	"math"
)

// This file implements the search-based duplication solver ("search"):
// seeded simulated annealing over per-layer duplication vectors, scored
// by the makespan the scheduler actually achieves instead of the
// idealized sum(t_i/d_i) proxy of Optimization Problem 1. The score
// comes from a caller-supplied ScoreFunc that runs the real Stage I-IV
// pipeline (set determination, dependency build, coarse simulation) on
// each candidate — the compile pipeline provides it, closing over the
// graph, the Stage I granularity, and the scheduling mode under
// optimization.

// ScoreFunc scores one candidate duplication vector d (plan-layer
// order, every d_i >= 1, sum(c_i*d_i) <= F enforced by the caller of
// the solver) and returns the makespan in cycles the schedule achieves
// with it. Lower is better. Implementations must be deterministic: the
// search's reproducibility guarantee (same seed + budget => same
// Solution.D) holds only if equal vectors always score equally.
type ScoreFunc func(d []int) (int64, error)

// ScoredOptions carries the search knobs of a scored solver.
type ScoredOptions struct {
	// Seed drives the deterministic move RNG. The same (seed, budget,
	// plan, F) always yields the same Solution.D.
	Seed uint64
	// Budget bounds the number of ScoreFunc evaluations — deliberately
	// expressed in evaluations, not wall clock, so results are
	// reproducible across machines. Non-positive means
	// DefaultSearchBudget. Re-scoring an already-seen vector is
	// memoized and does not consume budget.
	Budget int
}

// ScoredFunc is the signature of a schedule-aware duplication solver:
// unlike Func it receives a ScoreFunc to evaluate candidates with the
// real scheduling pipeline. Implementations must keep
// sum(c_i * d_i) <= F and every 1 <= d_i <= MaxDup_i.
type ScoredFunc func(plan *Plan, F int, score ScoreFunc, opt ScoredOptions) (Solution, error)

// DefaultSearchBudget is the evaluation budget used when
// ScoredOptions.Budget is unset. Each evaluation re-runs Stage I-II and
// a coarse simulation (single-digit to tens of milliseconds per model),
// so the default keeps a cold "search" compile around a second — small
// enough for interactive serving, large enough to improve on the dp
// seed on most models.
const DefaultSearchBudget = 48

// searchRNG is a splitmix64 generator: tiny, fast, and fully
// deterministic for a fixed seed.
type searchRNG uint64

func (r *searchRNG) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform int in [0, n).
func (r *searchRNG) intn(n int) int {
	return int(r.next() % uint64(n))
}

// float returns a uniform float64 in [0, 1).
func (r *searchRNG) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// SolveSearch is the "search" solver: simulated annealing / local
// search over duplication vectors, scored by the caller's ScoreFunc.
//
// The walk starts from the best of the closed-form solutions (dp,
// greedy, minmax, uniform, and all-ones — each seeded into the
// evaluation budget, dp first), then explores three move kinds:
// incrementing a layer's duplication, decrementing it, and transferring
// one duplicate between layers. Every move respects 1 <= d_i <=
// MaxDup_i and sum(c_i*d_i) <= F, so every evaluated candidate is
// feasible. Worse candidates are accepted with an annealing probability
// that decays as the budget is spent; the best vector ever scored is
// returned, which guarantees the result is never worse (by ScoreFunc)
// than the dp seed as long as at least one evaluation is budgeted.
func SolveSearch(plan *Plan, F int, score ScoreFunc, opt ScoredOptions) (Solution, error) {
	n := len(plan.Layers)
	if plan.MinPEs > F {
		return Solution{}, fmt.Errorf("mapping: need %d PEs, architecture has %d", plan.MinPEs, F)
	}
	if score == nil {
		return Solution{}, fmt.Errorf("mapping: search solver needs a score function")
	}
	budget := opt.Budget
	if budget <= 0 {
		budget = DefaultSearchBudget
	}

	evals := 0
	memo := make(map[string]int64)
	// eval scores d, memoizing by vector so revisits are free. The
	// second return is false once the budget is exhausted.
	eval := func(d []int) (int64, bool, error) {
		key := vecKey(d)
		if s, ok := memo[key]; ok {
			return s, true, nil
		}
		if evals >= budget {
			return 0, false, nil
		}
		evals++
		s, err := score(d)
		if err != nil {
			return 0, false, fmt.Errorf("mapping: scoring candidate: %w", err)
		}
		memo[key] = s
		return s, true, nil
	}

	// Seed the walk with the closed-form solutions. dp goes first: with
	// any budget at all, the returned best is at least as good as the
	// exact proxy optimum.
	starts := [][]int{
		solveDP(plan, F).D,
		solveGreedy(plan, F).D,
		solveMinMax(plan, F).D,
		solveUniform(plan, F).D,
		onesVec(n),
	}
	var best []int
	var bestScore int64
	for _, d := range starts {
		s, ok, err := eval(d)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			break
		}
		if best == nil || s < bestScore {
			best = append(best[:0], d...)
			bestScore = s
		}
	}
	if best == nil {
		// Budget 0 cannot happen (defaulted above); defensive.
		return finish(plan, solveDP(plan, F).D), nil
	}

	rng := searchRNG(opt.Seed)
	cur := append([]int(nil), best...)
	curScore := bestScore
	used := 0
	for i, info := range plan.Layers {
		used += info.Cost * cur[i]
	}
	// t0 scales the annealing temperature to the problem: early on, a
	// candidate ~3% worse than the current score is accepted with
	// probability 1/e.
	t0 := float64(bestScore) * 0.03
	if t0 < 1 {
		t0 = 1
	}
	// Memoized revisits are free, so bound the total loop iterations to
	// guarantee termination even when the feasible neighborhood is
	// exhausted.
	for steps := 0; evals < budget && steps < 64*budget; steps++ {
		next, nextUsed := neighbor(plan, F, cur, used, &rng)
		if next == nil {
			break // no feasible move exists at all
		}
		s, ok, err := eval(next)
		if err != nil {
			return Solution{}, err
		}
		if !ok {
			break
		}
		frac := float64(evals) / float64(budget)
		temp := t0 * (1 - frac)
		accept := s <= curScore
		if !accept && temp > 0 {
			accept = rng.float() < math.Exp(-float64(s-curScore)/temp)
		}
		if accept {
			cur, used, curScore = next, nextUsed, s
			if s < bestScore {
				best = append(best[:0], next...)
				bestScore = s
			}
		}
	}
	return finish(plan, append([]int(nil), best...)), nil
}

// neighbor proposes one feasible mutation of d: increment a layer's
// duplication, decrement one, or transfer a duplicate between two
// layers. It retries random draws a bounded number of times and returns
// nil when nothing feasible was found (e.g. every layer pinned at its
// MaxDup or the budget exactly exhausted with no slack anywhere).
func neighbor(plan *Plan, F int, d []int, used int, rng *searchRNG) ([]int, int) {
	n := len(d)
	for attempt := 0; attempt < 64; attempt++ {
		kind := rng.intn(3)
		i := rng.intn(n)
		li := plan.Layers[i]
		switch kind {
		case 0: // increment d[i]
			if d[i] < MaxDup(li) && used+li.Cost <= F {
				out := append([]int(nil), d...)
				out[i]++
				return out, used + li.Cost
			}
		case 1: // decrement d[i]
			if d[i] > 1 {
				out := append([]int(nil), d...)
				out[i]--
				return out, used - li.Cost
			}
		default: // transfer one duplicate i -> j
			j := rng.intn(n)
			lj := plan.Layers[j]
			if i != j && d[i] > 1 && d[j] < MaxDup(lj) && used-li.Cost+lj.Cost <= F {
				out := append([]int(nil), d...)
				out[i]--
				out[j]++
				return out, used - li.Cost + lj.Cost
			}
		}
	}
	return nil, 0
}

// vecKey encodes a duplication vector as a compact map key.
func vecKey(d []int) string {
	b := make([]byte, 0, 4*len(d))
	for _, v := range d {
		for v >= 0x80 {
			b = append(b, byte(v)|0x80)
			v >>= 7
		}
		b = append(b, byte(v))
	}
	return string(b)
}

func onesVec(n int) []int {
	d := make([]int, n)
	for i := range d {
		d[i] = 1
	}
	return d
}
