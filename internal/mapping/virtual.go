package mapping

import (
	"fmt"
	"sort"
)

// Weight virtualization extends the mapping to architectures that cannot
// store the whole network at once (C_num > F) — the "more general
// scenarios" the paper defers to future work (§V-C). A subset of layers
// is resident (weights written once before inference, as usual); the
// remaining layers time-share a swap pool of PEs and must be
// (re)programmed immediately before they execute. RRAM writes are slow
// and wear the cells, which is exactly why the paper assumes F >= C_num;
// this extension quantifies that assumption.
//
// Reloading serializes against compute on the pool, so virtualized
// execution is layer-by-layer by construction: cross-layer overlap
// would require a second copy of the swapped weights.

// WriteCost models crossbar programming time.
type WriteCost struct {
	// CyclesPerCrossbar is the time to program one full crossbar, in
	// MVM cycles. RRAM writes are orders of magnitude slower than
	// reads; with tMVM = 1400 ns and ~10 us per-cell pulses over
	// row-parallel writes, hundreds to thousands of cycles per crossbar
	// are realistic.
	CyclesPerCrossbar int64
	// Parallelism is the number of crossbars that can be programmed
	// concurrently (per-tile write drivers). 0 means 1.
	Parallelism int
}

// ReloadCycles returns the time to program a layer occupying c
// crossbars.
func (w WriteCost) ReloadCycles(c int) int64 {
	par := w.Parallelism
	if par <= 0 {
		par = 1
	}
	batches := (c + par - 1) / par
	return int64(batches) * w.CyclesPerCrossbar
}

// VirtualMapping assigns every layer either dedicated PEs (resident) or
// the shared swap pool.
type VirtualMapping struct {
	*Mapping
	// Resident[i] reports whether plan layer i keeps its weights on
	// dedicated PEs for the whole inference.
	Resident []bool
	// ReloadCycles[i] is the programming time charged before layer i
	// executes (0 for resident layers).
	ReloadCycles []int64
	// PoolPEs is the size of the shared swap pool.
	PoolPEs int
	// TotalReload is the summed reload time per inference.
	TotalReload int64
	// Writes counts crossbar programming operations per inference
	// (endurance pressure).
	Writes int
}

// SolveVirtual selects resident layers for an architecture with F <
// plan.MinPEs. The pool must fit the largest swapped layer; the
// remaining budget keeps the layers whose reload cost is most expensive
// per PE resident (greedy on saved-cycles/PE, which is the natural
// knapsack relaxation ordering). Duplication is disabled (d_i = 1):
// spare capacity does not exist below C_num.
func SolveVirtual(plan *Plan, F int, wc WriteCost) (*VirtualMapping, error) {
	n := len(plan.Layers)
	if wc.CyclesPerCrossbar <= 0 {
		return nil, fmt.Errorf("mapping: virtualization needs a positive write cost")
	}
	maxCost := 0
	for _, info := range plan.Layers {
		if info.Cost > maxCost {
			maxCost = info.Cost
		}
	}
	if F < maxCost {
		return nil, fmt.Errorf("mapping: architecture has %d PEs but the largest layer alone needs %d", F, maxCost)
	}
	if F >= plan.MinPEs {
		return nil, fmt.Errorf("mapping: network fits (%d <= %d PEs); use the standard mapping", plan.MinPEs, F)
	}

	// Order layers by reload cycles saved per PE if kept resident.
	type cand struct {
		idx   int
		save  int64
		cost  int
		ratio float64
	}
	cands := make([]cand, n)
	for i, info := range plan.Layers {
		save := wc.ReloadCycles(info.Cost)
		cands[i] = cand{idx: i, save: save, cost: info.Cost,
			ratio: float64(save) / float64(info.Cost)}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].ratio != cands[b].ratio {
			return cands[a].ratio > cands[b].ratio
		}
		return cands[a].idx < cands[b].idx
	})

	resident := make([]bool, n)
	// Iteratively pick residents; the pool must always fit the largest
	// remaining swapped layer, so recompute the feasible budget as the
	// resident set grows.
	for {
		poolNeed := 0
		used := 0
		for i, info := range plan.Layers {
			if resident[i] {
				used += info.Cost
			} else if info.Cost > poolNeed {
				poolNeed = info.Cost
			}
		}
		budget := F - used - poolNeed
		best := -1
		for _, c := range cands {
			if resident[c.idx] {
				continue
			}
			// Keeping c resident may shrink the needed pool.
			newPool := 0
			for i, info := range plan.Layers {
				if !resident[i] && i != c.idx && info.Cost > newPool {
					newPool = info.Cost
				}
			}
			if used+c.cost+newPool <= F && (budget >= c.cost || newPool < poolNeed) {
				best = c.idx
				break
			}
		}
		if best < 0 {
			break
		}
		resident[best] = true
	}

	vm := &VirtualMapping{
		Resident:     resident,
		ReloadCycles: make([]int64, n),
	}
	m := &Mapping{PE: plan.PE, F: F, Dup: make([]int, n)}
	next := 0
	poolSize := 0
	for i, info := range plan.Layers {
		if !resident[i] && info.Cost > poolSize {
			poolSize = info.Cost
		}
	}
	// Dedicated PEs first, then the pool occupies the tail indices.
	poolStart := 0
	for i, info := range plan.Layers {
		m.Dup[i] = 1
		if resident[i] {
			ids := make([]int, info.Cost)
			for j := range ids {
				ids[j] = next + j
			}
			next += info.Cost
			m.Groups = append(m.Groups, &Group{Node: info.Node, LayerIdx: i, Dup: 1,
				Tiling: info.Tiling, PEs: ids})
		} else {
			m.Groups = append(m.Groups, nil) // filled below once the pool base is known
		}
	}
	poolStart = next
	if poolStart+poolSize > F {
		return nil, fmt.Errorf("mapping: internal: resident set %d + pool %d exceeds F %d",
			poolStart, poolSize, F)
	}
	for i, info := range plan.Layers {
		if resident[i] {
			continue
		}
		ids := make([]int, info.Cost)
		for j := range ids {
			ids[j] = poolStart + j // pool PEs are shared across swapped layers
		}
		m.Groups[i] = &Group{Node: info.Node, LayerIdx: i, Dup: 1, Tiling: info.Tiling, PEs: ids}
		vm.ReloadCycles[i] = wc.ReloadCycles(info.Cost)
		vm.TotalReload += vm.ReloadCycles[i]
		vm.Writes += info.Cost
	}
	m.PEsUsed = poolStart + poolSize
	vm.Mapping = m
	vm.PoolPEs = poolSize
	return vm, nil
}

// ResidentPEs returns the number of PEs holding permanently resident
// weights.
func (vm *VirtualMapping) ResidentPEs() int {
	return vm.PEsUsed - vm.PoolPEs
}
