package mapping

import (
	"math/rand"
	"testing"
	"testing/quick"

	"clsacim/internal/frontend"
	"clsacim/internal/im2col"
	"clsacim/internal/models"
	"clsacim/internal/nn"
	"clsacim/internal/tensor"
)

var pe256 = im2col.PEDims{Rows: 256, Cols: 256}

func canonicalModel(t *testing.T, id models.ID, opt models.Options) *nn.Graph {
	t.Helper()
	g := models.MustBuild(id, opt)
	if _, err := frontend.Canonicalize(g, frontend.Options{}); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAnalyzeTinyYOLOv4(t *testing.T) {
	g := canonicalModel(t, models.TinyYOLOv4, models.Options{})
	plan, err := Analyze(g, pe256)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MinPEs != 117 {
		t.Errorf("MinPEs = %d, want 117", plan.MinPEs)
	}
	if len(plan.Layers) != 21 {
		t.Errorf("layers = %d, want 21", len(plan.Layers))
	}
	if plan.Layers[0].Latency != 43264 || plan.Layers[0].Cost != 1 {
		t.Errorf("layer 0: t=%d c=%d", plan.Layers[0].Latency, plan.Layers[0].Cost)
	}
}

func TestAnalyzeRejectsPadded(t *testing.T) {
	g := models.MustBuild(models.TinyConvNet, models.Options{})
	if _, err := Analyze(g, pe256); err == nil {
		t.Error("non-canonical graph accepted")
	}
}

func TestSolveNone(t *testing.T) {
	g := canonicalModel(t, models.TinyYOLOv4, models.Options{})
	plan, _ := Analyze(g, pe256)
	sol, err := Solve(plan, 117, SolverNone)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range sol.D {
		if d != 1 {
			t.Errorf("d[%d] = %d", i, d)
		}
	}
	if sol.PEsNeeded != 117 {
		t.Errorf("PEsNeeded = %d", sol.PEsNeeded)
	}
	if _, err := Solve(plan, 100, SolverNone); err == nil {
		t.Error("under-provisioned architecture accepted")
	}
}

// TestSolveYolov4X16FirstLayers reproduces the paper's Fig. 6a claim:
// with x = 16 extra PEs, the duplicated layers are exactly the first six
// convolutions.
func TestSolveYolov4X16FirstLayers(t *testing.T) {
	g := canonicalModel(t, models.TinyYOLOv4, models.Options{})
	plan, _ := Analyze(g, pe256)
	sol, err := Solve(plan, 117+16, SolverDP)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range sol.D {
		if i < 6 && d < 2 {
			t.Errorf("layer %d (%s) not duplicated: d=%d", i, plan.Layers[i].Node.Name, d)
		}
		if i >= 6 && d != 1 {
			t.Errorf("layer %d (%s) unexpectedly duplicated: d=%d", i, plan.Layers[i].Node.Name, d)
		}
	}
	if sol.PEsNeeded > 117+16 {
		t.Errorf("budget exceeded: %d", sol.PEsNeeded)
	}
}

// randomPlan builds a synthetic plan for solver cross-validation.
func randomPlan(r *rand.Rand, n int) *Plan {
	g := nn.NewGraph()
	in := g.AddInput("input", tensor.NewShape(64, 64, 1))
	plan := &Plan{PE: pe256}
	prev := in
	for i := 0; i < n; i++ {
		// OH between 1 and 20 rows bounds maxDup.
		oh := 1 + r.Intn(20)
		node := g.Add("", &nn.Conv2D{KH: 1, KW: 1, SH: 1, SW: 1, KI: 1, KO: 1}, prev)
		node.OutShape = tensor.NewShape(oh, 1+r.Intn(20), 1)
		cost := 1 + r.Intn(4)
		plan.Layers = append(plan.Layers, LayerInfo{
			Node:    node,
			Cost:    cost,
			Latency: int64(node.OutShape.Pixels()),
		})
		plan.MinPEs += cost
		prev = node
	}
	return plan
}

// TestQuickSolverCrossValidation: DP must equal brute force exactly and
// never lose to greedy; all solutions respect budget and bounds.
func TestQuickSolverCrossValidation(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	f := func() bool {
		n := 2 + r.Intn(5)
		plan := randomPlan(r, n)
		budget := plan.MinPEs + r.Intn(12)
		dp, err := Solve(plan, budget, SolverDP)
		if err != nil {
			return false
		}
		gr, err := Solve(plan, budget, SolverGreedy)
		if err != nil {
			return false
		}
		br, err := Solve(plan, budget, SolverBrute)
		if err != nil {
			return false
		}
		mm, err := Solve(plan, budget, SolverMinMax)
		if err != nil {
			return false
		}
		for _, sol := range []Solution{dp, gr, br, mm} {
			if sol.PEsNeeded > budget {
				return false
			}
			for i, d := range sol.D {
				if d < 1 || d > MaxDup(plan.Layers[i]) {
					return false
				}
			}
		}
		const eps = 1e-9
		if dp.Objective > br.Objective+eps || dp.Objective < br.Objective-eps {
			return false // DP must be exact
		}
		return dp.Objective <= gr.Objective+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickMinMaxBottleneck: the minmax solver never has a worse
// bottleneck than the DP solver.
func TestQuickMinMaxBottleneck(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	bottleneck := func(plan *Plan, d []int) float64 {
		worst := 0.0
		for i, info := range plan.Layers {
			if v := float64(info.Latency) / float64(d[i]); v > worst {
				worst = v
			}
		}
		return worst
	}
	f := func() bool {
		plan := randomPlan(r, 2+r.Intn(5))
		budget := plan.MinPEs + r.Intn(16)
		dp, err1 := Solve(plan, budget, SolverDP)
		mm, err2 := Solve(plan, budget, SolverMinMax)
		if err1 != nil || err2 != nil {
			return false
		}
		return bottleneck(plan, mm.D) <= bottleneck(plan, dp.D)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSolveBruteLimits(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	plan := randomPlan(r, 9)
	if _, err := Solve(plan, plan.MinPEs+4, SolverBrute); err == nil {
		t.Error("brute accepted 9 layers")
	}
	if _, err := Solve(plan, plan.MinPEs, Solver(42)); err == nil {
		t.Error("unknown solver accepted")
	}
}

func TestDenseNeverDuplicated(t *testing.T) {
	g := canonicalModel(t, models.TinyMLP, models.Options{})
	plan, err := Analyze(g, pe256)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(plan, plan.MinPEs+50, SolverDP)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range sol.D {
		if d != 1 {
			t.Errorf("dense layer %d duplicated d=%d (1x1 OFM cannot split work)", i, d)
		}
	}
}

func TestApplyAllocation(t *testing.T) {
	g := canonicalModel(t, models.TinyYOLOv4, models.Options{})
	plan, _ := Analyze(g, pe256)
	sol, _ := Solve(plan, 117+16, SolverDP)
	m, err := Apply(g, plan, sol, 117+16)
	if err != nil {
		t.Fatal(err)
	}
	if m.PEsUsed > m.F {
		t.Errorf("allocated %d > F %d", m.PEsUsed, m.F)
	}
	// PEs must be disjoint and within range.
	seen := make(map[int]bool)
	for li, grp := range m.Groups {
		if grp.Dup != sol.D[li] {
			t.Errorf("group %d dup %d != solution %d", li, grp.Dup, sol.D[li])
		}
		if len(grp.PEs) != grp.Dup*grp.PEsPerReplica() {
			t.Errorf("group %d has %d PEs, want %d", li, len(grp.PEs), grp.Dup*grp.PEsPerReplica())
		}
		for _, pe := range grp.PEs {
			if pe < 0 || pe >= m.F || seen[pe] {
				t.Fatalf("PE %d invalid or double-allocated", pe)
			}
			seen[pe] = true
		}
		// Replica views must partition the group's PEs.
		count := 0
		for r := 0; r < grp.Dup; r++ {
			count += len(grp.ReplicaPEs(r))
		}
		if count != len(grp.PEs) {
			t.Errorf("replica views cover %d of %d PEs", count, len(grp.PEs))
		}
	}
	if m.GroupOf(plan.Layers[0].Node) == nil {
		t.Error("GroupOf lookup failed")
	}
	if m.GroupOf(g.Input) != nil {
		t.Error("GroupOf returned group for input node")
	}
}

func TestApplyValidation(t *testing.T) {
	g := canonicalModel(t, models.TinyYOLOv4, models.Options{})
	plan, _ := Analyze(g, pe256)
	if _, err := Apply(g, plan, Solution{D: []int{1}}, 117); err == nil {
		t.Error("short solution accepted")
	}
	sol, _ := Solve(plan, 117, SolverNone)
	if _, err := Apply(g, plan, sol, 100); err == nil {
		t.Error("under-provisioned F accepted")
	}
	bad := Solution{D: make([]int, len(plan.Layers))}
	copy(bad.D, sol.D)
	bad.D[0] = 0
	if _, err := Apply(g, plan, bad, 117); err == nil {
		t.Error("d=0 accepted")
	}
}

// TestRewriteDuplicationPreservesOutputs is the functional-equivalence
// test of the TF-style rewrite (paper Fig. 4): identical results.
func TestRewriteDuplicationPreservesOutputs(t *testing.T) {
	g := canonicalModel(t, models.TinyBranchNet, models.Options{WithWeights: true, Seed: 31})
	in := tensor.New(g.Input.OutShape)
	in.FillRand(17, 1)
	before, err := (&nn.Executor{}).RunOutputs(g, in)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Analyze(g, pe256)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(plan, plan.MinPEs+6, SolverDP)
	if err != nil {
		t.Fatal(err)
	}
	dups := 0
	for _, d := range sol.D {
		if d > 1 {
			dups++
		}
	}
	if dups == 0 {
		t.Fatal("solution has no duplicates; test is vacuous")
	}
	if err := RewriteDuplication(g, plan, sol); err != nil {
		t.Fatal(err)
	}
	after, err := (&nn.Executor{}).RunOutputs(g, in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if d := tensor.MaxAbsDiff(before[i], after[i]); d != 0 {
			t.Errorf("output %d deviates by %v (duplicates recompute identical dot products)", i, d)
		}
	}
	// Structure: slices and concats present.
	slices, concats := 0, 0
	for _, n := range g.Nodes {
		switch n.Kind() {
		case nn.OpSlice:
			slices++
		case nn.OpConcat:
			concats++
		}
	}
	if slices == 0 || concats == 0 {
		t.Errorf("rewrite added %d slices, %d concats", slices, concats)
	}
}

func TestSplitGrid(t *testing.T) {
	cases := []struct {
		d, maxH, maxW, wantH, wantW int
	}{
		{6, 104, 104, 6, 1},
		{6, 4, 104, 3, 2},
		{7, 3, 3, 0, 0}, // prime > both dims: impossible
		{1, 5, 5, 1, 1},
		{4, 2, 2, 2, 2},
	}
	for _, c := range cases {
		gh, gw := splitGrid(c.d, c.maxH, c.maxW)
		if gh != c.wantH || gw != c.wantW {
			t.Errorf("splitGrid(%d,%d,%d) = (%d,%d), want (%d,%d)",
				c.d, c.maxH, c.maxW, gh, gw, c.wantH, c.wantW)
		}
	}
}

func TestSolverString(t *testing.T) {
	if SolverDP.String() != "dp" || SolverMinMax.String() != "minmax" {
		t.Error("solver names wrong")
	}
}
