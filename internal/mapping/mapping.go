// Package mapping implements the weight-mapping stage of the compiler:
// static assignment of base layers to crossbar PEs, and the
// weight-duplication optimization of paper §III-C, which decides how
// often to replicate each layer's weights (Optimization Problem 1).
//
// Duplication model: all d_i replicas of a layer hold identical weights,
// so any input vector (OFM pixel) can be dispatched to any replica —
// "the work, i.e., the input vectors, is evenly distributed among the
// duplicates" (§III-C). The scheduler therefore treats a duplicated
// layer as one logical layer with d_i parallel PE groups serving its OFM
// sets round-robin, which keeps OFM pixels emerging in raster order at
// d_i-fold throughput. The TensorFlow-graph realization of the same
// mapping (tf.slice -> duplicated Conv2D -> Concatenate, paper Fig. 4)
// is provided by RewriteDuplication and verified functionally; it
// produces identical tensors and identical total work.
package mapping

import (
	"fmt"

	"clsacim/internal/im2col"
	"clsacim/internal/nn"
)

// LayerInfo captures the mapping-relevant facts of one base layer.
type LayerInfo struct {
	Node   *nn.Node
	Tiling im2col.Tiling
	// Cost is c_i: the number of PEs needed for one copy of the weights.
	Cost int
	// Latency is t_i: OH*OW cycles with intra-layer scheduling (§III-B).
	Latency int64
}

// Plan is the analysis of a canonical graph against a PE geometry.
type Plan struct {
	PE     im2col.PEDims
	Layers []LayerInfo // base layers in topological order
	// MinPEs is C_num = sum c_i: the minimum number of PEs that stores
	// every weight exactly once (paper Eq. 1).
	MinPEs int
}

// Analyze computes the PE tiling, cost, and intra-layer latency of every
// base layer. The graph must be canonical (padding/bias decoupled).
func Analyze(g *nn.Graph, pe im2col.PEDims) (*Plan, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	p := &Plan{PE: pe}
	for _, n := range order {
		if !n.IsBase() {
			continue
		}
		switch op := n.Op.(type) {
		case *nn.Conv2D:
			if op.Pad.Any() {
				return nil, fmt.Errorf("mapping: %v still carries padding; canonicalize first", n)
			}
		case *nn.DepthwiseConv2D:
			if op.Pad.Any() {
				return nil, fmt.Errorf("mapping: %v still carries padding; canonicalize first", n)
			}
		}
		t, err := im2col.TileBase(n, pe)
		if err != nil {
			return nil, err
		}
		info := LayerInfo{
			Node:    n,
			Tiling:  t,
			Cost:    t.PEs(),
			Latency: int64(n.OutShape.Pixels()),
		}
		p.Layers = append(p.Layers, info)
		p.MinPEs += info.Cost
	}
	if len(p.Layers) == 0 {
		return nil, fmt.Errorf("mapping: graph has no base layers")
	}
	return p, nil
}

// Group is one mapped base layer: Dup identical weight replicas, each
// occupying Tiling.PEs() crossbars. Replica r owns PE indices
// PEs[r*Tiling.PEs() : (r+1)*Tiling.PEs()].
type Group struct {
	Node *nn.Node
	// LayerIdx is the index in Plan.Layers.
	LayerIdx int
	// Dup is the applied duplication factor d_i (>= 1).
	Dup int
	// Tiling is the per-replica kernel-matrix tiling.
	Tiling im2col.Tiling
	// PEs are the global PE indices of all replicas, replica-major.
	PEs []int
}

// PEsPerReplica returns c_i, the crossbar count of one weight copy.
func (g *Group) PEsPerReplica() int { return g.Tiling.PEs() }

// ReplicaPEs returns the PE indices of replica r.
func (g *Group) ReplicaPEs(r int) []int {
	c := g.PEsPerReplica()
	return g.PEs[r*c : (r+1)*c]
}

// Mapping is the result of applying a duplication solution.
type Mapping struct {
	PE im2col.PEDims
	// F is the total PE count of the architecture.
	F      int
	Groups []*Group
	// PEsUsed counts allocated PEs (<= F).
	PEsUsed int
	// Dup holds the applied duplication factors in plan-layer order.
	Dup []int
}

// GroupOf returns the group of a base-layer node, or nil.
func (m *Mapping) GroupOf(node *nn.Node) *Group {
	for _, g := range m.Groups {
		if g.Node == node {
			return g
		}
	}
	return nil
}

// Apply allocates PEs for every base layer with the given duplication
// solution. The graph is not modified: duplication is a resource
// replication visible to the scheduler (see the package comment).
func Apply(g *nn.Graph, plan *Plan, sol Solution, F int) (*Mapping, error) {
	if len(sol.D) != len(plan.Layers) {
		return nil, fmt.Errorf("mapping: solution size %d != layers %d", len(sol.D), len(plan.Layers))
	}
	if plan.MinPEs > F {
		return nil, fmt.Errorf("mapping: network needs %d PEs but architecture has %d (paper assumes C_num <= F)",
			plan.MinPEs, F)
	}
	m := &Mapping{PE: plan.PE, F: F, Dup: append([]int(nil), sol.D...)}
	nextPE := 0
	for li, info := range plan.Layers {
		d := sol.D[li]
		if d < 1 {
			return nil, fmt.Errorf("mapping: layer %v has d=%d", info.Node, d)
		}
		n := info.Cost * d
		ids := make([]int, n)
		for i := range ids {
			ids[i] = nextPE + i
		}
		nextPE += n
		m.Groups = append(m.Groups, &Group{
			Node: info.Node, LayerIdx: li, Dup: d, Tiling: info.Tiling, PEs: ids,
		})
	}
	m.PEsUsed = nextPE
	if m.PEsUsed > F {
		return nil, fmt.Errorf("mapping: solution uses %d PEs > F=%d", m.PEsUsed, F)
	}
	return m, nil
}
