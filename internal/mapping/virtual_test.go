package mapping

import (
	"testing"

	"clsacim/internal/models"
)

func vplan(t *testing.T) *Plan {
	t.Helper()
	g := canonicalModel(t, models.VGG16, models.Options{})
	plan, err := Analyze(g, pe256)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestWriteCost(t *testing.T) {
	wc := WriteCost{CyclesPerCrossbar: 100, Parallelism: 4}
	cases := []struct {
		c    int
		want int64
	}{{1, 100}, {4, 100}, {5, 200}, {36, 900}}
	for _, tc := range cases {
		if got := wc.ReloadCycles(tc.c); got != tc.want {
			t.Errorf("ReloadCycles(%d) = %d, want %d", tc.c, got, tc.want)
		}
	}
	zero := WriteCost{CyclesPerCrossbar: 50}
	if got := zero.ReloadCycles(3); got != 150 {
		t.Errorf("parallelism 0 must mean 1: got %d", got)
	}
}

func TestSolveVirtualBasics(t *testing.T) {
	plan := vplan(t)
	wc := WriteCost{CyclesPerCrossbar: 512, Parallelism: 4}
	vm, err := SolveVirtual(plan, 150, wc)
	if err != nil {
		t.Fatal(err)
	}
	if vm.PEsUsed > 150 {
		t.Errorf("uses %d > 150 PEs", vm.PEsUsed)
	}
	if vm.PoolPEs <= 0 {
		t.Error("no swap pool allocated")
	}
	// The pool must fit every swapped layer.
	for i, info := range plan.Layers {
		if vm.Resident[i] {
			if vm.ReloadCycles[i] != 0 {
				t.Errorf("resident layer %d has reload %d", i, vm.ReloadCycles[i])
			}
			continue
		}
		if info.Cost > vm.PoolPEs {
			t.Errorf("swapped layer %d needs %d PEs, pool has %d", i, info.Cost, vm.PoolPEs)
		}
		if vm.ReloadCycles[i] != wc.ReloadCycles(info.Cost) {
			t.Errorf("layer %d reload %d, want %d", i, vm.ReloadCycles[i], wc.ReloadCycles(info.Cost))
		}
	}
	// Resident PEs must be disjoint from each other and from the pool.
	poolStart := vm.ResidentPEs()
	seen := make(map[int]bool)
	for i, grp := range vm.Groups {
		if vm.Resident[i] {
			for _, pe := range grp.PEs {
				if pe >= poolStart || seen[pe] {
					t.Fatalf("resident layer %d PE %d overlaps pool or another layer", i, pe)
				}
				seen[pe] = true
			}
		} else {
			for _, pe := range grp.PEs {
				if pe < poolStart {
					t.Fatalf("swapped layer %d PE %d inside resident range", i, pe)
				}
			}
		}
	}
	if vm.TotalReload <= 0 || vm.Writes <= 0 {
		t.Error("no reload accounted")
	}
}

// TestSolveVirtualMonotone: more PEs never increase total reload time.
func TestSolveVirtualMonotone(t *testing.T) {
	plan := vplan(t)
	wc := WriteCost{CyclesPerCrossbar: 512, Parallelism: 4}
	prev := int64(1 << 62)
	for _, f := range []int{80, 120, 160, 200, 232} {
		vm, err := SolveVirtual(plan, f, wc)
		if err != nil {
			t.Fatalf("F=%d: %v", f, err)
		}
		if vm.TotalReload > prev {
			t.Errorf("F=%d: reload %d > previous %d (more PEs made it worse)", f, vm.TotalReload, prev)
		}
		prev = vm.TotalReload
	}
}

func TestSolveVirtualErrors(t *testing.T) {
	plan := vplan(t)
	wc := WriteCost{CyclesPerCrossbar: 512}
	if _, err := SolveVirtual(plan, plan.MinPEs, wc); err == nil {
		t.Error("fitting network accepted (should use the standard mapping)")
	}
	// The largest VGG16 layer needs 36 PEs.
	if _, err := SolveVirtual(plan, 35, wc); err == nil {
		t.Error("architecture smaller than the largest layer accepted")
	}
	if _, err := SolveVirtual(plan, 100, WriteCost{}); err == nil {
		t.Error("zero write cost accepted")
	}
}

// TestSolveVirtualKeepsExpensiveLayers: the greedy selection must keep
// layers with the best reload-per-PE ratio resident. For uniform write
// parallelism that favors the layers whose cost is just above a batch
// boundary; at minimum, the single most write-expensive layer per PE
// must not be swapped while a strictly cheaper-per-PE layer of equal or
// larger cost stays resident with room to swap them.
func TestSolveVirtualUsesBudget(t *testing.T) {
	plan := vplan(t)
	wc := WriteCost{CyclesPerCrossbar: 512, Parallelism: 1}
	vm, err := SolveVirtual(plan, 200, wc)
	if err != nil {
		t.Fatal(err)
	}
	// With parallelism 1 the saved cycles are proportional to cost, so
	// the ratio is uniform; the solver must still fill the budget well:
	// leftover capacity smaller than the smallest swapped layer.
	smallestSwapped := 1 << 30
	for i, info := range plan.Layers {
		if !vm.Resident[i] && info.Cost < smallestSwapped {
			smallestSwapped = info.Cost
		}
	}
	leftover := vm.F - vm.PEsUsed
	if leftover >= smallestSwapped && smallestSwapped < 1<<30 {
		t.Errorf("leftover %d PEs could host swapped layer of %d", leftover, smallestSwapped)
	}
}
