package mapping

import (
	"fmt"
	"math"
)

// Solution is a duplication vector d for Optimization Problem 1
// (paper §III-C): minimize sum(t_i/d_i) subject to sum(c_i*d_i) <= F,
// d_i >= 1 integer.
type Solution struct {
	// D holds the duplication factor of each plan layer.
	D []int
	// PEsNeeded is sum(c_i * d_i).
	PEsNeeded int
	// Objective is sum(t_i / d_i), the idealized total layer latency.
	Objective float64
}

// Solver selects the algorithm used for Optimization Problem 1.
type Solver int

// Available solvers. SolverDP solves Optimization Problem 1 exactly (the
// default used by the benchmarks); SolverGreedy is the fast
// marginal-gain heuristic; SolverBrute exhaustively enumerates (tests
// only); SolverNone disables duplication (d_i = 1); SolverMinMax is an
// extension beyond the paper that minimizes the pipeline bottleneck
// max(t_i/d_i) instead of the sum — a better objective when the mapping
// is combined with cross-layer scheduling, where the slowest layer
// paces the whole pipeline. SolverUniform spreads the extra-PE budget as
// evenly as duplication feasibility allows — the objective-blind
// baseline the ablations compare the optimizing solvers against.
//
// The schedule-aware "search" solver is not a Solver value: it needs a
// ScoreFunc and registers through the scored registry (see SolveSearch
// and RegisterScored).
const (
	SolverNone Solver = iota
	SolverGreedy
	SolverDP
	SolverBrute
	SolverMinMax
	SolverUniform
)

// String names the solver.
func (s Solver) String() string {
	return [...]string{"none", "greedy", "dp", "brute", "minmax", "uniform"}[s]
}

// MaxDup bounds the useful duplication of a layer: work is split along
// OH (then OW), so more duplicates than output rows cannot be assigned
// disjoint slabs. Dense layers (1x1 OFM) are never duplicated.
func MaxDup(info LayerInfo) int {
	return info.Node.OutShape.H
}

// Solve computes a duplication vector for F total PEs. It requires
// plan.MinPEs <= F (the paper's standing assumption that the NN fits).
func Solve(plan *Plan, F int, solver Solver) (Solution, error) {
	n := len(plan.Layers)
	if plan.MinPEs > F {
		return Solution{}, fmt.Errorf("mapping: need %d PEs, architecture has %d", plan.MinPEs, F)
	}
	ones := make([]int, n)
	for i := range ones {
		ones[i] = 1
	}
	switch solver {
	case SolverNone:
		return finish(plan, ones), nil
	case SolverGreedy:
		return solveGreedy(plan, F), nil
	case SolverDP:
		return solveDP(plan, F), nil
	case SolverBrute:
		return solveBrute(plan, F)
	case SolverMinMax:
		return solveMinMax(plan, F), nil
	case SolverUniform:
		return solveUniform(plan, F), nil
	default:
		return Solution{}, fmt.Errorf("mapping: unknown solver %d", solver)
	}
}

func finish(plan *Plan, d []int) Solution {
	s := Solution{D: d}
	for i, info := range plan.Layers {
		s.PEsNeeded += info.Cost * d[i]
		s.Objective += float64(info.Latency) / float64(d[i])
	}
	return s
}

// solveGreedy repeatedly grants one extra duplicate to the layer with the
// best latency reduction per PE spent.
func solveGreedy(plan *Plan, F int) Solution {
	n := len(plan.Layers)
	d := make([]int, n)
	for i := range d {
		d[i] = 1
	}
	budget := F - plan.MinPEs
	for {
		best := -1
		var bestEff float64
		for i, info := range plan.Layers {
			if d[i] >= MaxDup(info) || info.Cost > budget {
				continue
			}
			gain := float64(info.Latency)/float64(d[i]) - float64(info.Latency)/float64(d[i]+1)
			if gain <= 0 {
				continue
			}
			eff := gain / float64(info.Cost)
			if eff > bestEff {
				bestEff = eff
				best = i
			}
		}
		if best < 0 {
			break
		}
		d[best]++
		budget -= plan.Layers[best].Cost
	}
	return finish(plan, d)
}

// solveDP solves Optimization Problem 1 exactly by dynamic programming
// over the extra-PE budget B = F - MinPEs: dp[i][b] is the minimum
// objective of the first i layers using b extra PEs.
func solveDP(plan *Plan, F int) Solution {
	n := len(plan.Layers)
	budget := F - plan.MinPEs
	const inf = math.MaxFloat64
	dp := make([]float64, budget+1)
	choice := make([][]int, n) // choice[i][b] = extra duplicates of layer i
	for i := range dp {
		dp[i] = 0
	}
	for i, info := range plan.Layers {
		choice[i] = make([]int, budget+1)
		next := make([]float64, budget+1)
		for b := 0; b <= budget; b++ {
			next[b] = inf
			kMax := MaxDup(info) - 1
			if info.Cost > 0 && b/info.Cost < kMax {
				kMax = b / info.Cost
			}
			for k := 0; k <= kMax; k++ {
				prev := dp[b-k*info.Cost]
				if prev == inf {
					continue
				}
				obj := prev + float64(info.Latency)/float64(1+k)
				if obj < next[b] {
					next[b] = obj
					choice[i][b] = k
				}
			}
		}
		dp = next
	}
	// The objective is non-increasing in budget, so the full budget is
	// always an optimal state.
	bestB := budget
	for b := 0; b <= budget; b++ {
		if dp[b] < dp[bestB] {
			bestB = b
		}
	}
	d := make([]int, n)
	b := bestB
	for i := n - 1; i >= 0; i-- {
		k := choice[i][b]
		d[i] = 1 + k
		b -= k * plan.Layers[i].Cost
	}
	return finish(plan, d)
}

// solveMinMax greedily duplicates the current bottleneck layer — the one
// with the largest per-replica latency t_i/d_i — until the budget can no
// longer reduce the maximum. Remaining budget is spent with the
// marginal-gain heuristic on the sum objective. Under cross-layer
// scheduling the bottleneck layer paces the whole pipeline, so this
// yields lower makespans than the paper's sum objective (ablation).
func solveMinMax(plan *Plan, F int) Solution {
	n := len(plan.Layers)
	d := make([]int, n)
	for i := range d {
		d[i] = 1
	}
	budget := F - plan.MinPEs
	for {
		// Find the most expensive-per-replica layer that can still be
		// improved within budget.
		best := -1
		var bestLat float64
		for i, info := range plan.Layers {
			lat := float64(info.Latency) / float64(d[i])
			if lat <= bestLat {
				continue
			}
			if d[i] < MaxDup(info) && info.Cost <= budget {
				bestLat = lat
				best = i
			}
		}
		if best < 0 {
			break
		}
		// Only duplicate if this layer actually is the global bottleneck
		// or duplicating reduces the maximum; otherwise fall through to
		// the sum heuristic with what remains.
		globalMax := 0.0
		for i, info := range plan.Layers {
			if lat := float64(info.Latency) / float64(d[i]); lat > globalMax {
				globalMax = lat
			}
		}
		if float64(plan.Layers[best].Latency)/float64(d[best]) < globalMax {
			break
		}
		d[best]++
		budget -= plan.Layers[best].Cost
	}
	// Spend any remainder on the sum objective.
	for {
		best := -1
		var bestEff float64
		for i, info := range plan.Layers {
			if d[i] >= MaxDup(info) || info.Cost > budget {
				continue
			}
			gain := float64(info.Latency)/float64(d[i]) - float64(info.Latency)/float64(d[i]+1)
			if gain <= 0 {
				continue
			}
			if eff := gain / float64(info.Cost); eff > bestEff {
				bestEff = eff
				best = i
			}
		}
		if best < 0 {
			break
		}
		d[best]++
		budget -= plan.Layers[best].Cost
	}
	return finish(plan, d)
}

// solveUniform spreads the extra-PE budget evenly: it repeatedly grants
// one duplicate to the layer with the lowest current duplication factor
// (lowest index on ties) that still fits the budget and its MaxDup.
// Deliberately blind to layer latencies — the ablation baseline that
// isolates how much the optimizing solvers gain over "just spread it".
func solveUniform(plan *Plan, F int) Solution {
	n := len(plan.Layers)
	d := make([]int, n)
	for i := range d {
		d[i] = 1
	}
	budget := F - plan.MinPEs
	for {
		best := -1
		for i, info := range plan.Layers {
			if d[i] >= MaxDup(info) || info.Cost > budget {
				continue
			}
			if best < 0 || d[i] < d[best] {
				best = i
			}
		}
		if best < 0 {
			break
		}
		d[best]++
		budget -= plan.Layers[best].Cost
	}
	return finish(plan, d)
}

// solveBrute exhaustively enumerates duplication vectors. Exponential;
// for solver cross-validation on small instances only.
func solveBrute(plan *Plan, F int) (Solution, error) {
	n := len(plan.Layers)
	if n > 8 {
		return Solution{}, fmt.Errorf("mapping: brute solver limited to 8 layers, got %d", n)
	}
	d := make([]int, n)
	best := make([]int, n)
	bestObj := math.MaxFloat64
	var rec func(i, used int)
	rec = func(i, used int) {
		if used > F {
			return
		}
		if i == n {
			obj := 0.0
			for j, info := range plan.Layers {
				obj += float64(info.Latency) / float64(d[j])
			}
			if obj < bestObj {
				bestObj = obj
				copy(best, d)
			}
			return
		}
		info := plan.Layers[i]
		for k := 1; k <= MaxDup(info); k++ {
			if used+info.Cost*k > F {
				break
			}
			d[i] = k
			rec(i+1, used+info.Cost*k)
		}
		d[i] = 0
	}
	rec(0, 0)
	if bestObj == math.MaxFloat64 {
		return Solution{}, fmt.Errorf("mapping: no feasible duplication within %d PEs", F)
	}
	return finish(plan, best), nil
}
