package mapping

import (
	"fmt"
	"testing"

	"clsacim/internal/models"
)

// syntheticScore builds a deterministic ScoreFunc with a known optimum:
// the score is the bottleneck per-replica latency max(t_i/d_i) plus a
// small tie-breaking term, so the search has structure to exploit that
// the sum-objective solvers do not optimize.
func syntheticScore(plan *Plan) ScoreFunc {
	return func(d []int) (int64, error) {
		var worst, sum int64
		for i, info := range plan.Layers {
			lat := int64(info.Latency) / int64(d[i])
			if lat > worst {
				worst = lat
			}
			sum += lat
		}
		return worst*1000 + sum/int64(len(d)), nil
	}
}

func yoloPlan(t *testing.T) *Plan {
	t.Helper()
	g := canonicalModel(t, models.TinyYOLOv4, models.Options{})
	plan, err := Analyze(g, pe256)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestSolveSearchFeasible(t *testing.T) {
	plan := yoloPlan(t)
	F := plan.MinPEs + 32
	sol, err := SolveSearch(plan, F, syntheticScore(plan), ScoredOptions{Seed: 1, Budget: 64})
	if err != nil {
		t.Fatal(err)
	}
	if sol.PEsNeeded > F {
		t.Errorf("PEsNeeded = %d > F = %d", sol.PEsNeeded, F)
	}
	for i, d := range sol.D {
		if d < 1 || d > MaxDup(plan.Layers[i]) {
			t.Errorf("d[%d] = %d outside [1, %d]", i, d, MaxDup(plan.Layers[i]))
		}
	}
	if _, err := SolveSearch(plan, plan.MinPEs-1, syntheticScore(plan), ScoredOptions{}); err == nil {
		t.Error("under-provisioned architecture accepted")
	}
	if _, err := SolveSearch(plan, F, nil, ScoredOptions{}); err == nil {
		t.Error("nil score function accepted")
	}
}

func TestSolveSearchBudgetRespected(t *testing.T) {
	plan := yoloPlan(t)
	F := plan.MinPEs + 32
	for _, budget := range []int{1, 5, 48} {
		calls := 0
		inner := syntheticScore(plan)
		score := func(d []int) (int64, error) {
			calls++
			return inner(d)
		}
		if _, err := SolveSearch(plan, F, score, ScoredOptions{Seed: 7, Budget: budget}); err != nil {
			t.Fatal(err)
		}
		if calls > budget {
			t.Errorf("budget %d: score called %d times", budget, calls)
		}
	}
}

func TestSolveSearchDeterministic(t *testing.T) {
	plan := yoloPlan(t)
	F := plan.MinPEs + 32
	var prev []int
	for run := 0; run < 3; run++ {
		sol, err := SolveSearch(plan, F, syntheticScore(plan), ScoredOptions{Seed: 42, Budget: 96})
		if err != nil {
			t.Fatal(err)
		}
		if prev == nil {
			prev = sol.D
			continue
		}
		if fmt.Sprint(sol.D) != fmt.Sprint(prev) {
			t.Fatalf("run %d: D = %v, previous run %v", run, sol.D, prev)
		}
	}
	// A different seed is allowed to (and here does) walk differently;
	// both walks must still return feasible vectors. No equality check —
	// distinct seeds may legitimately converge.
	if _, err := SolveSearch(plan, F, syntheticScore(plan), ScoredOptions{Seed: 43, Budget: 96}); err != nil {
		t.Fatal(err)
	}
}

// TestSolveSearchNeverWorseThanDP: the dp seed is evaluated first and
// the best-ever vector is returned, so for any deterministic score the
// result is at least as good as dp's.
func TestSolveSearchNeverWorseThanDP(t *testing.T) {
	plan := yoloPlan(t)
	score := syntheticScore(plan)
	for _, extra := range []int{0, 4, 16, 32, 64} {
		F := plan.MinPEs + extra
		dpScore, err := score(solveDP(plan, F).D)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := SolveSearch(plan, F, score, ScoredOptions{Seed: 9, Budget: 48})
		if err != nil {
			t.Fatal(err)
		}
		got, err := score(sol.D)
		if err != nil {
			t.Fatal(err)
		}
		if got > dpScore {
			t.Errorf("x=%d: search score %d worse than dp %d", extra, got, dpScore)
		}
	}
}

func TestSolveSearchMemoizesRevisits(t *testing.T) {
	plan := yoloPlan(t)
	F := plan.MinPEs + 8
	seen := make(map[string]int)
	inner := syntheticScore(plan)
	score := func(d []int) (int64, error) {
		seen[vecKey(d)]++
		return inner(d)
	}
	if _, err := SolveSearch(plan, F, score, ScoredOptions{Seed: 3, Budget: 200}); err != nil {
		t.Fatal(err)
	}
	for k, n := range seen {
		if n > 1 {
			t.Errorf("vector %q scored %d times", k, n)
		}
	}
}

func TestSolveUniform(t *testing.T) {
	plan := yoloPlan(t)
	F := plan.MinPEs + 32
	sol, err := Solve(plan, F, SolverUniform)
	if err != nil {
		t.Fatal(err)
	}
	if sol.PEsNeeded > F {
		t.Errorf("PEsNeeded = %d > F = %d", sol.PEsNeeded, F)
	}
	// Evenness: no layer may sit two duplicates above another layer that
	// could still cheaply be raised (cost 1, below MaxDup).
	min := sol.D[0]
	for _, d := range sol.D {
		if d < min {
			min = d
		}
	}
	for i, d := range sol.D {
		if d > min+1 && MaxDup(plan.Layers[i]) > d {
			// Only possible when every min-layer was capped or too
			// expensive; verify that.
			for j, dj := range sol.D {
				if dj == min && MaxDup(plan.Layers[j]) > dj && plan.Layers[j].Cost <= plan.Layers[i].Cost {
					t.Errorf("uneven spread: d[%d]=%d while d[%d]=%d could grow", i, d, j, dj)
				}
			}
		}
	}
}

func TestScoredRegistry(t *testing.T) {
	if !IsScored("search") {
		t.Error("search not registered as scored solver")
	}
	if IsScored("dp") {
		t.Error("dp reported as scored")
	}
	if _, ok := LookupScored("search"); !ok {
		t.Error("LookupScored(search) failed")
	}
	if _, err := Lookup("search"); err == nil {
		t.Error("plain Lookup resolved a scored solver")
	}
	// Cross-registry name collisions rejected both ways.
	if err := Register("search", func(plan *Plan, F int) (Solution, error) { return Solution{}, nil }); err == nil {
		t.Error("plain registration over scored name accepted")
	}
	if err := RegisterScored("dp", SolveSearch); err == nil {
		t.Error("scored registration over plain name accepted")
	}
	found := false
	for _, n := range Names() {
		if n == "search" {
			found = true
		}
	}
	if !found {
		t.Errorf("Names() = %v missing search", Names())
	}
}
