package schedule

import (
	"errors"
	"testing"
)

func TestParseMode(t *testing.T) {
	for in, want := range map[string]Mode{
		"xinf":           CrossLayer,
		"XINF":           CrossLayer,
		"crosslayer":     CrossLayer,
		"cross-layer":    CrossLayer,
		"lbl":            LayerByLayer,
		"layer-by-layer": LayerByLayer,
		"layerbylayer":   LayerByLayer,
		" lbl ":          LayerByLayer,
	} {
		got, err := ParseMode(in)
		if err != nil {
			t.Errorf("ParseMode(%q): %v", in, err)
		} else if got != want {
			t.Errorf("ParseMode(%q) = %v, want %v", in, got, want)
		}
	}
	for _, bad := range []string{"", "warp", "x-inf"} {
		if _, err := ParseMode(bad); !errors.Is(err, ErrUnknownMode) {
			t.Errorf("ParseMode(%q) = %v, want ErrUnknownMode", bad, err)
		}
	}
}

func TestParseModeRoundTripsString(t *testing.T) {
	for _, m := range []Mode{LayerByLayer, CrossLayer} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%v.String()) = %v, %v", m, got, err)
		}
	}
}
