package schedule

import (
	"errors"
	"testing"
)

func TestParseMode(t *testing.T) {
	for in, want := range map[string]Policy{
		"xinf":           CrossLayer,
		"XINF":           CrossLayer,
		"crosslayer":     CrossLayer,
		"cross-layer":    CrossLayer,
		"lbl":            LayerByLayer,
		"layer-by-layer": LayerByLayer,
		"layerbylayer":   LayerByLayer,
		" lbl ":          LayerByLayer,
		"x1":             Windowed(1),
		"x2":             Windowed(2),
		"X4":             Windowed(4),
		" x16 ":          Windowed(16),
		"x1024":          Windowed(1024),
	} {
		got, err := ParseMode(in)
		if err != nil {
			t.Errorf("ParseMode(%q): %v", in, err)
		} else if got != want {
			t.Errorf("ParseMode(%q) = %v, want %v", in, got, want)
		}
	}
	for _, bad := range []string{"", "warp", "x-inf", "x", "x0", "x-3", "x2.5", "xK", "x 4"} {
		if _, err := ParseMode(bad); !errors.Is(err, ErrUnknownMode) {
			t.Errorf("ParseMode(%q) = %v, want ErrUnknownMode", bad, err)
		}
	}
}

func TestParseModeRoundTripsName(t *testing.T) {
	for _, p := range []Policy{LayerByLayer, CrossLayer, Windowed(1), Windowed(2), Windowed(7)} {
		got, err := ParseMode(p.Name())
		if err != nil || got != p {
			t.Errorf("ParseMode(%v.Name()) = %v, %v", p, got, err)
		}
	}
}
