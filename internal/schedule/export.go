package schedule

import (
	"encoding/json"
	"io"

	"clsacim/internal/deps"
)

// Export is the JSON-serializable form of a schedule, for consumption by
// external visualization or analysis tooling.
type Export struct {
	Mode     string        `json:"mode"`
	Makespan int64         `json:"makespan_cycles"`
	Layers   []ExportLayer `json:"layers"`
}

// ExportLayer is one base layer's timeline.
type ExportLayer struct {
	Name     string       `json:"name"`
	Replicas int          `json:"replicas"`
	PEs      int          `json:"pes_per_replica"`
	Active   int64        `json:"active_cycles"`
	Items    []ExportItem `json:"items"`
}

// ExportItem is one executed set.
type ExportItem struct {
	Set     int   `json:"set"`
	Replica int   `json:"replica"`
	Start   int64 `json:"start"`
	End     int64 `json:"end"`
	H0      int   `json:"h0"`
	H1      int   `json:"h1"`
	W0      int   `json:"w0"`
	W1      int   `json:"w1"`
}

// BuildExport assembles the serializable view of t over its dependency
// graph. Mode carries the producing policy's canonical name ("lbl",
// "x4", "xinf").
func (t *Timeline) BuildExport(dg *deps.Graph) Export {
	mode := ""
	if t.Policy != nil {
		mode = t.Policy.Name()
	}
	out := Export{Mode: mode, Makespan: t.Makespan}
	for li, ls := range dg.Plan.Layers {
		el := ExportLayer{
			Name:     ls.Group.Node.Name,
			Replicas: ls.Group.Dup,
			PEs:      ls.Group.PEsPerReplica(),
			Active:   t.LayerActive[li],
		}
		for si, it := range t.ItemsOf(li) {
			b := ls.Sets[si].Box
			el.Items = append(el.Items, ExportItem{
				Set: si, Replica: it.Replica, Start: it.Start, End: it.End,
				H0: b.H0, H1: b.H1, W0: b.W0, W1: b.W1,
			})
		}
		out.Layers = append(out.Layers, el)
	}
	return out
}

// WriteJSON encodes the timeline as indented JSON.
func (t *Timeline) WriteJSON(w io.Writer, dg *deps.Graph) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.BuildExport(dg))
}
