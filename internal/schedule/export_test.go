package schedule

import (
	"bytes"
	"encoding/json"
	"testing"

	"clsacim/internal/models"
)

func TestExportJSONRoundTrip(t *testing.T) {
	_, _, dg := compileDeps(t, models.TinyYOLOv4, 416, 16, 26)
	s, err := Schedule(dg, CrossLayer, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf, dg); err != nil {
		t.Fatal(err)
	}
	var back Export
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if back.Mode != "xinf" || back.Makespan != s.Makespan {
		t.Errorf("header = %s/%d", back.Mode, back.Makespan)
	}
	if len(back.Layers) != len(dg.Plan.Layers) {
		t.Fatalf("layers = %d, want %d", len(back.Layers), len(dg.Plan.Layers))
	}
	for li, el := range back.Layers {
		ls := dg.Plan.Layers[li]
		if el.Name != ls.Group.Node.Name || el.Replicas != ls.Group.Dup {
			t.Errorf("layer %d header mismatch: %+v", li, el)
		}
		if len(el.Items) != len(ls.Sets) {
			t.Fatalf("layer %d items = %d, want %d", li, len(el.Items), len(ls.Sets))
		}
		for si, it := range el.Items {
			want := *s.At(li, si)
			if it.Start != want.Start || it.End != want.End || it.Replica != want.Replica {
				t.Fatalf("layer %d set %d timing mismatch", li, si)
			}
			box := ls.Sets[si].Box
			if it.H0 != box.H0 || it.H1 != box.H1 || it.W0 != box.W0 || it.W1 != box.W1 {
				t.Fatalf("layer %d set %d box mismatch", li, si)
			}
		}
	}
}

func TestLayerByLayerVirtualSchedule(t *testing.T) {
	_, _, dg := compileDeps(t, models.TinyConvNet, 32, 0, 4)
	reload := make([]int64, len(dg.Plan.Layers))
	reload[1] = 100
	reload[2] = 50
	s, err := LayerByLayerVirtual(dg, reload)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(dg, Options{}); err != nil {
		t.Fatal(err)
	}
	plain, err := Schedule(dg, LayerByLayer, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != plain.Makespan+150 {
		t.Errorf("virtual makespan %d != plain %d + 150", s.Makespan, plain.Makespan)
	}
	// The gap sits exactly before layer 1.
	if s.StartOf(1) != plain.StartOf(1)+100 {
		t.Errorf("layer 1 starts at %d, want %d", s.StartOf(1), plain.StartOf(1)+100)
	}
	if _, err := LayerByLayerVirtual(dg, []int64{1}); err == nil {
		t.Error("short reload vector accepted")
	}
}
