package schedule

import (
	"testing"

	"clsacim/internal/deps"
	"clsacim/internal/frontend"
	"clsacim/internal/im2col"
	"clsacim/internal/mapping"
	"clsacim/internal/models"
	"clsacim/internal/nn"
	"clsacim/internal/sets"
)

// compileDeps lowers a model to its dependency graph.
func compileDeps(t *testing.T, id models.ID, inputSize, extra, targetSets int) (*nn.Graph, *mapping.Mapping, *deps.Graph) {
	t.Helper()
	g := models.MustBuild(id, models.Options{InputSize: inputSize})
	if _, err := frontend.Canonicalize(g, frontend.Options{}); err != nil {
		t.Fatal(err)
	}
	plan, err := mapping.Analyze(g, im2col.PEDims{Rows: 256, Cols: 256})
	if err != nil {
		t.Fatal(err)
	}
	solver := mapping.SolverNone
	if extra > 0 {
		solver = mapping.SolverDP
	}
	sol, err := mapping.Solve(plan, plan.MinPEs+extra, solver)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.Apply(g, plan, sol, plan.MinPEs+extra)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sets.Determine(g, m, sets.Options{TargetSets: targetSets})
	if err != nil {
		t.Fatal(err)
	}
	dg, err := deps.Build(g, sp)
	if err != nil {
		t.Fatal(err)
	}
	return g, m, dg
}

// TestLayerByLayerMakespan: without duplication, lbl makespan is exactly
// the sum of all layers' OFM pixel counts.
func TestLayerByLayerMakespan(t *testing.T) {
	_, _, dg := compileDeps(t, models.TinyYOLOv4, 416, 0, 26)
	s, err := Schedule(dg, LayerByLayer, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, ls := range dg.Plan.Layers {
		want += int64(ls.Group.Node.OutShape.Pixels())
	}
	if s.Makespan != want {
		t.Errorf("lbl makespan = %d, want sum of t_i = %d", s.Makespan, want)
	}
	if err := s.Validate(dg, Options{}); err != nil {
		t.Error(err)
	}
}

// TestLayerByLayerWithDuplication: duplicates shorten each layer to
// roughly t_i / d_i; total equals the rounded sum.
func TestLayerByLayerWithDuplication(t *testing.T) {
	_, m, dg := compileDeps(t, models.TinyYOLOv4, 416, 16, 26)
	s, err := Schedule(dg, LayerByLayer, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(dg, Options{}); err != nil {
		t.Fatal(err)
	}
	// Each layer's span must not exceed ceil(t_i/d_i) by more than one
	// set's worth of rounding.
	for li, ls := range dg.Plan.Layers {
		span := s.EndOf(li) - s.StartOf(li)
		d := int64(m.Groups[li].Dup)
		ti := int64(ls.Group.Node.OutShape.Pixels())
		ideal := (ti + d - 1) / d
		maxSet := int64(0)
		for _, set := range ls.Sets {
			if set.Cycles > maxSet {
				maxSet = set.Cycles
			}
		}
		if span > ideal+maxSet {
			t.Errorf("layer %d span %d exceeds t/d %d + one set %d", li, span, ideal, maxSet)
		}
	}
}

// TestCrossLayerNeverSlower: xinf makespan is at most lbl makespan, on
// every model and duplication setting.
func TestCrossLayerNeverSlower(t *testing.T) {
	cases := []struct {
		id    models.ID
		size  int
		extra int
	}{
		{models.TinyYOLOv4, 416, 0},
		{models.TinyYOLOv4, 416, 32},
		{models.TinyYOLOv3, 416, 16},
		{models.TinyBranchNet, 16, 0},
		{models.ResNet50, 64, 8},
		{models.TinyMLP, 8, 0},
	}
	for _, c := range cases {
		_, _, dg := compileDeps(t, c.id, c.size, c.extra, 26)
		lbl, err := Schedule(dg, LayerByLayer, Options{})
		if err != nil {
			t.Fatal(err)
		}
		xinf, err := Schedule(dg, CrossLayer, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if xinf.Makespan > lbl.Makespan {
			t.Errorf("%s x=%d: xinf %d > lbl %d", c.id, c.extra, xinf.Makespan, lbl.Makespan)
		}
		if err := xinf.Validate(dg, Options{}); err != nil {
			t.Errorf("%s: %v", c.id, err)
		}
		if err := lbl.Validate(dg, Options{}); err != nil {
			t.Errorf("%s: %v", c.id, err)
		}
	}
}

// TestCrossLayerActiveInvariant: total active cycles equal sum t_i in
// both modes (work conservation — the basis of paper Eq. 3).
func TestCrossLayerActiveInvariant(t *testing.T) {
	_, _, dg := compileDeps(t, models.TinyYOLOv4, 416, 32, 104)
	var want int64
	for _, ls := range dg.Plan.Layers {
		want += int64(ls.Group.Node.OutShape.Pixels())
	}
	for _, mode := range []Policy{LayerByLayer, CrossLayer} {
		s, err := Schedule(dg, mode, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var got int64
		for _, a := range s.LayerActive {
			got += a
		}
		if got != want {
			t.Errorf("%v: total active %d != total work %d", mode, got, want)
		}
		// Replica activity must sum to layer activity.
		for li := range s.LayerActive {
			var rep int64
			for _, a := range s.ReplicaActive[li] {
				rep += a
			}
			if rep != s.LayerActive[li] {
				t.Errorf("%v layer %d: replica sum %d != layer %d", mode, li, rep, s.LayerActive[li])
			}
		}
	}
}

// TestEdgeCostMonotone: adding dependency-edge cost cannot shorten the
// cross-layer makespan.
func TestEdgeCostMonotone(t *testing.T) {
	_, _, dg := compileDeps(t, models.TinyYOLOv4, 128, 8, 26)
	prev := int64(0)
	for _, cost := range []int64{0, 1, 5, 25} {
		c := cost
		opt := Options{}
		if c > 0 {
			opt.EdgeCost = func(deps.SetRef, int) int64 { return c }
		}
		s, err := Schedule(dg, CrossLayer, opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(dg, opt); err != nil {
			t.Fatal(err)
		}
		if s.Makespan < prev {
			t.Errorf("cost %d: makespan %d < previous %d", c, s.Makespan, prev)
		}
		prev = s.Makespan
	}
}

// TestValidateDetectsCorruption: a corrupted schedule must fail
// validation in each specific way.
func TestValidateDetectsCorruption(t *testing.T) {
	_, _, dg := compileDeps(t, models.TinyBranchNet, 16, 0, 4)
	fresh := func() *Timeline {
		s, err := Schedule(dg, CrossLayer, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	s := fresh()
	// Find a set with at least one dependency and move it before the dep.
	found := false
	for li := range dg.Plan.Layers {
		for si := range dg.Plan.Layers[li].Sets {
			if len(dg.DepsOf(li, si)) == 0 {
				continue
			}
			it := s.At(li, si)
			d := it.End - it.Start
			it.Start = 0
			it.End = d
			found = true
			break
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("no dependent set found")
	}
	if err := s.Validate(dg, Options{}); err == nil {
		t.Error("dependency violation not detected")
	}

	s = fresh()
	s.At(0, 0).End += 5 // duration mismatch
	if err := s.Validate(dg, Options{}); err == nil {
		t.Error("duration corruption not detected")
	}

	s = fresh()
	s.LayerActive[0] += 3
	if err := s.Validate(dg, Options{}); err == nil {
		t.Error("active-cycle corruption not detected")
	}

	// Layer-by-layer exclusivity.
	l := func() *Timeline {
		s, err := Schedule(dg, LayerByLayer, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}()
	// Pull layer 1 on top of layer 0 and renumber its replica chain
	// consistently so only the exclusivity check fires.
	shift := l.At(1, 0).Start
	for si := range l.ItemsOf(1) {
		l.At(1, si).Start -= shift
		l.At(1, si).End -= shift
	}
	if err := l.Validate(dg, Options{}); err == nil {
		t.Error("layer-by-layer overlap not detected")
	}
}

// TestRoundRobinAssignment: set k runs on replica k mod d.
func TestRoundRobinAssignment(t *testing.T) {
	_, m, dg := compileDeps(t, models.TinyYOLOv4, 416, 32, 52)
	s, err := Schedule(dg, CrossLayer, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for li := range dg.Plan.Layers {
		d := m.Groups[li].Dup
		for si, it := range s.ItemsOf(li) {
			if it.Replica != si%d {
				t.Fatalf("layer %d set %d on replica %d, want %d", li, si, it.Replica, si%d)
			}
		}
	}
}

// TestDeepPipelineChain: at fine set granularity a sequential conv chain
// pipelines, with cross-layer makespan well below the layer sum.
func TestDeepPipelineChain(t *testing.T) {
	_, _, dg := compileDeps(t, models.TinyConvNet, 32, 0, sets.FineGranularity)
	lbl, err := Schedule(dg, LayerByLayer, Options{})
	if err != nil {
		t.Fatal(err)
	}
	xinf, err := Schedule(dg, CrossLayer, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Without duplication the first conv (1024 pixels at 32x32) paces
	// the pipeline; cross-layer makespan must approach that bound with
	// only a small drain tail, far below the sequential sum.
	var bottleneck int64
	for _, ls := range dg.Plan.Layers {
		if ti := int64(ls.Group.Node.OutShape.Pixels()); ti > bottleneck {
			bottleneck = ti
		}
	}
	if xinf.Makespan >= lbl.Makespan {
		t.Fatalf("no pipelining: xinf %d vs lbl %d", xinf.Makespan, lbl.Makespan)
	}
	if xinf.Makespan > bottleneck+bottleneck/8 {
		t.Errorf("fine-grained chain barely pipelined: xinf %d vs bottleneck %d (lbl %d)",
			xinf.Makespan, bottleneck, lbl.Makespan)
	}
}

func TestPolicyNames(t *testing.T) {
	if CrossLayer.Name() != "xinf" || LayerByLayer.Name() != "lbl" || Windowed(4).Name() != "x4" {
		t.Error("policy names wrong")
	}
	if CrossLayer.Window() != Unbounded || LayerByLayer.Window() != 1 || Windowed(3).Window() != 3 {
		t.Error("policy windows wrong")
	}
	if Windowed(0).Window() != 1 {
		t.Error("non-positive window not clamped")
	}
	if _, err := Schedule(nil, nil, Options{}); err == nil {
		t.Error("nil policy accepted")
	}
}

// TestWindowedMonotoneAndBracketed is the xK property test: makespans
// are monotone non-increasing in K and bracketed by the two extremes —
// x1 equals lbl exactly, and a window at least the layer count equals
// xinf exactly.
func TestWindowedMonotoneAndBracketed(t *testing.T) {
	cases := []struct {
		id    models.ID
		size  int
		extra int
	}{
		{models.TinyYOLOv4, 416, 0},
		{models.TinyYOLOv4, 416, 32},
		{models.TinyYOLOv3, 416, 16},
		{models.TinyBranchNet, 16, 0},
		{models.ResNet50, 64, 8},
	}
	for _, c := range cases {
		_, _, dg := compileDeps(t, c.id, c.size, c.extra, 26)
		nl := len(dg.Plan.Layers)
		lbl, err := Schedule(dg, LayerByLayer, Options{})
		if err != nil {
			t.Fatal(err)
		}
		xinf, err := Schedule(dg, CrossLayer, Options{})
		if err != nil {
			t.Fatal(err)
		}
		prev := lbl.Makespan
		for k := 1; k <= nl+1; k++ {
			s, err := Schedule(dg, Windowed(k), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Validate(dg, Options{}); err != nil {
				t.Fatalf("%s x%d: %v", c.id, k, err)
			}
			if s.Makespan > prev {
				t.Errorf("%s: x%d makespan %d > x%d makespan %d (not monotone)",
					c.id, k, s.Makespan, k-1, prev)
			}
			if s.Makespan > lbl.Makespan || s.Makespan < xinf.Makespan {
				t.Errorf("%s: x%d makespan %d outside [xinf %d, lbl %d]",
					c.id, k, s.Makespan, xinf.Makespan, lbl.Makespan)
			}
			if k == 1 && !s.Equal(lbl) {
				t.Errorf("%s: x1 timeline differs from lbl", c.id)
			}
			if k >= nl && !s.Equal(xinf) {
				t.Errorf("%s: x%d (>= %d layers) timeline differs from xinf", c.id, k, nl)
			}
			prev = s.Makespan
		}
	}
}

// TestWindowValidateDetectsViolation: pulling a layer inside another
// layer's admission window must fail validation.
func TestWindowValidateDetectsViolation(t *testing.T) {
	_, _, dg := compileDeps(t, models.TinyConvNet, 32, 0, 4)
	s, err := Schedule(dg, Windowed(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(dg, Options{}); err != nil {
		t.Fatal(err)
	}
	// Force the last layer to start at 0: with window 2 it must wait for
	// every layer but the previous one.
	nl := s.NumLayers()
	last := s.ItemsOf(nl - 1)
	d := last[0].End - last[0].Start
	s.At(nl-1, 0).Start = 0
	s.At(nl-1, 0).End = d
	if err := s.Validate(dg, Options{}); err == nil {
		t.Error("window violation not detected")
	}
}
