package schedule

import (
	"fmt"

	"clsacim/internal/deps"
)

// PathStep is one element of a critical path: the executed item plus
// the reason it could not start earlier.
type PathStep struct {
	Item Item
	// Cause explains what bound the step's start time: "dep" (a data
	// dependency), "resource" (the previous set on the same replica),
	// "window" (the policy's admission gate on a preceding layer's
	// completion), or "start" (ready at time zero).
	Cause string
}

// CriticalPath walks backward from the set that finishes at the
// makespan, at each step moving to whichever predecessor determined the
// current set's start time — the data dependency whose completion (plus
// edge cost) equals the start, the previous set on the same replica, or
// the admission-window gate. The returned path is in execution order
// (earliest first) and explains which layer chain limits the inference
// latency.
func (t *Timeline) CriticalPath(dg *deps.Graph, opt Options) ([]PathStep, error) {
	if t.Makespan == 0 {
		return nil, fmt.Errorf("schedule: empty timeline")
	}
	csr := dg.CSR
	// Locate the finishing set.
	var cur Item
	found := false
	for _, it := range t.Items {
		if it.End == t.Makespan {
			cur = it
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("schedule: no item ends at makespan %d", t.Makespan)
	}

	k := Unbounded
	if t.Policy != nil {
		k = t.Policy.Window()
	}
	var rev []PathStep
	for {
		step := PathStep{Item: cur, Cause: "start"}
		// Previous set on the same replica, read off the timeline's own
		// replica assignments so any Policy dispatch rule works
		// (cur.Set - d under the built-in raster round-robin).
		prevSet := -1
		for sj := cur.Set - 1; sj >= 0; sj-- {
			if t.At(cur.Layer, sj).Replica == cur.Replica {
				prevSet = sj
				break
			}
		}
		var next Item
		if prevSet >= 0 {
			prev := *t.At(cur.Layer, prevSet)
			if prev.End == cur.Start {
				step.Cause = "resource"
				next = prev
			}
		}
		if step.Cause == "start" {
			id := csr.ID(cur.Layer, cur.Set)
			for e := csr.PredOff[id]; e < csr.PredOff[id+1]; e++ {
				pid := csr.Pred[e]
				end := t.Items[pid].End
				if opt.EdgeCost != nil {
					pl, ps := csr.Set(pid)
					end += opt.EdgeCost(deps.SetRef{Layer: pl, Set: ps, Vol: int(csr.PredVol[e])}, cur.Layer)
				}
				if end == cur.Start {
					step.Cause = "dep"
					next = t.Items[pid]
					break
				}
			}
		}
		if step.Cause == "start" && cur.Layer >= k {
			// The admission window: some layer up to cur.Layer-k finished
			// exactly at cur.Start.
			for lj := cur.Layer - k; lj >= 0 && step.Cause == "start"; lj-- {
				for _, it := range t.ItemsOf(lj) {
					if it.End == cur.Start {
						step.Cause = "window"
						next = it
						break
					}
				}
			}
		}
		rev = append(rev, step)
		if step.Cause == "start" {
			break
		}
		cur = next
		if len(rev) > 1<<22 {
			return nil, fmt.Errorf("schedule: critical path does not terminate")
		}
	}
	// Reverse into execution order.
	out := make([]PathStep, len(rev))
	for i, st := range rev {
		out[len(rev)-1-i] = st
	}
	return out, nil
}

// PathLayerSummary aggregates a critical path per layer: how many cycles
// of the makespan each layer contributes (its executing spans on the
// path).
type PathLayerSummary struct {
	Layer  int
	Name   string
	Cycles int64
	Steps  int
}

// SummarizeCriticalPath groups consecutive path steps by layer and sums
// their durations.
func SummarizeCriticalPath(dg *deps.Graph, path []PathStep) []PathLayerSummary {
	var out []PathLayerSummary
	for _, st := range path {
		li := st.Item.Layer
		dur := st.Item.End - st.Item.Start
		if n := len(out); n > 0 && out[n-1].Layer == li {
			out[n-1].Cycles += dur
			out[n-1].Steps++
			continue
		}
		out = append(out, PathLayerSummary{
			Layer:  li,
			Name:   dg.Plan.Layers[li].Group.Node.Name,
			Cycles: dur,
			Steps:  1,
		})
	}
	return out
}
