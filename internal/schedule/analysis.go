package schedule

import (
	"fmt"

	"clsacim/internal/deps"
)

// PathStep is one element of a critical path: the executed item plus
// the reason it could not start earlier.
type PathStep struct {
	Item Item
	// Cause explains what bound the step's start time: "dep" (a data
	// dependency), "resource" (the previous set on the same replica),
	// or "start" (ready at time zero).
	Cause string
}

// CriticalPath walks backward from the set that finishes at the
// makespan, at each step moving to whichever predecessor determined the
// current set's start time — the data dependency whose completion (plus
// edge cost) equals the start, or the previous set on the same replica.
// The returned path is in execution order (earliest first) and explains
// which layer chain limits the inference latency.
func (s *Schedule) CriticalPath(dg *deps.Graph, opt Options) ([]PathStep, error) {
	if s.Makespan == 0 {
		return nil, fmt.Errorf("schedule: empty schedule")
	}
	// Locate the finishing set.
	var cur Item
	found := false
	for li := range s.Items {
		for _, it := range s.Items[li] {
			if it.End == s.Makespan {
				cur = it
				found = true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("schedule: no item ends at makespan %d", s.Makespan)
	}

	var rev []PathStep
	for {
		step := PathStep{Item: cur, Cause: "start"}
		// Previous set on the same replica.
		d := dg.Plan.Layers[cur.Layer].Group.Dup
		prevSet := cur.Set - d
		var next Item
		if prevSet >= 0 {
			prev := s.Items[cur.Layer][prevSet]
			if prev.End == cur.Start {
				step.Cause = "resource"
				next = prev
			}
		}
		if step.Cause == "start" {
			for _, dep := range dg.Deps[cur.Layer][cur.Set] {
				end := s.Items[dep.Layer][dep.Set].End
				if opt.EdgeCost != nil {
					end += opt.EdgeCost(dep, cur.Layer)
				}
				if end == cur.Start {
					step.Cause = "dep"
					next = s.Items[dep.Layer][dep.Set]
					break
				}
			}
		}
		rev = append(rev, step)
		if step.Cause == "start" {
			break
		}
		cur = next
		if len(rev) > 1<<22 {
			return nil, fmt.Errorf("schedule: critical path does not terminate")
		}
	}
	// Reverse into execution order.
	out := make([]PathStep, len(rev))
	for i, st := range rev {
		out[len(rev)-1-i] = st
	}
	return out, nil
}

// PathLayerSummary aggregates a critical path per layer: how many cycles
// of the makespan each layer contributes (its executing spans on the
// path).
type PathLayerSummary struct {
	Layer  int
	Name   string
	Cycles int64
	Steps  int
}

// SummarizeCriticalPath groups consecutive path steps by layer and sums
// their durations.
func SummarizeCriticalPath(dg *deps.Graph, path []PathStep) []PathLayerSummary {
	var out []PathLayerSummary
	for _, st := range path {
		li := st.Item.Layer
		dur := st.Item.End - st.Item.Start
		if n := len(out); n > 0 && out[n-1].Layer == li {
			out[n-1].Cycles += dur
			out[n-1].Steps++
			continue
		}
		out = append(out, PathLayerSummary{
			Layer:  li,
			Name:   dg.Plan.Layers[li].Group.Node.Name,
			Cycles: dur,
			Steps:  1,
		})
	}
	return out
}
