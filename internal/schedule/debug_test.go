package schedule

import (
	"testing"

	"clsacim/internal/models"
)

// TestScheduleDebugOption: with Options.Debug the scheduler validates
// its own output before returning it; legal workloads pass unchanged.
func TestScheduleDebugOption(t *testing.T) {
	_, _, dg := compileDeps(t, models.TinyBranchNet, 0, 4, 9)
	for _, p := range []Policy{LayerByLayer, Windowed(2), CrossLayer} {
		plain, err := Schedule(dg, p, Options{})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		debug, err := Schedule(dg, p, Options{Debug: true})
		if err != nil {
			t.Fatalf("%s: debug validation rejected the scheduler's own timeline: %v", p.Name(), err)
		}
		if !plain.Equal(debug) {
			t.Fatalf("%s: Debug changed the timeline", p.Name())
		}
	}
}
