package schedule

import (
	"testing"

	"clsacim/internal/models"
	"clsacim/internal/sets"
)

func TestCriticalPathProperties(t *testing.T) {
	_, _, dg := compileDeps(t, models.TinyYOLOv4, 416, 32, 52)
	s, err := Schedule(dg, CrossLayer, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path, err := s.CriticalPath(dg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(path) == 0 {
		t.Fatal("empty critical path")
	}
	// Ends at the makespan, starts at a zero-bound step.
	if last := path[len(path)-1].Item; last.End != s.Makespan {
		t.Errorf("path ends at %d, makespan %d", last.End, s.Makespan)
	}
	if first := path[0]; first.Cause != "start" {
		t.Errorf("path begins with cause %q", first.Cause)
	}
	// Consecutive steps are tightly linked: each step's start equals the
	// previous step's end (dep with zero edge cost, or same replica).
	for i := 1; i < len(path); i++ {
		if path[i].Item.Start != path[i-1].Item.End {
			t.Fatalf("step %d: start %d != previous end %d",
				i, path[i].Item.Start, path[i-1].Item.End)
		}
		if c := path[i].Cause; c != "dep" && c != "resource" {
			t.Fatalf("step %d has cause %q", i, c)
		}
	}
	// The path's total duration equals the makespan (tight chain from 0).
	var total int64
	for _, st := range path {
		total += st.Item.End - st.Item.Start
	}
	if path[0].Item.Start == 0 && total != s.Makespan {
		t.Errorf("path duration %d != makespan %d", total, s.Makespan)
	}
}

func TestCriticalPathSummary(t *testing.T) {
	_, _, dg := compileDeps(t, models.TinyConvNet, 32, 0, sets.FineGranularity)
	s, err := Schedule(dg, CrossLayer, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path, err := s.CriticalPath(dg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum := SummarizeCriticalPath(dg, path)
	if len(sum) == 0 {
		t.Fatal("empty summary")
	}
	var total, steps int64
	for _, l := range sum {
		total += l.Cycles
		steps += int64(l.Steps)
	}
	if steps != int64(len(path)) {
		t.Errorf("summary covers %d steps, path has %d", steps, len(path))
	}
	// In the sequential TinyConvNet the first conv dominates the
	// pipeline; it must carry most of the critical path.
	first := sum[0]
	if first.Name != "conv2d" {
		t.Errorf("path starts at %s, want conv2d", first.Name)
	}
	if first.Cycles*2 < total {
		t.Errorf("bottleneck conv2d carries %d of %d cycles", first.Cycles, total)
	}
}

func TestCriticalPathEmptySchedule(t *testing.T) {
	s := &Timeline{}
	if _, err := s.CriticalPath(nil, Options{}); err == nil {
		t.Error("empty schedule accepted")
	}
}
