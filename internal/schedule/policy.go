package schedule

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Unbounded is the Window of policies that never gate layer admission.
const Unbounded = math.MaxInt32

// Policy is a pluggable scheduling strategy: the Stage III dispatch
// rule assigning a layer's sets to its replica PE groups, plus the
// admission rule bounding how many layers may execute concurrently.
//
// The admission rule is a sliding window over the plan's topological
// layer order: layer l may not start before every layer up to l-Window
// has completed, so at most Window layers are ever concurrently active.
// Window 1 is the paper's layer-by-layer baseline (strictly sequential
// layers), Unbounded is full cross-layer inference ("xinf"), and the
// intermediate xK family trades scheduling freedom (and buffer
// pressure) against pipeline depth.
type Policy interface {
	// Name is the canonical mode name understood by ParseMode:
	// "lbl", "x<K>", or "xinf".
	Name() string
	// Window is the admission bound: the maximum number of layers
	// concurrently active (1 = layer-by-layer, Unbounded = xinf).
	Window() int
	// Replica is the Stage III dispatch rule: the replica PE group
	// (0 <= r < d) executing set si of a layer with d replicas.
	Replica(si, d int) int
}

// raster is the shared Stage III dispatch of every built-in policy:
// sets go to the d replicas round-robin in raster order ("the input
// vectors are evenly distributed among the duplicates", paper §III-C).
type raster struct{}

func (raster) Replica(si, d int) int { return si % d }

type lblPolicy struct{ raster }

func (lblPolicy) Name() string   { return "lbl" }
func (lblPolicy) Window() int    { return 1 }
func (lblPolicy) String() string { return "lbl" }

type xinfPolicy struct{ raster }

func (xinfPolicy) Name() string   { return "xinf" }
func (xinfPolicy) Window() int    { return Unbounded }
func (xinfPolicy) String() string { return "xinf" }

type windowPolicy struct {
	raster
	k int
}

func (p windowPolicy) Name() string   { return "x" + strconv.Itoa(p.k) }
func (p windowPolicy) Window() int    { return p.k }
func (p windowPolicy) String() string { return p.Name() }

// LayerByLayer is the paper's §II-B baseline: layers execute strictly
// sequentially; only the replicas of the current layer overlap.
var LayerByLayer Policy = lblPolicy{}

// CrossLayer is CLSA-CIM cross-layer inference (paper §IV, "xinf"):
// a set starts as soon as its replica and its Stage II dependencies
// allow, with no admission bound.
var CrossLayer Policy = xinfPolicy{}

// Windowed returns the bounded cross-layer policy xK: at most k layers
// concurrently active. k = 1 behaves exactly like LayerByLayer and
// k >= the layer count exactly like CrossLayer; values in between
// interpolate. Non-positive k is clamped to 1.
func Windowed(k int) Policy {
	if k < 1 {
		k = 1
	}
	return windowPolicy{k: k}
}

// ErrUnknownMode reports a mode name ParseMode does not recognize.
var ErrUnknownMode = fmt.Errorf("schedule: unknown mode")

// ParseMode resolves a scheduling policy by name: "xinf" (cross-layer
// inference, aliases "crosslayer" and "cross-layer"), "lbl"
// (layer-by-layer, aliases "layer-by-layer" and "layerbylayer"), or
// the bounded-window family "x<K>" for a positive decimal K ("x1",
// "x2", "x4", ...). Matching is case-insensitive.
func ParseMode(name string) (Policy, error) {
	s := strings.ToLower(strings.TrimSpace(name))
	switch s {
	case "xinf", "crosslayer", "cross-layer":
		return CrossLayer, nil
	case "lbl", "layer-by-layer", "layerbylayer":
		return LayerByLayer, nil
	}
	if rest, ok := strings.CutPrefix(s, "x"); ok {
		if k, err := strconv.Atoi(rest); err == nil && k >= 1 {
			return Windowed(k), nil
		}
	}
	return nil, fmt.Errorf("%w %q (want lbl, xinf, or xK)", ErrUnknownMode, name)
}
