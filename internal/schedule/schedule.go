// Package schedule implements Stages III and IV of CLSA-CIM (paper
// §IV-3/4) plus the layer-by-layer baseline of §II-B.
//
// Stage III fixes the intra-layer order of each base layer's OFM sets:
// sets execute in raster order (resource dependency — the same crossbars
// compute consecutive sets, so they serialize on their PE group).
//
// With weight duplication a layer owns d_i identical replica PE groups;
// its sets are dispatched to the replicas round-robin, preserving the
// raster emission order at d_i-fold throughput ("the input vectors are
// evenly distributed among the duplicates", paper §III-C). Sets on the
// same replica serialize; sets on different replicas may overlap.
//
// Stage IV computes the earliest feasible start of every set: a set
// starts as soon as its replica has finished its previous set and every
// predecessor set it depends on (Stage II) is complete — partial OFMs
// flow to successor layers before the full OFM exists, which is what
// raises PE utilization.
//
// The layer-by-layer baseline executes one layer at a time in
// topological order; only the replicas of the current layer overlap
// (weight-duplication mapping, paper Fig. 1(c) and Fig. 6a).
package schedule

import (
	"fmt"
	"strings"

	"clsacim/internal/deps"
)

// Mode distinguishes the two scheduling strategies.
type Mode int

// Scheduling modes.
const (
	LayerByLayer Mode = iota
	CrossLayer
)

// String names the mode as in the paper's plots.
func (m Mode) String() string {
	if m == CrossLayer {
		return "xinf"
	}
	return "layer-by-layer"
}

// ErrUnknownMode reports a mode name ParseMode does not recognize.
var ErrUnknownMode = fmt.Errorf("schedule: unknown mode")

// ParseMode resolves the paper's mode names: "xinf" (cross-layer
// inference, aliases "crosslayer" and "cross-layer") and "lbl"
// (layer-by-layer, aliases "layer-by-layer" and "layerbylayer").
// Matching is case-insensitive.
func ParseMode(name string) (Mode, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "xinf", "crosslayer", "cross-layer":
		return CrossLayer, nil
	case "lbl", "layer-by-layer", "layerbylayer":
		return LayerByLayer, nil
	}
	return 0, fmt.Errorf("%w %q (want xinf or lbl)", ErrUnknownMode, name)
}

// Item is one scheduled set execution on one replica PE group.
type Item struct {
	Layer, Set int
	// Replica is the PE group (0 <= Replica < d_i) executing the set.
	Replica    int
	Start, End int64 // cycles
}

// EdgeCostFn returns extra latency (cycles) charged on a dependency edge
// from predecessor set pred to a set of layer toLayer — the hook for the
// NoC and GPEU cost extensions. A nil function means the paper's
// idealized zero-cost data movement.
type EdgeCostFn func(pred deps.SetRef, toLayer int) int64

// Options configures scheduling.
type Options struct {
	EdgeCost EdgeCostFn
}

// Schedule is a complete executable timetable.
type Schedule struct {
	Mode Mode
	// Items[l][s] is the execution of set s of layer l.
	Items [][]Item
	// Makespan is the total inference time t_NN in cycles.
	Makespan int64
	// LayerActive[l] is the summed busy time of all replicas of layer l.
	LayerActive []int64
	// ReplicaActive[l][r] is the busy time of replica r of layer l.
	ReplicaActive [][]int64
}

// Build computes a schedule for the dependency graph in the given mode.
func Build(dg *deps.Graph, mode Mode, opt Options) (*Schedule, error) {
	switch mode {
	case CrossLayer:
		return crossLayer(dg, opt), nil
	case LayerByLayer:
		return layerByLayer(dg), nil
	default:
		return nil, fmt.Errorf("schedule: unknown mode %d", mode)
	}
}

// crossLayer is Stage IV: earliest-start list scheduling over the set
// DAG. Layers are processed in topological (plan) order, so every
// dependency's finish time is known when a set is placed.
func crossLayer(dg *deps.Graph, opt Options) *Schedule {
	s := newSchedule(dg, CrossLayer)
	for li, ls := range dg.Plan.Layers {
		d := ls.Group.Dup
		ready := make([]int64, d) // per-replica resource availability
		for si, set := range ls.Sets {
			r := si % d
			start := ready[r]
			for _, dep := range dg.Deps[li][si] {
				t := s.Items[dep.Layer][dep.Set].End
				if opt.EdgeCost != nil {
					t += opt.EdgeCost(dep, li)
				}
				if t > start {
					start = t
				}
			}
			end := start + set.Cycles
			s.Items[li][si] = Item{Layer: li, Set: si, Replica: r, Start: start, End: end}
			s.LayerActive[li] += set.Cycles
			s.ReplicaActive[li][r] += set.Cycles
			ready[r] = end
			if end > s.Makespan {
				s.Makespan = end
			}
		}
	}
	return s
}

// layerByLayer executes layers strictly sequentially; within a layer the
// d_i replicas process the set raster round-robin in parallel.
func layerByLayer(dg *deps.Graph) *Schedule {
	s := newSchedule(dg, LayerByLayer)
	var cur int64
	for li, ls := range dg.Plan.Layers {
		d := ls.Group.Dup
		ready := make([]int64, d)
		for i := range ready {
			ready[i] = cur
		}
		end := cur
		for si, set := range ls.Sets {
			r := si % d
			s.Items[li][si] = Item{Layer: li, Set: si, Replica: r, Start: ready[r], End: ready[r] + set.Cycles}
			ready[r] += set.Cycles
			s.LayerActive[li] += set.Cycles
			s.ReplicaActive[li][r] += set.Cycles
			if ready[r] > end {
				end = ready[r]
			}
		}
		cur = end
	}
	s.Makespan = cur
	return s
}

// LayerByLayerVirtual schedules a weight-virtualized mapping (paper
// §V-C future work, see mapping.SolveVirtual): layers execute strictly
// sequentially, and before every swapped layer its reload time is
// charged while the swap-pool PEs are being programmed. reload[i] is the
// per-layer programming cost (0 for resident layers). Reload time counts
// toward the makespan but not toward active (computing) cycles, so it
// depresses Eq. 2 utilization exactly as real crossbar writes would.
func LayerByLayerVirtual(dg *deps.Graph, reload []int64) (*Schedule, error) {
	if len(reload) != len(dg.Plan.Layers) {
		return nil, fmt.Errorf("schedule: reload vector has %d entries, plan %d",
			len(reload), len(dg.Plan.Layers))
	}
	s := newSchedule(dg, LayerByLayer)
	var cur int64
	for li, ls := range dg.Plan.Layers {
		cur += reload[li]
		t := cur
		for si, set := range ls.Sets {
			s.Items[li][si] = Item{Layer: li, Set: si, Replica: 0, Start: t, End: t + set.Cycles}
			t += set.Cycles
			s.LayerActive[li] += set.Cycles
			s.ReplicaActive[li][0] += set.Cycles
		}
		cur = t
	}
	s.Makespan = cur
	return s, nil
}

func newSchedule(dg *deps.Graph, mode Mode) *Schedule {
	s := &Schedule{
		Mode:          mode,
		Items:         make([][]Item, len(dg.Plan.Layers)),
		LayerActive:   make([]int64, len(dg.Plan.Layers)),
		ReplicaActive: make([][]int64, len(dg.Plan.Layers)),
	}
	for li, ls := range dg.Plan.Layers {
		s.Items[li] = make([]Item, len(ls.Sets))
		s.ReplicaActive[li] = make([]int64, ls.Group.Dup)
	}
	return s
}

// Validate checks that the schedule is executable: sets follow Stage III
// raster order per replica without overlapping their PE group, durations
// match the set sizes, every data dependency (plus edge cost) is
// respected, and in layer-by-layer mode no two different layers overlap.
func (s *Schedule) Validate(dg *deps.Graph, opt Options) error {
	if len(s.Items) != len(dg.Plan.Layers) {
		return fmt.Errorf("schedule: %d layers, plan has %d", len(s.Items), len(dg.Plan.Layers))
	}
	for li, ls := range dg.Plan.Layers {
		if len(s.Items[li]) != len(ls.Sets) {
			return fmt.Errorf("schedule: layer %d has %d items, plan has %d sets",
				li, len(s.Items[li]), len(ls.Sets))
		}
		d := ls.Group.Dup
		prevEnd := make([]int64, d)
		var active int64
		for si, set := range ls.Sets {
			it := s.Items[li][si]
			if it.Replica != si%d {
				return fmt.Errorf("schedule: layer %d set %d on replica %d, want %d (round-robin)",
					li, si, it.Replica, si%d)
			}
			if it.Start < 0 || it.End > s.Makespan {
				return fmt.Errorf("schedule: layer %d set %d [%d,%d) outside makespan %d",
					li, si, it.Start, it.End, s.Makespan)
			}
			if it.End-it.Start != set.Cycles {
				return fmt.Errorf("schedule: layer %d set %d duration %d != %d cycles",
					li, si, it.End-it.Start, set.Cycles)
			}
			if it.Start < prevEnd[it.Replica] {
				return fmt.Errorf("schedule: layer %d set %d starts %d before replica %d free at %d (resource conflict)",
					li, si, it.Start, it.Replica, prevEnd[it.Replica])
			}
			prevEnd[it.Replica] = it.End
			active += set.Cycles
			for _, dep := range dg.Deps[li][si] {
				need := s.Items[dep.Layer][dep.Set].End
				if opt.EdgeCost != nil {
					need += opt.EdgeCost(dep, li)
				}
				if it.Start < need {
					return fmt.Errorf("schedule: layer %d set %d starts %d before dependency L%d/S%d ready at %d",
						li, si, it.Start, dep.Layer, dep.Set, need)
				}
			}
		}
		if active != s.LayerActive[li] {
			return fmt.Errorf("schedule: layer %d active %d != recorded %d", li, active, s.LayerActive[li])
		}
	}
	if s.Mode == LayerByLayer {
		if err := s.validateExclusive(); err != nil {
			return err
		}
	}
	return nil
}

// validateExclusive checks the layer-by-layer property: execution spans
// of different layers never overlap.
func (s *Schedule) validateExclusive() error {
	type span struct{ start, end int64 }
	var spans []span
	for _, items := range s.Items {
		if len(items) == 0 {
			continue
		}
		sp := span{start: items[0].Start, end: items[0].End}
		for _, it := range items {
			if it.Start < sp.start {
				sp.start = it.Start
			}
			if it.End > sp.end {
				sp.end = it.End
			}
		}
		spans = append(spans, sp)
	}
	for i := 0; i < len(spans); i++ {
		for j := i + 1; j < len(spans); j++ {
			a, b := spans[i], spans[j]
			if a.start < b.end && b.start < a.end {
				return fmt.Errorf("schedule: layer-by-layer violation: layers %d and %d overlap", i, j)
			}
		}
	}
	return nil
}

// StartOf returns the earliest start time of layer li's sets.
func (s *Schedule) StartOf(li int) int64 {
	items := s.Items[li]
	if len(items) == 0 {
		return 0
	}
	min := items[0].Start
	for _, it := range items {
		if it.Start < min {
			min = it.Start
		}
	}
	return min
}

// EndOf returns the latest end time of layer li's sets.
func (s *Schedule) EndOf(li int) int64 {
	var max int64
	for _, it := range s.Items[li] {
		if it.End > max {
			max = it.End
		}
	}
	return max
}
