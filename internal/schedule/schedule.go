// Package schedule implements Stages III and IV of CLSA-CIM (paper
// §IV-3/4), the layer-by-layer baseline of §II-B, and the bounded
// cross-layer family interpolating between them.
//
// Stage III fixes the intra-layer order of each base layer's OFM sets:
// sets execute in raster order (resource dependency — the same crossbars
// compute consecutive sets, so they serialize on their PE group).
//
// With weight duplication a layer owns d_i identical replica PE groups;
// its sets are dispatched to the replicas round-robin, preserving the
// raster emission order at d_i-fold throughput ("the input vectors are
// evenly distributed among the duplicates", paper §III-C). Sets on the
// same replica serialize; sets on different replicas may overlap.
//
// Stage IV computes the earliest feasible start of every set: a set
// starts as soon as its replica has finished its previous set, every
// predecessor set it depends on (Stage II) is complete, and the
// policy's admission window permits the layer — partial OFMs flow to
// successor layers before the full OFM exists, which is what raises PE
// utilization.
//
// All strategies are instances of one Policy interface (see policy.go):
// "lbl" (window 1, strictly sequential layers, paper Fig. 1(c) and
// Fig. 6a), "xinf" (unbounded window, Fig. 6b), and the bounded "xK"
// family in between. One scheduler loop over the dependency graph's CSR
// arrays serves them all.
package schedule

import (
	"fmt"

	"clsacim/internal/deps"
)

// EdgeCostFn returns extra latency (cycles) charged on a dependency edge
// from predecessor set pred to a set of layer toLayer — the hook for the
// NoC and GPEU cost extensions. A nil function means the paper's
// idealized zero-cost data movement.
type EdgeCostFn func(pred deps.SetRef, toLayer int) int64

// Options configures scheduling.
type Options struct {
	EdgeCost EdgeCostFn
	// Debug validates the timeline against the full Stage III/IV
	// invariant set before Schedule returns it, turning scheduler bugs
	// into errors at the source instead of silently wrong metrics
	// downstream. It roughly doubles scheduling cost; leave it off on
	// hot paths and let the caller validate (see internal/check for the
	// engine-independent checker).
	Debug bool
}

// Schedule computes the execution timeline of dg under policy p: list
// scheduling over the set DAG's CSR arrays, processing layers in
// topological (plan) order so every dependency's finish time is known
// when a set is placed. The policy's admission window gates each layer
// on the completion of every layer Window positions back, which
// serializes layers entirely at window 1 and imposes nothing at
// Unbounded.
func Schedule(dg *deps.Graph, p Policy, opt Options) (*Timeline, error) {
	if p == nil {
		return nil, fmt.Errorf("schedule: nil policy")
	}
	if dg == nil || dg.CSR == nil {
		return nil, fmt.Errorf("schedule: dependency graph has no CSR (build it with deps.Build)")
	}
	csr := dg.CSR
	t := NewTimeline(dg, p)
	k := p.Window()
	nl := len(dg.Plan.Layers)
	// prefixEnd[i] is the max end over layers [0, i): the admission
	// gate of layer li is prefixEnd[li-k+1].
	prefixEnd := make([]int64, nl+1)
	// At window 1 with idealized edges every predecessor (always in an
	// earlier layer) finishes no later than the gate, so the dependency
	// scan is provably redundant.
	skipDeps := k == 1 && opt.EdgeCost == nil
	var ready []int64
	for li, ls := range dg.Plan.Layers {
		d := ls.Group.Dup
		var gate int64
		if k < nl && li >= k {
			gate = prefixEnd[li-k+1]
		}
		if cap(ready) < d {
			ready = make([]int64, d)
		}
		ready = ready[:d]
		for i := range ready {
			ready[i] = gate
		}
		base := int(csr.LayerOff[li])
		active := t.ReplicaActive[li]
		var layerEnd, layerActive int64
		for si := 0; si < len(ls.Sets); si++ {
			id := base + si
			r := p.Replica(si, d)
			start := ready[r]
			for e := csr.PredOff[id]; !skipDeps && e < csr.PredOff[id+1]; e++ {
				pid := csr.Pred[e]
				pt := t.Items[pid].End
				if opt.EdgeCost != nil {
					pl, ps := csr.Set(pid)
					pt += opt.EdgeCost(deps.SetRef{Layer: pl, Set: ps, Vol: int(csr.PredVol[e])}, li)
				}
				if pt > start {
					start = pt
				}
			}
			c := csr.Cycles[id]
			end := start + c
			t.Items[id] = Item{Layer: li, Set: si, Replica: r, Start: start, End: end}
			layerActive += c
			active[r] += c
			ready[r] = end
			if end > layerEnd {
				layerEnd = end
			}
		}
		t.LayerActive[li] = layerActive
		prefixEnd[li+1] = prefixEnd[li]
		if layerEnd > prefixEnd[li+1] {
			prefixEnd[li+1] = layerEnd
		}
		if layerEnd > t.Makespan {
			t.Makespan = layerEnd
		}
	}
	if opt.Debug {
		if err := t.Validate(dg, opt); err != nil {
			return nil, fmt.Errorf("schedule: debug validation: %w", err)
		}
	}
	return t, nil
}

// LayerByLayerVirtual schedules a weight-virtualized mapping (paper
// §V-C future work, see mapping.SolveVirtual): layers execute strictly
// sequentially, and before every swapped layer its reload time is
// charged while the swap-pool PEs are being programmed. reload[i] is the
// per-layer programming cost (0 for resident layers). Reload time counts
// toward the makespan but not toward active (computing) cycles, so it
// depresses Eq. 2 utilization exactly as real crossbar writes would.
func LayerByLayerVirtual(dg *deps.Graph, reload []int64) (*Timeline, error) {
	if len(reload) != len(dg.Plan.Layers) {
		return nil, fmt.Errorf("schedule: reload vector has %d entries, plan %d",
			len(reload), len(dg.Plan.Layers))
	}
	csr := dg.CSR
	t := NewTimeline(dg, LayerByLayer)
	var cur int64
	for li, ls := range dg.Plan.Layers {
		cur += reload[li]
		base := int(csr.LayerOff[li])
		for si := 0; si < len(ls.Sets); si++ {
			c := csr.Cycles[base+si]
			t.Items[base+si] = Item{Layer: li, Set: si, Replica: 0, Start: cur, End: cur + c}
			cur += c
			t.LayerActive[li] += c
			t.ReplicaActive[li][0] += c
		}
	}
	t.Makespan = cur
	return t, nil
}
