package schedule

import "clsacim/internal/deps"

// Dispatch is the immutable Stage III dispatch plan of one compiled
// workload under one policy: which sets each replica PE group executes,
// in raster order, laid out flat in the CSR's offset-indexed style.
// Replicas are numbered globally (layer li owns the replica ids
// [RepOff[li], RepOff[li+1])); replica g executes the layer-local set
// indices Order[OrderOff[g]:OrderOff[g+1]] in dispatch order.
//
// The plan depends only on the dependency graph's set plan and the
// policy's Replica rule, so event engines executing many concurrent
// inferences of one compilation (internal/stream) share a single
// Dispatch and keep only per-inference cursors. Every built-in policy
// shares the raster Replica rule, so one plan also serves every
// scheduling mode of one compilation — the incremental re-simulation
// path on a cached compile reuses it across modes.
type Dispatch struct {
	RepOff   []int32
	OrderOff []int32
	Order    []int32
	// RepOf[id] is the global replica group executing flat CSR set id —
	// the event engines' O(1) inverse of the policy's Replica rule.
	RepOf []int32
}

// NumReplicas returns the total replica PE group count across layers.
func (d *Dispatch) NumReplicas() int { return len(d.OrderOff) - 1 }

// Replicas returns the number of replica groups of layer li.
func (d *Dispatch) Replicas(li int) int { return int(d.RepOff[li+1] - d.RepOff[li]) }

// NewDispatch builds the dispatch plan: count the sets each global
// replica serves, prefix-sum into OrderOff, then place each set at its
// replica's cursor (raster order within a replica, matching Stage III).
func NewDispatch(dg *deps.Graph, p Policy) *Dispatch {
	nl := len(dg.Plan.Layers)
	ns := dg.CSR.NumSets()
	totalReps := 0
	for li := range dg.Plan.Layers {
		totalReps += dg.Plan.Layers[li].Group.Dup
	}
	d := &Dispatch{
		RepOff:   make([]int32, nl+1),
		OrderOff: make([]int32, totalReps+1),
		Order:    make([]int32, ns),
		RepOf:    make([]int32, ns),
	}
	reps := 0
	for li := range dg.Plan.Layers {
		d.RepOff[li] = int32(reps)
		reps += dg.Plan.Layers[li].Group.Dup
	}
	d.RepOff[nl] = int32(reps)
	cnt := make([]int32, totalReps)
	for li, ls := range dg.Plan.Layers {
		base := d.RepOff[li]
		dup := ls.Group.Dup
		for si := range ls.Sets {
			cnt[base+int32(p.Replica(si, dup))]++
		}
	}
	var off int32
	for g, n := range cnt {
		d.OrderOff[g] = off
		off += n
		cnt[g] = d.OrderOff[g] // reuse as write cursor
	}
	d.OrderOff[totalReps] = off
	id := int32(0)
	for li, ls := range dg.Plan.Layers {
		base := d.RepOff[li]
		dup := ls.Group.Dup
		for si := range ls.Sets {
			g := base + int32(p.Replica(si, dup))
			d.Order[cnt[g]] = int32(si)
			cnt[g]++
			d.RepOf[id] = g
			id++
		}
	}
	return d
}
