package schedule

import (
	"errors"
	"testing"
)

// FuzzParseMode: ParseMode must never panic, must reject unknown names
// with the typed ErrUnknownMode, and every accepted policy must
// round-trip through its canonical Name with an admission window of at
// least 1. The seed corpus covers every alias family, whitespace/case
// variants, and overflow-shaped xK strings.
func FuzzParseMode(f *testing.F) {
	for _, s := range []string{
		"lbl", "xinf", "x1", "x4", "X16", " x2 ",
		"layer-by-layer", "layerbylayer", "crosslayer", "cross-layer",
		"", "warp", "x", "x0", "x-3", "x2.5", "xK",
		"x99999999999999999999", "x007", "\x00x4", "ｘ4",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParseMode(s)
		if err != nil {
			if !errors.Is(err, ErrUnknownMode) {
				t.Fatalf("ParseMode(%q): error %v is not ErrUnknownMode", s, err)
			}
			return
		}
		if p.Window() < 1 {
			t.Fatalf("ParseMode(%q): window %d < 1", s, p.Window())
		}
		back, err := ParseMode(p.Name())
		if err != nil {
			t.Fatalf("ParseMode(%q).Name() = %q does not parse back: %v", s, p.Name(), err)
		}
		if back.Window() != p.Window() {
			t.Fatalf("ParseMode(%q) round trip: window %d != %d", s, back.Window(), p.Window())
		}
	})
}
