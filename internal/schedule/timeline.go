package schedule

import (
	"fmt"

	"clsacim/internal/deps"
)

// Item is one scheduled set execution on one replica PE group.
type Item struct {
	Layer, Set int
	// Replica is the PE group (0 <= Replica < d_i) executing the set.
	Replica    int
	Start, End int64 // cycles
}

// Timeline is the executed set-level timetable shared by the analytic
// scheduler (Schedule) and the event-driven simulator (sim.Run): one
// flat Item per set in CSR order, with a per-layer index. Gantt
// rendering, JSON export, critical-path analysis, and the
// schedule-vs-sim equality check all operate on this one
// representation.
type Timeline struct {
	// Policy is the scheduling strategy that produced the timeline.
	Policy Policy
	// Items holds every set execution in flat CSR order (layer-major,
	// raster within a layer): layer l's items are
	// Items[Off[l]:Off[l+1]], and set s of layer l is Items[Off[l]+s].
	Items []Item
	// Off is the per-layer index into Items (length NumLayers+1); it
	// aliases the dependency graph's CSR.LayerOff.
	Off []int32
	// Makespan is the total inference time t_NN in cycles.
	Makespan int64
	// LayerActive[l] is the summed busy time of all replicas of layer l.
	LayerActive []int64
	// ReplicaActive[l][r] is the busy time of replica r of layer l.
	ReplicaActive [][]int64
}

// NewTimeline allocates an empty timeline shaped after dg's set plan.
// The per-layer ReplicaActive rows are views into one backing array
// (full-capacity slices, so an append on a row would copy rather than
// clobber its neighbor), keeping the allocation count independent of
// the layer count.
func NewTimeline(dg *deps.Graph, p Policy) *Timeline {
	nl := len(dg.Plan.Layers)
	t := &Timeline{
		Policy:        p,
		Items:         make([]Item, dg.CSR.NumSets()),
		Off:           dg.CSR.LayerOff,
		LayerActive:   make([]int64, nl),
		ReplicaActive: make([][]int64, nl),
	}
	total := 0
	for li := range dg.Plan.Layers {
		total += dg.Plan.Layers[li].Group.Dup
	}
	backing := make([]int64, total)
	off := 0
	for li := range dg.Plan.Layers {
		d := dg.Plan.Layers[li].Group.Dup
		t.ReplicaActive[li] = backing[off : off+d : off+d]
		off += d
	}
	return t
}

// NumLayers returns the layer count.
func (t *Timeline) NumLayers() int { return len(t.Off) - 1 }

// ItemsOf returns layer li's items (set raster order).
func (t *Timeline) ItemsOf(li int) []Item { return t.Items[t.Off[li]:t.Off[li+1]] }

// At returns the item of set si of layer li.
func (t *Timeline) At(li, si int) *Item { return &t.Items[int(t.Off[li])+si] }

// StartOf returns the earliest start time of layer li's sets.
func (t *Timeline) StartOf(li int) int64 {
	items := t.ItemsOf(li)
	if len(items) == 0 {
		return 0
	}
	min := items[0].Start
	for _, it := range items {
		if it.Start < min {
			min = it.Start
		}
	}
	return min
}

// EndOf returns the latest end time of layer li's sets.
func (t *Timeline) EndOf(li int) int64 {
	var max int64
	for _, it := range t.ItemsOf(li) {
		if it.End > max {
			max = it.End
		}
	}
	return max
}

// Equal reports whether two timelines describe the same execution:
// identical makespan, items, and activity accounting. The policies
// that produced them are not compared.
func (t *Timeline) Equal(o *Timeline) bool {
	if t.Makespan != o.Makespan || len(t.Items) != len(o.Items) || len(t.Off) != len(o.Off) {
		return false
	}
	for i := range t.Items {
		if t.Items[i] != o.Items[i] {
			return false
		}
	}
	for i := range t.Off {
		if t.Off[i] != o.Off[i] {
			return false
		}
	}
	for li := range t.LayerActive {
		if t.LayerActive[li] != o.LayerActive[li] {
			return false
		}
		if len(t.ReplicaActive[li]) != len(o.ReplicaActive[li]) {
			return false
		}
		for r := range t.ReplicaActive[li] {
			if t.ReplicaActive[li][r] != o.ReplicaActive[li][r] {
				return false
			}
		}
	}
	return true
}

// Validate checks that the timeline is executable: sets follow the
// policy's Stage III dispatch per replica without overlapping their PE
// group, durations match the set sizes, every data dependency (plus
// edge cost) is respected, and the policy's admission window holds (no
// layer starts before every layer Window positions back has
// completed).
func (t *Timeline) Validate(dg *deps.Graph, opt Options) error {
	if t.Policy == nil {
		return fmt.Errorf("schedule: timeline has no policy")
	}
	csr := dg.CSR
	if t.NumLayers() != len(dg.Plan.Layers) {
		return fmt.Errorf("schedule: %d layers, plan has %d", t.NumLayers(), len(dg.Plan.Layers))
	}
	if len(t.Items) != csr.NumSets() {
		return fmt.Errorf("schedule: %d items, plan has %d sets", len(t.Items), csr.NumSets())
	}
	for li, ls := range dg.Plan.Layers {
		items := t.ItemsOf(li)
		if len(items) != len(ls.Sets) {
			return fmt.Errorf("schedule: layer %d has %d items, plan has %d sets",
				li, len(items), len(ls.Sets))
		}
		d := ls.Group.Dup
		prevEnd := make([]int64, d)
		var active int64
		for si := range items {
			it := items[si]
			id := csr.ID(li, si)
			if want := t.Policy.Replica(si, d); it.Replica != want {
				return fmt.Errorf("schedule: layer %d set %d on replica %d, want %d (dispatch rule)",
					li, si, it.Replica, want)
			}
			if it.Start < 0 || it.End > t.Makespan {
				return fmt.Errorf("schedule: layer %d set %d [%d,%d) outside makespan %d",
					li, si, it.Start, it.End, t.Makespan)
			}
			if it.End-it.Start != csr.Cycles[id] {
				return fmt.Errorf("schedule: layer %d set %d duration %d != %d cycles",
					li, si, it.End-it.Start, csr.Cycles[id])
			}
			if it.Start < prevEnd[it.Replica] {
				return fmt.Errorf("schedule: layer %d set %d starts %d before replica %d free at %d (resource conflict)",
					li, si, it.Start, it.Replica, prevEnd[it.Replica])
			}
			prevEnd[it.Replica] = it.End
			active += it.End - it.Start
			for e := csr.PredOff[id]; e < csr.PredOff[id+1]; e++ {
				pid := csr.Pred[e]
				need := t.Items[pid].End
				if opt.EdgeCost != nil {
					pl, ps := csr.Set(pid)
					need += opt.EdgeCost(deps.SetRef{Layer: pl, Set: ps, Vol: int(csr.PredVol[e])}, li)
				}
				if it.Start < need {
					pl, ps := csr.Set(pid)
					return fmt.Errorf("schedule: layer %d set %d starts %d before dependency L%d/S%d ready at %d",
						li, si, it.Start, pl, ps, need)
				}
			}
		}
		if active != t.LayerActive[li] {
			return fmt.Errorf("schedule: layer %d active %d != recorded %d", li, active, t.LayerActive[li])
		}
	}
	return t.validateWindow(dg)
}

// validateWindow checks the admission rule: no set of layer li starts
// before every layer up to li-K has fully completed.
func (t *Timeline) validateWindow(dg *deps.Graph) error {
	k := t.Policy.Window()
	nl := t.NumLayers()
	if k >= nl {
		return nil
	}
	// prefixEnd tracks the max end over layers [0, li-k] as li advances.
	var prefixEnd int64
	for li := k; li < nl; li++ {
		if e := t.EndOf(li - k); e > prefixEnd {
			prefixEnd = e
		}
		for _, it := range t.ItemsOf(li) {
			if it.Start < prefixEnd {
				return fmt.Errorf("schedule: window violation: layer %d set %d starts %d before layer <=%d complete at %d (window %d)",
					li, it.Set, it.Start, li-k, prefixEnd, k)
			}
		}
	}
	return nil
}
