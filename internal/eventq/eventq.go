// Package eventq is the bucketed calendar event queue shared by the
// discrete-event engines (internal/sim, internal/stream).
//
// Both engines schedule set completions whose timestamps advance
// monotonically and whose increments are bounded: a completion pushed
// at simulation time `now` lands at `start + cycles`, where start is at
// most a few edge-cost cycles past now and cycles is bounded by the
// longest set of the workload. Under that regime a calendar queue
// (Brown, CACM 1988) replaces the binary heap's O(log n) sift with O(1)
// amortized push/pop: events hash into a ring of time buckets of fixed
// width, the pop scan walks the ring from the current bucket, and the
// bounded increment guarantees every live event sits within one lap.
//
// Determinism is preserved exactly: Pop returns the strict minimum
// under the (Time, Seq) order the heap used, because days (bucket
// indices) are strictly ordered along the scan and the minimum within
// one bucket is selected by a linear (Time, Seq) scan. Events whose
// time exceeds the ring's horizon (possible only under unbounded
// caller-supplied edge costs) overflow into a side list and migrate
// back once the clock catches up, so correctness never depends on the
// increment bound — only speed does.
//
// A Queue is reusable: Init reshapes the ring for a workload's bound
// and keeps the bucket storage of earlier runs, so a warm queue
// allocates nothing. It is not safe for concurrent use.
package eventq

// Event is one queue element: ordered by (Time, Seq), carrying the
// engine's payload P (a flat set id, a job/set pair, ...).
type Event[P any] struct {
	Time int64
	Seq  int64
	P    P
}

// Queue is a bucketed calendar queue over monotonically advancing
// event time. The zero value is empty but unshaped; call Init before
// the first Push.
type Queue[P any] struct {
	buckets [][]Event[P]
	mask    int64 // len(buckets)-1; len is a power of two
	shift   uint  // bucket width = 1 << shift cycles

	now   int64 // time of the last popped event (monotonic)
	ringN int   // events currently in the ring

	overflow    []Event[P] // events beyond the ring horizon
	overflowMin int64      // min Time in overflow (valid when non-empty)
}

// Init shapes the queue for a run: span is the maximum push increment
// (an upper bound on e.Time - now at push time; pushes beyond it are
// still correct, just slower), and width the expected number of
// concurrently pending events. The queue must be empty; bucket storage
// from earlier runs is kept, so a warm Init allocates only when the
// shape grows.
func (q *Queue[P]) Init(span int64, width int) {
	if span < 1 {
		span = 1
	}
	nb := 16
	for nb < 2*width && nb < 8192 {
		nb <<= 1
	}
	var shift uint
	// Every push within span must land under one lap of the ring:
	// day(now+span) - day(now) <= (span >> shift) + 1 <= nb-1.
	for span>>shift > int64(nb-2) {
		shift++
	}
	if len(q.buckets) < nb {
		q.buckets = make([][]Event[P], nb)
	} else {
		q.buckets = q.buckets[:nb]
	}
	q.mask = int64(nb - 1)
	q.shift = shift
	q.now = 0
	q.ringN = 0
	q.overflow = q.overflow[:0]
}

// Len returns the number of pending events.
func (q *Queue[P]) Len() int { return q.ringN + len(q.overflow) }

// Push enqueues an event. t must be at least the time of the last
// popped event (the engines' no-time-travel invariant).
func (q *Queue[P]) Push(t, seq int64, p P) {
	if (t>>q.shift)-(q.now>>q.shift) > q.mask {
		if len(q.overflow) == 0 || t < q.overflowMin {
			q.overflowMin = t
		}
		q.overflow = append(q.overflow, Event[P]{Time: t, Seq: seq, P: p})
		return
	}
	b := (t >> q.shift) & q.mask
	q.buckets[b] = append(q.buckets[b], Event[P]{Time: t, Seq: seq, P: p})
	q.ringN++
}

// Pop removes and returns the pending event with the least (Time, Seq),
// or ok=false when the queue is empty.
func (q *Queue[P]) Pop() (e Event[P], ok bool) {
	if q.ringN == 0 && len(q.overflow) == 0 {
		return e, false
	}
	if len(q.overflow) > 0 {
		if q.ringN == 0 {
			q.now = q.overflowMin
		}
		if (q.overflowMin>>q.shift)-(q.now>>q.shift) <= q.mask {
			q.migrate()
		}
	}
	day := q.now >> q.shift
	for i := int64(0); i <= q.mask; i++ {
		b := q.buckets[(day+i)&q.mask]
		if len(b) == 0 {
			continue
		}
		best := 0
		for j := 1; j < len(b); j++ {
			if b[j].Time < b[best].Time || (b[j].Time == b[best].Time && b[j].Seq < b[best].Seq) {
				best = j
			}
		}
		e = b[best]
		last := len(b) - 1
		b[best] = b[last]
		q.buckets[(day+i)&q.mask] = b[:last]
		q.ringN--
		q.now = e.Time
		return e, true
	}
	// Unreachable: ringN > 0 guarantees a non-empty bucket within one lap.
	panic("eventq: ring accounting corrupted")
}

// migrate moves overflow events that now fit under the ring horizon
// into their buckets and recomputes the overflow minimum.
func (q *Queue[P]) migrate() {
	day := q.now >> q.shift
	kept := q.overflow[:0]
	for _, e := range q.overflow {
		if (e.Time>>q.shift)-day > q.mask {
			if len(kept) == 0 || e.Time < q.overflowMin {
				q.overflowMin = e.Time
			}
			kept = append(kept, e)
			continue
		}
		b := (e.Time >> q.shift) & q.mask
		q.buckets[b] = append(q.buckets[b], e)
		q.ringN++
	}
	q.overflow = kept
}
