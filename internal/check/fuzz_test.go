package check_test

import (
	"testing"

	"clsacim/internal/check"
	"clsacim/internal/cim"
	"clsacim/internal/deps"
	"clsacim/internal/frontend"
	"clsacim/internal/im2col"
	"clsacim/internal/mapping"
	"clsacim/internal/models"
	"clsacim/internal/schedule"
	"clsacim/internal/sets"
	"clsacim/internal/sim"
)

// FuzzScheduleVsSim is the differential fuzz harness over the whole
// scheduling stack: a fuzzed random CNN is compiled (canonicalize →
// map → Stage I/II) and executed by BOTH engines — the analytic Stage IV
// list scheduler and the event-driven simulator — under a fuzzed policy
// and mapping. Every timeline must pass the independent invariant
// checker, and the two engines must agree item-for-item. Any divergence
// is a bug in one of the three subsystems.
//
// The seed corpus in testdata/fuzz/FuzzScheduleVsSim covers both policy
// extremes, bounded windows, duplication on/off, and each Stage I
// granularity class; CI replays it on every run (go test) and mutates
// it briefly (go test -fuzz).
func FuzzScheduleVsSim(f *testing.F) {
	f.Add(int64(1), byte(4), byte(0), byte(3), byte(2))
	f.Add(int64(2), byte(6), byte(1), byte(0), byte(0))
	f.Add(int64(3), byte(5), byte(2), byte(8), byte(4))
	f.Add(int64(17), byte(7), byte(3), byte(5), byte(1))
	f.Add(int64(42), byte(3), byte(5), byte(11), byte(3))
	f.Fuzz(func(t *testing.T, seed int64, layers, window, extra, gran byte) {
		maxBase := 2 + int(layers)%6 // [2, 7] base layers
		k := int(window) % 6         // 0 → xinf, else xK
		extraPEs := int(extra) % 12  // duplication headroom
		granularity := []int{1, 3, 9, 27, sets.FineGranularity}[int(gran)%5]

		g, err := models.RandomCNN(models.RandomOptions{Seed: seed, MaxBaseLayers: maxBase, MaxInput: 24})
		if err != nil {
			t.Fatalf("generator: %v", err)
		}
		if _, err := frontend.Canonicalize(g, frontend.Options{}); err != nil {
			t.Fatalf("canonicalize: %v", err)
		}
		pe := im2col.PEDims{Rows: 64, Cols: 64}
		plan, err := mapping.Analyze(g, pe)
		if err != nil {
			t.Fatalf("analyze: %v", err)
		}
		solver := mapping.SolverNone
		if extraPEs > 0 {
			solver = mapping.SolverDP
		}
		sol, err := mapping.Solve(plan, plan.MinPEs+extraPEs, solver)
		if err != nil {
			t.Fatalf("solve: %v", err)
		}
		m, err := mapping.Apply(g, plan, sol, plan.MinPEs+extraPEs)
		if err != nil {
			t.Fatalf("apply: %v", err)
		}
		sp, err := sets.Determine(g, m, sets.Options{TargetSets: granularity})
		if err != nil {
			t.Fatalf("stage I: %v", err)
		}
		dg, err := deps.Build(g, sp)
		if err != nil {
			t.Fatalf("stage II: %v", err)
		}

		p := schedule.Policy(schedule.CrossLayer)
		if k > 0 {
			p = schedule.Windowed(k)
		}
		tl, err := schedule.Schedule(dg, p, schedule.Options{})
		if err != nil {
			t.Fatalf("schedule: %v", err)
		}
		if err := check.Timeline(m, dg, p, tl, check.Options{}); err != nil {
			t.Fatalf("scheduled timeline rejected: %v", err)
		}

		arch := cim.Default()
		arch.PE = pe
		arch.NumPEs = plan.MinPEs + extraPEs
		res, err := sim.RunOpt(arch, dg, m, p, sim.Options{})
		if err != nil {
			t.Fatalf("sim: %v", err)
		}
		if err := check.Timeline(m, dg, p, res.Timeline, check.Options{}); err != nil {
			t.Fatalf("simulated timeline rejected: %v", err)
		}
		if !tl.Equal(res.Timeline) {
			t.Fatalf("scheduler and simulator disagree (makespan %d vs %d)", tl.Makespan, res.Makespan)
		}
	})
}
