// Package check is an independent invariant checker for execution
// timelines: given a compiled workload (mapping + dependency graph) and
// the policy a timeline claims to follow, Timeline re-derives every
// property a legal CLSA-CIM execution must satisfy and reports the first
// violation as a typed error.
//
// The checker is deliberately separate from the machinery that produces
// timelines: it shares no code with the Stage IV list scheduler
// (package schedule) or the event-driven simulator (package sim), so a
// bug in either engine cannot also hide in the oracle that judges it.
// Both engines run it behind a debug option, the public Engine exposes
// it through clsacim.WithValidation, and the differential fuzz harness
// (FuzzScheduleVsSim) drives it over randomized models.
//
// The invariant set:
//
//   - Shape: one item per Stage I set, carrying its own (layer, set)
//     coordinates, a replica inside the layer's duplication range, and
//     non-negative times.
//   - Dependency order: every CSR dependency edge is respected — a set
//     starts only after each predecessor set has completed, plus the
//     configured edge cost (NoC/GPEU).
//   - Crossbar exclusivity: no physical PE executes two sets at once.
//     Sets of the same replica PE group must serialize, and groups that
//     share PEs (weight virtualization) must never overlap in time.
//   - Window admission: under a window-K policy no set of layer l starts
//     before every layer up to l-K has fully completed.
//   - Conservation (Stage III/IV accounting): each set runs for exactly
//     its Stage I cycle count, per-layer and per-replica active-cycle
//     totals match the items, and the total active time equals the
//     plan's total work.
//   - Makespan/metrics consistency: the makespan is exactly the latest
//     item end, and paper Eq. 2 utilization computed from the timeline
//     is a valid fraction in (0, 1].
package check

import (
	"fmt"
	"sort"

	"clsacim/internal/deps"
	"clsacim/internal/mapping"
	"clsacim/internal/metrics"
	"clsacim/internal/schedule"
)

// Kind classifies a Violation by the invariant it breaks.
type Kind string

// The invariant classes Timeline asserts.
const (
	KindShape        Kind = "shape"
	KindDependency   Kind = "dependency"
	KindExclusivity  Kind = "exclusivity"
	KindWindow       Kind = "window"
	KindConservation Kind = "conservation"
	KindMakespan     Kind = "makespan"
)

// Violation is one broken invariant. Layer/Set locate the offending item
// when the violation is set-specific (-1 otherwise).
type Violation struct {
	Kind       Kind
	Layer, Set int
	Msg        string
}

func (v *Violation) Error() string {
	if v.Layer >= 0 {
		return fmt.Sprintf("check: %s violation at L%d/S%d: %s", v.Kind, v.Layer, v.Set, v.Msg)
	}
	return fmt.Sprintf("check: %s violation: %s", v.Kind, v.Msg)
}

func violation(k Kind, li, si int, format string, args ...any) error {
	return &Violation{Kind: k, Layer: li, Set: si, Msg: fmt.Sprintf(format, args...)}
}

// Options configures the checker.
type Options struct {
	// EdgeCost is the dependency-edge cost the timeline was scheduled
	// under (nil = the paper's idealized zero-cost data movement). It
	// must match the producing run's cost model, or legal timelines will
	// be rejected.
	EdgeCost schedule.EdgeCostFn
}

// Timeline asserts the full invariant set on tl, which claims to execute
// the workload dg on mapping m under policy p. It returns nil for a
// legal execution and a *Violation describing the first broken invariant
// otherwise.
func Timeline(m *mapping.Mapping, dg *deps.Graph, p schedule.Policy, tl *schedule.Timeline, opt Options) error {
	if m == nil || dg == nil || dg.CSR == nil || tl == nil {
		return violation(KindShape, -1, -1, "nil mapping, dependency graph, CSR, or timeline")
	}
	if p == nil {
		return violation(KindShape, -1, -1, "nil policy")
	}
	csr := dg.CSR
	nl := len(dg.Plan.Layers)
	if len(m.Groups) != nl {
		return violation(KindShape, -1, -1, "mapping has %d groups, plan %d layers", len(m.Groups), nl)
	}
	if len(tl.Off) != nl+1 || len(tl.LayerActive) != nl || len(tl.ReplicaActive) != nl {
		return violation(KindShape, -1, -1,
			"timeline indexes %d layers, plan has %d", len(tl.Off)-1, nl)
	}
	if len(tl.Items) != csr.NumSets() {
		return violation(KindShape, -1, -1, "%d items, plan has %d sets", len(tl.Items), csr.NumSets())
	}
	if err := checkShape(m, dg, tl); err != nil {
		return err
	}
	if err := checkDependencies(dg, tl, opt.EdgeCost); err != nil {
		return err
	}
	if err := checkExclusivity(m, dg, tl); err != nil {
		return err
	}
	if err := checkWindow(dg, p, tl); err != nil {
		return err
	}
	if err := checkConservation(dg, tl); err != nil {
		return err
	}
	return checkMakespan(m, tl)
}

// checkShape verifies that every item sits at its CSR position, names
// itself correctly, runs on a replica the layer actually has, and keeps
// sane times.
func checkShape(m *mapping.Mapping, dg *deps.Graph, tl *schedule.Timeline) error {
	csr := dg.CSR
	for li, ls := range dg.Plan.Layers {
		if int(tl.Off[li]) != int(csr.LayerOff[li]) {
			return violation(KindShape, li, -1, "layer offset %d != CSR offset %d", tl.Off[li], csr.LayerOff[li])
		}
		d := m.Groups[li].Dup
		if d != ls.Group.Dup {
			return violation(KindShape, li, -1, "mapping duplication %d != plan duplication %d", d, ls.Group.Dup)
		}
		if len(tl.ReplicaActive[li]) != d {
			return violation(KindShape, li, -1,
				"replica accounting has %d rows, layer has %d replicas", len(tl.ReplicaActive[li]), d)
		}
		for si := range ls.Sets {
			it := tl.Items[int(csr.LayerOff[li])+si]
			if it.Layer != li || it.Set != si {
				return violation(KindShape, li, si, "item labeled L%d/S%d", it.Layer, it.Set)
			}
			if it.Replica < 0 || it.Replica >= d {
				return violation(KindShape, li, si, "replica %d outside [0, %d)", it.Replica, d)
			}
			if it.Start < 0 || it.End < it.Start {
				return violation(KindShape, li, si, "times [%d, %d) not ordered", it.Start, it.End)
			}
		}
	}
	return nil
}

// checkDependencies walks every CSR predecessor edge and asserts the
// consumer starts no earlier than the producer's end plus the edge cost.
func checkDependencies(dg *deps.Graph, tl *schedule.Timeline, edge schedule.EdgeCostFn) error {
	csr := dg.CSR
	for id := 0; id < csr.NumSets(); id++ {
		it := tl.Items[id]
		for e := csr.PredOff[id]; e < csr.PredOff[id+1]; e++ {
			pid := csr.Pred[e]
			need := tl.Items[pid].End
			if edge != nil {
				pl, ps := csr.Set(pid)
				need += edge(deps.SetRef{Layer: pl, Set: ps, Vol: int(csr.PredVol[e])}, it.Layer)
			}
			if it.Start < need {
				pl, ps := csr.Set(pid)
				return violation(KindDependency, it.Layer, it.Set,
					"starts %d before predecessor L%d/S%d ready at %d", it.Start, pl, ps, need)
			}
		}
	}
	return nil
}

// span is one busy interval of a replica PE group.
type span struct {
	start, end int64
	li, si     int
}

// checkExclusivity asserts that no physical crossbar PE executes two
// sets at once: the items of one replica PE group must not overlap
// pairwise, and replica groups that share PEs (weight virtualization
// pools) must not overlap either.
func checkExclusivity(m *mapping.Mapping, dg *deps.Graph, tl *schedule.Timeline) error {
	nl := len(dg.Plan.Layers)
	// Busy intervals per (layer, replica).
	spans := make([][][]span, nl)
	for li := range dg.Plan.Layers {
		spans[li] = make([][]span, m.Groups[li].Dup)
	}
	for _, it := range tl.Items {
		if it.End > it.Start { // zero-length sets occupy nothing
			spans[it.Layer][it.Replica] = append(spans[it.Layer][it.Replica],
				span{start: it.Start, end: it.End, li: it.Layer, si: it.Set})
		}
	}
	for li := range spans {
		for r := range spans[li] {
			if err := sweepSpans(spans[li][r]); err != nil {
				return err
			}
		}
	}
	// Replica groups sharing any PE must be mutually exclusive over
	// time. Disjoint mappings skip this entirely; virtualized mappings
	// (layers time-sharing a swap pool) are the case that exercises it.
	owners := map[int][][2]int{} // PE index -> (layer, replica) owners
	for li, g := range m.Groups {
		for r := 0; r < g.Dup; r++ {
			for _, pe := range g.ReplicaPEs(r) {
				owners[pe] = append(owners[pe], [2]int{li, r})
			}
		}
	}
	checked := map[string]bool{}
	for _, os := range owners {
		if len(os) < 2 {
			continue
		}
		key := fmt.Sprint(os)
		if checked[key] {
			continue
		}
		checked[key] = true
		var joint []span
		for _, o := range os {
			joint = append(joint, spans[o[0]][o[1]]...)
		}
		if err := sweepSpans(joint); err != nil {
			return err
		}
	}
	return nil
}

// sweepSpans sorts busy intervals and reports the first overlap.
func sweepSpans(ss []span) error {
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].start != ss[j].start {
			return ss[i].start < ss[j].start
		}
		return ss[i].end < ss[j].end
	})
	for i := 1; i < len(ss); i++ {
		if ss[i].start < ss[i-1].end {
			return violation(KindExclusivity, ss[i].li, ss[i].si,
				"overlaps L%d/S%d on the same crossbars ([%d,%d) vs [%d,%d))",
				ss[i-1].li, ss[i-1].si, ss[i].start, ss[i].end, ss[i-1].start, ss[i-1].end)
		}
	}
	return nil
}

// checkWindow asserts the policy's admission rule: no set of layer li
// starts before every layer up to li-K has completed.
func checkWindow(dg *deps.Graph, p schedule.Policy, tl *schedule.Timeline) error {
	k := p.Window()
	nl := len(dg.Plan.Layers)
	if k >= nl {
		return nil // the gate never engages
	}
	layerEnd := make([]int64, nl)
	for _, it := range tl.Items {
		if it.End > layerEnd[it.Layer] {
			layerEnd[it.Layer] = it.End
		}
	}
	var gate int64 // max end over layers [0, li-k]
	for li := k; li < nl; li++ {
		if e := layerEnd[li-k]; e > gate {
			gate = e
		}
		for _, it := range tl.ItemsOf(li) {
			if it.Start < gate {
				return violation(KindWindow, li, it.Set,
					"starts %d before layers <= %d complete at %d (window %d)", it.Start, li-k, gate, k)
			}
		}
	}
	return nil
}

// checkConservation asserts the Stage III/IV accounting: every set runs
// for exactly its Stage I cycle count, and the per-layer / per-replica
// active totals recorded on the timeline match the items.
func checkConservation(dg *deps.Graph, tl *schedule.Timeline) error {
	csr := dg.CSR
	for li, ls := range dg.Plan.Layers {
		var layerActive int64
		replica := make([]int64, ls.Group.Dup)
		for si := range ls.Sets {
			id := int(csr.LayerOff[li]) + si
			it := tl.Items[id]
			if got, want := it.End-it.Start, csr.Cycles[id]; got != want {
				return violation(KindConservation, li, si, "duration %d != %d Stage I cycles", got, want)
			}
			layerActive += it.End - it.Start
			replica[it.Replica] += it.End - it.Start
		}
		// Per-item durations equal the Stage I cycle counts (checked
		// above), so layerActive is also the layer's total work; the
		// recorded accounting must match it.
		if tl.LayerActive[li] != layerActive {
			return violation(KindConservation, li, -1,
				"recorded layer active %d != item total %d", tl.LayerActive[li], layerActive)
		}
		for r, a := range replica {
			if tl.ReplicaActive[li][r] != a {
				return violation(KindConservation, li, -1,
					"recorded replica %d active %d != item total %d", r, tl.ReplicaActive[li][r], a)
			}
		}
	}
	return nil
}

// checkMakespan asserts that the recorded makespan is exactly the latest
// item end and that paper Eq. 2 utilization derived from the timeline is
// a valid fraction.
func checkMakespan(m *mapping.Mapping, tl *schedule.Timeline) error {
	var last int64
	for _, it := range tl.Items {
		if it.End > last {
			last = it.End
		}
	}
	if tl.Makespan != last {
		return violation(KindMakespan, -1, -1, "makespan %d != latest item end %d", tl.Makespan, last)
	}
	ut, err := metrics.Utilization(tl, m)
	if err != nil {
		return violation(KindMakespan, -1, -1, "utilization (Eq. 2): %v", err)
	}
	if ut <= 0 || ut > 1 {
		return violation(KindMakespan, -1, -1, "utilization %v outside (0, 1]", ut)
	}
	return nil
}
