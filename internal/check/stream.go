package check

import (
	"fmt"
	"sort"

	"clsacim/internal/deps"
	"clsacim/internal/mapping"
	"clsacim/internal/schedule"
)

// The stream-specific invariant classes (see Stream).
const (
	// KindArrival: an inference executed work before its arrival time.
	KindArrival Kind = "arrival"
	// KindGate: the inter-inference admission gate was violated — an
	// inference started while more than MaxInFlight earlier inferences
	// of its model were still incomplete.
	KindGate Kind = "gate"
)

// StreamModel is one model class sharing the fabric in a streamed
// execution: its compiled workload, the policy every inference of the
// class was scheduled under, and where its PE indices sit in the global
// fabric (PEBase). Two classes whose PE ranges overlap (shared crossbar
// pools) must be mutually exclusive in time wherever they share a
// physical PE.
type StreamModel struct {
	Graph   *deps.Graph
	Mapping *mapping.Mapping
	Policy  schedule.Policy
	// Edge is the dependency-edge cost the timelines were scheduled
	// under (nil = idealized).
	Edge schedule.EdgeCostFn
	// PEBase offsets the mapping's PE indices into the global fabric.
	PEBase int
}

// StreamInference is one scheduled inference of a stream: which model
// class it instantiates, when it arrived, and its executed timeline in
// absolute stream time (item times share one clock across all
// inferences).
type StreamInference struct {
	Model    int
	Arrival  int64
	Timeline *schedule.Timeline
}

// StreamOptions configures the stream checker.
type StreamOptions struct {
	// MaxInFlight is the inter-inference admission gate the stream was
	// scheduled under: inference j of a model (in per-model issue
	// order) may not start before inference j-MaxInFlight of the same
	// model has fully completed. 0 means no gate.
	MaxInFlight int
}

// Stream asserts the invariant set of a streamed multi-inference
// execution: every per-inference timeline individually satisfies the
// full single-inference invariant set (dependency order over the CSR,
// replica exclusivity, window admission, Stage III/IV cycle
// conservation, makespan consistency), and across inferences
//
//   - no inference executes a set before its arrival time,
//   - replica PE groups that share a physical crossbar — the same
//     group instantiated by concurrent inferences of one model, or
//     overlapping groups of different models on a shared pool — never
//     execute two sets at once, and
//   - the inter-inference admission gate holds (see StreamOptions).
//
// It returns nil for a legal stream and a *Violation describing the
// first broken invariant otherwise. Like Timeline, the checker shares
// no code with the stream scheduler that produces these executions.
func Stream(models []StreamModel, infs []StreamInference, opt StreamOptions) error {
	if len(models) == 0 {
		return violation(KindShape, -1, -1, "stream has no models")
	}
	for mi, m := range models {
		if m.Graph == nil || m.Graph.CSR == nil || m.Mapping == nil || m.Policy == nil {
			return violation(KindShape, -1, -1, "model %d has a nil graph, CSR, mapping, or policy", mi)
		}
		if m.PEBase < 0 {
			return violation(KindShape, -1, -1, "model %d has negative PE base %d", mi, m.PEBase)
		}
	}
	for ji, inf := range infs {
		if inf.Model < 0 || inf.Model >= len(models) {
			return violation(KindShape, -1, -1, "inference %d names model %d of %d", ji, inf.Model, len(models))
		}
		if inf.Arrival < 0 {
			return violation(KindShape, -1, -1, "inference %d has negative arrival %d", ji, inf.Arrival)
		}
		if inf.Timeline == nil {
			return violation(KindShape, -1, -1, "inference %d has no timeline", ji)
		}
		m := models[inf.Model]
		if err := Timeline(m.Mapping, m.Graph, m.Policy, inf.Timeline, Options{EdgeCost: m.Edge}); err != nil {
			return fmt.Errorf("check: inference %d (model %d): %w", ji, inf.Model, err)
		}
		for _, it := range inf.Timeline.Items {
			if it.Start < inf.Arrival {
				return &Violation{Kind: KindArrival, Layer: it.Layer, Set: it.Set,
					Msg: fmt.Sprintf("inference %d starts %d before its arrival %d", ji, it.Start, inf.Arrival)}
			}
		}
	}
	if err := checkStreamExclusivity(models, infs); err != nil {
		return err
	}
	return checkStreamGate(models, infs, opt.MaxInFlight)
}

// checkStreamExclusivity asserts per-crossbar mutual exclusion across
// all inferences of the stream: the busy intervals of every replica PE
// group — aggregated over the inferences instantiating it — must not
// overlap, and neither may groups of different models that share a
// physical PE on a common pool.
func checkStreamExclusivity(models []StreamModel, infs []StreamInference) error {
	// Number the replica PE groups globally: group id = grpBase[model]
	// + local replica index (layer-major, as in the single-timeline
	// checker).
	grpBase := make([]int, len(models)+1)
	for mi, m := range models {
		n := 0
		for _, g := range m.Mapping.Groups {
			n += g.Dup
		}
		grpBase[mi+1] = grpBase[mi] + n
	}
	total := grpBase[len(models)]
	spans := make([][]span, total)
	for _, inf := range infs {
		m := models[inf.Model]
		gid := grpBase[inf.Model]
		for li, g := range m.Mapping.Groups {
			for r := 0; r < g.Dup; r++ {
				for _, it := range inf.Timeline.ItemsOf(li) {
					if it.Replica == r && it.End > it.Start {
						spans[gid] = append(spans[gid], span{start: it.Start, end: it.End, li: li, si: it.Set})
					}
				}
				gid++
			}
		}
	}
	// Each group serializes across the inferences sharing it.
	for _, ss := range spans {
		if err := sweepSpans(ss); err != nil {
			return err
		}
	}
	// Groups sharing any physical PE (cross-model pools) must be
	// mutually exclusive as a whole.
	owners := map[int][]int{} // global PE index -> group ids
	for mi, m := range models {
		gid := grpBase[mi]
		for _, g := range m.Mapping.Groups {
			for r := 0; r < g.Dup; r++ {
				for _, pe := range g.ReplicaPEs(r) {
					owners[m.PEBase+pe] = append(owners[m.PEBase+pe], gid)
				}
				gid++
			}
		}
	}
	checked := map[string]bool{}
	// Deterministic iteration keeps the first reported violation stable.
	pes := make([]int, 0, len(owners))
	for pe := range owners {
		pes = append(pes, pe)
	}
	sort.Ints(pes)
	for _, pe := range pes {
		os := owners[pe]
		if len(os) < 2 {
			continue
		}
		key := fmt.Sprint(os)
		if checked[key] {
			continue
		}
		checked[key] = true
		var joint []span
		for _, gid := range os {
			joint = append(joint, spans[gid]...)
		}
		if err := sweepSpans(joint); err != nil {
			return err
		}
	}
	return nil
}

// checkStreamGate asserts the inter-inference admission rule: with a
// gate of G, inference j of a model (per-model issue order) starts only
// after inference j-G of the same model has fully completed.
func checkStreamGate(models []StreamModel, infs []StreamInference, gate int) error {
	if gate <= 0 {
		return nil
	}
	perModel := make([][]int, len(models))
	for ji, inf := range infs {
		perModel[inf.Model] = append(perModel[inf.Model], ji)
	}
	for _, jobs := range perModel {
		for jm, ji := range jobs {
			if jm < gate {
				continue
			}
			prev := infs[jobs[jm-gate]].Timeline
			var prevEnd int64
			for _, it := range prev.Items {
				if it.End > prevEnd {
					prevEnd = it.End
				}
			}
			for _, it := range infs[ji].Timeline.Items {
				if it.Start < prevEnd {
					return &Violation{Kind: KindGate, Layer: it.Layer, Set: it.Set,
						Msg: fmt.Sprintf("inference %d starts %d before inference %d complete at %d (gate %d)",
							ji, it.Start, jobs[jm-gate], prevEnd, gate)}
				}
			}
		}
	}
	return nil
}
