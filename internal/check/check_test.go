package check_test

import (
	"errors"
	"testing"

	"clsacim/internal/check"
	"clsacim/internal/cim"
	"clsacim/internal/deps"
	"clsacim/internal/frontend"
	"clsacim/internal/im2col"
	"clsacim/internal/mapping"
	"clsacim/internal/models"
	"clsacim/internal/schedule"
	"clsacim/internal/sets"
	"clsacim/internal/sim"
)

type compiled struct {
	m    *mapping.Mapping
	dg   *deps.Graph
	arch cim.Config
}

// compile runs the shape-only compilation pipeline for one builtin
// model at coarse granularity.
func compile(t *testing.T, id models.ID, extra, targetSets int) compiled {
	t.Helper()
	g := models.MustBuild(id, models.Options{})
	if _, err := frontend.Canonicalize(g, frontend.Options{}); err != nil {
		t.Fatal(err)
	}
	plan, err := mapping.Analyze(g, im2col.PEDims{Rows: 256, Cols: 256})
	if err != nil {
		t.Fatal(err)
	}
	solver := mapping.SolverNone
	if extra > 0 {
		solver = mapping.SolverDP
	}
	sol, err := mapping.Solve(plan, plan.MinPEs+extra, solver)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.Apply(g, plan, sol, plan.MinPEs+extra)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sets.Determine(g, m, sets.Options{TargetSets: targetSets})
	if err != nil {
		t.Fatal(err)
	}
	dg, err := deps.Build(g, sp)
	if err != nil {
		t.Fatal(err)
	}
	arch := cim.Default()
	arch.NumPEs = plan.MinPEs + extra
	return compiled{m: m, dg: dg, arch: arch}
}

func policies() []schedule.Policy {
	return []schedule.Policy{
		schedule.LayerByLayer,
		schedule.Windowed(2),
		schedule.Windowed(4),
		schedule.CrossLayer,
	}
}

// copyTimeline deep-copies the mutable parts of a timeline so
// corruption tests do not alias the original.
func copyTimeline(tl *schedule.Timeline) *schedule.Timeline {
	c := *tl
	c.Items = append([]schedule.Item(nil), tl.Items...)
	c.LayerActive = append([]int64(nil), tl.LayerActive...)
	c.ReplicaActive = make([][]int64, len(tl.ReplicaActive))
	for i, r := range tl.ReplicaActive {
		c.ReplicaActive[i] = append([]int64(nil), r...)
	}
	return &c
}

// TestTimelinePassesEveryPolicyEveryModel: both engines' timelines for
// every builtin model under every policy family member must satisfy the
// full invariant set.
func TestTimelinePassesEveryPolicyEveryModel(t *testing.T) {
	heavy := map[models.ID]bool{
		models.VGG19: true, models.ResNet50: true,
		models.ResNet101: true, models.ResNet152: true,
	}
	for _, id := range models.SortedIDs() {
		id := id
		if testing.Short() && heavy[id] {
			continue
		}
		t.Run(string(id), func(t *testing.T) {
			t.Parallel()
			c := compile(t, id, 6, 12)
			for _, p := range policies() {
				tl, err := schedule.Schedule(c.dg, p, schedule.Options{})
				if err != nil {
					t.Fatalf("%s: %v", p.Name(), err)
				}
				if err := check.Timeline(c.m, c.dg, p, tl, check.Options{}); err != nil {
					t.Fatalf("%s: scheduled timeline rejected: %v", p.Name(), err)
				}
				res, err := sim.Run(c.arch, c.dg, c.m, p, nil)
				if err != nil {
					t.Fatalf("%s: sim: %v", p.Name(), err)
				}
				if err := check.Timeline(c.m, c.dg, p, res.Timeline, check.Options{}); err != nil {
					t.Fatalf("%s: simulated timeline rejected: %v", p.Name(), err)
				}
				if !tl.Equal(res.Timeline) {
					t.Fatalf("%s: schedule and sim timelines differ", p.Name())
				}
			}
		})
	}
}

// TestTimelineWithEdgeCostPasses: the checker accepts timelines produced
// under a dependency-edge cost when given the same cost model, and
// rejects them under a larger one.
func TestTimelineWithEdgeCostPasses(t *testing.T) {
	c := compile(t, models.TinyBranchNet, 4, 9)
	cost := func(pred deps.SetRef, toLayer int) int64 { return 3 }
	tl, err := schedule.Schedule(c.dg, schedule.CrossLayer, schedule.Options{EdgeCost: cost})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.Timeline(c.m, c.dg, schedule.CrossLayer, tl, check.Options{EdgeCost: cost}); err != nil {
		t.Fatalf("timeline rejected under its own cost model: %v", err)
	}
	bigger := func(pred deps.SetRef, toLayer int) int64 { return 10 }
	err = check.Timeline(c.m, c.dg, schedule.CrossLayer, tl, check.Options{EdgeCost: bigger})
	assertKind(t, err, check.KindDependency)
}

func assertKind(t *testing.T, err error, want check.Kind) {
	t.Helper()
	if err == nil {
		t.Fatalf("corruption not detected, want %s violation", want)
	}
	var v *check.Violation
	if !errors.As(err, &v) {
		t.Fatalf("error %v is not a *check.Violation", err)
	}
	if v.Kind != want {
		t.Fatalf("violation kind = %s (%v), want %s", v.Kind, err, want)
	}
}

// TestTimelineRejectsCorruption: hand-corrupted copies of a valid
// timeline must be rejected with the right violation kind.
func TestTimelineRejectsCorruption(t *testing.T) {
	c := compile(t, models.TinyBranchNet, 4, 9)
	csr := c.dg.CSR

	schedOf := func(p schedule.Policy) *schedule.Timeline {
		tl, err := schedule.Schedule(c.dg, p, schedule.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return tl
	}

	t.Run("dependency swap", func(t *testing.T) {
		tl := copyTimeline(schedOf(schedule.CrossLayer))
		// Pull a dependent set to before its latest predecessor's end.
		for id := 0; id < csr.NumSets(); id++ {
			var need int64 = -1
			for e := csr.PredOff[id]; e < csr.PredOff[id+1]; e++ {
				if end := tl.Items[csr.Pred[e]].End; end > need {
					need = end
				}
			}
			if need <= 0 {
				continue
			}
			d := tl.Items[id].End - tl.Items[id].Start
			tl.Items[id].Start = need - 1
			tl.Items[id].End = need - 1 + d
			assertKind(t, check.Timeline(c.m, c.dg, schedule.CrossLayer, tl, check.Options{}), check.KindDependency)
			return
		}
		t.Fatal("no dependent set found to corrupt")
	})

	t.Run("crossbar overlap", func(t *testing.T) {
		tl := copyTimeline(schedOf(schedule.LayerByLayer))
		// Overlap the first layer's second set onto its first on the
		// same replica (layer 0 has no dependencies and no window gate,
		// so exclusivity is the first invariant to break).
		items := tl.ItemsOf(0)
		for si := 1; si < len(items); si++ {
			first := tl.At(0, 0)
			it := tl.At(0, si)
			if it.Replica != first.Replica {
				continue
			}
			d := it.End - it.Start
			it.Start = first.Start
			it.End = first.Start + d
			assertKind(t, check.Timeline(c.m, c.dg, schedule.LayerByLayer, tl, check.Options{}), check.KindExclusivity)
			return
		}
		t.Skip("layer 0 has no two sets on one replica at this granularity")
	})

	t.Run("window violation", func(t *testing.T) {
		tl := copyTimeline(schedOf(schedule.LayerByLayer))
		// Find a set whose dependencies finished strictly before its
		// layer's admission gate, and start it inside that gap: legal by
		// data dependencies, illegal under the window-1 admission rule.
		layerEnd := make([]int64, tl.NumLayers())
		for _, it := range tl.Items {
			if it.End > layerEnd[it.Layer] {
				layerEnd[it.Layer] = it.End
			}
		}
		var gate int64
		for li := 1; li < tl.NumLayers(); li++ {
			if e := layerEnd[li-1]; e > gate {
				gate = e
			}
			for _, it := range tl.ItemsOf(li) {
				id := csr.ID(li, it.Set)
				var need int64
				for e := csr.PredOff[id]; e < csr.PredOff[id+1]; e++ {
					if end := tl.Items[csr.Pred[e]].End; end > need {
						need = end
					}
				}
				if need >= gate || it.Start != gate || it.Set != 0 {
					continue
				}
				d := it.End - it.Start
				mut := tl.At(li, it.Set)
				mut.Start = gate - 1
				mut.End = gate - 1 + d
				assertKind(t, check.Timeline(c.m, c.dg, schedule.LayerByLayer, tl, check.Options{}), check.KindWindow)
				return
			}
		}
		t.Fatal("no window-gated set found to corrupt")
	})

	t.Run("active cycles tampered", func(t *testing.T) {
		tl := copyTimeline(schedOf(schedule.CrossLayer))
		tl.LayerActive[0]++
		assertKind(t, check.Timeline(c.m, c.dg, schedule.CrossLayer, tl, check.Options{}), check.KindConservation)
	})

	t.Run("replica accounting tampered", func(t *testing.T) {
		tl := copyTimeline(schedOf(schedule.CrossLayer))
		tl.ReplicaActive[0][0]++
		assertKind(t, check.Timeline(c.m, c.dg, schedule.CrossLayer, tl, check.Options{}), check.KindConservation)
	})

	t.Run("duration stretched", func(t *testing.T) {
		tl := copyTimeline(schedOf(schedule.CrossLayer))
		// Stretch the very last set: no successors, nothing after it on
		// its replica, so only the Stage I cycle count gives it away.
		last := 0
		for id := range tl.Items {
			if tl.Items[id].End > tl.Items[last].End {
				last = id
			}
		}
		tl.Items[last].End++
		assertKind(t, check.Timeline(c.m, c.dg, schedule.CrossLayer, tl, check.Options{}), check.KindConservation)
	})

	t.Run("makespan tampered", func(t *testing.T) {
		tl := copyTimeline(schedOf(schedule.CrossLayer))
		tl.Makespan++
		assertKind(t, check.Timeline(c.m, c.dg, schedule.CrossLayer, tl, check.Options{}), check.KindMakespan)
	})

	t.Run("replica out of range", func(t *testing.T) {
		tl := copyTimeline(schedOf(schedule.CrossLayer))
		tl.Items[0].Replica = c.dg.Plan.Layers[0].Group.Dup
		assertKind(t, check.Timeline(c.m, c.dg, schedule.CrossLayer, tl, check.Options{}), check.KindShape)
	})

	t.Run("item mislabeled", func(t *testing.T) {
		tl := copyTimeline(schedOf(schedule.CrossLayer))
		tl.Items[0].Set = 1
		assertKind(t, check.Timeline(c.m, c.dg, schedule.CrossLayer, tl, check.Options{}), check.KindShape)
	})

	t.Run("nil policy", func(t *testing.T) {
		tl := copyTimeline(schedOf(schedule.CrossLayer))
		assertKind(t, check.Timeline(c.m, c.dg, nil, tl, check.Options{}), check.KindShape)
	})
}

// TestViolationMessage: violations carry their location and read as one
// line.
func TestViolationMessage(t *testing.T) {
	v := &check.Violation{Kind: check.KindDependency, Layer: 3, Set: 7, Msg: "starts early"}
	if got := v.Error(); got != "check: dependency violation at L3/S7: starts early" {
		t.Errorf("Error() = %q", got)
	}
	v = &check.Violation{Kind: check.KindMakespan, Layer: -1, Set: -1, Msg: "off by one"}
	if got := v.Error(); got != "check: makespan violation: off by one" {
		t.Errorf("Error() = %q", got)
	}
}
