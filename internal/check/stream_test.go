package check_test

import (
	"errors"
	"testing"

	"clsacim/internal/check"
	"clsacim/internal/models"
	"clsacim/internal/schedule"
)

// shiftTimeline returns a deep copy of tl with every item (and the
// makespan) translated by dt cycles — the timeline of a later inference
// of the same compilation in absolute stream time.
func shiftTimeline(tl *schedule.Timeline, dt int64) *schedule.Timeline {
	c := copyTimeline(tl)
	for i := range c.Items {
		c.Items[i].Start += dt
		c.Items[i].End += dt
	}
	c.Makespan += dt
	return c
}

// serialStream builds a trivially legal stream: n inferences of one
// compilation executed strictly back to back, each arriving exactly
// when the previous one finishes.
func serialStream(t *testing.T, c compiled, p schedule.Policy, n int) ([]check.StreamModel, []check.StreamInference) {
	t.Helper()
	tl, err := schedule.Schedule(c.dg, p, schedule.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ms := []check.StreamModel{{Graph: c.dg, Mapping: c.m, Policy: p}}
	var infs []check.StreamInference
	for j := 0; j < n; j++ {
		dt := int64(j) * tl.Makespan
		infs = append(infs, check.StreamInference{Arrival: dt, Timeline: shiftTimeline(tl, dt)})
	}
	return ms, infs
}

func TestStreamAcceptsSerialExecution(t *testing.T) {
	c := compile(t, models.TinyYOLOv4, 0, 8)
	for _, p := range policies() {
		ms, infs := serialStream(t, c, p, 3)
		if err := check.Stream(ms, infs, check.StreamOptions{}); err != nil {
			t.Fatalf("%s: legal serial stream rejected: %v", p.Name(), err)
		}
		// A serial stream trivially satisfies any gate depth.
		if err := check.Stream(ms, infs, check.StreamOptions{MaxInFlight: 1}); err != nil {
			t.Fatalf("%s: gate 1 rejected a serial stream: %v", p.Name(), err)
		}
	}
}

func TestStreamAcceptsDisjointPools(t *testing.T) {
	// Two different models on disjoint PE pools may overlap freely in
	// time.
	a := compile(t, models.TinyYOLOv4, 0, 8)
	b := compile(t, models.TinyYOLOv3, 0, 8)
	p := schedule.CrossLayer
	ta, err := schedule.Schedule(a.dg, p, schedule.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := schedule.Schedule(b.dg, p, schedule.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ms := []check.StreamModel{
		{Graph: a.dg, Mapping: a.m, Policy: p},
		{Graph: b.dg, Mapping: b.m, Policy: p, PEBase: a.m.F},
	}
	infs := []check.StreamInference{
		{Model: 0, Timeline: ta},
		{Model: 1, Timeline: tb},
	}
	if err := check.Stream(ms, infs, check.StreamOptions{}); err != nil {
		t.Fatalf("disjoint pools rejected: %v", err)
	}
	// The same two timelines on one shared pool collide wherever the
	// mappings share a PE.
	ms[1].PEBase = 0
	err = check.Stream(ms, infs, check.StreamOptions{})
	var v *check.Violation
	if !errors.As(err, &v) || v.Kind != check.KindExclusivity {
		t.Fatalf("shared pool overlap: got %v, want %s violation", err, check.KindExclusivity)
	}
}

func TestStreamRejectsOverlapOnSharedReplicas(t *testing.T) {
	// Two concurrent inferences of the same model share every replica
	// PE group; unshifted copies overlap on all of them.
	c := compile(t, models.TinyYOLOv4, 0, 8)
	p := schedule.CrossLayer
	ms, infs := serialStream(t, c, p, 2)
	infs[1] = check.StreamInference{Arrival: 0, Timeline: shiftTimeline(infs[0].Timeline, 0)}
	err := check.Stream(ms, infs, check.StreamOptions{})
	var v *check.Violation
	if !errors.As(err, &v) || v.Kind != check.KindExclusivity {
		t.Fatalf("got %v, want %s violation", err, check.KindExclusivity)
	}
}

func TestStreamRejectsStartBeforeArrival(t *testing.T) {
	c := compile(t, models.TinyYOLOv4, 0, 8)
	ms, infs := serialStream(t, c, schedule.CrossLayer, 1)
	infs[0].Arrival = 10 // the timeline starts at 0
	err := check.Stream(ms, infs, check.StreamOptions{})
	var v *check.Violation
	if !errors.As(err, &v) || v.Kind != check.KindArrival {
		t.Fatalf("got %v, want %s violation", err, check.KindArrival)
	}
}

func TestStreamGate(t *testing.T) {
	// Build a genuinely pipelined two-inference stream with no replica
	// overlap: under lbl each layer occupies one contiguous busy
	// interval, so shifting the whole timeline by the longest layer
	// duration slides every interval past its twin. The result is legal
	// without a gate (and proves the checker accepts cross-inference
	// overlap), but inference 1 starts before inference 0 completes, so
	// a gate of 1 must trip — and trip as a gate violation, not as an
	// exclusivity one.
	c := compile(t, models.TinyYOLOv4, 0, 8)
	p := schedule.LayerByLayer
	tl, err := schedule.Schedule(c.dg, p, schedule.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var dt int64
	for li := 0; li < tl.NumLayers(); li++ {
		if d := tl.EndOf(li) - tl.StartOf(li); d > dt {
			dt = d
		}
	}
	if dt >= tl.Makespan {
		t.Fatalf("degenerate fixture: longest layer %d spans the whole makespan %d", dt, tl.Makespan)
	}
	ms := []check.StreamModel{{Graph: c.dg, Mapping: c.m, Policy: p}}
	infs := []check.StreamInference{
		{Timeline: copyTimeline(tl)},
		{Arrival: dt, Timeline: shiftTimeline(tl, dt)},
	}
	if err := check.Stream(ms, infs, check.StreamOptions{}); err != nil {
		t.Fatalf("legal pipelined stream rejected: %v", err)
	}
	err = check.Stream(ms, infs, check.StreamOptions{MaxInFlight: 1})
	var v *check.Violation
	if !errors.As(err, &v) || v.Kind != check.KindGate {
		t.Fatalf("got %v, want %s violation", err, check.KindGate)
	}
}
