package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestWriteDocFile: docs land as BENCH_<experiment>.json, carry the
// schema, and round-trip through encoding/json.
func TestWriteDocFile(t *testing.T) {
	dir := t.TempDir()
	doc := Doc{
		Experiment: "fig6c",
		ElapsedMS:  12,
		Points: []Point{{
			Model: "tinyyolov4", Mapping: "wdup+16", X: 16, Sched: "xinf",
			Speedup: 4.93, Utilization: 0.42, Makespan: 123456, UtGain: 5.1,
		}},
	}
	if err := WriteDocFile(dir, doc); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_fig6c.json"))
	if err != nil {
		t.Fatal(err)
	}
	var back Doc
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema {
		t.Errorf("schema = %q, want %q (stamped by WriteDoc)", back.Schema, Schema)
	}
	if len(back.Points) != 1 || back.Points[0].Makespan != 123456 || back.Points[0].Sched != "xinf" {
		t.Errorf("points did not round-trip: %+v", back.Points)
	}
	if back.TableI != nil || back.Ablations != nil {
		t.Errorf("empty sections serialized: %+v", back)
	}
}

// TestWriteDocFileRequiresName: a doc without an experiment name cannot
// produce a file name and must fail.
func TestWriteDocFileRequiresName(t *testing.T) {
	if err := WriteDocFile(t.TempDir(), Doc{}); err == nil {
		t.Fatal("nameless doc accepted")
	}
}

// TestRunAllAblations: the aggregate runner covers every study exactly
// as the printed report does.
func TestRunAllAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full ablation sweep; run without -short")
	}
	points, err := coarse().RunAllAblations()
	if err != nil {
		t.Fatal(err)
	}
	studies := map[string]bool{}
	for _, p := range points {
		studies[p.Study] = true
	}
	for _, want := range []string{"granularity", "solver", "noc", "crossbar", "gpeu", "virtualization", "window"} {
		if !studies[want] {
			t.Errorf("study %q missing from RunAllAblations (have %v)", want, studies)
		}
	}
}
