// Package bench is the evaluation harness: it regenerates every table
// and figure of the paper's evaluation section (§V) — Table I, Table II,
// Fig. 6a/6b/6c, Fig. 7a/7b — plus the ablation studies listed in
// DESIGN.md. Each experiment has a data-returning Run function (used by
// tests and the Go benchmarks in bench_test.go) and a printing wrapper
// (used by cmd/paperbench).
package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	clsacim "clsacim"
)

// XValues are the extra-PE sweeps of the paper's Fig. 7 ("wdup+x").
var XValues = []int{4, 8, 16, 32}

// Benchmarks are the evaluation networks of Table II, in table order.
var Benchmarks = []string{"tinyyolov3", "vgg16", "vgg19", "resnet50", "resnet101", "resnet152"}

// Harness runs every experiment through one shared clsacim.Engine, so
// sweeps reuse compilations (and in particular the layer-by-layer
// reference) instead of redoing them for every point.
type Harness struct {
	// Base is applied to every configuration before per-point overrides
	// (use it to pin granularity, NoC costs, and so on).
	Base clsacim.Config

	eng       *clsacim.Engine
	baselines map[string]*clsacim.Report
}

// NewHarness returns a harness with the given base configuration.
func NewHarness(base clsacim.Config) *Harness {
	return &Harness{
		Base:      base,
		eng:       clsacim.MustNew(clsacim.WithConfig(base)),
		baselines: make(map[string]*clsacim.Report),
	}
}

// Engine exposes the harness's shared engine (for Stats inspection and
// direct requests).
func (h *Harness) Engine() *clsacim.Engine { return h.eng }

// compile runs a model/config pair through the engine's compile cache.
func (h *Harness) compile(model string, cfg clsacim.Config) (*clsacim.Compiled, error) {
	return h.eng.Compile(context.Background(), clsacim.Request{Model: model, Config: &cfg})
}

// Baseline returns the layer-by-layer, no-duplication, x=0 reference for
// a model. The engine caches the compilation; the harness additionally
// caches the scheduled report per model.
func (h *Harness) Baseline(name string) (*clsacim.Report, error) {
	if r, ok := h.baselines[name]; ok {
		return r, nil
	}
	cfg := h.Base
	cfg.ExtraPEs = 0
	cfg.TotalPEs = 0
	cfg.WeightDuplication = false
	rep, err := h.eng.Schedule(context.Background(), clsacim.Request{
		Model: name, Mode: clsacim.ModeLayerByLayer, Config: &cfg,
	})
	if err != nil {
		return nil, err
	}
	h.baselines[name] = rep
	return rep, nil
}

// Point is one measured configuration.
type Point struct {
	Model string `json:"model"`
	// Mapping is "-" (no duplication) or "wdup+<x>".
	Mapping string `json:"mapping"`
	X       int    `json:"x"`
	Sched   string `json:"sched"` // canonical mode name: "lbl", "x<K>", or "xinf"
	// Speedup is relative to the layer-by-layer x=0 baseline.
	Speedup     float64 `json:"speedup"`
	Utilization float64 `json:"utilization"`
	Makespan    int64   `json:"makespan_cycles"`
	// UtGain is Utilization / baseline utilization.
	UtGain float64 `json:"ut_gain"`
}

// Label renders the paper's configuration naming, e.g. "wdup+16 xinf".
func (p Point) Label() string {
	if p.Mapping == "-" {
		return p.Sched
	}
	return p.Mapping + " " + p.Sched
}

// Run measures one configuration.
func (h *Harness) Run(model string, x int, wdup bool, mode clsacim.ScheduleMode) (Point, error) {
	cfg := h.Base
	cfg.ExtraPEs = x
	cfg.WeightDuplication = wdup
	ev, err := h.eng.Evaluate(context.Background(), clsacim.Request{
		Model: model, Mode: mode, Config: &cfg,
	})
	if err != nil {
		return Point{}, err
	}
	p := Point{
		Model:       model,
		Mapping:     "-",
		X:           x,
		Sched:       mode.Name(),
		Speedup:     ev.Speedup,
		Utilization: ev.Result.Utilization,
		Makespan:    ev.Result.MakespanCycles,
		UtGain:      ev.UtilizationGain,
	}
	if wdup {
		p.Mapping = fmt.Sprintf("wdup+%d", x)
	}
	return p, nil
}

// table starts an aligned table writer.
func table(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// WriteCSV emits points as CSV with a header row.
func WriteCSV(w io.Writer, points []Point) error {
	if _, err := fmt.Fprintln(w, "model,mapping,x,sched,speedup,utilization,makespan_cycles"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%s,%.4f,%.6f,%d\n",
			p.Model, p.Mapping, p.X, p.Sched, p.Speedup, p.Utilization, p.Makespan); err != nil {
			return err
		}
	}
	return nil
}

// SortPoints orders points by (model, mapping, sched, x) for stable
// output.
func SortPoints(points []Point) {
	sort.Slice(points, func(i, j int) bool {
		a, b := points[i], points[j]
		if a.Model != b.Model {
			return a.Model < b.Model
		}
		if a.Sched != b.Sched {
			return a.Sched < b.Sched
		}
		if a.Mapping != b.Mapping {
			return a.Mapping < b.Mapping
		}
		return a.X < b.X
	})
}
