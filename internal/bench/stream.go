package bench

import (
	"context"
	"fmt"
	"io"

	clsacim "clsacim"
)

// StreamPoint is one measured streaming scenario: a multi-inference
// workload served over the simulated fabric, with the back-to-back
// serial rate of the same request mix as the reference.
type StreamPoint struct {
	Scenario string   `json:"scenario"`
	Models   []string `json:"models"`
	// Mapping is "-" (no duplication) or "wdup+<x>", as in Point.
	Mapping string `json:"mapping"`
	Mode    string `json:"mode"`
	// Arrival is the arrival-process kind ("closed", "poisson",
	// "bursty"); Concurrency is the closed-loop population.
	Arrival     string `json:"arrival"`
	Concurrency int    `json:"concurrency,omitempty"`
	SharedPool  bool   `json:"shared_pool,omitempty"`
	Inferences  int    `json:"inferences"`
	// MakespanCycles is the simulated time to drain the stream.
	MakespanCycles int64 `json:"makespan_cycles"`
	// ThroughputPerSec is the steady-state serving rate;
	// SingleRatePerSec is the serve-one-at-a-time rate of the same mix
	// (1/makespan aggregated over the served jobs), and Gain their
	// ratio — the pipelining benefit.
	ThroughputPerSec float64 `json:"throughput_per_sec"`
	SingleRatePerSec float64 `json:"single_rate_per_sec"`
	Gain             float64 `json:"gain"`
	P50Nanos         float64 `json:"p50_nanos"`
	P99Nanos         float64 `json:"p99_nanos"`
	PEUtilization    float64 `json:"pe_utilization"`
}

// StreamScenarios are the streaming workloads of the BENCH_stream
// experiment: a closed-loop concurrency sweep establishing how deep the
// fabric pipelines, one open-loop Poisson point, and a shared-pool
// two-model co-scheduling point. The sweep uses the paper's weight
// duplication (wdup+32 single model, wdup+16 shared): without
// duplication the dominant layer's single replica is the flow-shop
// bottleneck and streamed throughput stays at 1/makespan; duplication
// spreads that stage, which is what lets back-to-back inferences
// pipeline. Rates for the open-loop point are
// derived from the measured single-inference rate, so the scenario list
// stays meaningful across granularities.
var StreamScenarios = []struct {
	Name        string
	Models      []string
	X           int
	Wdup        bool
	Arrival     string
	Concurrency int
	Shared      bool
}{
	{"closed-c1", []string{"tinyyolov4"}, 32, true, "closed", 1, false},
	{"closed-c2", []string{"tinyyolov4"}, 32, true, "closed", 2, false},
	{"closed-c4", []string{"tinyyolov4"}, 32, true, "closed", 4, false},
	{"closed-c8", []string{"tinyyolov4"}, 32, true, "closed", 8, false},
	{"poisson-2x", []string{"tinyyolov4"}, 32, true, "poisson", 0, false},
	{"shared-2model", []string{"tinyyolov4", "tinyyolov3"}, 16, true, "closed", 4, true},
}

// streamInferences is the per-scenario stream length: long enough for
// the pipeline to reach steady state, short enough that the full sweep
// stays a seconds-scale experiment at finest granularity.
const streamInferences = 16

// RunStream measures every StreamScenarios entry under xinf scheduling.
func (h *Harness) RunStream() ([]StreamPoint, error) {
	var out []StreamPoint
	// The single-inference rate anchors the open-loop arrival rate; it
	// comes from the first scenario's result rather than a separate run.
	var singleRate float64
	for _, sc := range StreamScenarios {
		req := clsacim.StreamRequest{
			Inferences: streamInferences,
			Mode:       clsacim.ModeCrossLayer,
			SharedPool: sc.Shared,
		}
		for _, m := range sc.Models {
			req.Models = append(req.Models, clsacim.StreamModel{
				Model:             m,
				ExtraPEs:          sc.X,
				WeightDuplication: sc.Wdup,
				Config:            &h.Base,
			})
		}
		switch sc.Arrival {
		case "closed":
			req.Arrival = clsacim.ArrivalProcess{Kind: "closed", Concurrency: sc.Concurrency}
		case "poisson":
			if singleRate <= 0 {
				return nil, fmt.Errorf("bench: stream scenario %s needs a measured single rate first", sc.Name)
			}
			// Offered load at twice the serial capacity: the open loop
			// only keeps up because inferences pipeline.
			req.Arrival = clsacim.ArrivalProcess{Kind: "poisson", Seed: 42, RatePerSec: 2 * singleRate}
		default:
			return nil, fmt.Errorf("bench: stream scenario %s has unknown arrival %q", sc.Name, sc.Arrival)
		}
		res, err := h.eng.EvaluateStream(context.Background(), req)
		if err != nil {
			return nil, fmt.Errorf("stream %s: %w", sc.Name, err)
		}
		if singleRate == 0 && len(res.PerModel) > 0 {
			singleRate = res.PerModel[0].SingleRatePerSec
		}
		p := StreamPoint{
			Scenario:         sc.Name,
			Models:           sc.Models,
			Mapping:          "-",
			Mode:             clsacim.ModeCrossLayer.Name(),
			Arrival:          sc.Arrival,
			Concurrency:      sc.Concurrency,
			SharedPool:       sc.Shared,
			Inferences:       res.Inferences,
			MakespanCycles:   res.MakespanCycles,
			ThroughputPerSec: res.ThroughputPerSec,
			SingleRatePerSec: serialRate(res),
			P50Nanos:         res.Latency.P50Nanos,
			P99Nanos:         res.Latency.P99Nanos,
			PEUtilization:    res.PEUtilization,
		}
		if sc.Wdup {
			p.Mapping = fmt.Sprintf("wdup+%d", sc.X)
		}
		if p.SingleRatePerSec > 0 {
			p.Gain = p.ThroughputPerSec / p.SingleRatePerSec
		}
		out = append(out, p)
	}
	return out, nil
}

// serialRate is the serve-one-at-a-time rate of the mix a stream
// actually served: total jobs over the summed single-inference
// latencies. Throughput above this rate is pipelining gain.
func serialRate(res *clsacim.StreamResult) float64 {
	var serialNanos float64
	total := 0
	for _, pm := range res.PerModel {
		if pm.SingleRatePerSec <= 0 {
			return 0
		}
		serialNanos += float64(pm.Inferences) * 1e9 / pm.SingleRatePerSec
		total += pm.Inferences
	}
	if serialNanos <= 0 {
		return 0
	}
	return float64(total) / serialNanos * 1e9
}

// PrintStream runs and prints the streaming experiment.
func (h *Harness) PrintStream(w io.Writer) error {
	points, err := h.RunStream()
	if err != nil {
		return err
	}
	return PrintStreamPoints(w, points)
}

// PrintStreamPoints writes already-measured streaming points.
func PrintStreamPoints(w io.Writer, points []StreamPoint) error {
	fmt.Fprintln(w, "Stream: multi-inference serving under xinf — throughput vs the serial rate")
	tw := table(w)
	fmt.Fprintln(tw, "Scenario\tModels\tMapping\tArrival\tInferences\tThroughput (inf/s)\tSerial rate (inf/s)\tGain\tp99 (ms)\tPE util")
	for _, p := range points {
		models := ""
		for i, m := range p.Models {
			if i > 0 {
				models += "+"
			}
			models += m
		}
		arrival := p.Arrival
		if p.Arrival == "closed" {
			arrival = fmt.Sprintf("closed c=%d", p.Concurrency)
		}
		if p.SharedPool {
			arrival += " shared"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d\t%.1f\t%.1f\t%.2fx\t%.3f\t%.2f%%\n",
			p.Scenario, models, p.Mapping, arrival, p.Inferences,
			p.ThroughputPerSec, p.SingleRatePerSec, p.Gain, p.P99Nanos/1e6, p.PEUtilization*100)
	}
	return tw.Flush()
}
