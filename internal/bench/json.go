package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	clsacim "clsacim"
)

// Schema identifies the BENCH_*.json document format. Bump the suffix
// on any incompatible change so downstream trajectory tooling can
// branch on it.
const Schema = "clsacim-bench/v1"

// Doc is the machine-readable result of one paperbench experiment,
// written as BENCH_<experiment>.json. Exactly one of the payload
// sections (TableI, TableII, Points, Ablations, Stream, Solver) is
// populated, matching the experiment kind; the envelope fields are
// always present. See the
// README "Verification & fuzzing" section for the field-by-field format
// description.
type Doc struct {
	Schema     string `json:"schema"`
	Experiment string `json:"experiment"`
	// ElapsedMS is the wall-clock duration of the experiment in
	// milliseconds — the bench-trajectory signal for tracking
	// performance of the harness itself across revisions.
	ElapsedMS int64 `json:"elapsed_ms"`
	// PEmin accompanies TableI (paper Eq. 1 for the case-study model).
	PEmin     int             `json:"pe_min,omitempty"`
	TableI    []TableIRow     `json:"table1,omitempty"`
	TableII   []TableIIRow    `json:"table2,omitempty"`
	Points    []Point         `json:"points,omitempty"`
	Ablations []AblationPoint `json:"ablations,omitempty"`
	Stream    []StreamPoint   `json:"stream,omitempty"`
	Solver    []SolverPoint   `json:"solver,omitempty"`
	// Engine carries the compile-cache statistics accumulated so far in
	// the producing run.
	Engine *clsacim.Stats `json:"engine,omitempty"`
}

// DocFilename returns the canonical file name of an experiment's doc.
func DocFilename(experiment string) string {
	return "BENCH_" + experiment + ".json"
}

// WriteDoc encodes d as indented JSON.
func WriteDoc(w io.Writer, d Doc) error {
	if d.Schema == "" {
		d.Schema = Schema
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteDocFile writes d to dir/BENCH_<experiment>.json, creating dir if
// needed.
func WriteDocFile(dir string, d Doc) error {
	if d.Experiment == "" {
		return fmt.Errorf("bench: doc has no experiment name")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, DocFilename(d.Experiment))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteDoc(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
