package bench

import (
	"fmt"
	"io"

	clsacim "clsacim"
)

// SolverPoint is one measurement of the duplication-solver ablation:
// one (model, scheduling mode, solver) cell of the sweep.
type SolverPoint struct {
	Model  string `json:"model"`
	Sched  string `json:"sched"` // canonical mode name: "lbl", "x<K>", "xinf"
	Solver string `json:"solver"`
	// Makespan is the scheduled makespan under Sched.
	Makespan int64 `json:"makespan_cycles"`
	// Speedup is relative to the model's layer-by-layer x=0 baseline.
	Speedup float64 `json:"speedup"`
	Ut      float64 `json:"utilization"`
	// GainVsDP is dp's makespan over this solver's makespan for the same
	// (model, mode): above 1 means the solver schedules better than the
	// paper's exact proxy optimum.
	GainVsDP float64 `json:"gain_vs_dp"`
}

// SolverAblationSeed pins the search solver's RNG in the ablation so
// BENCH_solver.json is reproducible run to run.
const SolverAblationSeed = 1

// RunSolverAblation compares duplication solvers across models and
// scheduling modes under wdup+x: the paper's exact dp (the proxy
// optimum of sum(t_i/d_i)), the objective-blind uniform spread, the
// bottleneck-aware minmax extension, and the schedule-aware search
// solver scored by the coarse simulator. The search runs with its
// default budget and a fixed seed; dp is measured first in every
// (model, mode) cell so GainVsDP is defined for all rows. A nil models
// slice sweeps the case-study model plus the Table II zoo.
func (h *Harness) RunSolverAblation(models []string, x int) ([]SolverPoint, error) {
	if models == nil {
		models = append([]string{"tinyyolov4"}, Benchmarks...)
	}
	modes := []clsacim.ScheduleMode{clsacim.ModeLayerByLayer, clsacim.ModeWindow(4), clsacim.ModeCrossLayer}
	solvers := []string{"dp", "uniform", "minmax", "search"}
	var out []SolverPoint
	for _, model := range models {
		base, err := h.Baseline(model)
		if err != nil {
			return nil, err
		}
		for _, mode := range modes {
			var dpMakespan int64
			for _, solver := range solvers {
				cfg := h.Base
				cfg.ExtraPEs = x
				cfg.WeightDuplication = true
				cfg.Solver = solver
				if solver == "search" {
					cfg.SolverSeed = SolverAblationSeed
					cfg.SolverMode = mode.Name()
				}
				comp, err := h.compile(model, cfg)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/%s: %w", model, mode.Name(), solver, err)
				}
				rep, err := comp.Schedule(mode)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/%s: %w", model, mode.Name(), solver, err)
				}
				if solver == "dp" {
					dpMakespan = rep.MakespanCycles
				}
				p := SolverPoint{
					Model: model, Sched: mode.Name(), Solver: solver,
					Makespan: rep.MakespanCycles,
					Speedup:  float64(base.MakespanCycles) / float64(rep.MakespanCycles),
					Ut:       rep.Utilization,
				}
				if dpMakespan > 0 {
					p.GainVsDP = float64(dpMakespan) / float64(rep.MakespanCycles)
				}
				out = append(out, p)
			}
		}
	}
	return out, nil
}

// PrintSolverPoints writes the solver-ablation table.
func PrintSolverPoints(w io.Writer, x int, points []SolverPoint) error {
	fmt.Fprintf(w, "Duplication-solver ablation (wdup+%d; search: default budget, seed %d)\n", x, SolverAblationSeed)
	tw := table(w)
	fmt.Fprintln(tw, "Model\tSched\tSolver\tMakespan\tSpeedup\tUtilization\tvs dp")
	for _, p := range points {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%.2fx\t%.2f%%\t%.3fx\n",
			p.Model, p.Sched, p.Solver, p.Makespan, p.Speedup, p.Ut*100, p.GainVsDP)
	}
	return tw.Flush()
}
