package bench

import (
	"bytes"
	"strings"
	"testing"

	clsacim "clsacim"
)

// coarse returns a harness with coarse granularity to keep tests quick.
func coarse() *Harness {
	return NewHarness(clsacim.Config{TargetSets: 26})
}

func TestTableIData(t *testing.T) {
	rows, peMin, err := coarse().RunTableI()
	if err != nil {
		t.Fatal(err)
	}
	if peMin != 117 {
		t.Errorf("PEmin = %d, want 117", peMin)
	}
	if len(rows) != 21 {
		t.Errorf("rows = %d, want 21", len(rows))
	}
	byName := map[string]TableIRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	c16 := byName["conv2d_16"]
	if c16.IFM != [3]int{15, 15, 256} || c16.OFM != [3]int{13, 13, 512} ||
		c16.PEs != 18 || c16.Cycles != 169 {
		t.Errorf("conv2d_16 row = %+v", c16)
	}
}

func TestTableIIData(t *testing.T) {
	rows, err := coarse().RunTableII()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		"tinyyolov3": 142, "vgg16": 233, "vgg19": 314,
		"resnet50": 390, "resnet101": 679, "resnet152": 936,
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if want[r.Benchmark] != r.MinPEs {
			t.Errorf("%s MinPEs = %d, want %d", r.Benchmark, r.MinPEs, want[r.Benchmark])
		}
	}
}

func TestPrintersProduceTables(t *testing.T) {
	h := coarse()
	var buf bytes.Buffer
	if err := h.PrintTableI(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "conv2d_20") {
		t.Error("Table I output incomplete")
	}
	buf.Reset()
	if err := h.PrintTableII(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "resnet152") {
		t.Error("Table II output incomplete")
	}
	buf.Reset()
	if err := h.PrintFig6c(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "wdup+32 xinf") || !strings.Contains(out, "Speedup") {
		t.Error("Fig 6c output incomplete")
	}
}

func TestFig6GanttModes(t *testing.T) {
	h := coarse()
	var buf bytes.Buffer
	if err := h.PrintFig6(&buf, clsacim.ModeLayerByLayer, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig. 6a") || !strings.Contains(buf.String(), "Duplicated layers") {
		t.Error("Fig 6a output incomplete")
	}
	buf.Reset()
	if err := h.PrintFig6(&buf, clsacim.ModeCrossLayer, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig. 6b") {
		t.Error("Fig 6b output incomplete")
	}
}

func TestFig6cPoints(t *testing.T) {
	points, err := coarse().RunFig6c()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(Fig6cConfigs) {
		t.Fatalf("points = %d", len(points))
	}
	// The lbl reference point has speedup exactly 1.
	if points[0].Label() != "lbl" || points[0].Speedup != 1 {
		t.Errorf("reference point = %+v", points[0])
	}
	// Combined configurations dominate their components.
	byLabel := map[string]Point{}
	for _, p := range points {
		byLabel[p.Label()] = p
	}
	if byLabel["wdup+32 xinf"].Speedup <= byLabel["xinf"].Speedup {
		t.Error("combination does not beat pure xinf")
	}
	if byLabel["wdup+32 xinf"].Speedup <= byLabel["wdup+32 lbl"].Speedup {
		t.Error("combination does not beat pure wdup")
	}
}

func TestHarnessBaselineCaching(t *testing.T) {
	h := coarse()
	a, err := h.Baseline("tinyyolov4")
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Baseline("tinyyolov4")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("baseline not cached")
	}
}

func TestWriteCSV(t *testing.T) {
	points := []Point{{Model: "m", Mapping: "wdup+4", X: 4, Sched: "xinf",
		Speedup: 2.5, Utilization: 0.123, Makespan: 1000}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "model,mapping,x,sched,speedup,utilization,makespan_cycles\n") {
		t.Errorf("csv header wrong: %q", out)
	}
	if !strings.Contains(out, "m,wdup+4,4,xinf,2.5000,0.123000,1000") {
		t.Errorf("csv row wrong: %q", out)
	}
}

func TestSortPoints(t *testing.T) {
	pts := []Point{
		{Model: "b", Sched: "xinf", Mapping: "-", X: 0},
		{Model: "a", Sched: "xinf", Mapping: "wdup+8", X: 8},
		{Model: "a", Sched: "xinf", Mapping: "wdup+4", X: 4},
		{Model: "a", Sched: "lbl", Mapping: "-", X: 0},
	}
	SortPoints(pts)
	if pts[0].Model != "a" || pts[0].Sched != "lbl" {
		t.Errorf("sort order wrong: %+v", pts[0])
	}
	if pts[1].X != 4 || pts[2].X != 8 {
		t.Error("x ordering wrong")
	}
}

func TestAblationGranularityImproves(t *testing.T) {
	h := coarse()
	points, err := h.RunGranularity("tinyyolov4", []int{4, 416})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	if points[1].Speedup <= points[0].Speedup {
		t.Errorf("finer granularity not faster: %.2f vs %.2f", points[1].Speedup, points[0].Speedup)
	}
}

func TestAblationSolvers(t *testing.T) {
	points, err := coarse().RunSolvers("tinyyolov4", 16)
	if err != nil {
		t.Fatal(err)
	}
	byParam := map[string]AblationPoint{}
	for _, p := range points {
		byParam[p.Param] = p
	}
	if byParam["dp"].Speedup <= byParam["none"].Speedup {
		t.Error("dp duplication not faster than none under xinf")
	}
	if byParam["minmax"].Speedup < byParam["none"].Speedup {
		t.Error("minmax slower than none")
	}
}

func TestAblationNoCMonotone(t *testing.T) {
	points, err := coarse().RunNoCCost("tinyyolov4", []float64{0, 2, 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Makespan < points[i-1].Makespan {
			t.Errorf("NoC cost reduced makespan: %+v", points[i])
		}
	}
}

func TestAblationCrossbarSize(t *testing.T) {
	points, err := coarse().RunCrossbarSize("tinyyolov4", []int{128, 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	// Smaller crossbars need more PEs to store the network.
	if !strings.Contains(points[0].Param, "PEmin=") {
		t.Errorf("param missing PEmin: %q", points[0].Param)
	}
}

func TestStreamScenarios(t *testing.T) {
	h := coarse()
	points, err := h.RunStream()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(StreamScenarios) {
		t.Fatalf("got %d points for %d scenarios", len(points), len(StreamScenarios))
	}
	byName := make(map[string]StreamPoint)
	for _, p := range points {
		byName[p.Scenario] = p
		if p.Inferences != streamInferences {
			t.Errorf("%s served %d inferences, want %d", p.Scenario, p.Inferences, streamInferences)
		}
		if p.ThroughputPerSec <= 0 || p.SingleRatePerSec <= 0 {
			t.Errorf("%s has degenerate rates: %+v", p.Scenario, p)
		}
		if p.P99Nanos < p.P50Nanos {
			t.Errorf("%s latency percentiles out of order: %+v", p.Scenario, p)
		}
	}
	// A single-job closed loop is serial execution; deeper loops must
	// pipeline past the serial rate.
	if c1 := byName["closed-c1"]; c1.Gain > 1.001 {
		t.Errorf("closed-c1 gain %.3f, want ~1 (serial)", c1.Gain)
	}
	if c4 := byName["closed-c4"]; c4.Gain <= 1 {
		t.Errorf("closed-c4 gain %.3f, want > 1 (pipelined)", c4.Gain)
	}
	var buf bytes.Buffer
	if err := PrintStreamPoints(&buf, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "closed-c4") {
		t.Errorf("printed table missing scenarios:\n%s", buf.String())
	}
}
