package bench

import (
	"fmt"
	"io"

	clsacim "clsacim"
)

// AblationPoint is one measurement of a design-choice sweep.
type AblationPoint struct {
	Study    string  `json:"study"`
	Model    string  `json:"model"`
	Param    string  `json:"param"`
	Speedup  float64 `json:"speedup"`
	Ut       float64 `json:"utilization"`
	Makespan int64   `json:"makespan_cycles"`
}

// RunGranularity sweeps the Stage I set granularity (sets per layer) for
// one model under wdup+32 + xinf: the paper's "more sets = finer
// scheduling granularity" trade-off.
func (h *Harness) RunGranularity(model string, targets []int) ([]AblationPoint, error) {
	var out []AblationPoint
	base, err := h.Baseline(model)
	if err != nil {
		return nil, err
	}
	for _, t := range targets {
		cfg := h.Base
		cfg.ExtraPEs = 32
		cfg.WeightDuplication = true
		cfg.TargetSets = t
		comp, err := h.compile(model, cfg)
		if err != nil {
			return nil, err
		}
		rep, err := comp.Schedule(clsacim.ModeCrossLayer)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprint(t)
		if t >= 1<<29 {
			label = "finest"
		}
		out = append(out, AblationPoint{
			Study: "granularity", Model: model, Param: label,
			Speedup:  float64(base.MakespanCycles) / float64(rep.MakespanCycles),
			Ut:       rep.Utilization,
			Makespan: rep.MakespanCycles,
		})
	}
	return out, nil
}

// RunSolvers compares the duplication solvers (paper's Optimization
// Problem 1 solved exactly vs greedy vs the bottleneck-aware extension)
// under wdup+x + xinf.
func (h *Harness) RunSolvers(model string, x int) ([]AblationPoint, error) {
	var out []AblationPoint
	base, err := h.Baseline(model)
	if err != nil {
		return nil, err
	}
	for _, solver := range []string{"none", "greedy", "dp", "minmax"} {
		cfg := h.Base
		cfg.ExtraPEs = x
		cfg.WeightDuplication = solver != "none"
		cfg.Solver = solver
		comp, err := h.compile(model, cfg)
		if err != nil {
			return nil, err
		}
		rep, err := comp.Schedule(clsacim.ModeCrossLayer)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{
			Study: "solver", Model: model, Param: solver,
			Speedup:  float64(base.MakespanCycles) / float64(rep.MakespanCycles),
			Ut:       rep.Utilization,
			Makespan: rep.MakespanCycles,
		})
	}
	return out, nil
}

// RunNoCCost sweeps the per-hop NoC data-movement cost (paper §V-C
// names cost differentiation as future work; this quantifies the
// sensitivity of the headline speedups to it).
func (h *Harness) RunNoCCost(model string, hops []float64) ([]AblationPoint, error) {
	var out []AblationPoint
	base, err := h.Baseline(model)
	if err != nil {
		return nil, err
	}
	for _, hop := range hops {
		cfg := h.Base
		cfg.ExtraPEs = 32
		cfg.WeightDuplication = true
		cfg.NoCCyclesPerHop = hop
		comp, err := h.compile(model, cfg)
		if err != nil {
			return nil, err
		}
		rep, err := comp.Schedule(clsacim.ModeCrossLayer)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{
			Study: "noc", Model: model, Param: fmt.Sprintf("%.2g cy/hop", hop),
			Speedup:  float64(base.MakespanCycles) / float64(rep.MakespanCycles),
			Ut:       rep.Utilization,
			Makespan: rep.MakespanCycles,
		})
	}
	return out, nil
}

// RunCrossbarSize sweeps the PE dimensions (paper §V-C: CLSA-CIM
// "accepts the crossbar dimensions as an input parameter"). Note the
// baseline also changes: PEmin depends on the crossbar size, so speedup
// is measured against the matching layer-by-layer reference.
func (h *Harness) RunCrossbarSize(model string, dims []int) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, d := range dims {
		cfg := h.Base
		cfg.PERows, cfg.PECols = d, d
		cfg.ExtraPEs = 0
		cfg.WeightDuplication = false
		comp, err := h.compile(model, cfg)
		if err != nil {
			return nil, err
		}
		baseRep, err := comp.Schedule(clsacim.ModeLayerByLayer)
		if err != nil {
			return nil, err
		}
		cfg.ExtraPEs = 32
		cfg.WeightDuplication = true
		comp2, err := h.compile(model, cfg)
		if err != nil {
			return nil, err
		}
		rep, err := comp2.Schedule(clsacim.ModeCrossLayer)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{
			Study: "crossbar", Model: model,
			Param:    fmt.Sprintf("%dx%d (PEmin=%d)", d, d, comp.PEmin()),
			Speedup:  float64(baseRep.MakespanCycles) / float64(rep.MakespanCycles),
			Ut:       rep.Utilization,
			Makespan: rep.MakespanCycles,
		})
	}
	return out, nil
}

// RunGPEUCost sweeps the GPEU processing cost charged per transferred
// kilo-element on dependency edges.
func (h *Harness) RunGPEUCost(model string, costs []float64) ([]AblationPoint, error) {
	var out []AblationPoint
	base, err := h.Baseline(model)
	if err != nil {
		return nil, err
	}
	for _, c := range costs {
		cfg := h.Base
		cfg.ExtraPEs = 32
		cfg.WeightDuplication = true
		cfg.GPEUCyclesPerKElem = c
		comp, err := h.compile(model, cfg)
		if err != nil {
			return nil, err
		}
		rep, err := comp.Schedule(clsacim.ModeCrossLayer)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{
			Study: "gpeu", Model: model, Param: fmt.Sprintf("%.2g cy/Kelem", c),
			Speedup:  float64(base.MakespanCycles) / float64(rep.MakespanCycles),
			Ut:       rep.Utilization,
			Makespan: rep.MakespanCycles,
		})
	}
	return out, nil
}

// RunWindowSweep sweeps the xK admission window under wdup+32: at most
// K layers concurrently active, interpolating between the paper's two
// extremes (K=1 ≡ lbl, unbounded ≡ xinf). Makespans are monotone
// non-increasing in K, quantifying how much pipeline depth the speedup
// actually needs — small windows need proportionally less tile buffer.
func (h *Harness) RunWindowSweep(model string, windows []int) ([]AblationPoint, error) {
	var out []AblationPoint
	base, err := h.Baseline(model)
	if err != nil {
		return nil, err
	}
	modes := []clsacim.ScheduleMode{clsacim.ModeLayerByLayer}
	for _, k := range windows {
		modes = append(modes, clsacim.ModeWindow(k))
	}
	modes = append(modes, clsacim.ModeCrossLayer)
	cfg := h.Base
	cfg.ExtraPEs = 32
	cfg.WeightDuplication = true
	comp, err := h.compile(model, cfg)
	if err != nil {
		return nil, err
	}
	for _, mode := range modes {
		rep, err := comp.Schedule(mode)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{
			Study: "window", Model: model, Param: mode.Name(),
			Speedup:  float64(base.MakespanCycles) / float64(rep.MakespanCycles),
			Ut:       rep.Utilization,
			Makespan: rep.MakespanCycles,
		})
	}
	return out, nil
}

// RunVirtualization sweeps the PE count below PEmin (paper §V-C future
// work): swapped layers are reprogrammed before execution, trading PEs
// for latency and crossbar endurance. fractions are F/PEmin ratios.
func (h *Harness) RunVirtualization(model string, fractions []float64) ([]AblationPoint, error) {
	var out []AblationPoint
	base, err := h.Baseline(model)
	if err != nil {
		return nil, err
	}
	for _, frac := range fractions {
		cfg := h.Base
		cfg.TotalPEs = int(float64(base.PEmin) * frac)
		cfg.WeightVirtualization = frac < 1
		comp, err := h.compile(model, cfg)
		if err != nil {
			return nil, err
		}
		rep, err := comp.Schedule(clsacim.ModeLayerByLayer)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{
			Study: "virtualization", Model: model,
			Param: fmt.Sprintf("F=%.0f%% of PEmin (%d PEs, %d writes/inf)",
				frac*100, comp.TotalPEs(), comp.CrossbarWritesPerInference()),
			Speedup:  float64(base.MakespanCycles) / float64(rep.MakespanCycles),
			Ut:       rep.Utilization,
			Makespan: rep.MakespanCycles,
		})
	}
	return out, nil
}

// PrintAblations runs and prints the full ablation suite on the case
// study model.
// RunAllAblations runs every ablation study on the case-study model and
// returns the combined point list.
func (h *Harness) RunAllAblations() ([]AblationPoint, error) {
	model := "tinyyolov4"
	var all []AblationPoint
	gran, err := h.RunGranularity(model, []int{8, 26, 104, 416, 4096, 1 << 30})
	if err != nil {
		return nil, err
	}
	all = append(all, gran...)
	solv, err := h.RunSolvers(model, 32)
	if err != nil {
		return nil, err
	}
	all = append(all, solv...)
	noc, err := h.RunNoCCost(model, []float64{0, 0.5, 1, 2, 4, 8})
	if err != nil {
		return nil, err
	}
	all = append(all, noc...)
	xbar, err := h.RunCrossbarSize(model, []int{64, 128, 256, 512})
	if err != nil {
		return nil, err
	}
	all = append(all, xbar...)
	gpeu, err := h.RunGPEUCost(model, []float64{0, 1, 4, 16})
	if err != nil {
		return nil, err
	}
	all = append(all, gpeu...)
	virt, err := h.RunVirtualization(model, []float64{1, 0.8, 0.6, 0.4})
	if err != nil {
		return nil, err
	}
	all = append(all, virt...)
	win, err := h.RunWindowSweep(model, []int{2, 4, 8})
	if err != nil {
		return nil, err
	}
	return append(all, win...), nil
}

func (h *Harness) PrintAblations(w io.Writer) error {
	all, err := h.RunAllAblations()
	if err != nil {
		return err
	}
	return PrintAblationPoints(w, all)
}

// PrintAblationPoints writes already-measured ablation points.
func PrintAblationPoints(w io.Writer, all []AblationPoint) error {
	model := "tinyyolov4"
	if len(all) > 0 {
		model = all[0].Model
	}
	fmt.Fprintf(w, "Ablation studies (%s, wdup+32 + xinf unless noted)\n", model)
	tw := table(w)
	fmt.Fprintln(tw, "Study\tParameter\tSpeedup\tUtilization\tMakespan")
	for _, p := range all {
		fmt.Fprintf(tw, "%s\t%s\t%.2fx\t%.2f%%\t%d\n", p.Study, p.Param, p.Speedup, p.Ut*100, p.Makespan)
	}
	return tw.Flush()
}
