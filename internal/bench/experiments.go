package bench

import (
	"fmt"
	"io"

	clsacim "clsacim"
)

// TableIRow is one row of paper Table I.
type TableIRow struct {
	Name   string `json:"name"`
	IFM    [3]int `json:"ifm"`
	OFM    [3]int `json:"ofm"`
	PEs    int    `json:"pes"`
	Cycles int64  `json:"cycles"`
}

// RunTableI regenerates paper Table I: the base-layer structure of
// TinyYOLOv4 and its minimum PE requirement.
func (h *Harness) RunTableI() (rows []TableIRow, peMin int, err error) {
	comp, err := h.compile("tinyyolov4", h.Base)
	if err != nil {
		return nil, 0, err
	}
	for _, r := range comp.LayerTable() {
		rows = append(rows, TableIRow{Name: r.Name, IFM: r.IFM, OFM: r.OFM, PEs: r.PEs, Cycles: r.Cycles})
	}
	return rows, comp.PEmin(), nil
}

// PrintTableI writes Table I in the paper's layout.
func (h *Harness) PrintTableI(w io.Writer) error {
	rows, peMin, err := h.RunTableI()
	if err != nil {
		return err
	}
	return PrintTableIRows(w, rows, peMin)
}

// PrintTableIRows writes already-measured Table I rows.
func PrintTableIRows(w io.Writer, rows []TableIRow, peMin int) error {
	fmt.Fprintf(w, "Table I: Base layer structure of TinyYOLOv4 (256x256 PEs), PEmin = %d\n", peMin)
	tw := table(w)
	fmt.Fprintln(tw, "Layer\tIFM shape (HWC)\tOFM shape (HWC)\t#PE\tCycles t_init")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t(%d, %d, %d)\t(%d, %d, %d)\t%d\t%d\n",
			r.Name, r.IFM[0], r.IFM[1], r.IFM[2], r.OFM[0], r.OFM[1], r.OFM[2], r.PEs, r.Cycles)
	}
	return tw.Flush()
}

// TableIIRow is one row of paper Table II.
type TableIIRow struct {
	Benchmark  string `json:"benchmark"`
	Input      [3]int `json:"input"`
	BaseLayers int    `json:"base_layers"`
	MinPEs     int    `json:"min_pes"`
}

// RunTableII regenerates paper Table II: the benchmark list.
func (h *Harness) RunTableII() ([]TableIIRow, error) {
	var rows []TableIIRow
	for _, name := range Benchmarks {
		comp, err := h.compile(name, h.Base)
		if err != nil {
			return nil, err
		}
		ih, iw, ic := comp.InputShape()
		rows = append(rows, TableIIRow{
			Benchmark:  name,
			Input:      [3]int{ih, iw, ic},
			BaseLayers: comp.BaseLayerCount(),
			MinPEs:     comp.PEmin(),
		})
	}
	return rows, nil
}

// PrintTableII writes Table II in the paper's layout.
func (h *Harness) PrintTableII(w io.Writer) error {
	rows, err := h.RunTableII()
	if err != nil {
		return err
	}
	return PrintTableIIRows(w, rows)
}

// PrintTableIIRows writes already-measured Table II rows.
func PrintTableIIRows(w io.Writer, rows []TableIIRow) error {
	fmt.Fprintln(w, "Table II: List of benchmarks")
	tw := table(w)
	fmt.Fprintln(tw, "Benchmark\tInput shape (HWC)\tBase layers\tMin. # required 256x256 PEs")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t(%d, %d, %d)\t%d\t%d\n",
			r.Benchmark, r.Input[0], r.Input[1], r.Input[2], r.BaseLayers, r.MinPEs)
	}
	return tw.Flush()
}

// RunFig6Gantt reproduces the Fig. 6a / 6b visualizations: the wdup+16
// TinyYOLOv4 mapping under layer-by-layer (6a) or CLSA-CIM (6b)
// scheduling. It returns the report for rendering plus the duplication
// table shown next to Fig. 6a.
func (h *Harness) RunFig6Gantt(mode clsacim.ScheduleMode) (*clsacim.Report, []clsacim.LayerRow, error) {
	cfg := h.Base
	cfg.ExtraPEs = 16
	cfg.WeightDuplication = true
	comp, err := h.compile("tinyyolov4", cfg)
	if err != nil {
		return nil, nil, err
	}
	rep, err := comp.Schedule(mode)
	if err != nil {
		return nil, nil, err
	}
	var dups []clsacim.LayerRow
	for _, r := range comp.LayerTable() {
		if r.Dup > 1 {
			dups = append(dups, r)
		}
	}
	return rep, dups, nil
}

// PrintFig6 writes the Gantt chart and duplication table of Fig. 6a or
// 6b.
func (h *Harness) PrintFig6(w io.Writer, mode clsacim.ScheduleMode, width int) error {
	rep, dups, err := h.RunFig6Gantt(mode)
	if err != nil {
		return err
	}
	sub := "a"
	if mode == clsacim.ModeCrossLayer {
		sub = "b"
	}
	fmt.Fprintf(w, "Fig. 6%s: TinyYOLOv4, weight duplication (wdup+16), %v\n", sub, mode)
	fmt.Fprintln(w, "Duplicated layers:")
	tw := table(w)
	fmt.Fprintln(tw, "Layer\t#PE\tDuplicates")
	for _, d := range dups {
		fmt.Fprintf(tw, "%s\t%d\t%d\n", d.Name, d.PEs, d.Dup)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return rep.RenderGantt(w, width)
}

// Fig6cConfigs are the mapping/scheduling combinations of Fig. 6c.
var Fig6cConfigs = []struct {
	Name string
	X    int
	Wdup bool
	Mode clsacim.ScheduleMode
}{
	{"lbl", 0, false, clsacim.ModeLayerByLayer},
	{"xinf", 0, false, clsacim.ModeCrossLayer},
	{"wdup+4 lbl", 4, true, clsacim.ModeLayerByLayer},
	{"wdup+8 lbl", 8, true, clsacim.ModeLayerByLayer},
	{"wdup+16 lbl", 16, true, clsacim.ModeLayerByLayer},
	{"wdup+32 lbl", 32, true, clsacim.ModeLayerByLayer},
	{"wdup+4 xinf", 4, true, clsacim.ModeCrossLayer},
	{"wdup+8 xinf", 8, true, clsacim.ModeCrossLayer},
	{"wdup+16 xinf", 16, true, clsacim.ModeCrossLayer},
	{"wdup+32 xinf", 32, true, clsacim.ModeCrossLayer},
}

// RunFig6c regenerates the Fig. 6c case study: speedup and utilization
// of TinyYOLOv4 across mapping/scheduling combinations.
func (h *Harness) RunFig6c() ([]Point, error) {
	var out []Point
	for _, c := range Fig6cConfigs {
		p, err := h.Run("tinyyolov4", c.X, c.Wdup, c.Mode)
		if err != nil {
			return nil, fmt.Errorf("fig6c %s: %w", c.Name, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// PrintFig6c writes the Fig. 6c series.
func (h *Harness) PrintFig6c(w io.Writer) error {
	points, err := h.RunFig6c()
	if err != nil {
		return err
	}
	return PrintFig6cPoints(w, points)
}

// PrintFig6cPoints writes already-measured Fig. 6c points.
func PrintFig6cPoints(w io.Writer, points []Point) error {
	fmt.Fprintln(w, "Fig. 6c: TinyYOLOv4 case study — speedup and utilization vs layer-by-layer")
	tw := table(w)
	fmt.Fprintln(tw, "Configuration\tSpeedup\tUtilization\tMakespan (cycles)")
	for _, p := range points {
		fmt.Fprintf(tw, "%s\t%.2fx\t%.2f%%\t%d\n", p.Label(), p.Speedup, p.Utilization*100, p.Makespan)
	}
	return tw.Flush()
}

// RunFig7 regenerates the Fig. 7 sweep over all Table II benchmarks:
// wdup+x lbl, xinf, and wdup+x xinf for x in XValues. The returned
// points carry both speedup (Fig. 7a) and utilization (Fig. 7b).
func (h *Harness) RunFig7() ([]Point, error) {
	var out []Point
	for _, model := range Benchmarks {
		// Pure cross-layer inference (no extra PEs).
		p, err := h.Run(model, 0, false, clsacim.ModeCrossLayer)
		if err != nil {
			return nil, fmt.Errorf("fig7 %s xinf: %w", model, err)
		}
		out = append(out, p)
		for _, x := range XValues {
			for _, mode := range []clsacim.ScheduleMode{clsacim.ModeLayerByLayer, clsacim.ModeCrossLayer} {
				p, err := h.Run(model, x, true, mode)
				if err != nil {
					return nil, fmt.Errorf("fig7 %s wdup+%d %v: %w", model, x, mode, err)
				}
				out = append(out, p)
			}
		}
	}
	return out, nil
}

// PrintFig7 writes the Fig. 7a (speedup) and Fig. 7b (utilization)
// series.
func (h *Harness) PrintFig7(w io.Writer) error {
	points, err := h.RunFig7()
	if err != nil {
		return err
	}
	return PrintFig7Points(w, points)
}

// PrintFig7Points writes already-measured Fig. 7 points.
func PrintFig7Points(w io.Writer, points []Point) error {
	fmt.Fprintln(w, "Fig. 7a/7b: speedup and utilization vs layer-by-layer (no duplication)")
	tw := table(w)
	fmt.Fprintln(tw, "Benchmark\tConfiguration\tSpeedup (7a)\tUtilization (7b)\tUt gain")
	for _, p := range points {
		fmt.Fprintf(tw, "%s\t%s\t%.2fx\t%.2f%%\t%.1fx\n",
			p.Model, p.Label(), p.Speedup, p.Utilization*100, p.UtGain)
	}
	return tw.Flush()
}
