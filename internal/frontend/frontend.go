// Package frontend implements the high-level optimizations and the
// partitioning step of the paper's preprocessing (§III-A, Fig. 2). It
// transforms an imported NN graph into the canonical representation
// consumed by mapping and scheduling:
//
//   - BN folding merges inference-mode batch normalization into the
//     preceding base layer's weights and bias.
//   - Partitioning decouples padding and bias addition from base layers,
//     so a base layer is a pure (strided, valid) convolution or dense
//     matmul — exactly the MVM workload mapped onto crossbars.
//   - Quantization rounds base-layer weights to the crossbar cell
//     resolution (fake-quant, keeping float storage).
//
// After Canonicalize, every node is either a base layer (Conv2D/Dense
// without padding or bias) or a non-base layer executed on the GPEU.
package frontend

import (
	"fmt"
	"math"

	"clsacim/internal/nn"
	"clsacim/internal/quant"
)

// Options configures Canonicalize.
type Options struct {
	// WeightBits is the target weight resolution; 0 disables the
	// quantization pass (shape-only flows).
	WeightBits int
}

// Result reports what the canonicalization did.
type Result struct {
	FoldedBN       int
	DecoupledPads  int
	DecoupledBias  int
	QuantizedBase  int
	QuantParams    map[*nn.Node]quant.Params
	BaseLayers     []*nn.Node
	NonBaseLayers  []*nn.Node
	PrunedNodes    int
	WeightBitsUsed int
}

// Canonicalize runs BN folding, partitioning, and (optionally)
// quantization on g in place and returns a summary. The graph is
// validated before and after.
func Canonicalize(g *nn.Graph, opt Options) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("frontend: input graph invalid: %w", err)
	}
	res := &Result{QuantParams: make(map[*nn.Node]quant.Params), WeightBitsUsed: opt.WeightBits}

	folded, err := FoldBatchNorm(g)
	if err != nil {
		return nil, err
	}
	res.FoldedBN = folded

	pads, biases, err := Partition(g)
	if err != nil {
		return nil, err
	}
	res.DecoupledPads = pads
	res.DecoupledBias = biases

	if opt.WeightBits > 0 {
		n, params, err := QuantizeWeights(g, opt.WeightBits)
		if err != nil {
			return nil, err
		}
		res.QuantizedBase = n
		res.QuantParams = params
	}

	res.PrunedNodes = g.Prune()
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("frontend: canonicalized graph invalid: %w", err)
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	for _, n := range order {
		switch {
		case n.IsBase():
			res.BaseLayers = append(res.BaseLayers, n)
		case n.Kind() != nn.OpInput:
			res.NonBaseLayers = append(res.NonBaseLayers, n)
		}
	}
	return res, nil
}

// FoldBatchNorm merges every BatchNorm whose sole producer is a base
// layer (and which is that base layer's sole consumer) into the base
// layer's weights and bias. It returns the number of folded BN nodes.
//
// For y = gamma * (conv(x) + b - mean) / sqrt(var + eps) + beta the
// folded parameters are w' = w * s and b' = (b - mean) * s + beta with
// s = gamma / sqrt(var + eps), applied per output channel (paper §III-A,
// following Jacob et al. [21]).
func FoldBatchNorm(g *nn.Graph) (int, error) {
	cons := g.Consumers()
	folded := 0
	for _, n := range g.Nodes {
		bn, ok := n.Op.(*nn.BatchNorm)
		if !ok {
			continue
		}
		prod := n.Inputs[0]
		if !prod.IsBase() {
			continue
		}
		if len(cons[prod]) != 1 {
			// The base layer's raw output is used elsewhere; folding
			// would change those consumers.
			continue
		}
		switch op := prod.Op.(type) {
		case *nn.Conv2D:
			foldInto(bn, op.W, &op.Bias, op.KO)
		case *nn.Dense:
			foldInto(bn, op.W, &op.Bias, op.KO)
		case *nn.DepthwiseConv2D:
			// Weight layout (KH, KW, C, 1): the flat index modulo C is
			// the channel, so the per-output-channel fold applies with
			// ko = C.
			foldInto(bn, op.W, &op.Bias, op.C)
		default:
			continue
		}
		g.ReplaceUses(n, prod)
		folded++
	}
	if folded > 0 {
		if err := g.RefreshShapes(); err != nil {
			return folded, err
		}
	}
	return folded, nil
}

func foldInto(bn *nn.BatchNorm, w *nn.ConvWeights, bias *[]float32, ko int) {
	scale := make([]float32, ko)
	for c := 0; c < ko; c++ {
		scale[c] = bn.Gamma[c] / float32(math.Sqrt(float64(bn.Var[c])+float64(bn.Eps)))
	}
	if w != nil {
		for i := range w.Data {
			w.Data[i] *= scale[i%ko]
		}
	}
	b := *bias
	if b == nil {
		b = make([]float32, ko)
	}
	for c := 0; c < ko; c++ {
		b[c] = (b[c]-bn.Mean[c])*scale[c] + bn.Beta[c]
	}
	*bias = b
}

// Partition decouples padding and bias from base layers (paper Fig. 2):
// a Conv2D with embedded padding becomes Pad -> Conv2D(valid), and an
// embedded bias becomes a BiasAdd node after the base layer. It returns
// the number of extracted Pad and BiasAdd nodes.
func Partition(g *nn.Graph) (pads, biases int, err error) {
	// Snapshot: the loop appends nodes.
	nodes := append([]*nn.Node(nil), g.Nodes...)
	for _, n := range nodes {
		switch op := n.Op.(type) {
		case *nn.Conv2D:
			if op.Pad.Any() {
				padNode, err := g.TryAdd(g.FreshName(n.Name+"_pad"),
					&nn.Pad{Pad: op.Pad}, n.Inputs[0])
				if err != nil {
					return pads, biases, err
				}
				n.Inputs[0] = padNode
				op.Pad = nn.Padding{}
				pads++
			}
			if op.Bias != nil {
				if err := extractBias(g, n, &op.Bias); err != nil {
					return pads, biases, err
				}
				biases++
			}
		case *nn.DepthwiseConv2D:
			if op.Pad.Any() {
				padNode, err := g.TryAdd(g.FreshName(n.Name+"_pad"),
					&nn.Pad{Pad: op.Pad}, n.Inputs[0])
				if err != nil {
					return pads, biases, err
				}
				n.Inputs[0] = padNode
				op.Pad = nn.Padding{}
				pads++
			}
			if op.Bias != nil {
				if err := extractBias(g, n, &op.Bias); err != nil {
					return pads, biases, err
				}
				biases++
			}
		case *nn.Dense:
			if op.Bias != nil {
				if err := extractBias(g, n, &op.Bias); err != nil {
					return pads, biases, err
				}
				biases++
			}
		}
	}
	if pads > 0 || biases > 0 {
		if err := g.RefreshShapes(); err != nil {
			return pads, biases, err
		}
	}
	return pads, biases, nil
}

func extractBias(g *nn.Graph, n *nn.Node, bias *[]float32) error {
	b := *bias
	*bias = nil
	biasNode, err := g.TryAdd(g.FreshName(n.Name+"_bias"), &nn.BiasAdd{B: b}, n)
	if err != nil {
		return err
	}
	g.ReplaceUsesExcept(n, biasNode, biasNode)
	return nil
}

// QuantizeWeights fake-quantizes the weights of every base layer to the
// given bit width with per-layer symmetric calibration. Layers without
// weight data (shape-only graphs) are counted but untouched.
func QuantizeWeights(g *nn.Graph, bits int) (int, map[*nn.Node]quant.Params, error) {
	params := make(map[*nn.Node]quant.Params)
	count := 0
	for _, n := range g.Nodes {
		var w *nn.ConvWeights
		switch op := n.Op.(type) {
		case *nn.Conv2D:
			w = op.W
		case *nn.Dense:
			w = op.W
		case *nn.DepthwiseConv2D:
			w = op.W
		default:
			continue
		}
		count++
		if w == nil {
			continue
		}
		p, err := quant.Calibrate(bits, w.MaxAbs())
		if err != nil {
			return count, nil, fmt.Errorf("frontend: quantizing %v: %w", n, err)
		}
		p.FakeQuantSlice(w.Data)
		params[n] = p
	}
	return count, params, nil
}
