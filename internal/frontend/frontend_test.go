package frontend

import (
	"testing"

	"clsacim/internal/models"
	"clsacim/internal/nn"
	"clsacim/internal/tensor"
)

// buildConvBN returns input -> conv(bias, pad) -> BN -> leaky -> output
// with deterministic weights.
func buildConvBN(t *testing.T) *nn.Graph {
	t.Helper()
	g := nn.NewGraph()
	in := g.AddInput("input", tensor.NewShape(6, 6, 2))
	w := nn.NewConvWeights(3, 3, 2, 4)
	w.FillRand(11, 0.5)
	conv := g.Add("conv", &nn.Conv2D{
		KH: 3, KW: 3, SH: 1, SW: 1, KI: 2, KO: 4,
		Pad:  nn.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1},
		W:    w,
		Bias: []float32{0.1, -0.2, 0.3, 0},
	}, in)
	bn := g.Add("bn", &nn.BatchNorm{
		Gamma: []float32{1.5, 0.5, 1, 2},
		Beta:  []float32{0.1, 0.2, -0.1, 0},
		Mean:  []float32{0.05, -0.05, 0.2, 0.1},
		Var:   []float32{1.2, 0.8, 1, 0.5},
		Eps:   1e-3,
	}, conv)
	act := g.Add("act", &nn.Activation{Func: nn.ActLeakyReLU, Alpha: 0.1}, bn)
	g.MarkOutput(act)
	return g
}

func outputsOf(t *testing.T, g *nn.Graph, in *tensor.Tensor) []*tensor.Tensor {
	t.Helper()
	outs, err := (&nn.Executor{}).RunOutputs(g, in)
	if err != nil {
		t.Fatal(err)
	}
	return outs
}

// TestFoldBatchNormPreservesOutputs is the numeric correctness test of
// BN folding.
func TestFoldBatchNormPreservesOutputs(t *testing.T) {
	g := buildConvBN(t)
	in := tensor.New(tensor.NewShape(6, 6, 2))
	in.FillRand(3, 1)
	before := outputsOf(t, g, in)

	folded, err := FoldBatchNorm(g)
	if err != nil {
		t.Fatal(err)
	}
	if folded != 1 {
		t.Fatalf("folded %d BN nodes, want 1", folded)
	}
	g.Prune()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Nodes {
		if n.Kind() == nn.OpBatchNorm {
			t.Fatal("BN node survived")
		}
	}
	after := outputsOf(t, g, in)
	if d := tensor.MaxAbsDiff(before[0], after[0]); d > 1e-5 {
		t.Errorf("BN folding changed outputs by %v", d)
	}
}

// TestFoldBatchNormCreatesBias checks folding a bias-less conv
// synthesizes the bias vector.
func TestFoldBatchNormCreatesBias(t *testing.T) {
	g := nn.NewGraph()
	in := g.AddInput("input", tensor.NewShape(4, 4, 1))
	w := nn.NewConvWeights(1, 1, 1, 2)
	w.FillRand(5, 1)
	conv := g.Add("conv", &nn.Conv2D{KH: 1, KW: 1, SH: 1, SW: 1, KI: 1, KO: 2, W: w}, in)
	bn := g.Add("bn", &nn.BatchNorm{
		Gamma: []float32{1, 1}, Beta: []float32{0.5, -0.5},
		Mean: []float32{0, 0}, Var: []float32{1, 1}, Eps: 0,
	}, conv)
	g.MarkOutput(bn)
	if _, err := FoldBatchNorm(g); err != nil {
		t.Fatal(err)
	}
	op := conv.Op.(*nn.Conv2D)
	if op.Bias == nil || op.Bias[0] != 0.5 || op.Bias[1] != -0.5 {
		t.Errorf("folded bias = %v", op.Bias)
	}
}

// TestFoldBatchNormSkipsSharedProducer checks folding refuses when the
// conv output has other consumers.
func TestFoldBatchNormSkipsSharedProducer(t *testing.T) {
	g := nn.NewGraph()
	in := g.AddInput("input", tensor.NewShape(4, 4, 1))
	w := nn.NewConvWeights(1, 1, 1, 1)
	w.Data[0] = 1
	conv := g.Add("conv", &nn.Conv2D{KH: 1, KW: 1, SH: 1, SW: 1, KI: 1, KO: 1, W: w}, in)
	bn := g.Add("bn", &nn.BatchNorm{
		Gamma: []float32{2}, Beta: []float32{0}, Mean: []float32{0}, Var: []float32{1}, Eps: 0,
	}, conv)
	other := g.Add("other", &nn.Activation{Func: nn.ActReLU}, conv)
	sum := g.Add("sum", &nn.Add{}, bn, other)
	g.MarkOutput(sum)
	folded, err := FoldBatchNorm(g)
	if err != nil {
		t.Fatal(err)
	}
	if folded != 0 {
		t.Errorf("folded %d, want 0 (conv has two consumers)", folded)
	}
}

// TestPartitionPreservesOutputs is the numeric correctness test of
// pad/bias decoupling.
func TestPartitionPreservesOutputs(t *testing.T) {
	g := buildConvBN(t)
	in := tensor.New(tensor.NewShape(6, 6, 2))
	in.FillRand(4, 1)
	before := outputsOf(t, g, in)

	pads, biases, err := Partition(g)
	if err != nil {
		t.Fatal(err)
	}
	if pads != 1 || biases != 1 {
		t.Fatalf("pads=%d biases=%d, want 1/1", pads, biases)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	conv := g.ByName("conv").Op.(*nn.Conv2D)
	if conv.Pad.Any() || conv.Bias != nil {
		t.Error("conv still carries pad/bias")
	}
	after := outputsOf(t, g, in)
	if d := tensor.MaxAbsDiff(before[0], after[0]); d > 1e-6 {
		t.Errorf("partition changed outputs by %v", d)
	}
}

// TestCanonicalizeFull checks the full pass pipeline on a branchy model
// with weights, numerically.
func TestCanonicalizeFull(t *testing.T) {
	g := models.MustBuild(models.TinyBranchNet, models.Options{WithWeights: true, Seed: 9})
	in := tensor.New(g.Input.OutShape)
	in.FillRand(2, 1)
	before := outputsOf(t, g.Clone(), in)

	res, err := Canonicalize(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FoldedBN == 0 {
		t.Error("no BN folded")
	}
	if res.DecoupledPads == 0 || res.DecoupledBias == 0 {
		t.Errorf("pads=%d biases=%d", res.DecoupledPads, res.DecoupledBias)
	}
	if len(res.BaseLayers) == 0 || len(res.NonBaseLayers) == 0 {
		t.Error("classification empty")
	}
	for _, n := range res.BaseLayers {
		if !n.IsBase() {
			t.Errorf("%v misclassified as base", n)
		}
	}
	after := outputsOf(t, g, in)
	if d := tensor.MaxAbsDiff(before[0], after[0]); d > 1e-4 {
		t.Errorf("canonicalization changed outputs by %v", d)
	}
}

// TestCanonicalizeQuantization checks the quantization pass bounds.
func TestCanonicalizeQuantization(t *testing.T) {
	g := models.MustBuild(models.TinyConvNet, models.Options{WithWeights: true, Seed: 9})
	ref := g.Clone()
	if _, err := Canonicalize(ref, Options{}); err != nil {
		t.Fatal(err)
	}
	res, err := Canonicalize(g, Options{WeightBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.QuantizedBase != 3 {
		t.Errorf("quantized %d base layers, want 3", res.QuantizedBase)
	}
	if len(res.QuantParams) != 3 {
		t.Errorf("params for %d layers", len(res.QuantParams))
	}
	// Quantized weights deviate from float by at most half a step.
	for n, p := range res.QuantParams {
		refN := ref.ByName(n.Name)
		if refN == nil {
			t.Fatalf("layer %s missing in reference", n.Name)
		}
		w := n.Op.(*nn.Conv2D).W
		rw := refN.Op.(*nn.Conv2D).W
		for i := range w.Data {
			d := w.Data[i] - rw.Data[i]
			if d < 0 {
				d = -d
			}
			if d > p.MaxError()+1e-6 {
				t.Fatalf("%s weight %d deviates %v > %v", n.Name, i, d, p.MaxError())
			}
		}
	}
}

// TestCanonicalizeShapeOnly ensures the pipeline works without weights.
func TestCanonicalizeShapeOnly(t *testing.T) {
	g := models.MustBuild(models.TinyYOLOv3, models.Options{})
	res, err := Canonicalize(g, Options{WeightBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.BaseLayers); got != 13 {
		t.Errorf("base layers = %d, want 13", got)
	}
	if res.PrunedNodes == 0 {
		t.Error("expected dead BN nodes to be pruned")
	}
}

// TestCanonicalizeRejectsInvalid checks input validation.
func TestCanonicalizeRejectsInvalid(t *testing.T) {
	g := nn.NewGraph()
	g.AddInput("input", tensor.NewShape(2, 2, 1))
	// No outputs marked -> invalid.
	if _, err := Canonicalize(g, Options{}); err == nil {
		t.Error("invalid graph accepted")
	}
}
