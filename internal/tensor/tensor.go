// Package tensor provides dense HWC-layout tensors and shape utilities
// used by the NN graph, the reference executor, and the functional
// crossbar model. Tensors are rank-3 (height, width, channels); vectors
// and matrices are represented with singleton dimensions.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Shape describes a rank-3 tensor in HWC order. Dense/flattened data is
// modeled as (1, 1, C). The zero Shape is invalid.
type Shape struct {
	H, W, C int
}

// NewShape returns the shape (h, w, c).
func NewShape(h, w, c int) Shape { return Shape{H: h, W: w, C: c} }

// Elems returns the total number of elements.
func (s Shape) Elems() int { return s.H * s.W * s.C }

// Pixels returns the number of spatial positions (H*W).
func (s Shape) Pixels() int { return s.H * s.W }

// Valid reports whether all dimensions are strictly positive.
func (s Shape) Valid() bool { return s.H > 0 && s.W > 0 && s.C > 0 }

// Equal reports whether s and t are identical.
func (s Shape) Equal(t Shape) bool { return s == t }

// String renders the shape in the paper's (H, W, C) notation.
func (s Shape) String() string { return fmt.Sprintf("(%d, %d, %d)", s.H, s.W, s.C) }

// Index returns the flat index of (h, w, c) in row-major HWC layout.
func (s Shape) Index(h, w, c int) int { return (h*s.W+w)*s.C + c }

// Tensor is a dense rank-3 float32 tensor in row-major HWC layout.
type Tensor struct {
	Shape Shape
	Data  []float32
}

// New allocates a zero-filled tensor of the given shape.
func New(shape Shape) *Tensor {
	if !shape.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", shape))
	}
	return &Tensor{Shape: shape, Data: make([]float32, shape.Elems())}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must match the shape.
func FromSlice(shape Shape, data []float32) *Tensor {
	if len(data) != shape.Elems() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elems)",
			len(data), shape, shape.Elems()))
	}
	return &Tensor{Shape: shape, Data: data}
}

// At returns the element at (h, w, c).
func (t *Tensor) At(h, w, c int) float32 { return t.Data[t.Shape.Index(h, w, c)] }

// Set stores v at (h, w, c).
func (t *Tensor) Set(h, w, c int, v float32) { t.Data[t.Shape.Index(h, w, c)] = v }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	out := New(t.Shape)
	copy(out.Data, t.Data)
	return out
}

// FillRand fills t with uniform values in [-scale, scale) from a
// deterministic source seeded with seed.
func (t *Tensor) FillRand(seed int64, scale float32) {
	rng := rand.New(rand.NewSource(seed))
	for i := range t.Data {
		t.Data[i] = (rng.Float32()*2 - 1) * scale
	}
}

// Fill sets every element of t to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// MaxAbs returns the maximum absolute value in t (0 for empty data).
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.Data {
		a := float32(math.Abs(float64(v)))
		if a > m {
			m = a
		}
	}
	return m
}

// MaxAbsDiff returns the maximum element-wise absolute difference between
// a and b. It panics if the shapes differ.
func MaxAbsDiff(a, b *Tensor) float32 {
	if !a.Shape.Equal(b.Shape) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	var m float32
	for i := range a.Data {
		d := float32(math.Abs(float64(a.Data[i] - b.Data[i])))
		if d > m {
			m = d
		}
	}
	return m
}

// AllClose reports whether every element of a and b differs by at most tol.
func AllClose(a, b *Tensor, tol float32) bool {
	if !a.Shape.Equal(b.Shape) {
		return false
	}
	return MaxAbsDiff(a, b) <= tol
}
