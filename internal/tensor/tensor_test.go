package tensor

import (
	"testing"
	"testing/quick"
)

func TestShapeBasics(t *testing.T) {
	s := NewShape(4, 5, 3)
	if s.Elems() != 60 || s.Pixels() != 20 {
		t.Errorf("Elems/Pixels = %d/%d, want 60/20", s.Elems(), s.Pixels())
	}
	if !s.Valid() {
		t.Error("Valid = false")
	}
	if NewShape(0, 1, 1).Valid() {
		t.Error("zero dim reported valid")
	}
	if s.String() != "(4, 5, 3)" {
		t.Errorf("String = %q", s.String())
	}
	if !s.Equal(NewShape(4, 5, 3)) || s.Equal(NewShape(5, 4, 3)) {
		t.Error("Equal misbehaves")
	}
}

// TestIndexBijective checks the flat index covers [0, Elems) exactly.
func TestIndexBijective(t *testing.T) {
	s := NewShape(3, 4, 5)
	seen := make(map[int]bool)
	for h := 0; h < s.H; h++ {
		for w := 0; w < s.W; w++ {
			for c := 0; c < s.C; c++ {
				i := s.Index(h, w, c)
				if i < 0 || i >= s.Elems() || seen[i] {
					t.Fatalf("index (%d,%d,%d) -> %d invalid or duplicate", h, w, c, i)
				}
				seen[i] = true
			}
		}
	}
}

func TestAtSet(t *testing.T) {
	tt := New(NewShape(2, 3, 2))
	tt.Set(1, 2, 1, 42)
	if got := tt.At(1, 2, 1); got != 42 {
		t.Errorf("At = %v", got)
	}
	if got := tt.At(0, 0, 0); got != 0 {
		t.Errorf("zero init violated: %v", got)
	}
}

func TestFromSliceValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice(NewShape(2, 2, 2), make([]float32, 7))
}

func TestNewInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid shape did not panic")
		}
	}()
	New(NewShape(0, 2, 2))
}

func TestCloneIndependent(t *testing.T) {
	a := New(NewShape(2, 2, 1))
	a.Fill(3)
	b := a.Clone()
	b.Set(0, 0, 0, 9)
	if a.At(0, 0, 0) != 3 {
		t.Error("Clone shares storage")
	}
}

func TestFillRandDeterministic(t *testing.T) {
	a := New(NewShape(4, 4, 4))
	b := New(NewShape(4, 4, 4))
	a.FillRand(7, 1)
	b.FillRand(7, 1)
	if MaxAbsDiff(a, b) != 0 {
		t.Error("same seed produced different tensors")
	}
	c := New(NewShape(4, 4, 4))
	c.FillRand(8, 1)
	if MaxAbsDiff(a, c) == 0 {
		t.Error("different seeds produced identical tensors")
	}
	for _, v := range a.Data {
		if v < -1 || v >= 1 {
			t.Fatalf("value %v outside [-1, 1)", v)
		}
	}
}

func TestMaxAbsAndDiff(t *testing.T) {
	a := New(NewShape(1, 1, 3))
	copy(a.Data, []float32{-2, 0.5, 1})
	if a.MaxAbs() != 2 {
		t.Errorf("MaxAbs = %v", a.MaxAbs())
	}
	b := a.Clone()
	b.Data[0] = -1.5
	if d := MaxAbsDiff(a, b); d != 0.5 {
		t.Errorf("MaxAbsDiff = %v", d)
	}
	if !AllClose(a, b, 0.5) || AllClose(a, b, 0.4) {
		t.Error("AllClose tolerance misbehaves")
	}
	if AllClose(a, New(NewShape(3, 1, 1)), 10) {
		t.Error("AllClose across shapes must be false")
	}
}

func TestMaxAbsDiffShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MaxAbsDiff with mismatched shapes did not panic")
		}
	}()
	MaxAbsDiff(New(NewShape(1, 1, 2)), New(NewShape(2, 1, 1)))
}

// TestQuickIndexRoundTrip recovers coordinates from flat indices.
func TestQuickIndexRoundTrip(t *testing.T) {
	f := func(h8, w8, c8 uint8) bool {
		s := NewShape(int(h8%7)+1, int(w8%7)+1, int(c8%7)+1)
		for h := 0; h < s.H; h++ {
			for w := 0; w < s.W; w++ {
				for c := 0; c < s.C; c++ {
					i := s.Index(h, w, c)
					hh := i / (s.W * s.C)
					ww := (i / s.C) % s.W
					cc := i % s.C
					if hh != h || ww != w || cc != c {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
