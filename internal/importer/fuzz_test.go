package importer

import (
	"bytes"
	"errors"
	"testing"
)

// checkFuzzResult asserts the importer's fuzz contract: on arbitrary
// input it either succeeds or fails with exactly one typed error class
// — never a panic, never an untyped error.
func checkFuzzResult(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		return
	}
	if errors.Is(err, ErrBadGraph) || errors.Is(err, ErrUnsupportedOp) || errors.Is(err, ErrShapeMismatch) {
		return
	}
	t.Fatalf("untyped import error: %v", err)
}

func FuzzImportJSON(f *testing.F) {
	f.Add([]byte(`{"schema": "clsacim-graph/v1", "input": {"name": "in", "shape": [4, 4, 1]}, ` +
		`"nodes": [{"name": "f", "op": "Flatten", "inputs": ["in"]}], "outputs": ["f"]}`))
	f.Add([]byte(`{"schema": "clsacim-graph/v1"}`))
	f.Add([]byte(`{`))
	var buf bytes.Buffer
	if err := ExportJSON(smallCNNGraph(f), "smallcnn", &buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		_, err := Import(bytes.NewReader(data), Options{Format: FormatJSON, MaxBytes: 1 << 20})
		checkFuzzResult(t, err)
	})
}

func FuzzImportONNX(f *testing.F) {
	f.Add(smallCNNONNX(f))
	f.Add(onnxOneNode(encNode("Relu", "r", []string{"input"}, []string{"out"}),
		nil, []int64{1, 3, 4, 4}, "out"))
	f.Add([]byte{0x3a, 0x00})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, err := Import(bytes.NewReader(data), Options{Format: FormatONNX, MaxBytes: 1 << 20})
		checkFuzzResult(t, err)
	})
}
