package importer

import (
	"fmt"
	"strings"

	"clsacim/internal/nn"
)

// importONNX parses an ONNX ModelProto and lowers its graph onto the
// clsacim-graph/v1 structures, then builds through the same validation
// and construction path as the JSON reader.
func importONNX(data []byte) (*nn.Graph, string, error) {
	og, err := parseONNXModel(data)
	if err != nil {
		return nil, "", err
	}
	doc, err := lowerONNX(og)
	if err != nil {
		return nil, "", err
	}
	g, err := buildGraph(doc)
	if err != nil {
		return nil, "", err
	}
	return g, doc.Name, nil
}

// onnxNodePath renders the Error.Path of the i-th ONNX node.
func onnxNodePath(i int, n *onnxNode) string {
	return fmt.Sprintf("node[%d] (%s %q)", i, n.opType, n.name)
}

// lowerONNX translates a parsed GraphProto into a clsacim-graph/v1
// document: NCHW shapes and axes become HWC, ONNX weight layouts are
// transposed to the internal (KH, KW, KI, KO) order, and each node
// becomes exactly one schema node (same index), so build-time errors
// still point at the right position in the source file.
func lowerONNX(og *onnxGraph) (*jsonGraph, error) {
	doc := &jsonGraph{Schema: SchemaV1, Name: og.name}

	// The graph input is the one declared input that is not backed by an
	// initializer (initializers may legally be re-declared as inputs).
	var graphIn *onnxValueInfo
	for i := range og.inputs {
		vi := &og.inputs[i]
		if _, isInit := og.initializers[vi.name]; isInit {
			continue
		}
		if graphIn != nil {
			return nil, errf(ErrUnsupportedOp, "onnx", "multiple graph inputs (%q, %q); only single-input graphs are supported", graphIn.name, vi.name)
		}
		graphIn = vi
	}
	if graphIn == nil {
		return nil, errf(ErrBadGraph, "onnx", "graph declares no data input")
	}
	h, w, c, err := hwcOfDims(graphIn.dims, "onnx input "+graphIn.name)
	if err != nil {
		return nil, err
	}
	doc.Input = &jsonInput{Name: graphIn.name, Shape: []int{h, w, c}}

	// tensors maps an ONNX tensor name to the schema node producing it.
	tensors := map[string]string{graphIn.name: graphIn.name}

	for i := range og.nodes {
		n := &og.nodes[i]
		path := onnxNodePath(i, n)
		jn, err := lowerNode(og, n, tensors, path)
		if err != nil {
			return nil, err
		}
		jn.Name = n.name
		if jn.Name == "" {
			jn.Name = fmt.Sprintf("%s_%d", strings.ToLower(n.opType), i)
		}
		if len(n.outputs) == 0 {
			return nil, errf(ErrBadGraph, path, "node has no outputs")
		}
		doc.Nodes = append(doc.Nodes, *jn)
		tensors[n.outputs[0]] = jn.Name
	}

	if len(og.outputs) == 0 {
		return nil, errf(ErrBadGraph, "onnx", "graph declares no outputs")
	}
	for _, vi := range og.outputs {
		src, ok := tensors[vi.name]
		if !ok {
			return nil, errf(ErrBadGraph, "onnx", "graph output %q is not produced by any node", vi.name)
		}
		doc.Outputs = append(doc.Outputs, src)
	}
	return doc, nil
}

// hwcOfDims converts a declared NCHW (or NC) tensor shape to (H, W, C).
// A batch dimension of 0 (symbolic) is accepted as 1.
func hwcOfDims(dims []int64, path string) (h, w, c int, err error) {
	intDim := func(d int64, what string) (int, error) {
		if d < 1 || d > maxDim {
			return 0, errf(ErrBadGraph, path, "%s dimension %d outside [1, %d]", what, d, maxDim)
		}
		return int(d), nil
	}
	switch len(dims) {
	case 4: // N, C, H, W
		if dims[0] > 1 {
			return 0, 0, 0, errf(ErrUnsupportedOp, path, "batch dimension %d; only batch 1 is supported", dims[0])
		}
		if c, err = intDim(dims[1], "channel"); err != nil {
			return 0, 0, 0, err
		}
		if h, err = intDim(dims[2], "height"); err != nil {
			return 0, 0, 0, err
		}
		if w, err = intDim(dims[3], "width"); err != nil {
			return 0, 0, 0, err
		}
		return h, w, c, nil
	case 2: // N, C (flattened features)
		if dims[0] > 1 {
			return 0, 0, 0, errf(ErrUnsupportedOp, path, "batch dimension %d; only batch 1 is supported", dims[0])
		}
		if c, err = intDim(dims[1], "feature"); err != nil {
			return 0, 0, 0, err
		}
		return 1, 1, c, nil
	default:
		return 0, 0, 0, errf(ErrUnsupportedOp, path, "tensor rank %d; want NCHW (4) or NC (2)", len(dims))
	}
}

// dataInput resolves a node input that must be a tensor produced by the
// graph (the input or an earlier node), not an initializer.
func dataInput(og *onnxGraph, tensors map[string]string, ref, path string) (string, error) {
	if src, ok := tensors[ref]; ok {
		return src, nil
	}
	if _, isInit := og.initializers[ref]; isInit {
		return "", errf(ErrBadGraph, path, "input %q is an initializer where a tensor is required", ref)
	}
	return "", errf(ErrBadGraph, path, "unknown input tensor %q", ref)
}

// initInput resolves a node input that must be an initializer.
func initInput(og *onnxGraph, ref, path string) (*onnxTensor, error) {
	t, ok := og.initializers[ref]
	if !ok {
		return nil, errf(ErrBadGraph, path, "input %q must be an initializer (graph-computed weights are not supported)", ref)
	}
	return t, nil
}

// wantOnnxInputs checks the node's input count against the allowed set.
func wantOnnxInputs(n *onnxNode, path string, allowed ...int) error {
	for _, a := range allowed {
		if len(n.inputs) == a {
			return nil
		}
	}
	return errf(ErrBadGraph, path, "%s with %d inputs, want %v", n.opType, len(n.inputs), allowed)
}

// onnxPad lowers the pads/auto_pad attributes to the schema's
// [top, bottom, left, right] order (ONNX pads order is
// [top, left, bottom, right]). Only explicit padding and VALID are
// supported; SAME_* would need shape propagation during lowering.
func onnxPad(n *onnxNode, path string) ([]int, error) {
	autoPad := n.attrString("auto_pad", "NOTSET")
	switch autoPad {
	case "NOTSET":
	case "VALID":
		return nil, nil
	default:
		return nil, errf(ErrUnsupportedOp, path, "auto_pad %q; use explicit pads or VALID", autoPad)
	}
	pads := n.attrInts("pads")
	if pads == nil {
		return nil, nil
	}
	if len(pads) != 4 {
		return nil, errf(ErrBadGraph, path, "pads needs 4 values, got %d", len(pads))
	}
	out := make([]int, 4)
	for i, src := range [4]int{0, 2, 1, 3} { // t, l, b, r -> t, b, l, r
		v := pads[src]
		if v < 0 || v > maxDim {
			return nil, errf(ErrBadGraph, path, "pads value %d outside [0, %d]", v, maxDim)
		}
		out[i] = int(v)
	}
	return out, nil
}

// onnxStrides reads the strides attribute (default 1x1).
func onnxStrides(n *onnxNode, path string) (sh, sw int, err error) {
	st := n.attrInts("strides")
	if st == nil {
		return 1, 1, nil
	}
	if len(st) != 2 {
		return 0, 0, errf(ErrBadGraph, path, "strides needs 2 values, got %d", len(st))
	}
	for _, v := range st {
		if v < 1 || v > maxDim {
			return 0, 0, errf(ErrBadGraph, path, "stride %d outside [1, %d]", v, maxDim)
		}
	}
	return int(st[0]), int(st[1]), nil
}

// noDilation rejects dilated windows (not modeled).
func noDilation(n *onnxNode, path string) error {
	for _, d := range n.attrInts("dilations") {
		if d != 1 {
			return errf(ErrUnsupportedOp, path, "dilation %d; only dilation 1 is supported", d)
		}
	}
	return nil
}

// lowerNode translates one ONNX node to its schema node.
func lowerNode(og *onnxGraph, n *onnxNode, tensors map[string]string, path string) (*jsonNode, error) {
	switch n.opType {
	case "Conv":
		return lowerConv(og, n, tensors, path)
	case "Gemm", "MatMul":
		return lowerGemm(og, n, tensors, path)
	case "BatchNormalization":
		return lowerBatchNorm(og, n, tensors, path)
	case "MaxPool":
		return lowerMaxPool(og, n, tensors, path)
	case "Relu", "LeakyRelu":
		if err := wantOnnxInputs(n, path, 1); err != nil {
			return nil, err
		}
		x, err := dataInput(og, tensors, n.inputs[0], path)
		if err != nil {
			return nil, err
		}
		attrs := &jsonAttrs{Act: "relu"}
		if n.opType == "LeakyRelu" {
			attrs.Act = "leaky"
			attrs.Alpha = n.attrFloat("alpha", 0.01)
		}
		return &jsonNode{Op: "Activation", Inputs: []string{x}, Attrs: attrs}, nil
	case "Add":
		return lowerAdd(og, n, tensors, path)
	case "Concat":
		return lowerConcat(og, n, tensors, path)
	case "Flatten":
		if err := wantOnnxInputs(n, path, 1); err != nil {
			return nil, err
		}
		if axis := n.attrInt("axis", 1); axis != 1 {
			return nil, errf(ErrUnsupportedOp, path, "flatten axis %d; only axis 1 is supported", axis)
		}
		x, err := dataInput(og, tensors, n.inputs[0], path)
		if err != nil {
			return nil, err
		}
		return &jsonNode{Op: "Flatten", Inputs: []string{x}}, nil
	default:
		return nil, errf(ErrUnsupportedOp, path, "op %q", n.opType)
	}
}

// lowerConv translates Conv. The ONNX kernel layout is
// (KO, KI/group, KH, KW); group 1 becomes Conv2D, group == channels a
// DepthwiseConv2D, anything else is unsupported.
func lowerConv(og *onnxGraph, n *onnxNode, tensors map[string]string, path string) (*jsonNode, error) {
	if err := wantOnnxInputs(n, path, 2, 3); err != nil {
		return nil, err
	}
	x, err := dataInput(og, tensors, n.inputs[0], path)
	if err != nil {
		return nil, err
	}
	wt, err := initInput(og, n.inputs[1], path)
	if err != nil {
		return nil, err
	}
	if len(wt.dims) != 4 {
		return nil, errf(ErrBadGraph, path, "Conv weight %q has rank %d, want 4 (KO, KI, KH, KW)", wt.name, len(wt.dims))
	}
	wdata, err := wt.floatData(path)
	if err != nil {
		return nil, err
	}
	ko, kiG, kh, kw := int(wt.dims[0]), int(wt.dims[1]), int(wt.dims[2]), int(wt.dims[3])
	if ks := n.attrInts("kernel_shape"); ks != nil {
		if len(ks) != 2 || int(ks[0]) != kh || int(ks[1]) != kw {
			return nil, errf(ErrShapeMismatch, path, "kernel_shape %v != weight spatial dims (%d, %d)", ks, kh, kw)
		}
	}
	if err := noDilation(n, path); err != nil {
		return nil, err
	}
	sh, sw, err := onnxStrides(n, path)
	if err != nil {
		return nil, err
	}
	pad, err := onnxPad(n, path)
	if err != nil {
		return nil, err
	}
	var bias []float32
	if len(n.inputs) == 3 {
		bt, err := initInput(og, n.inputs[2], path)
		if err != nil {
			return nil, err
		}
		if bias, err = bt.floatData(path); err != nil {
			return nil, err
		}
	}
	group := n.attrInt("group", 1)
	switch {
	case group == 1:
		// (KO, KI, KH, KW) -> (KH, KW, KI, KO)
		weights := make([]float32, len(wdata))
		for o := 0; o < ko; o++ {
			for i := 0; i < kiG; i++ {
				for h := 0; h < kh; h++ {
					for w := 0; w < kw; w++ {
						weights[((h*kw+w)*kiG+i)*ko+o] = wdata[((o*kiG+i)*kh+h)*kw+w]
					}
				}
			}
		}
		return &jsonNode{Op: "Conv2D", Inputs: []string{x},
			Attrs:   &jsonAttrs{KH: kh, KW: kw, SH: sh, SW: sw, Pad: pad, KI: kiG, KO: ko},
			Weights: weights, Bias: bias}, nil
	case group == int64(ko) && kiG == 1:
		// Depthwise: (C, 1, KH, KW) -> (KH, KW, C, 1)
		weights := make([]float32, len(wdata))
		for c := 0; c < ko; c++ {
			for h := 0; h < kh; h++ {
				for w := 0; w < kw; w++ {
					weights[(h*kw+w)*ko+c] = wdata[(c*kh+h)*kw+w]
				}
			}
		}
		return &jsonNode{Op: "DepthwiseConv2D", Inputs: []string{x},
			Attrs:   &jsonAttrs{KH: kh, KW: kw, SH: sh, SW: sw, Pad: pad, C: ko},
			Weights: weights, Bias: bias}, nil
	default:
		return nil, errf(ErrUnsupportedOp, path, "Conv group %d (want 1, or depthwise group == channels)", group)
	}
}

// lowerGemm translates Gemm/MatMul to Dense. The ONNX weight layout
// (K, N) matches the internal (1, 1, KI, KO) order directly; transB
// needs a transpose.
func lowerGemm(og *onnxGraph, n *onnxNode, tensors map[string]string, path string) (*jsonNode, error) {
	want := []int{2}
	if n.opType == "Gemm" {
		want = []int{2, 3}
		if a := n.attrFloat("alpha", 1); a != 1 {
			return nil, errf(ErrUnsupportedOp, path, "Gemm alpha %v; only 1 is supported", a)
		}
		if b := n.attrFloat("beta", 1); b != 1 {
			return nil, errf(ErrUnsupportedOp, path, "Gemm beta %v; only 1 is supported", b)
		}
		if ta := n.attrInt("transA", 0); ta != 0 {
			return nil, errf(ErrUnsupportedOp, path, "Gemm transA %d; only 0 is supported", ta)
		}
	}
	if err := wantOnnxInputs(n, path, want...); err != nil {
		return nil, err
	}
	x, err := dataInput(og, tensors, n.inputs[0], path)
	if err != nil {
		return nil, err
	}
	wt, err := initInput(og, n.inputs[1], path)
	if err != nil {
		return nil, err
	}
	if len(wt.dims) != 2 {
		return nil, errf(ErrBadGraph, path, "%s weight %q has rank %d, want 2", n.opType, wt.name, len(wt.dims))
	}
	wdata, err := wt.floatData(path)
	if err != nil {
		return nil, err
	}
	ki, ko := int(wt.dims[0]), int(wt.dims[1])
	weights := wdata
	if n.opType == "Gemm" && n.attrInt("transB", 0) != 0 {
		// Dims are (N, K) when transB is set.
		ko, ki = int(wt.dims[0]), int(wt.dims[1])
		weights = make([]float32, len(wdata))
		for i := 0; i < ki; i++ {
			for o := 0; o < ko; o++ {
				weights[i*ko+o] = wdata[o*ki+i]
			}
		}
	}
	var bias []float32
	if len(n.inputs) == 3 {
		bt, err := initInput(og, n.inputs[2], path)
		if err != nil {
			return nil, err
		}
		if bias, err = bt.floatData(path); err != nil {
			return nil, err
		}
	}
	return &jsonNode{Op: "Dense", Inputs: []string{x},
		Attrs: &jsonAttrs{KI: ki, KO: ko}, Weights: weights, Bias: bias}, nil
}

// lowerBatchNorm translates BatchNormalization (inference form: inputs
// X, scale, B, mean, var).
func lowerBatchNorm(og *onnxGraph, n *onnxNode, tensors map[string]string, path string) (*jsonNode, error) {
	if err := wantOnnxInputs(n, path, 5); err != nil {
		return nil, err
	}
	x, err := dataInput(og, tensors, n.inputs[0], path)
	if err != nil {
		return nil, err
	}
	params := make([][]float32, 4)
	for i, ref := range n.inputs[1:] {
		t, err := initInput(og, ref, path)
		if err != nil {
			return nil, err
		}
		if params[i], err = t.floatData(path); err != nil {
			return nil, err
		}
	}
	return &jsonNode{Op: "BatchNorm", Inputs: []string{x},
		Attrs: &jsonAttrs{Eps: n.attrFloat("epsilon", 1e-5)},
		Gamma: params[0], Beta: params[1], Mean: params[2], Variance: params[3]}, nil
}

// lowerMaxPool translates MaxPool.
func lowerMaxPool(og *onnxGraph, n *onnxNode, tensors map[string]string, path string) (*jsonNode, error) {
	if err := wantOnnxInputs(n, path, 1); err != nil {
		return nil, err
	}
	x, err := dataInput(og, tensors, n.inputs[0], path)
	if err != nil {
		return nil, err
	}
	if cm := n.attrInt("ceil_mode", 0); cm != 0 {
		return nil, errf(ErrUnsupportedOp, path, "MaxPool ceil_mode %d; only 0 is supported", cm)
	}
	if err := noDilation(n, path); err != nil {
		return nil, err
	}
	ks := n.attrInts("kernel_shape")
	if len(ks) != 2 {
		return nil, errf(ErrBadGraph, path, "MaxPool kernel_shape needs 2 values, got %d", len(ks))
	}
	for _, v := range ks {
		if v < 1 || v > maxDim {
			return nil, errf(ErrBadGraph, path, "kernel extent %d outside [1, %d]", v, maxDim)
		}
	}
	sh, sw, err := onnxStrides(n, path)
	if err != nil {
		return nil, err
	}
	pad, err := onnxPad(n, path)
	if err != nil {
		return nil, err
	}
	return &jsonNode{Op: "MaxPool", Inputs: []string{x},
		Attrs: &jsonAttrs{KH: int(ks[0]), KW: int(ks[1]), SH: sh, SW: sw, Pad: pad}}, nil
}

// lowerAdd translates Add: tensor + tensor becomes the Add op; tensor +
// initializer vector (either order) becomes BiasAdd.
func lowerAdd(og *onnxGraph, n *onnxNode, tensors map[string]string, path string) (*jsonNode, error) {
	if err := wantOnnxInputs(n, path, 2); err != nil {
		return nil, err
	}
	aInit := og.initializers[n.inputs[0]]
	bInit := og.initializers[n.inputs[1]]
	switch {
	case aInit == nil && bInit == nil:
		a, err := dataInput(og, tensors, n.inputs[0], path)
		if err != nil {
			return nil, err
		}
		b, err := dataInput(og, tensors, n.inputs[1], path)
		if err != nil {
			return nil, err
		}
		return &jsonNode{Op: "Add", Inputs: []string{a, b}}, nil
	case aInit != nil && bInit != nil:
		return nil, errf(ErrBadGraph, path, "Add of two initializers")
	default:
		ref, init := n.inputs[0], bInit
		if aInit != nil {
			ref, init = n.inputs[1], aInit
		}
		x, err := dataInput(og, tensors, ref, path)
		if err != nil {
			return nil, err
		}
		bias, err := init.floatData(path)
		if err != nil {
			return nil, err
		}
		return &jsonNode{Op: "BiasAdd", Inputs: []string{x}, Bias: bias}, nil
	}
}

// lowerConcat translates Concat, mapping the NCHW axis index to the
// internal axis name (1 -> C, 2 -> H, 3 -> W).
func lowerConcat(og *onnxGraph, n *onnxNode, tensors map[string]string, path string) (*jsonNode, error) {
	if len(n.inputs) < 2 {
		return nil, errf(ErrBadGraph, path, "Concat with %d inputs, want >= 2", len(n.inputs))
	}
	a, ok := n.attrs["axis"]
	if !ok || !a.hasI {
		return nil, errf(ErrBadGraph, path, "Concat requires an axis attribute")
	}
	axis := a.i
	if axis < 0 {
		axis += 4
	}
	var name string
	switch axis {
	case 1:
		name = "C"
	case 2:
		name = "H"
	case 3:
		name = "W"
	default:
		return nil, errf(ErrUnsupportedOp, path, "Concat axis %d; want a C/H/W axis of an NCHW tensor", a.i)
	}
	ins := make([]string, len(n.inputs))
	for i, ref := range n.inputs {
		x, err := dataInput(og, tensors, ref, path)
		if err != nil {
			return nil, err
		}
		ins[i] = x
	}
	return &jsonNode{Op: "Concat", Inputs: ins, Attrs: &jsonAttrs{Axis: name}}, nil
}
