package importer

import (
	"bytes"
	"testing"

	"clsacim/internal/nn"
)

func TestONNXSmallCNNMatchesJSONPath(t *testing.T) {
	res, err := Import(bytes.NewReader(smallCNNONNX(t)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Format != FormatONNX {
		t.Fatalf("format %v, want onnx", res.Format)
	}
	if res.Name != "smallcnn" {
		t.Errorf("name %q, want smallcnn", res.Name)
	}
	// The ONNX model uses the same node names and (transposed) weights
	// as the reference network, so lowering must reconstruct it exactly.
	assertGraphsEqual(t, smallCNNGraph(t), res.Graph)
}

// onnxOneNode builds a model with the given single node plus
// initializers, an NCHW input, and one declared output tensor.
func onnxOneNode(node []byte, inits [][]byte, inDims []int64, outTensor string) []byte {
	return encModel(encGraph("t",
		[][]byte{node},
		inits,
		[][]byte{encValueInfo("input", inDims)},
		[][]byte{encValueInfo(outTensor, nil)},
	))
}

func importONNXGraph(t *testing.T, model []byte) *nn.Graph {
	t.Helper()
	res, err := Import(bytes.NewReader(model), Options{Format: FormatONNX})
	if err != nil {
		t.Fatal(err)
	}
	return res.Graph
}

func TestONNXLeakyReluDefaultAlpha(t *testing.T) {
	g := importONNXGraph(t, onnxOneNode(
		encNode("LeakyRelu", "lr", []string{"input"}, []string{"out"}),
		nil, []int64{1, 3, 4, 4}, "out"))
	op := g.ByName("lr").Op.(*nn.Activation)
	if op.Func != nn.ActLeakyReLU || op.Alpha != 0.01 {
		t.Errorf("lowered activation %+v, want leaky alpha 0.01", op)
	}
}

func TestONNXDepthwiseConv(t *testing.T) {
	// 3-channel depthwise 2x2: ONNX weight layout (C, 1, KH, KW).
	w := testWeights(3*2*2, 0)
	g := importONNXGraph(t, onnxOneNode(
		encNode("Conv", "dw", []string{"input", "w"}, []string{"out"},
			encAttrInt("group", 3)),
		[][]byte{encTensor("w", []int64{3, 1, 2, 2}, w)},
		[]int64{1, 3, 5, 5}, "out"))
	op := g.ByName("dw").Op.(*nn.DepthwiseConv2D)
	if op.C != 3 || op.KH != 2 || op.KW != 2 {
		t.Fatalf("lowered depthwise %+v", op)
	}
	// ours[(h*KW+w)*C+c] == onnx[(c*KH+h)*KW+w]
	for c := 0; c < 3; c++ {
		for h := 0; h < 2; h++ {
			for x := 0; x < 2; x++ {
				if got, want := op.W.Data[(h*2+x)*3+c], w[(c*2+h)*2+x]; got != want {
					t.Fatalf("weight (c=%d,h=%d,w=%d) = %v, want %v", c, h, x, got, want)
				}
			}
		}
	}
}

func TestONNXGemmTransB(t *testing.T) {
	// (N, K) = (4, 6) with transB: lowered Dense must be KI=6, KO=4
	// with ours[i*KO+o] == onnx[o*KI+i].
	w := testWeights(24, 0)
	g := importONNXGraph(t, onnxOneNode(
		encNode("Gemm", "fc", []string{"input", "w"}, []string{"out"},
			encAttrInt("transB", 1)),
		[][]byte{encTensor("w", []int64{4, 6}, w)},
		[]int64{1, 6}, "out"))
	op := g.ByName("fc").Op.(*nn.Dense)
	if op.KI != 6 || op.KO != 4 {
		t.Fatalf("lowered dense KI=%d KO=%d, want 6, 4", op.KI, op.KO)
	}
	for i := 0; i < 6; i++ {
		for o := 0; o < 4; o++ {
			if got, want := op.W.Data[i*4+o], w[o*6+i]; got != want {
				t.Fatalf("weight (i=%d,o=%d) = %v, want %v", i, o, got, want)
			}
		}
	}
}

func TestONNXMatMul(t *testing.T) {
	w := testWeights(12, 0)
	g := importONNXGraph(t, onnxOneNode(
		encNode("MatMul", "mm", []string{"input", "w"}, []string{"out"}),
		[][]byte{encTensor("w", []int64{3, 4}, w)},
		[]int64{1, 3}, "out"))
	op := g.ByName("mm").Op.(*nn.Dense)
	if op.KI != 3 || op.KO != 4 {
		t.Fatalf("lowered dense KI=%d KO=%d, want 3, 4", op.KI, op.KO)
	}
	for i, v := range w { // (K, N) is already the internal layout
		if op.W.Data[i] != v {
			t.Fatalf("weight %d = %v, want %v", i, op.W.Data[i], v)
		}
	}
}

func TestONNXAddLowersToBiasAddForInitializer(t *testing.T) {
	bias := testWeights(3, 0)
	for name, inputs := range map[string][]string{
		"tensor+init": {"input", "b"},
		"init+tensor": {"b", "input"},
	} {
		t.Run(name, func(t *testing.T) {
			g := importONNXGraph(t, onnxOneNode(
				encNode("Add", "add", inputs, []string{"out"}),
				[][]byte{encTensor("b", []int64{3}, bias)},
				[]int64{1, 3, 4, 4}, "out"))
			op := g.ByName("add").Op.(*nn.BiasAdd)
			if len(op.B) != 3 {
				t.Fatalf("bias length %d, want 3", len(op.B))
			}
		})
	}
}

func TestONNXResidualAddAndConcat(t *testing.T) {
	// input -> relu twice, Add them, then Concat on the channel axis
	// (negative axis index exercises the +4 normalization).
	model := encModel(encGraph("t",
		[][]byte{
			encNode("Relu", "r1", []string{"input"}, []string{"r1_out"}),
			encNode("Relu", "r2", []string{"input"}, []string{"r2_out"}),
			encNode("Add", "add", []string{"r1_out", "r2_out"}, []string{"add_out"}),
			encNode("Concat", "cat", []string{"add_out", "r1_out"}, []string{"cat_out"},
				encAttrInt("axis", -3)),
		},
		nil,
		[][]byte{encValueInfo("input", []int64{1, 3, 4, 4})},
		[][]byte{encValueInfo("cat_out", nil)},
	))
	g := importONNXGraph(t, model)
	if _, ok := g.ByName("add").Op.(*nn.Add); !ok {
		t.Fatalf("add lowered to %T", g.ByName("add").Op)
	}
	cat, ok := g.ByName("cat").Op.(*nn.Concat)
	if !ok || cat.Axis != nn.AxisC {
		t.Fatalf("concat lowered to %T axis %v, want Concat on C", g.ByName("cat").Op, cat)
	}
	if s := g.ByName("cat").OutShape; s.C != 6 {
		t.Fatalf("concat output %v, want 6 channels", s)
	}
}

// TestONNXErrorPaths pins the typed errors and node paths of the ONNX
// reader.
func TestONNXErrorPaths(t *testing.T) {
	in4 := []int64{1, 3, 4, 4}
	cases := []struct {
		name  string
		model []byte
		kind  error
		msg   string
	}{
		{
			name:  "truncated protobuf",
			model: []byte{0x3a, 0xff},
			kind:  ErrBadGraph,
			msg:   "importer: onnx: bad graph: truncated varint at byte 2",
		},
		{
			name:  "no graph",
			model: func() []byte { var p pw; p.intField(1, 8); return p.Bytes() }(),
			kind:  ErrBadGraph,
			msg:   "importer: onnx: bad graph: model has no graph",
		},
		{
			name: "unsupported op",
			model: onnxOneNode(encNode("Softmax", "sm", []string{"input"}, []string{"out"}),
				nil, in4, "out"),
			kind: ErrUnsupportedOp,
			msg:  `importer: node[0] (Softmax "sm"): unsupported op: op "Softmax"`,
		},
		{
			name: "grouped conv",
			model: onnxOneNode(
				encNode("Conv", "c", []string{"input", "w"}, []string{"out"},
					encAttrInt("group", 2)),
				[][]byte{encTensor("w", []int64{4, 2, 1, 1}, testWeights(8, 0))},
				[]int64{1, 4, 4, 4}, "out"),
			kind: ErrUnsupportedOp,
			msg:  `importer: node[0] (Conv "c"): unsupported op: Conv group 2 (want 1, or depthwise group == channels)`,
		},
		{
			name: "graph-computed weights",
			model: onnxOneNode(
				encNode("Conv", "c", []string{"input", "notinit"}, []string{"out"}),
				nil, in4, "out"),
			kind: ErrBadGraph,
			msg:  `importer: node[0] (Conv "c"): bad graph: input "notinit" must be an initializer (graph-computed weights are not supported)`,
		},
		{
			name: "same auto_pad",
			model: onnxOneNode(
				encNode("Conv", "c", []string{"input", "w"}, []string{"out"},
					encAttrString("auto_pad", "SAME_UPPER")),
				[][]byte{encTensor("w", []int64{4, 3, 1, 1}, testWeights(12, 0))},
				in4, "out"),
			kind: ErrUnsupportedOp,
			msg:  `importer: node[0] (Conv "c"): unsupported op: auto_pad "SAME_UPPER"; use explicit pads or VALID`,
		},
		{
			name: "flatten axis",
			model: onnxOneNode(
				encNode("Flatten", "f", []string{"input"}, []string{"out"},
					encAttrInt("axis", 2)),
				nil, in4, "out"),
			kind: ErrUnsupportedOp,
			msg:  `importer: node[0] (Flatten "f"): unsupported op: flatten axis 2; only axis 1 is supported`,
		},
		{
			name: "batch dimension",
			model: onnxOneNode(encNode("Relu", "r", []string{"input"}, []string{"out"}),
				nil, []int64{2, 3, 4, 4}, "out"),
			kind: ErrUnsupportedOp,
			msg:  "importer: onnx input input: unsupported op: batch dimension 2; only batch 1 is supported",
		},
		{
			name: "unknown output tensor",
			model: onnxOneNode(encNode("Relu", "r", []string{"input"}, []string{"out"}),
				nil, in4, "ghost"),
			kind: ErrBadGraph,
			msg:  `importer: onnx: bad graph: graph output "ghost" is not produced by any node`,
		},
		{
			name: "dangling tensor ref",
			model: onnxOneNode(encNode("Relu", "r", []string{"ghost"}, []string{"out"}),
				nil, in4, "out"),
			kind: ErrBadGraph,
			msg:  `importer: node[0] (Relu "r"): bad graph: unknown input tensor "ghost"`,
		},
		{
			name: "initializer length mismatch",
			model: onnxOneNode(
				encNode("Conv", "c", []string{"input", "w"}, []string{"out"}),
				[][]byte{encTensor("w", []int64{4, 3, 2, 2}, testWeights(7, 0))},
				in4, "out"),
			kind: ErrShapeMismatch,
			msg:  `importer: node[0] (Conv "c"): shape mismatch: initializer "w" has 7 values, dims [4 3 2 2] need 48`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Import(bytes.NewReader(tc.model), Options{Format: FormatONNX})
			ie := importError(t, err, tc.kind)
			if ie.Error() != tc.msg {
				t.Errorf("message\n got %q\nwant %q", ie.Error(), tc.msg)
			}
		})
	}
}
