package importer

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"clsacim/internal/nn"
)

// ExportJSON writes g as a clsacim-graph/v1 document: the inverse of
// the JSON reader, covering every nn operator kind (weights, biases,
// and BN parameters included), so Import(ExportJSON(g)) reconstructs
// an equivalent graph. The layout is deterministic — a fixed header,
// then one compact node object per line — which keeps checked-in graph
// files diffable node by node.
//
// The graph input is exported as the document's "input" declaration;
// an exported graph must therefore have its input node set.
func ExportJSON(g *nn.Graph, name string, w io.Writer) error {
	if g.Input == nil {
		return errf(ErrBadGraph, graphPath, "graph has no input node")
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\n  \"schema\": %q,\n", SchemaV1)
	if name != "" {
		fmt.Fprintf(bw, "  \"name\": %q,\n", name)
	}
	in, err := json.Marshal(jsonInput{
		Name:  g.Input.Name,
		Shape: []int{g.Input.OutShape.H, g.Input.OutShape.W, g.Input.OutShape.C},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(bw, "  \"input\": %s,\n  \"nodes\": [\n", in)
	first := true
	for _, n := range g.Nodes {
		if n == g.Input {
			continue
		}
		jn, err := exportNode(n)
		if err != nil {
			return err
		}
		b, err := json.Marshal(jn)
		if err != nil {
			return err
		}
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString("    ")
		bw.Write(b)
	}
	outs := make([]string, len(g.Outputs))
	for i, o := range g.Outputs {
		outs[i] = o.Name
	}
	ob, err := json.Marshal(outs)
	if err != nil {
		return err
	}
	fmt.Fprintf(bw, "\n  ],\n  \"outputs\": %s\n}\n", ob)
	return bw.Flush()
}

// exportNode renders one graph node as its schema object.
func exportNode(n *nn.Node) (*jsonNode, error) {
	jn := &jsonNode{
		Name:   n.Name,
		Inputs: make([]string, len(n.Inputs)),
		Shape:  []int{n.OutShape.H, n.OutShape.W, n.OutShape.C},
	}
	for i, in := range n.Inputs {
		jn.Inputs[i] = in.Name
	}
	switch op := n.Op.(type) {
	case *nn.Conv2D:
		jn.Op = "Conv2D"
		jn.Attrs = &jsonAttrs{KH: op.KH, KW: op.KW, SH: op.SH, SW: op.SW,
			Pad: exportPad(op.Pad), KI: op.KI, KO: op.KO}
		if op.W != nil {
			jn.Weights = op.W.Data
		}
		jn.Bias = op.Bias
	case *nn.DepthwiseConv2D:
		jn.Op = "DepthwiseConv2D"
		jn.Attrs = &jsonAttrs{KH: op.KH, KW: op.KW, SH: op.SH, SW: op.SW,
			Pad: exportPad(op.Pad), C: op.C}
		if op.W != nil {
			jn.Weights = op.W.Data
		}
		jn.Bias = op.Bias
	case *nn.Dense:
		jn.Op = "Dense"
		jn.Attrs = &jsonAttrs{KI: op.KI, KO: op.KO}
		if op.W != nil {
			jn.Weights = op.W.Data
		}
		jn.Bias = op.Bias
	case *nn.BatchNorm:
		jn.Op = "BatchNorm"
		jn.Attrs = &jsonAttrs{Eps: op.Eps}
		jn.Gamma, jn.Beta, jn.Mean, jn.Variance = op.Gamma, op.Beta, op.Mean, op.Var
	case *nn.BiasAdd:
		jn.Op = "BiasAdd"
		jn.Bias = op.B
	case *nn.Activation:
		jn.Op = "Activation"
		jn.Attrs = &jsonAttrs{Act: op.Func.String(), Alpha: op.Alpha}
	case *nn.MaxPool:
		jn.Op = "MaxPool"
		jn.Attrs = &jsonAttrs{KH: op.KH, KW: op.KW, SH: op.SH, SW: op.SW, Pad: exportPad(op.Pad)}
	case *nn.AvgPool:
		jn.Op = "AvgPool"
		if op.Global {
			jn.Attrs = &jsonAttrs{Global: true}
		} else {
			jn.Attrs = &jsonAttrs{KH: op.KH, KW: op.KW, SH: op.SH, SW: op.SW}
		}
	case *nn.Pad:
		jn.Op = "Pad"
		jn.Attrs = &jsonAttrs{Pad: []int{op.Pad.Top, op.Pad.Bottom, op.Pad.Left, op.Pad.Right}, Value: op.Value}
	case *nn.Concat:
		jn.Op = "Concat"
		jn.Attrs = &jsonAttrs{Axis: op.Axis.String()}
	case *nn.Add:
		jn.Op = "Add"
	case *nn.UpSample:
		jn.Op = "UpSample"
		jn.Attrs = &jsonAttrs{Factor: op.Factor}
	case *nn.Slice:
		jn.Op = "Slice"
		jn.Attrs = &jsonAttrs{Box: []int{op.Box.H0, op.Box.H1, op.Box.W0, op.Box.W1, op.Box.C0, op.Box.C1}}
	case *nn.Flatten:
		jn.Op = "Flatten"
	default:
		return nil, errf(ErrUnsupportedOp, fmt.Sprintf("node %q", n.Name), "cannot export op %T", n.Op)
	}
	return jn, nil
}

// exportPad renders padding as its attribute form (nil when zero).
func exportPad(p nn.Padding) []int {
	if !p.Any() {
		return nil
	}
	return []int{p.Top, p.Bottom, p.Left, p.Right}
}
