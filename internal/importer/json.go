package importer

import (
	"encoding/json"
	"fmt"
	"io"

	"clsacim/internal/nn"
	"clsacim/internal/region"
	"clsacim/internal/tensor"
)

// SchemaV1 is the versioned identifier a clsacim graph document must
// declare in its "schema" field.
const SchemaV1 = "clsacim-graph/v1"

// maxDim bounds every tensor dimension and windowing attribute. It
// keeps hostile inputs from overflowing shape arithmetic: with every
// extent below 2^20, any H*W*C product stays far inside int64.
const maxDim = 1 << 20

// jsonGraph is the clsacim-graph/v1 document. Nodes must be listed
// producers-first (a node may only reference earlier nodes or the
// input), which also guarantees acyclicity. The ONNX reader lowers
// onto this same structure before building, so both frontends share
// one validation and graph-construction path.
type jsonGraph struct {
	Schema  string     `json:"schema"`
	Name    string     `json:"name,omitempty"`
	Input   *jsonInput `json:"input"`
	Nodes   []jsonNode `json:"nodes"`
	Outputs []string   `json:"outputs"`
}

// jsonInput declares the single graph input.
type jsonInput struct {
	Name string `json:"name"`
	// Shape is (H, W, C).
	Shape []int `json:"shape"`
}

// jsonNode is one operator instance. Weights and per-channel parameter
// vectors ride directly on the node ("initializers"); the flat weights
// layout is row-major (KH, KW, KI, KO), matching nn.ConvWeights.
type jsonNode struct {
	Name   string     `json:"name"`
	Op     string     `json:"op"`
	Inputs []string   `json:"inputs,omitempty"`
	Attrs  *jsonAttrs `json:"attrs,omitempty"`
	// Shape optionally declares the node's output (H, W, C); when
	// present it is validated against the inferred shape.
	Shape    []int     `json:"shape,omitempty"`
	Weights  []float32 `json:"weights,omitempty"`
	Bias     []float32 `json:"bias,omitempty"`
	Gamma    []float32 `json:"gamma,omitempty"`
	Beta     []float32 `json:"beta,omitempty"`
	Mean     []float32 `json:"mean,omitempty"`
	Variance []float32 `json:"variance,omitempty"`
}

// jsonAttrs carries the per-op attributes; which fields apply depends
// on the op kind (see docs/importing.md for the table).
type jsonAttrs struct {
	KH     int     `json:"kh,omitempty"`
	KW     int     `json:"kw,omitempty"`
	SH     int     `json:"sh,omitempty"`
	SW     int     `json:"sw,omitempty"`
	Pad    []int   `json:"pad,omitempty"` // top, bottom, left, right
	KI     int     `json:"ki,omitempty"`
	KO     int     `json:"ko,omitempty"`
	C      int     `json:"c,omitempty"`
	Eps    float32 `json:"eps,omitempty"`
	Act    string  `json:"act,omitempty"`
	Alpha  float32 `json:"alpha,omitempty"`
	Global bool    `json:"global,omitempty"`
	Axis   string  `json:"axis,omitempty"`
	Factor int     `json:"factor,omitempty"`
	Box    []int   `json:"box,omitempty"` // h0, h1, w0, w1, c0, c1
	Value  float32 `json:"value,omitempty"`
}

// importJSON decodes and builds a clsacim-graph/v1 document.
func importJSON(r io.Reader, maxBytes int64) (*nn.Graph, string, error) {
	dec := json.NewDecoder(io.LimitReader(r, maxBytes))
	dec.DisallowUnknownFields()
	var doc jsonGraph
	if err := dec.Decode(&doc); err != nil {
		return nil, "", errf(ErrBadGraph, graphPath, "decoding JSON: %v", err)
	}
	g, err := buildGraph(&doc)
	if err != nil {
		return nil, "", err
	}
	return g, doc.Name, nil
}

// nodePath renders the canonical Error.Path of the i-th node.
func nodePath(i int, name string) string {
	return fmt.Sprintf("nodes[%d] (%q)", i, name)
}

// buildGraph lowers a decoded document into a validated *nn.Graph.
func buildGraph(doc *jsonGraph) (*nn.Graph, error) {
	if doc.Schema != SchemaV1 {
		return nil, errf(ErrBadGraph, graphPath, "schema %q, want %q", doc.Schema, SchemaV1)
	}
	if doc.Input == nil {
		return nil, errf(ErrBadGraph, graphPath, "missing input declaration")
	}
	if doc.Input.Name == "" {
		return nil, errf(ErrBadGraph, "input", "input needs a name")
	}
	shape, err := shapeOf(doc.Input.Shape, "input")
	if err != nil {
		return nil, err
	}
	g := nn.NewGraph()
	byName := map[string]*nn.Node{doc.Input.Name: g.AddInput(doc.Input.Name, shape)}

	for i := range doc.Nodes {
		n := &doc.Nodes[i]
		path := nodePath(i, n.Name)
		if n.Name == "" {
			return nil, errf(ErrBadGraph, nodePath(i, ""), "node needs a name")
		}
		if _, dup := byName[n.Name]; dup {
			return nil, errf(ErrBadGraph, path, "duplicate node name %q", n.Name)
		}
		op, err := opOf(n, path)
		if err != nil {
			return nil, err
		}
		ins := make([]*nn.Node, len(n.Inputs))
		for j, ref := range n.Inputs {
			src, ok := byName[ref]
			if !ok {
				return nil, errf(ErrBadGraph, path, "unknown input %q (nodes must be listed producers-first)", ref)
			}
			ins[j] = src
		}
		node, err := g.TryAdd(n.Name, op, ins...)
		if err != nil {
			return nil, errf(ErrShapeMismatch, path, "%v", err)
		}
		if err := checkShape(node.OutShape, n.Shape, path); err != nil {
			return nil, err
		}
		byName[n.Name] = node
	}

	if len(doc.Outputs) == 0 {
		return nil, errf(ErrBadGraph, graphPath, "no outputs declared")
	}
	for _, ref := range doc.Outputs {
		out, ok := byName[ref]
		if !ok {
			return nil, errf(ErrBadGraph, "outputs", "unknown output %q", ref)
		}
		g.MarkOutput(out)
	}
	if err := g.Validate(); err != nil {
		return nil, errf(ErrBadGraph, graphPath, "%v", err)
	}
	return g, nil
}

// shapeOf validates a declared (H, W, C) triple.
func shapeOf(dims []int, path string) (tensor.Shape, error) {
	if len(dims) != 3 {
		return tensor.Shape{}, errf(ErrBadGraph, path, "shape needs 3 dims (H, W, C), got %d", len(dims))
	}
	for _, d := range dims {
		if d < 1 || d > maxDim {
			return tensor.Shape{}, errf(ErrBadGraph, path, "shape dim %d outside [1, %d]", d, maxDim)
		}
	}
	return tensor.NewShape(dims[0], dims[1], dims[2]), nil
}

// checkShape compares the inferred output shape against the node's
// optional declared shape, and bounds every extent (so hostile
// upsample/flatten chains cannot overflow downstream arithmetic).
func checkShape(got tensor.Shape, declared []int, path string) error {
	if got.H < 1 || got.H > maxDim || got.W < 1 || got.W > maxDim || got.C < 1 || got.C > maxDim {
		return errf(ErrShapeMismatch, path, "inferred shape %v outside [1, %d] per dim", got, maxDim)
	}
	if declared == nil {
		return nil
	}
	if len(declared) != 3 {
		return errf(ErrShapeMismatch, path, "declared shape needs 3 dims (H, W, C), got %d", len(declared))
	}
	want := tensor.NewShape(declared[0], declared[1], declared[2])
	if !got.Equal(want) {
		return errf(ErrShapeMismatch, path, "declared shape %v != inferred %v", want, got)
	}
	return nil
}

// padOf validates a [top, bottom, left, right] padding attribute.
func padOf(p []int, path string) (nn.Padding, error) {
	if p == nil {
		return nn.Padding{}, nil
	}
	if len(p) != 4 {
		return nn.Padding{}, errf(ErrBadGraph, path, "pad needs 4 values (top, bottom, left, right), got %d", len(p))
	}
	for _, v := range p {
		if v < 0 || v > maxDim {
			return nn.Padding{}, errf(ErrBadGraph, path, "pad value %d outside [0, %d]", v, maxDim)
		}
	}
	return nn.Padding{Top: p[0], Bottom: p[1], Left: p[2], Right: p[3]}, nil
}

// window validates the kernel/stride attributes of a windowed op.
func window(a *jsonAttrs, path string) (kh, kw, sh, sw int, err error) {
	for _, v := range [...]int{a.KH, a.KW, a.SH, a.SW} {
		if v < 1 || v > maxDim {
			return 0, 0, 0, 0, errf(ErrBadGraph, path, "window attrs (kh, kw, sh, sw) = (%d, %d, %d, %d) must be in [1, %d]",
				a.KH, a.KW, a.SH, a.SW, maxDim)
		}
	}
	return a.KH, a.KW, a.SH, a.SW, nil
}

// channels validates a channel-count attribute.
func channels(v int, field, path string) (int, error) {
	if v < 1 || v > maxDim {
		return 0, errf(ErrBadGraph, path, "%s = %d outside [1, %d]", field, v, maxDim)
	}
	return v, nil
}

// weightsOf wraps a flat weight slice as a kernel tensor after
// validating its length (the dims are already bounded by maxDim, so
// the int64 product cannot overflow).
func weightsOf(data []float32, kh, kw, ki, ko int, path string) (*nn.ConvWeights, error) {
	if len(data) == 0 {
		return nil, nil // shape-only node
	}
	want := int64(kh) * int64(kw) * int64(ki) * int64(ko)
	if int64(len(data)) != want {
		return nil, errf(ErrShapeMismatch, path, "weights length %d != kh*kw*ki*ko = %d", len(data), want)
	}
	return &nn.ConvWeights{KH: kh, KW: kw, KI: ki, KO: ko, Data: data}, nil
}

// vecOf validates an optional per-channel vector length.
func vecOf(data []float32, n int, field, path string) ([]float32, error) {
	if len(data) == 0 {
		return nil, nil
	}
	if len(data) != n {
		return nil, errf(ErrShapeMismatch, path, "%s length %d != %d", field, len(data), n)
	}
	return data, nil
}

// needAttrs fails when an op that requires attributes has none.
func needAttrs(n *jsonNode, path string) (*jsonAttrs, error) {
	if n.Attrs == nil {
		return nil, errf(ErrBadGraph, path, "op %s requires attrs", n.Op)
	}
	return n.Attrs, nil
}

// opOf constructs the nn operator for one node.
func opOf(n *jsonNode, path string) (nn.Op, error) {
	switch n.Op {
	case "Conv2D":
		a, err := needAttrs(n, path)
		if err != nil {
			return nil, err
		}
		kh, kw, sh, sw, err := window(a, path)
		if err != nil {
			return nil, err
		}
		pad, err := padOf(a.Pad, path)
		if err != nil {
			return nil, err
		}
		ki, err := channels(a.KI, "ki", path)
		if err != nil {
			return nil, err
		}
		ko, err := channels(a.KO, "ko", path)
		if err != nil {
			return nil, err
		}
		w, err := weightsOf(n.Weights, kh, kw, ki, ko, path)
		if err != nil {
			return nil, err
		}
		bias, err := vecOf(n.Bias, ko, "bias", path)
		if err != nil {
			return nil, err
		}
		return &nn.Conv2D{KH: kh, KW: kw, SH: sh, SW: sw, Pad: pad, KI: ki, KO: ko, W: w, Bias: bias}, nil

	case "DepthwiseConv2D":
		a, err := needAttrs(n, path)
		if err != nil {
			return nil, err
		}
		kh, kw, sh, sw, err := window(a, path)
		if err != nil {
			return nil, err
		}
		pad, err := padOf(a.Pad, path)
		if err != nil {
			return nil, err
		}
		c, err := channels(a.C, "c", path)
		if err != nil {
			return nil, err
		}
		w, err := weightsOf(n.Weights, kh, kw, c, 1, path)
		if err != nil {
			return nil, err
		}
		bias, err := vecOf(n.Bias, c, "bias", path)
		if err != nil {
			return nil, err
		}
		return &nn.DepthwiseConv2D{KH: kh, KW: kw, SH: sh, SW: sw, Pad: pad, C: c, W: w, Bias: bias}, nil

	case "Dense":
		a, err := needAttrs(n, path)
		if err != nil {
			return nil, err
		}
		ki, err := channels(a.KI, "ki", path)
		if err != nil {
			return nil, err
		}
		ko, err := channels(a.KO, "ko", path)
		if err != nil {
			return nil, err
		}
		w, err := weightsOf(n.Weights, 1, 1, ki, ko, path)
		if err != nil {
			return nil, err
		}
		bias, err := vecOf(n.Bias, ko, "bias", path)
		if err != nil {
			return nil, err
		}
		return &nn.Dense{KI: ki, KO: ko, W: w, Bias: bias}, nil

	case "BatchNorm":
		eps := float32(1e-3)
		if n.Attrs != nil && n.Attrs.Eps != 0 {
			eps = n.Attrs.Eps
		}
		// Parameter lengths are validated against the input channel
		// count by shape inference.
		return &nn.BatchNorm{Gamma: n.Gamma, Beta: n.Beta, Mean: n.Mean, Var: n.Variance, Eps: eps}, nil

	case "BiasAdd":
		return &nn.BiasAdd{B: n.Bias}, nil

	case "Activation":
		var fn nn.ActFunc
		var alpha float32
		act := ""
		if n.Attrs != nil {
			act = n.Attrs.Act
			alpha = n.Attrs.Alpha
		}
		switch act {
		case "", "linear":
			fn = nn.ActLinear
		case "relu":
			fn = nn.ActReLU
		case "leaky":
			fn = nn.ActLeakyReLU
		default:
			return nil, errf(ErrUnsupportedOp, path, "activation %q (want linear, relu, or leaky)", act)
		}
		return &nn.Activation{Func: fn, Alpha: alpha}, nil

	case "MaxPool":
		a, err := needAttrs(n, path)
		if err != nil {
			return nil, err
		}
		kh, kw, sh, sw, err := window(a, path)
		if err != nil {
			return nil, err
		}
		pad, err := padOf(a.Pad, path)
		if err != nil {
			return nil, err
		}
		return &nn.MaxPool{KH: kh, KW: kw, SH: sh, SW: sw, Pad: pad}, nil

	case "AvgPool":
		a, err := needAttrs(n, path)
		if err != nil {
			return nil, err
		}
		if a.Global {
			return &nn.AvgPool{Global: true}, nil
		}
		kh, kw, sh, sw, err := window(a, path)
		if err != nil {
			return nil, err
		}
		return &nn.AvgPool{KH: kh, KW: kw, SH: sh, SW: sw}, nil

	case "Pad":
		a, err := needAttrs(n, path)
		if err != nil {
			return nil, err
		}
		pad, err := padOf(a.Pad, path)
		if err != nil {
			return nil, err
		}
		return &nn.Pad{Pad: pad, Value: a.Value}, nil

	case "Concat":
		a, err := needAttrs(n, path)
		if err != nil {
			return nil, err
		}
		var axis nn.Axis
		switch a.Axis {
		case "H":
			axis = nn.AxisH
		case "W":
			axis = nn.AxisW
		case "C":
			axis = nn.AxisC
		default:
			return nil, errf(ErrBadGraph, path, "concat axis %q (want H, W, or C)", a.Axis)
		}
		return &nn.Concat{Axis: axis}, nil

	case "Add":
		return &nn.Add{}, nil

	case "UpSample":
		a, err := needAttrs(n, path)
		if err != nil {
			return nil, err
		}
		if a.Factor < 1 || a.Factor > maxDim {
			return nil, errf(ErrBadGraph, path, "upsample factor %d outside [1, %d]", a.Factor, maxDim)
		}
		return &nn.UpSample{Factor: a.Factor}, nil

	case "Slice":
		a, err := needAttrs(n, path)
		if err != nil {
			return nil, err
		}
		if len(a.Box) != 6 {
			return nil, errf(ErrBadGraph, path, "slice box needs 6 values (h0, h1, w0, w1, c0, c1), got %d", len(a.Box))
		}
		for _, v := range a.Box {
			if v < 0 || v > maxDim {
				return nil, errf(ErrBadGraph, path, "slice box value %d outside [0, %d]", v, maxDim)
			}
		}
		return &nn.Slice{Box: region.NewBox(a.Box[0], a.Box[1], a.Box[2], a.Box[3], a.Box[4], a.Box[5])}, nil

	case "Flatten":
		return &nn.Flatten{}, nil

	default:
		return nil, errf(ErrUnsupportedOp, path, "op %q", n.Op)
	}
}
