package importer

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestCheckedInSmallCNN pins the checked-in graph files to the
// reference network: testdata/smallcnn.json and testdata/smallcnn.onnx
// must stay byte-identical to what the test encoders produce (so the
// fixtures can't drift from the code), and importing either must
// reconstruct the reference graph exactly.
//
// Regenerate after an intentional schema or network change with
//
//	go test ./internal/importer -run TestCheckedInSmallCNN -update
func TestCheckedInSmallCNN(t *testing.T) {
	want := smallCNNGraph(t)
	var jsonBuf bytes.Buffer
	if err := ExportJSON(want, "smallcnn", &jsonBuf); err != nil {
		t.Fatal(err)
	}
	onnxBytes := smallCNNONNX(t)

	jsonPath := filepath.Join("testdata", "smallcnn.json")
	onnxPath := filepath.Join("testdata", "smallcnn.onnx")
	if *update {
		writeFile(t, jsonPath, jsonBuf.Bytes())
		writeFile(t, onnxPath, onnxBytes)
		writeSeedCorpora(t, jsonBuf.Bytes(), onnxBytes)
	}

	for _, tc := range []struct {
		path    string
		current []byte
	}{
		{jsonPath, jsonBuf.Bytes()},
		{onnxPath, onnxBytes},
	} {
		onDisk, err := os.ReadFile(tc.path)
		if err != nil {
			t.Fatalf("%v (run with -update to generate)", err)
		}
		if !bytes.Equal(onDisk, tc.current) {
			t.Errorf("%s is stale; regenerate with -update", tc.path)
		}
		res, err := ImportFile(tc.path, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Name != "smallcnn" {
			t.Errorf("%s: imported name %q, want smallcnn", tc.path, res.Name)
		}
		assertGraphsEqual(t, want, res.Graph)
	}
}

func writeFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// writeSeedCorpora regenerates the fuzz seed-corpus files under
// testdata/fuzz in the native "go test fuzz v1" encoding.
func writeSeedCorpora(t *testing.T, jsonDoc, onnxDoc []byte) {
	t.Helper()
	seeds := map[string][]byte{
		"FuzzImportJSON/seed_smallcnn": jsonDoc,
		"FuzzImportJSON/seed_minimal": []byte(`{"schema": "clsacim-graph/v1", "input": {"name": "in", "shape": [4, 4, 1]}, ` +
			`"nodes": [{"name": "f", "op": "Flatten", "inputs": ["in"]}], "outputs": ["f"]}`),
		"FuzzImportJSON/seed_truncated":  []byte(`{"schema": "clsacim-graph/v1", "nodes": [{"na`),
		"FuzzImportONNX/seed_smallcnn":   onnxDoc,
		"FuzzImportONNX/seed_empty":      {},
		"FuzzImportONNX/seed_badfield":   {0x3a, 0xff},
		"FuzzImportONNX/seed_modelonly":  {0x08, 0x08},
		"FuzzImportONNX/seed_relu_graph": onnxOneNode(encNode("Relu", "r", []string{"input"}, []string{"out"}), nil, []int64{1, 3, 4, 4}, "out"),
	}
	for name, data := range seeds {
		path := filepath.Join("testdata", "fuzz", name)
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		writeFile(t, path, []byte(body))
	}
}
