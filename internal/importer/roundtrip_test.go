package importer

import (
	"bytes"
	"fmt"
	"testing"

	"clsacim/internal/models"
)

// TestExportImportRoundTripRandomCNN is the exporter/importer property
// test: any graph the random generator produces (full operator mix,
// with weights) must survive graph -> JSON -> graph with identical
// structure, shapes, and payloads.
func TestExportImportRoundTripRandomCNN(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 6
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			src, err := models.RandomCNN(models.RandomOptions{Seed: int64(seed), WithWeights: seed%2 == 0})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := ExportJSON(src, fmt.Sprintf("random-%d", seed), &buf); err != nil {
				t.Fatal(err)
			}
			res, err := Import(bytes.NewReader(buf.Bytes()), Options{})
			if err != nil {
				t.Fatalf("re-importing exported graph: %v\n%s", err, buf.Bytes())
			}
			if res.Name != fmt.Sprintf("random-%d", seed) {
				t.Errorf("name %q", res.Name)
			}
			assertGraphsEqual(t, src, res.Graph)

			// Second generation pass: the round trip must be a fixed point
			// (export of the import is byte-identical).
			var buf2 bytes.Buffer
			if err := ExportJSON(res.Graph, res.Name, &buf2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
				t.Error("export -> import -> export is not a fixed point")
			}
		})
	}
}
