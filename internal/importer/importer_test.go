package importer

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"strings"
	"testing"

	"clsacim/internal/nn"
	"clsacim/internal/tensor"
)

var update = flag.Bool("update", false, "rewrite the checked-in graph files under testdata")

// smallCNNGraph builds the reference small CNN used by the checked-in
// testdata files (smallcnn.json / smallcnn.onnx): conv-BN-relu-pool,
// a valid conv, then flatten into a dense head. Weights are the
// deterministic testWeights stream, so the JSON and ONNX encodings of
// the same network can be compared initializer by initializer.
func smallCNNGraph(t testing.TB) *nn.Graph {
	t.Helper()
	g := nn.NewGraph()
	in := g.AddInput("input", tensor.NewShape(8, 8, 3))
	mustAdd := func(name string, op nn.Op, ins ...*nn.Node) *nn.Node {
		t.Helper()
		n, err := g.TryAdd(name, op, ins...)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	conv1 := mustAdd("conv1", &nn.Conv2D{
		KH: 3, KW: 3, SH: 1, SW: 1,
		Pad: nn.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1},
		KI:  3, KO: 8,
		W:    &nn.ConvWeights{KH: 3, KW: 3, KI: 3, KO: 8, Data: testWeights(3*3*3*8, 0.25)},
		Bias: testWeights(8, 1.5),
	}, in)
	bn := mustAdd("bn1", &nn.BatchNorm{
		Gamma: testWeights(8, 2), Beta: testWeights(8, 3),
		Mean: testWeights(8, 4), Var: testWeights(8, 5),
		Eps: 1e-5,
	}, conv1)
	relu1 := mustAdd("relu1", &nn.Activation{Func: nn.ActReLU}, bn)
	pool := mustAdd("pool1", &nn.MaxPool{KH: 2, KW: 2, SH: 2, SW: 2}, relu1)
	conv2 := mustAdd("conv2", &nn.Conv2D{
		KH: 3, KW: 3, SH: 1, SW: 1, KI: 8, KO: 16,
		W: &nn.ConvWeights{KH: 3, KW: 3, KI: 8, KO: 16, Data: testWeights(3*3*8*16, 0.75)},
	}, pool)
	relu2 := mustAdd("relu2", &nn.Activation{Func: nn.ActReLU}, conv2)
	flat := mustAdd("flatten", &nn.Flatten{}, relu2)
	dense := mustAdd("head", &nn.Dense{
		KI: 64, KO: 10,
		W:    &nn.ConvWeights{KH: 1, KW: 1, KI: 64, KO: 10, Data: testWeights(64*10, 0.5)},
		Bias: testWeights(10, 6),
	}, flat)
	g.MarkOutput(dense)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

// testWeights yields a deterministic float stream that survives a JSON
// round trip exactly (small dyadic rationals).
func testWeights(n int, phase float32) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(i%13)/8 - phase
	}
	return out
}

// importError asserts err is a typed *Error of the wanted class and
// returns it.
func importError(t *testing.T, err, kind error) *Error {
	t.Helper()
	if err == nil {
		t.Fatal("import succeeded, want error")
	}
	if !errors.Is(err, kind) {
		t.Fatalf("error %v is not %v", err, kind)
	}
	var ie *Error
	if !errors.As(err, &ie) {
		t.Fatalf("error %v is not an importer.Error", err)
	}
	return ie
}

func TestJSONRoundTripSmallCNN(t *testing.T) {
	src := smallCNNGraph(t)
	var buf bytes.Buffer
	if err := ExportJSON(src, "smallcnn", &buf); err != nil {
		t.Fatal(err)
	}
	res, err := Import(bytes.NewReader(buf.Bytes()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "smallcnn" {
		t.Errorf("imported name %q, want smallcnn", res.Name)
	}
	if res.Format != FormatJSON {
		t.Errorf("format %v, want json", res.Format)
	}
	assertGraphsEqual(t, src, res.Graph)
}

// assertGraphsEqual compares two graphs structurally: same node names
// in the same order, same op kinds, same inferred shapes, same wiring,
// and identical weight/parameter payloads.
func assertGraphsEqual(t *testing.T, want, got *nn.Graph) {
	t.Helper()
	if len(want.Nodes) != len(got.Nodes) {
		t.Fatalf("node count %d, want %d", len(got.Nodes), len(want.Nodes))
	}
	for i, wn := range want.Nodes {
		gn := got.Nodes[i]
		if wn.Name != gn.Name {
			t.Fatalf("node %d named %q, want %q", i, gn.Name, wn.Name)
		}
		if wn.Op == nil || gn.Op == nil {
			if (wn.Op == nil) != (gn.Op == nil) {
				t.Fatalf("node %q op nil-ness differs", wn.Name)
			}
			continue
		}
		if wk, gk := wn.Op.Kind(), gn.Op.Kind(); wk != gk {
			t.Fatalf("node %q kind %v, want %v", wn.Name, gk, wk)
		}
		if !wn.OutShape.Equal(gn.OutShape) {
			t.Fatalf("node %q shape %v, want %v", wn.Name, gn.OutShape, wn.OutShape)
		}
		if len(wn.Inputs) != len(gn.Inputs) {
			t.Fatalf("node %q has %d inputs, want %d", wn.Name, len(gn.Inputs), len(wn.Inputs))
		}
		for j := range wn.Inputs {
			if wn.Inputs[j].Name != gn.Inputs[j].Name {
				t.Fatalf("node %q input %d is %q, want %q", wn.Name, j, gn.Inputs[j].Name, wn.Inputs[j].Name)
			}
		}
		if d := describeParams(wn.Op); d != describeParams(gn.Op) {
			t.Fatalf("node %q params\n got %s\nwant %s", wn.Name, describeParams(gn.Op), d)
		}
	}
	if len(want.Outputs) != len(got.Outputs) {
		t.Fatalf("output count %d, want %d", len(got.Outputs), len(want.Outputs))
	}
	for i := range want.Outputs {
		if want.Outputs[i].Name != got.Outputs[i].Name {
			t.Fatalf("output %d is %q, want %q", i, got.Outputs[i].Name, want.Outputs[i].Name)
		}
	}
}

// describeParams renders an op's attributes and payloads for equality
// comparison, reusing the exporter's schema mapping.
func describeParams(op nn.Op) string {
	jn, err := exportNode(&nn.Node{Op: op, Name: "x"})
	if err != nil {
		return err.Error()
	}
	b, err := json.Marshal(jn)
	if err != nil {
		return err.Error()
	}
	return string(b)
}

// TestJSONErrorPaths drives every typed importer error through the JSON
// reader and pins the exact node-path messages.
func TestJSONErrorPaths(t *testing.T) {
	const header = `{"schema": "clsacim-graph/v1", "input": {"name": "in", "shape": [8, 8, 3]}, `
	cases := []struct {
		name string
		doc  string
		kind error
		msg  string
	}{
		{
			name: "malformed json",
			doc:  `{"schema": `,
			kind: ErrBadGraph,
			msg:  `importer: graph: bad graph: decoding JSON: unexpected EOF`,
		},
		{
			name: "unknown field",
			doc:  `{"schema": "clsacim-graph/v1", "bogus": 1}`,
			kind: ErrBadGraph,
			msg:  `importer: graph: bad graph: decoding JSON: json: unknown field "bogus"`,
		},
		{
			name: "wrong schema",
			doc:  `{"schema": "clsacim-graph/v2"}`,
			kind: ErrBadGraph,
			msg:  `importer: graph: bad graph: schema "clsacim-graph/v2", want "clsacim-graph/v1"`,
		},
		{
			name: "missing input",
			doc:  `{"schema": "clsacim-graph/v1"}`,
			kind: ErrBadGraph,
			msg:  `importer: graph: bad graph: missing input declaration`,
		},
		{
			name: "bad input shape",
			doc:  `{"schema": "clsacim-graph/v1", "input": {"name": "in", "shape": [8, 8]}}`,
			kind: ErrBadGraph,
			msg:  `importer: input: bad graph: shape needs 3 dims (H, W, C), got 2`,
		},
		{
			name: "unnamed node",
			doc:  header + `"nodes": [{"op": "Flatten", "inputs": ["in"]}], "outputs": ["x"]}`,
			kind: ErrBadGraph,
			msg:  `importer: nodes[0] (""): bad graph: node needs a name`,
		},
		{
			name: "duplicate node",
			doc: header + `"nodes": [{"name": "f", "op": "Flatten", "inputs": ["in"]},
				{"name": "f", "op": "Flatten", "inputs": ["in"]}], "outputs": ["f"]}`,
			kind: ErrBadGraph,
			msg:  `importer: nodes[1] ("f"): bad graph: duplicate node name "f"`,
		},
		{
			name: "unknown input ref",
			doc:  header + `"nodes": [{"name": "f", "op": "Flatten", "inputs": ["ghost"]}], "outputs": ["f"]}`,
			kind: ErrBadGraph,
			msg:  `importer: nodes[0] ("f"): bad graph: unknown input "ghost" (nodes must be listed producers-first)`,
		},
		{
			name: "unsupported op",
			doc:  header + `"nodes": [{"name": "s", "op": "Softmax", "inputs": ["in"]}], "outputs": ["s"]}`,
			kind: ErrUnsupportedOp,
			msg:  `importer: nodes[0] ("s"): unsupported op: op "Softmax"`,
		},
		{
			name: "unsupported activation",
			doc: header + `"nodes": [{"name": "a", "op": "Activation", "inputs": ["in"],
				"attrs": {"act": "gelu"}}], "outputs": ["a"]}`,
			kind: ErrUnsupportedOp,
			msg:  `importer: nodes[0] ("a"): unsupported op: activation "gelu" (want linear, relu, or leaky)`,
		},
		{
			name: "missing attrs",
			doc:  header + `"nodes": [{"name": "c", "op": "Conv2D", "inputs": ["in"]}], "outputs": ["c"]}`,
			kind: ErrBadGraph,
			msg:  `importer: nodes[0] ("c"): bad graph: op Conv2D requires attrs`,
		},
		{
			name: "bad window",
			doc: header + `"nodes": [{"name": "c", "op": "Conv2D", "inputs": ["in"],
				"attrs": {"kh": 3, "kw": 3, "sh": 0, "sw": 1, "ki": 3, "ko": 4}}], "outputs": ["c"]}`,
			kind: ErrBadGraph,
			msg:  `importer: nodes[0] ("c"): bad graph: window attrs (kh, kw, sh, sw) = (3, 3, 0, 1) must be in [1, 1048576]`,
		},
		{
			name: "weights length",
			doc: header + `"nodes": [{"name": "c", "op": "Conv2D", "inputs": ["in"],
				"attrs": {"kh": 1, "kw": 1, "sh": 1, "sw": 1, "ki": 3, "ko": 2},
				"weights": [1, 2, 3]}], "outputs": ["c"]}`,
			kind: ErrShapeMismatch,
			msg:  `importer: nodes[0] ("c"): shape mismatch: weights length 3 != kh*kw*ki*ko = 6`,
		},
		{
			name: "shape inference failure",
			doc: header + `"nodes": [{"name": "d", "op": "Dense", "inputs": ["in"],
				"attrs": {"ki": 3, "ko": 4}}], "outputs": ["d"]}`,
			kind: ErrShapeMismatch,
			msg:  `importer: nodes[0] ("d"): shape mismatch: nn: node "d": nn: Dense requires (1,1,C) input, got (8, 8, 3) (flatten first)`,
		},
		{
			name: "declared shape mismatch",
			doc: header + `"nodes": [{"name": "f", "op": "Flatten", "inputs": ["in"],
				"shape": [1, 1, 64]}], "outputs": ["f"]}`,
			kind: ErrShapeMismatch,
			msg:  `importer: nodes[0] ("f"): shape mismatch: declared shape (1, 1, 64) != inferred (1, 1, 192)`,
		},
		{
			name: "bad concat axis",
			doc: header + `"nodes": [{"name": "c", "op": "Concat", "inputs": ["in", "in"],
				"attrs": {"axis": "N"}}], "outputs": ["c"]}`,
			kind: ErrBadGraph,
			msg:  `importer: nodes[0] ("c"): bad graph: concat axis "N" (want H, W, or C)`,
		},
		{
			name: "no outputs",
			doc:  header + `"nodes": [{"name": "f", "op": "Flatten", "inputs": ["in"]}], "outputs": []}`,
			kind: ErrBadGraph,
			msg:  `importer: graph: bad graph: no outputs declared`,
		},
		{
			name: "unknown output",
			doc:  header + `"nodes": [{"name": "f", "op": "Flatten", "inputs": ["in"]}], "outputs": ["ghost"]}`,
			kind: ErrBadGraph,
			msg:  `importer: outputs: bad graph: unknown output "ghost"`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Import(strings.NewReader(tc.doc), Options{})
			ie := importError(t, err, tc.kind)
			if ie.Error() != tc.msg {
				t.Errorf("message\n got %q\nwant %q", ie.Error(), tc.msg)
			}
		})
	}
}

func TestImportRejectsOversizedInput(t *testing.T) {
	doc := `{"schema": "clsacim-graph/v1", "input": {"name": "in", "shape": [4, 4, 1]},` +
		` "nodes": [{"name": "f", "op": "Flatten", "inputs": ["in"]}], "outputs": ["f"]}`
	if _, err := Import(strings.NewReader(doc), Options{MaxBytes: 16}); err == nil {
		t.Fatal("oversized JSON import succeeded")
	} else if !errors.Is(err, ErrBadGraph) {
		t.Fatalf("oversized JSON error %v, want ErrBadGraph", err)
	}
	// ONNX path reports the bound explicitly.
	_, err := Import(bytes.NewReader(bytes.Repeat([]byte{0x08, 0x01}, 64)), Options{Format: FormatONNX, MaxBytes: 16})
	ie := importError(t, err, ErrBadGraph)
	if want := "importer: input: bad graph: input exceeds 16 bytes"; ie.Error() != want {
		t.Errorf("message %q, want %q", ie.Error(), want)
	}
}

func TestImportFileDispatchAndNaming(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := ExportJSON(smallCNNGraph(t), "", &buf); err != nil {
		t.Fatal(err)
	}
	path := dir + "/mynet.json"
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := ImportFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// No declared name in the file: the base filename wins.
	if res.Name != "mynet" {
		t.Errorf("name %q, want mynet", res.Name)
	}
	if _, err := ImportFile(dir+"/missing.json", Options{}); err == nil {
		t.Error("importing a missing file succeeded")
	}
}

func TestSniffFormat(t *testing.T) {
	// Leading whitespace then '{' is JSON; anything else is ONNX.
	if res, err := Import(strings.NewReader("\n\t {\"schema\": \"clsacim-graph/v1\"}"), Options{}); err == nil {
		t.Errorf("schema-only JSON import succeeded: %+v", res)
	} else if !errors.Is(err, ErrBadGraph) {
		t.Errorf("sniffed JSON error %v, want ErrBadGraph (missing input)", err)
	}
	_, err := Import(bytes.NewReader([]byte{0x08, 0x07}), Options{})
	ie := importError(t, err, ErrBadGraph)
	if !strings.Contains(ie.Error(), "model has no graph") {
		t.Errorf("sniffed ONNX error %q, want model-has-no-graph", ie.Error())
	}
}
