package importer

import (
	"encoding/binary"
	"fmt"
	"math"
)

// This file reads the subset of ONNX that maps onto the operators the
// compiler models. ONNX is protobuf; the container does not vendor a
// protobuf runtime, so the wire format (a handful of varint/bytes
// framing rules) is decoded by hand below — only the fields the subset
// needs are interpreted, everything else is skipped per standard proto
// semantics.
//
// Supported ops (NCHW, lowered onto the clsacim-graph/v1 structures
// and built through the same path as the JSON reader):
//
//	Conv (group 1, or depthwise group == channels; explicit or VALID
//	padding, dilation 1), Gemm (alpha = beta = 1, transA = 0),
//	MatMul, BatchNormalization, MaxPool (ceil_mode 0),
//	Relu, LeakyRelu, Add (tensor+tensor, or tensor+vector as BiasAdd),
//	Concat, Flatten (axis 1)
//
// Everything else fails with ErrUnsupportedOp naming the node.
// Weights must arrive as graph initializers of type FLOAT; tensor
// layouts are transposed from ONNX (KO, KI, KH, KW) to the internal
// (KH, KW, KI, KO).

// Protobuf wire types.
const (
	wireVarint  = 0
	wireFixed64 = 1
	wireBytes   = 2
	wireFixed32 = 5
)

// pbuf is a minimal protobuf wire-format reader over one message's
// bytes. All methods return ErrBadGraph-typed errors on truncated or
// malformed input; nothing panics.
type pbuf struct {
	b    []byte
	pos  int
	path string
}

func (p *pbuf) done() bool { return p.pos >= len(p.b) }

func (p *pbuf) fail(format string, args ...any) error {
	return errf(ErrBadGraph, p.path, format, args...)
}

// varint reads one base-128 varint.
func (p *pbuf) varint() (uint64, error) {
	var v uint64
	for shift := 0; shift < 64; shift += 7 {
		if p.pos >= len(p.b) {
			return 0, p.fail("truncated varint at byte %d", p.pos)
		}
		c := p.b[p.pos]
		p.pos++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
	}
	return 0, p.fail("varint longer than 10 bytes at byte %d", p.pos)
}

// tag reads the next field tag, returning the field number and wire type.
func (p *pbuf) tag() (field int, wire int, err error) {
	v, err := p.varint()
	if err != nil {
		return 0, 0, err
	}
	if v>>3 == 0 || v>>3 > math.MaxInt32 {
		return 0, 0, p.fail("invalid field number %d", v>>3)
	}
	return int(v >> 3), int(v & 7), nil
}

// bytes reads one length-delimited payload.
func (p *pbuf) bytes() ([]byte, error) {
	n, err := p.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(p.b)-p.pos) {
		return nil, p.fail("length %d exceeds remaining %d bytes", n, len(p.b)-p.pos)
	}
	out := p.b[p.pos : p.pos+int(n)]
	p.pos += int(n)
	return out, nil
}

// skip discards one field of the given wire type.
func (p *pbuf) skip(wire int) error {
	switch wire {
	case wireVarint:
		_, err := p.varint()
		return err
	case wireFixed64:
		if len(p.b)-p.pos < 8 {
			return p.fail("truncated fixed64")
		}
		p.pos += 8
		return nil
	case wireBytes:
		_, err := p.bytes()
		return err
	case wireFixed32:
		if len(p.b)-p.pos < 4 {
			return p.fail("truncated fixed32")
		}
		p.pos += 4
		return nil
	default:
		return p.fail("unsupported wire type %d", wire)
	}
}

// fixed32 reads one 32-bit little-endian value.
func (p *pbuf) fixed32() (uint32, error) {
	if len(p.b)-p.pos < 4 {
		return 0, p.fail("truncated fixed32")
	}
	v := binary.LittleEndian.Uint32(p.b[p.pos:])
	p.pos += 4
	return v, nil
}

// packedInt64 appends the int64s of a repeated field occurrence:
// either one varint (unpacked) or a packed length-delimited run.
func packedInt64(p *pbuf, wire int, dst []int64) ([]int64, error) {
	switch wire {
	case wireVarint:
		v, err := p.varint()
		if err != nil {
			return nil, err
		}
		return append(dst, int64(v)), nil
	case wireBytes:
		raw, err := p.bytes()
		if err != nil {
			return nil, err
		}
		sub := &pbuf{b: raw, path: p.path}
		for !sub.done() {
			v, err := sub.varint()
			if err != nil {
				return nil, err
			}
			dst = append(dst, int64(v))
		}
		return dst, nil
	default:
		return nil, p.fail("int64 list with wire type %d", wire)
	}
}

// packedFloat32 appends the float32s of a repeated field occurrence.
func packedFloat32(p *pbuf, wire int, dst []float32) ([]float32, error) {
	switch wire {
	case wireFixed32:
		v, err := p.fixed32()
		if err != nil {
			return nil, err
		}
		return append(dst, math.Float32frombits(v)), nil
	case wireBytes:
		raw, err := p.bytes()
		if err != nil {
			return nil, err
		}
		if len(raw)%4 != 0 {
			return nil, p.fail("packed float run of %d bytes", len(raw))
		}
		for i := 0; i+4 <= len(raw); i += 4 {
			dst = append(dst, math.Float32frombits(binary.LittleEndian.Uint32(raw[i:])))
		}
		return dst, nil
	default:
		return nil, p.fail("float list with wire type %d", wire)
	}
}

// onnxTensor is a parsed TensorProto (FLOAT payloads only).
type onnxTensor struct {
	name     string
	dims     []int64
	dataType int64
	floats   []float32
	rawData  []byte
}

// onnxAttr is a parsed AttributeProto.
type onnxAttr struct {
	name   string
	f      float32
	i      int64
	s      string
	ints   []int64
	floats []float32
	hasF   bool
	hasI   bool
}

// onnxNode is a parsed NodeProto.
type onnxNode struct {
	opType  string
	name    string
	inputs  []string
	outputs []string
	attrs   map[string]*onnxAttr
}

// onnxValueInfo is a parsed ValueInfoProto: a tensor name plus its
// declared dims (0 for symbolic/unknown dimensions).
type onnxValueInfo struct {
	name string
	dims []int64
}

// onnxGraph is a parsed GraphProto.
type onnxGraph struct {
	name         string
	nodes        []onnxNode
	initializers map[string]*onnxTensor
	inputs       []onnxValueInfo
	outputs      []onnxValueInfo
}

// parseONNXModel decodes a ModelProto and returns its GraphProto.
func parseONNXModel(data []byte) (*onnxGraph, error) {
	p := &pbuf{b: data, path: "onnx"}
	var graphRaw []byte
	for !p.done() {
		field, wire, err := p.tag()
		if err != nil {
			return nil, err
		}
		if field == 7 && wire == wireBytes { // ModelProto.graph
			if graphRaw, err = p.bytes(); err != nil {
				return nil, err
			}
			continue
		}
		if err := p.skip(wire); err != nil {
			return nil, err
		}
	}
	if graphRaw == nil {
		return nil, errf(ErrBadGraph, "onnx", "model has no graph")
	}
	return parseONNXGraph(graphRaw)
}

// parseONNXGraph decodes a GraphProto.
func parseONNXGraph(data []byte) (*onnxGraph, error) {
	p := &pbuf{b: data, path: "onnx"}
	g := &onnxGraph{initializers: make(map[string]*onnxTensor)}
	for !p.done() {
		field, wire, err := p.tag()
		if err != nil {
			return nil, err
		}
		if wire != wireBytes {
			if err := p.skip(wire); err != nil {
				return nil, err
			}
			continue
		}
		raw, err := p.bytes()
		if err != nil {
			return nil, err
		}
		switch field {
		case 1: // node
			n, err := parseONNXNode(raw, len(g.nodes))
			if err != nil {
				return nil, err
			}
			g.nodes = append(g.nodes, *n)
		case 2: // name
			g.name = string(raw)
		case 5: // initializer
			t, err := parseONNXTensor(raw)
			if err != nil {
				return nil, err
			}
			g.initializers[t.name] = t
		case 11: // input
			vi, err := parseONNXValueInfo(raw)
			if err != nil {
				return nil, err
			}
			g.inputs = append(g.inputs, *vi)
		case 12: // output
			vi, err := parseONNXValueInfo(raw)
			if err != nil {
				return nil, err
			}
			g.outputs = append(g.outputs, *vi)
		}
	}
	return g, nil
}

// parseONNXNode decodes a NodeProto.
func parseONNXNode(data []byte, idx int) (*onnxNode, error) {
	p := &pbuf{b: data, path: fmt.Sprintf("node[%d]", idx)}
	n := &onnxNode{attrs: make(map[string]*onnxAttr)}
	for !p.done() {
		field, wire, err := p.tag()
		if err != nil {
			return nil, err
		}
		if wire != wireBytes {
			if err := p.skip(wire); err != nil {
				return nil, err
			}
			continue
		}
		raw, err := p.bytes()
		if err != nil {
			return nil, err
		}
		switch field {
		case 1:
			n.inputs = append(n.inputs, string(raw))
		case 2:
			n.outputs = append(n.outputs, string(raw))
		case 3:
			n.name = string(raw)
		case 4:
			n.opType = string(raw)
		case 5:
			a, err := parseONNXAttr(raw, p.path)
			if err != nil {
				return nil, err
			}
			n.attrs[a.name] = a
		}
	}
	return n, nil
}

// parseONNXAttr decodes an AttributeProto.
func parseONNXAttr(data []byte, path string) (*onnxAttr, error) {
	p := &pbuf{b: data, path: path}
	a := &onnxAttr{}
	for !p.done() {
		field, wire, err := p.tag()
		if err != nil {
			return nil, err
		}
		switch field {
		case 1: // name
			if wire != wireBytes {
				return nil, p.fail("attribute name with wire type %d", wire)
			}
			raw, err := p.bytes()
			if err != nil {
				return nil, err
			}
			a.name = string(raw)
		case 2: // f
			if wire != wireFixed32 {
				return nil, p.fail("attribute f with wire type %d", wire)
			}
			v, err := p.fixed32()
			if err != nil {
				return nil, err
			}
			a.f, a.hasF = math.Float32frombits(v), true
		case 3: // i
			if wire != wireVarint {
				return nil, p.fail("attribute i with wire type %d", wire)
			}
			v, err := p.varint()
			if err != nil {
				return nil, err
			}
			a.i, a.hasI = int64(v), true
		case 4: // s
			if wire != wireBytes {
				return nil, p.fail("attribute s with wire type %d", wire)
			}
			raw, err := p.bytes()
			if err != nil {
				return nil, err
			}
			a.s = string(raw)
		case 7: // floats
			if a.floats, err = packedFloat32(p, wire, a.floats); err != nil {
				return nil, err
			}
		case 8: // ints
			if a.ints, err = packedInt64(p, wire, a.ints); err != nil {
				return nil, err
			}
		default:
			if err := p.skip(wire); err != nil {
				return nil, err
			}
		}
	}
	return a, nil
}

// onnxFloat is TensorProto.DataType FLOAT.
const onnxFloat = 1

// maxTensorElems bounds initializer sizes (64 Mi elements = 256 MiB of
// float32), so a malformed dims field cannot drive a huge allocation.
const maxTensorElems = 64 << 20

// parseONNXTensor decodes a TensorProto.
func parseONNXTensor(data []byte) (*onnxTensor, error) {
	p := &pbuf{b: data, path: "onnx tensor"}
	t := &onnxTensor{}
	for !p.done() {
		field, wire, err := p.tag()
		if err != nil {
			return nil, err
		}
		switch field {
		case 1: // dims
			if t.dims, err = packedInt64(p, wire, t.dims); err != nil {
				return nil, err
			}
		case 2: // data_type
			if wire != wireVarint {
				return nil, p.fail("data_type with wire type %d", wire)
			}
			v, err := p.varint()
			if err != nil {
				return nil, err
			}
			t.dataType = int64(v)
		case 4: // float_data
			if t.floats, err = packedFloat32(p, wire, t.floats); err != nil {
				return nil, err
			}
		case 8: // name
			if wire != wireBytes {
				return nil, p.fail("tensor name with wire type %d", wire)
			}
			raw, err := p.bytes()
			if err != nil {
				return nil, err
			}
			t.name = string(raw)
		case 9: // raw_data
			if wire != wireBytes {
				return nil, p.fail("raw_data with wire type %d", wire)
			}
			if t.rawData, err = p.bytes(); err != nil {
				return nil, err
			}
		default:
			if err := p.skip(wire); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// floatData returns the tensor's float payload, validated against its
// declared dims.
func (t *onnxTensor) floatData(path string) ([]float32, error) {
	if t.dataType != onnxFloat {
		return nil, errf(ErrUnsupportedOp, path, "initializer %q has data type %d, only FLOAT (1) is supported", t.name, t.dataType)
	}
	elems := int64(1)
	for _, d := range t.dims {
		if d < 0 || d > maxTensorElems {
			return nil, errf(ErrBadGraph, path, "initializer %q dim %d out of range", t.name, d)
		}
		elems *= d
		if elems > maxTensorElems {
			return nil, errf(ErrBadGraph, path, "initializer %q exceeds %d elements", t.name, maxTensorElems)
		}
	}
	data := t.floats
	if data == nil && t.rawData != nil {
		if len(t.rawData)%4 != 0 {
			return nil, errf(ErrBadGraph, path, "initializer %q raw_data length %d not a multiple of 4", t.name, len(t.rawData))
		}
		data = make([]float32, len(t.rawData)/4)
		for i := range data {
			data[i] = math.Float32frombits(binary.LittleEndian.Uint32(t.rawData[i*4:]))
		}
	}
	if int64(len(data)) != elems {
		return nil, errf(ErrShapeMismatch, path, "initializer %q has %d values, dims %v need %d", t.name, len(data), t.dims, elems)
	}
	return data, nil
}

// parseONNXValueInfo decodes ValueInfoProto -> (name, tensor dims).
// The nesting is ValueInfo.type(2) -> TypeProto.tensor_type(1) ->
// Tensor.shape(2) -> TensorShapeProto.dim(1) -> Dimension.dim_value(1).
func parseONNXValueInfo(data []byte) (*onnxValueInfo, error) {
	p := &pbuf{b: data, path: "onnx value_info"}
	vi := &onnxValueInfo{}
	for !p.done() {
		field, wire, err := p.tag()
		if err != nil {
			return nil, err
		}
		if wire != wireBytes {
			if err := p.skip(wire); err != nil {
				return nil, err
			}
			continue
		}
		raw, err := p.bytes()
		if err != nil {
			return nil, err
		}
		switch field {
		case 1:
			vi.name = string(raw)
		case 2: // TypeProto
			dims, err := parseONNXTypeDims(raw, p.path)
			if err != nil {
				return nil, err
			}
			vi.dims = dims
		}
	}
	return vi, nil
}

// parseONNXTypeDims walks TypeProto.tensor_type.shape.dim.
func parseONNXTypeDims(data []byte, path string) ([]int64, error) {
	tensorType, err := subMessage(data, 1, path) // TypeProto.tensor_type
	if err != nil || tensorType == nil {
		return nil, err
	}
	shape, err := subMessage(tensorType, 2, path) // Tensor.shape
	if err != nil || shape == nil {
		return nil, err
	}
	var dims []int64
	p := &pbuf{b: shape, path: path}
	for !p.done() {
		field, wire, err := p.tag()
		if err != nil {
			return nil, err
		}
		if field != 1 || wire != wireBytes { // TensorShapeProto.dim
			if err := p.skip(wire); err != nil {
				return nil, err
			}
			continue
		}
		raw, err := p.bytes()
		if err != nil {
			return nil, err
		}
		d := &pbuf{b: raw, path: path}
		val := int64(0) // dim_param / absent -> 0 (symbolic)
		for !d.done() {
			f, w, err := d.tag()
			if err != nil {
				return nil, err
			}
			if f == 1 && w == wireVarint { // dim_value
				v, err := d.varint()
				if err != nil {
					return nil, err
				}
				val = int64(v)
				continue
			}
			if err := d.skip(w); err != nil {
				return nil, err
			}
		}
		dims = append(dims, val)
	}
	return dims, nil
}

// subMessage returns the last occurrence of a length-delimited field
// inside data (nil if absent).
func subMessage(data []byte, field int, path string) ([]byte, error) {
	p := &pbuf{b: data, path: path}
	var out []byte
	for !p.done() {
		f, w, err := p.tag()
		if err != nil {
			return nil, err
		}
		if f == field && w == wireBytes {
			if out, err = p.bytes(); err != nil {
				return nil, err
			}
			continue
		}
		if err := p.skip(w); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// attrInt returns an integer attribute (def when absent).
func (n *onnxNode) attrInt(name string, def int64) int64 {
	if a, ok := n.attrs[name]; ok && a.hasI {
		return a.i
	}
	return def
}

// attrFloat returns a float attribute (def when absent).
func (n *onnxNode) attrFloat(name string, def float32) float32 {
	if a, ok := n.attrs[name]; ok && a.hasF {
		return a.f
	}
	return def
}

// attrString returns a string attribute (def when absent).
func (n *onnxNode) attrString(name, def string) string {
	if a, ok := n.attrs[name]; ok && a.s != "" {
		return a.s
	}
	return def
}

// attrInts returns an integer-list attribute (nil when absent).
func (n *onnxNode) attrInts(name string) []int64 {
	if a, ok := n.attrs[name]; ok {
		return a.ints
	}
	return nil
}
