package importer

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// pw is a minimal protobuf wire-format writer: just enough to encode
// the ONNX ModelProto subset the reader consumes, so tests (and the
// checked-in testdata/smallcnn.onnx) need no protobuf dependency.
type pw struct{ bytes.Buffer }

func (p *pw) uvarint(v uint64) {
	var tmp [10]byte
	n := binary.PutUvarint(tmp[:], v)
	p.Write(tmp[:n])
}

func (p *pw) tag(field, wire int) { p.uvarint(uint64(field)<<3 | uint64(wire)) }

func (p *pw) bytesField(field int, b []byte) {
	p.tag(field, wireBytes)
	p.uvarint(uint64(len(b)))
	p.Write(b)
}

func (p *pw) strField(field int, s string) { p.bytesField(field, []byte(s)) }

func (p *pw) intField(field int, v int64) {
	p.tag(field, wireVarint)
	p.uvarint(uint64(v))
}

func (p *pw) floatField(field int, f float32) {
	p.tag(field, wireFixed32)
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], math.Float32bits(f))
	p.Write(tmp[:])
}

// packedInts encodes a packed repeated-int64 field.
func (p *pw) packedInts(field int, vals []int64) {
	var inner pw
	for _, v := range vals {
		inner.uvarint(uint64(v))
	}
	p.bytesField(field, inner.Bytes())
}

// AttributeProto.type values (only the ones the tests emit).
const (
	onnxAttrFloat  = 1
	onnxAttrInt    = 2
	onnxAttrString = 3
	onnxAttrInts   = 7
)

// encAttrInt encodes AttributeProto{name, i}.
func encAttrInt(name string, v int64) []byte {
	var p pw
	p.strField(1, name)
	p.intField(3, v)
	p.intField(20, onnxAttrInt)
	return p.Bytes()
}

// encAttrFloat encodes AttributeProto{name, f}.
func encAttrFloat(name string, v float32) []byte {
	var p pw
	p.strField(1, name)
	p.floatField(2, v)
	p.intField(20, onnxAttrFloat)
	return p.Bytes()
}

// encAttrString encodes AttributeProto{name, s}.
func encAttrString(name, v string) []byte {
	var p pw
	p.strField(1, name)
	p.strField(4, v)
	p.intField(20, onnxAttrString)
	return p.Bytes()
}

// encAttrInts encodes AttributeProto{name, ints} (packed).
func encAttrInts(name string, vals []int64) []byte {
	var p pw
	p.strField(1, name)
	p.packedInts(8, vals)
	p.intField(20, onnxAttrInts)
	return p.Bytes()
}

// encTensor encodes TensorProto{dims, FLOAT, name, raw_data}.
func encTensor(name string, dims []int64, data []float32) []byte {
	var p pw
	p.packedInts(1, dims)
	p.intField(2, onnxFloat)
	raw := make([]byte, 4*len(data))
	for i, f := range data {
		binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(f))
	}
	p.strField(8, name)
	p.bytesField(9, raw)
	return p.Bytes()
}

// encTensorFloatData is encTensor with the float_data encoding instead
// of raw_data (both are legal ONNX; the reader must accept both).
func encTensorFloatData(name string, dims []int64, data []float32) []byte {
	var p pw
	p.packedInts(1, dims)
	p.intField(2, onnxFloat)
	var inner pw
	for _, f := range data {
		var tmp [4]byte
		binary.LittleEndian.PutUint32(tmp[:], math.Float32bits(f))
		inner.Write(tmp[:])
	}
	p.bytesField(4, inner.Bytes())
	p.strField(8, name)
	return p.Bytes()
}

// encValueInfo encodes ValueInfoProto{name, tensor type with dims}.
func encValueInfo(name string, dims []int64) []byte {
	var shape pw
	for _, d := range dims {
		var dim pw
		dim.intField(1, d) // Dimension.dim_value
		shape.bytesField(1, dim.Bytes())
	}
	var tt pw
	tt.intField(1, onnxFloat) // elem_type
	tt.bytesField(2, shape.Bytes())
	var ty pw
	ty.bytesField(1, tt.Bytes()) // TypeProto.tensor_type
	var p pw
	p.strField(1, name)
	p.bytesField(2, ty.Bytes())
	return p.Bytes()
}

// encNode encodes NodeProto{inputs, outputs, name, op_type, attributes}.
func encNode(opType, name string, inputs, outputs []string, attrs ...[]byte) []byte {
	var p pw
	for _, in := range inputs {
		p.strField(1, in)
	}
	for _, out := range outputs {
		p.strField(2, out)
	}
	p.strField(3, name)
	p.strField(4, opType)
	for _, a := range attrs {
		p.bytesField(5, a)
	}
	return p.Bytes()
}

// encGraph encodes GraphProto.
func encGraph(name string, nodes, inits, inputs, outputs [][]byte) []byte {
	var p pw
	for _, n := range nodes {
		p.bytesField(1, n)
	}
	p.strField(2, name)
	for _, t := range inits {
		p.bytesField(5, t)
	}
	for _, vi := range inputs {
		p.bytesField(11, vi)
	}
	for _, vi := range outputs {
		p.bytesField(12, vi)
	}
	return p.Bytes()
}

// encModel wraps a GraphProto in a ModelProto.
func encModel(graph []byte) []byte {
	var p pw
	p.intField(1, 8) // ir_version
	p.bytesField(7, graph)
	return p.Bytes()
}

// toONNXConvLayout transposes internal (KH, KW, KI, KO) weights to the
// ONNX Conv layout (KO, KI, KH, KW).
func toONNXConvLayout(data []float32, kh, kw, ki, ko int) []float32 {
	out := make([]float32, len(data))
	for h := 0; h < kh; h++ {
		for w := 0; w < kw; w++ {
			for i := 0; i < ki; i++ {
				for o := 0; o < ko; o++ {
					out[((o*ki+i)*kh+h)*kw+w] = data[((h*kw+w)*ki+i)*ko+o]
				}
			}
		}
	}
	return out
}

// smallCNNONNX encodes the smallCNNGraph network as an ONNX model with
// identical node names and weights, so importing it must reconstruct
// the same graph the JSON path produces.
func smallCNNONNX(t testing.TB) []byte {
	t.Helper()
	conv1W := toONNXConvLayout(testWeights(3*3*3*8, 0.25), 3, 3, 3, 8)
	conv2W := toONNXConvLayout(testWeights(3*3*8*16, 0.75), 3, 3, 8, 16)
	graph := encGraph("smallcnn",
		[][]byte{
			encNode("Conv", "conv1", []string{"input", "conv1_w", "conv1_b"}, []string{"conv1_out"},
				encAttrInts("kernel_shape", []int64{3, 3}),
				encAttrInts("strides", []int64{1, 1}),
				encAttrInts("pads", []int64{1, 1, 1, 1}), // t, l, b, r
				encAttrInt("group", 1)),
			encNode("BatchNormalization", "bn1",
				[]string{"conv1_out", "bn1_scale", "bn1_b", "bn1_mean", "bn1_var"}, []string{"bn1_out"},
				encAttrFloat("epsilon", 1e-5)),
			encNode("Relu", "relu1", []string{"bn1_out"}, []string{"relu1_out"}),
			encNode("MaxPool", "pool1", []string{"relu1_out"}, []string{"pool1_out"},
				encAttrInts("kernel_shape", []int64{2, 2}),
				encAttrInts("strides", []int64{2, 2})),
			encNode("Conv", "conv2", []string{"pool1_out", "conv2_w"}, []string{"conv2_out"},
				encAttrInts("kernel_shape", []int64{3, 3})),
			encNode("Relu", "relu2", []string{"conv2_out"}, []string{"relu2_out"}),
			encNode("Flatten", "flatten", []string{"relu2_out"}, []string{"flatten_out"},
				encAttrInt("axis", 1)),
			encNode("Gemm", "head", []string{"flatten_out", "head_w", "head_b"}, []string{"head_out"}),
		},
		[][]byte{
			encTensor("conv1_w", []int64{8, 3, 3, 3}, conv1W),
			encTensor("conv1_b", []int64{8}, testWeights(8, 1.5)),
			encTensorFloatData("bn1_scale", []int64{8}, testWeights(8, 2)),
			encTensor("bn1_b", []int64{8}, testWeights(8, 3)),
			encTensor("bn1_mean", []int64{8}, testWeights(8, 4)),
			encTensor("bn1_var", []int64{8}, testWeights(8, 5)),
			encTensor("conv2_w", []int64{16, 8, 3, 3}, conv2W),
			encTensor("head_w", []int64{64, 10}, testWeights(64*10, 0.5)),
			encTensor("head_b", []int64{10}, testWeights(10, 6)),
		},
		[][]byte{encValueInfo("input", []int64{1, 3, 8, 8})},
		[][]byte{encValueInfo("head_out", []int64{1, 10})},
	)
	return encModel(graph)
}
