// Package importer lowers external graph descriptions into the nn IR,
// opening the model frontend beyond the hand-coded builtin table: a
// versioned JSON graph schema ("clsacim-graph/v1", the package's native
// interchange format, see json.go) and a reader for the subset of ONNX
// that maps onto the operators the compiler models (see onnx.go).
//
// Both readers produce a validated *nn.Graph — shapes inferred node by
// node, operator attributes checked — ready for the existing
// frontend.Canonicalize -> mapping -> scheduling pipeline. Failures are
// typed: every error matches exactly one of ErrBadGraph,
// ErrUnsupportedOp, or ErrShapeMismatch under errors.Is, and carries
// the path of the offending element (e.g. `nodes[3] ("conv2d_1")`), so
// callers can both branch on the class and show users where the file
// is broken.
//
// The readers are fuzzed (FuzzImportJSON, FuzzImportONNX): on
// arbitrary input they must return a typed error, never panic, and
// never allocate unboundedly.
package importer

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"clsacim/internal/nn"
)

// Typed import failure classes, matchable with errors.Is. Every error
// returned by Import wraps exactly one of them.
var (
	// ErrBadGraph reports a structurally broken file: unparseable
	// encoding, missing or duplicate nodes, dangling edges, absent
	// initializers, or attribute values outside the representable range.
	ErrBadGraph = errors.New("bad graph")
	// ErrUnsupportedOp reports an operator (or operator attribute
	// combination) outside the subset the compiler models.
	ErrUnsupportedOp = errors.New("unsupported op")
	// ErrShapeMismatch reports shape-inference or declared-shape
	// validation failures: operator input shapes that do not compose, or
	// weight/parameter lengths inconsistent with the declared dims.
	ErrShapeMismatch = errors.New("shape mismatch")
)

// Error is a typed import failure. Kind is one of the package
// sentinels (ErrBadGraph, ErrUnsupportedOp, ErrShapeMismatch); Path
// locates the offending element in the source file.
type Error struct {
	Kind   error  // the sentinel class
	Path   string // e.g. `nodes[3] ("conv2d_1")` or `graph`
	Detail string
}

// Error renders "importer: <path>: <kind>: <detail>".
func (e *Error) Error() string {
	return fmt.Sprintf("importer: %s: %s: %s", e.Path, e.Kind, e.Detail)
}

// Unwrap exposes the sentinel class to errors.Is.
func (e *Error) Unwrap() error { return e.Kind }

// errf builds a typed *Error with a formatted detail.
func errf(kind error, path, format string, args ...any) error {
	return &Error{Kind: kind, Path: path, Detail: fmt.Sprintf(format, args...)}
}

// Format identifies a supported container format.
type Format int

// Supported formats. FormatAuto sniffs: files are dispatched on
// extension (".onnx" vs anything else), readers on the first byte (an
// ONNX protobuf never starts with '{' or whitespace-then-'{').
const (
	FormatAuto Format = iota
	FormatJSON
	FormatONNX
)

// String names the format.
func (f Format) String() string {
	switch f {
	case FormatJSON:
		return "json"
	case FormatONNX:
		return "onnx"
	default:
		return "auto"
	}
}

// Options configures an import.
type Options struct {
	// Format forces the container format (default: sniff).
	Format Format
	// MaxBytes bounds how much input is read (default 256 MiB). Inputs
	// beyond the bound fail with ErrBadGraph instead of exhausting
	// memory.
	MaxBytes int64
}

// DefaultMaxBytes is the input size bound when Options.MaxBytes is 0.
const DefaultMaxBytes = 256 << 20

// Result is a successful import: the lowered graph plus the metadata
// the container carried.
type Result struct {
	Graph *nn.Graph
	// Name is the model name declared in the file ("" if none).
	Name string
	// Format is the container format actually parsed.
	Format Format
}

// ImportFile parses the graph file at path. The format is taken from
// opt.Format, falling back to the file extension (".onnx" selects the
// ONNX reader, everything else the JSON reader). When the file
// declares no model name, the base filename (without extension) is
// used.
func ImportFile(path string, opt Options) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if opt.Format == FormatAuto {
		if strings.EqualFold(filepath.Ext(path), ".onnx") {
			opt.Format = FormatONNX
		} else {
			opt.Format = FormatJSON
		}
	}
	res, err := Import(f, opt)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if res.Name == "" {
		res.Name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	return res, nil
}

// Import parses a graph description from r. With FormatAuto the format
// is sniffed from the first non-space byte: '{' selects the JSON
// reader, anything else the ONNX reader.
func Import(r io.Reader, opt Options) (*Result, error) {
	maxBytes := opt.MaxBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	br := bufio.NewReader(io.LimitReader(r, maxBytes+1))
	format := opt.Format
	if format == FormatAuto {
		format = sniffFormat(br)
	}
	switch format {
	case FormatJSON:
		g, name, err := importJSON(br, maxBytes)
		if err != nil {
			return nil, err
		}
		return &Result{Graph: g, Name: name, Format: FormatJSON}, nil
	case FormatONNX:
		data, err := readAll(br, maxBytes)
		if err != nil {
			return nil, err
		}
		g, name, err := importONNX(data)
		if err != nil {
			return nil, err
		}
		return &Result{Graph: g, Name: name, Format: FormatONNX}, nil
	default:
		return nil, errf(ErrBadGraph, "input", "unknown format %d", int(format))
	}
}

// sniffFormat peeks at the first non-space byte: JSON documents start
// with '{', ONNX protobufs with a field tag (never '{' = 0x7b, which
// would be field 15 wire type 3, a group — not used by ONNX).
func sniffFormat(br *bufio.Reader) Format {
	for skip := 0; ; skip++ {
		b, err := br.Peek(skip + 1)
		if err != nil || len(b) <= skip {
			return FormatJSON // empty input; let the JSON reader report it
		}
		switch b[skip] {
		case ' ', '\t', '\r', '\n':
			continue
		case '{':
			return FormatJSON
		default:
			return FormatONNX
		}
	}
}

// readAll slurps at most maxBytes from r, failing with ErrBadGraph on
// larger inputs.
func readAll(r io.Reader, maxBytes int64) ([]byte, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, errf(ErrBadGraph, "input", "reading: %v", err)
	}
	if int64(len(data)) > maxBytes {
		return nil, errf(ErrBadGraph, "input", "input exceeds %d bytes", maxBytes)
	}
	return data, nil
}

// graphPath is the Error.Path used for whole-graph failures.
const graphPath = "graph"
