package models

import (
	"fmt"
	"testing"

	"clsacim/internal/im2col"
	"clsacim/internal/nn"
	"clsacim/internal/tensor"
)

// TestTableIAllRows verifies every row of the TinyYOLOv4 base-layer
// table: IFM/OFM shapes (post-partition, i.e. padded IFMs), PE counts,
// and per-layer cycles.
func TestTableIAllRows(t *testing.T) {
	g, _ := canonical(t, TinyYOLOv4)
	rows := []struct {
		name     string
		ifm, ofm tensor.Shape
		pes      int
	}{
		{"conv2d", tensor.NewShape(417, 417, 3), tensor.NewShape(208, 208, 32), 1},
		{"conv2d_1", tensor.NewShape(209, 209, 32), tensor.NewShape(104, 104, 64), 2},
		{"conv2d_2", tensor.NewShape(106, 106, 64), tensor.NewShape(104, 104, 64), 3},
		{"conv2d_3", tensor.NewShape(106, 106, 32), tensor.NewShape(104, 104, 32), 2},
		{"conv2d_4", tensor.NewShape(106, 106, 32), tensor.NewShape(104, 104, 32), 2},
		{"conv2d_5", tensor.NewShape(104, 104, 64), tensor.NewShape(104, 104, 64), 1},
		{"conv2d_6", tensor.NewShape(54, 54, 128), tensor.NewShape(52, 52, 128), 5},
		{"conv2d_7", tensor.NewShape(54, 54, 64), tensor.NewShape(52, 52, 64), 3},
		{"conv2d_8", tensor.NewShape(54, 54, 64), tensor.NewShape(52, 52, 64), 3},
		{"conv2d_9", tensor.NewShape(52, 52, 128), tensor.NewShape(52, 52, 128), 1},
		{"conv2d_10", tensor.NewShape(28, 28, 256), tensor.NewShape(26, 26, 256), 9},
		{"conv2d_11", tensor.NewShape(28, 28, 128), tensor.NewShape(26, 26, 128), 5},
		{"conv2d_12", tensor.NewShape(28, 28, 128), tensor.NewShape(26, 26, 128), 5},
		{"conv2d_13", tensor.NewShape(26, 26, 256), tensor.NewShape(26, 26, 256), 1},
		{"conv2d_14", tensor.NewShape(15, 15, 512), tensor.NewShape(13, 13, 512), 36},
		{"conv2d_15", tensor.NewShape(13, 13, 512), tensor.NewShape(13, 13, 256), 2},
		{"conv2d_16", tensor.NewShape(15, 15, 256), tensor.NewShape(13, 13, 512), 18},
		{"conv2d_17", tensor.NewShape(13, 13, 512), tensor.NewShape(13, 13, 255), 2},
		{"conv2d_18", tensor.NewShape(13, 13, 256), tensor.NewShape(13, 13, 128), 1},
		{"conv2d_19", tensor.NewShape(28, 28, 384), tensor.NewShape(26, 26, 256), 14},
		{"conv2d_20", tensor.NewShape(26, 26, 256), tensor.NewShape(26, 26, 255), 1},
	}
	total := 0
	for _, r := range rows {
		n := g.ByName(r.name)
		if n == nil {
			t.Fatalf("layer %s missing", r.name)
		}
		if got := n.Inputs[0].OutShape; !got.Equal(r.ifm) {
			t.Errorf("%s IFM = %v, want %v", r.name, got, r.ifm)
		}
		if !n.OutShape.Equal(r.ofm) {
			t.Errorf("%s OFM = %v, want %v", r.name, n.OutShape, r.ofm)
		}
		tl, err := im2col.TileBase(n, pe256)
		if err != nil {
			t.Fatal(err)
		}
		if tl.PEs() != r.pes {
			t.Errorf("%s PEs = %d, want %d", r.name, tl.PEs(), r.pes)
		}
		total += tl.PEs()
	}
	if total != 117 {
		t.Errorf("summed PEs = %d, want PEmin 117", total)
	}
}

// TestVGGStageShapes audits the canonical VGG16 spatial pyramid.
func TestVGGStageShapes(t *testing.T) {
	g, res := canonical(t, VGG16)
	wantH := []int{224, 224, 112, 112, 56, 56, 56, 28, 28, 28, 14, 14, 14}
	wantC := []int{64, 64, 128, 128, 256, 256, 256, 512, 512, 512, 512, 512, 512}
	if len(res.BaseLayers) != len(wantH) {
		t.Fatalf("base layers = %d", len(res.BaseLayers))
	}
	for i, n := range res.BaseLayers {
		if n.OutShape.H != wantH[i] || n.OutShape.W != wantH[i] || n.OutShape.C != wantC[i] {
			t.Errorf("conv %d out = %v, want (%d,%d,%d)", i, n.OutShape, wantH[i], wantH[i], wantC[i])
		}
	}
	// Final feature map after the last pool is 7x7x512.
	out := g.Outputs[0]
	if !out.OutShape.Equal(tensor.NewShape(7, 7, 512)) {
		t.Errorf("VGG16 output = %v, want (7, 7, 512)", out.OutShape)
	}
}

// TestResNet50StageShapes audits stem, stage transitions, and head.
func TestResNet50StageShapes(t *testing.T) {
	g, res := canonical(t, ResNet50)
	// Stem conv: 224 -> 112.
	stem := res.BaseLayers[0]
	if !stem.OutShape.Equal(tensor.NewShape(112, 112, 64)) {
		t.Errorf("stem out = %v", stem.OutShape)
	}
	// Spatial sizes present among conv outputs: 112, 56, 28, 14, 7.
	sizes := map[int]int{}
	for _, n := range res.BaseLayers {
		sizes[n.OutShape.H]++
	}
	for _, h := range []int{112, 56, 28, 14, 7} {
		if sizes[h] == 0 {
			t.Errorf("no conv outputs at %dx%d", h, h)
		}
	}
	// Head: global average pool to (1, 1, 2048).
	out := g.Outputs[0]
	if !out.OutShape.Equal(tensor.NewShape(1, 1, 2048)) {
		t.Errorf("ResNet50 output = %v, want (1, 1, 2048)", out.OutShape)
	}
	// Exactly 4 residual projection shortcuts (one per stage).
	proj := 0
	for _, n := range g.Nodes {
		if n.Kind() == nn.OpAdd {
			// A projection block's Add has two conv-derived inputs.
			proj++
		}
	}
	if proj != 16 {
		t.Errorf("ResNet50 has %d Add nodes, want 16 bottleneck blocks", proj)
	}
}

// TestYOLOHeadShapes: both YOLO variants end in 255-channel heads at the
// 13x13 and 26x26 scales.
func TestYOLOHeadShapes(t *testing.T) {
	for _, id := range []ID{TinyYOLOv3, TinyYOLOv4} {
		g := MustBuild(id, Options{})
		if len(g.Outputs) != 2 {
			t.Fatalf("%s has %d outputs", id, len(g.Outputs))
		}
		want := map[int]bool{13: false, 26: false}
		for _, out := range g.Outputs {
			if out.OutShape.C != 255 {
				t.Errorf("%s head channels = %d", id, out.OutShape.C)
			}
			want[out.OutShape.H] = true
		}
		if !want[13] || !want[26] {
			t.Errorf("%s heads at wrong scales", id)
		}
	}
}

// TestConvNamesSequential: TF-style conv2d naming is gapless and in
// creation order for every zoo model.
func TestConvNamesSequential(t *testing.T) {
	for _, id := range List() {
		g := MustBuild(id, Options{})
		idx := 0
		for _, n := range g.Nodes {
			if n.Kind() != nn.OpConv2D {
				continue
			}
			want := "conv2d"
			if idx > 0 {
				want = fmt.Sprintf("conv2d_%d", idx)
			}
			if n.Name != want {
				t.Fatalf("%s: conv %d named %q, want %q", id, idx, n.Name, want)
			}
			idx++
		}
	}
}

// TestFunctionalYOLOHeads: with weights, a scaled-down TinyYOLOv4
// executes end to end and produces finite outputs at both scales.
func TestFunctionalYOLOHeads(t *testing.T) {
	g := MustBuild(TinyYOLOv4, Options{WithWeights: true, Seed: 2, InputSize: 64})
	in := InputFor(g, 3)
	outs, err := (&nn.Executor{}).RunOutputs(g, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("%d outputs", len(outs))
	}
	for i, o := range outs {
		if o.MaxAbs() == 0 {
			t.Errorf("output %d is all zeros", i)
		}
		for _, v := range o.Data[:10] {
			if v != v { // NaN
				t.Fatalf("output %d contains NaN", i)
			}
		}
	}
}
