package models

import (
	"fmt"
	"math/rand"

	"clsacim/internal/nn"
	"clsacim/internal/region"
	"clsacim/internal/tensor"
)

// RandomOptions bounds the random network generator.
type RandomOptions struct {
	Seed int64
	// MaxBaseLayers caps the number of convolutions (default 8).
	MaxBaseLayers int
	// WithWeights attaches random weights for functional checks.
	WithWeights bool
	// MaxInput bounds the input resolution (default 32, minimum 8 —
	// smaller values are clamped up so the generator always has room
	// for a kernel).
	MaxInput int
}

// RandomCNN generates a random, structurally valid CNN exercising the
// full operator mix (strided/same/valid convolutions, BN+activation
// chains, pooling, channel concat, residual add, upsampling, channel
// slicing). It is the workload source for whole-pipeline property
// tests: any graph it produces must survive canonicalization, mapping,
// CLSA-CIM scheduling, and simulation.
func RandomCNN(opt RandomOptions) (*nn.Graph, error) {
	r := rand.New(rand.NewSource(opt.Seed))
	maxBase := opt.MaxBaseLayers
	if maxBase <= 0 {
		maxBase = 8
	}
	maxIn := opt.MaxInput
	if maxIn <= 0 {
		maxIn = 32
	}
	if maxIn < 8 {
		maxIn = 8
	}

	b := &builder{g: nn.NewGraph(), opt: Options{WithWeights: opt.WithWeights, Seed: opt.Seed + 1}}
	size := 8 + 2*r.Intn(maxIn/2-3) // even sizes in [8, maxIn]
	channels := 1 + r.Intn(4)
	in := b.g.AddInput("input", tensor.NewShape(size, size, channels))

	// Pool of nodes available as operands.
	pool := []*nn.Node{in}
	pick := func() *nn.Node { return pool[r.Intn(len(pool))] }
	base := 0

	addConv := func(src *nn.Node) *nn.Node {
		ks := []int{1, 3, 3, 5}
		k := ks[r.Intn(len(ks))]
		for k > src.OutShape.H || k > src.OutShape.W {
			k = 1
		}
		stride := 1
		if r.Intn(3) == 0 && src.OutShape.H > 2*k {
			stride = 2
		}
		same := r.Intn(2) == 0
		ko := 2 + r.Intn(14)
		n := b.conv(src, ko, k, stride, same, r.Intn(3) == 0)
		if r.Intn(2) == 0 {
			n = b.bn(n)
		}
		if r.Intn(3) > 0 {
			n = b.leaky(n)
		}
		base++
		return n
	}

	steps := maxBase*2 + r.Intn(6)
	for i := 0; i < steps && base < maxBase; i++ {
		switch r.Intn(7) {
		case 0, 1, 2: // convolution chain (most common)
			pool = append(pool, addConv(pick()))
		case 3: // pooling
			src := pick()
			if src.OutShape.H >= 4 && src.OutShape.W >= 4 {
				pool = append(pool, b.maxpool(src, 2, 2, false))
			}
		case 4: // residual add: find two same-shaped nodes
			src := pick()
			for _, cand := range pool {
				if cand != src && cand.OutShape.Equal(src.OutShape) {
					pool = append(pool, b.g.Add(b.name("add"), &nn.Add{}, src, cand))
					break
				}
			}
		case 5: // channel concat of two same-HW nodes
			src := pick()
			for _, cand := range pool {
				if cand != src && cand.OutShape.H == src.OutShape.H &&
					cand.OutShape.W == src.OutShape.W &&
					cand.OutShape.C+src.OutShape.C <= 64 {
					pool = append(pool, b.concatC(src, cand))
					break
				}
			}
		case 6: // upsample or channel slice
			src := pick()
			if r.Intn(2) == 0 && src.OutShape.H <= maxIn {
				pool = append(pool, b.upsample(src, 2))
			} else if src.OutShape.C >= 2 {
				c0 := r.Intn(src.OutShape.C - 1)
				c1 := c0 + 1 + r.Intn(src.OutShape.C-c0-1)
				s := src.OutShape
				pool = append(pool, b.g.Add(b.name("split"),
					&nn.Slice{Box: region.NewBox(0, s.H, 0, s.W, c0, c1)}, src))
			}
		}
	}
	if base == 0 {
		pool = append(pool, addConv(in))
	}

	// Heads: 1-2 final convolutions over random pool nodes, marked as
	// outputs (guaranteeing every output depends on a base layer).
	heads := 1 + r.Intn(2)
	for i := 0; i < heads; i++ {
		h := b.conv(pick(), 1+r.Intn(8), 1, 1, false, true)
		b.g.MarkOutput(h)
	}
	if err := b.g.Validate(); err != nil {
		return nil, fmt.Errorf("models: random CNN (seed %d) invalid: %w", opt.Seed, err)
	}
	return b.g, nil
}
