package models

import "testing"

// FuzzRandomCNN: the random-model generator must produce a valid,
// deterministic graph for every (seed, cap) combination — it feeds the
// whole-pipeline property tests and the schedule-vs-sim differential
// fuzzer, so a generator panic or an invalid graph would poison those
// harnesses. Caps are passed through raw: out-of-range values must be
// clamped by the generator, not by callers.
func FuzzRandomCNN(f *testing.F) {
	f.Add(int64(0), byte(8), byte(32))
	f.Add(int64(1), byte(0), byte(0))
	f.Add(int64(99), byte(3), byte(7))
	f.Add(int64(-5), byte(255), byte(255))
	f.Fuzz(func(t *testing.T, seed int64, maxBase, maxInput byte) {
		opt := RandomOptions{Seed: seed, MaxBaseLayers: int(maxBase) % 12, MaxInput: int(maxInput)}
		g, err := RandomCNN(opt)
		if err != nil {
			t.Fatalf("RandomCNN(%+v): %v", opt, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("RandomCNN(%+v) graph invalid: %v", opt, err)
		}
		base := 0
		for _, n := range g.Nodes {
			if n.IsBase() {
				base++
			}
		}
		if base == 0 {
			t.Fatalf("RandomCNN(%+v) has no base layers", opt)
		}
		// Same seed, same graph: the generator must be deterministic or
		// fuzz findings become unreproducible.
		h, err := RandomCNN(opt)
		if err != nil {
			t.Fatalf("RandomCNN(%+v) second build: %v", opt, err)
		}
		if len(g.Nodes) != len(h.Nodes) {
			t.Fatalf("RandomCNN(%+v) nondeterministic: %d vs %d nodes", opt, len(g.Nodes), len(h.Nodes))
		}
	})
}
