package models

import (
	"clsacim/internal/nn"
	"clsacim/internal/tensor"
)

// vgg builds a VGG feature extractor (classifier head omitted, matching
// the paper's base-layer counts: 13 convolutions for VGG16, 16 for
// VGG19). blocks gives the number of 3x3 convolutions per stage; stage
// channel widths are the published 64/128/256/512/512.
func (b *builder) vgg(blocks []int) (*nn.Graph, error) {
	n := b.inputSize(224)
	in := b.g.AddInput("input", tensor.NewShape(n, n, 3))
	channels := []int{64, 128, 256, 512, 512}

	x := in
	for stage, reps := range blocks {
		for r := 0; r < reps; r++ {
			x = b.conv(x, channels[stage], 3, 1, true, true)
			x = b.relu(x)
		}
		x = b.maxpool(x, 2, 2, false)
	}
	b.g.MarkOutput(x)
	return b.g, b.g.Validate()
}
