package models

import (
	"testing"

	"clsacim/internal/nn"
)

// TestRandomCNNValid: every seed yields a valid graph with at least one
// base layer and marked outputs.
func TestRandomCNNValid(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		g, err := RandomCNN(RandomOptions{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(g.BaseLayers()) == 0 {
			t.Fatalf("seed %d: no base layers", seed)
		}
		if len(g.Outputs) == 0 {
			t.Fatalf("seed %d: no outputs", seed)
		}
		for _, out := range g.Outputs {
			if !out.IsBase() {
				t.Fatalf("seed %d: output %v is not a head conv", seed, out)
			}
		}
	}
}

// TestRandomCNNDeterministic: the same seed reproduces the same graph.
func TestRandomCNNDeterministic(t *testing.T) {
	a, err := RandomCNN(RandomOptions{Seed: 9, WithWeights: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomCNN(RandomOptions{Seed: 9, WithWeights: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(a.Nodes), len(b.Nodes))
	}
	for i := range a.Nodes {
		na, nb := a.Nodes[i], b.Nodes[i]
		if na.Name != nb.Name || na.Kind() != nb.Kind() || !na.OutShape.Equal(nb.OutShape) {
			t.Fatalf("node %d differs: %v vs %v", i, na, nb)
		}
	}
	// Weights identical too.
	for i := range a.Nodes {
		ca, okA := a.Nodes[i].Op.(*nn.Conv2D)
		cb, okB := b.Nodes[i].Op.(*nn.Conv2D)
		if okA != okB {
			t.Fatal("op kinds diverged")
		}
		if okA && ca.W != nil {
			for j := range ca.W.Data {
				if ca.W.Data[j] != cb.W.Data[j] {
					t.Fatalf("weights differ at node %d", i)
				}
			}
		}
	}
}

// TestRandomCNNRespectsCaps: MaxBaseLayers bounds the convolution count.
func TestRandomCNNRespectsCaps(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g, err := RandomCNN(RandomOptions{Seed: seed, MaxBaseLayers: 4})
		if err != nil {
			t.Fatal(err)
		}
		// Heads add up to 2 convolutions beyond the cap.
		if got := len(g.BaseLayers()); got > 6 {
			t.Errorf("seed %d: %d base layers exceeds cap", seed, got)
		}
	}
}
