package models

import (
	"math"

	"clsacim/internal/nn"
	"clsacim/internal/tensor"
)

// mobileNetV1 builds the MobileNetV1 feature extractor (width multiplier
// 1.0, classifier head omitted): a 3x3/2 stem convolution followed by 13
// depthwise-separable blocks (depthwise 3x3 + pointwise 1x1, each with
// BN and ReLU). MobileNet is not part of the paper's evaluation; it
// extends the zoo with the depthwise operator, whose packed crossbar
// mapping (reference [14], VWC-SDK) and channel-preserving dependencies
// exercise code paths the VGG/ResNet/YOLO benchmarks cannot.
func (b *builder) mobileNetV1() (*nn.Graph, error) {
	n := b.inputSize(224)
	in := b.g.AddInput("input", tensor.NewShape(n, n, 3))

	x := b.convBNReLU6(in, 32, 3, 2) // stem
	type block struct{ ch, stride int }
	blocks := []block{
		{64, 1}, {128, 2}, {128, 1}, {256, 2}, {256, 1},
		{512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
		{1024, 2}, {1024, 1},
	}
	for _, blk := range blocks {
		x = b.depthwiseBNReLU(x, 3, blk.stride)
		x = b.convBNReLU6(x, blk.ch, 1, 1)
	}
	x = b.g.Add(b.name("gap"), &nn.AvgPool{Global: true}, x)
	b.g.MarkOutput(x)
	return b.g, b.g.Validate()
}

// convBNReLU6 is the MobileNet conv block (plain ReLU stands in for
// ReLU6; the clamp is irrelevant for mapping and scheduling).
func (b *builder) convBNReLU6(in *nn.Node, ko, k, s int) *nn.Node {
	return b.relu(b.bn(b.conv(in, ko, k, s, true, false)))
}

// depthwiseBNReLU adds a depthwise 3x3 with TF-"same" padding, BN, ReLU.
func (b *builder) depthwiseBNReLU(in *nn.Node, k, s int) *nn.Node {
	c := in.OutShape.C
	op := &nn.DepthwiseConv2D{KH: k, KW: k, SH: s, SW: s, C: c}
	t, bo := nn.SamePadding(in.OutShape.H, k, s)
	l, r := nn.SamePadding(in.OutShape.W, k, s)
	op.Pad = nn.Padding{Top: t, Bottom: bo, Left: l, Right: r}
	if b.opt.WithWeights {
		op.W = nn.NewConvWeights(k, k, c, 1)
		op.W.FillRand(b.nextSeed(), float32(1.0/math.Sqrt(float64(k*k))))
	}
	b.dwIdx++
	n := b.g.Add(b.g.FreshName("depthwise"), op, in)
	return b.relu(b.bn(n))
}

// tinyDWNet is a small depthwise-separable CNN for tests.
func (b *builder) tinyDWNet() (*nn.Graph, error) {
	n := b.inputSize(16)
	in := b.g.AddInput("input", tensor.NewShape(n, n, 3))
	x := b.convBNLeaky(in, 8, 3, 1)
	x = b.depthwiseBNReLU(x, 3, 1)
	x = b.conv(x, 16, 1, 1, false, false)
	x = b.relu(x)
	x = b.depthwiseBNReLU(x, 3, 2)
	x = b.conv(x, 4, 1, 1, false, true)
	b.g.MarkOutput(x)
	return b.g, b.g.Validate()
}
