package models

import (
	"testing"

	"clsacim/internal/im2col"
	"clsacim/internal/nn"
	"clsacim/internal/tensor"
)

// TestMobileNetV1Structure: 1 stem + 13 depthwise + 13 pointwise = 27
// base layers; packed depthwise mapping gives PEmin = 238 on 256x256
// crossbars (hand-computed: depthwise 186 + pointwise 51 + stem 1).
func TestMobileNetV1Structure(t *testing.T) {
	_, res := canonical(t, MobileNetV1)
	if got := len(res.BaseLayers); got != 27 {
		t.Errorf("base layers = %d, want 27", got)
	}
	dw, pw := 0, 0
	for _, n := range res.BaseLayers {
		switch n.Op.(type) {
		case *nn.DepthwiseConv2D:
			dw++
		case *nn.Conv2D:
			pw++
		}
	}
	if dw != 13 || pw != 14 {
		t.Errorf("dw/pw = %d/%d, want 13/14", dw, pw)
	}
	if got := minPEs(t, res); got != 238 {
		t.Errorf("MobileNetV1 PEmin = %d, want 238", got)
	}
}

func TestMobileNetV1Shapes(t *testing.T) {
	g := MustBuild(MobileNetV1, Options{})
	// Final feature map: 7x7x1024 -> GAP (1,1,1024).
	out := g.Outputs[0]
	if !out.OutShape.Equal(tensor.NewShape(1, 1, 1024)) {
		t.Errorf("output = %v, want (1, 1, 1024)", out.OutShape)
	}
	// Depthwise layers preserve channel counts.
	for _, n := range g.Nodes {
		if op, ok := n.Op.(*nn.DepthwiseConv2D); ok {
			if n.OutShape.C != op.C || n.Inputs[0].OutShape.C != op.C {
				t.Errorf("depthwise %v changes channels", n)
			}
		}
	}
}

// TestDepthwisePacking checks the packed crossbar cost model.
func TestDepthwisePacking(t *testing.T) {
	cases := []struct {
		kh, kw, rows, cols, want int
	}{
		{3, 3, 256, 256, 28}, // floor(256/9)
		{3, 3, 16, 256, 1},
		{3, 3, 256, 8, 8}, // column-limited
		{5, 5, 256, 256, 10},
		{1, 1, 256, 256, 256},
	}
	for _, c := range cases {
		p, err := im2col.DepthwisePacking(c.kh, c.kw, im2col.PEDims{Rows: c.rows, Cols: c.cols})
		if err != nil {
			t.Fatal(err)
		}
		if p != c.want {
			t.Errorf("packing(%dx%d on %dx%d) = %d, want %d", c.kh, c.kw, c.rows, c.cols, p, c.want)
		}
	}
	if _, err := im2col.DepthwisePacking(5, 5, im2col.PEDims{Rows: 16, Cols: 16}); err == nil {
		t.Error("window larger than crossbar accepted")
	}
	op := &nn.DepthwiseConv2D{KH: 3, KW: 3, SH: 1, SW: 1, C: 512}
	tl, err := im2col.TileDepthwise(op, pe256)
	if err != nil {
		t.Fatal(err)
	}
	if tl.PEs() != 19 { // ceil(512/28)
		t.Errorf("dw512 cost = %d, want 19", tl.PEs())
	}
}

// TestDepthwiseExec: hand-computed depthwise output.
func TestDepthwiseExec(t *testing.T) {
	g := nn.NewGraph()
	in := g.AddInput("input", tensor.NewShape(2, 2, 2))
	w := nn.NewConvWeights(2, 2, 2, 1)
	// Channel 0 kernel all ones; channel 1 kernel all twos.
	for kh := 0; kh < 2; kh++ {
		for kw := 0; kw < 2; kw++ {
			w.Set(kh, kw, 0, 0, 1)
			w.Set(kh, kw, 1, 0, 2)
		}
	}
	dw := g.Add("dw", &nn.DepthwiseConv2D{KH: 2, KW: 2, SH: 1, SW: 1, C: 2, W: w,
		Bias: []float32{10, 0}}, in)
	g.MarkOutput(dw)
	input := tensor.FromSlice(tensor.NewShape(2, 2, 2), []float32{
		1, 5, 2, 6, 3, 7, 4, 8, // (h,w,c) raster: c0 = 1,2,3,4; c1 = 5,6,7,8
	})
	outs, err := (&nn.Executor{}).RunOutputs(g, input)
	if err != nil {
		t.Fatal(err)
	}
	if got := outs[0].At(0, 0, 0); got != 1+2+3+4+10 {
		t.Errorf("channel 0 = %v, want 20", got)
	}
	if got := outs[0].At(0, 0, 1); got != 2*(5+6+7+8) {
		t.Errorf("channel 1 = %v, want 52", got)
	}
}

// TestDepthwiseCanonicalization: BN folding and partitioning preserve a
// depthwise network's outputs.
func TestDepthwiseCanonicalizationNumeric(t *testing.T) {
	g := MustBuild(TinyDWNet, Options{WithWeights: true, Seed: 77})
	in := InputFor(g, 5)
	before, err := (&nn.Executor{}).RunOutputs(g.Clone(), in)
	if err != nil {
		t.Fatal(err)
	}
	g2, res := canonicalWeights(t, TinyDWNet, 77)
	if res.FoldedBN == 0 {
		t.Error("no BN folded in depthwise net")
	}
	after, err := (&nn.Executor{}).RunOutputs(g2, in)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(before[0], after[0]); d > 1e-5 {
		t.Errorf("depthwise canonicalization changed outputs by %v", d)
	}
	// No depthwise layer may retain pad or bias.
	for _, n := range g2.Nodes {
		if op, ok := n.Op.(*nn.DepthwiseConv2D); ok {
			if op.Pad.Any() || op.Bias != nil {
				t.Errorf("depthwise %v still has pad/bias after partition", n)
			}
		}
	}
}
