package models

import (
	"clsacim/internal/nn"
	"clsacim/internal/tensor"
)

// tinyConvNet builds a small sequential CNN (three convolutions and a
// max pool) for fast functional and scheduling tests.
func (b *builder) tinyConvNet() (*nn.Graph, error) {
	n := b.inputSize(16)
	in := b.g.AddInput("input", tensor.NewShape(n, n, 3))
	x := b.convBNLeaky(in, 8, 3, 1)
	x = b.maxpool(x, 2, 2, false)
	x = b.convBNLeaky(x, 16, 3, 1)
	x = b.conv(x, 4, 1, 1, false, true)
	b.g.MarkOutput(x)
	return b.g, b.g.Validate()
}

// tinyBranchNet builds a small non-sequential CNN exercising residual
// Add, channel Concat, UpSample, and stride-2 downsampling — the op mix
// CLSA-CIM's dependency stage must handle.
func (b *builder) tinyBranchNet() (*nn.Graph, error) {
	n := b.inputSize(16)
	in := b.g.AddInput("input", tensor.NewShape(n, n, 3))
	stem := b.convBNLeaky(in, 8, 3, 1)

	// Residual branch.
	r := b.convBNLeaky(stem, 8, 3, 1)
	sum := b.g.Add(b.name("add"), &nn.Add{}, r, stem)

	// Downsample + upsample branch, concatenated with the trunk.
	d := b.convBNLeaky(sum, 16, 3, 2)
	u := b.upsample(b.convBNLeaky(d, 8, 1, 1), 2)
	cat := b.concatC(u, sum)

	head := b.conv(cat, 4, 1, 1, false, true)
	b.g.MarkOutput(head)
	return b.g, b.g.Validate()
}

// tinyMLP builds pool->flatten->dense->dense, exercising the Dense base
// layer path.
func (b *builder) tinyMLP() (*nn.Graph, error) {
	n := b.inputSize(8)
	in := b.g.AddInput("input", tensor.NewShape(n, n, 2))
	x := b.g.Add(b.name("gap"), &nn.AvgPool{KH: 2, KW: 2, SH: 2, SW: 2}, in)
	x = b.g.Add(b.name("flatten"), &nn.Flatten{}, x)

	d1 := &nn.Dense{KI: x.OutShape.C, KO: 32}
	if b.opt.WithWeights {
		d1.W = nn.NewConvWeights(1, 1, d1.KI, d1.KO)
		d1.W.FillRand(b.nextSeed(), 0.2)
		d1.Bias = randSlice(b.nextSeed(), d1.KO, 0.1)
	}
	x = b.g.Add("dense", d1, x)
	x = b.relu(x)

	d2 := &nn.Dense{KI: 32, KO: 10}
	if b.opt.WithWeights {
		d2.W = nn.NewConvWeights(1, 1, 32, 10)
		d2.W.FillRand(b.nextSeed(), 0.2)
		d2.Bias = randSlice(b.nextSeed(), 10, 0.1)
	}
	x = b.g.Add("dense_1", d2, x)
	b.g.MarkOutput(x)
	return b.g, b.g.Validate()
}
