package models

import (
	"clsacim/internal/nn"
	"clsacim/internal/tensor"
)

// tinyYOLOv3 builds the darknet yolov3-tiny object-detection network
// (13 convolutions, two detection heads). With 256x256 PEs it requires
// exactly 142 crossbars (paper Table II).
func (b *builder) tinyYOLOv3() (*nn.Graph, error) {
	n := b.inputSize(416)
	in := b.g.AddInput("input", tensor.NewShape(n, n, 3))

	x := b.convBNLeaky(in, 16, 3, 1) // conv2d
	x = b.maxpool(x, 2, 2, false)
	x = b.convBNLeaky(x, 32, 3, 1) // conv2d_1
	x = b.maxpool(x, 2, 2, false)
	x = b.convBNLeaky(x, 64, 3, 1) // conv2d_2
	x = b.maxpool(x, 2, 2, false)
	x = b.convBNLeaky(x, 128, 3, 1) // conv2d_3
	x = b.maxpool(x, 2, 2, false)
	route := b.convBNLeaky(x, 256, 3, 1) // conv2d_4 (26x26x256 route source)
	x = b.maxpool(route, 2, 2, false)
	x = b.convBNLeaky(x, 512, 3, 1)     // conv2d_5
	x = b.maxpool(x, 2, 1, true)        // stride-1 "same" pool keeps 13x13
	x = b.convBNLeaky(x, 1024, 3, 1)    // conv2d_6
	neck := b.convBNLeaky(x, 256, 1, 1) // conv2d_7

	// Head 1: 13x13 scale.
	h1 := b.convBNLeaky(neck, 512, 3, 1) // conv2d_8
	h1 = b.headConv(h1, 255)             // conv2d_9
	b.g.MarkOutput(h1)

	// Head 2: 26x26 scale via upsample + route.
	u := b.convBNLeaky(neck, 128, 1, 1) // conv2d_10
	u = b.upsample(u, 2)
	cat := b.concatC(u, route)
	h2 := b.convBNLeaky(cat, 256, 3, 1) // conv2d_11
	h2 = b.headConv(h2, 255)            // conv2d_12
	b.g.MarkOutput(h2)

	return b.g, b.g.Validate()
}

// cspBlock is the CSPDarknet-tiny block: a 3x3 conv, a grouped-route
// split on the second channel half, two 3x3 convs with partial concat, a
// 1x1 transition conv, an outer concat, and a 2x2 max pool. It returns
// (pooled output, transition-conv output) — the latter feeds YOLOv4's
// upsample route in the final block.
func (b *builder) cspBlock(in *nn.Node, c int) (out, transition *nn.Node) {
	x := b.convBNLeaky(in, c, 3, 1)
	half := b.sliceChannels(x, c/2, c)
	y := b.convBNLeaky(half, c/2, 3, 1)
	z := b.convBNLeaky(y, c/2, 3, 1)
	inner := b.concatC(z, y)
	t := b.convBNLeaky(inner, c, 1, 1)
	outer := b.concatC(x, t)
	return b.maxpool(outer, 2, 2, false), t
}

// tinyYOLOv4 builds the darknet yolov4-tiny network: CSPDarknet53-tiny
// backbone (21 convolutions in total) with two detection heads. With
// 256x256 PEs it requires exactly 117 crossbars = PEmin of the paper's
// §V-A case study, and its layer table reproduces paper Table I.
//
// Note: the paper's text says "18 Conv2D layers" but its Table I names
// layers up to conv2d_20 (21 convolutions) and states PEmin = 117, which
// matches the standard 21-convolution topology built here (see
// DESIGN.md).
func (b *builder) tinyYOLOv4() (*nn.Graph, error) {
	n := b.inputSize(416)
	in := b.g.AddInput("input", tensor.NewShape(n, n, 3))

	x := b.convBNLeaky(in, 32, 3, 2) // conv2d
	x = b.convBNLeaky(x, 64, 3, 2)   // conv2d_1
	x, _ = b.cspBlock(x, 64)         // conv2d_2 .. conv2d_5
	x, _ = b.cspBlock(x, 128)        // conv2d_6 .. conv2d_9
	x, route := b.cspBlock(x, 256)   // conv2d_10 .. conv2d_13 (route = conv2d_13 out)

	x = b.convBNLeaky(x, 512, 3, 1)     // conv2d_14
	neck := b.convBNLeaky(x, 256, 1, 1) // conv2d_15

	// Head 1: 13x13 scale.
	h1 := b.convBNLeaky(neck, 512, 3, 1) // conv2d_16
	h1 = b.headConv(h1, 255)             // conv2d_17
	b.g.MarkOutput(h1)

	// Head 2: 26x26 scale.
	u := b.convBNLeaky(neck, 128, 1, 1) // conv2d_18
	u = b.upsample(u, 2)
	cat := b.concatC(u, route)
	h2 := b.convBNLeaky(cat, 256, 3, 1) // conv2d_19
	h2 = b.headConv(h2, 255)            // conv2d_20
	b.g.MarkOutput(h2)

	return b.g, b.g.Validate()
}
