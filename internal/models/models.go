// Package models provides programmatic builders for the neural networks
// used in the paper's evaluation (§V, Table II): TinyYOLOv3, TinyYOLOv4,
// VGG16, VGG19, ResNet50, ResNet101, and ResNet152, plus small synthetic
// networks for tests and examples.
//
// The builders substitute for the paper's TensorFlow model import: they
// reproduce the published layer structure exactly (kernel shapes,
// strides, TF "same" padding, route/residual topology, feature-extractor
// scope without classifier heads), which is all that mapping and
// scheduling depend on. Convolutions are named conv2d, conv2d_1, ... in
// creation order, matching the TensorFlow names in paper Table I.
// Weights are synthetic (seeded) and optional; shape-only graphs are
// sufficient for scheduling and keep large models cheap.
package models

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"clsacim/internal/nn"
	"clsacim/internal/region"
	"clsacim/internal/tensor"
)

// ID names a model known to Build.
type ID string

// The evaluation benchmarks of paper Table II (plus TinyYOLOv4 from the
// §V-A case study) and the small synthetic networks used in tests.
const (
	TinyYOLOv3 ID = "tinyyolov3"
	TinyYOLOv4 ID = "tinyyolov4"
	VGG16      ID = "vgg16"
	VGG19      ID = "vgg19"
	ResNet50   ID = "resnet50"
	ResNet101  ID = "resnet101"
	ResNet152  ID = "resnet152"
	// TinyConvNet is a small sequential CNN (tests/examples).
	TinyConvNet ID = "tinyconvnet"
	// TinyBranchNet is a small non-sequential CNN with a residual add
	// and a channel concat (tests/examples).
	TinyBranchNet ID = "tinybranchnet"
	// TinyMLP is a flatten+dense network exercising the Dense base layer.
	TinyMLP ID = "tinymlp"
	// MobileNetV1 is the depthwise-separable feature extractor
	// (extension beyond the paper's benchmark set).
	MobileNetV1 ID = "mobilenetv1"
	// TinyDWNet is a small depthwise-separable CNN (tests/examples).
	TinyDWNet ID = "tinydwnet"
)

// Options configures model construction.
type Options struct {
	// WithWeights attaches deterministic synthetic weights and BN
	// parameters, enabling functional execution. Without it graphs are
	// shape-only (W == nil), sufficient for mapping and scheduling.
	WithWeights bool
	// Seed selects the synthetic weight stream (default 1).
	Seed int64
	// InputSize overrides the spatial input resolution (0 keeps the
	// model's published default: 416 for YOLO, 224 for VGG/ResNet).
	InputSize int
}

// List returns the paper's evaluation model IDs in Table II order,
// preceded by the §V-A case-study model.
func List() []ID {
	return []ID{TinyYOLOv4, TinyYOLOv3, VGG16, VGG19, ResNet50, ResNet101, ResNet152}
}

// Build constructs the named model.
func Build(id ID, opt Options) (*nn.Graph, error) {
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	b := &builder{g: nn.NewGraph(), opt: opt}
	switch id {
	case TinyYOLOv3:
		return b.tinyYOLOv3()
	case TinyYOLOv4:
		return b.tinyYOLOv4()
	case VGG16:
		return b.vgg([]int{2, 2, 3, 3, 3})
	case VGG19:
		return b.vgg([]int{2, 2, 4, 4, 4})
	case ResNet50:
		return b.resnet([]int{3, 4, 6, 3})
	case ResNet101:
		return b.resnet([]int{3, 4, 23, 3})
	case ResNet152:
		return b.resnet([]int{3, 8, 36, 3})
	case TinyConvNet:
		return b.tinyConvNet()
	case TinyBranchNet:
		return b.tinyBranchNet()
	case TinyMLP:
		return b.tinyMLP()
	case MobileNetV1:
		return b.mobileNetV1()
	case TinyDWNet:
		return b.tinyDWNet()
	default:
		return nil, fmt.Errorf("models: unknown model %q", id)
	}
}

// MustBuild is Build panicking on error (tests and examples).
func MustBuild(id ID, opt Options) *nn.Graph {
	g, err := Build(id, opt)
	if err != nil {
		panic(err)
	}
	return g
}

// builder carries naming counters and weight generation state.
type builder struct {
	g        *nn.Graph
	opt      Options
	convIdx  int
	dwIdx    int
	miscIdx  int
	weightID int64
}

func (b *builder) inputSize(def int) int {
	if b.opt.InputSize > 0 {
		return b.opt.InputSize
	}
	return def
}

// convName returns TF-style names: conv2d, conv2d_1, conv2d_2, ...
func (b *builder) convName() string {
	name := "conv2d"
	if b.convIdx > 0 {
		name = fmt.Sprintf("conv2d_%d", b.convIdx)
	}
	b.convIdx++
	return name
}

func (b *builder) name(prefix string) string {
	b.miscIdx++
	return fmt.Sprintf("%s_%d", prefix, b.miscIdx)
}

func (b *builder) nextSeed() int64 {
	b.weightID++
	return b.opt.Seed*1000003 + b.weightID
}

// conv adds a Conv2D with optional TF-"same" padding and bias.
func (b *builder) conv(in *nn.Node, ko, k, s int, same, bias bool) *nn.Node {
	ki := in.OutShape.C
	op := &nn.Conv2D{KH: k, KW: k, SH: s, SW: s, KI: ki, KO: ko}
	if same {
		t, bo := nn.SamePadding(in.OutShape.H, k, s)
		l, r := nn.SamePadding(in.OutShape.W, k, s)
		op.Pad = nn.Padding{Top: t, Bottom: bo, Left: l, Right: r}
	}
	if b.opt.WithWeights {
		op.W = nn.NewConvWeights(k, k, ki, ko)
		scale := float32(1.0 / math.Sqrt(float64(k*k*ki)))
		op.W.FillRand(b.nextSeed(), scale)
		if bias {
			op.Bias = randSlice(b.nextSeed(), ko, 0.1)
		}
	} else if bias {
		op.Bias = make([]float32, ko)
	}
	return b.g.Add(b.convName(), op, in)
}

// bn adds a BatchNorm with synthetic (or identity) parameters.
func (b *builder) bn(in *nn.Node) *nn.Node {
	c := in.OutShape.C
	op := &nn.BatchNorm{Eps: 1e-3}
	if b.opt.WithWeights {
		op.Gamma = randSliceIn(b.nextSeed(), c, 0.5, 1.5)
		op.Beta = randSlice(b.nextSeed(), c, 0.1)
		op.Mean = randSlice(b.nextSeed(), c, 0.1)
		op.Var = randSliceIn(b.nextSeed(), c, 0.5, 1.5)
	} else {
		op.Gamma = ones(c)
		op.Beta = make([]float32, c)
		op.Mean = make([]float32, c)
		op.Var = ones(c)
	}
	return b.g.Add(b.name("bn"), op, in)
}

func (b *builder) leaky(in *nn.Node) *nn.Node {
	return b.g.Add(b.name("leaky"), &nn.Activation{Func: nn.ActLeakyReLU, Alpha: 0.1}, in)
}

func (b *builder) relu(in *nn.Node) *nn.Node {
	return b.g.Add(b.name("relu"), &nn.Activation{Func: nn.ActReLU}, in)
}

// maxpool adds a MaxPool, optionally with TF-"same" padding.
func (b *builder) maxpool(in *nn.Node, k, s int, same bool) *nn.Node {
	op := &nn.MaxPool{KH: k, KW: k, SH: s, SW: s}
	if same {
		t, bo := nn.SamePadding(in.OutShape.H, k, s)
		l, r := nn.SamePadding(in.OutShape.W, k, s)
		op.Pad = nn.Padding{Top: t, Bottom: bo, Left: l, Right: r}
	}
	return b.g.Add(b.name("maxpool"), op, in)
}

// convBNLeaky is the darknet conv block: Conv (no bias) + BN + LeakyReLU.
func (b *builder) convBNLeaky(in *nn.Node, ko, k, s int) *nn.Node {
	return b.leaky(b.bn(b.conv(in, ko, k, s, true, false)))
}

// convBNReLU is the ResNet conv block (activation optional).
func (b *builder) convBN(in *nn.Node, ko, k, s int, act bool) *nn.Node {
	n := b.bn(b.conv(in, ko, k, s, true, false))
	if act {
		n = b.relu(n)
	}
	return n
}

// headConv is a YOLO detection head: 1x1 conv with bias, linear.
func (b *builder) headConv(in *nn.Node, ko int) *nn.Node {
	return b.conv(in, ko, 1, 1, true, true)
}

// sliceChannels extracts channels [c0, c1) (darknet grouped route).
func (b *builder) sliceChannels(in *nn.Node, c0, c1 int) *nn.Node {
	s := in.OutShape
	return b.g.Add(b.name("split"), &nn.Slice{Box: region.NewBox(0, s.H, 0, s.W, c0, c1)}, in)
}

func (b *builder) concatC(ins ...*nn.Node) *nn.Node {
	return b.g.Add(b.name("route"), &nn.Concat{Axis: nn.AxisC}, ins...)
}

func (b *builder) upsample(in *nn.Node, f int) *nn.Node {
	return b.g.Add(b.name("upsample"), &nn.UpSample{Factor: f}, in)
}

func randSlice(seed int64, n int, scale float32) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	for i := range out {
		out[i] = (rng.Float32()*2 - 1) * scale
	}
	return out
}

func randSliceIn(seed int64, n int, lo, hi float32) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	for i := range out {
		out[i] = lo + rng.Float32()*(hi-lo)
	}
	return out
}

func ones(n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

// InputFor returns a deterministic synthetic input tensor for g.
func InputFor(g *nn.Graph, seed int64) *tensor.Tensor {
	t := tensor.New(g.Input.OutShape)
	t.FillRand(seed, 1)
	return t
}

// SortedIDs returns all known model IDs sorted lexicographically.
func SortedIDs() []ID {
	ids := []ID{TinyYOLOv3, TinyYOLOv4, VGG16, VGG19, ResNet50, ResNet101,
		ResNet152, MobileNetV1, TinyConvNet, TinyBranchNet, TinyMLP, TinyDWNet}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Known reports whether id names a builtin model, without building it.
func Known(id ID) bool {
	for _, k := range SortedIDs() {
		if k == id {
			return true
		}
	}
	return false
}
