package models

import (
	"testing"

	"clsacim/internal/frontend"
	"clsacim/internal/im2col"
	"clsacim/internal/nn"
	"clsacim/internal/tensor"
)

var pe256 = im2col.PEDims{Rows: 256, Cols: 256}

// canonical builds and canonicalizes a model shape-only.
func canonical(t *testing.T, id ID) (*nn.Graph, *frontend.Result) {
	t.Helper()
	g, err := Build(id, Options{})
	if err != nil {
		t.Fatalf("Build(%s): %v", id, err)
	}
	res, err := frontend.Canonicalize(g, frontend.Options{})
	if err != nil {
		t.Fatalf("Canonicalize(%s): %v", id, err)
	}
	return g, res
}

// canonicalWeights builds and canonicalizes a model with weights.
func canonicalWeights(t *testing.T, id ID, seed int64) (*nn.Graph, *frontend.Result) {
	t.Helper()
	g, err := Build(id, Options{WithWeights: true, Seed: seed})
	if err != nil {
		t.Fatalf("Build(%s): %v", id, err)
	}
	res, err := frontend.Canonicalize(g, frontend.Options{})
	if err != nil {
		t.Fatalf("Canonicalize(%s): %v", id, err)
	}
	return g, res
}

func minPEs(t *testing.T, res *frontend.Result) int {
	t.Helper()
	total := 0
	for _, n := range res.BaseLayers {
		tl, err := im2col.TileBase(n, pe256)
		if err != nil {
			t.Fatalf("TileBase(%v): %v", n, err)
		}
		total += tl.PEs()
	}
	return total
}

// TestTableII reproduces paper Table II exactly: base-layer counts and
// minimum required 256x256 PEs for all six evaluation benchmarks.
func TestTableII(t *testing.T) {
	cases := []struct {
		id         ID
		input      tensor.Shape
		baseLayers int
		minPEs     int
	}{
		{TinyYOLOv3, tensor.NewShape(416, 416, 3), 13, 142},
		{VGG16, tensor.NewShape(224, 224, 3), 13, 233},
		{VGG19, tensor.NewShape(224, 224, 3), 16, 314},
		{ResNet50, tensor.NewShape(224, 224, 3), 53, 390},
		{ResNet101, tensor.NewShape(224, 224, 3), 104, 679},
		{ResNet152, tensor.NewShape(224, 224, 3), 155, 936},
	}
	for _, tc := range cases {
		t.Run(string(tc.id), func(t *testing.T) {
			g, res := canonical(t, tc.id)
			if !g.Input.OutShape.Equal(tc.input) {
				t.Errorf("input shape = %v, want %v", g.Input.OutShape, tc.input)
			}
			if got := len(res.BaseLayers); got != tc.baseLayers {
				t.Errorf("base layers = %d, want %d", got, tc.baseLayers)
			}
			if got := minPEs(t, res); got != tc.minPEs {
				t.Errorf("min PEs = %d, want %d", got, tc.minPEs)
			}
		})
	}
}

// TestTableI reproduces paper Table I: TinyYOLOv4's PEmin = 117 and the
// listed per-layer IFM/OFM shapes, PE counts, and tinit cycles.
func TestTableI(t *testing.T) {
	g, res := canonical(t, TinyYOLOv4)
	if got := minPEs(t, res); got != 117 {
		t.Errorf("TinyYOLOv4 PEmin = %d, want 117", got)
	}
	if got := len(res.BaseLayers); got != 21 {
		t.Errorf("TinyYOLOv4 conv count = %d, want 21 (Table I names reach conv2d_20)", got)
	}

	rows := []struct {
		name     string
		ifm, ofm tensor.Shape
		pes      int
		cycles   int
	}{
		{"conv2d", tensor.NewShape(417, 417, 3), tensor.NewShape(208, 208, 32), 1, 43264},
		{"conv2d_1", tensor.NewShape(209, 209, 32), tensor.NewShape(104, 104, 64), 2, 10816},
		{"conv2d_2", tensor.NewShape(106, 106, 64), tensor.NewShape(104, 104, 64), 3, 10816},
		{"conv2d_16", tensor.NewShape(15, 15, 256), tensor.NewShape(13, 13, 512), 18, 169},
		{"conv2d_17", tensor.NewShape(13, 13, 512), tensor.NewShape(13, 13, 255), 2, 169},
		{"conv2d_20", tensor.NewShape(26, 26, 256), tensor.NewShape(26, 26, 255), 1, 676},
	}
	for _, r := range rows {
		n := g.ByName(r.name)
		if n == nil {
			t.Errorf("layer %s missing", r.name)
			continue
		}
		if got := n.Inputs[0].OutShape; !got.Equal(r.ifm) {
			t.Errorf("%s IFM = %v, want %v", r.name, got, r.ifm)
		}
		if !n.OutShape.Equal(r.ofm) {
			t.Errorf("%s OFM = %v, want %v", r.name, n.OutShape, r.ofm)
		}
		tl, err := im2col.TileBase(n, pe256)
		if err != nil {
			t.Fatalf("TileBase(%s): %v", r.name, err)
		}
		if tl.PEs() != r.pes {
			t.Errorf("%s PEs = %d, want %d", r.name, tl.PEs(), r.pes)
		}
		if got := n.OutShape.Pixels(); got != r.cycles {
			t.Errorf("%s tinit = %d cycles, want %d", r.name, got, r.cycles)
		}
	}
}

// TestCanonicalBaseLayersArePure verifies partitioning: after
// canonicalization no base layer carries padding or bias.
func TestCanonicalBaseLayersArePure(t *testing.T) {
	for _, id := range List() {
		_, res := canonical(t, id)
		for _, n := range res.BaseLayers {
			switch op := n.Op.(type) {
			case *nn.Conv2D:
				if op.Pad.Any() {
					t.Errorf("%s: %v still padded", id, n)
				}
				if op.Bias != nil {
					t.Errorf("%s: %v still biased", id, n)
				}
			case *nn.Dense:
				if op.Bias != nil {
					t.Errorf("%s: %v still biased", id, n)
				}
			}
		}
	}
}

// TestNoBatchNormSurvives verifies BN folding removes every BatchNorm in
// the evaluation models.
func TestNoBatchNormSurvives(t *testing.T) {
	for _, id := range List() {
		g, _ := canonical(t, id)
		for _, n := range g.Nodes {
			if n.Kind() == nn.OpBatchNorm {
				t.Errorf("%s: BatchNorm %v survived canonicalization", id, n)
			}
		}
	}
}

// TestToyModelsValidate builds the synthetic test networks with weights.
func TestToyModelsValidate(t *testing.T) {
	for _, id := range []ID{TinyConvNet, TinyBranchNet, TinyMLP} {
		g, err := Build(id, Options{WithWeights: true, Seed: 7})
		if err != nil {
			t.Fatalf("Build(%s): %v", id, err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s invalid: %v", id, err)
		}
	}
}

// TestInputSizeOverride checks the InputSize option rescales the network.
func TestInputSizeOverride(t *testing.T) {
	g := MustBuild(TinyYOLOv3, Options{InputSize: 224})
	want := tensor.NewShape(224, 224, 3)
	if !g.Input.OutShape.Equal(want) {
		t.Errorf("input = %v, want %v", g.Input.OutShape, want)
	}
}

// TestDeterministicWeights verifies two builds with the same seed agree
// and different seeds differ.
func TestDeterministicWeights(t *testing.T) {
	g1 := MustBuild(TinyConvNet, Options{WithWeights: true, Seed: 3})
	g2 := MustBuild(TinyConvNet, Options{WithWeights: true, Seed: 3})
	g3 := MustBuild(TinyConvNet, Options{WithWeights: true, Seed: 4})
	w1 := g1.ByName("conv2d").Op.(*nn.Conv2D).W
	w2 := g2.ByName("conv2d").Op.(*nn.Conv2D).W
	w3 := g3.ByName("conv2d").Op.(*nn.Conv2D).W
	for i := range w1.Data {
		if w1.Data[i] != w2.Data[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	same := true
	for i := range w1.Data {
		if w1.Data[i] != w3.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical weights")
	}
}
