package models

import (
	"clsacim/internal/nn"
	"clsacim/internal/tensor"
)

// resnet builds a ResNet-v1 bottleneck feature extractor (classifier head
// omitted). blocks gives the bottleneck count per stage, e.g. {3,4,6,3}
// for ResNet50 (53 convolutions), {3,4,23,3} for ResNet101 (104), and
// {3,8,36,3} for ResNet152 (155), matching paper Table II.
func (b *builder) resnet(blocks []int) (*nn.Graph, error) {
	n := b.inputSize(224)
	in := b.g.AddInput("input", tensor.NewShape(n, n, 3))

	// Stem: 7x7/2 conv (explicit 3-pixel pad) + 3x3/2 max pool.
	stem := &nn.Conv2D{KH: 7, KW: 7, SH: 2, SW: 2, KI: 3, KO: 64,
		Pad: nn.Padding{Top: 3, Bottom: 3, Left: 3, Right: 3}}
	if b.opt.WithWeights {
		stem.W = nn.NewConvWeights(7, 7, 3, 64)
		stem.W.FillRand(b.nextSeed(), 0.08)
	}
	x := b.g.Add(b.convName(), stem, in)
	x = b.relu(b.bn(x))
	x = b.g.Add(b.name("maxpool"), &nn.MaxPool{KH: 3, KW: 3, SH: 2, SW: 2,
		Pad: nn.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}}, x)

	width := 64
	for stage, reps := range blocks {
		stride := 2
		if stage == 0 {
			stride = 1
		}
		x = b.bottleneck(x, width, stride, true)
		for r := 1; r < reps; r++ {
			x = b.bottleneck(x, width, 1, false)
		}
		width *= 2
	}
	x = b.g.Add(b.name("gap"), &nn.AvgPool{Global: true}, x)
	b.g.MarkOutput(x)
	return b.g, b.g.Validate()
}

// bottleneck is the ResNet-v1 1x1 -> 3x3 -> 1x1 block with expansion 4.
// When project is true a 1x1 projection shortcut (with the block's
// stride) replaces the identity shortcut.
func (b *builder) bottleneck(in *nn.Node, width, stride int, project bool) *nn.Node {
	expansion := 4
	x := b.convBN(in, width, 1, stride, true)
	x = b.convBN(x, width, 3, 1, true)
	x = b.convBN(x, width*expansion, 1, 1, false)

	shortcut := in
	if project {
		shortcut = b.convBN(in, width*expansion, 1, stride, false)
	}
	sum := b.g.Add(b.name("add"), &nn.Add{}, x, shortcut)
	return b.relu(sum)
}
