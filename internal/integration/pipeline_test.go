package integration

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"clsacim/internal/cim"
	"clsacim/internal/deps"
	"clsacim/internal/frontend"
	"clsacim/internal/im2col"
	"clsacim/internal/mapping"
	"clsacim/internal/metrics"
	"clsacim/internal/models"
	"clsacim/internal/nn"
	"clsacim/internal/schedule"
	"clsacim/internal/sets"
	"clsacim/internal/sim"
	"clsacim/internal/tensor"
)

// TestFuzzPipeline is the whole-system property test: every random CNN
// must compile, schedule validly in both modes, pipeline at least as
// fast cross-layer as layer-by-layer, satisfy Eq. 3, and agree exactly
// between the analytic scheduler and the event simulator.
func TestFuzzPipeline(t *testing.T) {
	seeds := int64(60)
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprint("seed", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed * 31))
			g, err := models.RandomCNN(models.RandomOptions{Seed: seed, MaxBaseLayers: 7})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := frontend.Canonicalize(g, frontend.Options{}); err != nil {
				t.Fatal(err)
			}
			pe := im2col.PEDims{Rows: 32 + 32*r.Intn(8), Cols: 32 + 32*r.Intn(8)}
			plan, err := mapping.Analyze(g, pe)
			if err != nil {
				t.Fatal(err)
			}
			extra := r.Intn(12)
			solver := mapping.SolverDP
			if extra == 0 {
				solver = mapping.SolverNone
			}
			sol, err := mapping.Solve(plan, plan.MinPEs+extra, solver)
			if err != nil {
				t.Fatal(err)
			}
			m, err := mapping.Apply(g, plan, sol, plan.MinPEs+extra)
			if err != nil {
				t.Fatal(err)
			}
			granularity := []int{1, 3, 9, 27, sets.FineGranularity}[r.Intn(5)]
			sp, err := sets.Determine(g, m, sets.Options{TargetSets: granularity})
			if err != nil {
				t.Fatal(err)
			}
			dg, err := deps.Build(g, sp)
			if err != nil {
				t.Fatal(err)
			}

			lbl, err := schedule.Schedule(dg, schedule.LayerByLayer, schedule.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := lbl.Validate(dg, schedule.Options{}); err != nil {
				t.Fatalf("lbl invalid: %v", err)
			}
			xinf, err := schedule.Schedule(dg, schedule.CrossLayer, schedule.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := xinf.Validate(dg, schedule.Options{}); err != nil {
				t.Fatalf("xinf invalid: %v", err)
			}
			if xinf.Makespan > lbl.Makespan {
				t.Fatalf("xinf %d slower than lbl %d", xinf.Makespan, lbl.Makespan)
			}

			// Work conservation.
			var work int64
			for _, ls := range dg.Plan.Layers {
				work += int64(ls.Group.Node.OutShape.Pixels())
			}
			var active int64
			for _, a := range xinf.LayerActive {
				active += a
			}
			if active != work {
				t.Fatalf("active %d != work %d", active, work)
			}

			// Eq. 3 consistency between the two schedules of the same
			// mapping: S = t_lbl/t_xinf must equal Ut_xinf/Ut_lbl (same
			// F), since total PE-cycles are invariant.
			utL, err := metrics.Utilization(lbl, m)
			if err != nil {
				t.Fatal(err)
			}
			utX, err := metrics.Utilization(xinf, m)
			if err != nil {
				t.Fatal(err)
			}
			s := metrics.Speedup(lbl.Makespan, xinf.Makespan)
			if rel := math.Abs(s-utX/utL) / s; rel > 1e-9 {
				t.Fatalf("speedup %v != utilization ratio %v", s, utX/utL)
			}

			// Cross-validation: for every policy — the two extremes and a
			// sample of bounded windows — the analytic scheduler and the
			// event-driven simulator must produce identical makespans and
			// identical timelines, and the xK makespans must be monotone
			// non-increasing in K, bracketed by lbl and xinf.
			arch := cim.Default()
			arch.NumPEs = plan.MinPEs + extra
			nl := len(dg.Plan.Layers)
			policies := []schedule.Policy{schedule.LayerByLayer, schedule.CrossLayer}
			for _, k := range []int{1, 2, 3, 1 + r.Intn(nl+1), nl} {
				policies = append(policies, schedule.Windowed(k))
			}
			prevWindow, prevMakespan := 0, int64(0)
			for _, p := range policies {
				want, err := schedule.Schedule(dg, p, schedule.Options{})
				if err != nil {
					t.Fatalf("schedule %v: %v", p, err)
				}
				if err := want.Validate(dg, schedule.Options{}); err != nil {
					t.Fatalf("%v invalid: %v", p, err)
				}
				res, err := sim.Run(arch, dg, m, p, nil)
				if err != nil {
					t.Fatalf("sim %v: %v", p, err)
				}
				if res.Makespan != want.Makespan {
					t.Fatalf("sim %v makespan %d != analytic %d", p, res.Makespan, want.Makespan)
				}
				if !res.Timeline.Equal(want) {
					t.Fatalf("sim %v timeline differs from analytic", p)
				}
				if want.Makespan > lbl.Makespan || want.Makespan < xinf.Makespan {
					t.Fatalf("%v makespan %d outside [xinf %d, lbl %d]",
						p, want.Makespan, xinf.Makespan, lbl.Makespan)
				}
				if k := p.Window(); k >= prevWindow && prevMakespan > 0 && want.Makespan > prevMakespan && k != schedule.Unbounded {
					t.Fatalf("x%d makespan %d > x%d makespan %d (not monotone)",
						k, want.Makespan, prevWindow, prevMakespan)
				} else if k >= prevWindow && k != schedule.Unbounded {
					prevWindow, prevMakespan = k, want.Makespan
				}
			}
		})
	}
}

// TestFuzzFunctional verifies canonicalization and the duplication
// rewrite preserve outputs on random weight-carrying CNNs.
func TestFuzzFunctional(t *testing.T) {
	seeds := int64(25)
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprint("seed", seed), func(t *testing.T) {
			g, err := models.RandomCNN(models.RandomOptions{
				Seed: seed + 1000, MaxBaseLayers: 5, WithWeights: true, MaxInput: 20,
			})
			if err != nil {
				t.Fatal(err)
			}
			in := tensor.New(g.Input.OutShape)
			in.FillRand(seed, 1)
			exec := &nn.Executor{}
			before, err := exec.RunOutputs(g, in)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := frontend.Canonicalize(g, frontend.Options{}); err != nil {
				t.Fatal(err)
			}
			after, err := exec.RunOutputs(g, in)
			if err != nil {
				t.Fatal(err)
			}
			for i := range before {
				scale := before[i].MaxAbs()
				if d := tensor.MaxAbsDiff(before[i], after[i]); float64(d) > 1e-4*float64(scale)+1e-5 {
					t.Fatalf("canonicalization changed output %d by %v (scale %v)", i, d, scale)
				}
			}

			// Duplication rewrite equivalence on the canonical graph.
			pe := im2col.PEDims{Rows: 64, Cols: 64}
			plan, err := mapping.Analyze(g, pe)
			if err != nil {
				t.Fatal(err)
			}
			sol, err := mapping.Solve(plan, plan.MinPEs+4, mapping.SolverGreedy)
			if err != nil {
				t.Fatal(err)
			}
			if err := mapping.RewriteDuplication(g, plan, sol); err != nil {
				t.Fatal(err)
			}
			duped, err := exec.RunOutputs(g, in)
			if err != nil {
				t.Fatal(err)
			}
			for i := range after {
				if d := tensor.MaxAbsDiff(after[i], duped[i]); d != 0 {
					t.Fatalf("duplication rewrite changed output %d by %v", i, d)
				}
			}
		})
	}
}

// TestFuzzDepsOracleLight runs the Stage II availability-sufficiency
// oracle on random graphs at random granularity (a lighter version of
// the exhaustive oracle in package deps, across far more topologies).
func TestFuzzDepsOracleLight(t *testing.T) {
	seeds := int64(30)
	if testing.Short() {
		seeds = 5
	}
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprint("seed", seed), func(t *testing.T) {
			g, err := models.RandomCNN(models.RandomOptions{Seed: seed + 500, MaxBaseLayers: 5, MaxInput: 24})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := frontend.Canonicalize(g, frontend.Options{}); err != nil {
				t.Fatal(err)
			}
			pe := im2col.PEDims{Rows: 64, Cols: 64}
			plan, err := mapping.Analyze(g, pe)
			if err != nil {
				t.Fatal(err)
			}
			sol, err := mapping.Solve(plan, plan.MinPEs, mapping.SolverNone)
			if err != nil {
				t.Fatal(err)
			}
			m, err := mapping.Apply(g, plan, sol, plan.MinPEs)
			if err != nil {
				t.Fatal(err)
			}
			sp, err := sets.Determine(g, m, sets.Options{TargetSets: 3 + int(seed%5)})
			if err != nil {
				t.Fatal(err)
			}
			dg, err := deps.Build(g, sp)
			if err != nil {
				t.Fatal(err)
			}
			// Cheap structural checks on every set: deps strictly
			// earlier, volumes positive and bounded by the predecessor
			// set volume.
			for li := range dg.Plan.Layers {
				for si := range dg.Plan.Layers[li].Sets {
					for _, ref := range dg.DepsOf(li, si) {
						if ref.Layer >= li {
							t.Fatalf("layer %d set %d depends forward on %d", li, si, ref.Layer)
						}
						pv := dg.Plan.Layers[ref.Layer].Sets[ref.Set].Box.Volume()
						if ref.Vol <= 0 || ref.Vol > pv {
							t.Fatalf("dep volume %d outside (0, %d]", ref.Vol, pv)
						}
					}
				}
			}
		})
	}
}
