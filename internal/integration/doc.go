// Package integration holds whole-pipeline property tests: randomly
// generated CNNs are pushed through canonicalization, mapping, CLSA-CIM
// Stages I-IV (paper §III-IV), both schedulers, and the event-driven
// simulator, with every timeline invariant (internal/check) asserted on
// every seed. The package exists only for its test files — no
// production code lives here, and nothing imports it.
package integration
