package metrics

import (
	"math"
	"testing"

	"clsacim/internal/deps"
	"clsacim/internal/frontend"
	"clsacim/internal/im2col"
	"clsacim/internal/mapping"
	"clsacim/internal/models"
	"clsacim/internal/schedule"
	"clsacim/internal/sets"
)

func pipeline(t *testing.T, id models.ID, inputSize, extra, targetSets int) (*mapping.Mapping, *deps.Graph) {
	t.Helper()
	g := models.MustBuild(id, models.Options{InputSize: inputSize})
	if _, err := frontend.Canonicalize(g, frontend.Options{}); err != nil {
		t.Fatal(err)
	}
	plan, err := mapping.Analyze(g, im2col.PEDims{Rows: 256, Cols: 256})
	if err != nil {
		t.Fatal(err)
	}
	solver := mapping.SolverNone
	if extra > 0 {
		solver = mapping.SolverDP
	}
	sol, err := mapping.Solve(plan, plan.MinPEs+extra, solver)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.Apply(g, plan, sol, plan.MinPEs+extra)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sets.Determine(g, m, sets.Options{TargetSets: targetSets})
	if err != nil {
		t.Fatal(err)
	}
	dg, err := deps.Build(g, sp)
	if err != nil {
		t.Fatal(err)
	}
	return m, dg
}

// TestUtilizationLayerByLayerClosedForm: without duplication, Eq. 2 under
// layer-by-layer scheduling has the closed form
// sum(c_i * t_i) / (F * sum(t_i)).
func TestUtilizationLayerByLayerClosedForm(t *testing.T) {
	m, dg := pipeline(t, models.TinyYOLOv4, 416, 0, 26)
	s, err := schedule.Schedule(dg, schedule.LayerByLayer, schedule.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ut, err := Utilization(s, m)
	if err != nil {
		t.Fatal(err)
	}
	var num, den int64
	for li, ls := range dg.Plan.Layers {
		ti := int64(ls.Group.Node.OutShape.Pixels())
		num += int64(m.Groups[li].PEsPerReplica()) * ti
		den += ti
	}
	want := float64(num) / (float64(m.F) * float64(den))
	if math.Abs(ut-want) > 1e-12 {
		t.Errorf("Ut = %v, want closed form %v", ut, want)
	}
	// TinyYOLOv4 at PEmin: paper-implied baseline utilization ~1.65%.
	if ut < 0.015 || ut > 0.018 {
		t.Errorf("lbl utilization %.4f outside the paper-implied ~0.0165 band", ut)
	}
}

func TestUtilizationErrors(t *testing.T) {
	m, dg := pipeline(t, models.TinyBranchNet, 16, 0, 4)
	s := &schedule.Timeline{LayerActive: make([]int64, len(m.Groups))}
	if _, err := Utilization(s, m); err == nil {
		t.Error("zero makespan accepted")
	}
	s2, err := schedule.Schedule(dg, schedule.CrossLayer, schedule.Options{})
	if err != nil {
		t.Fatal(err)
	}
	badMap := &mapping.Mapping{F: m.F}
	if _, err := Utilization(s2, badMap); err == nil {
		t.Error("group count mismatch accepted")
	}
}

func TestSpeedupAndLatency(t *testing.T) {
	if got := Speedup(100, 25); got != 4 {
		t.Errorf("Speedup = %v", got)
	}
	if got := Speedup(100, 0); got != 0 {
		t.Errorf("Speedup div zero = %v", got)
	}
	if got := LatencyNanos(1000, 1400); got != 1.4e6 {
		t.Errorf("LatencyNanos = %v", got)
	}
}

// TestEq3ConsistencyAcrossConfigs: the paper's Eq. 3 relation between
// utilization and speedup must hold (nearly exactly, since total
// PE-cycle work is invariant) for every mapping/scheduling combination.
func TestEq3ConsistencyAcrossConfigs(t *testing.T) {
	type cfg struct {
		id    models.ID
		size  int
		extra int
		mode  schedule.Policy
	}
	cases := []cfg{
		{models.TinyYOLOv4, 416, 0, schedule.CrossLayer},
		{models.TinyYOLOv4, 416, 16, schedule.LayerByLayer},
		{models.TinyYOLOv4, 416, 32, schedule.CrossLayer},
		{models.TinyYOLOv3, 416, 8, schedule.CrossLayer},
		{models.ResNet50, 128, 4, schedule.CrossLayer},
	}
	for _, c := range cases {
		// Baseline: lbl, no duplication, F = PEmin.
		mBase, dgBase := pipeline(t, c.id, c.size, 0, 26)
		sBase, err := schedule.Schedule(dgBase, schedule.LayerByLayer, schedule.Options{})
		if err != nil {
			t.Fatal(err)
		}
		utBase, err := Utilization(sBase, mBase)
		if err != nil {
			t.Fatal(err)
		}
		m, dg := pipeline(t, c.id, c.size, c.extra, 26)
		s, err := schedule.Schedule(dg, c.mode, schedule.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ut, err := Utilization(s, m)
		if err != nil {
			t.Fatal(err)
		}
		measured := Speedup(sBase.Makespan, s.Makespan)
		estimated := Eq3Speedup(ut, utBase, mBase.F, c.extra)
		if rel := math.Abs(measured-estimated) / measured; rel > 0.01 {
			t.Errorf("%s x=%d %v: Eq3 %.3f vs measured %.3f (rel err %.4f)",
				c.id, c.extra, c.mode, estimated, measured, rel)
		}
	}
}

func TestEq3Degenerate(t *testing.T) {
	if Eq3Speedup(0.5, 0, 100, 4) != 0 {
		t.Error("zero baseline utilization must yield 0")
	}
	if Eq3Speedup(0.5, 0.1, 0, 4) != 0 {
		t.Error("zero PEmin must yield 0")
	}
}
