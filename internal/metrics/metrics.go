// Package metrics computes the paper's evaluation quantities:
// architecture utilization (Eq. 2), inference speedup relative to
// layer-by-layer scheduling, and the Eq. 3 speedup/utilization
// consistency relation.
package metrics

import (
	"fmt"

	"clsacim/internal/mapping"
	"clsacim/internal/schedule"
)

// Utilization evaluates paper Eq. 2 over a schedule: the mean over all F
// PEs of the architecture of (active cycles / total inference cycles).
// PEs of one group are active exactly while the group executes a set;
// PEs not allocated to any group contribute zero.
func Utilization(s *schedule.Timeline, m *mapping.Mapping) (float64, error) {
	if s.Makespan <= 0 {
		return 0, fmt.Errorf("metrics: empty schedule (makespan %d)", s.Makespan)
	}
	if len(s.LayerActive) != len(m.Groups) {
		return 0, fmt.Errorf("metrics: schedule has %d layers, mapping %d groups",
			len(s.LayerActive), len(m.Groups))
	}
	if m.F <= 0 {
		return 0, fmt.Errorf("metrics: mapping has F=%d PEs", m.F)
	}
	var activePE int64 // sum over PEs of active cycles
	for li, g := range m.Groups {
		// Each replica's c_i PEs are active while that replica executes
		// a set; LayerActive sums busy time across replicas.
		activePE += int64(g.PEsPerReplica()) * s.LayerActive[li]
	}
	return float64(activePE) / (float64(m.F) * float64(s.Makespan)), nil
}

// Speedup returns baseline/makespan: how much faster the measured
// schedule is than the reference (layer-by-layer without duplication in
// the paper's plots).
func Speedup(baselineMakespan, makespan int64) float64 {
	if makespan <= 0 {
		return 0
	}
	return float64(baselineMakespan) / float64(makespan)
}

// Eq3Speedup evaluates the paper's Eq. 3 approximation
//
//	S ≈ Ut * (PEmin + x) / (Ut_lbl * PEmin)
//
// relating a configuration's utilization to its speedup. It is exact up
// to set-rounding because the total PE-cycle work sum(c_i * t_i) is
// invariant under duplication and scheduling.
func Eq3Speedup(ut, utLbl float64, peMin, x int) float64 {
	if utLbl <= 0 || peMin <= 0 {
		return 0
	}
	return ut * float64(peMin+x) / (utLbl * float64(peMin))
}

// LatencyNanos converts a cycle count to nanoseconds given the MVM
// latency of one cycle.
func LatencyNanos(cycles int64, tMVMNanos float64) float64 {
	return float64(cycles) * tMVMNanos
}

// EnergyNanoJoule estimates inference energy (extension beyond the
// paper): every PE of a group consumes mvmNanoJ per executed MVM cycle,
// and each crossbar programming operation (weight virtualization)
// consumes writeNanoJ. Idle/leakage power is excluded — the result is
// the dynamic compute energy the utilization metric is about.
func EnergyNanoJoule(s *schedule.Timeline, m *mapping.Mapping, mvmNanoJ, writeNanoJ float64, writes int) (float64, error) {
	if len(s.LayerActive) != len(m.Groups) {
		return 0, fmt.Errorf("metrics: schedule has %d layers, mapping %d groups",
			len(s.LayerActive), len(m.Groups))
	}
	var peCycles int64
	for li, g := range m.Groups {
		peCycles += int64(g.PEsPerReplica()) * s.LayerActive[li]
	}
	return float64(peCycles)*mvmNanoJ + float64(writes)*writeNanoJ, nil
}
