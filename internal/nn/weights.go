package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// ConvWeights holds a convolution kernel tensor with logical layout
// (KH, KW, KI, KO), stored row-major in that order. Dense layers reuse it
// with KH = KW = 1.
type ConvWeights struct {
	KH, KW, KI, KO int
	Data           []float32
}

// NewConvWeights allocates a zero-filled kernel tensor.
func NewConvWeights(kh, kw, ki, ko int) *ConvWeights {
	if kh <= 0 || kw <= 0 || ki <= 0 || ko <= 0 {
		panic(fmt.Sprintf("nn: invalid kernel dims (%d,%d,%d,%d)", kh, kw, ki, ko))
	}
	return &ConvWeights{KH: kh, KW: kw, KI: ki, KO: ko, Data: make([]float32, kh*kw*ki*ko)}
}

// Index returns the flat index of (kh, kw, ki, ko).
func (w *ConvWeights) Index(kh, kw, ki, ko int) int {
	return ((kh*w.KW+kw)*w.KI+ki)*w.KO + ko
}

// At returns the weight at (kh, kw, ki, ko).
func (w *ConvWeights) At(kh, kw, ki, ko int) float32 { return w.Data[w.Index(kh, kw, ki, ko)] }

// Set stores v at (kh, kw, ki, ko).
func (w *ConvWeights) Set(kh, kw, ki, ko int, v float32) { w.Data[w.Index(kh, kw, ki, ko)] = v }

// Clone returns a deep copy of w.
func (w *ConvWeights) Clone() *ConvWeights {
	out := NewConvWeights(w.KH, w.KW, w.KI, w.KO)
	copy(out.Data, w.Data)
	return out
}

// FillRand fills w with uniform values in [-scale, scale) from a
// deterministic source.
func (w *ConvWeights) FillRand(seed int64, scale float32) {
	rng := rand.New(rand.NewSource(seed))
	for i := range w.Data {
		w.Data[i] = (rng.Float32()*2 - 1) * scale
	}
}

// MaxAbs returns the maximum absolute weight value.
func (w *ConvWeights) MaxAbs() float32 {
	var m float32
	for _, v := range w.Data {
		a := float32(math.Abs(float64(v)))
		if a > m {
			m = a
		}
	}
	return m
}

// RowCount returns the unrolled im2col kernel-matrix row count
// KW*KH*KI (paper Fig. 3).
func (w *ConvWeights) RowCount() int { return w.KH * w.KW * w.KI }
