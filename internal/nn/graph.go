package nn

import (
	"fmt"

	"clsacim/internal/tensor"
)

// Node is a single operator instance in a Graph. Nodes are created
// through Graph.Add, which performs immediate shape inference.
type Node struct {
	ID       int
	Name     string
	Op       Op
	Inputs   []*Node
	OutShape tensor.Shape
}

// Kind returns the node's operator kind.
func (n *Node) Kind() OpKind { return n.Op.Kind() }

// IsBase reports whether the node is a base layer (Conv2D/Dense).
func (n *Node) IsBase() bool { return IsBase(n.Op) }

// String renders "name#id(Kind)".
func (n *Node) String() string {
	return fmt.Sprintf("%s#%d(%v)", n.Name, n.ID, n.Kind())
}

// Graph is a directed acyclic graph of operators with a single input
// node and one or more output nodes. Nodes hold direct pointers to their
// producers; consumer lists are derived on demand.
type Graph struct {
	Nodes   []*Node
	Input   *Node
	Outputs []*Node

	nextID int
	byName map[string]*Node
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{byName: make(map[string]*Node)}
}

// AddInput creates the graph's input node. It panics if called twice.
func (g *Graph) AddInput(name string, shape tensor.Shape) *Node {
	if g.Input != nil {
		panic("nn: graph already has an input node")
	}
	n := g.Add(name, &Input{Shape: shape})
	g.Input = n
	return n
}

// Add appends a node computing op over the given inputs, inferring its
// output shape. It panics on shape errors: graph construction errors are
// programming bugs in model builders, caught by tests. Use TryAdd for an
// error-returning variant.
func (g *Graph) Add(name string, op Op, inputs ...*Node) *Node {
	n, err := g.TryAdd(name, op, inputs...)
	if err != nil {
		panic(err)
	}
	return n
}

// TryAdd is Add returning shape-inference errors instead of panicking.
func (g *Graph) TryAdd(name string, op Op, inputs ...*Node) (*Node, error) {
	shapes := make([]tensor.Shape, len(inputs))
	for i, in := range inputs {
		if in == nil {
			return nil, fmt.Errorf("nn: nil input %d to %q", i, name)
		}
		shapes[i] = in.OutShape
	}
	out, err := op.InferShape(shapes)
	if err != nil {
		return nil, fmt.Errorf("nn: node %q: %w", name, err)
	}
	if name == "" {
		name = fmt.Sprintf("%v_%d", op.Kind(), g.nextID)
	}
	if _, dup := g.byName[name]; dup {
		return nil, fmt.Errorf("nn: duplicate node name %q", name)
	}
	n := &Node{ID: g.nextID, Name: name, Op: op, Inputs: append([]*Node(nil), inputs...), OutShape: out}
	g.nextID++
	g.Nodes = append(g.Nodes, n)
	g.byName[name] = n
	return n, nil
}

// MarkOutput appends n to the graph's output list.
func (g *Graph) MarkOutput(n *Node) { g.Outputs = append(g.Outputs, n) }

// ByName returns the node with the given name, or nil.
func (g *Graph) ByName(name string) *Node { return g.byName[name] }

// Consumers returns a map from each node to the nodes that read its
// output, in deterministic (insertion) order.
func (g *Graph) Consumers() map[*Node][]*Node {
	out := make(map[*Node][]*Node, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			out[in] = append(out[in], n)
		}
	}
	return out
}

// TopoSort returns the nodes in a topological order (producers before
// consumers). It returns an error if the graph contains a cycle.
func (g *Graph) TopoSort() ([]*Node, error) {
	indeg := make(map[*Node]int, len(g.Nodes))
	for _, n := range g.Nodes {
		indeg[n] += 0
		seen := make(map[*Node]bool, len(n.Inputs))
		for _, in := range n.Inputs {
			// Multi-edges (same producer twice) count once for in-degree.
			if !seen[in] {
				indeg[n]++
				seen[in] = true
			}
		}
	}
	cons := g.Consumers()
	var queue []*Node
	for _, n := range g.Nodes {
		if indeg[n] == 0 {
			queue = append(queue, n)
		}
	}
	var order []*Node
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		released := make(map[*Node]bool)
		for _, c := range cons[n] {
			if released[c] {
				continue
			}
			released[c] = true
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(order) != len(g.Nodes) {
		return nil, fmt.Errorf("nn: graph contains a cycle (%d of %d nodes ordered)", len(order), len(g.Nodes))
	}
	return order, nil
}

// Validate checks structural invariants: a single input node exists, all
// node inputs belong to the graph, shapes re-infer consistently, at least
// one output is marked, and the graph is acyclic.
func (g *Graph) Validate() error {
	if g.Input == nil {
		return fmt.Errorf("nn: graph has no input node")
	}
	if len(g.Outputs) == 0 {
		return fmt.Errorf("nn: graph has no marked outputs")
	}
	member := make(map[*Node]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		member[n] = true
	}
	for _, n := range g.Nodes {
		shapes := make([]tensor.Shape, len(n.Inputs))
		for i, in := range n.Inputs {
			if !member[in] {
				return fmt.Errorf("nn: node %v references foreign node %v", n, in)
			}
			shapes[i] = in.OutShape
		}
		got, err := n.Op.InferShape(shapes)
		if err != nil {
			return fmt.Errorf("nn: node %v: %w", n, err)
		}
		if !got.Equal(n.OutShape) {
			return fmt.Errorf("nn: node %v: stored shape %v != inferred %v", n, n.OutShape, got)
		}
	}
	for _, out := range g.Outputs {
		if !member[out] {
			return fmt.Errorf("nn: output %v not in graph", out)
		}
	}
	if _, err := g.TopoSort(); err != nil {
		return err
	}
	return nil
}

// ReplaceUses rewires every consumer of old (and the graph output list)
// to read from new instead. old itself is left in place; call Prune to
// drop it if it became dead.
func (g *Graph) ReplaceUses(old, new *Node) {
	for _, n := range g.Nodes {
		for i, in := range n.Inputs {
			if in == old {
				n.Inputs[i] = new
			}
		}
	}
	for i, out := range g.Outputs {
		if out == old {
			g.Outputs[i] = new
		}
	}
}

// ReplaceUsesExcept rewires consumers of old to new, skipping the given
// nodes. Insertion passes use it to splice a node after old without
// rewiring the spliced node's own input.
func (g *Graph) ReplaceUsesExcept(old, new *Node, skip ...*Node) {
	skipSet := make(map[*Node]bool, len(skip))
	for _, s := range skip {
		skipSet[s] = true
	}
	for _, n := range g.Nodes {
		if skipSet[n] {
			continue
		}
		for i, in := range n.Inputs {
			if in == old {
				n.Inputs[i] = new
			}
		}
	}
	for i, out := range g.Outputs {
		if out == old {
			g.Outputs[i] = new
		}
	}
}

// Prune removes nodes that cannot reach any graph output, returning the
// number of nodes removed. The input node is always kept.
func (g *Graph) Prune() int {
	live := make(map[*Node]bool)
	var mark func(n *Node)
	mark = func(n *Node) {
		if live[n] {
			return
		}
		live[n] = true
		for _, in := range n.Inputs {
			mark(in)
		}
	}
	for _, out := range g.Outputs {
		mark(out)
	}
	if g.Input != nil {
		live[g.Input] = true
	}
	kept := g.Nodes[:0]
	removed := 0
	for _, n := range g.Nodes {
		if live[n] {
			kept = append(kept, n)
		} else {
			delete(g.byName, n.Name)
			removed++
		}
	}
	g.Nodes = kept
	return removed
}

// RefreshShapes re-runs shape inference over the whole graph in
// topological order, updating stored shapes. Rewrite passes call it after
// mutating operator attributes.
func (g *Graph) RefreshShapes() error {
	order, err := g.TopoSort()
	if err != nil {
		return err
	}
	for _, n := range order {
		shapes := make([]tensor.Shape, len(n.Inputs))
		for i, in := range n.Inputs {
			shapes[i] = in.OutShape
		}
		out, err := n.Op.InferShape(shapes)
		if err != nil {
			return fmt.Errorf("nn: node %v: %w", n, err)
		}
		n.OutShape = out
	}
	return nil
}

// BaseLayers returns the graph's base-layer nodes in topological order.
func (g *Graph) BaseLayers() []*Node {
	order, err := g.TopoSort()
	if err != nil {
		return nil
	}
	var out []*Node
	for _, n := range order {
		if n.IsBase() {
			out = append(out, n)
		}
	}
	return out
}

// FreshName returns name if unused, otherwise name suffixed with the next
// free ordinal. Rewrite passes use it to generate unique node names.
func (g *Graph) FreshName(name string) string {
	if _, ok := g.byName[name]; !ok {
		return name
	}
	for i := 1; ; i++ {
		cand := fmt.Sprintf("%s_%d", name, i)
		if _, ok := g.byName[cand]; !ok {
			return cand
		}
	}
}
