package nn

import (
	"fmt"
	"math"

	"clsacim/internal/tensor"
)

// Executor runs a graph on the CPU with direct (non-im2col) reference
// implementations of every operator. It is the functional oracle against
// which the im2col lowering, the crossbar model, and all graph rewrites
// are verified.
type Executor struct {
	// KeepAll retains every intermediate tensor in the result map;
	// otherwise only marked outputs are guaranteed present.
	KeepAll bool
	// BaseOverride, when non-nil, executes base layers (Conv2D/Dense)
	// instead of the built-in float reference — the hook through which
	// the functional crossbar model (package cim) runs whole graphs
	// with quantized in-memory MVMs.
	BaseOverride func(n *Node, in *tensor.Tensor) (*tensor.Tensor, error)
}

// Run executes g on the given input tensor and returns a map from node to
// produced tensor. The input tensor shape must match the graph input.
func (e *Executor) Run(g *Graph, input *tensor.Tensor) (map[*Node]*tensor.Tensor, error) {
	if g.Input == nil {
		return nil, fmt.Errorf("nn: graph has no input")
	}
	if !input.Shape.Equal(g.Input.OutShape) {
		return nil, fmt.Errorf("nn: input shape %v != graph input %v", input.Shape, g.Input.OutShape)
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	vals := make(map[*Node]*tensor.Tensor, len(order))
	vals[g.Input] = input
	for _, n := range order {
		if n == g.Input {
			continue
		}
		ins := make([]*tensor.Tensor, len(n.Inputs))
		for i, p := range n.Inputs {
			t, ok := vals[p]
			if !ok {
				return nil, fmt.Errorf("nn: node %v: missing input value from %v", n, p)
			}
			ins[i] = t
		}
		var out *tensor.Tensor
		var err error
		if e.BaseOverride != nil && n.IsBase() {
			out, err = e.BaseOverride(n, ins[0])
		} else {
			out, err = evalNode(n, ins)
		}
		if err != nil {
			return nil, fmt.Errorf("nn: node %v: %w", n, err)
		}
		if !out.Shape.Equal(n.OutShape) {
			return nil, fmt.Errorf("nn: node %v: executor produced %v, graph says %v", n, out.Shape, n.OutShape)
		}
		vals[n] = out
	}
	if !e.KeepAll {
		marked := make(map[*Node]bool, len(g.Outputs))
		for _, o := range g.Outputs {
			marked[o] = true
		}
		for n := range vals {
			if !marked[n] && n != g.Input {
				// Keep the map small for big graphs; retain outputs only.
				delete(vals, n)
			}
		}
	}
	return vals, nil
}

// RunOutputs executes g and returns the marked output tensors in order.
func (e *Executor) RunOutputs(g *Graph, input *tensor.Tensor) ([]*tensor.Tensor, error) {
	vals, err := e.Run(g, input)
	if err != nil {
		return nil, err
	}
	outs := make([]*tensor.Tensor, len(g.Outputs))
	for i, o := range g.Outputs {
		t, ok := vals[o]
		if !ok {
			return nil, fmt.Errorf("nn: output %v missing from results", o)
		}
		outs[i] = t
	}
	return outs, nil
}

func evalNode(n *Node, ins []*tensor.Tensor) (*tensor.Tensor, error) {
	switch op := n.Op.(type) {
	case *Conv2D:
		if op.W == nil {
			return nil, fmt.Errorf("shape-only Conv2D has no weights")
		}
		return evalConv2D(op, ins[0]), nil
	case *Dense:
		if op.W == nil {
			return nil, fmt.Errorf("shape-only Dense has no weights")
		}
		return evalDense(op, ins[0]), nil
	case *DepthwiseConv2D:
		if op.W == nil {
			return nil, fmt.Errorf("shape-only DepthwiseConv2D has no weights")
		}
		return evalDepthwise(op, ins[0]), nil
	case *BatchNorm:
		return evalBatchNorm(op, ins[0]), nil
	case *BiasAdd:
		return evalBiasAdd(op, ins[0]), nil
	case *Activation:
		return evalActivation(op, ins[0]), nil
	case *MaxPool:
		return evalMaxPool(op, ins[0]), nil
	case *AvgPool:
		return evalAvgPool(op, ins[0]), nil
	case *Pad:
		return evalPad(op, ins[0]), nil
	case *Concat:
		return evalConcat(op, ins), nil
	case *Add:
		return evalAdd(ins[0], ins[1]), nil
	case *UpSample:
		return evalUpSample(op, ins[0]), nil
	case *Slice:
		return evalSlice(op, ins[0]), nil
	case *Flatten:
		return tensor.FromSlice(tensor.NewShape(1, 1, ins[0].Shape.Elems()), ins[0].Data), nil
	default:
		return nil, fmt.Errorf("executor: unsupported op %v", n.Kind())
	}
}

func evalConv2D(op *Conv2D, in *tensor.Tensor) *tensor.Tensor {
	s := in.Shape
	oh := (s.H+op.Pad.Top+op.Pad.Bottom-op.KH)/op.SH + 1
	ow := (s.W+op.Pad.Left+op.Pad.Right-op.KW)/op.SW + 1
	out := tensor.New(tensor.NewShape(oh, ow, op.KO))
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			ih0 := y*op.SH - op.Pad.Top
			iw0 := x*op.SW - op.Pad.Left
			for ko := 0; ko < op.KO; ko++ {
				var acc float64
				for kh := 0; kh < op.KH; kh++ {
					ih := ih0 + kh
					if ih < 0 || ih >= s.H {
						continue
					}
					for kw := 0; kw < op.KW; kw++ {
						iw := iw0 + kw
						if iw < 0 || iw >= s.W {
							continue
						}
						for ki := 0; ki < op.KI; ki++ {
							acc += float64(in.At(ih, iw, ki)) * float64(op.W.At(kh, kw, ki, ko))
						}
					}
				}
				if op.Bias != nil {
					acc += float64(op.Bias[ko])
				}
				out.Set(y, x, ko, float32(acc))
			}
		}
	}
	return out
}

func evalDepthwise(op *DepthwiseConv2D, in *tensor.Tensor) *tensor.Tensor {
	s := in.Shape
	oh := (s.H+op.Pad.Top+op.Pad.Bottom-op.KH)/op.SH + 1
	ow := (s.W+op.Pad.Left+op.Pad.Right-op.KW)/op.SW + 1
	out := tensor.New(tensor.NewShape(oh, ow, op.C))
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			for c := 0; c < op.C; c++ {
				var acc float64
				for kh := 0; kh < op.KH; kh++ {
					ih := y*op.SH - op.Pad.Top + kh
					if ih < 0 || ih >= s.H {
						continue
					}
					for kw := 0; kw < op.KW; kw++ {
						iw := x*op.SW - op.Pad.Left + kw
						if iw < 0 || iw >= s.W {
							continue
						}
						acc += float64(in.At(ih, iw, c)) * float64(op.W.At(kh, kw, c, 0))
					}
				}
				if op.Bias != nil {
					acc += float64(op.Bias[c])
				}
				out.Set(y, x, c, float32(acc))
			}
		}
	}
	return out
}

func evalDense(op *Dense, in *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(tensor.NewShape(1, 1, op.KO))
	for ko := 0; ko < op.KO; ko++ {
		var acc float64
		for ki := 0; ki < op.KI; ki++ {
			acc += float64(in.Data[ki]) * float64(op.W.At(0, 0, ki, ko))
		}
		if op.Bias != nil {
			acc += float64(op.Bias[ko])
		}
		out.Data[ko] = float32(acc)
	}
	return out
}

func evalBatchNorm(op *BatchNorm, in *tensor.Tensor) *tensor.Tensor {
	s := in.Shape
	out := tensor.New(s)
	scale := make([]float32, s.C)
	shift := make([]float32, s.C)
	for c := 0; c < s.C; c++ {
		inv := float32(1.0 / math.Sqrt(float64(op.Var[c])+float64(op.Eps)))
		scale[c] = op.Gamma[c] * inv
		shift[c] = op.Beta[c] - op.Mean[c]*scale[c]
	}
	for i, v := range in.Data {
		c := i % s.C
		out.Data[i] = v*scale[c] + shift[c]
	}
	return out
}

func evalBiasAdd(op *BiasAdd, in *tensor.Tensor) *tensor.Tensor {
	s := in.Shape
	out := tensor.New(s)
	for i, v := range in.Data {
		out.Data[i] = v + op.B[i%s.C]
	}
	return out
}

func evalActivation(op *Activation, in *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(in.Shape)
	switch op.Func {
	case ActLinear:
		copy(out.Data, in.Data)
	case ActReLU:
		for i, v := range in.Data {
			if v > 0 {
				out.Data[i] = v
			}
		}
	case ActLeakyReLU:
		for i, v := range in.Data {
			if v > 0 {
				out.Data[i] = v
			} else {
				out.Data[i] = v * op.Alpha
			}
		}
	}
	return out
}

func evalMaxPool(op *MaxPool, in *tensor.Tensor) *tensor.Tensor {
	s := in.Shape
	oh := (s.H+op.Pad.Top+op.Pad.Bottom-op.KH)/op.SH + 1
	ow := (s.W+op.Pad.Left+op.Pad.Right-op.KW)/op.SW + 1
	out := tensor.New(tensor.NewShape(oh, ow, s.C))
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			for c := 0; c < s.C; c++ {
				best := float32(math.Inf(-1))
				for kh := 0; kh < op.KH; kh++ {
					ih := y*op.SH - op.Pad.Top + kh
					if ih < 0 || ih >= s.H {
						continue
					}
					for kw := 0; kw < op.KW; kw++ {
						iw := x*op.SW - op.Pad.Left + kw
						if iw < 0 || iw >= s.W {
							continue
						}
						if v := in.At(ih, iw, c); v > best {
							best = v
						}
					}
				}
				out.Set(y, x, c, best)
			}
		}
	}
	return out
}

func evalAvgPool(op *AvgPool, in *tensor.Tensor) *tensor.Tensor {
	s := in.Shape
	kh, kw, sh, sw := op.KH, op.KW, op.SH, op.SW
	if op.Global {
		kh, kw, sh, sw = s.H, s.W, s.H, s.W
	}
	oh := (s.H-kh)/sh + 1
	ow := (s.W-kw)/sw + 1
	out := tensor.New(tensor.NewShape(oh, ow, s.C))
	norm := 1.0 / float64(kh*kw)
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			for c := 0; c < s.C; c++ {
				var acc float64
				for dh := 0; dh < kh; dh++ {
					for dw := 0; dw < kw; dw++ {
						acc += float64(in.At(y*sh+dh, x*sw+dw, c))
					}
				}
				out.Set(y, x, c, float32(acc*norm))
			}
		}
	}
	return out
}

func evalPad(op *Pad, in *tensor.Tensor) *tensor.Tensor {
	s := in.Shape
	out := tensor.New(tensor.NewShape(s.H+op.Pad.Top+op.Pad.Bottom, s.W+op.Pad.Left+op.Pad.Right, s.C))
	if op.Value != 0 {
		out.Fill(op.Value)
	}
	for h := 0; h < s.H; h++ {
		for w := 0; w < s.W; w++ {
			for c := 0; c < s.C; c++ {
				out.Set(h+op.Pad.Top, w+op.Pad.Left, c, in.At(h, w, c))
			}
		}
	}
	return out
}

func evalConcat(op *Concat, ins []*tensor.Tensor) *tensor.Tensor {
	shapes := make([]tensor.Shape, len(ins))
	for i, t := range ins {
		shapes[i] = t.Shape
	}
	outShape, err := op.InferShape(shapes)
	if err != nil {
		panic(err) // validated at graph construction
	}
	out := tensor.New(outShape)
	offset := 0
	for _, t := range ins {
		s := t.Shape
		for h := 0; h < s.H; h++ {
			for w := 0; w < s.W; w++ {
				for c := 0; c < s.C; c++ {
					switch op.Axis {
					case AxisH:
						out.Set(h+offset, w, c, t.At(h, w, c))
					case AxisW:
						out.Set(h, w+offset, c, t.At(h, w, c))
					case AxisC:
						out.Set(h, w, c+offset, t.At(h, w, c))
					}
				}
			}
		}
		switch op.Axis {
		case AxisH:
			offset += s.H
		case AxisW:
			offset += s.W
		case AxisC:
			offset += s.C
		}
	}
	return out
}

func evalAdd(a, b *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(a.Shape)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

func evalUpSample(op *UpSample, in *tensor.Tensor) *tensor.Tensor {
	s := in.Shape
	f := op.Factor
	out := tensor.New(tensor.NewShape(s.H*f, s.W*f, s.C))
	for h := 0; h < s.H*f; h++ {
		for w := 0; w < s.W*f; w++ {
			for c := 0; c < s.C; c++ {
				out.Set(h, w, c, in.At(h/f, w/f, c))
			}
		}
	}
	return out
}

func evalSlice(op *Slice, in *tensor.Tensor) *tensor.Tensor {
	b := op.Box
	out := tensor.New(tensor.NewShape(b.DH(), b.DW(), b.DC()))
	for h := b.H0; h < b.H1; h++ {
		for w := b.W0; w < b.W1; w++ {
			for c := b.C0; c < b.C1; c++ {
				out.Set(h-b.H0, w-b.W0, c-b.C0, in.At(h, w, c))
			}
		}
	}
	return out
}
