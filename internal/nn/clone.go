package nn

import "fmt"

// Clone returns a deep copy of the graph: fresh nodes and operator
// structs, with parameter slices and weight tensors copied. Compiling a
// model mutates its graph (BN folding, partitioning, quantization,
// duplication rewrites), so every compilation works on a clone.
func (g *Graph) Clone() *Graph {
	out := NewGraph()
	out.nextID = g.nextID
	// Two passes: rewrite passes may append producers after their
	// consumers in g.Nodes, so input pointers are resolved only after
	// every node has a clone.
	mapping := make(map[*Node]*Node, len(g.Nodes))
	for _, n := range g.Nodes {
		c := &Node{ID: n.ID, Name: n.Name, Op: cloneOp(n.Op), OutShape: n.OutShape}
		mapping[n] = c
		out.Nodes = append(out.Nodes, c)
		out.byName[c.Name] = c
	}
	for _, n := range g.Nodes {
		c := mapping[n]
		c.Inputs = make([]*Node, len(n.Inputs))
		for i, in := range n.Inputs {
			c.Inputs[i] = mapping[in]
		}
	}
	if g.Input != nil {
		out.Input = mapping[g.Input]
	}
	for _, o := range g.Outputs {
		out.Outputs = append(out.Outputs, mapping[o])
	}
	return out
}

func cloneOp(op Op) Op {
	switch o := op.(type) {
	case *Input:
		c := *o
		return &c
	case *Conv2D:
		c := *o
		if o.W != nil {
			c.W = o.W.Clone()
		}
		c.Bias = cloneF32(o.Bias)
		return &c
	case *Dense:
		c := *o
		if o.W != nil {
			c.W = o.W.Clone()
		}
		c.Bias = cloneF32(o.Bias)
		return &c
	case *DepthwiseConv2D:
		c := *o
		if o.W != nil {
			c.W = o.W.Clone()
		}
		c.Bias = cloneF32(o.Bias)
		return &c
	case *BatchNorm:
		c := *o
		c.Gamma = cloneF32(o.Gamma)
		c.Beta = cloneF32(o.Beta)
		c.Mean = cloneF32(o.Mean)
		c.Var = cloneF32(o.Var)
		return &c
	case *BiasAdd:
		c := *o
		c.B = cloneF32(o.B)
		return &c
	case *Activation:
		c := *o
		return &c
	case *MaxPool:
		c := *o
		return &c
	case *AvgPool:
		c := *o
		return &c
	case *Pad:
		c := *o
		return &c
	case *Concat:
		c := *o
		return &c
	case *Add:
		c := *o
		return &c
	case *UpSample:
		c := *o
		return &c
	case *Slice:
		c := *o
		return &c
	case *Flatten:
		c := *o
		return &c
	default:
		panic(fmt.Sprintf("nn: cloneOp: unsupported op %T", op))
	}
}

func cloneF32(s []float32) []float32 {
	if s == nil {
		return nil
	}
	out := make([]float32, len(s))
	copy(out, s)
	return out
}
