package nn

import (
	"strings"
	"testing"
)

// chain builds input -> conv -> relu -> conv and marks the output.
func chain(t *testing.T) (*Graph, *Node, *Node, *Node) {
	t.Helper()
	g := NewGraph()
	in := g.AddInput("input", shape(8, 8, 3))
	c1 := g.Add("c1", &Conv2D{KH: 3, KW: 3, SH: 1, SW: 1, KI: 3, KO: 4,
		Pad: Padding{1, 1, 1, 1}}, in)
	r := g.Add("r", &Activation{Func: ActReLU}, c1)
	c2 := g.Add("c2", &Conv2D{KH: 1, KW: 1, SH: 1, SW: 1, KI: 4, KO: 2}, r)
	g.MarkOutput(c2)
	return g, c1, r, c2
}

func TestGraphBuildAndValidate(t *testing.T) {
	g, _, _, _ := chain(t)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(g.BaseLayers()); got != 2 {
		t.Errorf("BaseLayers = %d, want 2", got)
	}
}

func TestAddInputTwicePanics(t *testing.T) {
	g := NewGraph()
	g.AddInput("a", shape(2, 2, 1))
	defer func() {
		if recover() == nil {
			t.Error("second AddInput did not panic")
		}
	}()
	g.AddInput("b", shape(2, 2, 1))
}

func TestTryAddErrors(t *testing.T) {
	g := NewGraph()
	in := g.AddInput("input", shape(4, 4, 2))
	if _, err := g.TryAdd("x", &Conv2D{KH: 3, KW: 3, SH: 1, SW: 1, KI: 5, KO: 1}, in); err == nil {
		t.Error("shape error not reported")
	}
	if _, err := g.TryAdd("input", &Activation{}, in); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := g.TryAdd("y", &Activation{}, nil); err == nil {
		t.Error("nil input accepted")
	}
}

func TestTopoSortOrder(t *testing.T) {
	g, c1, r, c2 := chain(t)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[*Node]int)
	for i, n := range order {
		pos[n] = i
	}
	if !(pos[g.Input] < pos[c1] && pos[c1] < pos[r] && pos[r] < pos[c2]) {
		t.Error("topological order violated")
	}
}

func TestTopoSortDetectsCycle(t *testing.T) {
	g, c1, r, _ := chain(t)
	// Manufacture a cycle.
	c1.Inputs[0] = r
	if _, err := g.TopoSort(); err == nil {
		t.Error("cycle not detected")
	}
}

func TestValidateCatchesForeignNode(t *testing.T) {
	g, c1, _, _ := chain(t)
	other := NewGraph()
	alien := other.AddInput("alien", shape(8, 8, 3))
	c1.Inputs[0] = alien
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "foreign") {
		t.Errorf("foreign node not caught: %v", err)
	}
}

func TestValidateCatchesStaleShape(t *testing.T) {
	g, c1, _, _ := chain(t)
	c1.OutShape = shape(1, 1, 1)
	if err := g.Validate(); err == nil {
		t.Error("stale shape not caught")
	}
}

func TestReplaceUsesAndPrune(t *testing.T) {
	g, c1, r, c2 := chain(t)
	// Bypass the activation.
	g.ReplaceUses(r, c1)
	if c2.Inputs[0] != c1 {
		t.Fatal("ReplaceUses did not rewire consumer")
	}
	removed := g.Prune()
	if removed != 1 {
		t.Errorf("Prune removed %d, want 1 (the activation)", removed)
	}
	if g.ByName("r") != nil {
		t.Error("pruned node still resolvable by name")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReplaceUsesExceptSkips(t *testing.T) {
	g, c1, _, c2 := chain(t)
	bias := g.Add("bias", &BiasAdd{B: make([]float32, 4)}, c1)
	g.ReplaceUsesExcept(c1, bias, bias)
	if bias.Inputs[0] != c1 {
		t.Error("except-node got rewired")
	}
	// The activation now reads the bias node.
	if g.ByName("r").Inputs[0] != bias {
		t.Error("consumer not rewired")
	}
	_ = c2
}

func TestReplaceUsesUpdatesOutputs(t *testing.T) {
	g, _, _, c2 := chain(t)
	n := g.Add("post", &Activation{Func: ActReLU}, c2)
	g.ReplaceUses(c2, n)
	// n's own input must still be c2 (ReplaceUses is for consumers, but
	// n consumes c2 — classic self-rewire hazard, so n now reads itself?
	// ReplaceUses rewires all consumers including n; verify the
	// dedicated Except variant exists for this case and that outputs
	// moved to n.
	if g.Outputs[0] != n {
		t.Error("graph output not rewired")
	}
}

func TestRefreshShapes(t *testing.T) {
	g, c1, _, _ := chain(t)
	op := c1.Op.(*Conv2D)
	op.Pad = Padding{} // valid conv now: 8x8 -> 6x6
	if err := g.RefreshShapes(); err != nil {
		t.Fatal(err)
	}
	if !c1.OutShape.Equal(shape(6, 6, 4)) {
		t.Errorf("refreshed shape = %v, want (6, 6, 4)", c1.OutShape)
	}
}

func TestFreshName(t *testing.T) {
	g, _, _, _ := chain(t)
	if got := g.FreshName("new"); got != "new" {
		t.Errorf("FreshName unused = %q", got)
	}
	if got := g.FreshName("c1"); got != "c1_1" {
		t.Errorf("FreshName taken = %q", got)
	}
}

func TestConsumers(t *testing.T) {
	g, c1, r, _ := chain(t)
	cons := g.Consumers()
	if len(cons[c1]) != 1 || cons[c1][0] != r {
		t.Errorf("Consumers[c1] = %v", cons[c1])
	}
}

func TestMultiEdgeTopo(t *testing.T) {
	// Add(x, x): the same producer twice must not deadlock Kahn's
	// in-degree accounting.
	g := NewGraph()
	in := g.AddInput("input", shape(2, 2, 1))
	a := g.Add("a", &Activation{Func: ActReLU}, in)
	s := g.Add("s", &Add{}, a, a)
	g.MarkOutput(s)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 {
		t.Errorf("order has %d nodes, want 3", len(order))
	}
}

func TestCloneDeep(t *testing.T) {
	g, c1, _, _ := chain(t)
	op := c1.Op.(*Conv2D)
	op.W = NewConvWeights(3, 3, 3, 4)
	op.W.FillRand(1, 1)
	op.Bias = make([]float32, 4)

	c := g.Clone()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes) != len(g.Nodes) {
		t.Fatalf("clone has %d nodes, want %d", len(c.Nodes), len(g.Nodes))
	}
	cc1 := c.ByName("c1").Op.(*Conv2D)
	cc1.W.Data[0] = 999
	cc1.Bias[0] = 999
	if op.W.Data[0] == 999 || op.Bias[0] == 999 {
		t.Error("clone shares weight storage")
	}
	// Clone nodes must not alias originals.
	for _, n := range c.Nodes {
		if g.ByName(n.Name) == n {
			t.Fatalf("node %v aliased", n)
		}
	}
}

func TestClonePostRewriteOrder(t *testing.T) {
	// After a rewrite pass appends a producer behind its consumer in
	// g.Nodes, Clone must still resolve inputs (two-pass).
	g, c1, _, _ := chain(t)
	pad := g.Add("latepad", &Pad{Pad: Padding{1, 1, 1, 1}}, g.Input)
	op := c1.Op.(*Conv2D)
	op.Pad = Padding{}
	c1.Inputs[0] = pad
	if err := g.RefreshShapes(); err != nil {
		t.Fatal(err)
	}
	c := g.Clone()
	if err := c.Validate(); err != nil {
		t.Fatalf("clone of rewritten graph invalid: %v", err)
	}
	if c.ByName("c1").Inputs[0] != c.ByName("latepad") {
		t.Error("late producer not rewired in clone")
	}
}
