// Package nn implements the neural-network intermediate representation
// consumed by the CLSA-CIM compiler stack: a directed acyclic graph of
// operators with HWC shape inference, plus a reference CPU executor used
// to verify that compiler transformations (BN folding, partitioning,
// weight duplication) preserve inference results.
//
// The operator set mirrors what the paper's TensorFlow frontend produces
// after export: convolutions and dense layers (the future "base layers"),
// and the non-base layers executed on a tile's general-purpose execution
// unit (GPEU): padding, bias addition, activations, pooling,
// concatenation, residual addition, nearest-neighbour upsampling, and
// slicing (used by the weight-duplication rewrite).
package nn

import (
	"fmt"

	"clsacim/internal/region"
	"clsacim/internal/tensor"
)

// OpKind enumerates operator categories.
type OpKind int

// Operator kinds. OpConv2D and OpDense are base layers (executed on PEs);
// everything else is a non-base layer (executed on the GPEU) or the graph
// input.
const (
	OpInput OpKind = iota
	OpConv2D
	OpDense
	OpBatchNorm
	OpBiasAdd
	OpActivation
	OpMaxPool
	OpAvgPool
	OpPad
	OpConcat
	OpAdd
	OpUpSample
	OpSlice
	OpFlatten
	OpDepthwise
)

var opKindNames = map[OpKind]string{
	OpInput:      "Input",
	OpConv2D:     "Conv2D",
	OpDense:      "Dense",
	OpBatchNorm:  "BatchNorm",
	OpBiasAdd:    "BiasAdd",
	OpActivation: "Activation",
	OpMaxPool:    "MaxPool",
	OpAvgPool:    "AvgPool",
	OpPad:        "Pad",
	OpConcat:     "Concat",
	OpAdd:        "Add",
	OpUpSample:   "UpSample",
	OpSlice:      "Slice",
	OpFlatten:    "Flatten",
	OpDepthwise:  "DepthwiseConv2D",
}

// String returns the operator kind name.
func (k OpKind) String() string {
	if n, ok := opKindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is the interface implemented by every operator. InferShape validates
// input shapes and computes the output shape.
type Op interface {
	Kind() OpKind
	InferShape(in []tensor.Shape) (tensor.Shape, error)
}

// BaseOp marks operators that execute on processing elements (crossbars)
// and therefore count as base layers in the paper's partitioning.
type BaseOp interface {
	Op
	isBase()
}

// Axis identifies a tensor dimension for Concat.
type Axis int

// Concatenation axes in HWC order.
const (
	AxisH Axis = iota
	AxisW
	AxisC
)

// String returns "H", "W", or "C".
func (a Axis) String() string { return [...]string{"H", "W", "C"}[a] }

// ActFunc enumerates pointwise activation functions.
type ActFunc int

// Supported activations. ActLinear is the identity (used when folding
// removes a nonlinearity placeholder).
const (
	ActLinear ActFunc = iota
	ActReLU
	ActLeakyReLU
)

// String returns the activation name.
func (f ActFunc) String() string {
	return [...]string{"linear", "relu", "leaky"}[f]
}

// Padding describes explicit spatial zero-padding amounts.
type Padding struct {
	Top, Bottom, Left, Right int
}

// Any reports whether any side has non-zero padding.
func (p Padding) Any() bool { return p.Top != 0 || p.Bottom != 0 || p.Left != 0 || p.Right != 0 }

// SamePadding computes TensorFlow-style "same" padding for a window of
// size k moving with stride s over extent n: total padding such that the
// output extent is ceil(n/s), with the extra odd element on the
// bottom/right (TF convention).
func SamePadding(n, k, s int) (before, after int) {
	out := (n + s - 1) / s
	total := (out-1)*s + k - n
	if total < 0 {
		total = 0
	}
	return total / 2, total - total/2
}

// windowOut returns the output extent of a window op: floor((n + pad - k)/s) + 1.
func windowOut(n, k, s, padBefore, padAfter int) (int, error) {
	eff := n + padBefore + padAfter
	if k <= 0 || s <= 0 {
		return 0, fmt.Errorf("nn: invalid window k=%d s=%d", k, s)
	}
	if eff < k {
		return 0, fmt.Errorf("nn: window %d larger than padded extent %d", k, eff)
	}
	return (eff-k)/s + 1, nil
}

func wantInputs(in []tensor.Shape, n int, kind OpKind) error {
	if len(in) != n {
		return fmt.Errorf("nn: %v expects %d input(s), got %d", kind, n, len(in))
	}
	return nil
}

// Input is the graph entry point carrying the network input shape.
type Input struct {
	Shape tensor.Shape
}

// Kind returns OpInput.
func (o *Input) Kind() OpKind { return OpInput }

// InferShape returns the declared input shape.
func (o *Input) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := wantInputs(in, 0, OpInput); err != nil {
		return tensor.Shape{}, err
	}
	if !o.Shape.Valid() {
		return tensor.Shape{}, fmt.Errorf("nn: invalid input shape %v", o.Shape)
	}
	return o.Shape, nil
}

// Conv2D is a 2-D convolution, the primary base layer. Before the
// partitioning pass it may carry embedded padding (Pad) and a bias
// vector; the pass decouples both into separate non-base nodes, yielding
// the canonical representation of paper Fig. 2.
type Conv2D struct {
	KH, KW int // kernel height and width
	SH, SW int // strides
	Pad    Padding
	W      *ConvWeights // kernel tensor (KH, KW, KI, KO); may be nil for shape-only graphs
	Bias   []float32    // per-output-channel bias, nil if none
	// KI and KO are the input/output channel counts. They are
	// authoritative even when W is nil so that shape-only model
	// definitions can be compiled and scheduled without weight data.
	KI, KO int
}

// Kind returns OpConv2D.
func (o *Conv2D) Kind() OpKind { return OpConv2D }

func (o *Conv2D) isBase() {}

// InferShape computes the convolution output shape.
func (o *Conv2D) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := wantInputs(in, 1, OpConv2D); err != nil {
		return tensor.Shape{}, err
	}
	s := in[0]
	if s.C != o.KI {
		return tensor.Shape{}, fmt.Errorf("nn: Conv2D expects %d input channels, got %d", o.KI, s.C)
	}
	if o.W != nil {
		if o.W.KH != o.KH || o.W.KW != o.KW || o.W.KI != o.KI || o.W.KO != o.KO {
			return tensor.Shape{}, fmt.Errorf("nn: Conv2D weight dims (%d,%d,%d,%d) mismatch attrs (%d,%d,%d,%d)",
				o.W.KH, o.W.KW, o.W.KI, o.W.KO, o.KH, o.KW, o.KI, o.KO)
		}
	}
	if o.Bias != nil && len(o.Bias) != o.KO {
		return tensor.Shape{}, fmt.Errorf("nn: Conv2D bias length %d != KO %d", len(o.Bias), o.KO)
	}
	oh, err := windowOut(s.H, o.KH, o.SH, o.Pad.Top, o.Pad.Bottom)
	if err != nil {
		return tensor.Shape{}, err
	}
	ow, err := windowOut(s.W, o.KW, o.SW, o.Pad.Left, o.Pad.Right)
	if err != nil {
		return tensor.Shape{}, err
	}
	return tensor.NewShape(oh, ow, o.KO), nil
}

// DepthwiseConv2D is a depthwise convolution (depth multiplier 1): each
// channel is filtered independently with its own KH x KW kernel. It is a
// base layer: the kernel matrix is block-diagonal, and multiple channels
// pack onto one crossbar on disjoint rows and columns (the
// shifted/duplicated-kernel packing of the paper's reference [14],
// VWC-SDK). MobileNet-style separable convolutions need it; the paper's
// own benchmarks do not, so this operator is an extension.
type DepthwiseConv2D struct {
	KH, KW int
	SH, SW int
	Pad    Padding
	// C is the channel count (input == output).
	C int
	// W has layout (KH, KW, C, 1): one kernel per channel.
	W    *ConvWeights
	Bias []float32
}

// Kind returns OpDepthwise.
func (o *DepthwiseConv2D) Kind() OpKind { return OpDepthwise }

func (o *DepthwiseConv2D) isBase() {}

// InferShape computes the depthwise output shape.
func (o *DepthwiseConv2D) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := wantInputs(in, 1, OpDepthwise); err != nil {
		return tensor.Shape{}, err
	}
	s := in[0]
	if s.C != o.C {
		return tensor.Shape{}, fmt.Errorf("nn: DepthwiseConv2D expects %d channels, got %d", o.C, s.C)
	}
	if o.W != nil && (o.W.KH != o.KH || o.W.KW != o.KW || o.W.KI != o.C || o.W.KO != 1) {
		return tensor.Shape{}, fmt.Errorf("nn: DepthwiseConv2D weight dims (%d,%d,%d,%d), want (%d,%d,%d,1)",
			o.W.KH, o.W.KW, o.W.KI, o.W.KO, o.KH, o.KW, o.C)
	}
	if o.Bias != nil && len(o.Bias) != o.C {
		return tensor.Shape{}, fmt.Errorf("nn: DepthwiseConv2D bias length %d != C %d", len(o.Bias), o.C)
	}
	oh, err := windowOut(s.H, o.KH, o.SH, o.Pad.Top, o.Pad.Bottom)
	if err != nil {
		return tensor.Shape{}, err
	}
	ow, err := windowOut(s.W, o.KW, o.SW, o.Pad.Left, o.Pad.Right)
	if err != nil {
		return tensor.Shape{}, err
	}
	return tensor.NewShape(oh, ow, o.C), nil
}

// Dense is a fully connected layer over a flattened (1, 1, KI) input; a
// base layer executed as a single-column GEMM on the PEs.
type Dense struct {
	W    *ConvWeights // 1x1 kernel layout (1, 1, KI, KO); may be nil
	Bias []float32
	KI   int
	KO   int
}

// Kind returns OpDense.
func (o *Dense) Kind() OpKind { return OpDense }

func (o *Dense) isBase() {}

// InferShape validates the flattened input and returns (1, 1, KO).
func (o *Dense) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := wantInputs(in, 1, OpDense); err != nil {
		return tensor.Shape{}, err
	}
	s := in[0]
	if s.H != 1 || s.W != 1 {
		return tensor.Shape{}, fmt.Errorf("nn: Dense requires (1,1,C) input, got %v (flatten first)", s)
	}
	if s.C != o.KI {
		return tensor.Shape{}, fmt.Errorf("nn: Dense expects %d inputs, got %d", o.KI, s.C)
	}
	if o.W != nil && (o.W.KH != 1 || o.W.KW != 1 || o.W.KI != o.KI || o.W.KO != o.KO) {
		return tensor.Shape{}, fmt.Errorf("nn: Dense weight dims mismatch")
	}
	return tensor.NewShape(1, 1, o.KO), nil
}

// BatchNorm is inference-mode batch normalization with per-channel
// parameters. The BN-folding pass removes it by adjusting the preceding
// base layer's weights and bias (paper §III-A).
type BatchNorm struct {
	Gamma, Beta, Mean, Var []float32
	Eps                    float32
}

// Kind returns OpBatchNorm.
func (o *BatchNorm) Kind() OpKind { return OpBatchNorm }

// InferShape validates parameter lengths against the channel count.
func (o *BatchNorm) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := wantInputs(in, 1, OpBatchNorm); err != nil {
		return tensor.Shape{}, err
	}
	c := in[0].C
	for _, p := range [][]float32{o.Gamma, o.Beta, o.Mean, o.Var} {
		if len(p) != c {
			return tensor.Shape{}, fmt.Errorf("nn: BatchNorm parameter length %d != channels %d", len(p), c)
		}
	}
	return in[0], nil
}

// BiasAdd adds a per-channel bias vector; produced by the partitioning
// pass when it decouples the bias from a base layer.
type BiasAdd struct {
	B []float32
}

// Kind returns OpBiasAdd.
func (o *BiasAdd) Kind() OpKind { return OpBiasAdd }

// InferShape validates the bias length.
func (o *BiasAdd) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := wantInputs(in, 1, OpBiasAdd); err != nil {
		return tensor.Shape{}, err
	}
	if len(o.B) != in[0].C {
		return tensor.Shape{}, fmt.Errorf("nn: BiasAdd length %d != channels %d", len(o.B), in[0].C)
	}
	return in[0], nil
}

// Activation applies a pointwise nonlinearity.
type Activation struct {
	Func  ActFunc
	Alpha float32 // negative-slope for LeakyReLU
}

// Kind returns OpActivation.
func (o *Activation) Kind() OpKind { return OpActivation }

// InferShape passes the input shape through.
func (o *Activation) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := wantInputs(in, 1, OpActivation); err != nil {
		return tensor.Shape{}, err
	}
	return in[0], nil
}

// MaxPool is spatial max pooling (GPEU-executed non-base layer).
type MaxPool struct {
	KH, KW int
	SH, SW int
	Pad    Padding
}

// Kind returns OpMaxPool.
func (o *MaxPool) Kind() OpKind { return OpMaxPool }

// InferShape computes the pooled output shape.
func (o *MaxPool) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := wantInputs(in, 1, OpMaxPool); err != nil {
		return tensor.Shape{}, err
	}
	s := in[0]
	oh, err := windowOut(s.H, o.KH, o.SH, o.Pad.Top, o.Pad.Bottom)
	if err != nil {
		return tensor.Shape{}, err
	}
	ow, err := windowOut(s.W, o.KW, o.SW, o.Pad.Left, o.Pad.Right)
	if err != nil {
		return tensor.Shape{}, err
	}
	return tensor.NewShape(oh, ow, s.C), nil
}

// AvgPool is spatial average pooling. Global pools the full spatial
// extent to (1, 1, C) regardless of the kernel fields.
type AvgPool struct {
	Global bool
	KH, KW int
	SH, SW int
}

// Kind returns OpAvgPool.
func (o *AvgPool) Kind() OpKind { return OpAvgPool }

// InferShape computes the pooled output shape.
func (o *AvgPool) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := wantInputs(in, 1, OpAvgPool); err != nil {
		return tensor.Shape{}, err
	}
	s := in[0]
	if o.Global {
		return tensor.NewShape(1, 1, s.C), nil
	}
	oh, err := windowOut(s.H, o.KH, o.SH, 0, 0)
	if err != nil {
		return tensor.Shape{}, err
	}
	ow, err := windowOut(s.W, o.KW, o.SW, 0, 0)
	if err != nil {
		return tensor.Shape{}, err
	}
	return tensor.NewShape(oh, ow, s.C), nil
}

// Pad zero-pads the spatial dimensions; produced by the partitioning pass
// when it decouples padding from a base layer (paper Fig. 2).
type Pad struct {
	Pad   Padding
	Value float32
}

// Kind returns OpPad.
func (o *Pad) Kind() OpKind { return OpPad }

// InferShape adds the padding amounts to the spatial extents.
func (o *Pad) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := wantInputs(in, 1, OpPad); err != nil {
		return tensor.Shape{}, err
	}
	s := in[0]
	if o.Pad.Top < 0 || o.Pad.Bottom < 0 || o.Pad.Left < 0 || o.Pad.Right < 0 {
		return tensor.Shape{}, fmt.Errorf("nn: negative padding %+v", o.Pad)
	}
	return tensor.NewShape(s.H+o.Pad.Top+o.Pad.Bottom, s.W+o.Pad.Left+o.Pad.Right, s.C), nil
}

// Concat concatenates its inputs along one axis. YOLO route layers use
// AxisC; the weight-duplication rewrite uses AxisH/AxisW concat trees.
type Concat struct {
	Axis Axis
}

// Kind returns OpConcat.
func (o *Concat) Kind() OpKind { return OpConcat }

// InferShape sums the concatenation axis and validates the others.
func (o *Concat) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if len(in) < 2 {
		return tensor.Shape{}, fmt.Errorf("nn: Concat needs >= 2 inputs, got %d", len(in))
	}
	out := in[0]
	for _, s := range in[1:] {
		switch o.Axis {
		case AxisH:
			if s.W != out.W || s.C != out.C {
				return tensor.Shape{}, fmt.Errorf("nn: Concat(H) mismatched shapes %v vs %v", out, s)
			}
			out.H += s.H
		case AxisW:
			if s.H != out.H || s.C != out.C {
				return tensor.Shape{}, fmt.Errorf("nn: Concat(W) mismatched shapes %v vs %v", out, s)
			}
			out.W += s.W
		case AxisC:
			if s.H != out.H || s.W != out.W {
				return tensor.Shape{}, fmt.Errorf("nn: Concat(C) mismatched shapes %v vs %v", out, s)
			}
			out.C += s.C
		default:
			return tensor.Shape{}, fmt.Errorf("nn: Concat invalid axis %d", o.Axis)
		}
	}
	return out, nil
}

// Add is elementwise addition of two equal-shaped tensors (ResNet
// residual connections).
type Add struct{}

// Kind returns OpAdd.
func (o *Add) Kind() OpKind { return OpAdd }

// InferShape validates equal input shapes.
func (o *Add) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := wantInputs(in, 2, OpAdd); err != nil {
		return tensor.Shape{}, err
	}
	if !in[0].Equal(in[1]) {
		return tensor.Shape{}, fmt.Errorf("nn: Add shape mismatch %v vs %v", in[0], in[1])
	}
	return in[0], nil
}

// UpSample is nearest-neighbour spatial upsampling by an integer factor
// (YOLO feature-pyramid path).
type UpSample struct {
	Factor int
}

// Kind returns OpUpSample.
func (o *UpSample) Kind() OpKind { return OpUpSample }

// InferShape multiplies the spatial extents by the factor.
func (o *UpSample) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := wantInputs(in, 1, OpUpSample); err != nil {
		return tensor.Shape{}, err
	}
	if o.Factor < 1 {
		return tensor.Shape{}, fmt.Errorf("nn: UpSample factor %d < 1", o.Factor)
	}
	s := in[0]
	return tensor.NewShape(s.H*o.Factor, s.W*o.Factor, s.C), nil
}

// Slice extracts a box from its input. The weight-duplication rewrite
// (paper Fig. 4, tf.slice) uses it to hand each duplicate its overlapping
// share of the IFM. YOLO's channel-split route layers also use it.
type Slice struct {
	Box region.Box
}

// Kind returns OpSlice.
func (o *Slice) Kind() OpKind { return OpSlice }

// InferShape validates the box against the input volume.
func (o *Slice) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := wantInputs(in, 1, OpSlice); err != nil {
		return tensor.Shape{}, err
	}
	s := in[0]
	full := region.Full(s.H, s.W, s.C)
	if o.Box.Empty() || !full.ContainsBox(o.Box) {
		return tensor.Shape{}, fmt.Errorf("nn: Slice box %v outside input %v", o.Box, s)
	}
	return tensor.NewShape(o.Box.DH(), o.Box.DW(), o.Box.DC()), nil
}

// Flatten reshapes (H, W, C) to (1, 1, H*W*C) ahead of a Dense layer.
type Flatten struct{}

// Kind returns OpFlatten.
func (o *Flatten) Kind() OpKind { return OpFlatten }

// InferShape returns the flattened shape.
func (o *Flatten) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := wantInputs(in, 1, OpFlatten); err != nil {
		return tensor.Shape{}, err
	}
	return tensor.NewShape(1, 1, in[0].Elems()), nil
}

// IsBase reports whether op executes on processing elements (Conv2D or
// Dense), i.e. is a base layer in the paper's partitioning (§III-A).
func IsBase(op Op) bool {
	_, ok := op.(BaseOp)
	return ok
}
