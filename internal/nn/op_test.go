package nn

import (
	"testing"

	"clsacim/internal/region"
	"clsacim/internal/tensor"
)

func shape(h, w, c int) tensor.Shape { return tensor.NewShape(h, w, c) }

func TestSamePadding(t *testing.T) {
	cases := []struct {
		n, k, s               int
		wantBefore, wantAfter int
	}{
		{416, 3, 2, 0, 1}, // TinyYOLOv4 first conv: 417-row padded input
		{208, 3, 2, 0, 1},
		{104, 3, 1, 1, 1},
		{13, 2, 1, 0, 1}, // TinyYOLOv3 stride-1 pool
		{224, 3, 1, 1, 1},
		{5, 1, 1, 0, 0},
		{7, 7, 2, 3, 3},
		{224, 7, 2, 2, 3},
	}
	for _, c := range cases {
		b, a := SamePadding(c.n, c.k, c.s)
		if b != c.wantBefore || a != c.wantAfter {
			t.Errorf("SamePadding(%d,%d,%d) = (%d,%d), want (%d,%d)",
				c.n, c.k, c.s, b, a, c.wantBefore, c.wantAfter)
		}
		// TF "same" invariant: output extent is ceil(n/s).
		out := (c.n + b + a - c.k) / c.s
		if out+1 != (c.n+c.s-1)/c.s {
			t.Errorf("SamePadding(%d,%d,%d): out %d != ceil(n/s) %d", c.n, c.k, c.s, out+1, (c.n+c.s-1)/c.s)
		}
	}
}

func TestConv2DInferShape(t *testing.T) {
	op := &Conv2D{KH: 3, KW: 3, SH: 2, SW: 2, KI: 3, KO: 32, Pad: Padding{0, 1, 0, 1}}
	out, err := op.InferShape([]tensor.Shape{shape(416, 416, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(shape(208, 208, 32)) {
		t.Errorf("out = %v, want (208, 208, 32)", out)
	}
	if _, err := op.InferShape([]tensor.Shape{shape(416, 416, 4)}); err == nil {
		t.Error("channel mismatch accepted")
	}
	if _, err := op.InferShape(nil); err == nil {
		t.Error("missing input accepted")
	}
	bad := &Conv2D{KH: 5, KW: 5, SH: 1, SW: 1, KI: 1, KO: 1}
	if _, err := bad.InferShape([]tensor.Shape{shape(3, 3, 1)}); err == nil {
		t.Error("kernel larger than input accepted")
	}
	withW := &Conv2D{KH: 3, KW: 3, SH: 1, SW: 1, KI: 2, KO: 4, W: NewConvWeights(3, 3, 2, 5)}
	if _, err := withW.InferShape([]tensor.Shape{shape(8, 8, 2)}); err == nil {
		t.Error("weight dim mismatch accepted")
	}
	badBias := &Conv2D{KH: 1, KW: 1, SH: 1, SW: 1, KI: 2, KO: 4, Bias: make([]float32, 3)}
	if _, err := badBias.InferShape([]tensor.Shape{shape(8, 8, 2)}); err == nil {
		t.Error("bias length mismatch accepted")
	}
}

func TestDenseInferShape(t *testing.T) {
	op := &Dense{KI: 10, KO: 4}
	out, err := op.InferShape([]tensor.Shape{shape(1, 1, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(shape(1, 1, 4)) {
		t.Errorf("out = %v", out)
	}
	if _, err := op.InferShape([]tensor.Shape{shape(2, 1, 5)}); err == nil {
		t.Error("non-flattened input accepted")
	}
}

func TestPoolInferShape(t *testing.T) {
	mp := &MaxPool{KH: 2, KW: 2, SH: 2, SW: 2}
	out, err := mp.InferShape([]tensor.Shape{shape(8, 8, 16)})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(shape(4, 4, 16)) {
		t.Errorf("maxpool out = %v", out)
	}
	mp1 := &MaxPool{KH: 2, KW: 2, SH: 1, SW: 1, Pad: Padding{0, 1, 0, 1}}
	out, err = mp1.InferShape([]tensor.Shape{shape(13, 13, 512)})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(shape(13, 13, 512)) {
		t.Errorf("stride-1 same pool out = %v", out)
	}
	gap := &AvgPool{Global: true}
	out, err = gap.InferShape([]tensor.Shape{shape(7, 7, 2048)})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(shape(1, 1, 2048)) {
		t.Errorf("gap out = %v", out)
	}
}

func TestConcatInferShape(t *testing.T) {
	c := &Concat{Axis: AxisC}
	out, err := c.InferShape([]tensor.Shape{shape(13, 13, 128), shape(13, 13, 256)})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(shape(13, 13, 384)) {
		t.Errorf("concat C out = %v", out)
	}
	h := &Concat{Axis: AxisH}
	out, err = h.InferShape([]tensor.Shape{shape(3, 8, 4), shape(5, 8, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(shape(8, 8, 4)) {
		t.Errorf("concat H out = %v", out)
	}
	if _, err := c.InferShape([]tensor.Shape{shape(13, 13, 128), shape(12, 13, 1)}); err == nil {
		t.Error("mismatched concat accepted")
	}
	if _, err := c.InferShape([]tensor.Shape{shape(1, 1, 1)}); err == nil {
		t.Error("single-input concat accepted")
	}
}

func TestMiscInferShapes(t *testing.T) {
	if _, err := (&Add{}).InferShape([]tensor.Shape{shape(4, 4, 8), shape(4, 4, 9)}); err == nil {
		t.Error("Add shape mismatch accepted")
	}
	out, err := (&UpSample{Factor: 2}).InferShape([]tensor.Shape{shape(13, 13, 128)})
	if err != nil || !out.Equal(shape(26, 26, 128)) {
		t.Errorf("upsample out = %v err %v", out, err)
	}
	if _, err := (&UpSample{Factor: 0}).InferShape([]tensor.Shape{shape(4, 4, 1)}); err == nil {
		t.Error("factor 0 accepted")
	}
	out, err = (&Slice{Box: region.NewBox(1, 3, 0, 4, 2, 4)}).InferShape([]tensor.Shape{shape(4, 4, 4)})
	if err != nil || !out.Equal(shape(2, 4, 2)) {
		t.Errorf("slice out = %v err %v", out, err)
	}
	if _, err := (&Slice{Box: region.NewBox(0, 5, 0, 4, 0, 4)}).InferShape([]tensor.Shape{shape(4, 4, 4)}); err == nil {
		t.Error("out-of-bounds slice accepted")
	}
	out, err = (&Flatten{}).InferShape([]tensor.Shape{shape(2, 3, 4)})
	if err != nil || !out.Equal(shape(1, 1, 24)) {
		t.Errorf("flatten out = %v err %v", out, err)
	}
	out, err = (&Pad{Pad: Padding{1, 2, 3, 4}}).InferShape([]tensor.Shape{shape(4, 4, 2)})
	if err != nil || !out.Equal(shape(7, 11, 2)) {
		t.Errorf("pad out = %v err %v", out, err)
	}
	if _, err := (&Pad{Pad: Padding{-1, 0, 0, 0}}).InferShape([]tensor.Shape{shape(4, 4, 2)}); err == nil {
		t.Error("negative pad accepted")
	}
	if _, err := (&BatchNorm{Gamma: make([]float32, 3)}).InferShape([]tensor.Shape{shape(2, 2, 4)}); err == nil {
		t.Error("BN param length mismatch accepted")
	}
	if _, err := (&BiasAdd{B: make([]float32, 3)}).InferShape([]tensor.Shape{shape(2, 2, 4)}); err == nil {
		t.Error("bias length mismatch accepted")
	}
}

func TestIsBase(t *testing.T) {
	if !IsBase(&Conv2D{}) || !IsBase(&Dense{}) {
		t.Error("Conv2D/Dense must be base layers")
	}
	for _, op := range []Op{&MaxPool{}, &Pad{}, &Concat{}, &Add{}, &UpSample{}, &Slice{},
		&Flatten{}, &BatchNorm{}, &BiasAdd{}, &Activation{}, &AvgPool{}, &Input{}} {
		if IsBase(op) {
			t.Errorf("%v misclassified as base", op.Kind())
		}
	}
}

func TestOpKindString(t *testing.T) {
	if OpConv2D.String() != "Conv2D" || OpInput.String() != "Input" {
		t.Error("OpKind names wrong")
	}
	if OpKind(99).String() != "OpKind(99)" {
		t.Error("unknown kind string wrong")
	}
	if AxisH.String() != "H" || AxisC.String() != "C" {
		t.Error("axis names wrong")
	}
	if ActLeakyReLU.String() != "leaky" {
		t.Error("activation names wrong")
	}
}
