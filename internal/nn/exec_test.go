package nn

import (
	"math"
	"testing"

	"clsacim/internal/region"
	"clsacim/internal/tensor"
)

func runSingle(t *testing.T, op Op, in *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	g := NewGraph()
	input := g.AddInput("input", in.Shape)
	n := g.Add("op", op, input)
	g.MarkOutput(n)
	outs, err := (&Executor{}).RunOutputs(g, in)
	if err != nil {
		t.Fatal(err)
	}
	return outs[0]
}

func TestExecConv2DHandComputed(t *testing.T) {
	// 2x2 input, 2x2 kernel, valid: out = sum(in * w).
	in := tensor.FromSlice(shape(2, 2, 1), []float32{1, 2, 3, 4})
	w := NewConvWeights(2, 2, 1, 1)
	copy(w.Data, []float32{10, 20, 30, 40})
	out := runSingle(t, &Conv2D{KH: 2, KW: 2, SH: 1, SW: 1, KI: 1, KO: 1, W: w}, in)
	if got := out.Data[0]; got != 1*10+2*20+3*30+4*40 {
		t.Errorf("conv = %v, want 300", got)
	}
}

func TestExecConv2DStridePad(t *testing.T) {
	// Identity 1x1 kernel with stride 2 picks every other pixel.
	in := tensor.New(shape(4, 4, 1))
	for i := range in.Data {
		in.Data[i] = float32(i)
	}
	w := NewConvWeights(1, 1, 1, 1)
	w.Data[0] = 1
	out := runSingle(t, &Conv2D{KH: 1, KW: 1, SH: 2, SW: 2, KI: 1, KO: 1, W: w}, in)
	want := []float32{0, 2, 8, 10}
	for i, v := range want {
		if out.Data[i] != v {
			t.Errorf("strided conv[%d] = %v, want %v", i, out.Data[i], v)
		}
	}
	// Padding contributes zeros.
	w3 := NewConvWeights(3, 3, 1, 1)
	for i := range w3.Data {
		w3.Data[i] = 1
	}
	out = runSingle(t, &Conv2D{KH: 3, KW: 3, SH: 1, SW: 1, KI: 1, KO: 1,
		Pad: Padding{1, 1, 1, 1}, W: w3}, in)
	// Top-left output: sum of in[0:2,0:2] = 0+1+4+5 = 10.
	if out.At(0, 0, 0) != 10 {
		t.Errorf("padded conv corner = %v, want 10", out.At(0, 0, 0))
	}
	if !out.Shape.Equal(shape(4, 4, 1)) {
		t.Errorf("padded conv shape = %v", out.Shape)
	}
}

func TestExecConvBias(t *testing.T) {
	in := tensor.FromSlice(shape(1, 1, 1), []float32{2})
	w := NewConvWeights(1, 1, 1, 2)
	copy(w.Data, []float32{3, 5})
	out := runSingle(t, &Conv2D{KH: 1, KW: 1, SH: 1, SW: 1, KI: 1, KO: 2, W: w,
		Bias: []float32{10, 20}}, in)
	if out.Data[0] != 16 || out.Data[1] != 30 {
		t.Errorf("conv+bias = %v", out.Data)
	}
}

func TestExecDense(t *testing.T) {
	in := tensor.FromSlice(shape(1, 1, 3), []float32{1, 2, 3})
	w := NewConvWeights(1, 1, 3, 2)
	// w[ki][ko]: column 0 = (1,0,1), column 1 = (0,1,0).
	w.Set(0, 0, 0, 0, 1)
	w.Set(0, 0, 2, 0, 1)
	w.Set(0, 0, 1, 1, 1)
	out := runSingle(t, &Dense{KI: 3, KO: 2, W: w, Bias: []float32{0.5, -0.5}}, in)
	if out.Data[0] != 4.5 || out.Data[1] != 1.5 {
		t.Errorf("dense = %v", out.Data)
	}
}

func TestExecBatchNorm(t *testing.T) {
	in := tensor.FromSlice(shape(1, 1, 2), []float32{3, -1})
	bn := &BatchNorm{
		Gamma: []float32{2, 1},
		Beta:  []float32{1, 0},
		Mean:  []float32{1, -1},
		Var:   []float32{4, 1},
		Eps:   0,
	}
	out := runSingle(t, bn, in)
	// (3-1)/2*2+1 = 3; (-1 - -1)/1*1+0 = 0.
	if math.Abs(float64(out.Data[0]-3)) > 1e-6 || math.Abs(float64(out.Data[1])) > 1e-6 {
		t.Errorf("bn = %v", out.Data)
	}
}

func TestExecActivations(t *testing.T) {
	in := tensor.FromSlice(shape(1, 1, 3), []float32{-2, 0, 3})
	relu := runSingle(t, &Activation{Func: ActReLU}, in)
	if relu.Data[0] != 0 || relu.Data[2] != 3 {
		t.Errorf("relu = %v", relu.Data)
	}
	leaky := runSingle(t, &Activation{Func: ActLeakyReLU, Alpha: 0.1}, in)
	if math.Abs(float64(leaky.Data[0]+0.2)) > 1e-6 || leaky.Data[2] != 3 {
		t.Errorf("leaky = %v", leaky.Data)
	}
	lin := runSingle(t, &Activation{Func: ActLinear}, in)
	if lin.Data[0] != -2 {
		t.Errorf("linear = %v", lin.Data)
	}
}

func TestExecMaxPool(t *testing.T) {
	in := tensor.FromSlice(shape(2, 2, 1), []float32{1, 5, 2, 4})
	out := runSingle(t, &MaxPool{KH: 2, KW: 2, SH: 2, SW: 2}, in)
	if out.Data[0] != 5 {
		t.Errorf("maxpool = %v", out.Data[0])
	}
	// Stride-1 "same" pool with negative inputs: padding must not win.
	neg := tensor.FromSlice(shape(2, 2, 1), []float32{-1, -5, -2, -4})
	out = runSingle(t, &MaxPool{KH: 2, KW: 2, SH: 1, SW: 1, Pad: Padding{0, 1, 0, 1}}, neg)
	if out.At(1, 1, 0) != -4 {
		t.Errorf("padded maxpool corner = %v, want -4 (not 0)", out.At(1, 1, 0))
	}
}

func TestExecAvgPool(t *testing.T) {
	in := tensor.FromSlice(shape(2, 2, 1), []float32{1, 2, 3, 6})
	out := runSingle(t, &AvgPool{KH: 2, KW: 2, SH: 2, SW: 2}, in)
	if out.Data[0] != 3 {
		t.Errorf("avgpool = %v", out.Data[0])
	}
	gap := runSingle(t, &AvgPool{Global: true}, in)
	if gap.Data[0] != 3 {
		t.Errorf("gap = %v", gap.Data[0])
	}
}

func TestExecPadSliceConcatUpsample(t *testing.T) {
	in := tensor.FromSlice(shape(2, 2, 1), []float32{1, 2, 3, 4})
	padded := runSingle(t, &Pad{Pad: Padding{1, 0, 0, 1}}, in)
	if !padded.Shape.Equal(shape(3, 3, 1)) || padded.At(0, 0, 0) != 0 || padded.At(1, 0, 0) != 1 {
		t.Errorf("pad wrong: %v %v", padded.Shape, padded.Data)
	}
	sl := runSingle(t, &Slice{Box: region.NewBox(1, 2, 0, 2, 0, 1)}, in)
	if sl.Data[0] != 3 || sl.Data[1] != 4 {
		t.Errorf("slice = %v", sl.Data)
	}
	up := runSingle(t, &UpSample{Factor: 2}, in)
	if !up.Shape.Equal(shape(4, 4, 1)) || up.At(0, 1, 0) != 1 || up.At(3, 3, 0) != 4 {
		t.Errorf("upsample wrong")
	}

	g := NewGraph()
	input := g.AddInput("input", shape(1, 1, 2))
	a := g.Add("a", &Activation{Func: ActLinear}, input)
	b := g.Add("b", &Activation{Func: ActReLU}, input)
	cat := g.Add("cat", &Concat{Axis: AxisC}, a, b)
	g.MarkOutput(cat)
	outs, err := (&Executor{}).RunOutputs(g, tensor.FromSlice(shape(1, 1, 2), []float32{-1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{-1, 2, 0, 2}
	for i, v := range want {
		if outs[0].Data[i] != v {
			t.Errorf("concat[%d] = %v, want %v", i, outs[0].Data[i], v)
		}
	}
}

func TestExecAddAndFlatten(t *testing.T) {
	g := NewGraph()
	in := g.AddInput("input", shape(2, 1, 1))
	a := g.Add("a", &Activation{Func: ActLinear}, in)
	s := g.Add("s", &Add{}, a, in)
	f := g.Add("f", &Flatten{}, s)
	g.MarkOutput(f)
	outs, err := (&Executor{}).RunOutputs(g, tensor.FromSlice(shape(2, 1, 1), []float32{3, 4}))
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Data[0] != 6 || outs[0].Data[1] != 8 {
		t.Errorf("add+flatten = %v", outs[0].Data)
	}
	if !outs[0].Shape.Equal(shape(1, 1, 2)) {
		t.Errorf("flatten shape = %v", outs[0].Shape)
	}
}

func TestExecInputValidation(t *testing.T) {
	g, _, _, _ := chain(t)
	if _, err := (&Executor{}).Run(g, tensor.New(shape(4, 4, 3))); err == nil {
		t.Error("wrong input shape accepted")
	}
}

func TestExecShapeOnlyConvFails(t *testing.T) {
	g := NewGraph()
	in := g.AddInput("input", shape(4, 4, 1))
	c := g.Add("c", &Conv2D{KH: 1, KW: 1, SH: 1, SW: 1, KI: 1, KO: 1}, in)
	g.MarkOutput(c)
	if _, err := (&Executor{}).Run(g, tensor.New(shape(4, 4, 1))); err == nil {
		t.Error("shape-only conv executed")
	}
}

func TestExecKeepAll(t *testing.T) {
	g, c1, r, _ := chain(t)
	op := c1.Op.(*Conv2D)
	op.W = NewConvWeights(3, 3, 3, 4)
	c2op := g.ByName("c2").Op.(*Conv2D)
	c2op.W = NewConvWeights(1, 1, 4, 2)
	in := tensor.New(shape(8, 8, 3))
	vals, err := (&Executor{KeepAll: true}).Run(g, in)
	if err != nil {
		t.Fatal(err)
	}
	if vals[r] == nil || vals[c1] == nil {
		t.Error("KeepAll dropped intermediates")
	}
	vals2, err := (&Executor{}).Run(g, in)
	if err != nil {
		t.Fatal(err)
	}
	if vals2[r] != nil {
		t.Error("non-KeepAll retained intermediates")
	}
}
