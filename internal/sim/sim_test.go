package sim

import (
	"testing"

	"clsacim/internal/cim"
	"clsacim/internal/deps"
	"clsacim/internal/frontend"
	"clsacim/internal/im2col"
	"clsacim/internal/mapping"
	"clsacim/internal/models"
	"clsacim/internal/schedule"
	"clsacim/internal/sets"
)

type compiled struct {
	m    *mapping.Mapping
	dg   *deps.Graph
	arch cim.Config
}

func compile(t *testing.T, id models.ID, inputSize, extra, targetSets int) compiled {
	t.Helper()
	g := models.MustBuild(id, models.Options{InputSize: inputSize})
	if _, err := frontend.Canonicalize(g, frontend.Options{}); err != nil {
		t.Fatal(err)
	}
	plan, err := mapping.Analyze(g, im2col.PEDims{Rows: 256, Cols: 256})
	if err != nil {
		t.Fatal(err)
	}
	solver := mapping.SolverNone
	if extra > 0 {
		solver = mapping.SolverDP
	}
	sol, err := mapping.Solve(plan, plan.MinPEs+extra, solver)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.Apply(g, plan, sol, plan.MinPEs+extra)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sets.Determine(g, m, sets.Options{TargetSets: targetSets})
	if err != nil {
		t.Fatal(err)
	}
	dg, err := deps.Build(g, sp)
	if err != nil {
		t.Fatal(err)
	}
	arch := cim.Default()
	arch.NumPEs = plan.MinPEs + extra
	return compiled{m: m, dg: dg, arch: arch}
}

// TestSimMatchesAnalytic is the central cross-validation: the
// discrete-event simulator and the analytic Stage IV recursion must
// produce identical timelines (makespan, every item, every activity
// counter) in both scheduling modes, across models and configurations.
func TestSimMatchesAnalytic(t *testing.T) {
	cases := []struct {
		id         models.ID
		size       int
		extra      int
		targetSets int
	}{
		{models.TinyBranchNet, 16, 0, 4},
		{models.TinyConvNet, 32, 0, sets.FineGranularity},
		{models.TinyYOLOv4, 416, 0, 26},
		{models.TinyYOLOv4, 416, 32, 104},
		{models.TinyYOLOv3, 416, 16, 52},
		{models.ResNet50, 64, 8, 26},
		{models.TinyMLP, 8, 0, 4},
	}
	for _, c := range cases {
		cp := compile(t, c.id, c.size, c.extra, c.targetSets)
		policies := []schedule.Policy{
			schedule.LayerByLayer, schedule.CrossLayer,
			schedule.Windowed(1), schedule.Windowed(2), schedule.Windowed(3), schedule.Windowed(5),
		}
		for _, p := range policies {
			want, err := schedule.Schedule(cp.dg, p, schedule.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(cp.arch, cp.dg, cp.m, p, nil)
			if err != nil {
				t.Fatalf("%s %v: %v", c.id, p, err)
			}
			if got.Makespan != want.Makespan {
				t.Errorf("%s x=%d %v: sim makespan %d != analytic %d",
					c.id, c.extra, p, got.Makespan, want.Makespan)
			}
			if !got.Timeline.Equal(want) {
				for i := range want.Items {
					if got.Items[i] != want.Items[i] {
						t.Fatalf("%s %v: item %d: sim %+v != analytic %+v",
							c.id, p, i, got.Items[i], want.Items[i])
					}
				}
				t.Fatalf("%s %v: timelines differ outside items", c.id, p)
			}
		}
	}
}

// TestSimWithEdgeCost cross-validates under a nonzero NoC/GPEU edge
// cost.
func TestSimWithEdgeCost(t *testing.T) {
	cp := compile(t, models.TinyYOLOv4, 128, 16, 26)
	edge := func(pred deps.SetRef, toLayer int) int64 {
		return int64(pred.Vol%7) + int64(toLayer%3)
	}
	want, err := schedule.Schedule(cp.dg, schedule.CrossLayer, schedule.Options{EdgeCost: edge})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(cp.arch, cp.dg, cp.m, schedule.CrossLayer, edge)
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != want.Makespan {
		t.Errorf("edge-cost sim makespan %d != analytic %d", got.Makespan, want.Makespan)
	}
}

// TestPEActivityConsistency: per-PE busy cycles distribute the group
// activity over exactly the replica's PEs, and the Eq. 2 utilization
// from PEActive matches the metrics-layer computation.
func TestPEActivityConsistency(t *testing.T) {
	cp := compile(t, models.TinyYOLOv4, 416, 32, 52)
	res, err := Run(cp.arch, cp.dg, cp.m, schedule.CrossLayer, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, a := range res.PEActive {
		sum += a
	}
	var want int64
	for li, g := range cp.m.Groups {
		want += int64(g.PEsPerReplica()) * res.LayerActive[li]
	}
	if sum != want {
		t.Errorf("PE activity %d != group activity %d", sum, want)
	}
	// Every PE of a replica sees identical activity.
	for li, g := range cp.m.Groups {
		for r := 0; r < g.Dup; r++ {
			pes := g.ReplicaPEs(r)
			for _, pe := range pes[1:] {
				if res.PEActive[pe] != res.PEActive[pes[0]] {
					t.Fatalf("layer %d replica %d: uneven PE activity", li, r)
				}
			}
			if res.PEActive[pes[0]] != res.ReplicaActive[li][r] {
				t.Fatalf("layer %d replica %d: PE activity %d != replica activity %d",
					li, r, res.PEActive[pes[0]], res.ReplicaActive[li][r])
			}
		}
	}
	// Unallocated PEs are idle.
	for pe := cp.m.PEsUsed; pe < cp.arch.NumPEs; pe++ {
		if res.PEActive[pe] != 0 {
			t.Errorf("unallocated PE %d has activity %d", pe, res.PEActive[pe])
		}
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Errorf("utilization %v out of range", res.Utilization)
	}
}

// TestBufferAccounting: peak live data is positive, bounded by the total
// intermediate volume, and at least the largest single set.
func TestBufferAccounting(t *testing.T) {
	cp := compile(t, models.TinyYOLOv4, 128, 0, 26)
	res, err := Run(cp.arch, cp.dg, cp.m, schedule.CrossLayer, nil)
	if err != nil {
		t.Fatal(err)
	}
	var total, largest int64
	for _, ls := range cp.dg.Plan.Layers {
		for _, s := range ls.Sets {
			v := int64(s.Box.Volume())
			total += v
			if v > largest {
				largest = v
			}
		}
	}
	if res.PeakLiveElems < largest {
		t.Errorf("peak %d < largest set %d", res.PeakLiveElems, largest)
	}
	if res.PeakLiveElems > total {
		t.Errorf("peak %d > total volume %d", res.PeakLiveElems, total)
	}
	// Layer-by-layer generally buffers more than cross-layer does not
	// hold universally, but both must stay within bounds.
	lbl, err := Run(cp.arch, cp.dg, cp.m, schedule.LayerByLayer, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lbl.PeakLiveElems <= 0 || lbl.PeakLiveElems > total {
		t.Errorf("lbl peak %d out of bounds", lbl.PeakLiveElems)
	}
}

func TestRunValidation(t *testing.T) {
	cp := compile(t, models.TinyBranchNet, 16, 0, 4)
	bad := cp.arch
	bad.NumPEs = 0
	if _, err := Run(bad, cp.dg, cp.m, schedule.CrossLayer, nil); err == nil {
		t.Error("invalid arch accepted")
	}
	if _, err := Run(cp.arch, cp.dg, cp.m, nil, nil); err == nil {
		t.Error("nil policy accepted")
	}
	// Mismatched mapping.
	other := compile(t, models.TinyConvNet, 16, 0, 4)
	if _, err := Run(cp.arch, cp.dg, other.m, schedule.CrossLayer, nil); err == nil {
		t.Error("mismatched mapping accepted")
	}
}
