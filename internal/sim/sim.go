// Package sim is a discrete-event system-level simulator for tiled CIM
// architectures executing CLSA-CIM workloads — the "custom system-level
// simulator" of paper §V. It executes the set-level workload on explicit
// replica PE-group resources with an event queue, independently of the
// analytic scheduler in package schedule; tests assert that both produce
// identical timelines, which cross-validates the Stage IV recursion.
//
// The simulator consumes the same CSR dependency arrays as the
// scheduler and returns the same schedule.Timeline, so the two engines
// differ only in mechanism (event queue vs list scheduling), never in
// data model. Every schedule.Policy is supported: the policy's
// admission window is simulated as a gate that opens a layer only once
// every layer Window positions back has completed.
//
// Beyond timing, the simulator accounts per-PE active cycles (the inputs
// to paper Eq. 2) and tracks the live intermediate-data footprint (a
// proxy for the tile buffer / DRAM traffic requirements of §II-A).
//
// The per-replica dispatch state mirrors the CSR's layout discipline:
// the immutable Stage III dispatch plan (schedule.Dispatch) numbers
// replicas globally and flattens their set orders into offset-indexed
// arrays, and the event queue is an inlined min-heap over a plain
// []event — no per-layer slice-of-slices and no interface boxing on the
// hot path. The same Dispatch plan drives the streamed multi-inference
// engine in internal/stream.
package sim

import (
	"fmt"

	"clsacim/internal/check"
	"clsacim/internal/cim"
	"clsacim/internal/deps"
	"clsacim/internal/mapping"
	"clsacim/internal/schedule"
)

// Result is the outcome of one simulation: the executed Timeline (the
// same representation the analytic scheduler returns) plus the
// simulator's extra accounting.
type Result struct {
	*schedule.Timeline
	// PEActive[p] is the number of cycles PE p spent computing MVMs.
	PEActive []int64
	// PeakLiveElems is the maximum number of OFM elements simultaneously
	// alive (produced but not yet consumed by every dependent set) — the
	// aggregate buffer pressure on the architecture.
	PeakLiveElems int64
	// Utilization is paper Eq. 2 computed from PEActive.
	Utilization float64
}

// event is a set completion.
type event struct {
	time int64
	id   int32 // flat CSR set id
	seq  int64 // tie-break for determinism
}

// eventQueue is a binary min-heap over (time, seq), inlined instead of
// container/heap: Push/Pop through the heap.Interface box every event
// into an interface value (one allocation per scheduled set), which
// dominated the simulator's allocation profile.
type eventQueue []event

func eventLess(a, b event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (q *eventQueue) push(e event) {
	*q = append(*q, e)
	h := *q
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !eventLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	*q = h[:n]
	for i := 0; ; {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && eventLess(h[r], h[c]) {
			c = r
		}
		if !eventLess(h[c], h[i]) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	return top
}

// Options configures a simulation run.
type Options struct {
	// Edge is the optional dependency-edge cost (NoC hops, GPEU
	// processing); nil means the paper's idealized zero-cost movement.
	Edge schedule.EdgeCostFn
	// Debug runs the engine-independent invariant checker
	// (check.Timeline) on the simulated timeline before it is returned:
	// dependency order, crossbar exclusivity, window admission,
	// conservation, and makespan consistency. A violation means a
	// simulator bug and is returned as the run's error.
	Debug bool
}

// Run simulates the workload dg on architecture arch with mapping m
// under scheduling policy p. edge is the optional dependency-edge cost
// (NoC hops, GPEU processing); nil means idealized.
func Run(arch cim.Config, dg *deps.Graph, m *mapping.Mapping, p schedule.Policy, edge schedule.EdgeCostFn) (*Result, error) {
	return RunOpt(arch, dg, m, p, Options{Edge: edge})
}

// RunOpt is Run with full Options (edge cost plus debug validation).
func RunOpt(arch cim.Config, dg *deps.Graph, m *mapping.Mapping, p schedule.Policy, opt Options) (*Result, error) {
	if err := arch.Validate(); err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("sim: nil policy")
	}
	if dg == nil || dg.CSR == nil {
		return nil, fmt.Errorf("sim: dependency graph has no CSR (build it with deps.Build)")
	}
	if len(dg.Plan.Layers) != len(m.Groups) {
		return nil, fmt.Errorf("sim: plan has %d layers, mapping %d groups", len(dg.Plan.Layers), len(m.Groups))
	}
	st := newState(arch, dg, m, p, opt.Edge)
	res, err := st.run()
	if err != nil {
		return nil, err
	}
	if opt.Debug {
		if err := check.Timeline(m, dg, p, res.Timeline, check.Options{EdgeCost: opt.Edge}); err != nil {
			return nil, fmt.Errorf("sim: debug validation: %w", err)
		}
	}
	return res, nil
}

type simState struct {
	res  *Result
	arch cim.Config
	dg   *deps.Graph
	csr  *deps.CSR
	m    *mapping.Mapping
	p    schedule.Policy
	edge schedule.EdgeCostFn

	depsLeft []int32 // unmet dependency count per flat set
	readyAt  []int64 // max dependency completion (+edge cost) per flat set
	consLeft []int32 // outstanding consumer count per flat set (buffer accounting)

	// disp is the immutable Stage III dispatch plan (which sets each
	// global replica executes, in order); pos[g] of replica g's sets are
	// complete, busy[g] marks it executing.
	disp *schedule.Dispatch
	pos  []int32
	busy []bool

	// Admission window: layer li may start only once every layer up to
	// li-K is complete. gateOpen marks admitted layers; frontier is the
	// first incomplete layer (all layers below it are done).
	window    int
	gateOpen  []bool
	setsLeft  []int32
	layerDone []bool
	frontier  int

	queue eventQueue
	seq   int64

	liveElems int64
}

func newState(arch cim.Config, dg *deps.Graph, m *mapping.Mapping, p schedule.Policy, edge schedule.EdgeCostFn) *simState {
	csr := dg.CSR
	nl := len(dg.Plan.Layers)
	ns := csr.NumSets()
	totalReps := 0
	for li := range dg.Plan.Layers {
		totalReps += dg.Plan.Layers[li].Group.Dup
	}
	st := &simState{
		arch: arch, dg: dg, csr: csr, m: m, p: p, edge: edge,
		depsLeft:  make([]int32, ns),
		readyAt:   make([]int64, ns),
		consLeft:  make([]int32, ns),
		disp:      schedule.NewDispatch(dg, p),
		pos:       make([]int32, totalReps),
		busy:      make([]bool, totalReps),
		window:    p.Window(),
		gateOpen:  make([]bool, nl),
		setsLeft:  make([]int32, nl),
		layerDone: make([]bool, nl),
		queue:     make(eventQueue, 0, totalReps),
		res: &Result{
			Timeline: schedule.NewTimeline(dg, p),
			PEActive: make([]int64, arch.NumPEs),
		},
	}
	for li, ls := range dg.Plan.Layers {
		st.setsLeft[li] = int32(len(ls.Sets))
	}
	for i := 0; i < ns; i++ {
		st.depsLeft[i] = csr.PredOff[i+1] - csr.PredOff[i]
		st.consLeft[i] = csr.SuccOff[i+1] - csr.SuccOff[i]
	}
	return st
}

func (st *simState) run() (*Result, error) {
	// Open the initial window and handle (degenerate) empty layers.
	st.openGates(0)
	var now int64
	for len(st.queue) > 0 {
		e := st.queue.pop()
		now = e.time
		st.complete(e)
	}
	return st.finish(now)
}

// openGates admits every layer the current frontier allows (layers
// below frontier+window) and tries to start their replicas at time now.
// Layers with no sets complete immediately, which may advance the
// frontier further.
func (st *simState) openGates(now int64) {
	nl := len(st.gateOpen)
	for {
		limit := nl
		if st.window < nl-st.frontier {
			limit = st.frontier + st.window
		}
		progressed := false
		for li := 0; li < limit; li++ {
			if st.gateOpen[li] {
				continue
			}
			st.gateOpen[li] = true
			if st.setsLeft[li] == 0 {
				st.layerDone[li] = true
				progressed = true
				continue
			}
			for rep := 0; rep < st.disp.Replicas(li); rep++ {
				st.tryStart(li, rep, now)
			}
		}
		for st.frontier < nl && st.layerDone[st.frontier] {
			st.frontier++
			progressed = true
		}
		if !progressed {
			return
		}
	}
}

// chargePEs books busy cycles on the PEs of one replica.
func (st *simState) chargePEs(li, rep int, cycles int64) {
	g := st.m.Groups[li]
	for _, pe := range g.ReplicaPEs(rep) {
		st.res.PEActive[pe] += cycles
	}
	st.res.LayerActive[li] += cycles
	st.res.ReplicaActive[li][rep] += cycles
}

// tryStart launches the head set of (layer, replica) if the layer is
// admitted, the replica is idle, and the set's dependencies are met.
// now is the current sim time.
func (st *simState) tryStart(li, rep int, now int64) {
	g := st.disp.RepOff[li] + int32(rep)
	if !st.gateOpen[li] || st.busy[g] {
		return
	}
	next := st.disp.OrderOff[g] + st.pos[g]
	if next >= st.disp.OrderOff[g+1] {
		return
	}
	si := st.disp.Order[next]
	id := st.csr.ID(li, int(si))
	if st.depsLeft[id] > 0 {
		return
	}
	start := st.readyAt[id]
	if now > start {
		start = now
	}
	end := start + st.csr.Cycles[id]
	st.busy[g] = true
	st.res.Items[id] = schedule.Item{Layer: li, Set: int(si), Replica: rep, Start: start, End: end}
	st.seq++
	st.queue.push(event{time: end, id: id, seq: st.seq})
}

// complete processes a set-completion event: it frees the replica,
// releases consumers, advances the admission window, and starts newly
// runnable work.
func (st *simState) complete(e event) {
	li, si := st.csr.Set(e.id)
	ls := st.dg.Plan.Layers[li]
	rep := st.p.Replica(si, ls.Group.Dup)
	g := st.disp.RepOff[li] + int32(rep)
	st.chargePEs(li, rep, st.csr.Cycles[e.id])
	st.busy[g] = false
	st.pos[g]++

	// Buffer accounting: the produced elements stay live until every
	// consumer set has executed.
	vol := int64(ls.Sets[si].Box.Volume())
	st.liveElems += vol
	if st.liveElems > st.res.PeakLiveElems {
		st.res.PeakLiveElems = st.liveElems
	}
	if st.consLeft[e.id] == 0 {
		// No consumers (network output or unread layer): retire
		// immediately to DRAM.
		st.liveElems -= vol
	}

	for x := st.csr.SuccOff[e.id]; x < st.csr.SuccOff[e.id+1]; x++ {
		cid := st.csr.Succ[x]
		cl, cs := st.csr.Set(cid)
		cost := int64(0)
		if st.edge != nil {
			cost = st.edge(deps.SetRef{Layer: li, Set: si, Vol: int(st.csr.SuccVol[x])}, cl)
		}
		if t := e.time + cost; t > st.readyAt[cid] {
			st.readyAt[cid] = t
		}
		st.depsLeft[cid]--
		st.tryStart(cl, st.p.Replica(cs, st.dg.Plan.Layers[cl].Group.Dup), e.time)
	}
	st.retireInputsOf(e.id)

	st.setsLeft[li]--
	if st.setsLeft[li] == 0 {
		st.layerDone[li] = true
		if li == st.frontier {
			st.openGates(e.time)
		}
	}
	// The replica may have further runnable sets.
	st.tryStart(li, rep, e.time)
}

// retireInputsOf releases the buffer claims this set held on its
// producers.
func (st *simState) retireInputsOf(id int32) {
	for e := st.csr.PredOff[id]; e < st.csr.PredOff[id+1]; e++ {
		pid := st.csr.Pred[e]
		st.consLeft[pid]--
		if st.consLeft[pid] == 0 {
			pl, ps := st.csr.Set(pid)
			st.liveElems -= int64(st.dg.Plan.Layers[pl].Sets[ps].Box.Volume())
		}
	}
}

func (st *simState) finish(makespan int64) (*Result, error) {
	st.res.Makespan = makespan
	for id := range st.res.Items {
		// An executed set has End > Start >= 0; unexecuted items remain
		// at the zero value with End == 0 despite a positive duration.
		if st.res.Items[id].End == 0 && st.csr.Cycles[id] > 0 {
			li, si := st.csr.Set(int32(id))
			return nil, fmt.Errorf("sim: set L%d/S%d never executed (deadlock)", li, si)
		}
	}
	if makespan > 0 && st.arch.NumPEs > 0 {
		var sum int64
		for _, a := range st.res.PEActive {
			sum += a
		}
		st.res.Utilization = float64(sum) / (float64(st.arch.NumPEs) * float64(makespan))
	}
	return st.res, nil
}
