// Package sim is a discrete-event system-level simulator for tiled CIM
// architectures executing CLSA-CIM workloads — the "custom system-level
// simulator" of paper §V. It executes the set-level workload on explicit
// replica PE-group resources with an event queue, independently of the
// analytic scheduler in package schedule; tests assert that both produce
// identical timelines, which cross-validates the Stage IV recursion.
//
// Beyond timing, the simulator accounts per-PE active cycles (the inputs
// to paper Eq. 2) and tracks the live intermediate-data footprint (a
// proxy for the tile buffer / DRAM traffic requirements of §II-A).
package sim

import (
	"container/heap"
	"fmt"

	"clsacim/internal/cim"
	"clsacim/internal/deps"
	"clsacim/internal/mapping"
	"clsacim/internal/schedule"
)

// Result is the outcome of one simulation.
type Result struct {
	MakespanCycles int64
	// PEActive[p] is the number of cycles PE p spent computing MVMs.
	PEActive []int64
	// LayerActive[l] sums busy cycles over layer l's replicas.
	LayerActive []int64
	// ReplicaActive[l][r] is replica r's busy time.
	ReplicaActive [][]int64
	// Items[l][s] is the executed timeline, same layout as a Schedule.
	Items [][]schedule.Item
	// PeakLiveElems is the maximum number of OFM elements simultaneously
	// alive (produced but not yet consumed by every dependent set) — the
	// aggregate buffer pressure on the architecture.
	PeakLiveElems int64
	// Utilization is paper Eq. 2 computed from PEActive.
	Utilization float64
}

// event is a set completion.
type event struct {
	time       int64
	layer, set int
	seq        int64 // tie-break for determinism
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Run simulates the workload dg on architecture arch with mapping m in
// the given scheduling mode. edge is the optional dependency-edge cost
// (NoC hops, GPEU processing); nil means idealized.
func Run(arch cim.Config, dg *deps.Graph, m *mapping.Mapping, mode schedule.Mode, edge schedule.EdgeCostFn) (*Result, error) {
	if err := arch.Validate(); err != nil {
		return nil, err
	}
	if len(dg.Plan.Layers) != len(m.Groups) {
		return nil, fmt.Errorf("sim: plan has %d layers, mapping %d groups", len(dg.Plan.Layers), len(m.Groups))
	}
	switch mode {
	case schedule.CrossLayer:
		return runCrossLayer(arch, dg, m, edge)
	case schedule.LayerByLayer:
		return runLayerByLayer(arch, dg, m)
	default:
		return nil, fmt.Errorf("sim: unknown mode %d", mode)
	}
}

type simState struct {
	res  *Result
	arch cim.Config
	dg   *deps.Graph
	m    *mapping.Mapping
	edge schedule.EdgeCostFn

	depsLeft  [][]int           // unmet dependency count per set
	readyAt   [][]int64         // max dependency completion (+edge cost) per set
	consumers [][][]deps.SetRef // reverse edges: consumers[l][s]
	consLeft  [][]int           // outstanding consumer count per set (buffer accounting)

	// Per replica: ordered set indices and progress.
	replicaSets [][][]int // [layer][replica][]setIdx
	replicaPos  [][]int
	replicaBusy [][]bool

	queue eventQueue
	seq   int64

	liveElems int64
}

func newState(arch cim.Config, dg *deps.Graph, m *mapping.Mapping, edge schedule.EdgeCostFn) *simState {
	nl := len(dg.Plan.Layers)
	st := &simState{
		arch: arch, dg: dg, m: m, edge: edge,
		depsLeft:    make([][]int, nl),
		readyAt:     make([][]int64, nl),
		consumers:   make([][][]deps.SetRef, nl),
		consLeft:    make([][]int, nl),
		replicaSets: make([][][]int, nl),
		replicaPos:  make([][]int, nl),
		replicaBusy: make([][]bool, nl),
		res: &Result{
			PEActive:      make([]int64, arch.NumPEs),
			LayerActive:   make([]int64, nl),
			ReplicaActive: make([][]int64, nl),
			Items:         make([][]schedule.Item, nl),
		},
	}
	for li, ls := range dg.Plan.Layers {
		ns := len(ls.Sets)
		st.depsLeft[li] = make([]int, ns)
		st.readyAt[li] = make([]int64, ns)
		st.consumers[li] = make([][]deps.SetRef, ns)
		st.consLeft[li] = make([]int, ns)
		st.res.Items[li] = make([]schedule.Item, ns)
		d := ls.Group.Dup
		st.replicaSets[li] = make([][]int, d)
		st.replicaPos[li] = make([]int, d)
		st.replicaBusy[li] = make([]bool, d)
		st.res.ReplicaActive[li] = make([]int64, d)
		for si := range ls.Sets {
			st.replicaSets[li][si%d] = append(st.replicaSets[li][si%d], si)
		}
	}
	// Reverse dependency edges.
	for li := range dg.Deps {
		for si, refs := range dg.Deps[li] {
			st.depsLeft[li][si] = len(refs)
			for _, r := range refs {
				st.consumers[r.Layer][r.Set] = append(st.consumers[r.Layer][r.Set],
					deps.SetRef{Layer: li, Set: si, Vol: r.Vol})
				st.consLeft[r.Layer][r.Set]++
			}
		}
	}
	return st
}

// chargePEs books busy cycles on the PEs of one replica.
func (st *simState) chargePEs(li, rep int, cycles int64) {
	g := st.m.Groups[li]
	for _, pe := range g.ReplicaPEs(rep) {
		st.res.PEActive[pe] += cycles
	}
	st.res.LayerActive[li] += cycles
	st.res.ReplicaActive[li][rep] += cycles
}

// tryStart launches the head set of (layer, replica) if the replica is
// idle and the set's dependencies are met. now is the current sim time.
func (st *simState) tryStart(li, rep int, now int64) {
	if st.replicaBusy[li][rep] {
		return
	}
	pos := st.replicaPos[li][rep]
	order := st.replicaSets[li][rep]
	if pos >= len(order) {
		return
	}
	si := order[pos]
	if st.depsLeft[li][si] > 0 {
		return
	}
	start := st.readyAt[li][si]
	if now > start {
		start = now
	}
	set := st.dg.Plan.Layers[li].Sets[si]
	end := start + set.Cycles
	st.replicaBusy[li][rep] = true
	st.res.Items[li][si] = schedule.Item{Layer: li, Set: si, Replica: rep, Start: start, End: end}
	st.seq++
	heap.Push(&st.queue, event{time: end, layer: li, set: si, seq: st.seq})
}

// complete processes a set-completion event and returns newly runnable
// work.
func (st *simState) complete(e event, releaseConsumers bool) {
	li, si := e.layer, e.set
	ls := st.dg.Plan.Layers[li]
	set := ls.Sets[si]
	rep := si % ls.Group.Dup
	st.chargePEs(li, rep, set.Cycles)
	st.replicaBusy[li][rep] = false
	st.replicaPos[li][rep]++

	// Buffer accounting: the produced elements stay live until every
	// consumer set has executed.
	st.liveElems += int64(set.Box.Volume())
	if st.liveElems > st.res.PeakLiveElems {
		st.res.PeakLiveElems = st.liveElems
	}
	if st.consLeft[li][si] == 0 {
		// No consumers (network output or unread layer): retire
		// immediately to DRAM.
		st.liveElems -= int64(set.Box.Volume())
	}

	if releaseConsumers {
		for _, c := range st.consumers[li][si] {
			cost := int64(0)
			if st.edge != nil {
				cost = st.edge(deps.SetRef{Layer: li, Set: si, Vol: c.Vol}, c.Layer)
			}
			if t := e.time + cost; t > st.readyAt[c.Layer][c.Set] {
				st.readyAt[c.Layer][c.Set] = t
			}
			st.depsLeft[c.Layer][c.Set]--
			d := st.dg.Plan.Layers[c.Layer].Group.Dup
			st.tryStart(c.Layer, c.Set%d, e.time)
		}
	}
	st.retireInputsOf(li, si)
	// The replica may have further runnable sets.
	st.tryStart(li, rep, e.time)
}

// retireInputsOf releases the buffer claims this set held on its
// producers.
func (st *simState) retireInputsOf(li, si int) {
	for _, r := range st.dg.Deps[li][si] {
		st.consLeft[r.Layer][r.Set]--
		if st.consLeft[r.Layer][r.Set] == 0 {
			st.liveElems -= int64(st.dg.Plan.Layers[r.Layer].Sets[r.Set].Box.Volume())
		}
	}
}

func runCrossLayer(arch cim.Config, dg *deps.Graph, m *mapping.Mapping, edge schedule.EdgeCostFn) (*Result, error) {
	st := newState(arch, dg, m, edge)
	heap.Init(&st.queue)
	// Seed: every replica whose head set has no dependencies.
	for li, ls := range dg.Plan.Layers {
		for rep := 0; rep < ls.Group.Dup; rep++ {
			st.tryStart(li, rep, 0)
		}
	}
	var now int64
	for st.queue.Len() > 0 {
		e := heap.Pop(&st.queue).(event)
		now = e.time
		st.complete(e, true)
	}
	return st.finish(dg, now)
}

func runLayerByLayer(arch cim.Config, dg *deps.Graph, m *mapping.Mapping) (*Result, error) {
	st := newState(arch, dg, m, nil)
	var now int64
	// Execute layers one at a time in plan (topological) order; within a
	// layer the replicas run their raster shares concurrently.
	for li, ls := range dg.Plan.Layers {
		// Force readiness: the previous layers have fully completed.
		for si := range ls.Sets {
			st.depsLeft[li][si] = 0
			st.readyAt[li][si] = now
		}
		st.queue = st.queue[:0]
		heap.Init(&st.queue)
		for rep := 0; rep < ls.Group.Dup; rep++ {
			st.tryStart(li, rep, now)
		}
		layerEnd := now
		for st.queue.Len() > 0 {
			e := heap.Pop(&st.queue).(event)
			if e.time > layerEnd {
				layerEnd = e.time
			}
			st.complete(e, false)
		}
		now = layerEnd
	}
	return st.finish(dg, now)
}

func (st *simState) finish(dg *deps.Graph, makespan int64) (*Result, error) {
	st.res.MakespanCycles = makespan
	for li := range dg.Deps {
		for si := range dg.Deps[li] {
			// An executed set has End > Start >= 0; unexecuted items
			// remain at the zero value with End == 0 despite a positive
			// duration.
			if st.res.Items[li][si].End == 0 && dg.Plan.Layers[li].Sets[si].Cycles > 0 {
				return nil, fmt.Errorf("sim: set L%d/S%d never executed (deadlock)", li, si)
			}
		}
	}
	if makespan > 0 && st.arch.NumPEs > 0 {
		var sum int64
		for _, a := range st.res.PEActive {
			sum += a
		}
		st.res.Utilization = float64(sum) / (float64(st.arch.NumPEs) * float64(makespan))
	}
	return st.res, nil
}
