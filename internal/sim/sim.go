// Package sim is a discrete-event system-level simulator for tiled CIM
// architectures executing CLSA-CIM workloads — the "custom system-level
// simulator" of paper §V. It executes the set-level workload on explicit
// replica PE-group resources with an event queue, independently of the
// analytic scheduler in package schedule; tests assert that both produce
// identical timelines, which cross-validates the Stage IV recursion.
//
// The simulator consumes the same CSR dependency arrays as the
// scheduler and returns the same schedule.Timeline, so the two engines
// differ only in mechanism (event queue vs list scheduling), never in
// data model. Every schedule.Policy is supported: the policy's
// admission window is simulated as a gate that opens a layer only once
// every layer Window positions back has completed.
//
// Beyond timing, the simulator accounts per-PE active cycles (the inputs
// to paper Eq. 2) and tracks the live intermediate-data footprint (a
// proxy for the tile buffer / DRAM traffic requirements of §II-A).
//
// The event loop is built for re-simulation: a State holds every
// scratch array plus a bucketed calendar queue (internal/eventq) and is
// reset, not reallocated, across runs — re-evaluating one compilation
// under another scheduling mode touches no per-set allocations beyond
// the returned Timeline. The immutable Stage III dispatch plan
// (schedule.Dispatch) can be supplied through Options and shared across
// modes and engines (internal/stream uses the same plan), and RunCoarse
// skips per-set Timeline materialization entirely for callers that only
// need makespan/utilization — the cost-model path of mapping-space
// search. The previous binary-heap loop survives as the reference
// implementation in reference_test.go, with a differential test pinning
// byte-identical timelines.
package sim

import (
	"fmt"

	"clsacim/internal/check"
	"clsacim/internal/cim"
	"clsacim/internal/deps"
	"clsacim/internal/eventq"
	"clsacim/internal/mapping"
	"clsacim/internal/schedule"
)

// Result is the outcome of one simulation: the executed Timeline (the
// same representation the analytic scheduler returns) plus the
// simulator's extra accounting.
type Result struct {
	*schedule.Timeline
	// PEActive[p] is the number of cycles PE p spent computing MVMs.
	PEActive []int64
	// PeakLiveElems is the maximum number of OFM elements simultaneously
	// alive (produced but not yet consumed by every dependent set) — the
	// aggregate buffer pressure on the architecture.
	PeakLiveElems int64
	// Utilization is paper Eq. 2 computed from PEActive.
	Utilization float64
}

// Coarse is the outcome of a coarse run: the scalar metrics without the
// per-set timeline. It is returned by value, so a warm State yields it
// without allocating.
type Coarse struct {
	Makespan      int64
	Utilization   float64
	PeakLiveElems int64
}

// Options configures a simulation run.
type Options struct {
	// Edge is the optional dependency-edge cost (NoC hops, GPEU
	// processing); nil means the paper's idealized zero-cost movement.
	Edge schedule.EdgeCostFn
	// Dispatch optionally supplies a precomputed Stage III dispatch plan
	// for (dg, p). It must have been built by schedule.NewDispatch for
	// the same dependency graph and a policy with the same Replica rule
	// (all built-in policies share the raster rule, so one plan serves
	// every mode). Nil builds a fresh plan for the run.
	Dispatch *schedule.Dispatch
	// Debug runs the engine-independent invariant checker
	// (check.Timeline) on the simulated timeline before it is returned:
	// dependency order, crossbar exclusivity, window admission,
	// conservation, and makespan consistency. A violation means a
	// simulator bug and is returned as the run's error.
	Debug bool
}

// Run simulates the workload dg on architecture arch with mapping m
// under scheduling policy p. edge is the optional dependency-edge cost
// (NoC hops, GPEU processing); nil means idealized.
func Run(arch cim.Config, dg *deps.Graph, m *mapping.Mapping, p schedule.Policy, edge schedule.EdgeCostFn) (*Result, error) {
	return RunOpt(arch, dg, m, p, Options{Edge: edge})
}

// RunOpt is Run with full Options (edge cost plus debug validation). It
// allocates a fresh State per call; callers simulating one compilation
// repeatedly should hold a State and call State.Run.
func RunOpt(arch cim.Config, dg *deps.Graph, m *mapping.Mapping, p schedule.Policy, opt Options) (*Result, error) {
	return NewState().Run(arch, dg, m, p, opt)
}

// State holds the simulator's reusable scratch: per-set counters,
// per-replica cursors, window state, the calendar event queue, and the
// per-workload caches (set volumes, maximum set duration). A State is
// reset — not reallocated — across runs, so re-simulating one
// compilation under different modes allocates only the returned
// Timeline (and nothing at all on the coarse path). A State is not safe
// for concurrent use; engines pool them.
type State struct {
	// Per-workload cache, keyed by dependency-graph identity: the OFM
	// volume of every flat set (buffer accounting) and the longest set
	// duration (the calendar queue's increment bound).
	volsFor   *deps.Graph
	vols      []int64
	maxCycles int64

	depsLeft []int32 // unmet dependency count per flat set
	readyAt  []int64 // max dependency completion (+edge cost) per flat set
	consLeft []int32 // outstanding consumer count per flat set (buffer accounting)
	pos      []int32 // completed-set cursor per global replica group
	busy     []bool  // per global replica group
	repAct   []int64 // busy cycles per global replica group

	// Admission window: layer li may start only once every layer up to
	// li-K is complete. gateOpen marks admitted layers; frontier is the
	// first incomplete layer (all layers below it are done).
	gateOpen  []bool
	setsLeft  []int32
	layerDone []bool

	queue eventq.Queue[int32]

	// Per-run fields.
	arch      cim.Config
	dg        *deps.Graph
	csr       *deps.CSR
	m         *mapping.Mapping
	p         schedule.Policy
	edge      schedule.EdgeCostFn
	disp      *schedule.Dispatch
	items     []schedule.Item // nil on the coarse path
	window    int
	frontier  int
	seq       int64
	done      int // completed sets
	liveElems int64
	peakLive  int64
}

// NewState returns an empty State ready for its first run.
func NewState() *State { return &State{} }

// Run simulates the workload and returns the full Result (timeline,
// per-PE activity, buffer pressure). The State's scratch is reused; the
// returned Result owns fresh memory and survives later runs.
func (st *State) Run(arch cim.Config, dg *deps.Graph, m *mapping.Mapping, p schedule.Policy, opt Options) (*Result, error) {
	if err := st.prepare(arch, dg, m, p, opt); err != nil {
		return nil, err
	}
	res := &Result{
		Timeline: schedule.NewTimeline(dg, p),
		PEActive: make([]int64, arch.NumPEs),
	}
	st.items = res.Items
	makespan, err := st.loop()
	if err != nil {
		return nil, err
	}
	res.Makespan = makespan
	// Distribute the per-group activity: every PE of a replica is active
	// exactly while the replica executes, so per-PE accounting is a
	// fan-out of repAct at finish time instead of a loop per event.
	var sum int64
	for li, g := range m.Groups {
		c := int64(g.PEsPerReplica())
		var layer int64
		row := res.ReplicaActive[li]
		base := st.disp.RepOff[li]
		for r := range row {
			a := st.repAct[base+int32(r)]
			row[r] = a
			layer += a
			for _, pe := range g.ReplicaPEs(r) {
				res.PEActive[pe] = a
			}
		}
		res.LayerActive[li] = layer
		sum += c * layer
	}
	if makespan > 0 && arch.NumPEs > 0 {
		res.Utilization = float64(sum) / (float64(arch.NumPEs) * float64(makespan))
	}
	res.PeakLiveElems = st.peakLive
	if opt.Debug {
		if err := check.Timeline(m, dg, p, res.Timeline, check.Options{EdgeCost: opt.Edge}); err != nil {
			return nil, fmt.Errorf("sim: debug validation: %w", err)
		}
	}
	return res, nil
}

// RunCoarse simulates the workload without materializing per-set
// timeline items: only the makespan, the Eq. 2 utilization, and the
// buffer peak are computed. On a warm State this path performs no
// allocations — the fast cost model for mapping-space search and
// sweeps that do not render timelines. Options.Debug is rejected: the
// invariant checker needs the full timeline.
func (st *State) RunCoarse(arch cim.Config, dg *deps.Graph, m *mapping.Mapping, p schedule.Policy, opt Options) (Coarse, error) {
	if opt.Debug {
		return Coarse{}, fmt.Errorf("sim: coarse run cannot validate (no timeline); use Run")
	}
	if err := st.prepare(arch, dg, m, p, opt); err != nil {
		return Coarse{}, err
	}
	st.items = nil
	makespan, err := st.loop()
	if err != nil {
		return Coarse{}, err
	}
	var sum int64
	for li, g := range m.Groups {
		c := int64(g.PEsPerReplica())
		for gg := st.disp.RepOff[li]; gg < st.disp.RepOff[li+1]; gg++ {
			sum += c * st.repAct[gg]
		}
	}
	out := Coarse{Makespan: makespan, PeakLiveElems: st.peakLive}
	if makespan > 0 && arch.NumPEs > 0 {
		out.Utilization = float64(sum) / (float64(arch.NumPEs) * float64(makespan))
	}
	return out, nil
}

// prepare validates the inputs and resets the scratch for one run.
func (st *State) prepare(arch cim.Config, dg *deps.Graph, m *mapping.Mapping, p schedule.Policy, opt Options) error {
	if err := arch.Validate(); err != nil {
		return err
	}
	if p == nil {
		return fmt.Errorf("sim: nil policy")
	}
	if dg == nil || dg.CSR == nil {
		return fmt.Errorf("sim: dependency graph has no CSR (build it with deps.Build)")
	}
	if len(dg.Plan.Layers) != len(m.Groups) {
		return fmt.Errorf("sim: plan has %d layers, mapping %d groups", len(dg.Plan.Layers), len(m.Groups))
	}
	csr := dg.CSR
	nl := len(dg.Plan.Layers)
	ns := csr.NumSets()
	st.arch, st.dg, st.csr, st.m, st.p, st.edge = arch, dg, csr, m, p, opt.Edge
	st.disp = opt.Dispatch
	if st.disp == nil {
		st.disp = schedule.NewDispatch(dg, p)
	}
	if st.volsFor != dg {
		st.vols = grow(st.vols, ns)
		for li, ls := range dg.Plan.Layers {
			off := csr.LayerOff[li]
			for si := range ls.Sets {
				st.vols[off+int32(si)] = int64(ls.Sets[si].Box.Volume())
			}
		}
		st.maxCycles = 1
		for _, c := range csr.Cycles {
			if c > st.maxCycles {
				st.maxCycles = c
			}
		}
		st.volsFor = dg
	}
	totalReps := st.disp.NumReplicas()
	st.depsLeft = grow(st.depsLeft, ns)
	st.readyAt = grow(st.readyAt, ns)
	st.consLeft = grow(st.consLeft, ns)
	st.pos = grow(st.pos, totalReps)
	st.busy = grow(st.busy, totalReps)
	st.repAct = grow(st.repAct, totalReps)
	st.gateOpen = grow(st.gateOpen, nl)
	st.setsLeft = grow(st.setsLeft, nl)
	st.layerDone = grow(st.layerDone, nl)
	clear(st.readyAt)
	clear(st.pos)
	clear(st.busy)
	clear(st.repAct)
	clear(st.gateOpen)
	clear(st.layerDone)
	for li := range dg.Plan.Layers {
		st.setsLeft[li] = int32(len(dg.Plan.Layers[li].Sets))
	}
	for i := 0; i < ns; i++ {
		st.depsLeft[i] = csr.PredOff[i+1] - csr.PredOff[i]
		st.consLeft[i] = csr.SuccOff[i+1] - csr.SuccOff[i]
	}
	st.queue.Init(st.maxCycles, totalReps)
	st.window = p.Window()
	st.frontier = 0
	st.seq = 0
	st.done = 0
	st.liveElems = 0
	st.peakLive = 0
	return nil
}

// grow returns s resized to n, reusing its backing array when large
// enough (contents are unspecified; callers overwrite or clear).
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// loop runs the event loop to completion and returns the makespan.
func (st *State) loop() (int64, error) {
	// Open the initial window and handle (degenerate) empty layers.
	st.openGates(0)
	var now int64
	for {
		e, ok := st.queue.Pop()
		if !ok {
			break
		}
		now = e.Time
		st.complete(e.P, now)
	}
	if st.done != st.csr.NumSets() {
		return 0, st.deadlockErr()
	}
	return now, nil
}

// deadlockErr names the first set that never executed.
func (st *State) deadlockErr() error {
	for g := 0; g < st.disp.NumReplicas(); g++ {
		next := st.disp.OrderOff[g] + st.pos[g]
		if next < st.disp.OrderOff[g+1] {
			si := st.disp.Order[next]
			li := 0
			for int(st.disp.RepOff[li+1]) <= g {
				li++
			}
			return fmt.Errorf("sim: set L%d/S%d never executed (deadlock)", li, si)
		}
	}
	return fmt.Errorf("sim: %d of %d sets never executed (deadlock)", st.csr.NumSets()-st.done, st.csr.NumSets())
}

// openGates admits every layer the current frontier allows (layers
// below frontier+window) and tries to start their replicas at time now.
// Layers with no sets complete immediately, which may advance the
// frontier further.
func (st *State) openGates(now int64) {
	nl := len(st.gateOpen)
	for {
		limit := nl
		if st.window < nl-st.frontier {
			limit = st.frontier + st.window
		}
		progressed := false
		for li := 0; li < limit; li++ {
			if st.gateOpen[li] {
				continue
			}
			st.gateOpen[li] = true
			if st.setsLeft[li] == 0 {
				st.layerDone[li] = true
				progressed = true
				continue
			}
			for g := st.disp.RepOff[li]; g < st.disp.RepOff[li+1]; g++ {
				st.tryStart(li, g, now)
			}
		}
		for st.frontier < nl && st.layerDone[st.frontier] {
			st.frontier++
			progressed = true
		}
		if !progressed {
			return
		}
	}
}

// tryStart launches the head set of global replica group g (of layer
// li) if the layer is admitted, the group is idle, and the set's
// dependencies are met. now is the current sim time.
func (st *State) tryStart(li int, g int32, now int64) {
	if !st.gateOpen[li] || st.busy[g] {
		return
	}
	next := st.disp.OrderOff[g] + st.pos[g]
	if next >= st.disp.OrderOff[g+1] {
		return
	}
	si := st.disp.Order[next]
	id := st.csr.LayerOff[li] + si
	if st.depsLeft[id] > 0 {
		return
	}
	start := st.readyAt[id]
	if now > start {
		start = now
	}
	end := start + st.csr.Cycles[id]
	st.busy[g] = true
	if st.items != nil {
		st.items[id] = schedule.Item{Layer: li, Set: int(si), Replica: int(g - st.disp.RepOff[li]), Start: start, End: end}
	}
	st.seq++
	st.queue.Push(end, st.seq, id)
}

// complete processes a set-completion event: it frees the replica,
// releases consumers, advances the admission window, and starts newly
// runnable work.
func (st *State) complete(id int32, now int64) {
	csr := st.csr
	li := int(csr.SetLayer[id])
	g := st.disp.RepOf[id]
	st.repAct[g] += csr.Cycles[id]
	st.busy[g] = false
	st.pos[g]++

	// Buffer accounting: the produced elements stay live until every
	// consumer set has executed.
	vol := st.vols[id]
	st.liveElems += vol
	if st.liveElems > st.peakLive {
		st.peakLive = st.liveElems
	}
	if st.consLeft[id] == 0 {
		// No consumers (network output or unread layer): retire
		// immediately to DRAM.
		st.liveElems -= vol
	}

	for x := csr.SuccOff[id]; x < csr.SuccOff[id+1]; x++ {
		cid := csr.Succ[x]
		cl := int(csr.SetLayer[cid])
		t := now
		if st.edge != nil {
			t += st.edge(deps.SetRef{Layer: li, Set: int(id - csr.LayerOff[li]), Vol: int(csr.SuccVol[x])}, cl)
		}
		if t > st.readyAt[cid] {
			st.readyAt[cid] = t
		}
		st.depsLeft[cid]--
		st.tryStart(cl, st.disp.RepOf[cid], now)
	}
	st.retireInputsOf(id)

	st.setsLeft[li]--
	if st.setsLeft[li] == 0 {
		st.layerDone[li] = true
		if li == st.frontier {
			st.openGates(now)
		}
	}
	st.done++
	// The replica may have further runnable sets.
	st.tryStart(li, g, now)
}

// retireInputsOf releases the buffer claims this set held on its
// producers.
func (st *State) retireInputsOf(id int32) {
	for e := st.csr.PredOff[id]; e < st.csr.PredOff[id+1]; e++ {
		pid := st.csr.Pred[e]
		st.consLeft[pid]--
		if st.consLeft[pid] == 0 {
			st.liveElems -= st.vols[pid]
		}
	}
}
