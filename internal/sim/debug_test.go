package sim

import (
	"testing"

	"clsacim/internal/deps"
	"clsacim/internal/models"
	"clsacim/internal/schedule"
)

// TestRunOptDebug: with Options.Debug the simulator runs the
// engine-independent invariant checker (internal/check) on its own
// timeline; legal workloads pass unchanged.
func TestRunOptDebug(t *testing.T) {
	c := compile(t, models.TinyBranchNet, 0, 4, 9)
	for _, p := range []schedule.Policy{schedule.LayerByLayer, schedule.Windowed(2), schedule.CrossLayer} {
		plain, err := Run(c.arch, c.dg, c.m, p, nil)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		debug, err := RunOpt(c.arch, c.dg, c.m, p, Options{Debug: true})
		if err != nil {
			t.Fatalf("%s: debug validation rejected the simulator's own timeline: %v", p.Name(), err)
		}
		if !plain.Timeline.Equal(debug.Timeline) {
			t.Fatalf("%s: Debug changed the timeline", p.Name())
		}
	}
}

// TestRunOptDebugEdgeCost: debug validation replays the run's own edge
// cost, so charged data movement still passes.
func TestRunOptDebugEdgeCost(t *testing.T) {
	c := compile(t, models.TinyBranchNet, 0, 0, 9)
	cost := func(pred deps.SetRef, toLayer int) int64 { return 2 }
	if _, err := RunOpt(c.arch, c.dg, c.m, schedule.CrossLayer, Options{Edge: cost, Debug: true}); err != nil {
		t.Fatal(err)
	}
}
