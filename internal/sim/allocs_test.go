package sim

import (
	"testing"

	"clsacim/internal/models"
	"clsacim/internal/schedule"
	"clsacim/internal/sets"
)

// TestRunAllocs pins the steady-state allocation profile of the
// simulator. A full Run must allocate only the Result it returns (the
// Timeline's arrays are the caller's to keep); with the scratch State
// and a prebuilt Dispatch everything else is reused, so the budget is
// small and independent of workload size. The coarse path returns
// scalars by value and must not allocate at all once the scratch is
// warm.
func TestRunAllocs(t *testing.T) {
	cp := compile(t, models.TinyYOLOv4, 128, 0, sets.FineGranularity)
	disp := schedule.NewDispatch(cp.dg, schedule.CrossLayer)
	st := NewState()
	opt := Options{Dispatch: disp}

	// Warm the scratch (first run sizes every array).
	if _, err := st.Run(cp.arch, cp.dg, cp.m, schedule.CrossLayer, opt); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := st.Run(cp.arch, cp.dg, cp.m, schedule.CrossLayer, opt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 21 {
		t.Errorf("warm State.Run allocates %v objects per run, want <= 21", allocs)
	}

	if _, err := st.RunCoarse(cp.arch, cp.dg, cp.m, schedule.CrossLayer, opt); err != nil {
		t.Fatal(err)
	}
	coarse := testing.AllocsPerRun(10, func() {
		if _, err := st.RunCoarse(cp.arch, cp.dg, cp.m, schedule.CrossLayer, opt); err != nil {
			t.Fatal(err)
		}
	})
	if coarse != 0 {
		t.Errorf("warm State.RunCoarse allocates %v objects per run, want 0", coarse)
	}
}
