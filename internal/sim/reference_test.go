package sim

// This file keeps the previous production simulator — a binary-heap
// event loop that recomputes its dispatch plan and books PE activity
// per event — as a test-only reference implementation. The calendar
// queue in sim.go reorders nothing (it preserves the exact (time, seq)
// total order the heap produced) and the deferred per-replica activity
// accounting fans out to the same per-PE totals, so both engines must
// produce byte-identical results. TestSimMatchesReference checks that
// on randomized workloads; if the fast path ever diverges, this oracle
// pinpoints the first differing item.

import (
	"fmt"
	"testing"

	"clsacim/internal/cim"
	"clsacim/internal/deps"
	"clsacim/internal/frontend"
	"clsacim/internal/im2col"
	"clsacim/internal/mapping"
	"clsacim/internal/models"
	"clsacim/internal/nn"
	"clsacim/internal/schedule"
	"clsacim/internal/sets"
)

// refEvent is a set completion in the reference simulator.
type refEvent struct {
	time int64
	id   int32 // flat CSR set id
	seq  int64 // tie-break for determinism
}

// refQueue is the old inlined binary min-heap over (time, seq).
type refQueue []refEvent

func refLess(a, b refEvent) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (q *refQueue) push(e refEvent) {
	*q = append(*q, e)
	h := *q
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !refLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *refQueue) pop() refEvent {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	*q = h[:n]
	for i := 0; ; {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && refLess(h[r], h[c]) {
			c = r
		}
		if !refLess(h[c], h[i]) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	return top
}

type refState struct {
	res  *Result
	arch cim.Config
	dg   *deps.Graph
	csr  *deps.CSR
	m    *mapping.Mapping
	p    schedule.Policy
	edge schedule.EdgeCostFn

	depsLeft []int32
	readyAt  []int64
	consLeft []int32

	disp *schedule.Dispatch
	pos  []int32
	busy []bool

	window    int
	gateOpen  []bool
	setsLeft  []int32
	layerDone []bool
	frontier  int

	queue refQueue
	seq   int64

	liveElems int64
}

// referenceRun simulates the workload with the heap-based engine. It
// is the old sim.Run, verbatim up to renames.
func referenceRun(arch cim.Config, dg *deps.Graph, m *mapping.Mapping, p schedule.Policy, edge schedule.EdgeCostFn) (*Result, error) {
	if err := arch.Validate(); err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("sim: nil policy")
	}
	if dg == nil || dg.CSR == nil {
		return nil, fmt.Errorf("sim: dependency graph has no CSR (build it with deps.Build)")
	}
	if len(dg.Plan.Layers) != len(m.Groups) {
		return nil, fmt.Errorf("sim: plan has %d layers, mapping %d groups", len(dg.Plan.Layers), len(m.Groups))
	}
	st := newRefState(arch, dg, m, p, edge)
	return st.run()
}

func newRefState(arch cim.Config, dg *deps.Graph, m *mapping.Mapping, p schedule.Policy, edge schedule.EdgeCostFn) *refState {
	csr := dg.CSR
	nl := len(dg.Plan.Layers)
	ns := csr.NumSets()
	totalReps := 0
	for li := range dg.Plan.Layers {
		totalReps += dg.Plan.Layers[li].Group.Dup
	}
	st := &refState{
		arch: arch, dg: dg, csr: csr, m: m, p: p, edge: edge,
		depsLeft:  make([]int32, ns),
		readyAt:   make([]int64, ns),
		consLeft:  make([]int32, ns),
		disp:      schedule.NewDispatch(dg, p),
		pos:       make([]int32, totalReps),
		busy:      make([]bool, totalReps),
		window:    p.Window(),
		gateOpen:  make([]bool, nl),
		setsLeft:  make([]int32, nl),
		layerDone: make([]bool, nl),
		queue:     make(refQueue, 0, totalReps),
		res: &Result{
			Timeline: schedule.NewTimeline(dg, p),
			PEActive: make([]int64, arch.NumPEs),
		},
	}
	for li, ls := range dg.Plan.Layers {
		st.setsLeft[li] = int32(len(ls.Sets))
	}
	for i := 0; i < ns; i++ {
		st.depsLeft[i] = csr.PredOff[i+1] - csr.PredOff[i]
		st.consLeft[i] = csr.SuccOff[i+1] - csr.SuccOff[i]
	}
	return st
}

func (st *refState) run() (*Result, error) {
	st.openGates(0)
	var now int64
	for len(st.queue) > 0 {
		e := st.queue.pop()
		now = e.time
		st.complete(e)
	}
	return st.finish(now)
}

func (st *refState) openGates(now int64) {
	nl := len(st.gateOpen)
	for {
		limit := nl
		if st.window < nl-st.frontier {
			limit = st.frontier + st.window
		}
		progressed := false
		for li := 0; li < limit; li++ {
			if st.gateOpen[li] {
				continue
			}
			st.gateOpen[li] = true
			if st.setsLeft[li] == 0 {
				st.layerDone[li] = true
				progressed = true
				continue
			}
			for rep := 0; rep < st.disp.Replicas(li); rep++ {
				st.tryStart(li, rep, now)
			}
		}
		for st.frontier < nl && st.layerDone[st.frontier] {
			st.frontier++
			progressed = true
		}
		if !progressed {
			return
		}
	}
}

func (st *refState) chargePEs(li, rep int, cycles int64) {
	g := st.m.Groups[li]
	for _, pe := range g.ReplicaPEs(rep) {
		st.res.PEActive[pe] += cycles
	}
	st.res.LayerActive[li] += cycles
	st.res.ReplicaActive[li][rep] += cycles
}

func (st *refState) tryStart(li, rep int, now int64) {
	g := st.disp.RepOff[li] + int32(rep)
	if !st.gateOpen[li] || st.busy[g] {
		return
	}
	next := st.disp.OrderOff[g] + st.pos[g]
	if next >= st.disp.OrderOff[g+1] {
		return
	}
	si := st.disp.Order[next]
	id := st.csr.ID(li, int(si))
	if st.depsLeft[id] > 0 {
		return
	}
	start := st.readyAt[id]
	if now > start {
		start = now
	}
	end := start + st.csr.Cycles[id]
	st.busy[g] = true
	st.res.Items[id] = schedule.Item{Layer: li, Set: int(si), Replica: rep, Start: start, End: end}
	st.seq++
	st.queue.push(refEvent{time: end, id: id, seq: st.seq})
}

func (st *refState) complete(e refEvent) {
	li, si := st.csr.Set(e.id)
	ls := st.dg.Plan.Layers[li]
	rep := st.p.Replica(si, ls.Group.Dup)
	g := st.disp.RepOff[li] + int32(rep)
	st.chargePEs(li, rep, st.csr.Cycles[e.id])
	st.busy[g] = false
	st.pos[g]++

	vol := int64(ls.Sets[si].Box.Volume())
	st.liveElems += vol
	if st.liveElems > st.res.PeakLiveElems {
		st.res.PeakLiveElems = st.liveElems
	}
	if st.consLeft[e.id] == 0 {
		st.liveElems -= vol
	}

	for x := st.csr.SuccOff[e.id]; x < st.csr.SuccOff[e.id+1]; x++ {
		cid := st.csr.Succ[x]
		cl, cs := st.csr.Set(cid)
		cost := int64(0)
		if st.edge != nil {
			cost = st.edge(deps.SetRef{Layer: li, Set: si, Vol: int(st.csr.SuccVol[x])}, cl)
		}
		if t := e.time + cost; t > st.readyAt[cid] {
			st.readyAt[cid] = t
		}
		st.depsLeft[cid]--
		st.tryStart(cl, st.p.Replica(cs, st.dg.Plan.Layers[cl].Group.Dup), e.time)
	}
	st.retireInputsOf(e.id)

	st.setsLeft[li]--
	if st.setsLeft[li] == 0 {
		st.layerDone[li] = true
		if li == st.frontier {
			st.openGates(e.time)
		}
	}
	st.tryStart(li, rep, e.time)
}

func (st *refState) retireInputsOf(id int32) {
	for e := st.csr.PredOff[id]; e < st.csr.PredOff[id+1]; e++ {
		pid := st.csr.Pred[e]
		st.consLeft[pid]--
		if st.consLeft[pid] == 0 {
			pl, ps := st.csr.Set(pid)
			st.liveElems -= int64(st.dg.Plan.Layers[pl].Sets[ps].Box.Volume())
		}
	}
}

func (st *refState) finish(makespan int64) (*Result, error) {
	st.res.Makespan = makespan
	for id := range st.res.Items {
		if st.res.Items[id].End == 0 && st.csr.Cycles[id] > 0 {
			li, si := st.csr.Set(int32(id))
			return nil, fmt.Errorf("sim: set L%d/S%d never executed (deadlock)", li, si)
		}
	}
	if makespan > 0 && st.arch.NumPEs > 0 {
		var sum int64
		for _, a := range st.res.PEActive {
			sum += a
		}
		st.res.Utilization = float64(sum) / (float64(st.arch.NumPEs) * float64(makespan))
	}
	return st.res, nil
}

// compileGraph runs the Stage I–III pipeline on an already-built nn
// graph (compile in sim_test.go does the same for a registered model).
func compileGraph(t *testing.T, g *nn.Graph, extra, targetSets int) compiled {
	t.Helper()
	if _, err := frontend.Canonicalize(g, frontend.Options{}); err != nil {
		t.Fatal(err)
	}
	plan, err := mapping.Analyze(g, im2col.PEDims{Rows: 256, Cols: 256})
	if err != nil {
		t.Fatal(err)
	}
	solver := mapping.SolverNone
	if extra > 0 {
		solver = mapping.SolverDP
	}
	sol, err := mapping.Solve(plan, plan.MinPEs+extra, solver)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.Apply(g, plan, sol, plan.MinPEs+extra)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sets.Determine(g, m, sets.Options{TargetSets: targetSets})
	if err != nil {
		t.Fatal(err)
	}
	dg, err := deps.Build(g, sp)
	if err != nil {
		t.Fatal(err)
	}
	arch := cim.Default()
	arch.NumPEs = plan.MinPEs + extra
	return compiled{m: m, dg: dg, arch: arch}
}

// TestSimMatchesReference differentially tests the calendar-queue
// simulator against the retired binary-heap engine on randomized CNNs:
// every scheduling mode and set granularity must produce byte-identical
// timelines and identical activity/buffer accounting. Run under -race
// in CI it also exercises the State scratch reuse across workloads.
func TestSimMatchesReference(t *testing.T) {
	policies := []schedule.Policy{
		schedule.LayerByLayer, schedule.Windowed(4), schedule.CrossLayer,
	}
	edge := func(pred deps.SetRef, toLayer int) int64 {
		return int64(pred.Vol%7) + int64(toLayer-pred.Layer)
	}
	st := NewState() // shared across all cases: scratch reuse must not leak state
	for seed := int64(1); seed <= 6; seed++ {
		extra := 0
		if seed%2 == 0 {
			extra = 3
		}
		for _, targetSets := range []int{4, sets.FineGranularity} {
			// Canonicalize mutates the graph, so rebuild per granularity.
			g, err := models.RandomCNN(models.RandomOptions{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			cp := compileGraph(t, g, extra, targetSets)
			for _, p := range policies {
				for _, ec := range []schedule.EdgeCostFn{nil, edge} {
					name := fmt.Sprintf("seed=%d sets=%d %v edge=%v", seed, targetSets, p, ec != nil)
					want, err := referenceRun(cp.arch, cp.dg, cp.m, p, ec)
					if err != nil {
						t.Fatalf("%s: reference: %v", name, err)
					}
					got, err := st.Run(cp.arch, cp.dg, cp.m, p, Options{Edge: ec, Debug: true})
					if err != nil {
						t.Fatalf("%s: calendar: %v", name, err)
					}
					if !got.Timeline.Equal(want.Timeline) {
						for i := range want.Items {
							if got.Items[i] != want.Items[i] {
								t.Fatalf("%s: item %d: calendar %+v != reference %+v",
									name, i, got.Items[i], want.Items[i])
							}
						}
						t.Fatalf("%s: timelines differ outside items (makespan %d vs %d)",
							name, got.Makespan, want.Makespan)
					}
					if len(got.PEActive) != len(want.PEActive) {
						t.Fatalf("%s: PEActive length %d != %d", name, len(got.PEActive), len(want.PEActive))
					}
					for pe := range want.PEActive {
						if got.PEActive[pe] != want.PEActive[pe] {
							t.Fatalf("%s: PEActive[%d] = %d, reference %d",
								name, pe, got.PEActive[pe], want.PEActive[pe])
						}
					}
					if got.PeakLiveElems != want.PeakLiveElems {
						t.Errorf("%s: peak live %d, reference %d", name, got.PeakLiveElems, want.PeakLiveElems)
					}
					if got.Utilization != want.Utilization {
						t.Errorf("%s: utilization %v, reference %v", name, got.Utilization, want.Utilization)
					}

					// The coarse path must agree with the full run's scalars.
					if ec == nil {
						co, err := st.RunCoarse(cp.arch, cp.dg, cp.m, p, Options{})
						if err != nil {
							t.Fatalf("%s: coarse: %v", name, err)
						}
						if co.Makespan != want.Makespan || co.Utilization != want.Utilization ||
							co.PeakLiveElems != want.PeakLiveElems {
							t.Errorf("%s: coarse %+v, reference makespan=%d util=%v peak=%d",
								name, co, want.Makespan, want.Utilization, want.PeakLiveElems)
						}
					}
				}
			}
		}
	}
}
