package sets

import (
	"math/rand"
	"testing"
	"testing/quick"

	"clsacim/internal/frontend"
	"clsacim/internal/im2col"
	"clsacim/internal/mapping"
	"clsacim/internal/models"
	"clsacim/internal/nn"
	"clsacim/internal/region"
)

func mapped(t *testing.T, id models.ID, inputSize, extra int) (*nn.Graph, *mapping.Mapping) {
	t.Helper()
	g := models.MustBuild(id, models.Options{InputSize: inputSize})
	if _, err := frontend.Canonicalize(g, frontend.Options{}); err != nil {
		t.Fatal(err)
	}
	plan, err := mapping.Analyze(g, im2col.PEDims{Rows: 256, Cols: 256})
	if err != nil {
		t.Fatal(err)
	}
	solver := mapping.SolverNone
	if extra > 0 {
		solver = mapping.SolverDP
	}
	sol, err := mapping.Solve(plan, plan.MinPEs+extra, solver)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.Apply(g, plan, sol, plan.MinPEs+extra)
	if err != nil {
		t.Fatal(err)
	}
	return g, m
}

// TestPartitionExactness: sets of every layer tile the OFM exactly at
// several granularities.
func TestPartitionExactness(t *testing.T) {
	g, m := mapped(t, models.TinyYOLOv4, 128, 16)
	for _, target := range []int{1, 4, 26, 1000, FineGranularity} {
		plan, err := Determine(g, m, Options{TargetSets: target})
		if err != nil {
			t.Fatal(err)
		}
		for _, ls := range plan.Layers {
			out := ls.Group.Node.OutShape
			full := region.Full(out.H, out.W, out.C)
			boxes := make([]region.Box, len(ls.Sets))
			var cycles int64
			for i, s := range ls.Sets {
				boxes[i] = s.Box
				cycles += s.Cycles
				if s.Layer != plan.ByNode[ls.Group.Node] || s.Index != i {
					t.Fatalf("set bookkeeping wrong: %+v", s)
				}
				if s.Cycles != int64(s.Box.Pixels()) {
					t.Fatalf("set cycles %d != pixels %d", s.Cycles, s.Box.Pixels())
				}
			}
			if !region.CoversExactly(full, boxes) {
				t.Fatalf("layer %v target %d: sets do not tile OFM", ls.Group.Node, target)
			}
			if cycles != int64(out.Pixels()) {
				t.Fatalf("layer %v: total cycles %d != OFM pixels %d", ls.Group.Node, cycles, out.Pixels())
			}
		}
	}
}

// TestAlignmentRespectsPooling: layers feeding 2x2 pooling must have
// even internal boundaries.
func TestAlignmentRespectsPooling(t *testing.T) {
	g, m := mapped(t, models.TinyYOLOv3, 128, 0)
	plan, err := Determine(g, m, Options{TargetSets: 9})
	if err != nil {
		t.Fatal(err)
	}
	// conv2d feeds a 2x2/2 max pool: align 2.
	found := false
	for _, ls := range plan.Layers {
		if ls.Group.Node.Name != "conv2d" {
			continue
		}
		found = true
		if ls.AlignH != 2 {
			t.Errorf("conv2d alignH = %d, want 2", ls.AlignH)
		}
		for _, s := range ls.Sets {
			if s.Box.H1 != ls.Group.Node.OutShape.H && s.Box.H1%2 != 0 {
				t.Errorf("boundary %d not aligned", s.Box.H1)
			}
		}
	}
	if !found {
		t.Fatal("conv2d not in plan")
	}
	// The head conv (conv2d_9) feeds the output: align 1.
	for _, ls := range plan.Layers {
		if ls.Group.Node.Name == "conv2d_9" && ls.AlignH != 1 {
			t.Errorf("head conv alignH = %d, want 1", ls.AlignH)
		}
	}
}

// TestStrideOnePoolAlignment: TinyYOLOv3's 2x2 stride-1 pool implies
// alignment lcm(1,2)... stride 1 contributes 1, so the producing conv
// keeps its other constraints only.
func TestStrideOnePoolAlignment(t *testing.T) {
	g, m := mapped(t, models.TinyYOLOv3, 416, 0)
	plan, err := Determine(g, m, Options{TargetSets: 13})
	if err != nil {
		t.Fatal(err)
	}
	for _, ls := range plan.Layers {
		if ls.Group.Node.Name == "conv2d_5" {
			// Feeds maxpool 2x2 stride 1 -> align stays 1.
			if ls.AlignH != 1 {
				t.Errorf("conv2d_5 alignH = %d, want 1", ls.AlignH)
			}
		}
	}
}

// TestDupRounding: duplicated layers get a set count that is a multiple
// of the duplication factor (even round-robin) where geometry allows.
func TestDupRounding(t *testing.T) {
	g, m := mapped(t, models.TinyYOLOv4, 416, 32)
	plan, err := Determine(g, m, Options{TargetSets: 26})
	if err != nil {
		t.Fatal(err)
	}
	for _, ls := range plan.Layers {
		d := ls.Group.Dup
		if d <= 1 {
			continue
		}
		if len(ls.Sets)%d != 0 && len(ls.Sets) >= d {
			// Rounding target to a multiple of d can still be clamped by
			// alignment units; only flag clear violations.
			units := (ls.Group.Node.OutShape.H + ls.AlignH - 1) / ls.AlignH
			if len(ls.Sets) < units {
				t.Errorf("layer %v: %d sets not a multiple of dup %d (units %d)",
					ls.Group.Node, len(ls.Sets), d, units)
			}
		}
	}
}

// TestGridIndexMatchesScan: Intersecting must agree with a brute-force
// scan over all set boxes.
func TestGridIndexMatchesScan(t *testing.T) {
	g, m := mapped(t, models.TinyYOLOv4, 128, 16)
	plan, err := Determine(g, m, Options{TargetSets: 37})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	f := func() bool {
		ls := &plan.Layers[r.Intn(len(plan.Layers))]
		out := ls.Group.Node.OutShape
		h0 := r.Intn(out.H + 4)
		w0 := r.Intn(out.W + 4)
		box := region.NewBox(h0-2, h0+r.Intn(8), w0-2, w0+r.Intn(8), 0, out.C)
		got := ls.Intersecting(box, nil)
		want := map[int]bool{}
		for i, s := range ls.Sets {
			if s.Box.Intersects(box) {
				want[i] = true
			}
		}
		// Intersecting may return supersets only if those boxes really
		// intersect — require exact agreement.
		if len(got) != len(want) {
			return false
		}
		for _, i := range got {
			if !want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestFineGranularityIsPerPixel: without pooling constraints the finest
// partition is one set per OFM pixel.
func TestFineGranularityIsPerPixel(t *testing.T) {
	g, m := mapped(t, models.TinyBranchNet, 16, 0)
	plan, err := Determine(g, m, Options{TargetSets: FineGranularity})
	if err != nil {
		t.Fatal(err)
	}
	for _, ls := range plan.Layers {
		out := ls.Group.Node.OutShape
		unitsH := (out.H + ls.AlignH - 1) / ls.AlignH
		unitsW := (out.W + ls.AlignW - 1) / ls.AlignW
		if len(ls.Sets) != unitsH*unitsW {
			t.Errorf("layer %v: %d sets, want %d (finest aligned)",
				ls.Group.Node, len(ls.Sets), unitsH*unitsW)
		}
	}
}

// TestRasterOrder: sets are in raster order (row-major by H0, then W0).
func TestRasterOrder(t *testing.T) {
	g, m := mapped(t, models.TinyYOLOv4, 128, 0)
	plan, err := Determine(g, m, Options{TargetSets: 200})
	if err != nil {
		t.Fatal(err)
	}
	for _, ls := range plan.Layers {
		for i := 1; i < len(ls.Sets); i++ {
			a, b := ls.Sets[i-1].Box, ls.Sets[i].Box
			if b.H0 < a.H0 || (b.H0 == a.H0 && b.W0 <= a.W0 && !(b.W0 > a.W0)) && b.W0 < a.W0 {
				t.Fatalf("layer %v: sets out of raster order at %d", ls.Group.Node, i)
			}
		}
	}
}

func TestTotalCycles(t *testing.T) {
	g, m := mapped(t, models.TinyBranchNet, 16, 0)
	plan, err := Determine(g, m, Options{TargetSets: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, ls := range plan.Layers {
		if got := ls.TotalCycles(); got != int64(ls.Group.Node.OutShape.Pixels()) {
			t.Errorf("TotalCycles = %d", got)
		}
	}
}
