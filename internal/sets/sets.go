// Package sets implements Stage I of CLSA-CIM (paper §IV-1): every base
// layer's OFM is partitioned into disjoint hyperrectangular sets, the
// minimum scheduling units. All elements of a set are computed before any
// element of the next set of the same OFM.
//
// Sets are 2-D tiles spanning the full channel depth (one MVM produces a
// whole (1x1xOC) pixel vector, so channels are never split). Tiles are
// laid out and executed in raster order — the intra-layer data flow of
// §III-B. Tile boundaries are aligned to the pooling strides of the
// downstream non-base path, keeping sets large enough to emit complete
// pooling windows (the paper's 2x2-pooling minimum-set-size example);
// similar-sized tiles keep per-set execution times even. Increasing the
// set count gives finer scheduling granularity and deeper cross-layer
// overlap at the cost of more scheduling state, exactly the trade-off
// the paper describes.
package sets

import (
	"fmt"
	"sort"

	"clsacim/internal/mapping"
	"clsacim/internal/nn"
	"clsacim/internal/region"
)

// DefaultTargetSets is the default Stage I granularity: the scheduler
// aims for this many sets per base layer (clamped by alignment and OFM
// geometry). The paper's evaluation reports the maximum achievable
// utilization / minimum latency, which corresponds to fine granularity;
// use FineGranularity (or a large TargetSets) to reproduce it.
const DefaultTargetSets = 26

// FineGranularity as TargetSets requests the finest alignment-respecting
// partition (alignH x alignW tiles).
const FineGranularity = 1 << 30

// Set is one minimum scheduling unit.
type Set struct {
	// Layer indexes the owning group in Plan.Layers.
	Layer int
	// Index is the intra-layer raster position (Stage III order).
	Index int
	// Box is the tile in the layer's OFM coordinates.
	Box region.Box
	// Cycles is the execution time: one cycle per OFM pixel.
	Cycles int64
}

// LayerSets holds the Stage I result for one mapped base layer. Sets
// form a GH x GW grid in raster order; RowBounds and ColBounds hold the
// grid boundaries (len GH+1 and GW+1) for O(log n) intersection queries.
type LayerSets struct {
	Group  *mapping.Group
	Sets   []Set
	AlignH int
	AlignW int
	GH, GW int
	// RowBounds[i] is the first OFM row of grid row i; RowBounds[GH] is
	// the OFM height. ColBounds likewise for columns.
	RowBounds []int
	ColBounds []int
}

// Intersecting appends to dst the indices of sets whose boxes intersect
// b, using the grid bounds (O(log + hits) instead of scanning all sets).
func (ls *LayerSets) Intersecting(b region.Box, dst []int) []int {
	r0, r1 := boundRange(ls.RowBounds, b.H0, b.H1)
	c0, c1 := boundRange(ls.ColBounds, b.W0, b.W1)
	for r := r0; r < r1; r++ {
		for c := c0; c < c1; c++ {
			dst = append(dst, r*ls.GW+c)
		}
	}
	return dst
}

// RowRange returns the grid-row index range [r0, r1) of rows whose OFM
// interval intersects [lo, hi). Every returned row has positive overlap
// when the query interval is non-empty.
func (ls *LayerSets) RowRange(lo, hi int) (int, int) {
	return boundRange(ls.RowBounds, lo, hi)
}

// ColRange is RowRange for grid columns.
func (ls *LayerSets) ColRange(lo, hi int) (int, int) {
	return boundRange(ls.ColBounds, lo, hi)
}

// boundRange returns the index range [i0, i1) of grid cells whose
// interval [bounds[i], bounds[i+1]) intersects [lo, hi).
func boundRange(bounds []int, lo, hi int) (int, int) {
	n := len(bounds) - 1
	if n <= 0 || hi <= bounds[0] || lo >= bounds[n] {
		return 0, 0
	}
	// i0: last cell starting at or before lo.
	i0 := sort.SearchInts(bounds, lo+1) - 1
	if i0 < 0 {
		i0 = 0
	}
	// i1: first cell starting at or beyond hi.
	i1 := sort.SearchInts(bounds, hi)
	if i1 > n {
		i1 = n
	}
	return i0, i1
}

// Plan is the Stage I output for a whole mapped graph.
type Plan struct {
	Layers []LayerSets
	// ByNode maps a base-layer node to its index in Layers.
	ByNode map[*nn.Node]int
	// TargetSets records the requested granularity.
	TargetSets int
}

// Options configures set determination.
type Options struct {
	// TargetSets is the desired number of sets per layer
	// (DefaultTargetSets if 0; FineGranularity for the finest legal
	// partition). Higher values give finer scheduling granularity.
	TargetSets int
}

// Determine partitions every mapped layer's OFM into sets. The grid is
// cut along OH first (keeping raster-friendly row bands) and along OW
// only when the requested granularity exceeds the row count. For
// duplicated layers the target is rounded up to a multiple of the
// duplication factor so the round-robin distribution over the d_i
// replica PE groups stays even.
func Determine(g *nn.Graph, m *mapping.Mapping, opt Options) (*Plan, error) {
	target := opt.TargetSets
	if target <= 0 {
		target = DefaultTargetSets
	}
	plan := &Plan{
		Layers:     make([]LayerSets, 0, len(m.Groups)),
		ByNode:     make(map[*nn.Node]int, len(m.Groups)),
		TargetSets: target,
	}
	cons := g.Consumers()
	for li, grp := range m.Groups {
		out := grp.Node.OutShape
		alignH, alignW := downstreamAlign(grp.Node, cons)
		alignH = clampAlign(alignH, out.H)
		alignW = clampAlign(alignW, out.W)
		n := target
		if grp.Dup > 1 && n < FineGranularity {
			n = (n + grp.Dup - 1) / grp.Dup * grp.Dup
		}
		unitsH := (out.H + alignH - 1) / alignH
		unitsW := (out.W + alignW - 1) / alignW
		gh := min(n, unitsH)
		gw := 1
		if gh > 0 && gh == unitsH && n > unitsH {
			gw = min((n+gh-1)/gh, unitsW)
		}
		full := region.Full(out.H, out.W, out.C)
		rows := full.SplitH(gh, alignH)
		cols := full.SplitW(gw, alignW)
		ls := LayerSets{Group: grp, AlignH: alignH, AlignW: alignW, GH: len(rows), GW: len(cols)}
		ls.RowBounds = make([]int, 0, len(rows)+1)
		for _, r := range rows {
			ls.RowBounds = append(ls.RowBounds, r.H0)
		}
		ls.RowBounds = append(ls.RowBounds, out.H)
		ls.ColBounds = make([]int, 0, len(cols)+1)
		for _, c := range cols {
			ls.ColBounds = append(ls.ColBounds, c.W0)
		}
		ls.ColBounds = append(ls.ColBounds, out.W)
		ls.Sets = make([]Set, 0, len(rows)*len(cols))
		idx := 0
		for _, r := range rows {
			for _, c := range cols {
				b := region.NewBox(r.H0, r.H1, c.W0, c.W1, 0, out.C)
				ls.Sets = append(ls.Sets, Set{Layer: li, Index: idx, Box: b, Cycles: int64(b.Pixels())})
				idx++
			}
		}
		// The grid construction guarantees pairwise disjointness; volume
		// and containment checks catch boundary bugs in O(n).
		var vol int
		for i := range ls.Sets {
			s := &ls.Sets[i]
			if s.Box.Empty() || !full.ContainsBox(s.Box) {
				return nil, fmt.Errorf("sets: tile %v of %v outside OFM", s.Box, grp.Node)
			}
			vol += s.Box.Volume()
		}
		if vol != full.Volume() {
			return nil, fmt.Errorf("sets: tiles of %v cover %d of %d elements", grp.Node, vol, full.Volume())
		}
		plan.Layers = append(plan.Layers, ls)
		plan.ByNode[grp.Node] = li
	}
	return plan, nil
}

func clampAlign(a, extent int) int {
	if a < 1 {
		return 1
	}
	if a > extent {
		return extent
	}
	return a
}

// downstreamAlign returns the least common multiples of the vertical and
// horizontal pooling strides on the non-base consumer paths of n
// (stopping at base layers). Set boundaries at these multiples emit
// complete pooling windows, satisfying the paper's minimum-set-size
// requirement.
func downstreamAlign(n *nn.Node, cons map[*nn.Node][]*nn.Node) (alignH, alignW int) {
	alignH, alignW = 1, 1
	seen := make(map[*nn.Node]bool)
	var walk func(x *nn.Node)
	walk = func(x *nn.Node) {
		for _, c := range cons[x] {
			if seen[c] || c.IsBase() {
				continue
			}
			seen[c] = true
			switch op := c.Op.(type) {
			case *nn.MaxPool:
				alignH = lcm(alignH, op.SH)
				alignW = lcm(alignW, op.SW)
			case *nn.AvgPool:
				if !op.Global {
					alignH = lcm(alignH, op.SH)
					alignW = lcm(alignW, op.SW)
				}
			}
			walk(c)
		}
	}
	walk(n)
	return alignH, alignW
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	return a / gcd(a, b) * b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TotalCycles returns the serial execution time of one layer's sets
// (its t_i under pure intra-layer scheduling).
func (ls LayerSets) TotalCycles() int64 {
	var t int64
	for _, s := range ls.Sets {
		t += s.Cycles
	}
	return t
}
