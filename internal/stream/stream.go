// Package stream schedules a *stream* of inference requests over one
// simulated CIM fabric — the serving scenario of the ROADMAP north-star,
// where CLSA-CIM's single-inference timeline becomes the unit of work of
// a continuously loaded system. Weights stay resident, so back-to-back
// inferences of one model pipeline through the fabric: while inference
// j's late layers drain, inference j+1's early layers already execute on
// the replica PE groups that have gone idle. Steady-state throughput is
// therefore measured as completed inferences per unit time, not as
// 1/makespan of a single inference.
//
// The engine is a discrete-event simulator in the style of internal/sim,
// generalized across inferences ("jobs") and models:
//
//   - Every job instantiates the shared, immutable Stage III dispatch
//     plan (schedule.Dispatch) of its model and keeps only per-job
//     cursors, dependency counters, and window state.
//   - Each replica PE group is a physical resource serving the jobs of
//     its model strictly FIFO in per-model issue order: a group starts
//     inference j+1's sets only after finishing its share of inference
//     j. This flow-shop discipline keeps per-model completions in issue
//     order (which the admission gate relies on) and is deadlock-free —
//     a blocked group only ever waits on a *busy* resource, and busy
//     resources always complete.
//   - Within a job, the policy's xK admission window applies unchanged;
//     across jobs of one model an admission gate bounds the number in
//     flight (Options.MaxInFlight).
//   - Models co-scheduled on a shared crossbar pool (overlapping PE
//     ranges) conflict wherever their replica groups share a physical
//     PE: a group may not start while a conflicting group is busy.
//
// The oracle for all of this is check.Stream, which revalidates every
// per-job timeline plus the cross-inference invariants from scratch;
// Options.Debug wires it in.
package stream

import (
	"fmt"

	"clsacim/internal/check"
	"clsacim/internal/deps"
	"clsacim/internal/eventq"
	"clsacim/internal/mapping"
	"clsacim/internal/schedule"
)

// ModelSpec is one resident model class: its compiled workload, the
// scheduling policy of every inference of the class, the optional
// dependency-edge cost, and where its mapping's PE indices sit in the
// global fabric. Disjoint pools give each model a private PE range;
// overlapping ranges time-share the shared crossbars.
type ModelSpec struct {
	Name    string
	Graph   *deps.Graph
	Mapping *mapping.Mapping
	Policy  schedule.Policy
	Edge    schedule.EdgeCostFn
	PEBase  int
}

// Workload is one stream scheduling problem.
type Workload struct {
	// FabricPEs is the global fabric size; every model's PE range must
	// fit inside it.
	FabricPEs int
	Models    []ModelSpec
	// Sequence names the model class of each job in issue order.
	Sequence []int
	// Arrivals holds the absolute arrival cycle of each job
	// (non-decreasing, same length as Sequence). Nil selects the
	// closed-loop arrival process instead: Concurrency jobs arrive at
	// cycle 0 and every completion immediately admits the next job.
	Arrivals []int64
	// Concurrency is the closed-loop population (ignored when Arrivals
	// is set).
	Concurrency int
}

// Options configures a stream run.
type Options struct {
	// MaxInFlight is the inter-inference admission gate: inference j of
	// a model (per-model issue order) is admitted only once inference
	// j-MaxInFlight of the same model has fully completed. 0 disables
	// the gate.
	MaxInFlight int
	// Debug revalidates the full stream against check.Stream before
	// returning; a violation means an engine bug and fails the run.
	Debug bool
}

// JobStat is the lifecycle of one job in absolute stream cycles.
type JobStat struct {
	Model   int
	Arrival int64
	Start   int64 // first set execution
	End     int64 // last set completion
}

// QueueSample is one point of the queue-depth trace: Depth jobs were in
// the system (arrived, not yet completed) from Time onward.
type QueueSample struct {
	Time  int64
	Depth int
}

// Result is the outcome of one stream run.
type Result struct {
	// Jobs holds per-job lifecycle stats in issue order.
	Jobs []JobStat
	// Timelines holds each job's executed timeline in absolute stream
	// time (Makespan = the job's own last completion), issue order.
	Timelines []*schedule.Timeline
	// MakespanCycles is the completion time of the whole stream.
	MakespanCycles int64
	// PEActive[p] is the busy cycles of global fabric PE p.
	PEActive []int64
	// Queue is the queue-depth trace, one sample per change.
	Queue []QueueSample
}

// payload is the calendar-queue payload: a job arrival (id < 0) or the
// completion of the job's flat set id. The queue itself (a bucketed
// calendar queue, internal/eventq) orders events by (time, seq) exactly
// as the previous inlined binary heap did — arrivals are enqueued with
// the lowest sequence numbers before any completion, so at equal times
// arrivals still precede completions and keep admission timing
// byte-identical.
type payload struct {
	job int32
	id  int32
}

// jobState is the mutable execution state of one admitted job. The
// large per-set arrays are released at completion; the timeline and the
// per-group cursors (needed by the FIFO pop rule) survive.
type jobState struct {
	model   int
	arrival int64
	start   int64 // earliest item start, -1 until first start
	end     int64

	tl       *schedule.Timeline
	depsLeft []int32 // unmet dependency count per flat set
	readyAt  []int64 // max dependency completion (+edge cost) per flat set
	pos      []int32 // completed-set cursor per model-local replica group

	window    int
	gateOpen  []bool
	setsLeft  []int32
	layerDone []bool
	frontier  int

	remaining int // sets left until the job completes
}

// fifoQueue is a per-group FIFO of admitted job indices.
type fifoQueue struct {
	q    []int32
	head int
}

type engine struct {
	w     Workload
	gate  int
	disp  []*schedule.Dispatch // per model
	csr   []*deps.CSR          // per model
	peOff []int                // grpBase: global group id prefix per model
	// grpLayer[mi][lg] is the layer of model mi's local group lg.
	grpLayer [][]int32
	// conflicts[G] lists the groups of *other* models sharing a
	// physical PE with group G (shared crossbar pools).
	conflicts [][]int32
	busy      []bool
	fifo      []fifoQueue
	// grpAct[G] accumulates the busy cycles of global replica group G
	// across all jobs; the per-PE fan-out happens once at the end of the
	// run instead of once per completion event.
	grpAct []int64

	jobs     []*jobState
	arrived  []bool
	perModel [][]int32 // job indices per model, issue order
	// nextAdmit[mi] indexes perModel[mi]: the first job not yet admitted.
	nextAdmit []int
	// donePerModel[mi] counts completed jobs of model mi (completions
	// are provably in issue order under the FIFO discipline).
	donePerModel []int
	doneTotal    int
	nextArrival  int // closed loop: next job index to spawn

	queue eventq.Queue[payload]
	seq   int64

	res   *Result
	depth int
}

// Run executes the workload and returns the stream result. The run is
// fully deterministic: identical inputs produce identical timelines.
func Run(w Workload, opt Options) (*Result, error) {
	if err := validate(w, opt); err != nil {
		return nil, err
	}
	e := newEngine(w, opt)
	res, err := e.run()
	if err != nil {
		return nil, err
	}
	if opt.Debug {
		ms := make([]check.StreamModel, len(w.Models))
		for mi, s := range w.Models {
			ms[mi] = check.StreamModel{Graph: s.Graph, Mapping: s.Mapping,
				Policy: s.Policy, Edge: s.Edge, PEBase: s.PEBase}
		}
		infs := make([]check.StreamInference, len(res.Jobs))
		for j := range res.Jobs {
			infs[j] = check.StreamInference{Model: res.Jobs[j].Model,
				Arrival: res.Jobs[j].Arrival, Timeline: res.Timelines[j]}
		}
		if err := check.Stream(ms, infs, check.StreamOptions{MaxInFlight: opt.MaxInFlight}); err != nil {
			return nil, fmt.Errorf("stream: debug validation: %w", err)
		}
	}
	return res, nil
}

func validate(w Workload, opt Options) error {
	if w.FabricPEs <= 0 {
		return fmt.Errorf("stream: fabric has %d PEs", w.FabricPEs)
	}
	if len(w.Models) == 0 {
		return fmt.Errorf("stream: no models")
	}
	for mi, s := range w.Models {
		if s.Graph == nil || s.Graph.CSR == nil || s.Mapping == nil || s.Policy == nil {
			return fmt.Errorf("stream: model %d has a nil graph, CSR, mapping, or policy", mi)
		}
		if s.PEBase < 0 || s.PEBase+s.Mapping.F > w.FabricPEs {
			return fmt.Errorf("stream: model %d PE range [%d, %d) outside fabric of %d",
				mi, s.PEBase, s.PEBase+s.Mapping.F, w.FabricPEs)
		}
	}
	if len(w.Sequence) == 0 {
		return fmt.Errorf("stream: empty job sequence")
	}
	for j, mi := range w.Sequence {
		if mi < 0 || mi >= len(w.Models) {
			return fmt.Errorf("stream: job %d names model %d of %d", j, mi, len(w.Models))
		}
	}
	if w.Arrivals != nil {
		if len(w.Arrivals) != len(w.Sequence) {
			return fmt.Errorf("stream: %d arrivals for %d jobs", len(w.Arrivals), len(w.Sequence))
		}
		for j, a := range w.Arrivals {
			if a < 0 {
				return fmt.Errorf("stream: job %d has negative arrival %d", j, a)
			}
			if j > 0 && a < w.Arrivals[j-1] {
				return fmt.Errorf("stream: arrivals not sorted at job %d (%d < %d)", j, a, w.Arrivals[j-1])
			}
		}
	} else if w.Concurrency <= 0 {
		return fmt.Errorf("stream: closed loop needs Concurrency >= 1, have %d", w.Concurrency)
	}
	if opt.MaxInFlight < 0 {
		return fmt.Errorf("stream: negative admission gate %d", opt.MaxInFlight)
	}
	return nil
}

func newEngine(w Workload, opt Options) *engine {
	e := &engine{
		w:            w,
		gate:         opt.MaxInFlight,
		disp:         make([]*schedule.Dispatch, len(w.Models)),
		csr:          make([]*deps.CSR, len(w.Models)),
		peOff:        make([]int, len(w.Models)+1),
		grpLayer:     make([][]int32, len(w.Models)),
		jobs:         make([]*jobState, len(w.Sequence)),
		arrived:      make([]bool, len(w.Sequence)),
		perModel:     make([][]int32, len(w.Models)),
		nextAdmit:    make([]int, len(w.Models)),
		donePerModel: make([]int, len(w.Models)),
		res: &Result{
			Jobs:      make([]JobStat, len(w.Sequence)),
			Timelines: make([]*schedule.Timeline, len(w.Sequence)),
			PEActive:  make([]int64, w.FabricPEs),
		},
	}
	for mi, s := range w.Models {
		e.disp[mi] = schedule.NewDispatch(s.Graph, s.Policy)
		e.csr[mi] = s.Graph.CSR
		e.peOff[mi+1] = e.peOff[mi] + e.disp[mi].NumReplicas()
		gl := make([]int32, e.disp[mi].NumReplicas())
		for li := 0; li < len(s.Graph.Plan.Layers); li++ {
			for g := e.disp[mi].RepOff[li]; g < e.disp[mi].RepOff[li+1]; g++ {
				gl[g] = int32(li)
			}
		}
		e.grpLayer[mi] = gl
	}
	total := e.peOff[len(w.Models)]
	e.busy = make([]bool, total)
	e.fifo = make([]fifoQueue, total)
	e.grpAct = make([]int64, total)
	e.conflicts = buildConflicts(w.Models, e.peOff, total)
	for j, mi := range w.Sequence {
		e.perModel[mi] = append(e.perModel[mi], int32(j))
	}
	span := int64(1)
	for _, csr := range e.csr {
		for _, c := range csr.Cycles {
			if c > span {
				span = c
			}
		}
	}
	e.queue.Init(span, total)
	return e
}

// buildConflicts maps every physical PE to the replica groups mapped
// onto it and records, per group, the distinct other groups it shares a
// PE with. Within one (non-virtualized) model the groups are disjoint,
// so conflicts only arise between models on a shared pool.
func buildConflicts(specs []ModelSpec, peOff []int, total int) [][]int32 {
	owners := map[int][]int32{}
	for mi, s := range specs {
		gid := int32(peOff[mi])
		for _, g := range s.Mapping.Groups {
			for r := 0; r < g.Dup; r++ {
				for _, pe := range g.ReplicaPEs(r) {
					owners[s.PEBase+pe] = append(owners[s.PEBase+pe], gid)
				}
				gid++
			}
		}
	}
	sets := make([]map[int32]bool, total)
	for _, os := range owners {
		if len(os) < 2 {
			continue
		}
		for _, a := range os {
			for _, b := range os {
				if a == b {
					continue
				}
				if sets[a] == nil {
					sets[a] = map[int32]bool{}
				}
				sets[a][b] = true
			}
		}
	}
	conflicts := make([][]int32, total)
	for g, set := range sets {
		for b := range set {
			conflicts[g] = append(conflicts[g], b)
		}
		// Deterministic retry order.
		for i := 1; i < len(conflicts[g]); i++ {
			for k := i; k > 0 && conflicts[g][k] < conflicts[g][k-1]; k-- {
				conflicts[g][k], conflicts[g][k-1] = conflicts[g][k-1], conflicts[g][k]
			}
		}
	}
	return conflicts
}

func (e *engine) run() (*Result, error) {
	var now int64
	if e.w.Arrivals != nil {
		for j, t := range e.w.Arrivals {
			e.seq++
			e.queue.Push(t, e.seq, payload{job: int32(j), id: -1})
		}
	} else {
		n := e.w.Concurrency
		if n > len(e.w.Sequence) {
			n = len(e.w.Sequence)
		}
		for j := 0; j < n; j++ {
			e.arrive(int32(j), 0)
		}
		e.nextArrival = n
		e.admitAll(0)
	}
	for {
		ev, ok := e.queue.Pop()
		if !ok {
			break
		}
		now = ev.Time
		if ev.P.id < 0 {
			e.arrive(ev.P.job, now)
		} else {
			e.complete(ev.P, now)
		}
		e.admitAll(now)
	}
	e.bookPEActivity()
	for j, jb := range e.jobs {
		if jb == nil {
			return nil, fmt.Errorf("stream: job %d (model %d) never admitted (deadlock)", j, e.w.Sequence[j])
		}
		if jb.remaining > 0 {
			return nil, fmt.Errorf("stream: job %d (model %d) incomplete, %d sets pending (deadlock)",
				j, jb.model, jb.remaining)
		}
	}
	e.res.MakespanCycles = now
	return e.res, nil
}

// arrive marks job j in the system at time t and samples the queue.
func (e *engine) arrive(j int32, t int64) {
	e.arrived[j] = true
	e.res.Jobs[j].Arrival = t
	e.depth++
	e.sampleQueue(t)
}

func (e *engine) sampleQueue(t int64) {
	q := e.res.Queue
	if n := len(q); n > 0 && q[n-1].Time == t {
		q[n-1].Depth = e.depth
	} else {
		e.res.Queue = append(q, QueueSample{Time: t, Depth: e.depth})
	}
}

// admitAll admits every job whose arrival has passed and whose model's
// admission gate allows another inference in flight. Admission order is
// per-model issue order.
func (e *engine) admitAll(now int64) {
	for mi := range e.perModel {
		for {
			k := e.nextAdmit[mi]
			if k >= len(e.perModel[mi]) {
				break
			}
			j := e.perModel[mi][k]
			if !e.arrived[j] {
				break
			}
			if e.gate > 0 && k >= e.gate+e.donePerModel[mi] {
				break
			}
			e.nextAdmit[mi]++
			e.admit(j, now)
		}
	}
}

// admit instantiates job j's execution state, enqueues it on every
// replica group of its model, and starts whatever the window allows.
func (e *engine) admit(j int32, now int64) {
	mi := e.w.Sequence[j]
	s := e.w.Models[mi]
	csr := e.csr[mi]
	ns := csr.NumSets()
	nl := len(s.Graph.Plan.Layers)
	jb := &jobState{
		model:     mi,
		arrival:   e.res.Jobs[j].Arrival,
		start:     -1,
		tl:        schedule.NewTimeline(s.Graph, s.Policy),
		depsLeft:  make([]int32, ns),
		readyAt:   make([]int64, ns),
		pos:       make([]int32, e.disp[mi].NumReplicas()),
		window:    s.Policy.Window(),
		gateOpen:  make([]bool, nl),
		setsLeft:  make([]int32, nl),
		layerDone: make([]bool, nl),
		remaining: ns,
	}
	for li := range s.Graph.Plan.Layers {
		jb.setsLeft[li] = int32(len(s.Graph.Plan.Layers[li].Sets))
	}
	for i := 0; i < ns; i++ {
		jb.depsLeft[i] = csr.PredOff[i+1] - csr.PredOff[i]
	}
	e.jobs[j] = jb
	base := e.peOff[mi]
	for g := 0; g < e.disp[mi].NumReplicas(); g++ {
		e.fifo[base+g].q = append(e.fifo[base+g].q, j)
	}
	e.res.Timelines[j] = jb.tl
	e.openGates(j, now)
}

// openGates admits every layer of job j the window allows and tries to
// start their replica groups; empty layers complete immediately and may
// advance the frontier further (mirrors sim.openGates, per job).
func (e *engine) openGates(j int32, now int64) {
	jb := e.jobs[j]
	nl := len(jb.gateOpen)
	base := e.peOff[jb.model]
	d := e.disp[jb.model]
	for {
		limit := nl
		if jb.window < nl-jb.frontier {
			limit = jb.frontier + jb.window
		}
		progressed := false
		for li := 0; li < limit; li++ {
			if jb.gateOpen[li] {
				continue
			}
			jb.gateOpen[li] = true
			if jb.setsLeft[li] == 0 {
				jb.layerDone[li] = true
				progressed = true
				continue
			}
			for g := d.RepOff[li]; g < d.RepOff[li+1]; g++ {
				e.tryStart(base+int(g), now)
			}
		}
		for jb.frontier < nl && jb.layerDone[jb.frontier] {
			jb.frontier++
			progressed = true
		}
		if !progressed {
			return
		}
	}
}

// tryStart launches the head set of global replica group G if the
// group's FIFO head job has an admitted, dependency-ready set and no
// conflicting group is busy. Jobs that have exhausted their share of
// the group are popped on the way.
func (e *engine) tryStart(G int, now int64) {
	if e.busy[G] {
		return
	}
	f := &e.fifo[G]
	for {
		if f.head >= len(f.q) {
			return
		}
		j := f.q[f.head]
		jb := e.jobs[j]
		lg := int32(G - e.peOff[jb.model])
		d := e.disp[jb.model]
		next := d.OrderOff[lg] + jb.pos[lg]
		if next >= d.OrderOff[lg+1] {
			f.head++
			continue // job done with this group; serve the next one
		}
		li := int(e.grpLayer[jb.model][lg])
		if !jb.gateOpen[li] {
			return
		}
		si := int(d.Order[next])
		csr := e.csr[jb.model]
		id := csr.ID(li, si)
		if jb.depsLeft[id] > 0 {
			return
		}
		for _, c := range e.conflicts[G] {
			if e.busy[c] {
				return
			}
		}
		start := now
		if jb.readyAt[id] > start {
			start = jb.readyAt[id]
		}
		end := start + csr.Cycles[id]
		e.busy[G] = true
		rep := int(lg - d.RepOff[li])
		jb.tl.Items[id] = schedule.Item{Layer: li, Set: si, Replica: rep, Start: start, End: end}
		if jb.start < 0 || start < jb.start {
			jb.start = start
		}
		e.seq++
		e.queue.Push(end, e.seq, payload{job: j, id: id})
		return
	}
}

// complete processes one set completion: it books the busy cycles,
// frees the group, releases in-job successors, advances the job's
// window, and — when the job's last set finishes — retires the job,
// releases its admission-gate slot, and (closed loop) spawns the next
// arrival.
func (e *engine) complete(ev payload, now int64) {
	jb := e.jobs[ev.job]
	mi := jb.model
	s := e.w.Models[mi]
	csr := e.csr[mi]
	d := e.disp[mi]
	li := int(csr.SetLayer[ev.id])
	si := int(ev.id - csr.LayerOff[li])
	lg := d.RepOf[ev.id] // O(1) inverse of the policy's Replica rule
	rep := int(lg - d.RepOff[li])
	G := e.peOff[mi] + int(lg)

	cycles := csr.Cycles[ev.id]
	e.grpAct[G] += cycles
	jb.tl.LayerActive[li] += cycles
	jb.tl.ReplicaActive[li][rep] += cycles

	e.busy[G] = false
	jb.pos[lg]++

	for x := csr.SuccOff[ev.id]; x < csr.SuccOff[ev.id+1]; x++ {
		cid := csr.Succ[x]
		cl := int(csr.SetLayer[cid])
		cost := int64(0)
		if s.Edge != nil {
			cost = s.Edge(deps.SetRef{Layer: li, Set: si, Vol: int(csr.SuccVol[x])}, cl)
		}
		if t := now + cost; t > jb.readyAt[cid] {
			jb.readyAt[cid] = t
		}
		jb.depsLeft[cid]--
		e.tryStart(e.peOff[mi]+int(d.RepOf[cid]), now)
	}

	jb.setsLeft[li]--
	if jb.setsLeft[li] == 0 {
		jb.layerDone[li] = true
		if li == jb.frontier {
			e.openGates(ev.job, now)
		}
	}

	jb.remaining--
	if jb.remaining == 0 {
		e.retire(ev.job, now)
	}

	e.tryStart(G, now)
	for _, c := range e.conflicts[G] {
		e.tryStart(int(c), now)
	}
}

// bookPEActivity distributes the accumulated per-group busy cycles onto
// the global fabric PEs once at the end of the run — every PE of a
// replica is active exactly while the replica executes, so the fan-out
// commutes with per-event accumulation.
func (e *engine) bookPEActivity() {
	for mi, s := range e.w.Models {
		d := e.disp[mi]
		base := e.peOff[mi]
		for li := range s.Graph.Plan.Layers {
			for lg := d.RepOff[li]; lg < d.RepOff[li+1]; lg++ {
				a := e.grpAct[base+int(lg)]
				if a == 0 {
					continue
				}
				rep := int(lg - d.RepOff[li])
				for _, pe := range s.Mapping.Groups[li].ReplicaPEs(rep) {
					e.res.PEActive[s.PEBase+pe] += a
				}
			}
		}
	}
}

// retire finalizes a completed job: per-job makespan, lifecycle stats,
// queue sample, admission-gate release, and the closed-loop respawn.
// The large per-set arrays are dropped; the timeline and the per-group
// cursors (still consulted by the FIFO pop rule) are kept.
func (e *engine) retire(j int32, t int64) {
	jb := e.jobs[j]
	jb.end = t
	jb.tl.Makespan = t
	e.res.Jobs[j].Model = jb.model
	e.res.Jobs[j].Start = jb.start
	e.res.Jobs[j].End = t
	e.depth--
	e.sampleQueue(t)
	e.donePerModel[jb.model]++
	e.doneTotal++
	jb.depsLeft, jb.readyAt = nil, nil
	jb.gateOpen, jb.setsLeft, jb.layerDone = nil, nil, nil
	if e.w.Arrivals == nil && e.nextArrival < len(e.w.Sequence) {
		e.arrive(int32(e.nextArrival), t)
		e.nextArrival++
	}
}
