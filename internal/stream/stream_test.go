package stream_test

import (
	"strings"
	"testing"

	"clsacim/internal/deps"
	"clsacim/internal/frontend"
	"clsacim/internal/im2col"
	"clsacim/internal/mapping"
	"clsacim/internal/models"
	"clsacim/internal/schedule"
	"clsacim/internal/sets"
	"clsacim/internal/stream"
)

type compiled struct {
	m  *mapping.Mapping
	dg *deps.Graph
}

// compile runs the shape-only compilation pipeline for one builtin
// model at coarse granularity.
func compile(t *testing.T, id models.ID, targetSets int) compiled {
	t.Helper()
	g := models.MustBuild(id, models.Options{})
	if _, err := frontend.Canonicalize(g, frontend.Options{}); err != nil {
		t.Fatal(err)
	}
	plan, err := mapping.Analyze(g, im2col.PEDims{Rows: 256, Cols: 256})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := mapping.Solve(plan, plan.MinPEs, mapping.SolverNone)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.Apply(g, plan, sol, plan.MinPEs)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sets.Determine(g, m, sets.Options{TargetSets: targetSets})
	if err != nil {
		t.Fatal(err)
	}
	dg, err := deps.Build(g, sp)
	if err != nil {
		t.Fatal(err)
	}
	return compiled{m: m, dg: dg}
}

func spec(c compiled, p schedule.Policy, base int) stream.ModelSpec {
	return stream.ModelSpec{Graph: c.dg, Mapping: c.m, Policy: p, PEBase: base}
}

func singleMakespan(t *testing.T, c compiled, p schedule.Policy) int64 {
	t.Helper()
	tl, err := schedule.Schedule(c.dg, p, schedule.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tl.Makespan
}

func repeat(mi, n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = mi
	}
	return s
}

// A closed loop with concurrency 1 is back-to-back serial execution:
// each job's timeline must be the analytic single-inference schedule
// translated by the predecessor's completion, and the stream makespan
// exactly n single makespans. Debug mode runs check.Stream on the way.
func TestClosedLoopSerialMatchesSchedule(t *testing.T) {
	c := compile(t, models.TinyYOLOv4, 8)
	for _, p := range []schedule.Policy{schedule.LayerByLayer, schedule.Windowed(2), schedule.CrossLayer} {
		single, err := schedule.Schedule(c.dg, p, schedule.Options{})
		if err != nil {
			t.Fatal(err)
		}
		const n = 3
		res, err := stream.Run(stream.Workload{
			FabricPEs:   c.m.F,
			Models:      []stream.ModelSpec{spec(c, p, 0)},
			Sequence:    repeat(0, n),
			Concurrency: 1,
		}, stream.Options{Debug: true})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if want := int64(n) * single.Makespan; res.MakespanCycles != want {
			t.Fatalf("%s: serial stream makespan %d, want %d", p.Name(), res.MakespanCycles, want)
		}
		for j, tl := range res.Timelines {
			dt := int64(j) * single.Makespan
			for i, it := range tl.Items {
				ref := single.Items[i]
				if it.Start != ref.Start+dt || it.End != ref.End+dt || it.Replica != ref.Replica {
					t.Fatalf("%s: job %d item %d = %+v, want %+v shifted by %d", p.Name(), j, i, it, ref, dt)
				}
			}
			if res.Jobs[j].Arrival != dt || res.Jobs[j].End != dt+single.Makespan {
				t.Fatalf("%s: job %d lifecycle %+v", p.Name(), j, res.Jobs[j])
			}
		}
	}
}

// Pipelining is the point of the subsystem: with several inferences in
// flight under xinf, the stream must finish strictly faster than the
// same jobs run serially (throughput > 1/makespan).
func TestPipelinedBeatsSerial(t *testing.T) {
	c := compile(t, models.TinyYOLOv4, 8)
	single := singleMakespan(t, c, schedule.CrossLayer)
	const n = 6
	res, err := stream.Run(stream.Workload{
		FabricPEs:   c.m.F,
		Models:      []stream.ModelSpec{spec(c, schedule.CrossLayer, 0)},
		Sequence:    repeat(0, n),
		Concurrency: 4,
	}, stream.Options{Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.MakespanCycles >= int64(n)*single {
		t.Fatalf("pipelined makespan %d not better than serial %d", res.MakespanCycles, int64(n)*single)
	}
}

// An admission gate of 1 forces one inference in flight per model, so
// the closed loop degenerates to serial execution no matter the
// concurrency.
func TestGateSerializes(t *testing.T) {
	c := compile(t, models.TinyYOLOv4, 8)
	single := singleMakespan(t, c, schedule.CrossLayer)
	const n = 4
	res, err := stream.Run(stream.Workload{
		FabricPEs:   c.m.F,
		Models:      []stream.ModelSpec{spec(c, schedule.CrossLayer, 0)},
		Sequence:    repeat(0, n),
		Concurrency: 4,
	}, stream.Options{MaxInFlight: 1, Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(n) * single; res.MakespanCycles != want {
		t.Fatalf("gated stream makespan %d, want serial %d", res.MakespanCycles, want)
	}
}

// Two models on disjoint pools run fully independently: the mixed
// stream's makespan equals the slower of the two private streams.
func TestDisjointPoolsAreIndependent(t *testing.T) {
	a := compile(t, models.TinyYOLOv4, 8)
	b := compile(t, models.TinyYOLOv3, 8)
	p := schedule.CrossLayer
	seq := []int{0, 1, 0, 1}
	arr := []int64{0, 0, 0, 0}
	res, err := stream.Run(stream.Workload{
		FabricPEs: a.m.F + b.m.F,
		Models:    []stream.ModelSpec{spec(a, p, 0), spec(b, p, a.m.F)},
		Sequence:  seq,
		Arrivals:  arr,
	}, stream.Options{Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * singleMakespan(t, a, p)
	if w2 := 2 * singleMakespan(t, b, p); w2 > want {
		want = w2
	}
	if res.MakespanCycles > want {
		t.Fatalf("disjoint-pool makespan %d, want <= %d (independent streams)", res.MakespanCycles, want)
	}
}

// Two models time-sharing one crossbar pool must interleave without
// ever overlapping on a shared PE — the acceptance-criteria
// differential test: Debug mode revalidates every timeline through
// check.Stream, including cross-model exclusivity on the shared pool.
func TestSharedPoolTwoModelsValidated(t *testing.T) {
	a := compile(t, models.TinyYOLOv4, 8)
	b := compile(t, models.TinyYOLOv3, 8)
	p := schedule.CrossLayer
	fabric := a.m.F
	if b.m.F > fabric {
		fabric = b.m.F
	}
	res, err := stream.Run(stream.Workload{
		FabricPEs: fabric,
		Models:    []stream.ModelSpec{spec(a, p, 0), spec(b, p, 0)},
		Sequence:  []int{0, 1, 0, 1},
		Arrivals:  []int64{0, 0, 1000, 1000},
	}, stream.Options{Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.MakespanCycles <= 0 {
		t.Fatal("empty shared-pool run")
	}
	floor := 2*singleMakespan(t, a, p) + 2*singleMakespan(t, b, p)
	if res.MakespanCycles > floor {
		t.Fatalf("shared-pool makespan %d worse than fully serial %d", res.MakespanCycles, floor)
	}
}

// Open-loop runs respect arrival times and record the queue trace.
func TestOpenLoopArrivals(t *testing.T) {
	c := compile(t, models.TinyYOLOv4, 8)
	arr, err := stream.PoissonArrivals(3, 5, 5000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := stream.Run(stream.Workload{
		FabricPEs: c.m.F,
		Models:    []stream.ModelSpec{spec(c, schedule.CrossLayer, 0)},
		Sequence:  repeat(0, len(arr)),
		Arrivals:  arr,
	}, stream.Options{Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	for j, js := range res.Jobs {
		if js.Arrival != arr[j] {
			t.Fatalf("job %d arrival %d, want %d", j, js.Arrival, arr[j])
		}
		if js.Start < js.Arrival || js.End < js.Start {
			t.Fatalf("job %d lifecycle out of order: %+v", j, js)
		}
	}
	if len(res.Queue) == 0 {
		t.Fatal("no queue trace")
	}
	depth := 0
	for i, qs := range res.Queue {
		if i > 0 && qs.Time < res.Queue[i-1].Time {
			t.Fatalf("queue trace out of order at %d", i)
		}
		if qs.Depth < 0 || qs.Depth > len(arr) {
			t.Fatalf("queue depth %d out of range", qs.Depth)
		}
		depth = qs.Depth
	}
	if depth != 0 {
		t.Fatalf("queue not drained: final depth %d", depth)
	}
}

func TestRunRejectsBadWorkloads(t *testing.T) {
	c := compile(t, models.TinyYOLOv4, 8)
	good := stream.Workload{
		FabricPEs:   c.m.F,
		Models:      []stream.ModelSpec{spec(c, schedule.CrossLayer, 0)},
		Sequence:    []int{0},
		Concurrency: 1,
	}
	cases := []struct {
		name string
		mut  func(w *stream.Workload, o *stream.Options)
		want string
	}{
		{"no models", func(w *stream.Workload, o *stream.Options) { w.Models = nil }, "no models"},
		{"small fabric", func(w *stream.Workload, o *stream.Options) { w.FabricPEs = 1 }, "outside fabric"},
		{"bad model index", func(w *stream.Workload, o *stream.Options) { w.Sequence = []int{2} }, "names model"},
		{"no jobs", func(w *stream.Workload, o *stream.Options) { w.Sequence = nil }, "empty job sequence"},
		{"no concurrency", func(w *stream.Workload, o *stream.Options) { w.Concurrency = 0 }, "Concurrency"},
		{"unsorted arrivals", func(w *stream.Workload, o *stream.Options) {
			w.Sequence = []int{0, 0}
			w.Arrivals = []int64{5, 1}
		}, "not sorted"},
		{"negative gate", func(w *stream.Workload, o *stream.Options) { o.MaxInFlight = -1 }, "negative admission gate"},
	}
	for _, tc := range cases {
		w, o := good, stream.Options{}
		tc.mut(&w, &o)
		_, err := stream.Run(w, o)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want %q", tc.name, err, tc.want)
		}
	}
}
