package stream

import (
	"reflect"
	"runtime"
	"testing"
)

// The generators must be pure functions of the seed: identical golden
// sequences on every run, platform, and GOMAXPROCS setting. The golden
// values pin the exact splitmix64 + inverse-CDF arithmetic; a change in
// either silently invalidates every recorded benchmark, so it has to
// show up here.
func TestPoissonArrivalsGolden(t *testing.T) {
	want := []int64{1353, 1527, 1853, 2275, 2314, 4341, 4587, 6200}
	got, err := PoissonArrivals(42, 8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestBurstyArrivalsGolden(t *testing.T) {
	want := []int64{8, 8127, 8443, 8641, 8713, 8980, 9035, 30196}
	got, err := BurstyArrivals(7, 8, BurstyConfig{MeanInterarrival: 500, MeanOnCycles: 2000, MeanOffCycles: 8000})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestModelSequenceGolden(t *testing.T) {
	want := []int{0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	got, err := ModelSequence(99, 12, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for _, mi := range got {
		if mi < 0 || mi >= 2 {
			t.Fatalf("model index %d out of range", mi)
		}
	}
}

func TestArrivalsDeterministicAcrossGOMAXPROCS(t *testing.T) {
	ref, err := PoissonArrivals(12345, 256, 700)
	if err != nil {
		t.Fatal(err)
	}
	refBurst, err := BurstyArrivals(54321, 256, BurstyConfig{MeanInterarrival: 300, MeanOnCycles: 5000, MeanOffCycles: 10000})
	if err != nil {
		t.Fatal(err)
	}
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, procs := range []int{1, 2, old} {
		runtime.GOMAXPROCS(procs)
		p, err := PoissonArrivals(12345, 256, 700)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p, ref) {
			t.Fatalf("GOMAXPROCS=%d changed the Poisson sequence", procs)
		}
		b, err := BurstyArrivals(54321, 256, BurstyConfig{MeanInterarrival: 300, MeanOnCycles: 5000, MeanOffCycles: 10000})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(b, refBurst) {
			t.Fatalf("GOMAXPROCS=%d changed the bursty sequence", procs)
		}
	}
}

func TestArrivalsSortedAndNonNegative(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		p, err := PoissonArrivals(seed, 128, 250)
		if err != nil {
			t.Fatal(err)
		}
		b, err := BurstyArrivals(seed, 128, BurstyConfig{MeanInterarrival: 100, MeanOnCycles: 1000, MeanOffCycles: 3000})
		if err != nil {
			t.Fatal(err)
		}
		for _, seq := range [][]int64{p, b} {
			for i, a := range seq {
				if a < 0 {
					t.Fatalf("seed %d: negative arrival %d", seed, a)
				}
				if i > 0 && a < seq[i-1] {
					t.Fatalf("seed %d: arrivals out of order at %d", seed, i)
				}
			}
		}
	}
}

func TestArrivalsRejectBadInputs(t *testing.T) {
	if _, err := PoissonArrivals(1, 0, 100); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := PoissonArrivals(1, 4, 0); err == nil {
		t.Error("zero mean accepted")
	}
	if _, err := BurstyArrivals(1, 4, BurstyConfig{MeanInterarrival: 100, MeanOnCycles: 0, MeanOffCycles: 10}); err == nil {
		t.Error("zero ON period accepted")
	}
	if _, err := ModelSequence(1, 4, []float64{0, 0}); err == nil {
		t.Error("zero-weight mix accepted")
	}
	if _, err := ModelSequence(1, 4, nil); err == nil {
		t.Error("empty mix accepted")
	}
}
