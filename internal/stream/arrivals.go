package stream

import (
	"fmt"
	"math"
)

// The arrival-process generators are built on splitmix64, a tiny,
// well-mixed 64-bit generator chosen over math/rand for a hard
// guarantee the benchmarks depend on: the sequence is a pure function
// of the seed, identical across platforms, Go releases, and GOMAXPROCS,
// so golden-seeded tests can assert exact arrival traces.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform sample in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// exp returns an exponential sample with the given mean (inverse CDF).
func (r *rng) exp(mean float64) float64 {
	return -mean * math.Log(1-r.float64())
}

// PoissonArrivals generates n arrival times (cycles, non-decreasing)
// of a Poisson process with the given mean inter-arrival time in
// cycles. The sequence is a deterministic function of the seed.
func PoissonArrivals(seed uint64, n int, meanInterarrival float64) ([]int64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stream: need a positive arrival count, have %d", n)
	}
	if meanInterarrival <= 0 || math.IsInf(meanInterarrival, 0) || math.IsNaN(meanInterarrival) {
		return nil, fmt.Errorf("stream: invalid mean inter-arrival %g cycles", meanInterarrival)
	}
	r := &rng{s: seed}
	out := make([]int64, n)
	var t float64
	for i := range out {
		t += r.exp(meanInterarrival)
		out[i] = int64(t)
	}
	return out, nil
}

// BurstyConfig parameterizes the ON-OFF (interrupted Poisson) arrival
// process: during an ON period of mean length MeanOnCycles arrivals
// form a Poisson stream with MeanInterarrival cycles between requests;
// each ON period is followed by a silent OFF period of mean length
// MeanOffCycles. All three are exponential means in cycles.
type BurstyConfig struct {
	MeanInterarrival float64
	MeanOnCycles     float64
	MeanOffCycles    float64
}

// BurstyArrivals generates n arrival times (cycles, non-decreasing) of
// the ON-OFF process. The sequence is a deterministic function of the
// seed.
func BurstyArrivals(seed uint64, n int, cfg BurstyConfig) ([]int64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stream: need a positive arrival count, have %d", n)
	}
	for _, v := range []float64{cfg.MeanInterarrival, cfg.MeanOnCycles, cfg.MeanOffCycles} {
		if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			return nil, fmt.Errorf("stream: invalid bursty config %+v", cfg)
		}
	}
	r := &rng{s: seed}
	out := make([]int64, 0, n)
	var t float64
	for len(out) < n {
		onEnd := t + r.exp(cfg.MeanOnCycles)
		for len(out) < n {
			dt := r.exp(cfg.MeanInterarrival)
			if t+dt > onEnd {
				break
			}
			t += dt
			out = append(out, int64(t))
		}
		t = onEnd + r.exp(cfg.MeanOffCycles)
	}
	return out, nil
}

// ModelSequence draws n model indices with the given relative weights —
// the per-job model choice of a mixed stream. The sequence is a
// deterministic function of the seed.
func ModelSequence(seed uint64, n int, weights []float64) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stream: need a positive job count, have %d", n)
	}
	if len(weights) == 0 {
		return nil, fmt.Errorf("stream: no model weights")
	}
	var total float64
	for mi, w := range weights {
		if w < 0 || math.IsInf(w, 0) || math.IsNaN(w) {
			return nil, fmt.Errorf("stream: invalid weight %g for model %d", w, mi)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("stream: model weights sum to %g", total)
	}
	r := &rng{s: seed}
	out := make([]int, n)
	for i := range out {
		u := r.float64() * total
		acc := 0.0
		out[i] = len(weights) - 1
		for mi, w := range weights {
			acc += w
			if u < acc {
				out[i] = mi
				break
			}
		}
	}
	return out, nil
}
