package quant

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCalibrate(t *testing.T) {
	p, err := Calibrate(8, 1.27)
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxLevel() != 127 {
		t.Errorf("MaxLevel = %d", p.MaxLevel())
	}
	if math.Abs(float64(p.Scale)-0.01) > 1e-6 {
		t.Errorf("Scale = %v, want 0.01", p.Scale)
	}
	if _, err := Calibrate(1, 1); err == nil {
		t.Error("bits=1 accepted")
	}
	if _, err := Calibrate(17, 1); err == nil {
		t.Error("bits=17 accepted")
	}
	pz, err := Calibrate(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pz.Quantize(0) != 0 {
		t.Error("zero-range quantizer must map to 0")
	}
}

func TestQuantizeClamps(t *testing.T) {
	p, _ := Calibrate(4, 1) // levels -7..7
	if got := p.Quantize(100); got != 7 {
		t.Errorf("over-range = %d, want 7", got)
	}
	if got := p.Quantize(-100); got != -7 {
		t.Errorf("under-range = %d, want -7", got)
	}
}

func TestRoundTripError(t *testing.T) {
	p, _ := Calibrate(8, 2)
	for _, v := range []float32{-2, -1.3, -0.01, 0, 0.5, 1.999, 2} {
		fq := p.FakeQuant(v)
		if d := float32(math.Abs(float64(fq - v))); d > p.MaxError()+1e-6 {
			t.Errorf("FakeQuant(%v) = %v, err %v > %v", v, fq, d, p.MaxError())
		}
	}
}

func TestSlices(t *testing.T) {
	vs := []float32{-1, 0, 1}
	p, _ := Calibrate(8, 1)
	q := p.QuantizeSlice(vs)
	if q[0] != -127 || q[1] != 0 || q[2] != 127 {
		t.Errorf("QuantizeSlice = %v", q)
	}
	p.FakeQuantSlice(vs)
	if vs[0] != -1 || vs[2] != 1 {
		t.Errorf("FakeQuantSlice = %v", vs)
	}
}

func TestBitSlicesKnown(t *testing.T) {
	sign, cells := BitSlices(-0b1011001, 4, 2)
	if sign != -1 {
		t.Errorf("sign = %d", sign)
	}
	if cells[0] != 0b1001 || cells[1] != 0b101 {
		t.Errorf("cells = %b", cells)
	}
	if got := FromBitSlices(sign, cells, 4); got != -0b1011001 {
		t.Errorf("roundtrip = %d", got)
	}
}

func TestSlicesNeeded(t *testing.T) {
	cases := []struct{ wb, cb, want int }{
		{8, 4, 2}, {4, 4, 1}, {8, 2, 4}, {2, 4, 1}, {9, 4, 2}, {16, 4, 4},
	}
	for _, c := range cases {
		if got := SlicesNeeded(c.wb, c.cb); got != c.want {
			t.Errorf("SlicesNeeded(%d,%d) = %d, want %d", c.wb, c.cb, got, c.want)
		}
	}
}

// TestQuickBitSliceRoundTrip verifies sign-magnitude bit slicing is
// lossless for any level representable in the slice budget.
func TestQuickBitSliceRoundTrip(t *testing.T) {
	f := func(raw int16, cb8 uint8) bool {
		cellBits := int(cb8%4) + 1 // 1..4
		k := SlicesNeeded(16, cellBits)
		q := int32(raw)
		sign, cells := BitSlices(q, cellBits, k)
		for _, c := range cells {
			if c < 0 || c >= 1<<cellBits {
				return false
			}
		}
		return FromBitSlices(sign, cells, cellBits) == q
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickFakeQuantIdempotent checks quantizing twice equals once.
func TestQuickFakeQuantIdempotent(t *testing.T) {
	f := func(v float32, bits8 uint8) bool {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return true
		}
		bits := int(bits8%15) + 2
		p, err := Calibrate(bits, 4)
		if err != nil {
			return false
		}
		once := p.FakeQuant(v)
		return p.FakeQuant(once) == once
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
