// Package quant implements symmetric linear quantization used to lower
// base-layer weights onto RRAM crossbar cells with limited resolution
// (paper §III-A: existing PEs offer up to 4-bit cells, so weights are
// quantized and, if necessary, bit-sliced across multiple cells).
package quant

import (
	"fmt"
	"math"
)

// Params describes a symmetric linear quantizer mapping float values to
// signed integers in [-(2^(bits-1)-1), 2^(bits-1)-1].
type Params struct {
	Bits  int
	Scale float32 // float value represented by one integer step
}

// MaxLevel returns the largest representable integer magnitude.
func (p Params) MaxLevel() int32 {
	if p.Bits <= 1 {
		return 0
	}
	return int32(1)<<(p.Bits-1) - 1
}

// Calibrate returns quantization parameters for the given number of bits
// covering values up to maxAbs. A zero maxAbs yields scale 1 (all values
// quantize to zero anyway).
func Calibrate(bits int, maxAbs float32) (Params, error) {
	if bits < 2 || bits > 16 {
		return Params{}, fmt.Errorf("quant: bits %d outside [2,16]", bits)
	}
	p := Params{Bits: bits}
	if maxAbs <= 0 {
		p.Scale = 1
		return p, nil
	}
	p.Scale = maxAbs / float32(p.MaxLevel())
	return p, nil
}

// Quantize maps v to its integer level, clamped to the representable range.
func (p Params) Quantize(v float32) int32 {
	if p.Scale == 0 {
		return 0
	}
	q := int32(math.RoundToEven(float64(v / p.Scale)))
	m := p.MaxLevel()
	if q > m {
		q = m
	}
	if q < -m {
		q = -m
	}
	return q
}

// Dequantize maps an integer level back to float.
func (p Params) Dequantize(q int32) float32 { return float32(q) * p.Scale }

// FakeQuant rounds v through the quantizer (quantize then dequantize).
func (p Params) FakeQuant(v float32) float32 { return p.Dequantize(p.Quantize(v)) }

// QuantizeSlice quantizes all values into a fresh int32 slice.
func (p Params) QuantizeSlice(vs []float32) []int32 {
	out := make([]int32, len(vs))
	for i, v := range vs {
		out[i] = p.Quantize(v)
	}
	return out
}

// FakeQuantSlice rounds every value through the quantizer in place.
func (p Params) FakeQuantSlice(vs []float32) {
	for i, v := range vs {
		vs[i] = p.FakeQuant(v)
	}
}

// MaxError returns the worst-case rounding error of the quantizer for
// in-range values: half a step.
func (p Params) MaxError() float32 { return p.Scale / 2 }

// BitSlices decomposes a quantized level q into k cell values of
// cellBits each (little-endian), representing the sign-magnitude
// bit-slicing used when the weight resolution exceeds the RRAM cell
// resolution. The sign is returned separately (differential crossbar
// pairs in hardware).
func BitSlices(q int32, cellBits, k int) (sign int32, cells []int32) {
	sign = 1
	if q < 0 {
		sign = -1
		q = -q
	}
	mask := int32(1)<<cellBits - 1
	cells = make([]int32, k)
	for i := 0; i < k; i++ {
		cells[i] = q & mask
		q >>= cellBits
	}
	return sign, cells
}

// FromBitSlices reassembles a level from its sign and cell values.
func FromBitSlices(sign int32, cells []int32, cellBits int) int32 {
	var q int32
	for i := len(cells) - 1; i >= 0; i-- {
		q = q<<cellBits | cells[i]
	}
	return sign * q
}

// SlicesNeeded returns how many cellBits-wide cells hold a weightBits
// magnitude (weightBits excludes the sign bit handled differentially).
func SlicesNeeded(weightBits, cellBits int) int {
	mag := weightBits - 1
	if mag < 1 {
		mag = 1
	}
	return (mag + cellBits - 1) / cellBits
}
