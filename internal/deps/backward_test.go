package deps

import (
	"testing"

	"clsacim/internal/nn"
	"clsacim/internal/region"
	"clsacim/internal/tensor"
)

// single wires input -> op and returns the op node.
func single(t *testing.T, inShape tensor.Shape, op nn.Op) *nn.Node {
	t.Helper()
	g := nn.NewGraph()
	in := g.AddInput("input", inShape)
	n := g.Add("op", op, in)
	g.MarkOutput(n)
	return n
}

func back1(t *testing.T, n *nn.Node, r region.Box) region.Box {
	t.Helper()
	srcs, err := backward(n, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) != 1 {
		t.Fatalf("backward returned %d regions, want 1", len(srcs))
	}
	return srcs[0].box
}

func TestBackwardIdentityOps(t *testing.T) {
	r := region.NewBox(1, 3, 2, 5, 0, 4)
	for _, op := range []nn.Op{
		&nn.BiasAdd{B: make([]float32, 4)},
		&nn.Activation{Func: nn.ActReLU},
	} {
		n := single(t, tensor.NewShape(8, 8, 4), op)
		if got := back1(t, n, r); !got.Eq(r) {
			t.Errorf("%v backward = %v, want %v", n.Kind(), got, r)
		}
	}
}

func TestBackwardPad(t *testing.T) {
	n := single(t, tensor.NewShape(4, 4, 2), &nn.Pad{Pad: nn.Padding{Top: 1, Bottom: 2, Left: 1, Right: 0}})
	// Output region entirely in the top padding maps to empty.
	if got := back1(t, n, region.NewBox(0, 1, 0, 5, 0, 2)); !got.Empty() {
		t.Errorf("pad-only region mapped to %v, want empty", got)
	}
	// Region straddling padding clamps to the valid input part.
	got := back1(t, n, region.NewBox(0, 3, 0, 2, 0, 2))
	want := region.NewBox(0, 2, 0, 1, 0, 2)
	if !got.Eq(want) {
		t.Errorf("pad backward = %v, want %v", got, want)
	}
}

func TestBackwardMaxPool(t *testing.T) {
	n := single(t, tensor.NewShape(8, 8, 1), &nn.MaxPool{KH: 2, KW: 2, SH: 2, SW: 2})
	got := back1(t, n, region.NewBox(1, 3, 0, 2, 0, 1))
	want := region.NewBox(2, 6, 0, 4, 0, 1)
	if !got.Eq(want) {
		t.Errorf("pool backward = %v, want %v", got, want)
	}
	// Stride-1 padded pool (TinyYOLO): window extends beyond input and
	// clamps.
	n = single(t, tensor.NewShape(13, 13, 1), &nn.MaxPool{KH: 2, KW: 2, SH: 1, SW: 1,
		Pad: nn.Padding{Bottom: 1, Right: 1}})
	got = back1(t, n, region.NewBox(12, 13, 12, 13, 0, 1))
	want = region.NewBox(12, 13, 12, 13, 0, 1)
	if !got.Eq(want) {
		t.Errorf("padded pool backward = %v, want %v", got, want)
	}
}

func TestBackwardGlobalAvgPool(t *testing.T) {
	n := single(t, tensor.NewShape(7, 7, 16), &nn.AvgPool{Global: true})
	got := back1(t, n, region.NewBox(0, 1, 0, 1, 3, 5))
	want := region.NewBox(0, 7, 0, 7, 3, 5)
	if !got.Eq(want) {
		t.Errorf("gap backward = %v, want %v (all pixels, selected channels)", got, want)
	}
}

func TestBackwardUpSample(t *testing.T) {
	n := single(t, tensor.NewShape(13, 13, 8), &nn.UpSample{Factor: 2})
	got := back1(t, n, region.NewBox(3, 7, 0, 1, 0, 8))
	want := region.NewBox(1, 4, 0, 1, 0, 8)
	if !got.Eq(want) {
		t.Errorf("upsample backward = %v, want %v", got, want)
	}
}

func TestBackwardSlice(t *testing.T) {
	n := single(t, tensor.NewShape(8, 8, 64), &nn.Slice{Box: region.NewBox(2, 6, 0, 8, 32, 64)})
	got := back1(t, n, region.NewBox(0, 2, 1, 3, 0, 16))
	want := region.NewBox(2, 4, 1, 3, 32, 48)
	if !got.Eq(want) {
		t.Errorf("slice backward = %v, want %v", got, want)
	}
}

func TestBackwardConcatChannels(t *testing.T) {
	g := nn.NewGraph()
	in := g.AddInput("input", tensor.NewShape(4, 4, 2))
	a := g.Add("a", &nn.Activation{Func: nn.ActLinear}, in)
	b := g.Add("b", &nn.Activation{Func: nn.ActReLU}, in)
	cat := g.Add("cat", &nn.Concat{Axis: nn.AxisC}, a, b)
	g.MarkOutput(cat)

	// Region entirely in the first branch.
	srcs, err := backward(cat, region.NewBox(0, 4, 0, 4, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) != 1 || srcs[0].src != a {
		t.Fatalf("concat backward = %d srcs (first = %v)", len(srcs), srcs[0].src)
	}
	// Region straddling both branches splits with local channel coords.
	srcs, err = backward(cat, region.NewBox(1, 2, 1, 2, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) != 2 {
		t.Fatalf("straddling concat backward = %d srcs", len(srcs))
	}
	if !srcs[0].box.Eq(region.NewBox(1, 2, 1, 2, 1, 2)) {
		t.Errorf("branch a box = %v", srcs[0].box)
	}
	if !srcs[1].box.Eq(region.NewBox(1, 2, 1, 2, 0, 1)) {
		t.Errorf("branch b box = %v", srcs[1].box)
	}
}

func TestBackwardConcatH(t *testing.T) {
	g := nn.NewGraph()
	in := g.AddInput("input", tensor.NewShape(3, 4, 1))
	a := g.Add("a", &nn.Activation{Func: nn.ActLinear}, in)
	b := g.Add("b", &nn.Activation{Func: nn.ActReLU}, in)
	cat := g.Add("cat", &nn.Concat{Axis: nn.AxisH}, a, b)
	g.MarkOutput(cat)
	srcs, err := backward(cat, region.NewBox(2, 5, 0, 4, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) != 2 {
		t.Fatalf("H concat backward = %d srcs", len(srcs))
	}
	if !srcs[0].box.Eq(region.NewBox(2, 3, 0, 4, 0, 1)) {
		t.Errorf("branch a = %v", srcs[0].box)
	}
	if !srcs[1].box.Eq(region.NewBox(0, 2, 0, 4, 0, 1)) {
		t.Errorf("branch b = %v", srcs[1].box)
	}
}

func TestBackwardAdd(t *testing.T) {
	g := nn.NewGraph()
	in := g.AddInput("input", tensor.NewShape(4, 4, 2))
	a := g.Add("a", &nn.Activation{Func: nn.ActLinear}, in)
	b := g.Add("b", &nn.Activation{Func: nn.ActReLU}, in)
	sum := g.Add("sum", &nn.Add{}, a, b)
	g.MarkOutput(sum)
	r := region.NewBox(1, 2, 1, 2, 0, 2)
	srcs, err := backward(sum, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) != 2 || !srcs[0].box.Eq(r) || !srcs[1].box.Eq(r) {
		t.Errorf("add backward = %+v", srcs)
	}
}

func TestBackwardFlattenConservative(t *testing.T) {
	n := single(t, tensor.NewShape(2, 3, 4), &nn.Flatten{})
	got := back1(t, n, region.NewBox(0, 1, 0, 1, 5, 6))
	want := region.Full(2, 3, 4)
	if !got.Eq(want) {
		t.Errorf("flatten backward = %v, want whole input %v", got, want)
	}
}

func TestRequiredIFMConv(t *testing.T) {
	g := nn.NewGraph()
	in := g.AddInput("input", tensor.NewShape(10, 10, 3))
	conv := g.Add("conv", &nn.Conv2D{KH: 3, KW: 3, SH: 2, SW: 2, KI: 3, KO: 8}, in)
	g.MarkOutput(conv)
	req, err := requiredIFM(conv, region.NewBox(1, 3, 0, 2, 0, 8))
	if err != nil {
		t.Fatal(err)
	}
	want := region.NewBox(2, 7, 0, 5, 0, 3)
	if len(req) != 1 || !req[0].box.Eq(want) {
		t.Errorf("conv receptive field = %+v, want %v", req, want)
	}
	// Padded conv must be rejected (canonicalization contract).
	padded := g.Add("padded", &nn.Conv2D{KH: 3, KW: 3, SH: 1, SW: 1, KI: 3, KO: 1,
		Pad: nn.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}}, in)
	if _, err := requiredIFM(padded, region.NewBox(0, 1, 0, 1, 0, 1)); err == nil {
		t.Error("padded conv accepted")
	}
}

func TestRequiredIFMDense(t *testing.T) {
	g := nn.NewGraph()
	in := g.AddInput("input", tensor.NewShape(1, 1, 32))
	d := g.Add("d", &nn.Dense{KI: 32, KO: 4}, in)
	g.MarkOutput(d)
	req, err := requiredIFM(d, region.NewBox(0, 1, 0, 1, 0, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !req[0].box.Eq(region.Full(1, 1, 32)) {
		t.Errorf("dense requires %v, want full input", req[0].box)
	}
}
