package deps

import (
	"slices"

	"clsacim/internal/sets"
)

// CSR is the compressed-sparse-row form of the set-dependency DAG over
// a flat set index space: sets are numbered layer-major in plan order
// (layer l's sets occupy [LayerOff[l], LayerOff[l+1])), and both edge
// directions are stored as flat offset/target/volume arrays. It is
// built once by Build and consumed by the Stage IV scheduler and the
// event-driven simulator, whose hot loops index these arrays instead of
// chasing per-set slices.
type CSR struct {
	// LayerOff[l] is the flat id of layer l's first set; the final
	// entry is the total set count.
	LayerOff []int32
	// SetLayer[i] is the layer owning flat set i.
	SetLayer []int32
	// Cycles[i] is the execution time of flat set i.
	Cycles []int64

	// Predecessor edges: flat set i depends on the sets
	// Pred[PredOff[i]:PredOff[i+1]], sorted ascending; PredVol carries
	// the per-edge read volume (SetRef.Vol).
	PredOff []int32
	Pred    []int32
	PredVol []int32

	// Successor edges (the exact reverse relation): flat set i is read
	// by Succ[SuccOff[i]:SuccOff[i+1]], sorted ascending, with the
	// matching volumes in SuccVol.
	SuccOff []int32
	Succ    []int32
	SuccVol []int32
}

// assembleCSR concatenates the per-layer edge streams (already sorted
// and deduplicated per set) into the flat arrays. The concatenation is
// positional in plan-layer order, so the result does not depend on the
// order the layers were built in; successors are filled by walking
// consumers in flat order, which sorts them.
func assembleCSR(plan *sets.Plan, layerOff []int32, results []layerEdges) *CSR {
	numLayers := len(plan.Layers)
	total := int(layerOff[numLayers])
	c := &CSR{
		LayerOff: layerOff,
		SetLayer: make([]int32, total),
		Cycles:   make([]int64, total),
	}
	for li := range plan.Layers {
		for si, set := range plan.Layers[li].Sets {
			i := layerOff[li] + int32(si)
			c.SetLayer[i] = int32(li)
			c.Cycles[i] = set.Cycles
		}
	}

	edges := 0
	for li := range results {
		edges += len(results[li].pred)
	}
	c.PredOff = make([]int32, total+1)
	c.Pred = make([]int32, 0, edges)
	c.PredVol = make([]int32, 0, edges)
	succCount := make([]int32, total)
	id := 0
	for li := range results {
		le := &results[li]
		base := int32(len(c.Pred))
		for si := 0; si+1 < len(le.setOff); si++ {
			c.PredOff[id] = base + le.setOff[si]
			id++
		}
		c.Pred = append(c.Pred, le.pred...)
		c.PredVol = append(c.PredVol, le.vol...)
		for _, p := range le.pred {
			succCount[p]++
		}
	}
	c.PredOff[total] = int32(len(c.Pred))

	c.SuccOff = make([]int32, total+1)
	var off int32
	for i, n := range succCount {
		c.SuccOff[i] = off
		off += n
	}
	c.SuccOff[total] = off
	c.Succ = make([]int32, edges)
	c.SuccVol = make([]int32, edges)
	cursor := succCount // reuse: rewound to per-set write positions
	copy(cursor, c.SuccOff[:total])
	for i := int32(0); i < int32(total); i++ {
		for e := c.PredOff[i]; e < c.PredOff[i+1]; e++ {
			p := c.Pred[e]
			c.Succ[cursor[p]] = i
			c.SuccVol[cursor[p]] = c.PredVol[e]
			cursor[p]++
		}
	}
	return c
}

// ID returns the flat id of set si of layer li.
func (c *CSR) ID(li, si int) int32 { return c.LayerOff[li] + int32(si) }

// Set resolves a flat id back to its (layer, set) pair.
func (c *CSR) Set(id int32) (li, si int) {
	l := c.SetLayer[id]
	return int(l), int(id - c.LayerOff[l])
}

// NumSets returns the total set count.
func (c *CSR) NumSets() int { return len(c.SetLayer) }

// NumEdges returns the total dependency-edge count.
func (c *CSR) NumEdges() int { return len(c.Pred) }

// NumLayers returns the layer count.
func (c *CSR) NumLayers() int { return len(c.LayerOff) - 1 }

// Equal reports whether two CSR graphs are identical array for array —
// the determinism contract of Build across worker counts and runs.
func (c *CSR) Equal(o *CSR) bool {
	return slices.Equal(c.LayerOff, o.LayerOff) &&
		slices.Equal(c.SetLayer, o.SetLayer) &&
		slices.Equal(c.Cycles, o.Cycles) &&
		slices.Equal(c.PredOff, o.PredOff) &&
		slices.Equal(c.Pred, o.Pred) &&
		slices.Equal(c.PredVol, o.PredVol) &&
		slices.Equal(c.SuccOff, o.SuccOff) &&
		slices.Equal(c.Succ, o.Succ) &&
		slices.Equal(c.SuccVol, o.SuccVol)
}
