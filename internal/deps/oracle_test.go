package deps

import (
	"fmt"
	"testing"

	"clsacim/internal/frontend"
	"clsacim/internal/im2col"
	"clsacim/internal/mapping"
	"clsacim/internal/models"
	"clsacim/internal/nn"
	"clsacim/internal/sets"
)

// The availability oracle is an independent, element-granular check of
// Stage II: for a set sigma with dependency list D, mark exactly the
// elements of D as produced, propagate availability forward through the
// non-base operators, and verify every input element sigma's receptive
// field needs is available (sufficiency). Minimality is checked by
// removing one dependency at a time and requiring some needed element to
// become unavailable.

// avail maps each node to a per-element availability mask of its output.
type avail map[*nn.Node][]bool

func fullMask(n *nn.Node, v bool) []bool {
	m := make([]bool, n.OutShape.Elems())
	for i := range m {
		m[i] = v
	}
	return m
}

// propagate computes availability masks for all non-base nodes given
// fixed masks for the input node and all base-layer nodes.
func propagate(t *testing.T, g *nn.Graph, a avail) {
	t.Helper()
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range order {
		if _, done := a[n]; done {
			continue // input or base layer: mask fixed by caller
		}
		if n.IsBase() {
			t.Fatalf("base node %v without fixed mask", n)
		}
		a[n] = forwardMask(t, n, a)
	}
}

func forwardMask(t *testing.T, n *nn.Node, a avail) []bool {
	t.Helper()
	s := n.OutShape
	out := make([]bool, s.Elems())
	in := n.Inputs
	switch op := n.Op.(type) {
	case *nn.BiasAdd, *nn.Activation, *nn.BatchNorm:
		copy(out, a[in[0]])
	case *nn.Pad:
		src := in[0].OutShape
		for h := 0; h < s.H; h++ {
			for w := 0; w < s.W; w++ {
				for c := 0; c < s.C; c++ {
					ih, iw := h-op.Pad.Top, w-op.Pad.Left
					v := true // constant padding is always available
					if ih >= 0 && ih < src.H && iw >= 0 && iw < src.W {
						v = a[in[0]][src.Index(ih, iw, c)]
					}
					out[s.Index(h, w, c)] = v
				}
			}
		}
	case *nn.MaxPool:
		poolMask(out, n, in[0], a, op.KH, op.KW, op.SH, op.SW, op.Pad)
	case *nn.AvgPool:
		kh, kw, sh, sw := op.KH, op.KW, op.SH, op.SW
		if op.Global {
			src := in[0].OutShape
			kh, kw, sh, sw = src.H, src.W, src.H, src.W
		}
		poolMask(out, n, in[0], a, kh, kw, sh, sw, nn.Padding{})
	case *nn.Concat:
		off := 0
		for _, src := range in {
			ss := src.OutShape
			for h := 0; h < ss.H; h++ {
				for w := 0; w < ss.W; w++ {
					for c := 0; c < ss.C; c++ {
						v := a[src][ss.Index(h, w, c)]
						switch op.Axis {
						case nn.AxisH:
							out[s.Index(h+off, w, c)] = v
						case nn.AxisW:
							out[s.Index(h, w+off, c)] = v
						case nn.AxisC:
							out[s.Index(h, w, c+off)] = v
						}
					}
				}
			}
			switch op.Axis {
			case nn.AxisH:
				off += ss.H
			case nn.AxisW:
				off += ss.W
			case nn.AxisC:
				off += ss.C
			}
		}
	case *nn.Add:
		for i := range out {
			out[i] = a[in[0]][i] && a[in[1]][i]
		}
	case *nn.UpSample:
		src := in[0].OutShape
		for h := 0; h < s.H; h++ {
			for w := 0; w < s.W; w++ {
				for c := 0; c < s.C; c++ {
					out[s.Index(h, w, c)] = a[in[0]][src.Index(h/op.Factor, w/op.Factor, c)]
				}
			}
		}
	case *nn.Slice:
		src := in[0].OutShape
		b := op.Box
		for h := b.H0; h < b.H1; h++ {
			for w := b.W0; w < b.W1; w++ {
				for c := b.C0; c < b.C1; c++ {
					out[s.Index(h-b.H0, w-b.W0, c-b.C0)] = a[in[0]][src.Index(h, w, c)]
				}
			}
		}
	case *nn.Flatten:
		copy(out, a[in[0]])
	default:
		t.Fatalf("oracle: unhandled op %v", n.Kind())
	}
	return out
}

// poolMask marks a pooled element available iff its whole (clamped)
// window is available.
func poolMask(out []bool, node, src *nn.Node, a avail, kh, kw, sh, sw int, pad nn.Padding) {
	ss := src.OutShape
	os := node.OutShape
	for y := 0; y < os.H; y++ {
		for x := 0; x < os.W; x++ {
			for c := 0; c < ss.C; c++ {
				ok := true
				for dh := 0; dh < kh && ok; dh++ {
					ih := y*sh - pad.Top + dh
					if ih < 0 || ih >= ss.H {
						continue
					}
					for dw := 0; dw < kw; dw++ {
						iw := x*sw - pad.Left + dw
						if iw < 0 || iw >= ss.W {
							continue
						}
						if !a[src][ss.Index(ih, iw, c)] {
							ok = false
							break
						}
					}
				}
				out[os.Index(y, x, c)] = ok
			}
		}
	}
}

// requiredElems returns the set of input-element indices a base layer
// needs to compute its OFM box.
func requiredElems(t *testing.T, n *nn.Node, ls sets.Set) []int {
	t.Helper()
	src := n.Inputs[0].OutShape
	var idx []int
	switch op := n.Op.(type) {
	case *nn.Conv2D:
		b := ls.Box
		for y := b.H0; y < b.H1; y++ {
			for x := b.W0; x < b.W1; x++ {
				for kh := 0; kh < op.KH; kh++ {
					for kw := 0; kw < op.KW; kw++ {
						ih, iw := y*op.SH+kh, x*op.SW+kw
						if ih >= src.H || iw >= src.W {
							t.Fatalf("receptive field outside IFM")
						}
						for c := 0; c < src.C; c++ {
							idx = append(idx, src.Index(ih, iw, c))
						}
					}
				}
			}
		}
	case *nn.DepthwiseConv2D:
		b := ls.Box
		for y := b.H0; y < b.H1; y++ {
			for x := b.W0; x < b.W1; x++ {
				for kh := 0; kh < op.KH; kh++ {
					for kw := 0; kw < op.KW; kw++ {
						ih, iw := y*op.SH+kh, x*op.SW+kw
						if ih >= src.H || iw >= src.W {
							t.Fatalf("depthwise receptive field outside IFM")
						}
						// Channel-preserving: only the set's own channels.
						for c := b.C0; c < b.C1; c++ {
							idx = append(idx, src.Index(ih, iw, c))
						}
					}
				}
			}
		}
	case *nn.Dense:
		for i := 0; i < src.Elems(); i++ {
			idx = append(idx, i)
		}
	default:
		t.Fatalf("requiredElems: not a base layer: %v", n)
	}
	return idx
}

// oracleCheck validates deps of (li, si): sufficiency always, minimality
// when checkMinimal is set.
func oracleCheck(t *testing.T, g *nn.Graph, dg *Graph, li, si int, checkMinimal bool) {
	t.Helper()
	plan := dg.Plan
	target := plan.Layers[li].Group.Node
	need := requiredElems(t, target, plan.Layers[li].Sets[si])
	refs := dg.DepsOf(li, si)

	run := func(skip int) bool {
		a := make(avail)
		a[g.Input] = fullMask(g.Input, true)
		for lj := range plan.Layers {
			node := plan.Layers[lj].Group.Node
			a[node] = fullMask(node, false)
		}
		for i, r := range refs {
			if i == skip {
				continue
			}
			node := plan.Layers[r.Layer].Group.Node
			mask := a[node]
			b := plan.Layers[r.Layer].Sets[r.Set].Box
			s := node.OutShape
			for h := b.H0; h < b.H1; h++ {
				for w := b.W0; w < b.W1; w++ {
					for c := b.C0; c < b.C1; c++ {
						mask[s.Index(h, w, c)] = true
					}
				}
			}
		}
		propagate(t, g, a)
		srcMask := a[target.Inputs[0]]
		for _, i := range need {
			if !srcMask[i] {
				return false
			}
		}
		return true
	}

	if !run(-1) {
		t.Errorf("layer %d set %d: dependencies insufficient (missing input elements)", li, si)
	}
	if checkMinimal {
		for i := range refs {
			if run(i) {
				t.Errorf("layer %d set %d: dependency %d/%d (L%d/S%d) is unnecessary",
					li, si, i, len(refs), refs[i].Layer, refs[i].Set)
			}
		}
	}
}

// buildDeps compiles a model down to a dependency graph at the given
// granularity.
func buildDeps(t *testing.T, id models.ID, inputSize, targetSets, extraPEs int) (*nn.Graph, *Graph) {
	t.Helper()
	g := models.MustBuild(id, models.Options{InputSize: inputSize})
	if _, err := frontend.Canonicalize(g, frontend.Options{}); err != nil {
		t.Fatal(err)
	}
	pe := im2col.PEDims{Rows: 256, Cols: 256}
	plan, err := mapping.Analyze(g, pe)
	if err != nil {
		t.Fatal(err)
	}
	solver := mapping.SolverNone
	if extraPEs > 0 {
		solver = mapping.SolverDP
	}
	sol, err := mapping.Solve(plan, plan.MinPEs+extraPEs, solver)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.Apply(g, plan, sol, plan.MinPEs+extraPEs)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sets.Determine(g, m, sets.Options{TargetSets: targetSets})
	if err != nil {
		t.Fatal(err)
	}
	dg, err := Build(g, sp)
	if err != nil {
		t.Fatal(err)
	}
	return g, dg
}

// TestOracleTinyBranchNet checks every set of the branchy test network
// (Add, Concat, UpSample, stride-2) for sufficiency and minimality.
func TestOracleTinyBranchNet(t *testing.T) {
	g, dg := buildDeps(t, models.TinyBranchNet, 16, 4, 0)
	for li := range dg.Plan.Layers {
		for si := range dg.Plan.Layers[li].Sets {
			oracleCheck(t, g, dg, li, si, true)
		}
	}
}

// TestOracleTinyYOLOv4 checks the CSP topology (grouped-route slices,
// concat trees, stride-1 pooling, upsample merge) at 64x64 input.
func TestOracleTinyYOLOv4(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive oracle cross-check; run without -short")
	}
	g, dg := buildDeps(t, models.TinyYOLOv4, 64, 3, 0)
	for li := range dg.Plan.Layers {
		for si := range dg.Plan.Layers[li].Sets {
			oracleCheck(t, g, dg, li, si, true)
		}
	}
}

// TestOracleTinyYOLOv3Finer repeats at finer granularity where set
// boundaries stop aligning with pooling windows.
func TestOracleTinyYOLOv3Finer(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive oracle cross-check; run without -short")
	}
	g, dg := buildDeps(t, models.TinyYOLOv3, 64, 7, 0)
	for li := range dg.Plan.Layers {
		for si := range dg.Plan.Layers[li].Sets {
			oracleCheck(t, g, dg, li, si, true)
		}
	}
}

// TestOracleTinyDWNet checks depthwise layers: channel-preserving
// dependencies through depthwise-separable blocks.
func TestOracleTinyDWNet(t *testing.T) {
	g, dg := buildDeps(t, models.TinyDWNet, 16, 4, 0)
	for li := range dg.Plan.Layers {
		for si := range dg.Plan.Layers[li].Sets {
			oracleCheck(t, g, dg, li, si, true)
		}
	}
}

// TestOracleResNetBlock exercises residual Add + projection at small
// scale, including global average pooling.
func TestOracleResNetBlock(t *testing.T) {
	g, dg := buildDeps(t, models.ResNet50, 32, 3, 0)
	// Limit to the first 12 layers to keep the oracle fast; they cover
	// stem + pooling + the first bottleneck (projection, add).
	for li := 0; li < 12 && li < len(dg.Plan.Layers); li++ {
		for si := range dg.Plan.Layers[li].Sets {
			oracleCheck(t, g, dg, li, si, true)
		}
	}
}

func TestDepsSortedAndDeduped(t *testing.T) {
	_, dg := buildDeps(t, models.TinyYOLOv4, 64, 5, 0)
	for li := range dg.Plan.Layers {
		for si := range dg.Plan.Layers[li].Sets {
			refs := dg.DepsOf(li, si)
			for i := 1; i < len(refs); i++ {
				a, b := refs[i-1], refs[i]
				if a.Layer > b.Layer || (a.Layer == b.Layer && a.Set >= b.Set) {
					t.Fatalf("layer %d set %d: deps not sorted/deduped: %v", li, si, refs)
				}
			}
			for _, r := range refs {
				if r.Vol <= 0 {
					t.Fatalf("layer %d set %d: dep volume %d", li, si, r.Vol)
				}
			}
		}
	}
	if dg.NumSets() == 0 || dg.NumEdges() == 0 {
		t.Error("degenerate dependency graph")
	}
}

// TestDepsAcyclicForward: every dependency must reference a strictly
// earlier layer (plan order is topological).
func TestDepsAcyclicForward(t *testing.T) {
	for _, id := range []models.ID{models.TinyBranchNet, models.TinyYOLOv4, models.ResNet50} {
		_, dg := buildDeps(t, id, 32, 4, 0)
		for li := range dg.Plan.Layers {
			for si := range dg.Plan.Layers[li].Sets {
				for _, r := range dg.DepsOf(li, si) {
					if r.Layer >= li {
						t.Fatalf("%s: layer %d set %d depends on layer %d (not earlier)",
							id, li, si, r.Layer)
					}
				}
			}
		}
	}
}

// TestFirstLayerHasNoDeps: sets of the first base layer read only the
// network input.
func TestFirstLayerHasNoDeps(t *testing.T) {
	_, dg := buildDeps(t, models.TinyYOLOv4, 64, 4, 0)
	for si := range dg.Plan.Layers[0].Sets {
		if refs := dg.DepsOf(0, si); len(refs) != 0 {
			t.Errorf("first layer set %d has deps %v", si, refs)
		}
	}
}

func TestBuildRejectsUnmappedBase(t *testing.T) {
	g, dg := buildDeps(t, models.TinyBranchNet, 16, 4, 0)
	// Remove one layer from the plan index to simulate an unmapped base
	// layer on a path.
	victim := dg.Plan.Layers[1].Group.Node
	delete(dg.Plan.ByNode, victim)
	if _, err := Build(g, dg.Plan); err == nil {
		t.Error("unmapped base layer not detected")
	}
}

func ExampleSetRef() {
	r := SetRef{Layer: 2, Set: 5, Vol: 128}
	fmt.Printf("L%d/S%d vol=%d\n", r.Layer, r.Set, r.Vol)
	// Output: L2/S5 vol=128
}
