// Package deps implements Stage II of CLSA-CIM (paper §IV-2): computing,
// for every OFM set of every base layer, which OFM sets of its
// predecessor base layers must be complete before the set can execute.
//
// The paper describes forward propagation of each producer set's
// coordinates along the non-base path to the consumer's IFM. This
// package implements the equivalent backward formulation, which yields
// exact pairwise dependencies in one pass: each consumer set's required
// IFM region (its receptive field) is pulled backward through the
// non-base operators to every reachable predecessor base layer's OFM
// coordinate space; the set then depends on exactly the predecessor sets
// whose boxes intersect the pulled-back region. Backward window
// arithmetic is exact for every operator here, so the resulting
// dependency relation equals the paper's P/Q mapping.
package deps

import (
	"fmt"
	"slices"

	"clsacim/internal/nn"
	"clsacim/internal/region"
	"clsacim/internal/sets"
)

// SetRef identifies a set and carries the data volume it contributes.
type SetRef struct {
	Layer, Set int
	// Vol is the number of elements of the predecessor set that the
	// depending set actually reads (used by the NoC/GPEU cost models).
	Vol int
}

// Graph is the set-level dependency DAG over a Stage I plan.
type Graph struct {
	Plan *sets.Plan
	// Deps[l][s] lists the predecessor sets of set s of layer l, sorted
	// by (Layer, Set). Sets with no entries depend only on the network
	// input (available at time zero).
	Deps [][][]SetRef
	// CSR is the flat compressed-sparse-row form of Deps (both edge
	// directions), built once by Build; the scheduler and simulator hot
	// paths consume it instead of Deps.
	CSR *CSR
}

// Build computes Stage II for plan over graph g.
func Build(g *nn.Graph, plan *sets.Plan) (*Graph, error) {
	dg := &Graph{Plan: plan, Deps: make([][][]SetRef, len(plan.Layers))}
	var scratch []SetRef
	var idxBuf []int
	for li, ls := range plan.Layers {
		dg.Deps[li] = make([][]SetRef, len(ls.Sets))
		node := ls.Group.Node
		for si, set := range ls.Sets {
			req, err := requiredIFM(node, set.Box)
			if err != nil {
				return nil, fmt.Errorf("deps: %v set %d: %w", node, si, err)
			}
			scratch = scratch[:0]
			for _, r := range req {
				scratch, idxBuf, err = walkBack(r.src, r.box, plan, scratch, idxBuf)
				if err != nil {
					return nil, fmt.Errorf("deps: %v set %d: %w", node, si, err)
				}
			}
			dg.Deps[li][si] = dedupe(scratch)
		}
	}
	dg.CSR = buildCSR(plan, dg.Deps)
	return dg, nil
}

// dedupe sorts refs by (Layer, Set) and merges duplicates (a set can be
// reached over several graph paths), keeping the maximum volume.
func dedupe(refs []SetRef) []SetRef {
	if len(refs) == 0 {
		return nil
	}
	slices.SortFunc(refs, func(a, b SetRef) int {
		if a.Layer != b.Layer {
			return a.Layer - b.Layer
		}
		return a.Set - b.Set
	})
	// Compact duplicates in place, then clone the right-sized result.
	n := 0
	for _, r := range refs[1:] {
		if refs[n].Layer == r.Layer && refs[n].Set == r.Set {
			if r.Vol > refs[n].Vol {
				refs[n].Vol = r.Vol
			}
			continue
		}
		n++
		refs[n] = r
	}
	return slices.Clone(refs[:n+1])
}

type srcRegion struct {
	src *nn.Node
	box region.Box
}

// requiredIFM returns the IFM regions a base layer needs to compute the
// OFM box (the intra-layer dependency of paper Stage I). Convolutions
// need the receptive field; Dense needs the whole input.
func requiredIFM(n *nn.Node, out region.Box) ([]srcRegion, error) {
	in := n.Inputs[0]
	s := in.OutShape
	switch op := n.Op.(type) {
	case *nn.Conv2D:
		if op.Pad.Any() {
			return nil, fmt.Errorf("conv still padded; canonicalize first")
		}
		rf := region.NewBox(
			out.H0*op.SH, (out.H1-1)*op.SH+op.KH,
			out.W0*op.SW, (out.W1-1)*op.SW+op.KW,
			0, s.C,
		).ClampTo(s.H, s.W, s.C)
		return []srcRegion{{in, rf}}, nil
	case *nn.DepthwiseConv2D:
		if op.Pad.Any() {
			return nil, fmt.Errorf("depthwise conv still padded; canonicalize first")
		}
		// Depthwise is channel-preserving: output channels [C0, C1)
		// read exactly input channels [C0, C1).
		rf := region.NewBox(
			out.H0*op.SH, (out.H1-1)*op.SH+op.KH,
			out.W0*op.SW, (out.W1-1)*op.SW+op.KW,
			out.C0, out.C1,
		).ClampTo(s.H, s.W, s.C)
		return []srcRegion{{in, rf}}, nil
	case *nn.Dense:
		return []srcRegion{{in, region.Full(s.H, s.W, s.C)}}, nil
	default:
		return nil, fmt.Errorf("%v is not a base layer", n)
	}
}

// walkBack propagates a required region backward from node n (meaning:
// "this region of n's output is needed") until it reaches base layers or
// the graph input, appending intersected predecessor sets to acc.
func walkBack(n *nn.Node, r region.Box, plan *sets.Plan, acc []SetRef, idxBuf []int) ([]SetRef, []int, error) {
	if r.Empty() {
		return acc, idxBuf, nil
	}
	if n.Kind() == nn.OpInput {
		return acc, idxBuf, nil // network input: available at t = 0
	}
	if li, ok := plan.ByNode[n]; ok {
		ls := &plan.Layers[li]
		idxBuf = ls.Intersecting(r, idxBuf[:0])
		for _, si := range idxBuf {
			iv := ls.Sets[si].Box.Intersect(r)
			if iv.Empty() {
				continue
			}
			acc = append(acc, SetRef{Layer: li, Set: si, Vol: iv.Volume()})
		}
		return acc, idxBuf, nil
	}
	if n.IsBase() {
		return acc, idxBuf, fmt.Errorf("base layer %v is not in the set plan (unmapped)", n)
	}
	srcs, err := backward(n, r)
	if err != nil {
		return acc, idxBuf, err
	}
	for _, s := range srcs {
		acc, idxBuf, err = walkBack(s.src, s.box, plan, acc, idxBuf)
		if err != nil {
			return acc, idxBuf, err
		}
	}
	return acc, idxBuf, nil
}

// backward maps a region of n's output space to regions of its inputs'
// output spaces (exact for every non-base operator).
func backward(n *nn.Node, r region.Box) ([]srcRegion, error) {
	in := n.Inputs
	switch op := n.Op.(type) {
	case *nn.BiasAdd, *nn.Activation, *nn.BatchNorm:
		return []srcRegion{{in[0], r}}, nil

	case *nn.Pad:
		s := in[0].OutShape
		return []srcRegion{{in[0],
			r.Translate(-op.Pad.Top, -op.Pad.Left, 0).ClampTo(s.H, s.W, s.C)}}, nil

	case *nn.MaxPool:
		s := in[0].OutShape
		b := region.NewBox(
			r.H0*op.SH-op.Pad.Top, (r.H1-1)*op.SH+op.KH-op.Pad.Top,
			r.W0*op.SW-op.Pad.Left, (r.W1-1)*op.SW+op.KW-op.Pad.Left,
			r.C0, r.C1,
		).ClampTo(s.H, s.W, s.C)
		return []srcRegion{{in[0], b}}, nil

	case *nn.AvgPool:
		s := in[0].OutShape
		if op.Global {
			return []srcRegion{{in[0], region.Full(s.H, s.W, s.C).
				Intersect(region.NewBox(0, s.H, 0, s.W, r.C0, r.C1))}}, nil
		}
		b := region.NewBox(
			r.H0*op.SH, (r.H1-1)*op.SH+op.KH,
			r.W0*op.SW, (r.W1-1)*op.SW+op.KW,
			r.C0, r.C1,
		).ClampTo(s.H, s.W, s.C)
		return []srcRegion{{in[0], b}}, nil

	case *nn.Concat:
		var out []srcRegion
		off := 0
		for _, src := range in {
			s := src.OutShape
			var local region.Box
			switch op.Axis {
			case nn.AxisH:
				local = r.Intersect(region.NewBox(off, off+s.H, r.W0, r.W1, r.C0, r.C1)).
					Translate(-off, 0, 0)
				off += s.H
			case nn.AxisW:
				local = r.Intersect(region.NewBox(r.H0, r.H1, off, off+s.W, r.C0, r.C1)).
					Translate(0, -off, 0)
				off += s.W
			case nn.AxisC:
				local = r.Intersect(region.NewBox(r.H0, r.H1, r.W0, r.W1, off, off+s.C)).
					Translate(0, 0, -off)
				off += s.C
			}
			if !local.Empty() {
				out = append(out, srcRegion{src, local})
			}
		}
		return out, nil

	case *nn.Add:
		return []srcRegion{{in[0], r}, {in[1], r}}, nil

	case *nn.UpSample:
		f := op.Factor
		b := region.NewBox(
			r.H0/f, (r.H1+f-1)/f,
			r.W0/f, (r.W1+f-1)/f,
			r.C0, r.C1,
		)
		return []srcRegion{{in[0], b}}, nil

	case *nn.Slice:
		return []srcRegion{{in[0], r.Translate(op.Box.H0, op.Box.W0, op.Box.C0)}}, nil

	case *nn.Flatten:
		// A flattened channel range maps to a non-rectangular HWC set;
		// conservatively require the whole input.
		s := in[0].OutShape
		return []srcRegion{{in[0], region.Full(s.H, s.W, s.C)}}, nil

	default:
		return nil, fmt.Errorf("deps: no backward rule for %v", n.Kind())
	}
}

// NumSets returns the total number of sets in the dependency graph.
func (dg *Graph) NumSets() int {
	n := 0
	for _, l := range dg.Deps {
		n += len(l)
	}
	return n
}

// NumEdges returns the total number of dependency edges.
func (dg *Graph) NumEdges() int {
	n := 0
	for _, l := range dg.Deps {
		for _, s := range l {
			n += len(s)
		}
	}
	return n
}
