// Package deps implements Stage II of CLSA-CIM (paper §IV-2): computing,
// for every OFM set of every base layer, which OFM sets of its
// predecessor base layers must be complete before the set can execute.
//
// The paper describes forward propagation of each producer set's
// coordinates along the non-base path to the consumer's IFM. This
// package implements the equivalent backward formulation, which yields
// exact pairwise dependencies in one pass: each consumer set's required
// IFM region (its receptive field) is pulled backward through the
// non-base operators to every reachable predecessor base layer's OFM
// coordinate space; the set then depends on exactly the predecessor sets
// whose boxes intersect the pulled-back region. Backward window
// arithmetic is exact for every operator here, so the resulting
// dependency relation equals the paper's P/Q mapping.
//
// Stage II dominates compilation cost, so Build is engineered as the
// fast path: the backward operator chains are compiled once per
// consumer layer into flattened route transforms (xform.go), layers are
// processed by a bounded worker pool with per-worker scratch (they only
// read the immutable plan), and each layer emits its slice of the final
// CSR arrays directly — no per-set intermediate slices. The merge is
// positional (results land in per-layer slots concatenated in plan
// order), so the CSR output is byte-identical at any worker count.
package deps

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"clsacim/internal/nn"
	"clsacim/internal/sets"
)

// SetRef identifies a set and carries the data volume it contributes.
type SetRef struct {
	Layer, Set int
	// Vol is the number of elements of the predecessor set that the
	// depending set actually reads (used by the NoC/GPEU cost models).
	Vol int
}

// Graph is the set-level dependency DAG over a Stage I plan, stored as
// flat CSR arrays (see CSR). Use DepsOf for a per-set SetRef view.
type Graph struct {
	Plan *sets.Plan
	// CSR is the compressed-sparse-row dependency graph (both edge
	// directions); the scheduler and simulator hot paths consume it.
	CSR *CSR
}

// Options configures Build.
type Options struct {
	// Workers bounds the number of layers processed concurrently;
	// 0 means GOMAXPROCS. The output is identical for every value.
	Workers int
}

// Build computes Stage II for plan over graph g with default options.
func Build(g *nn.Graph, plan *sets.Plan) (*Graph, error) {
	return BuildOpt(g, plan, Options{})
}

// layerEdges is one layer's slice of the dependency arrays: flat
// predecessor ids and volumes, with setOff[si] indexing set si's run
// (len(setOff) = set count + 1).
type layerEdges struct {
	setOff []int32
	pred   []int32
	vol    []int32
}

// routeTab is one route evaluated against one consumer layer's set
// grid: the route's axis chains applied to every grid row and column.
// Consumer sets are grid cells, so set (r, c) of the layer reads, via
// this route, exactly the predecessor sets {rows[r]} x {cols[c]}, with
// per-edge volume rowLen * colLen * chan (the per-axis overlap lengths
// with the predecessor's grid).
type routeTab struct {
	base int32 // flat id of the target layer's first set
	pGW  int32 // target layer's grid width
	ch   int32 // channel overlap (constant across the layer's sets)
	// Row r of the consumer grid reaches target grid rows
	// rowPred[rowOff[r]:rowOff[r+1]] with overlap heights rowLen[...];
	// likewise for columns. A dead row/column (its interval went empty
	// mid-chain) has an empty run.
	rowOff, rowPred, rowLen []int32
	colOff, colPred, colLen []int32
}

// buildScratch is the per-worker reusable state.
type buildScratch struct {
	routes []route
	tabs   []routeTab
	ids    []int32 // per-set edge accumulator (flat ids)
	vols   []int32
}

// BuildOpt computes Stage II for plan over graph g. Consumer layers are
// independent given the immutable plan, so they are fanned out over a
// bounded worker pool; per-layer results are merged positionally into
// the CSR, keeping the output deterministic regardless of parallelism.
func BuildOpt(g *nn.Graph, plan *sets.Plan, opt Options) (*Graph, error) {
	nl := len(plan.Layers)
	layerOff := make([]int32, nl+1)
	total := 0
	for li := range plan.Layers {
		layerOff[li] = int32(total)
		total += len(plan.Layers[li].Sets)
	}
	layerOff[nl] = int32(total)

	results := make([]layerEdges, nl)
	errs := make([]error, nl)
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nl {
		workers = nl
	}
	if workers <= 1 {
		var scratch buildScratch
		for li := 0; li < nl; li++ {
			results[li], errs[li] = buildLayer(plan, li, layerOff, &scratch)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				var scratch buildScratch
				for {
					li := int(next.Add(1)) - 1
					if li >= nl {
						return
					}
					results[li], errs[li] = buildLayer(plan, li, layerOff, &scratch)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Graph{Plan: plan, CSR: assembleCSR(plan, layerOff, results)}, nil
}

// buildLayer computes the dependency edges of every set of layer li.
// The layer's receptive-field transform and backward routes are
// compiled once; each route's axis chains are then evaluated once per
// consumer grid row and column (all transforms act on H, W, and C
// independently, and sets are grid cells spanning the full channel
// depth), so the per-set loop is pure table lookup. Edges come out
// sorted by flat predecessor id with duplicates merged at maximum
// volume (a set can be reached over several routes), matching the
// recursive formulation exactly.
func buildLayer(plan *sets.Plan, li int, layerOff []int32, sc *buildScratch) (layerEdges, error) {
	ls := &plan.Layers[li]
	node := ls.Group.Node
	ifm, err := compileIFM(node)
	if err != nil {
		return layerEdges{}, fmt.Errorf("deps: %v set 0: %w", node, err)
	}
	sc.routes, err = compileRoutes(node.Inputs[0], plan, sc.routes[:0])
	if err != nil {
		return layerEdges{}, fmt.Errorf("deps: %v: %w", node, err)
	}
	if ls.GH*ls.GW != len(ls.Sets) {
		return layerEdges{}, fmt.Errorf("deps: %v: %d sets on a %dx%d grid", node, len(ls.Sets), ls.GH, ls.GW)
	}
	if len(sc.tabs) < len(sc.routes) {
		sc.tabs = append(sc.tabs, make([]routeTab, len(sc.routes)-len(sc.tabs))...)
	}
	ntabs := 0
	for ri := range sc.routes {
		if fillTab(&sc.tabs[ntabs], plan, &ifm, &sc.routes[ri], ls, layerOff) {
			ntabs++
		}
	}
	tabs := sc.tabs[:ntabs]

	out := layerEdges{setOff: make([]int32, len(ls.Sets)+1)}
	si := 0
	for r := 0; r < ls.GH; r++ {
		for c := 0; c < ls.GW; c++ {
			out.setOff[si] = int32(len(out.pred))
			si++
			sc.ids, sc.vols = sc.ids[:0], sc.vols[:0]
			for ti := range tabs {
				tab := &tabs[ti]
				ch := int(tab.ch)
				clo, chi := tab.colOff[c], tab.colOff[c+1]
				for x := tab.rowOff[r]; x < tab.rowOff[r+1]; x++ {
					rowBase := tab.base + tab.rowPred[x]*tab.pGW
					oh := int(tab.rowLen[x])
					for y := clo; y < chi; y++ {
						sc.ids = append(sc.ids, rowBase+tab.colPred[y])
						sc.vols = append(sc.vols, int32(oh*int(tab.colLen[y])*ch))
					}
				}
			}
			out.pred, out.vol = mergeEdges(sc.ids, sc.vols, out.pred, out.vol)
		}
	}
	out.setOff[len(ls.Sets)] = int32(len(out.pred))
	return out, nil
}

// fillTab evaluates one route against the consumer layer's grid,
// reusing the tab's slices. It reports false when the route cannot
// contribute any edge (its channel chain went empty).
func fillTab(tab *routeTab, plan *sets.Plan, ifm *ifmXform, rt *route, ls *sets.LayerSets, layerOff []int32) bool {
	pls := &plan.Layers[rt.target]
	tab.base = layerOff[rt.target]
	tab.pGW = int32(pls.GW)

	// Channel chain: constant for the whole layer (sets span the full
	// channel depth).
	outC := ls.Group.Node.OutShape.C
	lo, hi := ifm.cmap(0, outC)
	for si := range rt.steps {
		if hi <= lo {
			return false
		}
		lo, hi = rt.steps[si].cmap(lo, hi)
	}
	predC := pls.Group.Node.OutShape.C
	lo, hi = clampIv(lo, hi, predC)
	if hi <= lo {
		return false
	}
	tab.ch = int32(hi - lo)

	// Row chains: consumer grid row r spans [RowBounds[r], RowBounds[r+1]).
	tab.rowOff = append(tab.rowOff[:0], 0)
	tab.rowPred, tab.rowLen = tab.rowPred[:0], tab.rowLen[:0]
	for r := 0; r < ls.GH; r++ {
		lo, hi := ifm.hmap(ls.RowBounds[r], ls.RowBounds[r+1])
		for si := 0; si < len(rt.steps) && hi > lo; si++ {
			lo, hi = rt.steps[si].hmap(lo, hi)
		}
		if hi > lo {
			p0, p1 := pls.RowRange(lo, hi)
			for p := p0; p < p1; p++ {
				tab.rowPred = append(tab.rowPred, int32(p))
				tab.rowLen = append(tab.rowLen,
					int32(min(hi, pls.RowBounds[p+1])-max(lo, pls.RowBounds[p])))
			}
		}
		tab.rowOff = append(tab.rowOff, int32(len(tab.rowPred)))
	}

	// Column chains.
	tab.colOff = append(tab.colOff[:0], 0)
	tab.colPred, tab.colLen = tab.colPred[:0], tab.colLen[:0]
	for c := 0; c < ls.GW; c++ {
		lo, hi := ifm.wmap(ls.ColBounds[c], ls.ColBounds[c+1])
		for si := 0; si < len(rt.steps) && hi > lo; si++ {
			lo, hi = rt.steps[si].wmap(lo, hi)
		}
		if hi > lo {
			p0, p1 := pls.ColRange(lo, hi)
			for p := p0; p < p1; p++ {
				tab.colPred = append(tab.colPred, int32(p))
				tab.colLen = append(tab.colLen,
					int32(min(hi, pls.ColBounds[p+1])-max(lo, pls.ColBounds[p])))
			}
		}
		tab.colOff = append(tab.colOff, int32(len(tab.colPred)))
	}
	return true
}

// mergeEdges appends the (ids, vols) edge stream to (pred, vol), sorted
// by id with duplicate ids merged at maximum volume. Flat ids are
// layer-major, so this order equals the (Layer, Set) order of the
// recursive formulation.
func mergeEdges(ids, vols []int32, pred, vol []int32) ([]int32, []int32) {
	switch len(ids) {
	case 0:
		return pred, vol
	case 1:
		return append(pred, ids[0]), append(vol, vols[0])
	}
	// The accumulator is mostly sorted already (routes intersect sorted
	// set grids); insertion sort keeps the common small lists cheap.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
			vols[j], vols[j-1] = vols[j-1], vols[j]
		}
	}
	pred = append(pred, ids[0])
	vol = append(vol, vols[0])
	for i := 1; i < len(ids); i++ {
		if ids[i] == pred[len(pred)-1] {
			if vols[i] > vol[len(vol)-1] {
				vol[len(vol)-1] = vols[i]
			}
			continue
		}
		pred = append(pred, ids[i])
		vol = append(vol, vols[i])
	}
	return pred, vol
}

// DepsOf materializes the predecessor list of set si of layer li as
// SetRefs, sorted by (Layer, Set). It allocates per call; it exists for
// tests and tools — hot paths consume the CSR arrays directly.
func (dg *Graph) DepsOf(li, si int) []SetRef {
	c := dg.CSR
	id := c.ID(li, si)
	lo, hi := c.PredOff[id], c.PredOff[id+1]
	if lo == hi {
		return nil
	}
	refs := make([]SetRef, 0, hi-lo)
	for e := lo; e < hi; e++ {
		pl, ps := c.Set(c.Pred[e])
		refs = append(refs, SetRef{Layer: pl, Set: ps, Vol: int(c.PredVol[e])})
	}
	return refs
}

// NumSets returns the total number of sets in the dependency graph.
func (dg *Graph) NumSets() int { return dg.CSR.NumSets() }

// NumEdges returns the total number of dependency edges.
func (dg *Graph) NumEdges() int { return dg.CSR.NumEdges() }
