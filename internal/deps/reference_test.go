package deps

// This file preserves the original recursive Stage II formulation as a
// test-only reference: requiredIFM computes a set's receptive field and
// walkBack pulls it backward through the non-base operators node by
// node, allocating intermediate regions as it goes. The production
// builder (deps.go/xform.go) compiles the same chains into flattened
// route transforms once per layer; referenceBuild and the differential
// test below pin the two implementations to identical CSR output.

import (
	"fmt"
	"slices"
	"testing"

	"clsacim/internal/models"
	"clsacim/internal/nn"
	"clsacim/internal/region"
	"clsacim/internal/sets"
)

type srcRegion struct {
	src *nn.Node
	box region.Box
}

// requiredIFM returns the IFM regions a base layer needs to compute the
// OFM box (the intra-layer dependency of paper Stage I). Convolutions
// need the receptive field; Dense needs the whole input.
func requiredIFM(n *nn.Node, out region.Box) ([]srcRegion, error) {
	in := n.Inputs[0]
	s := in.OutShape
	switch op := n.Op.(type) {
	case *nn.Conv2D:
		if op.Pad.Any() {
			return nil, fmt.Errorf("conv still padded; canonicalize first")
		}
		rf := region.NewBox(
			out.H0*op.SH, (out.H1-1)*op.SH+op.KH,
			out.W0*op.SW, (out.W1-1)*op.SW+op.KW,
			0, s.C,
		).ClampTo(s.H, s.W, s.C)
		return []srcRegion{{in, rf}}, nil
	case *nn.DepthwiseConv2D:
		if op.Pad.Any() {
			return nil, fmt.Errorf("depthwise conv still padded; canonicalize first")
		}
		// Depthwise is channel-preserving: output channels [C0, C1)
		// read exactly input channels [C0, C1).
		rf := region.NewBox(
			out.H0*op.SH, (out.H1-1)*op.SH+op.KH,
			out.W0*op.SW, (out.W1-1)*op.SW+op.KW,
			out.C0, out.C1,
		).ClampTo(s.H, s.W, s.C)
		return []srcRegion{{in, rf}}, nil
	case *nn.Dense:
		return []srcRegion{{in, region.Full(s.H, s.W, s.C)}}, nil
	default:
		return nil, fmt.Errorf("%v is not a base layer", n)
	}
}

// walkBack propagates a required region backward from node n (meaning:
// "this region of n's output is needed") until it reaches base layers or
// the graph input, appending intersected predecessor sets to acc.
func walkBack(n *nn.Node, r region.Box, plan *sets.Plan, acc []SetRef) ([]SetRef, error) {
	if r.Empty() {
		return acc, nil
	}
	if n.Kind() == nn.OpInput {
		return acc, nil // network input: available at t = 0
	}
	if li, ok := plan.ByNode[n]; ok {
		ls := &plan.Layers[li]
		for _, si := range ls.Intersecting(r, nil) {
			iv := ls.Sets[si].Box.Intersect(r)
			if iv.Empty() {
				continue
			}
			acc = append(acc, SetRef{Layer: li, Set: si, Vol: iv.Volume()})
		}
		return acc, nil
	}
	if n.IsBase() {
		return acc, fmt.Errorf("base layer %v is not in the set plan (unmapped)", n)
	}
	srcs, err := backward(n, r)
	if err != nil {
		return acc, err
	}
	for _, s := range srcs {
		if acc, err = walkBack(s.src, s.box, plan, acc); err != nil {
			return acc, err
		}
	}
	return acc, nil
}

// backward maps a region of n's output space to regions of its inputs'
// output spaces (exact for every non-base operator).
func backward(n *nn.Node, r region.Box) ([]srcRegion, error) {
	in := n.Inputs
	switch op := n.Op.(type) {
	case *nn.BiasAdd, *nn.Activation, *nn.BatchNorm:
		return []srcRegion{{in[0], r}}, nil

	case *nn.Pad:
		s := in[0].OutShape
		return []srcRegion{{in[0],
			r.Translate(-op.Pad.Top, -op.Pad.Left, 0).ClampTo(s.H, s.W, s.C)}}, nil

	case *nn.MaxPool:
		s := in[0].OutShape
		b := region.NewBox(
			r.H0*op.SH-op.Pad.Top, (r.H1-1)*op.SH+op.KH-op.Pad.Top,
			r.W0*op.SW-op.Pad.Left, (r.W1-1)*op.SW+op.KW-op.Pad.Left,
			r.C0, r.C1,
		).ClampTo(s.H, s.W, s.C)
		return []srcRegion{{in[0], b}}, nil

	case *nn.AvgPool:
		s := in[0].OutShape
		if op.Global {
			return []srcRegion{{in[0], region.Full(s.H, s.W, s.C).
				Intersect(region.NewBox(0, s.H, 0, s.W, r.C0, r.C1))}}, nil
		}
		b := region.NewBox(
			r.H0*op.SH, (r.H1-1)*op.SH+op.KH,
			r.W0*op.SW, (r.W1-1)*op.SW+op.KW,
			r.C0, r.C1,
		).ClampTo(s.H, s.W, s.C)
		return []srcRegion{{in[0], b}}, nil

	case *nn.Concat:
		var out []srcRegion
		off := 0
		for _, src := range in {
			s := src.OutShape
			var local region.Box
			switch op.Axis {
			case nn.AxisH:
				local = r.Intersect(region.NewBox(off, off+s.H, r.W0, r.W1, r.C0, r.C1)).
					Translate(-off, 0, 0)
				off += s.H
			case nn.AxisW:
				local = r.Intersect(region.NewBox(r.H0, r.H1, off, off+s.W, r.C0, r.C1)).
					Translate(0, -off, 0)
				off += s.W
			case nn.AxisC:
				local = r.Intersect(region.NewBox(r.H0, r.H1, r.W0, r.W1, off, off+s.C)).
					Translate(0, 0, -off)
				off += s.C
			}
			if !local.Empty() {
				out = append(out, srcRegion{src, local})
			}
		}
		return out, nil

	case *nn.Add:
		return []srcRegion{{in[0], r}, {in[1], r}}, nil

	case *nn.UpSample:
		f := op.Factor
		b := region.NewBox(
			r.H0/f, (r.H1+f-1)/f,
			r.W0/f, (r.W1+f-1)/f,
			r.C0, r.C1,
		)
		return []srcRegion{{in[0], b}}, nil

	case *nn.Slice:
		return []srcRegion{{in[0], r.Translate(op.Box.H0, op.Box.W0, op.Box.C0)}}, nil

	case *nn.Flatten:
		// A flattened channel range maps to a non-rectangular HWC set;
		// conservatively require the whole input.
		s := in[0].OutShape
		return []srcRegion{{in[0], region.Full(s.H, s.W, s.C)}}, nil

	default:
		return nil, fmt.Errorf("deps: no backward rule for %v", n.Kind())
	}
}

// dedupe sorts refs by (Layer, Set) and merges duplicates (a set can be
// reached over several graph paths), keeping the maximum volume.
func dedupe(refs []SetRef) []SetRef {
	if len(refs) == 0 {
		return nil
	}
	slices.SortFunc(refs, func(a, b SetRef) int {
		if a.Layer != b.Layer {
			return a.Layer - b.Layer
		}
		return a.Set - b.Set
	})
	n := 0
	for _, r := range refs[1:] {
		if refs[n].Layer == r.Layer && refs[n].Set == r.Set {
			if r.Vol > refs[n].Vol {
				refs[n].Vol = r.Vol
			}
			continue
		}
		n++
		refs[n] = r
	}
	return refs[:n+1]
}

// referenceDeps computes the per-set dependency lists with the original
// recursive walk.
func referenceDeps(t *testing.T, plan *sets.Plan) [][][]SetRef {
	t.Helper()
	deps := make([][][]SetRef, len(plan.Layers))
	for li := range plan.Layers {
		ls := &plan.Layers[li]
		deps[li] = make([][]SetRef, len(ls.Sets))
		node := ls.Group.Node
		for si, set := range ls.Sets {
			req, err := requiredIFM(node, set.Box)
			if err != nil {
				t.Fatalf("reference: %v set %d: %v", node, si, err)
			}
			var acc []SetRef
			for _, r := range req {
				if acc, err = walkBack(r.src, r.box, plan, acc); err != nil {
					t.Fatalf("reference: %v set %d: %v", node, si, err)
				}
			}
			deps[li][si] = dedupe(acc)
		}
	}
	return deps
}

// TestBuildMatchesReference: the route-compiled parallel builder must
// produce exactly the dependency relation of the recursive reference —
// same predecessors, same order, same volumes — across topologies
// (branches, concat trees, upsampling, depthwise, residual adds,
// dense heads) and granularities.
func TestBuildMatchesReference(t *testing.T) {
	cases := []struct {
		id         models.ID
		size       int
		targetSets int
		extraPEs   int
	}{
		{models.TinyBranchNet, 16, 4, 0},
		{models.TinyBranchNet, 16, sets.FineGranularity, 0},
		{models.TinyDWNet, 16, 4, 0},
		{models.TinyYOLOv4, 64, 3, 0},
		{models.TinyYOLOv4, 64, 13, 8},
		{models.TinyMLP, 8, 4, 0},
		{models.ResNet50, 32, 3, 0},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%s/%d", c.id, c.targetSets), func(t *testing.T) {
			_, dg := buildDeps(t, c.id, c.size, c.targetSets, c.extraPEs)
			want := referenceDeps(t, dg.Plan)
			for li := range want {
				for si := range want[li] {
					got := dg.DepsOf(li, si)
					if !slices.Equal(got, want[li][si]) {
						t.Fatalf("layer %d set %d: deps diverge\n got %v\nwant %v",
							li, si, got, want[li][si])
					}
				}
			}
		})
	}
}
