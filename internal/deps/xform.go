package deps

import (
	"fmt"

	"clsacim/internal/nn"
	"clsacim/internal/sets"
)

// This file hoists the Stage II backward walk out of the per-set loop.
// The recursive formulation (see reference_test.go, which keeps the
// original implementation as a differential oracle) re-traverses the
// non-base operator chain between a consumer layer and each of its
// predecessor base layers once per set, allocating intermediate
// []srcRegion slices at every node. But the chain itself depends only
// on the pair of layers, never on the set: the per-set input is just a
// box. So Build compiles, once per consumer layer, every backward path
// from the layer's IFM to a reachable predecessor base layer into a
// route — a flattened sequence of closed-form box transforms — and the
// per-set work collapses to "apply each route's steps to the set's
// receptive field", with zero allocations and no graph traversal.

// stepKind enumerates the closed-form box transforms a non-base
// operator contributes to a backward route.
type stepKind uint8

const (
	// stepTranslate shifts the box by (dh, dw, dc) and clamps it to the
	// source volume (Pad and Slice backward; the clamp is a no-op for
	// Slice but uniform application keeps the interpreter branch-free).
	stepTranslate stepKind = iota
	// stepPool is the pooling/window backward map: the box covering all
	// input positions any output position in the box reads, offset by
	// the pooling padding and clamped (MaxPool, strided AvgPool).
	stepPool
	// stepFullHW widens the box to the full spatial extent, keeping the
	// channel range (global AvgPool backward).
	stepFullHW
	// stepFull replaces the box with the entire source volume (Flatten
	// backward: a flattened range is not rectangular in HWC, so the
	// whole input is conservatively required).
	stepFull
	// stepConcat restricts the box to one concat operand's span along
	// the concat axis and rebases it to operand-local coordinates.
	stepConcat
	// stepUpSample divides the box by the upsampling factor (ceiling on
	// the upper bounds).
	stepUpSample
)

// tstep is one flattened backward transform. Identity operators
// (BiasAdd, Activation, BatchNorm, Add) contribute no step at all.
type tstep struct {
	kind stepKind
	// dh, dw, dc translate the box (stepTranslate).
	dh, dw, dc int
	// sh, sw, kh, kw, oh, ow are the pooling strides, kernel, and
	// padding offsets (stepPool).
	sh, sw, kh, kw, oh, ow int
	// h, w, c is the source volume the result is clamped to.
	h, w, c int
	// axis, lo, hi select the operand span [lo, hi) on the concat axis
	// (stepConcat).
	axis   nn.Axis
	lo, hi int
	// f is the upsampling factor (stepUpSample).
	f int
}

// Every transform here — and every receptive-field transform — acts on
// the H, W, and C intervals of a box independently, so routes are
// applied one axis at a time: the H chain runs once per consumer grid
// row, the W chain once per grid column, and the C chain once per
// route (sets span the full channel depth). A box is empty as soon as
// any single axis interval is empty, so per-axis ever-empty tracking
// reproduces the recursive walk's "stop on empty box" rule exactly:
// the caller must stop a chain at the first empty interval — a later
// step could re-inflate it (a pool window is wider than its stride),
// which would fabricate dependencies.

// clampIv intersects the interval [lo, hi) with [0, n).
func clampIv(lo, hi, n int) (int, int) {
	return max(lo, 0), min(hi, n)
}

// hmap maps the H interval [lo, hi) of the step's output space to the
// input-space H interval required to produce it.
func (s *tstep) hmap(lo, hi int) (int, int) {
	switch s.kind {
	case stepTranslate:
		return clampIv(lo+s.dh, hi+s.dh, s.h)
	case stepPool:
		return clampIv(lo*s.sh-s.oh, (hi-1)*s.sh+s.kh-s.oh, s.h)
	case stepFullHW, stepFull:
		return 0, s.h
	case stepConcat:
		if s.axis == nn.AxisH {
			lo, hi = max(lo, s.lo), min(hi, s.hi)
			return lo - s.lo, hi - s.lo
		}
		return lo, hi
	case stepUpSample:
		return lo / s.f, (hi + s.f - 1) / s.f
	}
	return lo, hi
}

// wmap is hmap for the W axis.
func (s *tstep) wmap(lo, hi int) (int, int) {
	switch s.kind {
	case stepTranslate:
		return clampIv(lo+s.dw, hi+s.dw, s.w)
	case stepPool:
		return clampIv(lo*s.sw-s.ow, (hi-1)*s.sw+s.kw-s.ow, s.w)
	case stepFullHW, stepFull:
		return 0, s.w
	case stepConcat:
		if s.axis == nn.AxisW {
			lo, hi = max(lo, s.lo), min(hi, s.hi)
			return lo - s.lo, hi - s.lo
		}
		return lo, hi
	case stepUpSample:
		return lo / s.f, (hi + s.f - 1) / s.f
	}
	return lo, hi
}

// cmap is hmap for the C axis (pooling and upsampling are spatial, so
// they pass the channel range through, clamped to the source volume
// where the box form clamped).
func (s *tstep) cmap(lo, hi int) (int, int) {
	switch s.kind {
	case stepTranslate:
		return clampIv(lo+s.dc, hi+s.dc, s.c)
	case stepPool, stepFullHW:
		return clampIv(lo, hi, s.c)
	case stepFull:
		return 0, s.c
	case stepConcat:
		if s.axis == nn.AxisC {
			lo, hi = max(lo, s.lo), min(hi, s.hi)
			return lo - s.lo, hi - s.lo
		}
		return lo, hi
	}
	return lo, hi
}

// route is one compiled backward path from a consumer layer's IFM to a
// predecessor base layer: applying steps in order to a required-IFM box
// yields the box of the target layer's OFM space the set reads through
// this path. Several routes may share a target (diamond topologies);
// their contributions are merged per set with max volume, exactly like
// the recursive walk.
type route struct {
	target int // plan layer index of the predecessor base layer
	steps  []tstep
}

// ifmKind selects the consumer layer's own receptive-field transform
// (OFM set box -> required IFM box), hoisted per layer as well.
type ifmKind uint8

const (
	ifmConv      ifmKind = iota // receptive field, all input channels
	ifmDepthwise                // receptive field, set's own channels
	ifmDense                    // whole input
)

// ifmXform is a consumer base layer's precompiled intra-layer transform.
type ifmXform struct {
	kind           ifmKind
	sh, sw, kh, kw int
	h, w, c        int // IFM volume
}

// hmap returns the IFM H interval required to compute the OFM H
// interval [lo, hi).
func (x *ifmXform) hmap(lo, hi int) (int, int) {
	if x.kind == ifmDense {
		return 0, x.h
	}
	return clampIv(lo*x.sh, (hi-1)*x.sh+x.kh, x.h)
}

// wmap is hmap for the W axis.
func (x *ifmXform) wmap(lo, hi int) (int, int) {
	if x.kind == ifmDense {
		return 0, x.w
	}
	return clampIv(lo*x.sw, (hi-1)*x.sw+x.kw, x.w)
}

// cmap is hmap for the C axis: convolutions read every input channel,
// depthwise reads exactly its own channel range, Dense the whole input.
func (x *ifmXform) cmap(lo, hi int) (int, int) {
	if x.kind == ifmDepthwise {
		return clampIv(lo, hi, x.c)
	}
	return 0, x.c
}

// compileIFM builds the receptive-field transform of a base layer.
func compileIFM(n *nn.Node) (ifmXform, error) {
	s := n.Inputs[0].OutShape
	switch op := n.Op.(type) {
	case *nn.Conv2D:
		if op.Pad.Any() {
			return ifmXform{}, fmt.Errorf("conv still padded; canonicalize first")
		}
		return ifmXform{kind: ifmConv, sh: op.SH, sw: op.SW, kh: op.KH, kw: op.KW,
			h: s.H, w: s.W, c: s.C}, nil
	case *nn.DepthwiseConv2D:
		if op.Pad.Any() {
			return ifmXform{}, fmt.Errorf("depthwise conv still padded; canonicalize first")
		}
		return ifmXform{kind: ifmDepthwise, sh: op.SH, sw: op.SW, kh: op.KH, kw: op.KW,
			h: s.H, w: s.W, c: s.C}, nil
	case *nn.Dense:
		return ifmXform{kind: ifmDense, h: s.H, w: s.W, c: s.C}, nil
	default:
		return ifmXform{}, fmt.Errorf("%v is not a base layer", n)
	}
}

// compileRoutes enumerates every backward path from node src (a
// consumer layer's IFM producer) to the base layers of the plan,
// flattening the non-base operators along each path into steps. The
// enumeration mirrors the recursive walk exactly: paths through
// diamonds are kept separate (their per-set contributions are merged by
// volume later), and a base layer missing from the plan is an error.
func compileRoutes(src *nn.Node, plan *sets.Plan, routes []route) ([]route, error) {
	var steps []tstep
	var dfs func(n *nn.Node) error
	dfs = func(n *nn.Node) error {
		if n.Kind() == nn.OpInput {
			return nil // network input: available at t = 0, no dependency
		}
		if li, ok := plan.ByNode[n]; ok {
			cp := make([]tstep, len(steps))
			copy(cp, steps)
			routes = append(routes, route{target: li, steps: cp})
			return nil
		}
		if n.IsBase() {
			return fmt.Errorf("base layer %v is not in the set plan (unmapped)", n)
		}
		in := n.Inputs
		push := func(s tstep, next *nn.Node) error {
			steps = append(steps, s)
			err := dfs(next)
			steps = steps[:len(steps)-1]
			return err
		}
		switch op := n.Op.(type) {
		case *nn.BiasAdd, *nn.Activation, *nn.BatchNorm:
			return dfs(in[0])

		case *nn.Pad:
			s := in[0].OutShape
			return push(tstep{kind: stepTranslate, dh: -op.Pad.Top, dw: -op.Pad.Left,
				h: s.H, w: s.W, c: s.C}, in[0])

		case *nn.MaxPool:
			s := in[0].OutShape
			return push(tstep{kind: stepPool,
				sh: op.SH, sw: op.SW, kh: op.KH, kw: op.KW,
				oh: op.Pad.Top, ow: op.Pad.Left,
				h: s.H, w: s.W, c: s.C}, in[0])

		case *nn.AvgPool:
			s := in[0].OutShape
			if op.Global {
				return push(tstep{kind: stepFullHW, h: s.H, w: s.W, c: s.C}, in[0])
			}
			return push(tstep{kind: stepPool,
				sh: op.SH, sw: op.SW, kh: op.KH, kw: op.KW,
				h: s.H, w: s.W, c: s.C}, in[0])

		case *nn.Concat:
			off := 0
			for _, srcN := range in {
				s := srcN.OutShape
				extent := 0
				switch op.Axis {
				case nn.AxisH:
					extent = s.H
				case nn.AxisW:
					extent = s.W
				case nn.AxisC:
					extent = s.C
				}
				if err := push(tstep{kind: stepConcat, axis: op.Axis,
					lo: off, hi: off + extent}, srcN); err != nil {
					return err
				}
				off += extent
			}
			return nil

		case *nn.Add:
			if err := dfs(in[0]); err != nil {
				return err
			}
			return dfs(in[1])

		case *nn.UpSample:
			return push(tstep{kind: stepUpSample, f: op.Factor}, in[0])

		case *nn.Slice:
			s := in[0].OutShape
			return push(tstep{kind: stepTranslate,
				dh: op.Box.H0, dw: op.Box.W0, dc: op.Box.C0,
				h: s.H, w: s.W, c: s.C}, in[0])

		case *nn.Flatten:
			s := in[0].OutShape
			return push(tstep{kind: stepFull, h: s.H, w: s.W, c: s.C}, in[0])

		default:
			return fmt.Errorf("deps: no backward rule for %v", n.Kind())
		}
	}
	if err := dfs(src); err != nil {
		return nil, err
	}
	return routes, nil
}
