package deps

import (
	"fmt"
	"runtime"
	"testing"

	"clsacim/internal/models"
	"clsacim/internal/nn"
	"clsacim/internal/sets"
)

// TestBuildDeterministic: Build must produce byte-identical CSR arrays
// regardless of how the per-layer fan-out is scheduled — across worker
// counts, across repeated runs, and across GOMAXPROCS settings. The
// positional merge makes this structural, but a race or a
// scheduling-order dependence would show up here (run with -race).
func TestBuildDeterministic(t *testing.T) {
	cases := []struct {
		id         models.ID
		size       int
		targetSets int
	}{
		{models.TinyYOLOv4, 416, 26},
		{models.TinyYOLOv4, 416, sets.FineGranularity},
		{models.ResNet50, 224, 26},
		{models.ResNet50, 224, sets.FineGranularity},
	}
	if testing.Short() {
		cases = cases[:1]
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, c := range cases {
		label := fmt.Sprintf("%s/%d", c.id, c.targetSets)
		if c.targetSets == sets.FineGranularity {
			label = fmt.Sprintf("%s/fine", c.id)
		}
		t.Run(label, func(t *testing.T) {
			g, plan := planFor(t, c.id, c.size, c.targetSets)
			runtime.GOMAXPROCS(1)
			serial, err := BuildOpt(g, plan, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, gmp := range []int{1, 4, 8} {
				runtime.GOMAXPROCS(gmp)
				for _, workers := range []int{0, 1, 2, 7} {
					for run := 0; run < 2; run++ {
						dg, err := BuildOpt(g, plan, Options{Workers: workers})
						if err != nil {
							t.Fatal(err)
						}
						if !dg.CSR.Equal(serial.CSR) {
							t.Fatalf("GOMAXPROCS=%d workers=%d run=%d: CSR diverges from serial build",
								gmp, workers, run)
						}
					}
				}
			}
		})
	}
}

// planFor lowers a model through Stage I (no duplication) for the
// determinism runs; the plan is built once and shared across all Build
// invocations, like in the engine's compile pipeline.
func planFor(t *testing.T, id models.ID, inputSize, targetSets int) (*nn.Graph, *sets.Plan) {
	t.Helper()
	g, dg := buildDeps(t, id, inputSize, targetSets, 0)
	return g, dg.Plan
}
