package deps

import (
	"testing"

	"clsacim/internal/frontend"
	"clsacim/internal/im2col"
	"clsacim/internal/mapping"
	"clsacim/internal/models"
	"clsacim/internal/sets"
)

func buildGraph(t *testing.T, id models.ID, inputSize, targetSets int) *Graph {
	t.Helper()
	g := models.MustBuild(id, models.Options{InputSize: inputSize})
	if _, err := frontend.Canonicalize(g, frontend.Options{}); err != nil {
		t.Fatal(err)
	}
	plan, err := mapping.Analyze(g, im2col.PEDims{Rows: 256, Cols: 256})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := mapping.Solve(plan, plan.MinPEs, mapping.SolverNone)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.Apply(g, plan, sol, plan.MinPEs)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sets.Determine(g, m, sets.Options{TargetSets: targetSets})
	if err != nil {
		t.Fatal(err)
	}
	dg, err := Build(g, sp)
	if err != nil {
		t.Fatal(err)
	}
	return dg
}

// TestCSRMirrorsDeps: the flat CSR arrays must encode exactly the
// per-set dependency lists of the recursive reference implementation in
// both directions, with matching volumes and sorted runs, across models
// and granularities.
func TestCSRMirrorsDeps(t *testing.T) {
	cases := []struct {
		id         models.ID
		size       int
		targetSets int
	}{
		{models.TinyBranchNet, 16, 4},
		{models.TinyYOLOv4, 416, 26},
		{models.TinyConvNet, 32, sets.FineGranularity},
		{models.TinyMLP, 8, 4},
	}
	for _, c := range cases {
		dg := buildGraph(t, c.id, c.size, c.targetSets)
		csr := dg.CSR
		if csr == nil {
			t.Fatalf("%s: Build left CSR nil", c.id)
		}
		if csr.NumLayers() != len(dg.Plan.Layers) {
			t.Fatalf("%s: CSR has %d layers, plan %d", c.id, csr.NumLayers(), len(dg.Plan.Layers))
		}
		if csr.NumSets() != dg.NumSets() || csr.NumEdges() != dg.NumEdges() {
			t.Fatalf("%s: CSR %d sets / %d edges, graph %d / %d",
				c.id, csr.NumSets(), csr.NumEdges(), dg.NumSets(), dg.NumEdges())
		}
		// Forward edges match the reference lists exactly (same order:
		// sorted by flat id).
		ref := referenceDeps(t, dg.Plan)
		for li := range ref {
			for si, refs := range ref[li] {
				id := csr.ID(li, si)
				if gl, gs := csr.Set(id); gl != li || gs != si {
					t.Fatalf("%s: ID/Set round trip broke at L%d/S%d", c.id, li, si)
				}
				if csr.Cycles[id] != dg.Plan.Layers[li].Sets[si].Cycles {
					t.Fatalf("%s: cycles mismatch at L%d/S%d", c.id, li, si)
				}
				lo, hi := csr.PredOff[id], csr.PredOff[id+1]
				if int(hi-lo) != len(refs) {
					t.Fatalf("%s: L%d/S%d has %d CSR preds, %d refs", c.id, li, si, hi-lo, len(refs))
				}
				for k, r := range refs {
					if csr.Pred[lo+int32(k)] != csr.ID(r.Layer, r.Set) {
						t.Fatalf("%s: L%d/S%d pred %d mismatch", c.id, li, si, k)
					}
					if int(csr.PredVol[lo+int32(k)]) != r.Vol {
						t.Fatalf("%s: L%d/S%d pred %d volume mismatch", c.id, li, si, k)
					}
				}
			}
		}
		// Successor arrays are the exact transpose: every (pred, succ,
		// vol) triple appears once on each side.
		type edge struct {
			p, s int32
			v    int32
		}
		fwd := make(map[edge]int)
		for id := int32(0); int(id) < csr.NumSets(); id++ {
			for e := csr.PredOff[id]; e < csr.PredOff[id+1]; e++ {
				fwd[edge{csr.Pred[e], id, csr.PredVol[e]}]++
			}
		}
		for id := int32(0); int(id) < csr.NumSets(); id++ {
			prev := int32(-1)
			for e := csr.SuccOff[id]; e < csr.SuccOff[id+1]; e++ {
				if csr.Succ[e] <= prev {
					t.Fatalf("%s: successors of %d not strictly ascending", c.id, id)
				}
				prev = csr.Succ[e]
				k := edge{id, csr.Succ[e], csr.SuccVol[e]}
				if fwd[k] == 0 {
					t.Fatalf("%s: successor edge %v has no forward twin", c.id, k)
				}
				fwd[k]--
			}
		}
		for k, n := range fwd {
			if n != 0 {
				t.Fatalf("%s: forward edge %v missing from successor arrays", c.id, k)
			}
		}
	}
}
