// Package faultinject is a deterministic, seeded fault-injection layer
// for the serving stack: an http middleware that, with configured
// probabilities, delays requests, answers them with injected 503s,
// panics inside the handler chain, or aborts the connection without a
// response. It exists to exercise the resilience machinery — panic
// recovery, load shedding, the retrying client — under hostile
// conditions that are reproducible: the fault decision sequence is
// drawn from one seeded splitmix64 generator, so a given seed produces
// the same sequence of fault draws on every run (the mapping of draws
// to requests follows arrival order).
//
// It is used two ways: wrapped around a handler directly in tests
// (Config.Middleware), and flag-gated in cmd/clsaserved (-faults), so
// chaos runs can drive a real daemon over a real socket.
package faultinject

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Config describes the fault mix. All rates are probabilities in
// [0, 1] and independent: each request first draws for latency, then
// for a connection drop, then for a panic, then for an injected error.
// The zero Config injects nothing.
type Config struct {
	// Seed drives the deterministic fault sequence (0 is a valid seed).
	Seed uint64
	// LatencyRate delays a request by a uniform duration in
	// [LatencyMin, LatencyMax] before it reaches the handler.
	LatencyRate            float64
	LatencyMin, LatencyMax time.Duration
	// ErrorRate answers the request with an injected 503 (JSON
	// envelope, code "injected", Retry-After: 1) without invoking the
	// handler — a transient infrastructure failure as seen by clients.
	ErrorRate float64
	// PanicRate panics inside the handler chain. Under the serve
	// package's recovery middleware this becomes a 500 (code
	// "internal") and the daemon survives.
	PanicRate float64
	// DropRate aborts the connection without writing a response
	// (panic(http.ErrAbortHandler), which recovery middleware must pass
	// through) — the client sees a connection reset / unexpected EOF.
	DropRate float64
}

// Enabled reports whether any fault can fire.
func (c Config) Enabled() bool {
	return c.LatencyRate > 0 || c.ErrorRate > 0 || c.PanicRate > 0 || c.DropRate > 0
}

// Validate rejects rates outside [0, 1] and inverted latency bounds.
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"latency", c.LatencyRate},
		{"error", c.ErrorRate},
		{"panic", c.PanicRate},
		{"drop", c.DropRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faultinject: %s rate %g outside [0, 1]", r.name, r.v)
		}
	}
	if c.LatencyMin < 0 || c.LatencyMax < c.LatencyMin {
		return fmt.Errorf("faultinject: invalid latency range [%v, %v]", c.LatencyMin, c.LatencyMax)
	}
	return nil
}

// Parse reads a compact flag spec: comma-separated key=value pairs
//
//	seed=7,error=0.1,panic=0.02,drop=0.05,latency=0.3:1ms:20ms
//
// where latency takes rate:min:max. Unknown keys are errors; an empty
// spec is the zero Config.
func Parse(spec string) (Config, error) {
	var c Config
	if strings.TrimSpace(spec) == "" {
		return c, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Config{}, fmt.Errorf("faultinject: %q is not key=value", kv)
		}
		var err error
		switch key {
		case "seed":
			c.Seed, err = strconv.ParseUint(val, 10, 64)
		case "error":
			c.ErrorRate, err = strconv.ParseFloat(val, 64)
		case "panic":
			c.PanicRate, err = strconv.ParseFloat(val, 64)
		case "drop":
			c.DropRate, err = strconv.ParseFloat(val, 64)
		case "latency":
			parts := strings.Split(val, ":")
			if len(parts) != 3 {
				return Config{}, fmt.Errorf("faultinject: latency wants rate:min:max, have %q", val)
			}
			if c.LatencyRate, err = strconv.ParseFloat(parts[0], 64); err != nil {
				break
			}
			if c.LatencyMin, err = time.ParseDuration(parts[1]); err != nil {
				break
			}
			c.LatencyMax, err = time.ParseDuration(parts[2])
		default:
			return Config{}, fmt.Errorf("faultinject: unknown key %q", key)
		}
		if err != nil {
			return Config{}, fmt.Errorf("faultinject: parsing %q: %w", kv, err)
		}
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Injector is the stateful fault source: one seeded generator shared by
// every request through the middleware. Safe for concurrent use.
type Injector struct {
	cfg Config

	mu    sync.Mutex
	state uint64

	// Counters report what actually fired, for test assertions and the
	// daemon's shutdown log.
	delays, errors, panics, drops int64
}

// NewInjector builds an Injector for cfg.
func NewInjector(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{cfg: cfg, state: cfg.Seed}, nil
}

// Counts returns how many faults of each kind have fired.
func (in *Injector) Counts() (delays, errors, panics, drops int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.delays, in.errors, in.panics, in.drops
}

// splitmix64: tiny, well-distributed, and dependency-free — the same
// generator internal/stream uses for arrival processes.
func (in *Injector) next() uint64 {
	in.state += 0x9e3779b97f4a7c15
	z := in.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (in *Injector) unit() float64 {
	return float64(in.next()>>11) / (1 << 53)
}

// plan is one request's fault decision, drawn atomically so the
// sequence stays deterministic under concurrent requests.
type plan struct {
	delay               time.Duration
	err, panicF, dropsF bool
}

func (in *Injector) draw() plan {
	in.mu.Lock()
	defer in.mu.Unlock()
	var p plan
	c := in.cfg
	if c.LatencyRate > 0 && in.unit() < c.LatencyRate {
		span := c.LatencyMax - c.LatencyMin
		p.delay = c.LatencyMin + time.Duration(in.unit()*float64(span))
		in.delays++
	}
	if c.DropRate > 0 && in.unit() < c.DropRate {
		p.dropsF = true
		in.drops++
		return p
	}
	if c.PanicRate > 0 && in.unit() < c.PanicRate {
		p.panicF = true
		in.panics++
		return p
	}
	if c.ErrorRate > 0 && in.unit() < c.ErrorRate {
		p.err = true
		in.errors++
	}
	return p
}

// Middleware wraps next with the injector's fault plan. Health probes
// (/healthz) are exempt so liveness checks stay reliable while every
// serving endpoint is under fire.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !in.cfg.Enabled() || r.URL.Path == "/healthz" {
			next.ServeHTTP(w, r)
			return
		}
		p := in.draw()
		if p.delay > 0 {
			select {
			case <-time.After(p.delay):
			case <-r.Context().Done():
			}
		}
		switch {
		case p.dropsF:
			// net/http aborts the connection on ErrAbortHandler without
			// logging a stack trace; recovery middleware re-panics it.
			panic(http.ErrAbortHandler)
		case p.panicF:
			panic("faultinject: injected panic")
		case p.err:
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error": "faultinject: injected unavailability", "code": "injected"}`)
		default:
			next.ServeHTTP(w, r)
		}
	})
}

// Middleware is the one-shot convenience for tests: a fresh Injector
// around next. It panics on an invalid config (test wiring is static).
func Middleware(cfg Config, next http.Handler) http.Handler {
	in, err := NewInjector(cfg)
	if err != nil {
		panic(err)
	}
	return in.Middleware(next)
}
