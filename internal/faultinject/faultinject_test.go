package faultinject

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestParse(t *testing.T) {
	cfg, err := Parse("seed=7,error=0.1,panic=0.02,drop=0.05,latency=0.3:1ms:20ms")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed: 7, ErrorRate: 0.1, PanicRate: 0.02, DropRate: 0.05,
		LatencyRate: 0.3, LatencyMin: time.Millisecond, LatencyMax: 20 * time.Millisecond,
	}
	if cfg != want {
		t.Errorf("Parse = %+v, want %+v", cfg, want)
	}
	if cfg, err := Parse(""); err != nil || cfg.Enabled() {
		t.Errorf("empty spec = %+v, %v; want zero config, nil", cfg, err)
	}
	for _, bad := range []string{
		"bogus=1", "error=2", "error=-0.5", "latency=0.5:10ms:1ms",
		"latency=0.5", "seed", "panic=x",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted an invalid spec", bad)
		}
	}
}

func TestDeterministicSequence(t *testing.T) {
	cfg := Config{Seed: 42, ErrorRate: 0.3, PanicRate: 0.1, DropRate: 0.1}
	seq := func() []plan {
		in, err := NewInjector(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]plan, 64)
		for i := range out {
			out[i] = in.draw()
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between runs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// The mix is probabilistic but the seeded sequence is fixed: with
	// these rates at least one of each fault kind fires in 64 draws.
	var errs, panics, drops int
	for _, p := range a {
		if p.err {
			errs++
		}
		if p.panicF {
			panics++
		}
		if p.dropsF {
			drops++
		}
	}
	if errs == 0 || panics == 0 || drops == 0 {
		t.Errorf("64 draws fired errors=%d panics=%d drops=%d, want all kinds", errs, panics, drops)
	}
}

func TestMiddlewareInjectsError(t *testing.T) {
	// ErrorRate 1: every request is answered 503 without reaching the
	// handler, with Retry-After set.
	reached := false
	h := Middleware(Config{ErrorRate: 1}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reached = true
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("injected 503 missing Retry-After")
	}
	if reached {
		t.Error("handler ran despite injected error")
	}
}

func TestMiddlewareExemptsHealthz(t *testing.T) {
	h := Middleware(Config{ErrorRate: 1, PanicRate: 1, DropRate: 1},
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
		}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status = %d under full fault injection, want 200", rec.Code)
	}
}

func TestMiddlewarePanics(t *testing.T) {
	h := Middleware(Config{PanicRate: 1}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer func() {
		if p := recover(); p == nil {
			t.Error("injected panic did not propagate")
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
}

func TestMiddlewareDropsViaAbortHandler(t *testing.T) {
	h := Middleware(Config{DropRate: 1}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer func() {
		if p := recover(); p != http.ErrAbortHandler {
			t.Errorf("drop panicked with %v, want http.ErrAbortHandler", p)
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
}
