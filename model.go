package clsacim

import (
	"sort"

	"clsacim/internal/models"
	"clsacim/internal/nn"
	"clsacim/internal/tensor"
)

// Model is a neural network ready for compilation. Compilation mutates
// its working graph, so a Model hands every Compile a fresh copy.
type Model struct {
	Name string

	build func() (*nn.Graph, error)
}

func (m *Model) graph() (*nn.Graph, error) { return m.build() }

// ModelOptions configures LoadModel.
type ModelOptions struct {
	// WithWeights attaches deterministic synthetic weights (needed only
	// for functional execution; scheduling works shape-only).
	WithWeights bool
	// Seed selects the synthetic weight stream.
	Seed int64
	// InputSize overrides the spatial input resolution.
	InputSize int
}

// idNames converts internal model IDs to their public names.
func idNames(ids []models.ID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(id)
	}
	return out
}

// Models lists the built-in evaluation networks (paper Table II plus the
// TinyYOLOv4 case study).
func Models() []string { return idNames(models.List()) }

// AllModels lists every available network — the builtins (including the
// small synthetic test networks) plus everything added through
// RegisterModel — sorted by name.
func AllModels() []string {
	out := append(idNames(models.SortedIDs()), registeredModels()...)
	sort.Strings(out)
	return out
}

// LoadModel returns a built-in model by name (see Models). Unknown
// names fail with ErrUnknownModel; the error lists what is available.
func LoadModel(name string, opt ModelOptions) (*Model, error) {
	id := models.ID(name)
	if !models.Known(id) {
		// LoadModel only resolves builtins, so only list those;
		// registered models resolve through Request.Model / the Engine.
		return nil, unknownModelError(name, idNames(models.SortedIDs()))
	}
	mo := models.Options{WithWeights: opt.WithWeights, Seed: opt.Seed, InputSize: opt.InputSize}
	// Probe once so invalid options fail at load time, not at compile time.
	if _, err := models.Build(id, mo); err != nil {
		return nil, err
	}
	return &Model{
		Name:  name,
		build: func() (*nn.Graph, error) { return models.Build(id, mo) },
	}, nil
}

// Layer is an opaque handle to a node under construction in a Builder.
type Layer struct {
	n *nn.Node
}

// Shape returns the layer's output shape as (H, W, C).
func (l Layer) Shape() (h, w, c int) {
	return l.n.OutShape.H, l.n.OutShape.W, l.n.OutShape.C
}

// Builder constructs custom models through the public API. All layers
// are shape-only (no weight data): sufficient for mapping, scheduling,
// and every benchmark; functional execution requires the built-in models
// with ModelOptions.WithWeights.
type Builder struct {
	name string
	g    *nn.Graph
	err  error
}

// NewBuilder starts a custom model with the given input shape.
func NewBuilder(name string, h, w, c int) (*Builder, Layer) {
	b := &Builder{name: name, g: nn.NewGraph()}
	in := b.g.AddInput("input", tensor.NewShape(h, w, c))
	return b, Layer{in}
}

func (b *Builder) add(name string, op nn.Op, ins ...*nn.Node) Layer {
	if b.err != nil {
		return Layer{}
	}
	n, err := b.g.TryAdd(b.g.FreshName(name), op, ins...)
	if err != nil {
		b.err = err
		return Layer{}
	}
	return Layer{n}
}

// Conv2D appends a convolution with square kernel k and stride s. When
// same is true, TensorFlow-style "same" padding keeps ceil(H/s) output
// rows; otherwise the convolution is valid.
func (b *Builder) Conv2D(in Layer, outChannels, k, s int, same bool) Layer {
	if b.err != nil {
		return Layer{}
	}
	op := &nn.Conv2D{KH: k, KW: k, SH: s, SW: s, KI: in.n.OutShape.C, KO: outChannels}
	if same {
		t, bo := nn.SamePadding(in.n.OutShape.H, k, s)
		l, r := nn.SamePadding(in.n.OutShape.W, k, s)
		op.Pad = nn.Padding{Top: t, Bottom: bo, Left: l, Right: r}
	}
	return b.add("conv2d", op, in.n)
}

// ReLU appends a rectified-linear activation.
func (b *Builder) ReLU(in Layer) Layer {
	return b.add("relu", &nn.Activation{Func: nn.ActReLU}, in.n)
}

// LeakyReLU appends a leaky ReLU with the given negative slope.
func (b *Builder) LeakyReLU(in Layer, alpha float32) Layer {
	return b.add("leaky", &nn.Activation{Func: nn.ActLeakyReLU, Alpha: alpha}, in.n)
}

// MaxPool appends k x k max pooling with stride s.
func (b *Builder) MaxPool(in Layer, k, s int) Layer {
	return b.add("maxpool", &nn.MaxPool{KH: k, KW: k, SH: s, SW: s}, in.n)
}

// ConcatChannels appends a channel concatenation.
func (b *Builder) ConcatChannels(ins ...Layer) Layer {
	nodes := make([]*nn.Node, len(ins))
	for i, l := range ins {
		nodes[i] = l.n
	}
	return b.add("concat", &nn.Concat{Axis: nn.AxisC}, nodes...)
}

// Add appends an elementwise (residual) addition.
func (b *Builder) Add(a, c Layer) Layer {
	return b.add("add", &nn.Add{}, a.n, c.n)
}

// UpSample appends nearest-neighbour upsampling by factor f.
func (b *Builder) UpSample(in Layer, f int) Layer {
	return b.add("upsample", &nn.UpSample{Factor: f}, in.n)
}

// Output marks a layer as a network output.
func (b *Builder) Output(l Layer) {
	if b.err != nil || l.n == nil {
		return
	}
	b.g.MarkOutput(l.n)
}

// Finish validates and returns the custom model.
func (b *Builder) Finish() (*Model, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.g.Validate(); err != nil {
		return nil, err
	}
	src := b.g
	return &Model{
		Name:  b.name,
		build: func() (*nn.Graph, error) { return src.Clone(), nil },
	}, nil
}

// LayerRow describes one base layer of a compiled model, matching the
// columns of paper Table I.
type LayerRow struct {
	Name     string
	IFM, OFM [3]int // (H, W, C)
	PEs      int
	Cycles   int64 // t_init: OFM pixels
	Dup      int   // applied duplication factor
}

// LayerTable returns the base-layer structure of the compiled model in
// topological order (paper Table I for TinyYOLOv4).
func (c *Compiled) LayerTable() []LayerRow {
	rows := make([]LayerRow, 0, len(c.plan.Layers))
	for i, info := range c.plan.Layers {
		in := info.Node.Inputs[0].OutShape
		out := info.Node.OutShape
		rows = append(rows, LayerRow{
			Name:   info.Node.Name,
			IFM:    [3]int{in.H, in.W, in.C},
			OFM:    [3]int{out.H, out.W, out.C},
			PEs:    info.Cost,
			Cycles: info.Latency,
			Dup:    c.dup.D[i],
		})
	}
	return rows
}

// BaseLayerCount returns the number of base layers (Table II column).
func (c *Compiled) BaseLayerCount() int { return len(c.plan.Layers) }

// InputShape returns the model input as (H, W, C).
func (c *Compiled) InputShape() (h, w, cc int) {
	s := c.graph.Input.OutShape
	return s.H, s.W, s.C
}
