module clsacim

go 1.21
