package clsacim

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"clsacim/internal/mapping"
	"clsacim/internal/models"
)

// Typed registry and lookup errors, matchable with errors.Is.
var (
	// ErrUnknownSolver reports a Config.Solver / Request.Solver name
	// that is not registered. The error message lists the known names.
	ErrUnknownSolver = errors.New("clsacim: unknown solver")
	// ErrDuplicateSolver reports a RegisterSolver name collision.
	ErrDuplicateSolver = errors.New("clsacim: solver already registered")
	// ErrUnknownModel reports a model name that is neither builtin nor
	// registered. The error message lists the available names.
	ErrUnknownModel = errors.New("clsacim: unknown model")
	// ErrDuplicateModel reports a RegisterModel name collision.
	ErrDuplicateModel = errors.New("clsacim: model already registered")
	// ErrUnknownMode reports a scheduling-mode name ParseMode does not
	// recognize.
	ErrUnknownMode = errors.New("clsacim: unknown scheduling mode")
)

// SolverLayer is the read-only per-layer view handed to custom
// duplication solvers: the paper's (c_i, t_i) pair plus the largest
// useful duplication factor.
type SolverLayer struct {
	// Name is the base layer's graph name (e.g. "conv2d_3").
	Name string
	// PEs is c_i: crossbars needed by one replica of the layer.
	PEs int
	// Cycles is t_i: the layer latency with d_i = 1.
	Cycles int64
	// MaxDup is the largest duplication factor that can still be
	// assigned disjoint output slabs.
	MaxDup int
}

// SolverFunc is a pluggable duplication solver for Optimization
// Problem 1 (paper §III-C): choose duplication factors d (one per
// layer, d_i >= 1, d_i <= MaxDup_i) such that sum(PEs_i * d_i) does not
// exceed totalPEs. minPEs is sum(PEs_i), the cost of storing every
// weight once.
type SolverFunc func(layers []SolverLayer, totalPEs, minPEs int) ([]int, error)

// RegisterSolver makes a custom duplication solver available under the
// given name to every Config, Request, and Engine in the process. The
// builtin names ("dp", "greedy", "minmax", "uniform", "none", "brute",
// and the scored "search") and previously registered names are rejected
// with ErrDuplicateSolver. RegisterSolver is safe for concurrent use.
func RegisterSolver(name string, fn SolverFunc) error {
	if fn == nil {
		return fmt.Errorf("clsacim: nil solver func for %q", name)
	}
	err := mapping.Register(name, func(plan *mapping.Plan, F int) (mapping.Solution, error) {
		layers := make([]SolverLayer, len(plan.Layers))
		for i, info := range plan.Layers {
			layers[i] = SolverLayer{
				Name:   info.Node.Name,
				PEs:    info.Cost,
				Cycles: info.Latency,
				MaxDup: mapping.MaxDup(info),
			}
		}
		d, err := fn(layers, F, plan.MinPEs)
		if err != nil {
			return mapping.Solution{}, fmt.Errorf("solver %q: %w", name, err)
		}
		sol, err := mapping.NewSolution(plan, d)
		if err != nil {
			return mapping.Solution{}, fmt.Errorf("solver %q: %w", name, err)
		}
		if sol.PEsNeeded > F {
			return mapping.Solution{}, fmt.Errorf("solver %q: needs %d PEs, architecture has %d",
				name, sol.PEsNeeded, F)
		}
		return sol, nil
	})
	if errors.Is(err, mapping.ErrDuplicateSolver) {
		return fmt.Errorf("%w: %q", ErrDuplicateSolver, name)
	}
	return err
}

// Solvers lists the registered duplication-solver names (builtin and
// custom), sorted.
func Solvers() []string { return mapping.Names() }

// lookupSolver resolves a plain solver name into the registry-backed
// solve function, translating the internal error into the package-typed
// one. Scored solvers ("search") do not resolve here — Compile routes
// them through mapping.LookupScored with an evaluation callback.
func lookupSolver(name string) (mapping.Func, error) {
	fn, err := mapping.Lookup(name)
	if err != nil {
		return nil, fmt.Errorf("%w %q (available: %s)", ErrUnknownSolver, name, strings.Join(Solvers(), ", "))
	}
	return fn, nil
}

// checkSolver validates that a solver name resolves to some registered
// solver, plain or scored.
func checkSolver(name string) error {
	if mapping.IsScored(name) {
		return nil
	}
	_, err := lookupSolver(name)
	return err
}

// modelRegistry holds custom models registered through RegisterModel
// and lazily caches builtin models, so name resolution is stable: the
// same name always yields the same *Model instance.
var modelRegistry = struct {
	sync.RWMutex
	custom   map[string]*Model
	builtins map[string]*Model
}{custom: make(map[string]*Model), builtins: make(map[string]*Model)}

// RegisterModel makes a model (typically built with Builder) available
// by name to every Engine and Request in the process, unifying it with
// the builtin model table: registered names show up in AllModels and
// resolve in Request.Model. Builtin and previously registered names are
// rejected with ErrDuplicateModel.
func RegisterModel(name string, m *Model) error {
	if name == "" {
		return errors.New("clsacim: empty model name")
	}
	if m == nil {
		return fmt.Errorf("clsacim: nil model for %q", name)
	}
	if models.Known(models.ID(name)) {
		return fmt.Errorf("%w: %q is a builtin model", ErrDuplicateModel, name)
	}
	modelRegistry.Lock()
	defer modelRegistry.Unlock()
	if _, ok := modelRegistry.custom[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateModel, name)
	}
	modelRegistry.custom[name] = m
	return nil
}

// registeredModels returns the names added through RegisterModel.
func registeredModels() []string {
	modelRegistry.RLock()
	defer modelRegistry.RUnlock()
	out := make([]string, 0, len(modelRegistry.custom))
	for name := range modelRegistry.custom {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// lookupModel resolves a model name: custom registrations first, then
// the builtin table (cached, so repeated lookups return the same
// instance and Engine compile caches stay keyed consistently).
func lookupModel(name string) (*Model, error) {
	modelRegistry.RLock()
	if m, ok := modelRegistry.custom[name]; ok {
		modelRegistry.RUnlock()
		return m, nil
	}
	if m, ok := modelRegistry.builtins[name]; ok {
		modelRegistry.RUnlock()
		return m, nil
	}
	modelRegistry.RUnlock()
	m, err := LoadModel(name, ModelOptions{})
	if errors.Is(err, ErrUnknownModel) {
		// Re-list here: unlike LoadModel, this resolver also serves
		// registered models, so the error should advertise them too.
		return nil, unknownModelError(name, AllModels())
	}
	if err != nil {
		return nil, err
	}
	modelRegistry.Lock()
	defer modelRegistry.Unlock()
	if prev, ok := modelRegistry.builtins[name]; ok {
		return prev, nil
	}
	modelRegistry.builtins[name] = m
	return m, nil
}

// unknownModelError builds the typed lookup failure listing what the
// failing resolver could actually have served.
func unknownModelError(name string, available []string) error {
	return fmt.Errorf("%w %q (available: %s)", ErrUnknownModel, name, strings.Join(available, ", "))
}
