// Package clsacim is the public API of the CLSA-CIM reproduction: a
// compiler and system-level simulator for neural-network inference on
// tiled RRAM computing-in-memory (CIM) architectures, implementing the
// cross-layer scheduling algorithm and weight-duplication mapping of
//
//	Pelke et al., "CLSA-CIM: A Cross-Layer Scheduling Approach for
//	Computing-in-Memory Architectures", DATE 2024.
//
// The entry point is the Engine: a concurrency-safe evaluator that
// holds the architecture (functional options), caches compilations by
// (model, architecture, mapping) key, and runs batches on a bounded
// worker pool:
//
//	eng, _ := clsacim.New(
//		clsacim.WithCrossbar(256, 256),
//		clsacim.WithTMVMNanos(1400),
//	)
//	ev, _ := eng.Evaluate(ctx, clsacim.Request{
//		Model:             "tinyyolov4",
//		Mode:              clsacim.ModeCrossLayer, // xinf
//		ExtraPEs:          32,                     // x: F = PEmin + x
//		WeightDuplication: true,                   // wdup mapping
//	})
//	fmt.Println(ev.Speedup, ev.Result.Utilization)
//
// Requests round-trip through JSON, sweeps go through
// Engine.EvaluateBatch, and Engine.Stats exposes the compile-cache
// accounting. Custom duplication solvers plug in with RegisterSolver;
// custom models (see Builder) join the builtin table with
// RegisterModel.
//
// Compilation canonicalizes the network (BN folding, padding/bias
// partitioning, weight quantization), maps base layers onto crossbar PEs
// (optionally solving the weight-duplication problem), and runs CLSA-CIM
// Stages I-II (set and dependency determination). Scheduling runs Stages
// III-IV (or the layer-by-layer baseline) and reports the paper's
// metrics.
//
// The original one-shot entry points — Compile, Compiled.Schedule, and
// Evaluate — still work and are kept as thin compatibility wrappers;
// new code should prefer the Engine, which shares compilations that the
// one-shot API redoes on every call.
package clsacim

import (
	"context"
	"fmt"
	"io"
	"sync"

	"clsacim/internal/cim"
	"clsacim/internal/deps"
	"clsacim/internal/frontend"
	"clsacim/internal/gantt"
	"clsacim/internal/im2col"
	"clsacim/internal/mapping"
	"clsacim/internal/metrics"
	"clsacim/internal/nn"
	"clsacim/internal/schedule"
	"clsacim/internal/sets"
	"clsacim/internal/sim"
)

// ScheduleMode selects the scheduling strategy. The zero value is the
// layer-by-layer baseline; ModeCrossLayer is unbounded cross-layer
// inference, and ModeWindow(K) is the bounded family in between.
// Values are comparable (==) and round-trip through JSON.
type ScheduleMode struct {
	// w encodes the admission window: 0 = layer-by-layer (the default),
	// -1 = unbounded cross-layer ("xinf"), K > 0 = at most K layers
	// concurrently active ("xK").
	w int
}

// Scheduling strategies: the paper's layer-by-layer baseline (§II-B) and
// CLSA-CIM cross-layer inference ("xinf", §IV).
var (
	ModeLayerByLayer = ScheduleMode{}
	ModeCrossLayer   = ScheduleMode{w: -1}
)

// ModeWindow returns the bounded cross-layer mode xK: at most k layers
// concurrently active. k = 1 behaves exactly like ModeLayerByLayer and
// k >= the model's layer count exactly like ModeCrossLayer; values in
// between interpolate between the paper's two extremes. Non-positive k
// yields ModeLayerByLayer.
func ModeWindow(k int) ScheduleMode {
	if k <= 0 {
		return ModeLayerByLayer
	}
	return ScheduleMode{w: k}
}

// Window returns the mode's admission bound: the maximum number of
// layers concurrently active (schedule.Unbounded for ModeCrossLayer).
func (m ScheduleMode) Window() int {
	switch {
	case m.w < 0:
		return schedule.Unbounded
	case m.w == 0:
		return 1
	default:
		return m.w
	}
}

// policy resolves the mode to its scheduling policy.
func (m ScheduleMode) policy() schedule.Policy {
	switch {
	case m.w < 0:
		return schedule.CrossLayer
	case m.w == 0:
		return schedule.LayerByLayer
	default:
		return schedule.Windowed(m.w)
	}
}

// String names the mode as in the paper's plots.
func (m ScheduleMode) String() string {
	switch {
	case m.w < 0:
		return "xinf"
	case m.w == 0:
		return "layer-by-layer"
	default:
		return fmt.Sprintf("x%d", m.w)
	}
}

// Name returns the canonical short mode name accepted by ParseMode:
// "lbl", "xinf", or "x<K>".
func (m ScheduleMode) Name() string { return m.wireName() }

// Config controls compilation. The zero value reproduces the paper's
// case-study architecture: 256x256 crossbars, tMVM = 1400 ns, F = PEmin,
// no weight duplication, idealized (zero-cost) data movement.
// Config round-trips through JSON (zero fields are omitted), so
// configurations can arrive over the wire alongside a Request.
type Config struct {
	// PERows and PECols are the crossbar dimensions (default 256x256).
	PERows int `json:"pe_rows,omitempty"`
	PECols int `json:"pe_cols,omitempty"`
	// TMVMNanos is the MVM latency of one cycle (default 1400 ns).
	TMVMNanos float64 `json:"tmvm_nanos,omitempty"`
	// ExtraPEs is the paper's x: the architecture provides
	// F = PEmin + x crossbars. Ignored when TotalPEs is set.
	ExtraPEs int `json:"extra_pes,omitempty"`
	// TotalPEs overrides the PE count F when positive.
	TotalPEs int `json:"total_pes,omitempty"`
	// WeightDuplication enables the wdup mapping (paper §III-C):
	// Optimization Problem 1 decides which layers to replicate.
	WeightDuplication bool `json:"weight_duplication,omitempty"`
	// Solver picks the duplication solver: "dp" (exact for the paper's
	// Optimization Problem 1, default), "greedy", "minmax" (bottleneck
	// objective, extension), "uniform" (even spread baseline), "none",
	// "search" (schedule-aware annealing scored by the coarse
	// simulator), or any name added through RegisterSolver.
	Solver string `json:"solver,omitempty"`
	// SolverBudget bounds the candidate evaluations of a scored solver
	// such as "search" (0 = the solver's default;
	// mapping.DefaultSearchBudget for "search"). The budget is expressed
	// in evaluations, not wall clock, so a fixed (seed, budget) pair is
	// reproducible across machines and GOMAXPROCS settings. Plain
	// solvers ignore it.
	SolverBudget int `json:"solver_budget,omitempty"`
	// SolverSeed seeds the deterministic move RNG of a scored solver.
	// Plain solvers ignore it.
	SolverSeed uint64 `json:"solver_seed,omitempty"`
	// SolverMode names the scheduling mode ("lbl", "x4", "xinf") whose
	// makespan a scored solver optimizes. Empty means "xinf". The Engine
	// fills it from the request's mode, so direct Engine users never set
	// it; it exists so the compile cache can key on it and one-shot
	// Compile callers can steer the search. Plain solvers ignore it.
	SolverMode string `json:"solver_mode,omitempty"`
	// TargetSets is the Stage I granularity (sets per layer). The
	// default is the finest alignment-respecting partition, which
	// realizes the paper's "maximum achievable utilization and minimum
	// inference latency". Use small values (e.g. 26) for coarse
	// scheduling experiments.
	TargetSets int `json:"target_sets,omitempty"`
	// WeightBits quantizes base-layer weights (default 8; negative
	// disables quantization).
	WeightBits int `json:"weight_bits,omitempty"`
	// NoCCyclesPerHop charges data movement per mesh hop on dependency
	// edges (extension of paper §V-C; 0 = idealized).
	NoCCyclesPerHop float64 `json:"noc_cycles_per_hop,omitempty"`
	// GPEUCyclesPerKElem charges non-base-layer processing per 1024
	// transferred elements on dependency edges (0 = idealized).
	GPEUCyclesPerKElem float64 `json:"gpeu_cycles_per_kelem,omitempty"`
	// PEsPerTile groups PEs into NoC tiles (default 4).
	PEsPerTile int `json:"pes_per_tile,omitempty"`
	// WeightVirtualization permits architectures with fewer PEs than
	// the network needs (TotalPEs < PEmin): swapped layers time-share a
	// PE pool and are reprogrammed before execution (the paper's §V-C
	// future-work scenario). Only layer-by-layer scheduling is possible
	// in this regime.
	WeightVirtualization bool `json:"weight_virtualization,omitempty"`
	// WriteCyclesPerCrossbar is the RRAM programming time per crossbar
	// in MVM cycles (default 512) when virtualization is active.
	WriteCyclesPerCrossbar int64 `json:"write_cycles_per_crossbar,omitempty"`
	// WriteParallelism is the number of crossbars programmable
	// concurrently (default 4).
	WriteParallelism int `json:"write_parallelism,omitempty"`
	// EnergyPerMVMNanoJ enables the energy estimate (extension): nJ
	// consumed by one PE per MVM cycle. 0 disables energy reporting.
	EnergyPerMVMNanoJ float64 `json:"energy_per_mvm_nj,omitempty"`
	// EnergyPerWriteNanoJ is the nJ cost of programming one crossbar
	// (virtualization).
	EnergyPerWriteNanoJ float64 `json:"energy_per_write_nj,omitempty"`
}

func (c Config) withDefaults() Config {
	if c.PERows == 0 {
		c.PERows = 256
	}
	if c.PECols == 0 {
		c.PECols = 256
	}
	if c.TMVMNanos == 0 {
		c.TMVMNanos = cim.DefaultTMVMNanos
	}
	if c.Solver == "" {
		c.Solver = "dp"
	}
	if c.TargetSets == 0 {
		c.TargetSets = sets.FineGranularity
	}
	if c.WeightBits == 0 {
		c.WeightBits = 8
	}
	if c.PEsPerTile == 0 {
		c.PEsPerTile = 4
	}
	if c.WriteCyclesPerCrossbar == 0 {
		c.WriteCyclesPerCrossbar = 512
	}
	if c.WriteParallelism == 0 {
		c.WriteParallelism = 4
	}
	return c
}

// solverFunc resolves the duplication solver from the process-wide
// registry (see RegisterSolver). Without weight duplication every layer
// keeps d_i = 1 regardless of the configured name.
func (c Config) solverFunc() (mapping.Func, error) {
	if !c.WeightDuplication {
		return lookupSolver(mapping.SolverNone.String())
	}
	return lookupSolver(c.Solver)
}

// Compiled is a model compiled against an architecture: canonicalized,
// mapped (with duplication applied), and analyzed by CLSA-CIM Stages
// I-II. It can be scheduled in any mode.
type Compiled struct {
	ModelName string
	cfg       Config
	arch      cim.Config
	graph     *nn.Graph
	plan      *mapping.Plan
	mapped    *mapping.Mapping
	setsPlan  *sets.Plan
	depGraph  *deps.Graph
	dup       mapping.Solution
	peMin     int
	edgeCost  schedule.EdgeCostFn
	// virtual is non-nil when the network does not fit (F < PEmin) and
	// weight virtualization is active.
	virtual *mapping.VirtualMapping

	// sched is the compilation's mutable scheduling state, shared by
	// pointer between a base compilation and its derived F-views (see
	// withExtraPEs), so all of them reuse one set of timelines,
	// validation marks, the Stage III dispatch plan, and the simulator
	// scratch pool.
	sched *schedState
}

// schedState caches everything scheduling and simulation derive from a
// compilation's immutable Stage I-III artifacts.
//
// timelines caches validated schedules per canonical mode wire name. A
// Compiled is immutable and shared through the Engine's compile cache,
// so the schedule of a (compile key, mode) pair is computed once;
// sweeps that rescore the same baseline hit this cache. checked (same
// key space, same lock) marks timelines that already passed the full
// internal/check invariant set, so WithValidation sweeps validate each
// cached timeline once instead of per request.
//
// dispatch is the lazily built Stage III dispatch plan; every built-in
// policy shares the raster Replica rule, so one plan serves every
// scheduling mode — re-simulating a cached compilation under another
// mode reuses it and only re-runs the event loop. simPool recycles
// sim.State scratch across those re-simulations.
type schedState struct {
	mu        sync.Mutex
	timelines map[string]*schedule.Timeline
	checked   map[string]bool
	dispatch  *schedule.Dispatch
	simPool   sync.Pool // *sim.State
}

// Virtualized reports whether the compilation uses weight reloading
// (F < PEmin).
func (c *Compiled) Virtualized() bool { return c.virtual != nil }

// ReloadCyclesTotal returns the summed crossbar-programming time per
// inference (0 without virtualization).
func (c *Compiled) ReloadCyclesTotal() int64 {
	if c.virtual == nil {
		return 0
	}
	return c.virtual.TotalReload
}

// CrossbarWritesPerInference returns the number of crossbars programmed
// per inference — the endurance pressure of running below PEmin.
func (c *Compiled) CrossbarWritesPerInference() int {
	if c.virtual == nil {
		return 0
	}
	return c.virtual.Writes
}

// ResidentLayers returns how many layers keep dedicated weights.
func (c *Compiled) ResidentLayers() int {
	if c.virtual == nil {
		return len(c.plan.Layers)
	}
	n := 0
	for _, r := range c.virtual.Resident {
		if r {
			n++
		}
	}
	return n
}

// Compile lowers model through the full preparation pipeline. It is
// the one-shot entry point kept for compatibility: every call redoes
// the whole pipeline. New code should go through an Engine, whose
// compile cache shares this work across requests.
func Compile(model *Model, cfg Config) (*Compiled, error) {
	cfg = cfg.withDefaults()
	scored := cfg.WeightDuplication && mapping.IsScored(cfg.Solver)
	var solve mapping.Func
	var err error
	if !scored {
		solve, err = cfg.solverFunc()
		if err != nil {
			return nil, err
		}
	}
	g, err := model.graph()
	if err != nil {
		return nil, fmt.Errorf("clsacim: building model %q: %w", model.Name, err)
	}
	wb := cfg.WeightBits
	if wb < 0 {
		wb = 0
	}
	if _, err := frontend.Canonicalize(g, frontend.Options{WeightBits: wb}); err != nil {
		return nil, fmt.Errorf("clsacim: canonicalizing %q: %w", model.Name, err)
	}
	pe := im2col.PEDims{Rows: cfg.PERows, Cols: cfg.PECols}
	plan, err := mapping.Analyze(g, pe)
	if err != nil {
		return nil, fmt.Errorf("clsacim: analyzing %q: %w", model.Name, err)
	}
	f := plan.MinPEs + cfg.ExtraPEs
	if cfg.TotalPEs > 0 {
		f = cfg.TotalPEs
	}
	arch := cim.Config{
		NumPEs:             f,
		PE:                 pe,
		TMVMNanos:          cfg.TMVMNanos,
		PEsPerTile:         cfg.PEsPerTile,
		WeightBits:         wb,
		CellBits:           4,
		InputBits:          8,
		GPEUCyclesPerKElem: cfg.GPEUCyclesPerKElem,
	}
	if cfg.NoCCyclesPerHop > 0 {
		arch.NoC = cim.NoCConfig{Enabled: true, CyclesPerHop: cfg.NoCCyclesPerHop}
	}
	if err := arch.Validate(); err != nil {
		return nil, err
	}
	var sol mapping.Solution
	var mapped *mapping.Mapping
	var virtual *mapping.VirtualMapping
	if f < plan.MinPEs {
		if !cfg.WeightVirtualization {
			return nil, fmt.Errorf("clsacim: %q needs %d PEs but the architecture has %d; "+
				"enable WeightVirtualization to run below PEmin", model.Name, plan.MinPEs, f)
		}
		virtual, err = mapping.SolveVirtual(plan, f, mapping.WriteCost{
			CyclesPerCrossbar: cfg.WriteCyclesPerCrossbar,
			Parallelism:       cfg.WriteParallelism,
		})
		if err != nil {
			return nil, fmt.Errorf("clsacim: virtualizing %q: %w", model.Name, err)
		}
		mapped = virtual.Mapping
		sol = mapping.Solution{D: mapped.Dup, PEsNeeded: mapped.PEsUsed}
	} else {
		if scored {
			sol, err = solveScored(cfg, g, plan, f, arch)
		} else {
			sol, err = solve(plan, f)
		}
		if err != nil {
			return nil, fmt.Errorf("clsacim: solving duplication for %q: %w", model.Name, err)
		}
		mapped, err = mapping.Apply(g, plan, sol, f)
		if err != nil {
			return nil, fmt.Errorf("clsacim: applying mapping for %q: %w", model.Name, err)
		}
	}
	setsPlan, err := sets.Determine(g, mapped, sets.Options{TargetSets: cfg.TargetSets})
	if err != nil {
		return nil, fmt.Errorf("clsacim: stage I for %q: %w", model.Name, err)
	}
	depGraph, err := deps.Build(g, setsPlan)
	if err != nil {
		return nil, fmt.Errorf("clsacim: stage II for %q: %w", model.Name, err)
	}
	c := &Compiled{
		ModelName: model.Name,
		sched: &schedState{
			timelines: make(map[string]*schedule.Timeline),
			checked:   make(map[string]bool),
			simPool:   sync.Pool{New: func() any { return sim.NewState() }},
		},
		cfg:      cfg,
		arch:     arch,
		graph:    g,
		plan:     plan,
		mapped:   mapped,
		setsPlan: setsPlan,
		depGraph: depGraph,
		dup:      sol,
		peMin:    plan.MinPEs,
		virtual:  virtual,
	}
	c.edgeCost = edgeCostFn(arch, mapped)
	return c, nil
}

// withExtraPEs derives the F = PEmin + x view of a base compilation
// (compiled with ExtraPEs = 0). Without weight duplication, TotalPEs,
// and NoC routing, every Stage I-III artifact and every timeline is
// independent of how many idle extra PEs the architecture provides —
// only the reported F, the Eq. 2 utilization denominator, and the Eq. 3
// x differ. The view is a shallow copy with the PE count adjusted; the
// scheduling state (timelines, dispatch plan, simulator pool) stays
// shared with the base, so a no-duplication ExtraPEs sweep compiles and
// schedules once.
func (c *Compiled) withExtraPEs(x int) *Compiled {
	v := *c
	v.cfg.ExtraPEs = x
	v.arch.NumPEs = c.peMin + x
	mv := *c.mapped
	mv.F = v.arch.NumPEs
	v.mapped = &mv
	return &v
}

// edgeCostFn assembles the optional NoC + GPEU dependency-edge cost for
// a mapping on an architecture (nil when idealized). It is a free
// function rather than a Compiled method because the scored-solver
// evaluation loop needs it for candidate mappings that never become a
// Compiled.
func edgeCostFn(arch cim.Config, mapped *mapping.Mapping) schedule.EdgeCostFn {
	noc := arch.NoC.Enabled && arch.NoC.CyclesPerHop > 0
	gpeu := arch.GPEUCyclesPerKElem > 0
	if !noc && !gpeu {
		return nil
	}
	tileOf := make([]int, len(mapped.Groups))
	for i, g := range mapped.Groups {
		if len(g.PEs) > 0 {
			tileOf[i] = arch.TileOf(g.PEs[0])
		}
	}
	return func(pred deps.SetRef, toLayer int) int64 {
		var cost float64
		if noc {
			cost += float64(arch.HopDistance(tileOf[pred.Layer], tileOf[toLayer])) * arch.NoC.CyclesPerHop
		}
		if gpeu {
			cost += arch.GPEUCyclesPerKElem * float64(pred.Vol) / 1024.0
		}
		return int64(cost + 0.5)
	}
}

// scoringMode resolves the mode a scored solver optimizes for from
// Config.SolverMode (default xinf), folded onto its canonical
// representative for the layer count like Compiled.normalizeMode.
func scoringMode(cfg Config, layers int) (ScheduleMode, error) {
	mode := ModeCrossLayer
	if cfg.SolverMode != "" {
		var err error
		mode, err = ParseMode(cfg.SolverMode)
		if err != nil {
			return ScheduleMode{}, err
		}
	}
	switch k := mode.Window(); {
	case k <= 1:
		return ModeLayerByLayer, nil
	case k >= layers:
		return ModeCrossLayer, nil
	default:
		return mode, nil
	}
}

// solveScored runs a schedule-aware duplication solver: the candidate
// evaluation callback replays the real pipeline — mapping.Apply, Stage I
// set determination, Stage II dependency build, and a coarse simulation
// under the scoring mode — and returns the achieved makespan in cycles.
// One sim.State is reused across all evaluations, so a warm evaluation
// allocates only the candidate's Stage I-II artifacts.
func solveScored(cfg Config, g *nn.Graph, plan *mapping.Plan, f int, arch cim.Config) (mapping.Solution, error) {
	fn, ok := mapping.LookupScored(cfg.Solver)
	if !ok {
		return mapping.Solution{}, fmt.Errorf("%w %q", ErrUnknownSolver, cfg.Solver)
	}
	mode, err := scoringMode(cfg, len(plan.Layers))
	if err != nil {
		return mapping.Solution{}, err
	}
	st := sim.NewState()
	score := func(d []int) (int64, error) {
		sol, err := mapping.NewSolution(plan, d)
		if err != nil {
			return 0, err
		}
		mapped, err := mapping.Apply(g, plan, sol, f)
		if err != nil {
			return 0, err
		}
		setsPlan, err := sets.Determine(g, mapped, sets.Options{TargetSets: cfg.TargetSets})
		if err != nil {
			return 0, err
		}
		dg, err := deps.Build(g, setsPlan)
		if err != nil {
			return 0, err
		}
		var edge schedule.EdgeCostFn
		if mode.Window() > 1 {
			// Mirrors schedOptions: edge costs engage only under
			// cross-layer overlap, so the search optimizes exactly what
			// the final schedule will be charged.
			edge = edgeCostFn(arch, mapped)
		}
		res, err := st.RunCoarse(arch, dg, mapped, mode.policy(), sim.Options{Edge: edge})
		if err != nil {
			return 0, err
		}
		return res.Makespan, nil
	}
	return fn(plan, f, score, mapping.ScoredOptions{Seed: cfg.SolverSeed, Budget: cfg.SolverBudget})
}

// PEmin returns the minimum PE count storing every weight once.
func (c *Compiled) PEmin() int { return c.peMin }

// TotalPEs returns F, the PE count of the compiled architecture.
func (c *Compiled) TotalPEs() int { return c.arch.NumPEs }

// PEsUsed returns the number of PEs actually allocated after mapping.
func (c *Compiled) PEsUsed() int { return c.mapped.PEsUsed }

// NumSets returns the total Stage I set count.
func (c *Compiled) NumSets() int { return c.depGraph.NumSets() }

// NumDepEdges returns the total Stage II dependency-edge count.
func (c *Compiled) NumDepEdges() int { return c.depGraph.NumEdges() }

// Report holds the scheduling outcome and the paper's metrics for one
// (mapping, scheduling) configuration.
type Report struct {
	Model          string
	Mode           ScheduleMode
	F              int
	PEmin          int
	MakespanCycles int64
	// LatencyNanos is MakespanCycles * tMVM.
	LatencyNanos float64
	// Utilization is paper Eq. 2.
	Utilization float64
	// Duplication holds the applied d vector (plan-layer order).
	Duplication []int
	// EnergyMicroJoule is the dynamic compute energy estimate
	// (extension; 0 unless Config.EnergyPerMVMNanoJ is set).
	EnergyMicroJoule float64
	// ReloadCycles is the total crossbar-programming time included in
	// the makespan (weight virtualization only).
	ReloadCycles int64
	// Degraded marks a report produced by the coarse fast path
	// (ScheduleCoarse): the scalar metrics above are exact, but the
	// report holds no timeline, so LayerSpans, Gantt rendering, critical
	// paths, schedule export, and the energy estimate are unavailable.
	Degraded bool

	sched *schedule.Timeline
	comp  *Compiled
}

// schedOptions returns the scheduling options of a mode: dependency
// edges carry the NoC/GPEU cost only under cross-layer overlap (any
// window above 1); the layer-by-layer baseline stays idealized as in
// the paper.
func (c *Compiled) schedOptions(mode ScheduleMode) schedule.Options {
	var opt schedule.Options
	if mode.Window() > 1 {
		opt.EdgeCost = c.edgeCost
	}
	return opt
}

// normalizeMode folds modes with provably identical schedules onto one
// canonical representative: any window-1 mode is lbl, and any window at
// least the layer count is xinf (the gate never engages). This keeps
// the timeline cache from computing x1 next to lbl, or x<large> next
// to xinf.
func (c *Compiled) normalizeMode(mode ScheduleMode) ScheduleMode {
	k := mode.Window()
	switch {
	case k <= 1:
		return ModeLayerByLayer
	case k >= len(c.depGraph.Plan.Layers):
		return ModeCrossLayer
	default:
		return mode
	}
}

// timeline returns the validated execution timeline of the compilation
// under mode, computing it at most once per canonical mode (the
// Compiled is shared through the Engine's compile cache, so repeated
// requests — in particular the layer-by-layer baseline of every
// evaluation — reuse it).
func (c *Compiled) timeline(mode ScheduleMode) (*schedule.Timeline, error) {
	mode = c.normalizeMode(mode)
	key := mode.wireName()
	c.sched.mu.Lock()
	t, ok := c.sched.timelines[key]
	c.sched.mu.Unlock()
	if ok {
		return t, nil
	}
	var err error
	opt := c.schedOptions(mode)
	if c.virtual != nil {
		if mode.Window() != 1 {
			return nil, fmt.Errorf("clsacim: %q runs on %d < PEmin=%d PEs; cross-layer scheduling requires full weight residency",
				c.ModelName, c.arch.NumPEs, c.peMin)
		}
		t, err = schedule.LayerByLayerVirtual(c.depGraph, c.virtual.ReloadCycles)
	} else {
		t, err = schedule.Schedule(c.depGraph, mode.policy(), opt)
	}
	if err != nil {
		return nil, err
	}
	if err := t.Validate(c.depGraph, opt); err != nil {
		return nil, fmt.Errorf("clsacim: schedule validation: %w", err)
	}
	c.sched.mu.Lock()
	if prev, ok := c.sched.timelines[key]; ok {
		t = prev // a concurrent builder won the race; both are identical
	} else {
		c.sched.timelines[key] = t
	}
	c.sched.mu.Unlock()
	return t, nil
}

// hasTimeline reports whether the canonical mode's timeline is already
// cached — the Engine's partial-hit accounting asks this before
// scheduling on a cache-hit compilation.
func (c *Compiled) hasTimeline(mode ScheduleMode) bool {
	key := c.normalizeMode(mode).wireName()
	c.sched.mu.Lock()
	_, ok := c.sched.timelines[key]
	c.sched.mu.Unlock()
	return ok
}

// dispatch returns the compilation's shared Stage III dispatch plan,
// building it on first use. Every built-in policy shares the raster
// Replica rule, so one plan serves all scheduling modes.
func (c *Compiled) dispatch() *schedule.Dispatch {
	s := c.sched
	s.mu.Lock()
	d := s.dispatch
	if d == nil {
		d = schedule.NewDispatch(c.depGraph, schedule.CrossLayer)
		s.dispatch = d
	}
	s.mu.Unlock()
	return d
}

// Schedule runs Stage III/IV under the mode's policy (the layer-by-layer
// baseline, xK bounded windows, or full cross-layer) and computes the
// metrics. The schedule is validated before being returned. Virtualized
// compilations (F < PEmin) support only window-1 scheduling: cross-layer
// overlap would require swapped weights to be present twice.
func (c *Compiled) Schedule(mode ScheduleMode) (*Report, error) {
	s, err := c.timeline(mode)
	if err != nil {
		return nil, err
	}
	ut, err := metrics.Utilization(s, c.mapped)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Model:          c.ModelName,
		Mode:           mode,
		F:              c.arch.NumPEs,
		PEmin:          c.peMin,
		MakespanCycles: s.Makespan,
		LatencyNanos:   metrics.LatencyNanos(s.Makespan, c.arch.TMVMNanos),
		Utilization:    ut,
		Duplication:    append([]int(nil), c.dup.D...),
		ReloadCycles:   c.ReloadCyclesTotal(),
		sched:          s,
		comp:           c,
	}
	if c.cfg.EnergyPerMVMNanoJ > 0 {
		nj, err := metrics.EnergyNanoJoule(s, c.mapped,
			c.cfg.EnergyPerMVMNanoJ, c.cfg.EnergyPerWriteNanoJ, c.CrossbarWritesPerInference())
		if err != nil {
			return nil, err
		}
		rep.EnergyMicroJoule = nj / 1000
	}
	return rep, nil
}

// LayerSpan reports when one replica PE group of a base layer was first
// and last active, and its total busy time.
type LayerSpan struct {
	Name     string
	Replica  int // 0 <= Replica < DupCount
	DupCount int
	PEs      int // crossbars of this replica (c_i)
	Start    int64
	End      int64
	Active   int64
}

// LayerSpans returns per-replica activity of the schedule in plan order,
// for Gantt rendering and analysis. A degraded report has no schedule
// and returns nil.
func (r *Report) LayerSpans() []LayerSpan {
	if r.sched == nil {
		return nil
	}
	var out []LayerSpan
	for li, g := range r.comp.mapped.Groups {
		items := r.sched.ItemsOf(li)
		for rep := 0; rep < g.Dup; rep++ {
			span := LayerSpan{
				Name: g.Node.Name, Replica: rep, DupCount: g.Dup,
				PEs:    g.PEsPerReplica(),
				Active: r.sched.ReplicaActive[li][rep],
				Start:  -1,
			}
			for _, it := range items {
				if it.Replica != rep {
					continue
				}
				if span.Start < 0 || it.Start < span.Start {
					span.Start = it.Start
				}
				if it.End > span.End {
					span.End = it.End
				}
			}
			if span.Start < 0 {
				span.Start = 0
			}
			out = append(out, span)
		}
	}
	return out
}

// RenderGantt writes an ASCII Gantt chart of the schedule (the textual
// analogue of paper Fig. 6a/6b) to w. width is the number of time
// buckets (0 for the default).
func (r *Report) RenderGantt(w io.Writer, width int) error {
	if r.sched == nil {
		return errDegradedReport(r)
	}
	rows := gantt.FromSchedule(r.comp.depGraph, r.sched)
	title := fmt.Sprintf("%s, F=%d (%s, %s)", r.Model, r.F, mappingLabel(r.comp.cfg), r.Mode)
	return gantt.Render(w, title, rows, r.MakespanCycles, gantt.Options{Width: width, ShowPEs: true})
}

func mappingLabel(cfg Config) string {
	if cfg.WeightDuplication {
		return "wdup"
	}
	return "no duplication"
}

// CriticalStep is one element of the schedule's critical path.
type CriticalStep struct {
	Layer  string
	Set    int
	Start  int64
	End    int64
	Cause  string // "dep", "resource", "window", or "start"
	Cycles int64
}

// CriticalPath returns the chain of set executions that determines the
// makespan (earliest first): each step could not start earlier because
// of the previous one (a data dependency or the same replica's previous
// set). It answers "which layers limit inference latency" — the
// duplication candidates for the next extra PEs.
func (r *Report) CriticalPath() ([]CriticalStep, error) {
	if r.sched == nil {
		return nil, errDegradedReport(r)
	}
	path, err := r.sched.CriticalPath(r.comp.depGraph, r.comp.schedOptions(r.Mode))
	if err != nil {
		return nil, err
	}
	out := make([]CriticalStep, len(path))
	for i, st := range path {
		out[i] = CriticalStep{
			Layer:  r.comp.depGraph.Plan.Layers[st.Item.Layer].Group.Node.Name,
			Set:    st.Item.Set,
			Start:  st.Item.Start,
			End:    st.Item.End,
			Cause:  st.Cause,
			Cycles: st.Item.End - st.Item.Start,
		}
	}
	return out, nil
}

// CriticalLayers aggregates the critical path per layer, sorted along
// the path: how many makespan cycles each layer chain contributes.
func (r *Report) CriticalLayers() ([]CriticalStep, error) {
	if r.sched == nil {
		return nil, errDegradedReport(r)
	}
	path, err := r.sched.CriticalPath(r.comp.depGraph, r.comp.schedOptions(r.Mode))
	if err != nil {
		return nil, err
	}
	var out []CriticalStep
	for _, sum := range schedule.SummarizeCriticalPath(r.comp.depGraph, path) {
		out = append(out, CriticalStep{Layer: sum.Name, Set: sum.Steps, Cycles: sum.Cycles})
	}
	return out, nil
}

// WriteScheduleJSON serializes the full set-level schedule (layer names,
// replica assignment, per-set timing and OFM boxes) as indented JSON for
// external tooling.
func (r *Report) WriteScheduleJSON(w io.Writer) error {
	if r.sched == nil {
		return errDegradedReport(r)
	}
	return r.sched.WriteJSON(w, r.comp.depGraph)
}

// errDegradedReport is the uniform failure of timeline-derived queries
// on a coarse (degraded) report.
func errDegradedReport(r *Report) error {
	return fmt.Errorf("clsacim: %q %s report is degraded (no timeline)", r.Model, r.Mode)
}

// ScheduleCoarse is the degraded-mode counterpart of Schedule: it runs
// the zero-alloc coarse simulation (SimulateCoarse) and wraps the
// scalar metrics in a Report marked Degraded. Makespan, latency, and
// utilization are exact — the coarse path runs the same event loop —
// but the report holds no timeline, so LayerSpans, Gantt rendering,
// critical paths, schedule export, and the energy estimate are
// unavailable. Virtualized compilations (F < PEmin) are refused: the
// coarse loop does not model crossbar reprogramming.
func (c *Compiled) ScheduleCoarse(mode ScheduleMode) (*Report, error) {
	if c.virtual != nil {
		return nil, fmt.Errorf("clsacim: %q runs on %d < PEmin=%d PEs; coarse scheduling does not model crossbar reprogramming",
			c.ModelName, c.arch.NumPEs, c.peMin)
	}
	sum, err := c.SimulateCoarse(mode)
	if err != nil {
		return nil, err
	}
	return &Report{
		Model:          c.ModelName,
		Mode:           mode,
		F:              c.arch.NumPEs,
		PEmin:          c.peMin,
		MakespanCycles: sum.MakespanCycles,
		LatencyNanos:   sum.LatencyNanos,
		Utilization:    sum.Utilization,
		Duplication:    append([]int(nil), c.dup.D...),
		Degraded:       true,
		comp:           c,
	}, nil
}

// SimReport is the outcome of the event-driven simulation.
type SimReport struct {
	Model          string
	Mode           ScheduleMode
	MakespanCycles int64
	LatencyNanos   float64
	Utilization    float64
	// PeakLiveElems is the maximum number of intermediate OFM elements
	// simultaneously buffered on the architecture.
	PeakLiveElems int64
	// PEActive holds per-PE busy cycles (length F).
	PEActive []int64
}

// Simulate executes the workload on the discrete-event simulator
// (package sim) instead of the analytic scheduler. Both produce
// identical timelines — the simulator additionally reports per-PE
// activity and buffer pressure.
//
// Re-simulation on a cached compilation is incremental: the Stage I-III
// artifacts and the dispatch plan are reused across modes, the event
// loop's scratch state comes from a shared pool, and only the event
// loop itself re-runs.
func (c *Compiled) Simulate(mode ScheduleMode) (*SimReport, error) {
	nm := c.normalizeMode(mode)
	st := c.sched.simPool.Get().(*sim.State)
	res, err := st.Run(c.arch, c.depGraph, c.mapped, nm.policy(), sim.Options{
		Edge:     c.schedOptions(nm).EdgeCost,
		Dispatch: c.dispatch(),
	})
	c.sched.simPool.Put(st)
	if err != nil {
		return nil, err
	}
	return &SimReport{
		Model:          c.ModelName,
		Mode:           mode,
		MakespanCycles: res.Makespan,
		LatencyNanos:   metrics.LatencyNanos(res.Makespan, c.arch.TMVMNanos),
		Utilization:    res.Utilization,
		PeakLiveElems:  res.PeakLiveElems,
		PEActive:       res.PEActive,
	}, nil
}

// SimSummary is the outcome of a coarse simulation: the scalar metrics
// of a run that skipped per-set timeline materialization.
type SimSummary struct {
	Model          string
	Mode           ScheduleMode
	MakespanCycles int64
	LatencyNanos   float64
	Utilization    float64
	PeakLiveElems  int64
}

// SimulateCoarse is the fast-path simulation for callers that only need
// makespan, utilization, and buffer pressure: the event loop runs
// without materializing per-set timeline items, and on a warm
// compilation it allocates nothing — the cheap cost model for
// mapping-space search loops that call it thousands of times.
func (c *Compiled) SimulateCoarse(mode ScheduleMode) (SimSummary, error) {
	nm := c.normalizeMode(mode)
	st := c.sched.simPool.Get().(*sim.State)
	res, err := st.RunCoarse(c.arch, c.depGraph, c.mapped, nm.policy(), sim.Options{
		Edge:     c.schedOptions(nm).EdgeCost,
		Dispatch: c.dispatch(),
	})
	c.sched.simPool.Put(st)
	if err != nil {
		return SimSummary{}, err
	}
	return SimSummary{
		Model:          c.ModelName,
		Mode:           mode,
		MakespanCycles: res.Makespan,
		LatencyNanos:   metrics.LatencyNanos(res.Makespan, c.arch.TMVMNanos),
		Utilization:    res.Utilization,
		PeakLiveElems:  res.PeakLiveElems,
	}, nil
}

// Evaluation compares one configuration against the paper's reference:
// layer-by-layer scheduling without weight duplication on F = PEmin PEs.
type Evaluation struct {
	Baseline *Report // lbl, x = 0, no duplication
	Result   *Report
	// Speedup is Baseline.MakespanCycles / Result.MakespanCycles.
	Speedup float64
	// UtilizationGain is Result.Utilization / Baseline.Utilization.
	UtilizationGain float64
	// Eq3Speedup is the paper's Eq. 3 estimate from the utilizations.
	Eq3Speedup float64
	// Degraded marks an evaluation served by the coarse fast path after
	// its deadline expired (Request.AllowDegraded / WithDegradation):
	// the scalar metrics are exact, but both Reports carry no timeline.
	Degraded bool
}

// Evaluate compiles and schedules model under cfg and mode, and measures
// speedup and utilization gain against the layer-by-layer reference. It
// is a one-shot compatibility wrapper around a throwaway Engine; sweeps
// and services should hold an Engine so the baseline and repeated
// configurations compile once instead of per call.
func Evaluate(model *Model, cfg Config, mode ScheduleMode) (*Evaluation, error) {
	e, err := New(WithConfig(cfg))
	if err != nil {
		return nil, err
	}
	return e.EvaluateModel(context.Background(), model, Request{Mode: mode})
}
