package clsacim

import (
	"context"
	"errors"
	"io"
	"testing"
)

// degradedRequest is a request whose 1ms deadline cannot cover a cold
// compile, forcing the degraded path when opted in.
func degradedRequest() Request {
	return Request{
		Model: "mobilenetv1", Mode: ModeCrossLayer,
		TimeoutMillis: 1, AllowDegraded: true,
	}
}

func TestDegradedEvaluation(t *testing.T) {
	e, err := New(WithValidation())
	if err != nil {
		t.Fatal(err)
	}
	ev, err := e.Evaluate(context.Background(), degradedRequest())
	if err != nil {
		t.Fatalf("degradable evaluate: %v", err)
	}
	if !ev.Degraded {
		t.Fatal("evaluation not marked Degraded despite 1ms deadline on a cold compile")
	}
	if !ev.Result.Degraded || !ev.Baseline.Degraded {
		t.Error("degraded evaluation's reports not marked Degraded")
	}
	if ev.Result.MakespanCycles <= 0 || ev.Result.Utilization <= 0 || ev.Speedup <= 0 {
		t.Errorf("degraded scalar metrics missing: makespan %d, utilization %g, speedup %g",
			ev.Result.MakespanCycles, ev.Result.Utilization, ev.Speedup)
	}

	// The coarse metrics are exact: the full pipeline on the now-warm
	// cache must agree.
	full, err := e.Evaluate(context.Background(), Request{Model: "mobilenetv1", Mode: ModeCrossLayer})
	if err != nil {
		t.Fatal(err)
	}
	if full.Degraded {
		t.Error("warm-cache evaluation degraded despite no deadline")
	}
	if full.Result.MakespanCycles != ev.Result.MakespanCycles {
		t.Errorf("coarse makespan %d != full makespan %d",
			ev.Result.MakespanCycles, full.Result.MakespanCycles)
	}
	if full.Baseline.MakespanCycles != ev.Baseline.MakespanCycles {
		t.Errorf("coarse baseline makespan %d != full %d",
			ev.Baseline.MakespanCycles, full.Baseline.MakespanCycles)
	}

	// Timeline-derived queries fail cleanly instead of panicking.
	if spans := ev.Result.LayerSpans(); spans != nil {
		t.Errorf("degraded LayerSpans returned %d spans, want nil", len(spans))
	}
	if err := ev.Result.RenderGantt(io.Discard, 0); err == nil {
		t.Error("degraded RenderGantt succeeded")
	}
	if _, err := ev.Result.CriticalPath(); err == nil {
		t.Error("degraded CriticalPath succeeded")
	}
	if err := ev.Result.WriteScheduleJSON(io.Discard); err == nil {
		t.Error("degraded WriteScheduleJSON succeeded")
	}

	st := e.Stats()
	if st.DegradedEvaluations != 1 {
		t.Errorf("Stats.DegradedEvaluations = %d, want 1", st.DegradedEvaluations)
	}
	if st.Evaluations != 2 {
		t.Errorf("Stats.Evaluations = %d, want 2", st.Evaluations)
	}
}

func TestTightDeadlineWithoutOptInStillFails(t *testing.T) {
	e, err := New()
	if err != nil {
		t.Fatal(err)
	}
	req := degradedRequest()
	req.AllowDegraded = false
	_, err = e.Evaluate(context.Background(), req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestWithDegradationAppliesEngineWide(t *testing.T) {
	e, err := New(WithDegradation())
	if err != nil {
		t.Fatal(err)
	}
	req := degradedRequest()
	req.AllowDegraded = false
	ev, err := e.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatalf("engine-wide degradation: %v", err)
	}
	if !ev.Degraded {
		t.Error("evaluation not degraded under WithDegradation")
	}
}

func TestCallerDeadlineStaysHard(t *testing.T) {
	e, err := New()
	if err != nil {
		t.Fatal(err)
	}
	// Degradation rescues only the request's own TimeoutMillis; an
	// expired caller context fails even with AllowDegraded.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = e.Evaluate(ctx, degradedRequest())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestBatchDegradesPerRequest(t *testing.T) {
	e, err := New()
	if err != nil {
		t.Fatal(err)
	}
	tight := degradedRequest()
	strict := degradedRequest()
	strict.AllowDegraded = false
	relaxed := Request{Model: "mobilenetv1", Mode: ModeCrossLayer}
	out, err := e.EvaluateBatch(context.Background(), []Request{tight, strict, relaxed})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Err != nil || out[0].Evaluation == nil || !out[0].Evaluation.Degraded {
		t.Errorf("degradable item: ev %+v, err %v; want degraded evaluation", out[0].Evaluation, out[0].Err)
	}
	if !errors.Is(out[1].Err, context.DeadlineExceeded) {
		t.Errorf("strict item err = %v, want DeadlineExceeded", out[1].Err)
	}
	if out[2].Err != nil || out[2].Evaluation == nil || out[2].Evaluation.Degraded {
		t.Errorf("relaxed item: ev %+v, err %v; want full evaluation", out[2].Evaluation, out[2].Err)
	}
}

func TestVirtualizedCompilationRefusesDegradation(t *testing.T) {
	e, err := New(WithVirtualization(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Force F below PEmin (238 for mobilenetv1, largest layer 37) so
	// the compilation virtualizes; the coarse path cannot model
	// reloads, so the deadline stays fatal.
	req := Request{
		Model: "mobilenetv1", Mode: ModeLayerByLayer,
		TotalPEs: 64, TimeoutMillis: 1, AllowDegraded: true,
	}
	_, err = e.Evaluate(context.Background(), req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded (no degraded result for virtualized)", err)
	}
}
