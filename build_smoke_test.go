package clsacim

import (
	"os/exec"
	"testing"
)

// TestBuildCommandsAndExamples compile-checks every cmd/* and examples/*
// main package. Those packages have no test files of their own, so
// without this smoke test a refactor can break them while the tier-1
// suite stays green and the rot only surfaces for users.
func TestBuildCommandsAndExamples(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go toolchain not on PATH: %v", err)
	}
	// Building multiple main packages at once makes `go build` discard
	// the executables: a pure compile check with no artifacts.
	cmd := exec.Command(goBin, "build", "./cmd/...", "./examples/...")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build ./cmd/... ./examples/...: %v\n%s", err, out)
	}
}
