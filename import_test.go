package clsacim

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinyYOLOExportPath is the checked-in export of the builtin
// tinyyolov4 network — the reference imported model of the test suite.
const tinyYOLOExportPath = "internal/importer/testdata/tinyyolov4.json"

// TestImportedTinyYOLODifferential is the builtin-vs-imported
// differential: the builtin tinyyolov4 round-tripped through
// ExportModel + ImportModelReader must compile to an identical CSR
// dependency graph and produce byte-identical timelines and makespans
// under all three canonical policies. The exported file is also pinned
// under internal/importer/testdata (regenerate with -update).
func TestImportedTinyYOLODifferential(t *testing.T) {
	builtin := load(t, "tinyyolov4")
	var buf bytes.Buffer
	if err := ExportModel(builtin, &buf); err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.MkdirAll(filepath.Dir(tinyYOLOExportPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(tinyYOLOExportPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	onDisk, err := os.ReadFile(tinyYOLOExportPath)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(onDisk, buf.Bytes()) {
		t.Errorf("%s is stale (live export differs at line %d); regenerate with -update",
			tinyYOLOExportPath, firstDiffLine(onDisk, buf.Bytes()))
	}

	imported, err := ImportModelReader("tinyyolov4-imported", bytes.NewReader(onDisk), ModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{TargetSets: 26}
	cb, err := Compile(builtin, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ci, err := Compile(imported, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !cb.depGraph.CSR.Equal(ci.depGraph.CSR) {
		t.Fatal("imported tinyyolov4 compiles to a different CSR dependency graph")
	}
	for _, mode := range []ScheduleMode{ModeLayerByLayer, ModeWindow(4), ModeCrossLayer} {
		rb, err := cb.Schedule(mode)
		if err != nil {
			t.Fatalf("%s builtin: %v", mode, err)
		}
		ri, err := ci.Schedule(mode)
		if err != nil {
			t.Fatalf("%s imported: %v", mode, err)
		}
		if rb.MakespanCycles != ri.MakespanCycles {
			t.Errorf("%s: makespan %d (imported) != %d (builtin)", mode, ri.MakespanCycles, rb.MakespanCycles)
		}
		var tb, ti bytes.Buffer
		if err := rb.WriteScheduleJSON(&tb); err != nil {
			t.Fatal(err)
		}
		if err := ri.WriteScheduleJSON(&ti); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(tb.Bytes(), ti.Bytes()) {
			t.Errorf("%s: imported timeline differs from builtin at line %d",
				mode, firstDiffLine(tb.Bytes(), ti.Bytes()))
		}
	}
}

// TestGoldenImportedTimelines pins the timelines of the checked-in
// imported small CNN, extending the golden-fixture net to the import
// path end to end: file -> importer -> canonicalize -> compile ->
// schedule. Regenerate with
//
//	go test -run TestGoldenImportedTimelines -update .
func TestGoldenImportedTimelines(t *testing.T) {
	m, err := ImportModel(filepath.Join("internal", "importer", "testdata", "smallcnn.json"), ModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(m, Config{TargetSets: 26})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []ScheduleMode{ModeLayerByLayer, ModeWindow(4), ModeCrossLayer} {
		rep, err := c.Schedule(mode)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		var got bytes.Buffer
		if err := rep.WriteScheduleJSON(&got); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		path := filepath.Join("testdata", "golden", fmt.Sprintf("imported_smallcnn_%s.json", mode.Name()))
		if *update {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run 'go test -run TestGoldenImportedTimelines -update .' to create fixtures)", mode, err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Errorf("%s: imported timeline drifted from %s; diff line %d.\n"+
				"If the change is intentional, regenerate with -update and review the fixture diff.",
				mode, path, firstDiffLine(got.Bytes(), want))
		}
	}
}

// TestImportedModelSchedulesUnderValidation runs an imported model
// through a WithValidation engine: the schedule must pass the full
// check.Timeline invariant set on every policy.
func TestImportedModelSchedulesUnderValidation(t *testing.T) {
	m, err := ImportModel(filepath.Join("internal", "importer", "testdata", "smallcnn.onnx"), ModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := RegisterModel("smallcnn-validated", m); err != nil {
		t.Fatal(err)
	}
	eng, err := New(WithValidation())
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []ScheduleMode{ModeLayerByLayer, ModeWindow(4), ModeCrossLayer} {
		ev, err := eng.Evaluate(context.Background(), Request{Model: "smallcnn-validated", Mode: mode})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if ev.Result.MakespanCycles <= 0 {
			t.Errorf("%s: makespan %d", mode, ev.Result.MakespanCycles)
		}
	}
}

func TestImportModelTypedErrors(t *testing.T) {
	// The root package re-exports the importer's error classes; a bad
	// graph surfaces through ImportModelReader with errors.Is intact.
	_, err := ImportModelReader("x", strings.NewReader(`{"schema": "clsacim-graph/v1"}`), ModelOptions{})
	if !errors.Is(err, ErrBadGraph) {
		t.Errorf("error %v, want ErrBadGraph", err)
	}
	_, err = ImportModelReader("x", strings.NewReader(
		`{"schema": "clsacim-graph/v1", "input": {"name": "in", "shape": [4, 4, 1]}, `+
			`"nodes": [{"name": "s", "op": "Softmax", "inputs": ["in"]}], "outputs": ["s"]}`), ModelOptions{})
	if !errors.Is(err, ErrUnsupportedOp) {
		t.Errorf("error %v, want ErrUnsupportedOp", err)
	}
	// InputSize cannot apply: the file fixes the input shape.
	_, err = ImportModel(tinyYOLOExportPath, ModelOptions{InputSize: 128})
	if err == nil || !strings.Contains(err.Error(), "InputSize") {
		t.Errorf("error %v, want InputSize rejection", err)
	}
	// A nameless reader import must fail rather than register as "".
	_, err = ImportModelReader("", strings.NewReader(
		`{"schema": "clsacim-graph/v1", "input": {"name": "in", "shape": [4, 4, 1]}, `+
			`"nodes": [{"name": "f", "op": "Flatten", "inputs": ["in"]}], "outputs": ["f"]}`), ModelOptions{})
	if err == nil || !strings.Contains(err.Error(), "needs a name") {
		t.Errorf("error %v, want needs-a-name", err)
	}
}
