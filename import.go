package clsacim

import (
	"fmt"
	"io"

	"clsacim/internal/importer"
	"clsacim/internal/nn"
)

// Typed import error classes, re-exported from the importer so callers
// can branch with errors.Is without importing internal packages. Every
// ImportModel failure caused by the file's content wraps exactly one of
// them and carries the path of the offending element.
var (
	// ErrBadGraph reports a structurally broken graph file.
	ErrBadGraph = importer.ErrBadGraph
	// ErrUnsupportedOp reports an operator outside the modeled subset.
	ErrUnsupportedOp = importer.ErrUnsupportedOp
	// ErrShapeMismatch reports shape or parameter-length inconsistencies.
	ErrShapeMismatch = importer.ErrShapeMismatch
)

// ImportModel parses an external graph file into a Model ready for
// Compile or RegisterModel. Two formats are accepted, chosen by file
// extension: ".onnx" selects the ONNX-subset reader, anything else the
// clsacim-graph/v1 JSON schema (see docs/importing.md for both).
//
// The model is named by the file's declared name, falling back to the
// base filename. Weights travel in the file itself, so
// ModelOptions.WithWeights and Seed are ignored; InputSize is rejected
// because the file fixes the input shape.
func ImportModel(path string, opt ModelOptions) (*Model, error) {
	if err := checkImportOptions(opt); err != nil {
		return nil, err
	}
	res, err := importer.ImportFile(path, importer.Options{})
	if err != nil {
		return nil, err
	}
	return importedModel(res.Graph, res.Name)
}

// ImportModelReader parses a graph description from r (format sniffed:
// JSON documents start with '{', anything else is read as ONNX). A
// non-empty name overrides the name declared in the file.
func ImportModelReader(name string, r io.Reader, opt ModelOptions) (*Model, error) {
	if err := checkImportOptions(opt); err != nil {
		return nil, err
	}
	res, err := importer.Import(r, importer.Options{})
	if err != nil {
		return nil, err
	}
	if name == "" {
		name = res.Name
	}
	return importedModel(res.Graph, name)
}

// checkImportOptions rejects options that cannot apply to imports.
func checkImportOptions(opt ModelOptions) error {
	if opt.InputSize != 0 {
		return fmt.Errorf("clsacim: ModelOptions.InputSize does not apply to imported models (the file fixes the input shape)")
	}
	return nil
}

// importedModel wraps a parsed graph as a Model. Compilation mutates
// its working graph, so each build hands out a fresh clone.
func importedModel(src *nn.Graph, name string) (*Model, error) {
	if name == "" {
		return nil, fmt.Errorf("clsacim: imported model needs a name (declare one in the file or pass it to ImportModelReader)")
	}
	return &Model{
		Name:  name,
		build: func() (*nn.Graph, error) { return src.Clone(), nil },
	}, nil
}

// ExportModel writes m's graph as a clsacim-graph/v1 JSON document, the
// inverse of ImportModel: importing the output reconstructs an
// equivalent model. Builtin, Builder-made, and imported models all
// export.
func ExportModel(m *Model, w io.Writer) error {
	g, err := m.graph()
	if err != nil {
		return err
	}
	return importer.ExportJSON(g, m.Name, w)
}
