// Command clsasim compiles a model for a tiled CIM architecture and
// reports the paper's evaluation metrics for one configuration:
// makespan, latency, utilization (Eq. 2), and speedup against the
// layer-by-layer reference.
//
// Usage:
//
//	clsasim -model tinyyolov4 -x 32 -wdup -sched xinf
//	clsasim -model resnet50 -x 4 -wdup -sched xinf -noc 1.5
//	clsasim -model vgg16 -sched lbl -sets 26
//	clsasim -model tinyyolov4 -x 32 -wdup -sched x4   # at most 4 layers active
//	clsasim -import net.onnx -x 16 -wdup              # imported graph file
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	clsacim "clsacim"
)

func main() {
	model := flag.String("model", "tinyyolov4", "model name")
	x := flag.Int("x", 0, "extra PEs beyond PEmin (the paper's wdup+x)")
	wdup := flag.Bool("wdup", false, "enable weight duplication mapping")
	sched := flag.String("sched", "xinf", "scheduling: xinf (CLSA-CIM), lbl (layer-by-layer), or xK bounded window (e.g. x4)")
	solver := flag.String("solver", "dp", "duplication solver: dp, greedy, minmax, none")
	sets := flag.Int("sets", 0, "target sets per layer (0 = finest)")
	pe := flag.Int("pe", 256, "crossbar dimension")
	noc := flag.Float64("noc", 0, "NoC cycles per mesh hop (0 = idealized)")
	gpeu := flag.Float64("gpeu", 0, "GPEU cycles per 1024 transferred elements")
	simulate := flag.Bool("sim", false, "also run the event-driven simulator and report buffer pressure")
	critical := flag.Bool("critical", false, "print the critical path aggregated per layer")
	importPath := flag.String("import", "", "graph file to import (clsacim-graph/v1 JSON or .onnx); becomes the default -model")
	flag.Parse()

	if *importPath != "" {
		m, err := clsacim.ImportModel(*importPath, clsacim.ModelOptions{})
		if err != nil {
			fatal(err)
		}
		if err := clsacim.RegisterModel(m.Name, m); err != nil {
			fatal(err)
		}
		// Unless -model was given explicitly, evaluate the import.
		if !flagSet("model") {
			*model = m.Name
		}
	}

	mode, err := clsacim.ParseMode(*sched)
	if err != nil {
		fatal(err)
	}
	eng, err := clsacim.New(
		clsacim.WithCrossbar(*pe, *pe),
		clsacim.WithNoC(*noc),
		clsacim.WithGPEU(*gpeu),
		clsacim.WithTargetSets(*sets),
	)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	req := clsacim.Request{
		Model:             *model,
		Mode:              mode,
		ExtraPEs:          *x,
		WeightDuplication: *wdup,
		Solver:            *solver,
	}
	ev, err := eng.Evaluate(ctx, req)
	if err != nil {
		fatal(err)
	}
	r := ev.Result
	fmt.Printf("model          %s\n", r.Model)
	fmt.Printf("architecture   F = %d PEs (PEmin %d + x %d), %dx%d crossbars\n",
		r.F, r.PEmin, r.F-r.PEmin, *pe, *pe)
	fmt.Printf("mapping        wdup=%v solver=%s\n", *wdup, *solver)
	fmt.Printf("scheduling     %v\n", r.Mode)
	fmt.Printf("makespan       %d cycles (%.3f ms at tMVM=1400ns)\n",
		r.MakespanCycles, r.LatencyNanos/1e6)
	fmt.Printf("utilization    %.2f%% (baseline lbl: %.2f%%)\n",
		r.Utilization*100, ev.Baseline.Utilization*100)
	fmt.Printf("speedup        %.2fx vs layer-by-layer (Eq.3 estimate %.2fx)\n",
		ev.Speedup, ev.Eq3Speedup)
	if dups := nonTrivial(r.Duplication); dups > 0 {
		fmt.Printf("duplication    %d layers duplicated: %v\n", dups, r.Duplication)
	}

	if *simulate {
		// The engine hands back the cached compilation of the same key
		// the evaluation used — no recompile for the simulator run.
		comp, err := eng.Compile(ctx, req)
		if err != nil {
			fatal(err)
		}
		sr, err := comp.Simulate(mode)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("event sim      makespan %d cycles, utilization %.2f%%, peak live data %d elements\n",
			sr.MakespanCycles, sr.Utilization*100, sr.PeakLiveElems)
	}

	if *critical {
		layers, err := r.CriticalLayers()
		if err != nil {
			fatal(err)
		}
		fmt.Println("critical path (per-layer contribution to the makespan):")
		for _, l := range layers {
			fmt.Printf("  %-16s %8d cycles over %d sets\n", l.Layer, l.Cycles, l.Set)
		}
	}
}

// flagSet reports whether the named flag was given on the command line.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func nonTrivial(d []int) int {
	n := 0
	for _, v := range d {
		if v > 1 {
			n++
		}
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clsasim:", err)
	os.Exit(1)
}
