// Command clsaload drives mixed traffic against a clsaserved daemon
// through the resilient client (retries, backoff, circuit breaker) and
// reports what survived. Its purpose is chaos smoke testing: point it
// at a daemon running with -faults and assert that the client-side
// resilience machinery turns an unreliable daemon into a usable
// service.
//
//	clsaserved -addr :8080 -validate -faults "seed=7,error=0.05,panic=0.02,drop=0.02,latency=0.2:1ms:20ms" &
//	clsaload -addr http://127.0.0.1:8080 -duration 15s -concurrency 4
//
// The traffic mix covers every endpoint: single evaluations across
// models and scheduling modes, batches, streamed multi-inference
// requests, deadline-pressured evaluations with allow_degraded, and
// stats/models reads. Failures are classified: temporary errors that
// outlived the retry budget (shed, injected faults, open breaker) are
// tolerated and counted; a hard failure — a non-retryable API error
// such as a 400 or an unknown model — fails the run, because the
// resilience layer must never convert good requests into client
// mistakes. Exit status 0 means every completed call was coherent and
// at least -min-success of them succeeded.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	clsacim "clsacim"
	"clsacim/client"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "daemon base URL")
	duration := flag.Duration("duration", 15*time.Second, "how long to drive traffic")
	concurrency := flag.Int("concurrency", 4, "parallel workers")
	wait := flag.Duration("wait", 10*time.Second, "how long to wait for the daemon to become healthy")
	minSuccess := flag.Int("min-success", 1, "minimum successful calls for exit 0")
	seed := flag.Uint64("seed", 1, "retry jitter seed")
	flag.Parse()

	if err := run(*addr, *duration, *concurrency, *wait, *minSuccess, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "clsaload:", err)
		os.Exit(1)
	}
}

// counters aggregates worker outcomes.
type counters struct {
	calls     atomic.Int64
	successes atomic.Int64
	degraded  atomic.Int64
	soft      atomic.Int64 // temporary errors that outlived the retries
	hard      atomic.Int64
}

func run(addr string, duration time.Duration, concurrency int, wait time.Duration, minSuccess int, seed uint64) error {
	if concurrency <= 0 {
		return fmt.Errorf("invalid concurrency %d", concurrency)
	}
	c, err := client.New(addr,
		client.WithRetry(client.RetryPolicy{
			MaxAttempts: 5,
			BaseDelay:   25 * time.Millisecond,
			MaxDelay:    time.Second,
			Budget:      50,
			Seed:        seed,
		}),
		client.WithCircuitBreaker(10, 500*time.Millisecond),
	)
	if err != nil {
		return err
	}

	// The daemon may still be binding its listener (CI starts both
	// processes back to back); poll health before driving load.
	waitCtx, cancel := context.WithTimeout(context.Background(), wait)
	defer cancel()
	for {
		if err := c.Health(waitCtx); err == nil {
			break
		}
		select {
		case <-waitCtx.Done():
			return fmt.Errorf("daemon at %s not healthy after %v", addr, wait)
		case <-time.After(100 * time.Millisecond):
		}
	}

	ctx, stop := context.WithTimeout(context.Background(), duration)
	defer stop()
	var cnt counters
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker(ctx, c, w, &cnt)
		}(w)
	}
	wg.Wait()

	log.Printf("clsaload: %d calls: %d ok (%d degraded), %d temporary failures, %d hard failures",
		cnt.calls.Load(), cnt.successes.Load(), cnt.degraded.Load(), cnt.soft.Load(), cnt.hard.Load())
	if stats, err := c.Stats(context.Background()); err == nil {
		log.Printf("clsaload: daemon: %d requests, %d errors, %d panics recovered, %d shed, %d degraded",
			stats.Server.Requests, stats.Server.Errors, stats.Server.Panics, stats.Server.Shed, stats.Server.Degraded)
	}
	if n := cnt.hard.Load(); n > 0 {
		return fmt.Errorf("%d hard failures", n)
	}
	if n := cnt.successes.Load(); n < int64(minSuccess) {
		return fmt.Errorf("only %d successful calls (want >= %d)", n, minSuccess)
	}
	return nil
}

// worker drives one request loop until ctx expires, rotating through
// the traffic mix.
func worker(ctx context.Context, c *client.Client, w int, cnt *counters) {
	models := []string{"tinyconvnet", "tinybranchnet", "tinymlp", "tinydwnet"}
	modes := []clsacim.ScheduleMode{clsacim.ModeLayerByLayer, clsacim.ModeCrossLayer, clsacim.ModeWindow(2)}
	for i := w; ctx.Err() == nil; i++ {
		model := models[i%len(models)]
		mode := modes[i%len(modes)]
		var err error
		degraded := false
		switch i % 8 {
		case 0: // batch across models
			var batch []clsacim.Request
			for _, m := range models[:3] {
				batch = append(batch, clsacim.Request{Model: m, Mode: mode})
			}
			res, berr := c.EvaluateBatch(ctx, batch)
			err = berr
			if berr == nil {
				for _, r := range res {
					if r.Error != "" {
						err = fmt.Errorf("batch item: %s", r.Error)
						break
					}
					if r.Evaluation != nil && r.Evaluation.Degraded {
						degraded = true
					}
				}
			}
		case 1: // streamed multi-inference
			_, err = c.Stream(ctx, clsacim.StreamRequest{
				Models:     []clsacim.StreamModel{{Model: model}},
				Inferences: 4,
				Mode:       clsacim.ModeLayerByLayer,
			})
		case 2: // deadline pressure with degradation opt-in
			res, eerr := c.Evaluate(ctx, clsacim.Request{
				Model: model, Mode: mode, AllowDegraded: true, TimeoutMillis: 1,
			})
			err = eerr
			if eerr == nil && res.Degraded {
				degraded = true
			}
		case 3: // reads
			if i%16 == 3 {
				_, err = c.Stats(ctx)
			} else {
				_, err = c.Models(ctx)
			}
		default: // single evaluation
			res, eerr := c.Evaluate(ctx, clsacim.Request{Model: model, Mode: mode})
			err = eerr
			if eerr == nil && res.Degraded {
				degraded = true
			}
		}
		cnt.calls.Add(1)
		switch {
		case err == nil:
			cnt.successes.Add(1)
			if degraded {
				cnt.degraded.Add(1)
			}
		case isHard(err):
			cnt.hard.Add(1)
			log.Printf("clsaload: hard failure: %v", err)
		default:
			cnt.soft.Add(1)
		}
	}
}

// isHard classifies a failure that survived the client's retries.
// Temporary API errors, an open breaker, transport noise, and context
// expiry (including the driver's own deadline) are the expected
// residue of chaos; a non-retryable API error means a request was
// mangled somewhere and fails the run. A degradable request that still
// timed out server-side reports deadline_exceeded — expected under
// injected latency, so it stays soft.
func isHard(err error) bool {
	if errors.Is(err, client.ErrCircuitOpen) ||
		errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return false
	}
	var api *client.APIError
	if errors.As(err, &api) {
		return !api.Temporary()
	}
	// Transport errors (resets, drops mid-body, refused during
	// restarts) are the faults being injected.
	return false
}
