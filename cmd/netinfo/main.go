// Command netinfo prints the base-layer structure of a model after
// canonicalization — the data of paper Table I — or the benchmark
// overview of paper Table II.
//
// Usage:
//
//	netinfo -model tinyyolov4          # Table I style layer listing
//	netinfo -table2                    # Table II benchmark overview
//	netinfo -model vgg16 -pe 128       # retargeted crossbar size
//	netinfo -import net.json           # layer listing of an imported graph
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	clsacim "clsacim"
	"clsacim/internal/bench"
)

func main() {
	model := flag.String("model", "tinyyolov4", "model name (see -list)")
	pe := flag.Int("pe", 256, "crossbar dimension (PE rows = cols)")
	table2 := flag.Bool("table2", false, "print the paper Table II benchmark overview")
	list := flag.Bool("list", false, "list available models")
	importPath := flag.String("import", "", "graph file to import (clsacim-graph/v1 JSON or .onnx); becomes the default -model")
	flag.Parse()

	if *importPath != "" {
		m, err := clsacim.ImportModel(*importPath, clsacim.ModelOptions{})
		if err != nil {
			fatal(err)
		}
		if err := clsacim.RegisterModel(m.Name, m); err != nil {
			fatal(err)
		}
		if !flagSet("model") {
			*model = m.Name
		}
	}

	if *list {
		for _, name := range clsacim.AllModels() {
			fmt.Println(name)
		}
		return
	}

	if *table2 {
		h := bench.NewHarness(clsacim.Config{PERows: *pe, PECols: *pe})
		if err := h.PrintTableII(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	eng, err := clsacim.New(clsacim.WithCrossbar(*pe, *pe))
	if err != nil {
		fatal(err)
	}
	comp, err := eng.Compile(context.Background(), clsacim.Request{Model: *model})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d base layers, PEmin = %d (%dx%d PEs)\n",
		*model, comp.BaseLayerCount(), comp.PEmin(), *pe, *pe)
	fmt.Printf("%-14s %-16s %-16s %6s %10s\n", "Layer", "IFM (HWC)", "OFM (HWC)", "#PE", "Cycles")
	for _, r := range comp.LayerTable() {
		fmt.Printf("%-14s (%4d,%4d,%4d) (%4d,%4d,%4d) %6d %10d\n",
			r.Name, r.IFM[0], r.IFM[1], r.IFM[2], r.OFM[0], r.OFM[1], r.OFM[2], r.PEs, r.Cycles)
	}
}

// flagSet reports whether the named flag was given on the command line.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netinfo:", err)
	os.Exit(1)
}
