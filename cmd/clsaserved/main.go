// Command clsaserved is the clsacim evaluation daemon: it holds one
// concurrency-safe Engine and serves it over HTTP/JSON (package serve),
// so remote sweeps share a single bounded compile cache instead of
// recompiling per process.
//
// Usage:
//
//	clsaserved                                   # defaults on :8080
//	clsaserved -addr :9090 -workers 8 -cache-limit 128
//	clsaserved -timeout 30s -max-batch 512 -validate
//	clsaserved -config arch.json                 # engine base Config from JSON
//
// Endpoints: POST /v1/evaluate, POST /v1/evaluate/batch,
// POST /v1/stream, GET /v1/models, GET /v1/stats, GET /healthz. See
// docs/serving.md for the wire schema and curl examples.
//
// On SIGINT/SIGTERM the daemon stops accepting connections and gives
// in-flight requests -shutdown-grace to finish before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	clsacim "clsacim"
	"clsacim/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "batch evaluation workers (0 = GOMAXPROCS)")
	cacheLimit := flag.Int("cache-limit", 64, "max cached compilations, LRU-evicted beyond (0 = unbounded)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request handling deadline (0 = none)")
	maxBatch := flag.Int("max-batch", serve.DefaultMaxBatch, "max requests per batch call")
	grace := flag.Duration("shutdown-grace", 10*time.Second, "drain time for in-flight requests on SIGTERM")
	validate := flag.Bool("validate", false, "run the timeline invariant checker on every schedule (canary mode)")
	configPath := flag.String("config", "", "JSON file with the engine's base clsacim.Config (architecture defaults)")
	flag.Parse()

	if err := run(*addr, *workers, *cacheLimit, *timeout, *maxBatch, *grace, *validate, *configPath); err != nil {
		fmt.Fprintln(os.Stderr, "clsaserved:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, cacheLimit int, timeout time.Duration, maxBatch int, grace time.Duration, validate bool, configPath string) error {
	opts := []clsacim.Option{clsacim.WithCacheLimit(cacheLimit)}
	if configPath != "" {
		b, err := os.ReadFile(configPath)
		if err != nil {
			return err
		}
		var cfg clsacim.Config
		if err := json.Unmarshal(b, &cfg); err != nil {
			return fmt.Errorf("parsing %s: %w", configPath, err)
		}
		opts = append(opts, clsacim.WithConfig(cfg))
	}
	if workers > 0 {
		opts = append(opts, clsacim.WithWorkers(workers))
	}
	if validate {
		opts = append(opts, clsacim.WithValidation())
	}
	eng, err := clsacim.New(opts...)
	if err != nil {
		return err
	}
	handler, err := serve.New(eng,
		serve.WithRequestTimeout(timeout),
		serve.WithMaxBatch(maxBatch),
	)
	if err != nil {
		return err
	}

	srv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful shutdown: stop accepting on SIGINT/SIGTERM, then give
	// in-flight evaluations the grace window to finish.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("clsaserved: listening on %s (cache limit %d, timeout %v)", addr, cacheLimit, timeout)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err // bind failure etc.; never nil from ListenAndServe
	case <-ctx.Done():
	}
	stop()
	log.Printf("clsaserved: shutting down (grace %v)", grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("clsaserved: bye")
	return nil
}
