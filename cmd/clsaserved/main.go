// Command clsaserved is the clsacim evaluation daemon: it holds one
// concurrency-safe Engine and serves it over HTTP/JSON (package serve),
// so remote sweeps share a single bounded compile cache instead of
// recompiling per process.
//
// Usage:
//
//	clsaserved                                   # defaults on :8080
//	clsaserved -addr :9090 -workers 8 -cache-limit 128
//	clsaserved -timeout 30s -max-batch 512 -validate
//	clsaserved -config arch.json                 # engine base Config from JSON
//	clsaserved -admit "evaluate=32:64:500ms,batch=4"  # load shedding
//	clsaserved -degrade                          # deadline → coarse fallback
//	clsaserved -faults "seed=7,error=0.05"       # chaos testing only
//	clsaserved -import net.onnx -import other.json   # serve imported models
//
// Endpoints: POST /v1/evaluate, POST /v1/evaluate/batch,
// POST /v1/stream, GET /v1/models, GET /v1/stats, GET /healthz. See
// docs/serving.md for the wire schema, curl examples, and the
// resilience model (admission control, panic recovery, degraded mode).
//
// -faults injects deterministic faults (latency spikes, errors, handler
// panics, connection drops) into the request path for resilience
// testing; the CLSA_FAULTS environment variable provides the default
// spec. Never enable it on a production daemon.
//
// On SIGINT/SIGTERM the daemon stops accepting connections and gives
// in-flight requests -shutdown-grace to finish before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	clsacim "clsacim"
	"clsacim/internal/faultinject"
	"clsacim/serve"
)

// options collects the daemon's flag values.
type options struct {
	addr       string
	workers    int
	cacheLimit int
	timeout    time.Duration
	maxBatch   int
	grace      time.Duration
	validate   bool
	degrade    bool
	configPath string
	admitSpec  string
	faultsSpec string
	imports    importFlags
}

// importFlags collects a repeatable -import flag.
type importFlags []string

func (f *importFlags) String() string { return strings.Join(*f, ",") }

func (f *importFlags) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.IntVar(&o.workers, "workers", 0, "batch evaluation workers (0 = GOMAXPROCS)")
	flag.IntVar(&o.cacheLimit, "cache-limit", 64, "max cached compilations, LRU-evicted beyond (0 = unbounded)")
	flag.DurationVar(&o.timeout, "timeout", 60*time.Second, "per-request handling deadline (0 = none)")
	flag.IntVar(&o.maxBatch, "max-batch", serve.DefaultMaxBatch, "max requests per batch call")
	flag.DurationVar(&o.grace, "shutdown-grace", 10*time.Second, "drain time for in-flight requests on SIGTERM")
	flag.BoolVar(&o.validate, "validate", false, "run the timeline invariant checker on every schedule (canary mode)")
	flag.BoolVar(&o.degrade, "degrade", false, "serve coarse degraded results when a request deadline is too tight (engine-wide WithDegradation)")
	flag.StringVar(&o.configPath, "config", "", "JSON file with the engine's base clsacim.Config (architecture defaults)")
	flag.StringVar(&o.admitSpec, "admit", "", `admission gates per endpoint class, e.g. "evaluate=32:64:500ms,batch=4:8:1s,stream=2" (class=concurrency[:queue[:wait]])`)
	flag.StringVar(&o.faultsSpec, "faults", os.Getenv("CLSA_FAULTS"),
		`CHAOS TESTING: fault-injection spec, e.g. "seed=7,error=0.05,panic=0.01,drop=0.01,latency=0.2:1ms:50ms" (default $CLSA_FAULTS)`)
	flag.Var(&o.imports, "import", "graph file (clsacim-graph/v1 JSON or .onnx) to register at startup; repeatable")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "clsaserved:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	for _, path := range o.imports {
		m, err := clsacim.ImportModel(path, clsacim.ModelOptions{})
		if err != nil {
			return err
		}
		if err := clsacim.RegisterModel(m.Name, m); err != nil {
			return err
		}
		log.Printf("clsaserved: imported model %q from %s", m.Name, path)
	}
	opts := []clsacim.Option{clsacim.WithCacheLimit(o.cacheLimit)}
	if o.configPath != "" {
		b, err := os.ReadFile(o.configPath)
		if err != nil {
			return err
		}
		var cfg clsacim.Config
		if err := json.Unmarshal(b, &cfg); err != nil {
			return fmt.Errorf("parsing %s: %w", o.configPath, err)
		}
		opts = append(opts, clsacim.WithConfig(cfg))
	}
	if o.workers > 0 {
		opts = append(opts, clsacim.WithWorkers(o.workers))
	}
	if o.validate {
		opts = append(opts, clsacim.WithValidation())
	}
	if o.degrade {
		opts = append(opts, clsacim.WithDegradation())
	}
	eng, err := clsacim.New(opts...)
	if err != nil {
		return err
	}
	srvOpts := []serve.Option{
		serve.WithRequestTimeout(o.timeout),
		serve.WithMaxBatch(o.maxBatch),
	}
	if o.admitSpec != "" {
		gates, err := serve.ParseAdmission(o.admitSpec)
		if err != nil {
			return err
		}
		for class, lim := range gates {
			srvOpts = append(srvOpts, serve.WithAdmission(class, lim))
		}
	}
	if o.faultsSpec != "" {
		cfg, err := faultinject.Parse(o.faultsSpec)
		if err != nil {
			return err
		}
		inj, err := faultinject.NewInjector(cfg)
		if err != nil {
			return err
		}
		srvOpts = append(srvOpts, serve.WithMiddleware(inj.Middleware))
		log.Printf("clsaserved: FAULT INJECTION ACTIVE (%s) — not for production", o.faultsSpec)
	}
	handler, err := serve.New(eng, srvOpts...)
	if err != nil {
		return err
	}

	srv := &http.Server{
		Addr:              o.addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful shutdown: stop accepting on SIGINT/SIGTERM, then give
	// in-flight evaluations the grace window to finish.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("clsaserved: listening on %s (cache limit %d, timeout %v)", o.addr, o.cacheLimit, o.timeout)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err // bind failure etc.; never nil from ListenAndServe
	case <-ctx.Done():
	}
	stop()
	log.Printf("clsaserved: shutting down (grace %v)", o.grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), o.grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("clsaserved: bye")
	return nil
}
