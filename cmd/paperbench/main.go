// Command paperbench regenerates the tables and figures of the paper's
// evaluation section (§V) and the ablation studies.
//
// Usage:
//
//	paperbench                  # everything
//	paperbench -exp table1      # one experiment
//	paperbench -exp fig7 -csv   # machine-readable series
//
// Experiments: table1, table2, fig6a, fig6b, fig6c, fig7, ablations, all.
package main

import (
	"flag"
	"fmt"
	"os"

	clsacim "clsacim"
	"clsacim/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, table2, fig6a, fig6b, fig6c, fig7, ablations, all")
	csv := flag.Bool("csv", false, "emit fig6c/fig7 series as CSV")
	sets := flag.Int("sets", 0, "target sets per layer (0 = finest granularity, as in the paper's peak numbers)")
	stats := flag.Bool("stats", false, "print engine compile-cache statistics after the run")
	flag.Parse()

	h := bench.NewHarness(clsacim.Config{TargetSets: *sets})
	w := os.Stdout

	run := func(name string, f func() error) {
		switch *exp {
		case name, "all":
			if err := f(); err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Fprintln(w)
		}
	}

	run("table1", func() error { return h.PrintTableI(w) })
	run("table2", func() error { return h.PrintTableII(w) })
	run("fig6a", func() error { return h.PrintFig6(w, clsacim.ModeLayerByLayer, 100) })
	run("fig6b", func() error { return h.PrintFig6(w, clsacim.ModeCrossLayer, 100) })
	run("fig6c", func() error {
		if *csv {
			points, err := h.RunFig6c()
			if err != nil {
				return err
			}
			return bench.WriteCSV(w, points)
		}
		return h.PrintFig6c(w)
	})
	run("fig7", func() error {
		if *csv {
			points, err := h.RunFig7()
			if err != nil {
				return err
			}
			return bench.WriteCSV(w, points)
		}
		return h.PrintFig7(w)
	})
	run("ablations", func() error { return h.PrintAblations(w) })

	if *stats {
		s := h.Engine().Stats()
		fmt.Fprintf(w, "engine: %d compiles, %d cache hits, %d misses, %d evaluations, %d cached entries\n",
			s.Compiles, s.CacheHits, s.CacheMisses, s.Evaluations, s.CachedEntries)
	}
}
