// Command paperbench regenerates the tables and figures of the paper's
// evaluation section (§V) and the ablation studies.
//
// Usage:
//
//	paperbench                  # everything, BENCH_<exp>.json in .
//	paperbench -exp table1      # one experiment
//	paperbench -exp fig7 -csv   # machine-readable series
//	paperbench -json ""         # suppress the JSON result documents
//
// Experiments: table1, table2, fig6a, fig6b, fig6c, fig7, ablations,
// stream, solver, all.
//
// Each experiment additionally writes a machine-readable result
// document DIR/BENCH_<experiment>.json (schema "clsacim-bench/v1",
// default DIR is the working directory — the repo root in CI, so the
// perf trajectory is recorded next to the code it measures): an
// envelope with the experiment name, wall-clock elapsed_ms, and engine
// compile-cache stats, plus one payload section matching the experiment
// kind — table1/table2 rows, measurement points (model, mapping, x,
// sched, speedup, utilization, makespan_cycles, ut_gain), ablation
// points, or streaming points (scenario, throughput_per_sec,
// single_rate_per_sec, gain, latency percentiles). Bench-trajectory
// tooling consumes these files instead of scraping the text tables; see
// the README "Verification & fuzzing" section for the full format.
//
// -cpuprofile and -memprofile write pprof profiles of the run (the
// README "Performance" section shows the full profiling recipe).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	clsacim "clsacim"
	"clsacim/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, table2, fig6a, fig6b, fig6c, fig7, ablations, stream, solver, all")
	csv := flag.Bool("csv", false, "emit fig6c/fig7 series as CSV")
	sets := flag.Int("sets", 0, "target sets per layer (0 = finest granularity, as in the paper's peak numbers)")
	stats := flag.Bool("stats", false, "print engine compile-cache statistics after the run")
	jsonDir := flag.String("json", ".", "directory to write BENCH_<experiment>.json result documents (empty = off)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile taken at exit to this file")
	flag.Parse()

	// stopProfiles flushes both profiles; it runs on normal return and
	// before every die(), so a failing experiment still leaves usable
	// profiles of the work done up to that point.
	stopProfiles := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		stopProfiles = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if *memprofile != "" {
		stopCPU := stopProfiles
		stopProfiles = func() {
			stopCPU()
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: -memprofile: %v\n", err)
			}
		}
	}
	defer stopProfiles()
	die := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format, args...)
		stopProfiles()
		os.Exit(1)
	}

	if *jsonDir != "" {
		// Fail on an unwritable output directory before the sweeps run,
		// not after the first multi-minute experiment.
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			die("paperbench: -json %s: %v\n", *jsonDir, err)
		}
	}

	h := bench.NewHarness(clsacim.Config{TargetSets: *sets})
	w := os.Stdout

	// run executes one experiment: f prints the human-readable output
	// and returns the experiment's machine-readable payload, which run
	// stamps with the envelope and writes as BENCH_<name>.json when
	// -json is set.
	run := func(name string, f func() (bench.Doc, error)) {
		switch *exp {
		case name, "all":
			start := time.Now()
			doc, err := f()
			if err != nil {
				die("paperbench: %s: %v\n", name, err)
			}
			if *jsonDir != "" {
				doc.Schema = bench.Schema
				doc.Experiment = name
				doc.ElapsedMS = time.Since(start).Milliseconds()
				st := h.Engine().Stats()
				doc.Engine = &st
				if err := bench.WriteDocFile(*jsonDir, doc); err != nil {
					die("paperbench: %s: writing %s: %v\n",
						name, bench.DocFilename(name), err)
				}
			}
			fmt.Fprintln(w)
		}
	}

	wantJSON := *jsonDir != ""

	// fig6Doc renders the Fig. 6a/6b Gantt chart; with -json it
	// additionally measures the wdup+16 configuration against the
	// harness baseline as the experiment's one point.
	fig6Doc := func(mode clsacim.ScheduleMode) (bench.Doc, error) {
		if err := h.PrintFig6(w, mode, 100); err != nil {
			return bench.Doc{}, err
		}
		if !wantJSON {
			return bench.Doc{}, nil
		}
		p, err := h.Run("tinyyolov4", 16, true, mode)
		if err != nil {
			return bench.Doc{}, err
		}
		return bench.Doc{Points: []bench.Point{p}}, nil
	}

	run("table1", func() (bench.Doc, error) {
		rows, peMin, err := h.RunTableI()
		if err != nil {
			return bench.Doc{}, err
		}
		return bench.Doc{TableI: rows, PEmin: peMin}, bench.PrintTableIRows(w, rows, peMin)
	})
	run("table2", func() (bench.Doc, error) {
		rows, err := h.RunTableII()
		if err != nil {
			return bench.Doc{}, err
		}
		return bench.Doc{TableII: rows}, bench.PrintTableIIRows(w, rows)
	})
	run("fig6a", func() (bench.Doc, error) { return fig6Doc(clsacim.ModeLayerByLayer) })
	run("fig6b", func() (bench.Doc, error) { return fig6Doc(clsacim.ModeCrossLayer) })
	run("fig6c", func() (bench.Doc, error) {
		points, err := h.RunFig6c()
		if err != nil {
			return bench.Doc{}, err
		}
		if *csv {
			return bench.Doc{Points: points}, bench.WriteCSV(w, points)
		}
		return bench.Doc{Points: points}, bench.PrintFig6cPoints(w, points)
	})
	run("fig7", func() (bench.Doc, error) {
		points, err := h.RunFig7()
		if err != nil {
			return bench.Doc{}, err
		}
		if *csv {
			return bench.Doc{Points: points}, bench.WriteCSV(w, points)
		}
		return bench.Doc{Points: points}, bench.PrintFig7Points(w, points)
	})
	run("ablations", func() (bench.Doc, error) {
		points, err := h.RunAllAblations()
		if err != nil {
			return bench.Doc{}, err
		}
		return bench.Doc{Ablations: points}, bench.PrintAblationPoints(w, points)
	})
	run("stream", func() (bench.Doc, error) {
		points, err := h.RunStream()
		if err != nil {
			return bench.Doc{}, err
		}
		return bench.Doc{Stream: points}, bench.PrintStreamPoints(w, points)
	})
	run("solver", func() (bench.Doc, error) {
		const x = 32
		points, err := h.RunSolverAblation(nil, x)
		if err != nil {
			return bench.Doc{}, err
		}
		return bench.Doc{Solver: points}, bench.PrintSolverPoints(w, x, points)
	})

	if *stats {
		s := h.Engine().Stats()
		fmt.Fprintf(w, "engine: %d compiles, %d cache hits, %d misses, %d evaluations, %d cached entries\n",
			s.Compiles, s.CacheHits, s.CacheMisses, s.Evaluations, s.CachedEntries)
	}
}
