// Command gantt renders an ASCII Gantt chart of a CIM schedule — the
// textual analogue of paper Fig. 6(a)/(b).
//
// Usage:
//
//	gantt -model tinyyolov4 -x 16 -wdup -sched lbl    # Fig. 6a
//	gantt -model tinyyolov4 -x 16 -wdup -sched xinf   # Fig. 6b
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	clsacim "clsacim"
)

func main() {
	model := flag.String("model", "tinyyolov4", "model name")
	x := flag.Int("x", 16, "extra PEs beyond PEmin")
	wdup := flag.Bool("wdup", true, "enable weight duplication mapping")
	sched := flag.String("sched", "xinf", "scheduling: xinf, lbl, or xK bounded window (e.g. x4)")
	width := flag.Int("width", 100, "chart width in time buckets")
	sets := flag.Int("sets", 26, "target sets per layer (coarse renders more readable charts)")
	flag.Parse()

	mode, err := clsacim.ParseMode(*sched)
	if err != nil {
		fatal(err)
	}
	eng, err := clsacim.New(clsacim.WithTargetSets(*sets))
	if err != nil {
		fatal(err)
	}
	rep, err := eng.Schedule(context.Background(), clsacim.Request{
		Model:             *model,
		Mode:              mode,
		ExtraPEs:          *x,
		WeightDuplication: *wdup,
	})
	if err != nil {
		fatal(err)
	}
	if err := rep.RenderGantt(os.Stdout, *width); err != nil {
		fatal(err)
	}
	fmt.Printf("\nutilization %.2f%%, makespan %d cycles\n", rep.Utilization*100, rep.MakespanCycles)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gantt:", err)
	os.Exit(1)
}
