// Weight virtualization (paper §V-C future work): what happens when the
// architecture has FEWER crossbars than the network needs? Swapped
// layers time-share a PE pool and must be reprogrammed before running —
// RRAM writes are slow and wear the cells, which is why the paper (and
// RRAM practice) stores all weights once. This example sweeps the PE
// count below PEmin and reports the latency and endurance cost.
//
// Run with: go run ./examples/virtualization
package main

import (
	"context"
	"fmt"
	"log"

	clsacim "clsacim"
)

func main() {
	ctx := context.Background()

	// WithVirtualization permits F < PEmin engine-wide (512-cycle
	// crossbar writes, 4 programmable in parallel — the defaults);
	// architectures at or above PEmin are unaffected.
	eng, err := clsacim.New(clsacim.WithVirtualization(512, 4))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("VGG16 below PEmin (layer-by-layer, 512-cycle crossbar writes):")
	fmt.Printf("%-8s %-10s %10s %9s %12s %9s\n",
		"PEs", "resident", "makespan", "latency", "writes/inf", "slowdown")
	var fullMakespan int64
	for _, frac := range []float64{1.0, 0.9, 0.8, 0.6, 0.4} {
		f := int(233 * frac)
		req := clsacim.Request{Model: "vgg16", Mode: clsacim.ModeLayerByLayer, TotalPEs: f}
		comp, err := eng.Compile(ctx, req)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := eng.Schedule(ctx, req)
		if err != nil {
			log.Fatal(err)
		}
		if fullMakespan == 0 {
			fullMakespan = rep.MakespanCycles
		}
		fmt.Printf("%-8d %2d/%-7d %10d %8.2fms %12d %8.1f%%\n",
			f, comp.ResidentLayers(), comp.BaseLayerCount(),
			rep.MakespanCycles, rep.LatencyNanos/1e6,
			comp.CrossbarWritesPerInference(),
			100*float64(rep.MakespanCycles-fullMakespan)/float64(fullMakespan))
	}

	// Write-cost sensitivity at 60 % of PEmin: the write cost is part of
	// the architecture, so each point overrides the engine Config.
	fmt.Println("\nWrite-cost sensitivity (F = 60% of PEmin):")
	fmt.Printf("%-22s %10s %9s\n", "cycles per crossbar", "makespan", "slowdown")
	for _, wc := range []int64{64, 256, 512, 2048, 8192} {
		cfg := clsacim.Config{
			TotalPEs:               139,
			WeightVirtualization:   true,
			WriteCyclesPerCrossbar: wc,
		}
		rep, err := eng.Schedule(ctx, clsacim.Request{
			Model: "vgg16", Mode: clsacim.ModeLayerByLayer, Config: &cfg,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22d %10d %8.1f%%\n", wc, rep.MakespanCycles,
			100*float64(rep.MakespanCycles-fullMakespan)/float64(fullMakespan))
	}
	fmt.Println("\nCross-layer scheduling requires full residency; below PEmin the")
	fmt.Println("compiler rejects xinf — exactly the regime the paper excludes.")
}
