// Benchmark sweep (paper §V-B, Fig. 7): evaluates mapping/scheduling
// combinations across several published networks and prints the speedup
// (Fig. 7a) and utilization (Fig. 7b) series.
//
// The sweep is expressed as a batch of Requests against one Engine: the
// engine's worker pool evaluates the points concurrently, and its
// compile cache builds each distinct (model, mapping) pair — and each
// model's layer-by-layer baseline — exactly once, where a loop of
// one-shot Evaluate calls would recompile the baseline for every point.
//
// Run with: go run ./examples/benchmark_sweep [-models vgg16,resnet50] [-x 4,32]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	clsacim "clsacim"
)

func main() {
	modelsFlag := flag.String("models", "tinyyolov3,vgg16,resnet50", "comma-separated model names")
	xFlag := flag.String("x", "4,8,16,32", "comma-separated extra-PE values")
	flag.Parse()

	models := strings.Split(*modelsFlag, ",")
	var xs []int
	for _, s := range strings.Split(*xFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			log.Fatalf("bad -x value %q: %v", s, err)
		}
		xs = append(xs, v)
	}

	// One sweep = one batch of requests: pure cross-layer inference,
	// then weight duplication alone and combined, per model.
	var reqs []clsacim.Request
	var labels []string
	for _, name := range models {
		name = strings.TrimSpace(name)
		reqs = append(reqs, clsacim.Request{Model: name, Mode: clsacim.ModeCrossLayer})
		labels = append(labels, "xinf")
		for _, x := range xs {
			reqs = append(reqs, clsacim.Request{
				Model: name, Mode: clsacim.ModeLayerByLayer,
				ExtraPEs: x, WeightDuplication: true,
			})
			labels = append(labels, fmt.Sprintf("wdup+%d", x))
			reqs = append(reqs, clsacim.Request{
				Model: name, Mode: clsacim.ModeCrossLayer,
				ExtraPEs: x, WeightDuplication: true,
			})
			labels = append(labels, fmt.Sprintf("wdup+%d xinf", x))
		}
	}

	eng, err := clsacim.New()
	if err != nil {
		log.Fatal(err)
	}
	results, err := eng.EvaluateBatch(context.Background(), reqs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %-13s %9s %12s\n", "benchmark", "config", "speedup", "utilization")
	for i, res := range results {
		if res.Err != nil {
			log.Fatalf("%s %s: %v", res.Request.Model, labels[i], res.Err)
		}
		ev := res.Evaluation
		fmt.Printf("%-12s %-13s %8.2fx %11.2f%%\n",
			res.Request.Model, labels[i], ev.Speedup, ev.Result.Utilization*100)
	}
	s := eng.Stats()
	fmt.Printf("\nengine: %d evaluations over %d compiles (%d cache hits)\n",
		s.Evaluations, s.Compiles, s.CacheHits)
	fmt.Println("paper reference: best combination reaches 29.2x speedup (TinyYOLOv3);")
	fmt.Println("wdup alone stays modest for large models; utilization sinks with model depth.")
}
