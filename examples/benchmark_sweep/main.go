// Benchmark sweep (paper §V-B, Fig. 7): evaluates mapping/scheduling
// combinations across several published networks and prints the speedup
// (Fig. 7a) and utilization (Fig. 7b) series.
//
// Run with: go run ./examples/benchmark_sweep [-models vgg16,resnet50] [-x 4,32]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	clsacim "clsacim"
)

func main() {
	modelsFlag := flag.String("models", "tinyyolov3,vgg16,resnet50", "comma-separated model names")
	xFlag := flag.String("x", "4,8,16,32", "comma-separated extra-PE values")
	flag.Parse()

	models := strings.Split(*modelsFlag, ",")
	var xs []int
	for _, s := range strings.Split(*xFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			log.Fatalf("bad -x value %q: %v", s, err)
		}
		xs = append(xs, v)
	}

	fmt.Printf("%-12s %-13s %9s %12s\n", "benchmark", "config", "speedup", "utilization")
	for _, name := range models {
		model, err := clsacim.LoadModel(strings.TrimSpace(name), clsacim.ModelOptions{})
		if err != nil {
			log.Fatal(err)
		}

		// Pure cross-layer inference (no extra PEs).
		ev, err := clsacim.Evaluate(model, clsacim.Config{}, clsacim.ModeCrossLayer)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %-13s %8.2fx %11.2f%%\n", name, "xinf", ev.Speedup, ev.Result.Utilization*100)

		for _, x := range xs {
			// Weight duplication alone (layer-by-layer)...
			evL, err := clsacim.Evaluate(model, clsacim.Config{
				ExtraPEs: x, WeightDuplication: true,
			}, clsacim.ModeLayerByLayer)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s %-13s %8.2fx %11.2f%%\n",
				name, fmt.Sprintf("wdup+%d", x), evL.Speedup, evL.Result.Utilization*100)

			// ...and combined with CLSA-CIM.
			evX, err := clsacim.Evaluate(model, clsacim.Config{
				ExtraPEs: x, WeightDuplication: true,
			}, clsacim.ModeCrossLayer)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s %-13s %8.2fx %11.2f%%\n",
				name, fmt.Sprintf("wdup+%d xinf", x), evX.Speedup, evX.Result.Utilization*100)
		}
	}
	fmt.Println("\npaper reference: best combination reaches 29.2x speedup (TinyYOLOv3);")
	fmt.Println("wdup alone stays modest for large models; utilization sinks with model depth.")
}
