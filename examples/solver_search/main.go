// Solver search: let the duplication solver optimize the schedule
// instead of the paper's proxy. The dp solver is exact on Optimization
// Problem 1's objective sum(t_i/d_i) — serial latency — but under
// cross-layer scheduling the makespan is set by critical-path and
// replica-contention structure that objective cannot see. The "search"
// solver closes the gap: a seeded simulated-annealing walk over
// duplication vectors in which every candidate is scored by running
// Stages I-IV and the coarse simulator under the request's scheduling
// mode. The dp solution seeds the walk, so search is never worse than
// dp on the metric that is actually reported.
//
// Run with: go run ./examples/solver_search
package main

import (
	"context"
	"fmt"
	"log"

	clsacim "clsacim"
)

func main() {
	// Coarse Stage I granularity keeps each of the ~48 candidate
	// evaluations cheap; it is the granularity the solver ablation and
	// the serving path use.
	eng, err := clsacim.New(clsacim.WithTargetSets(26))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	base := clsacim.Request{
		Model:             "tinyyolov4",
		ExtraPEs:          32,
		WeightDuplication: true,
	}

	fmt.Println("TinyYOLOv4, wdup+32, 26 sets/layer: dp proxy vs scored search")
	fmt.Printf("%-6s %-8s %12s %9s %8s  %s\n",
		"mode", "solver", "makespan", "speedup", "vs dp", "duplication")
	for _, mode := range []clsacim.ScheduleMode{
		clsacim.ModeLayerByLayer, clsacim.ModeWindow(4), clsacim.ModeCrossLayer,
	} {
		var dp int64
		for _, solver := range []string{"dp", "search"} {
			req := base
			req.Mode = mode
			req.Solver = solver
			if solver == "search" {
				// Both knobs are optional: budget 0 means the default 48
				// evaluations, and any fixed seed makes the walk a pure
				// function of the request — byte-identical results at any
				// GOMAXPROCS.
				req.SolverBudget = 48
				req.SolverSeed = 1
			}
			ev, err := eng.Evaluate(ctx, req)
			if err != nil {
				log.Fatal(err)
			}
			if solver == "dp" {
				dp = ev.Result.MakespanCycles
			}
			fmt.Printf("%-6s %-8s %12d %8.2fx %7.3fx  %v\n",
				mode.Name(), solver, ev.Result.MakespanCycles, ev.Speedup,
				float64(dp)/float64(ev.Result.MakespanCycles),
				ev.Result.Duplication)
		}
	}

	// The search optimizes against the mode it will be scheduled under:
	// the same model at the same mapping point compiles once per scoring
	// objective, and plain solvers ignore (and share cache entries
	// across) the scored knobs.
	s := eng.Stats()
	fmt.Printf("\nengine: %d compiles, %d cache hits (%d partial)\n",
		s.Compiles, s.CacheHits, s.PartialHits)
}
