// Quickstart: build an Engine for the paper's case-study architecture,
// evaluate a built-in network layer-by-layer and with CLSA-CIM, and
// compare the paper's metrics. Then register a small custom network
// built through the public Builder API and run it through the same
// engine.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	clsacim "clsacim"
)

func main() {
	ctx := context.Background()

	// The paper's case-study architecture: 256x256 crossbars and
	// tMVM = 1400 ns are the defaults, so no options are required.
	eng, err := clsacim.New()
	if err != nil {
		log.Fatal(err)
	}

	// --- Built-in model -------------------------------------------------
	// 32 extra PEs, weight duplication on, CLSA-CIM cross-layer
	// scheduling; Evaluate measures against the layer-by-layer baseline.
	ev, err := eng.Evaluate(ctx, clsacim.Request{
		Model:             "tinyyolov4",
		Mode:              clsacim.ModeCrossLayer,
		ExtraPEs:          32,
		WeightDuplication: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TinyYOLOv4 on %d PEs (PEmin %d + 32):\n", ev.Result.F, ev.Result.PEmin)
	fmt.Printf("  layer-by-layer: %8d cycles, utilization %5.2f%%\n",
		ev.Baseline.MakespanCycles, ev.Baseline.Utilization*100)
	fmt.Printf("  wdup+32 + xinf: %8d cycles, utilization %5.2f%%\n",
		ev.Result.MakespanCycles, ev.Result.Utilization*100)
	fmt.Printf("  speedup %.1fx (paper Fig. 6c: 21.9x), Eq.3 estimate %.1fx\n\n",
		ev.Speedup, ev.Eq3Speedup)

	// --- Custom model through the Builder API ---------------------------
	b, in := clsacim.NewBuilder("mini-detector", 64, 64, 3)
	x := b.Conv2D(in, 16, 3, 2, true) // 32x32x16
	x = b.LeakyReLU(x, 0.1)
	trunk := b.Conv2D(x, 32, 3, 2, true) // 16x16x32
	trunk = b.LeakyReLU(trunk, 0.1)
	// A small feature-pyramid: downsample, 1x1, upsample, concat.
	down := b.Conv2D(trunk, 64, 3, 2, true) // 8x8x64
	lat := b.Conv2D(down, 32, 1, 1, false)
	up := b.UpSample(lat, 2) // 16x16x32
	merged := b.ConcatChannels(up, trunk)
	head := b.Conv2D(merged, 8, 1, 1, false)
	b.Output(head)
	custom, err := b.Finish()
	if err != nil {
		log.Fatal(err)
	}

	// Registering the model unifies it with the builtin table: it now
	// resolves by name in any Request (and shows up in AllModels).
	if err := clsacim.RegisterModel("mini-detector", custom); err != nil {
		log.Fatal(err)
	}

	comp, err := eng.Compile(ctx, clsacim.Request{
		Model: "mini-detector", ExtraPEs: 8, WeightDuplication: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d base layers, PEmin=%d, %d sets, %d dependency edges\n",
		custom.Name, comp.BaseLayerCount(), comp.PEmin(), comp.NumSets(), comp.NumDepEdges())
	for _, mode := range []clsacim.ScheduleMode{clsacim.ModeLayerByLayer, clsacim.ModeCrossLayer} {
		rep, err := eng.Schedule(ctx, clsacim.Request{
			Model: "mini-detector", Mode: mode, ExtraPEs: 8, WeightDuplication: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14v makespan %6d cycles (%.2f ms), utilization %5.2f%%\n",
			mode, rep.MakespanCycles, rep.LatencyNanos/1e6, rep.Utilization*100)
	}
}
