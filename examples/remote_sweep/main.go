// Remote sweep: the benchmark_sweep example re-expressed against a
// clsaserved daemon — the evaluation runs in the server's process, the
// sweep logic here only speaks JSON through the typed client package.
// Many such clients can share one daemon, whose bounded compile cache
// then builds each distinct (model, mapping) key once for all of them.
//
// Run against a live daemon:
//
//	go run ./cmd/clsaserved -addr :8080 &
//	go run ./examples/remote_sweep -addr http://127.0.0.1:8080
//
// Or self-contained (no daemon needed): with no -addr the example
// starts an in-process server on a loopback port and sweeps against
// that, which is also what the build smoke test exercises.
//
//	go run ./examples/remote_sweep -model tinyyolov4 -x 4,8,16,32
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	clsacim "clsacim"
	"clsacim/client"
	"clsacim/serve"
)

func main() {
	addr := flag.String("addr", "", "daemon base URL (empty: start an in-process server)")
	model := flag.String("model", "tinyyolov4", "model to sweep")
	xFlag := flag.String("x", "4,8,16,32", "comma-separated extra-PE values")
	mode := flag.String("sched", "xinf", "scheduling mode for the swept points")
	flag.Parse()

	base := *addr
	if base == "" {
		var stopLocal func()
		var err error
		base, stopLocal, err = startLocal()
		if err != nil {
			log.Fatal(err)
		}
		defer stopLocal()
		fmt.Printf("started in-process daemon at %s\n\n", base)
	}

	c, err := client.New(base)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := c.Health(ctx); err != nil {
		log.Fatal(err)
	}

	schedMode, err := clsacim.ParseMode(*mode)
	if err != nil {
		log.Fatal(err)
	}
	var reqs []clsacim.Request
	for _, s := range strings.Split(*xFlag, ",") {
		x, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			log.Fatalf("bad -x value %q: %v", s, err)
		}
		reqs = append(reqs, clsacim.Request{
			Model:             *model,
			Mode:              schedMode,
			ExtraPEs:          x,
			WeightDuplication: true,
		})
	}

	results, err := c.EvaluateBatch(ctx, reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %6s %6s  %10s %12s\n", "model", "x", "sched", "speedup", "utilization")
	for _, r := range results {
		if r.Error != "" {
			fmt.Printf("%-12s %6d %6s  error: %s\n", r.Request.Model, r.Request.ExtraPEs, r.Request.Mode, r.Error)
			continue
		}
		fmt.Printf("%-12s %6d %6s  %9.2fx %11.1f%%\n",
			r.Request.Model, r.Request.ExtraPEs, r.Request.Mode,
			r.Evaluation.Speedup, r.Evaluation.Result.Utilization*100)
	}

	// The stats endpoint shows the cache doing the sharing: one
	// baseline compile plus one per distinct mapping point, and every
	// repeated point a hit.
	stats, err := c.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserver: %d compiles, %d hits, %d misses, %d evictions, %d cached (limit %d)\n",
		stats.Engine.Compiles, stats.Engine.CacheHits, stats.Engine.CacheMisses,
		stats.Engine.Evictions, stats.Engine.CachedEntries, stats.Engine.CacheLimit)
}

// startLocal runs a daemon inside this process on a loopback port.
func startLocal() (baseURL string, stop func(), err error) {
	eng, err := clsacim.New(clsacim.WithCacheLimit(16))
	if err != nil {
		return "", nil, err
	}
	handler, err := serve.New(eng)
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() { srv.Close() }, nil
}
