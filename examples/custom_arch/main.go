// Custom architectures (paper §V-C): CLSA-CIM accepts the crossbar
// dimensions as an input parameter and, as an extension, models NoC
// data-movement and GPEU processing costs on dependency edges. This
// example retargets VGG16 across crossbar sizes and quantifies how the
// idealized speedups degrade as data movement becomes expensive.
//
// Each sweep uses its own Engine built from options: the architecture
// lives in the Engine, the workload in the Request. A request may also
// carry a full Config override (used below for the crossbar sweep,
// where the architecture itself is the swept variable).
//
// Run with: go run ./examples/custom_arch
package main

import (
	"context"
	"fmt"
	"log"

	clsacim "clsacim"
)

func main() {
	ctx := context.Background()

	fmt.Println("Crossbar retargeting (VGG16, wdup+32 + xinf):")
	fmt.Printf("%-10s %8s %10s %9s %12s\n", "crossbar", "PEmin", "makespan", "speedup", "utilization")
	eng, err := clsacim.New()
	if err != nil {
		log.Fatal(err)
	}
	for _, dim := range []int{64, 128, 256, 512} {
		cfg := clsacim.Config{
			PERows: dim, PECols: dim,
			ExtraPEs:          32,
			WeightDuplication: true,
		}
		ev, err := eng.Evaluate(ctx, clsacim.Request{
			Model: "vgg16", Mode: clsacim.ModeCrossLayer, Config: &cfg,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4dx%-5d %8d %10d %8.2fx %11.2f%%\n",
			dim, dim, ev.Result.PEmin, ev.Result.MakespanCycles, ev.Speedup, ev.Result.Utilization*100)
	}

	fmt.Println("\nNoC sensitivity (VGG16, 256x256, wdup+32 + xinf, mesh, XY routing):")
	fmt.Printf("%-12s %10s %9s %12s\n", "cycles/hop", "makespan", "speedup", "utilization")
	for _, hop := range []float64{0, 0.5, 1, 2, 4, 8} {
		nocEng, err := clsacim.New(clsacim.WithNoC(hop))
		if err != nil {
			log.Fatal(err)
		}
		ev, err := nocEng.Evaluate(ctx, clsacim.Request{
			Model: "vgg16", Mode: clsacim.ModeCrossLayer,
			ExtraPEs: 32, WeightDuplication: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12.1f %10d %8.2fx %11.2f%%\n",
			hop, ev.Result.MakespanCycles, ev.Speedup, ev.Result.Utilization*100)
	}

	fmt.Println("\nGPEU cost sensitivity (cycles per 1024 forwarded elements):")
	fmt.Printf("%-12s %10s %9s\n", "cy/Kelem", "makespan", "speedup")
	for _, c := range []float64{0, 1, 4, 16, 64} {
		gpeuEng, err := clsacim.New(clsacim.WithGPEU(c))
		if err != nil {
			log.Fatal(err)
		}
		ev, err := gpeuEng.Evaluate(ctx, clsacim.Request{
			Model: "vgg16", Mode: clsacim.ModeCrossLayer,
			ExtraPEs: 32, WeightDuplication: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12.1f %10d %8.2fx\n", c, ev.Result.MakespanCycles, ev.Speedup)
	}
}
