// Custom architectures (paper §V-C): CLSA-CIM accepts the crossbar
// dimensions as an input parameter and, as an extension, models NoC
// data-movement and GPEU processing costs on dependency edges. This
// example retargets VGG16 across crossbar sizes and quantifies how the
// idealized speedups degrade as data movement becomes expensive.
//
// Run with: go run ./examples/custom_arch
package main

import (
	"fmt"
	"log"

	clsacim "clsacim"
)

func main() {
	model, err := clsacim.LoadModel("vgg16", clsacim.ModelOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Crossbar retargeting (VGG16, wdup+32 + xinf):")
	fmt.Printf("%-10s %8s %10s %9s %12s\n", "crossbar", "PEmin", "makespan", "speedup", "utilization")
	for _, dim := range []int{64, 128, 256, 512} {
		cfg := clsacim.Config{
			PERows: dim, PECols: dim,
			ExtraPEs:          32,
			WeightDuplication: true,
		}
		ev, err := clsacim.Evaluate(model, cfg, clsacim.ModeCrossLayer)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4dx%-5d %8d %10d %8.2fx %11.2f%%\n",
			dim, dim, ev.Result.PEmin, ev.Result.MakespanCycles, ev.Speedup, ev.Result.Utilization*100)
	}

	fmt.Println("\nNoC sensitivity (VGG16, 256x256, wdup+32 + xinf, mesh, XY routing):")
	fmt.Printf("%-12s %10s %9s %12s\n", "cycles/hop", "makespan", "speedup", "utilization")
	for _, hop := range []float64{0, 0.5, 1, 2, 4, 8} {
		cfg := clsacim.Config{
			ExtraPEs:          32,
			WeightDuplication: true,
			NoCCyclesPerHop:   hop,
		}
		ev, err := clsacim.Evaluate(model, cfg, clsacim.ModeCrossLayer)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12.1f %10d %8.2fx %11.2f%%\n",
			hop, ev.Result.MakespanCycles, ev.Speedup, ev.Result.Utilization*100)
	}

	fmt.Println("\nGPEU cost sensitivity (cycles per 1024 forwarded elements):")
	fmt.Printf("%-12s %10s %9s\n", "cy/Kelem", "makespan", "speedup")
	for _, c := range []float64{0, 1, 4, 16, 64} {
		cfg := clsacim.Config{
			ExtraPEs:           32,
			WeightDuplication:  true,
			GPEUCyclesPerKElem: c,
		}
		ev, err := clsacim.Evaluate(model, cfg, clsacim.ModeCrossLayer)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12.1f %10d %8.2fx\n", c, ev.Result.MakespanCycles, ev.Speedup)
	}
}
