// Functional verification: demonstrates that the compilation pipeline
// preserves inference results. A weight-carrying model is executed four
// ways — imported graph, canonicalized graph (BN folding +
// partitioning), weight-duplication-rewritten graph (the tf.slice /
// Concatenate realization of paper Fig. 4), and the canonicalized graph
// running every base layer on the functional RRAM crossbar model
// (quantized weights, bit-sliced cells, integer MVMs) — and the output
// deviations are reported.
//
// Functional verification needs weight-carrying models, so it works on
// *Model values from LoadModel directly rather than through an Engine:
// there is no schedule to cache, and each run executes real tensors.
//
// Run with: go run ./examples/functional_verify
package main

import (
	"fmt"
	"log"

	clsacim "clsacim"
)

func main() {
	for _, name := range []string{"tinyconvnet", "tinybranchnet", "tinymlp"} {
		model, err := clsacim.LoadModel(name, clsacim.ModelOptions{
			WithWeights: true,
			Seed:        42,
			InputSize:   16,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := clsacim.VerifyFunctional(model, 7, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%d output tensors, output scale %.3f):\n",
			rep.Model, rep.Outputs, rep.OutputScale)
		fmt.Printf("  canonicalization (BN fold + partition) max |err|: %.3g\n", rep.MaxErrCanonicalization)
		fmt.Printf("  weight-duplication rewrite (%d layers) max |err|: %.3g\n",
			rep.DuplicatedLayers, rep.MaxErrDuplication)
		fmt.Printf("  crossbar execution (%d PEs, 8-bit weights on 4-bit cells) max |err|: %.3g\n\n",
			rep.PEsProgrammed, rep.MaxErrCrossbar)
	}

	// A larger, non-sequential network: TinyYOLOv3 scaled to a small
	// input so the functional run stays quick.
	model, err := clsacim.LoadModel("tinyyolov3", clsacim.ModelOptions{
		WithWeights: true,
		Seed:        42,
		InputSize:   64,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := clsacim.VerifyFunctional(model, 7, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s @64x64 (%d outputs, scale %.3f):\n", rep.Model, rep.Outputs, rep.OutputScale)
	fmt.Printf("  canonicalization max |err|: %.3g\n", rep.MaxErrCanonicalization)
	fmt.Printf("  duplication rewrite (%d layers) max |err|: %.3g\n", rep.DuplicatedLayers, rep.MaxErrDuplication)
	fmt.Printf("  crossbar execution (%d PEs) max |err|: %.3g\n", rep.PEsProgrammed, rep.MaxErrCrossbar)
}
