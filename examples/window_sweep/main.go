// Window sweep: quantify how much cross-layer pipeline depth the
// CLSA-CIM speedup actually needs. The bounded xK policy admits at most
// K layers concurrently (K=1 is the paper's layer-by-layer baseline,
// unbounded K is full "xinf" cross-layer inference); sweeping K shows
// the makespan falling monotonically from the lbl extreme to the xinf
// extreme, and the event-driven simulator's buffer accounting shows the
// intermediate-data footprint that each extra admitted layer costs.
//
// Run with: go run ./examples/window_sweep
package main

import (
	"context"
	"fmt"
	"log"

	clsacim "clsacim"
)

func main() {
	eng, err := clsacim.New(clsacim.WithTargetSets(104))
	if err != nil {
		log.Fatal(err)
	}

	req := clsacim.Request{
		Model:             "tinyyolov4",
		ExtraPEs:          32,
		WeightDuplication: true,
	}
	// One compilation serves every mode below: the engine caches it, and
	// the compiled artifact caches one validated timeline per mode.
	comp, err := eng.Compile(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}

	modes := []clsacim.ScheduleMode{clsacim.ModeLayerByLayer}
	for _, k := range []int{1, 2, 3, 4, 6, 8, 12, 16} {
		modes = append(modes, clsacim.ModeWindow(k))
	}
	modes = append(modes, clsacim.ModeCrossLayer)

	base, err := comp.Schedule(clsacim.ModeLayerByLayer)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("TinyYOLOv4, wdup+32, %d PEs: admission-window sweep\n", base.F)
	fmt.Printf("%-6s %12s %9s %12s %16s\n", "mode", "makespan", "speedup", "utilization", "peak live elems")
	for _, mode := range modes {
		rep, err := comp.Schedule(mode)
		if err != nil {
			log.Fatal(err)
		}
		// The simulator returns the identical timeline and additionally
		// accounts the live intermediate-data footprint: wider windows
		// buy speed with buffer pressure.
		sr, err := comp.Simulate(mode)
		if err != nil {
			log.Fatal(err)
		}
		if sr.MakespanCycles != rep.MakespanCycles {
			log.Fatalf("%v: simulator disagrees with scheduler", mode)
		}
		fmt.Printf("%-6s %12d %8.2fx %11.2f%% %16d\n",
			mode.Name(), rep.MakespanCycles,
			float64(base.MakespanCycles)/float64(rep.MakespanCycles),
			rep.Utilization*100, sr.PeakLiveElems)
	}
}
