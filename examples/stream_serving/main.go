// Stream serving: schedule a stream of inference requests over one
// simulated fabric instead of measuring a single inference. A closed
// loop keeps a fixed number of inferences in flight; because weights
// stay resident, back-to-back inferences of one model pipeline through
// the crossbars and the steady-state throughput exceeds 1/makespan —
// the gap a makespan-only evaluation never shows. The example sweeps
// the closed-loop concurrency, then co-schedules two models on one
// shared crossbar pool and prints the per-model tail latencies.
//
// Run with: go run ./examples/stream_serving
package main

import (
	"context"
	"fmt"
	"log"

	clsacim "clsacim"
)

func main() {
	// WithValidation revalidates every streamed timeline against the
	// engine-independent oracle (per-inference invariants, cross-
	// inference crossbar exclusivity, admission-gate obedience).
	eng, err := clsacim.New(clsacim.WithValidation())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("TinyYOLOv4 wdup+32 xinf: closed-loop concurrency sweep")
	fmt.Printf("%-12s %18s %18s %8s %12s\n", "concurrency", "throughput (1/s)", "serial rate (1/s)", "gain", "p99 (ms)")
	for _, c := range []int{1, 2, 4, 8} {
		res, err := eng.EvaluateStream(context.Background(), clsacim.StreamRequest{
			Models: []clsacim.StreamModel{
				{Model: "tinyyolov4", ExtraPEs: 32, WeightDuplication: true},
			},
			Inferences: 16,
			Mode:       clsacim.ModeCrossLayer,
			Arrival:    clsacim.ArrivalProcess{Kind: "closed", Concurrency: c},
		})
		if err != nil {
			log.Fatal(err)
		}
		single := res.PerModel[0].SingleRatePerSec
		fmt.Printf("%-12d %18.1f %18.1f %7.2fx %12.3f\n",
			c, res.ThroughputPerSec, single, res.ThroughputPerSec/single,
			res.Latency.P99Nanos/1e6)
	}

	// Two models time-sharing one crossbar pool: Poisson arrivals, a
	// 3:1 request mix, and an admission gate of 2 in-flight inferences
	// per model to bound the tail.
	res, err := eng.EvaluateStream(context.Background(), clsacim.StreamRequest{
		Models: []clsacim.StreamModel{
			{Model: "tinyyolov4", Weight: 3},
			{Model: "tinyyolov3", Weight: 1},
		},
		Inferences:  24,
		Mode:        clsacim.ModeCrossLayer,
		Arrival:     clsacim.ArrivalProcess{Kind: "poisson", Seed: 7, RatePerSec: 40},
		SharedPool:  true,
		MaxInFlight: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nShared pool (%d PEs), poisson 40/s, gate 2: %.1f inf/s, fabric %.1f%% busy\n",
		res.FabricPEs, res.ThroughputPerSec, res.PEUtilization*100)
	for _, pm := range res.PerModel {
		fmt.Printf("  %-12s %2d inferences  p50 %8.3f ms  p99 %8.3f ms\n",
			pm.Model, pm.Inferences, pm.Latency.P50Nanos/1e6, pm.Latency.P99Nanos/1e6)
	}
}
