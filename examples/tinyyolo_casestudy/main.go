// TinyYOLOv4 case study (paper §V-A): prints the base-layer structure
// (Table I), solves the weight-duplication problem for x = 16 extra PEs
// (the Fig. 6a table), renders the layer-by-layer and CLSA-CIM Gantt
// charts (Fig. 6a/6b), and sweeps the mapping/scheduling combinations of
// Fig. 6c.
//
// All requests share one Engine: the Fig. 6c sweep reuses the cached
// layer-by-layer baseline compilation across its points, and the two
// Gantt charts share the wdup+16 compilation.
//
// Run with: go run ./examples/tinyyolo_casestudy
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	clsacim "clsacim"
)

func main() {
	ctx := context.Background()
	eng, err := clsacim.New()
	if err != nil {
		log.Fatal(err)
	}

	// Table I: base layer structure.
	comp, err := eng.Compile(ctx, clsacim.Request{Model: "tinyyolov4"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TinyYOLOv4 base layers (PEmin = %d):\n", comp.PEmin())
	fmt.Printf("%-12s %-17s %-17s %5s %8s\n", "layer", "IFM (HWC)", "OFM (HWC)", "#PE", "cycles")
	for _, r := range comp.LayerTable() {
		fmt.Printf("%-12s (%4d,%4d,%4d)  (%4d,%4d,%4d)  %5d %8d\n",
			r.Name, r.IFM[0], r.IFM[1], r.IFM[2], r.OFM[0], r.OFM[1], r.OFM[2], r.PEs, r.Cycles)
	}

	// Fig. 6a/6b: wdup+16 mapping under both schedulers. A coarse set
	// granularity keeps the charts readable; since granularity is part
	// of the architecture description here, the request overrides the
	// engine Config for these two points.
	coarse := clsacim.Config{ExtraPEs: 16, WeightDuplication: true, TargetSets: 26}
	comp16, err := eng.Compile(ctx, clsacim.Request{Model: "tinyyolov4", Config: &coarse})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDuplication solution for x = 16 (paper: the first Conv2D layers):")
	for _, r := range comp16.LayerTable() {
		if r.Dup > 1 {
			fmt.Printf("  %-12s x%d (%d PEs each)\n", r.Name, r.Dup, r.PEs)
		}
	}
	for _, mode := range []clsacim.ScheduleMode{clsacim.ModeLayerByLayer, clsacim.ModeCrossLayer} {
		rep, err := eng.Schedule(ctx, clsacim.Request{
			Model: "tinyyolov4", Mode: mode, Config: &coarse,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		if err := rep.RenderGantt(os.Stdout, 96); err != nil {
			log.Fatal(err)
		}
	}

	// Fig. 6c: the full combination sweep as one batch.
	fmt.Println("\nFig. 6c sweep (speedup and utilization vs layer-by-layer):")
	type point struct {
		label string
		req   clsacim.Request
	}
	sweep := []point{
		{"lbl", clsacim.Request{Model: "tinyyolov4", Mode: clsacim.ModeLayerByLayer}},
		{"xinf", clsacim.Request{Model: "tinyyolov4", Mode: clsacim.ModeCrossLayer}},
		{"wdup+16 lbl", clsacim.Request{Model: "tinyyolov4", Mode: clsacim.ModeLayerByLayer, ExtraPEs: 16, WeightDuplication: true}},
		{"wdup+32 lbl", clsacim.Request{Model: "tinyyolov4", Mode: clsacim.ModeLayerByLayer, ExtraPEs: 32, WeightDuplication: true}},
		{"wdup+16 xinf", clsacim.Request{Model: "tinyyolov4", Mode: clsacim.ModeCrossLayer, ExtraPEs: 16, WeightDuplication: true}},
		{"wdup+32 xinf", clsacim.Request{Model: "tinyyolov4", Mode: clsacim.ModeCrossLayer, ExtraPEs: 32, WeightDuplication: true}},
	}
	reqs := make([]clsacim.Request, len(sweep))
	for i, p := range sweep {
		reqs[i] = p.req
	}
	results, err := eng.EvaluateBatch(ctx, reqs)
	if err != nil {
		log.Fatal(err)
	}
	for i, res := range results {
		if res.Err != nil {
			log.Fatalf("%s: %v", sweep[i].label, res.Err)
		}
		fmt.Printf("  %-14s speedup %5.2fx  utilization %5.2f%%\n",
			sweep[i].label, res.Evaluation.Speedup, res.Evaluation.Result.Utilization*100)
	}
	fmt.Println("\npaper reference: xinf utilization 4.1%; wdup+32 xinf utilization 28.4%, speedup 21.9x")
}
