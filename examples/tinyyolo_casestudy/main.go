// TinyYOLOv4 case study (paper §V-A): prints the base-layer structure
// (Table I), solves the weight-duplication problem for x = 16 extra PEs
// (the Fig. 6a table), renders the layer-by-layer and CLSA-CIM Gantt
// charts (Fig. 6a/6b), and sweeps the mapping/scheduling combinations of
// Fig. 6c.
//
// Run with: go run ./examples/tinyyolo_casestudy
package main

import (
	"fmt"
	"log"
	"os"

	clsacim "clsacim"
)

func main() {
	model, err := clsacim.LoadModel("tinyyolov4", clsacim.ModelOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Table I: base layer structure.
	comp, err := clsacim.Compile(model, clsacim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TinyYOLOv4 base layers (PEmin = %d):\n", comp.PEmin())
	fmt.Printf("%-12s %-17s %-17s %5s %8s\n", "layer", "IFM (HWC)", "OFM (HWC)", "#PE", "cycles")
	for _, r := range comp.LayerTable() {
		fmt.Printf("%-12s (%4d,%4d,%4d)  (%4d,%4d,%4d)  %5d %8d\n",
			r.Name, r.IFM[0], r.IFM[1], r.IFM[2], r.OFM[0], r.OFM[1], r.OFM[2], r.PEs, r.Cycles)
	}

	// Fig. 6a/6b: wdup+16 mapping under both schedulers. A coarse set
	// granularity keeps the charts readable.
	comp16, err := clsacim.Compile(model, clsacim.Config{
		ExtraPEs:          16,
		WeightDuplication: true,
		TargetSets:        26,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDuplication solution for x = 16 (paper: the first Conv2D layers):")
	for _, r := range comp16.LayerTable() {
		if r.Dup > 1 {
			fmt.Printf("  %-12s x%d (%d PEs each)\n", r.Name, r.Dup, r.PEs)
		}
	}
	for _, mode := range []clsacim.ScheduleMode{clsacim.ModeLayerByLayer, clsacim.ModeCrossLayer} {
		rep, err := comp16.Schedule(mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		if err := rep.RenderGantt(os.Stdout, 96); err != nil {
			log.Fatal(err)
		}
	}

	// Fig. 6c: the full combination sweep.
	fmt.Println("\nFig. 6c sweep (speedup and utilization vs layer-by-layer):")
	base, err := clsacim.Evaluate(model, clsacim.Config{}, clsacim.ModeLayerByLayer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-14s speedup %5.2fx  utilization %5.2f%%\n",
		"lbl", 1.0, base.Result.Utilization*100)
	type cfg struct {
		label string
		x     int
		wdup  bool
		mode  clsacim.ScheduleMode
	}
	sweep := []cfg{
		{"xinf", 0, false, clsacim.ModeCrossLayer},
		{"wdup+16 lbl", 16, true, clsacim.ModeLayerByLayer},
		{"wdup+32 lbl", 32, true, clsacim.ModeLayerByLayer},
		{"wdup+16 xinf", 16, true, clsacim.ModeCrossLayer},
		{"wdup+32 xinf", 32, true, clsacim.ModeCrossLayer},
	}
	for _, c := range sweep {
		ev, err := clsacim.Evaluate(model, clsacim.Config{
			ExtraPEs:          c.x,
			WeightDuplication: c.wdup,
		}, c.mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s speedup %5.2fx  utilization %5.2f%%\n",
			c.label, ev.Speedup, ev.Result.Utilization*100)
	}
	fmt.Println("\npaper reference: xinf utilization 4.1%; wdup+32 xinf utilization 28.4%, speedup 21.9x")
}
