package clsacim

import (
	"encoding/json"
	"fmt"

	"clsacim/internal/schedule"
)

// Request describes one evaluation: which model to run, how to map it
// (the sweep knobs of the paper's Fig. 6c/7), and how to schedule it.
// The architecture normally comes from the Engine's options; a Request
// only overlays the per-workload fields, so requests stay small and a
// sweep over (x, wdup) points shares one compiled baseline.
//
// Request round-trips through JSON (mode is encoded as "xinf"/"lbl"),
// so evaluation jobs can arrive over the wire:
//
//	{"model": "tinyyolov4", "mode": "xinf", "extra_pes": 32, "weight_duplication": true}
type Request struct {
	// Model names a builtin model (see Models) or one registered with
	// RegisterModel.
	Model string `json:"model"`
	// Mode selects the scheduling strategy (default ModeLayerByLayer).
	Mode ScheduleMode `json:"mode"`
	// ExtraPEs overlays Config.ExtraPEs when non-zero (the paper's x).
	ExtraPEs int `json:"extra_pes,omitempty"`
	// TotalPEs overlays Config.TotalPEs when non-zero.
	TotalPEs int `json:"total_pes,omitempty"`
	// WeightDuplication turns the wdup mapping on. (It cannot turn an
	// engine-wide default off; use Config for full control.)
	WeightDuplication bool `json:"weight_duplication,omitempty"`
	// Solver overlays Config.Solver when non-empty.
	Solver string `json:"solver,omitempty"`
	// SolverBudget overlays Config.SolverBudget when non-zero: the
	// evaluation budget of a scored solver such as "search".
	SolverBudget int `json:"solver_budget,omitempty"`
	// SolverSeed overlays Config.SolverSeed when non-zero: the RNG seed
	// of a scored solver.
	SolverSeed uint64 `json:"solver_seed,omitempty"`
	// Config, when non-nil, replaces the Engine's configuration
	// entirely (the overlay fields above still apply on top). Use it
	// when a request must control the architecture itself.
	Config *Config `json:"config,omitempty"`
	// TimeoutMillis bounds this request's wall-clock time when positive:
	// Evaluate/Schedule/Compile run under a context deadline of
	// TimeoutMillis milliseconds (in addition to whatever deadline the
	// caller's context already carries) and fail with
	// context.DeadlineExceeded when it expires. A compilation already
	// started is never abandoned mid-flight — the deadline is checked
	// between pipeline steps and while waiting on the cache — so a
	// timed-out request may still have warmed the cache for the next one.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// AllowDegraded opts this request into graceful degradation: when
	// TimeoutMillis is too tight for the full pipeline, Evaluate falls
	// back to the zero-alloc coarse simulation (SimulateCoarse) and
	// returns an Evaluation marked Degraded instead of failing with
	// context.DeadlineExceeded. Scalar metrics (makespan, latency,
	// utilization, speedup) are exact — the coarse path runs the same
	// event loop — but the result carries no timeline, so Gantt
	// rendering, critical paths, and the energy estimate are
	// unavailable. Degradation rescues only the request's own deadline;
	// a deadline or cancellation on the caller's context stays hard.
	// WithDegradation enables the fallback engine-wide.
	AllowDegraded bool `json:"allow_degraded,omitempty"`
}

// Validate checks the request against the process-wide registries
// without compiling anything.
func (r Request) Validate() error {
	if r.Model == "" {
		return fmt.Errorf("clsacim: request has no model")
	}
	if _, err := lookupModel(r.Model); err != nil {
		return err
	}
	if r.ExtraPEs < 0 {
		return fmt.Errorf("clsacim: request has negative ExtraPEs %d", r.ExtraPEs)
	}
	if r.TotalPEs < 0 {
		return fmt.Errorf("clsacim: request has negative TotalPEs %d", r.TotalPEs)
	}
	if r.TimeoutMillis < 0 {
		return fmt.Errorf("clsacim: request has negative TimeoutMillis %d", r.TimeoutMillis)
	}
	if r.Solver != "" {
		if err := checkSolver(r.Solver); err != nil {
			return err
		}
	}
	if r.SolverBudget < 0 {
		return fmt.Errorf("clsacim: request has negative SolverBudget %d", r.SolverBudget)
	}
	return nil
}

// BatchResult pairs one Request of an EvaluateBatch call with its
// outcome. Exactly one of Evaluation and Err is set.
type BatchResult struct {
	Request    Request
	Evaluation *Evaluation
	Err        error
}

// ParseMode resolves the scheduling-mode names: "xinf" (cross-layer
// inference), "lbl" (layer-by-layer), and the bounded-window family
// "x<K>" ("x1", "x2", "x4", ...), case-insensitive, with the aliases
// "cross-layer", "crosslayer", "layer-by-layer", and "layerbylayer".
// Unknown names return ErrUnknownMode.
func ParseMode(name string) (ScheduleMode, error) {
	p, err := schedule.ParseMode(name)
	if err != nil {
		return ScheduleMode{}, fmt.Errorf("%w %q (want lbl, xinf, or xK)", ErrUnknownMode, name)
	}
	switch {
	case p == schedule.CrossLayer:
		return ModeCrossLayer, nil
	case p == schedule.LayerByLayer:
		return ModeLayerByLayer, nil
	default:
		return ModeWindow(p.Window()), nil
	}
}

// wireName is the compact mode encoding used on the wire.
func (m ScheduleMode) wireName() string {
	switch {
	case m.w < 0:
		return "xinf"
	case m.w == 0:
		return "lbl"
	default:
		return fmt.Sprintf("x%d", m.w)
	}
}

// MarshalJSON encodes the mode by its wire name: "lbl", "xinf", or
// "x<K>" for bounded windows.
func (m ScheduleMode) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.wireName())
}

// UnmarshalJSON accepts the wire names understood by ParseMode ("lbl",
// "xinf", "x<K>", and their aliases) as well as the historical numeric
// enum values (0 = lbl, 1 = xinf) for compatibility.
func (m *ScheduleMode) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		parsed, perr := ParseMode(s)
		if perr != nil {
			return perr
		}
		*m = parsed
		return nil
	}
	var n int
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("clsacim: mode must be a string or integer: %w", err)
	}
	switch n {
	case 0:
		*m = ModeLayerByLayer
	case 1:
		*m = ModeCrossLayer
	default:
		return fmt.Errorf("%w %d", ErrUnknownMode, n)
	}
	return nil
}
