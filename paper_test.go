package clsacim

import (
	"testing"
)

// paper_test.go holds the reproduction regression: the headline numbers
// of the paper's evaluation (§V) must hold in shape — who wins, by
// roughly what factor — with tolerance bands around the published
// values. EXPERIMENTS.md records the exact measured values.

func evalCfg(t *testing.T, model string, x int, wdup bool, mode ScheduleMode) *Evaluation {
	t.Helper()
	m := load(t, model)
	ev, err := Evaluate(m, Config{ExtraPEs: x, WeightDuplication: wdup}, mode)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

// TestPaperFig6cXinfUtilization: pure cross-layer scheduling lifts
// TinyYOLOv4 utilization to ~4.1 % (paper Fig. 6c).
func TestPaperFig6cXinfUtilization(t *testing.T) {
	ev := evalCfg(t, "tinyyolov4", 0, false, ModeCrossLayer)
	ut := ev.Result.Utilization * 100
	if ut < 3.4 || ut > 5.0 {
		t.Errorf("TinyYOLOv4 xinf utilization %.2f%%, paper reports 4.1%%", ut)
	}
	// Baseline layer-by-layer utilization implied by the paper's Eq. 3
	// arithmetic is ~1.65 %.
	base := ev.Baseline.Utilization * 100
	if base < 1.4 || base > 1.9 {
		t.Errorf("baseline utilization %.2f%%, expected ~1.65%%", base)
	}
}

// TestPaperFig6cCombined: wdup+32 + xinf reaches ~28.4 % utilization and
// ~21.9x speedup on TinyYOLOv4 (paper Fig. 6c headline).
func TestPaperFig6cCombined(t *testing.T) {
	ev := evalCfg(t, "tinyyolov4", 32, true, ModeCrossLayer)
	ut := ev.Result.Utilization * 100
	if ut < 24 || ut > 33 {
		t.Errorf("TinyYOLOv4 wdup+32 xinf utilization %.2f%%, paper reports 28.4%%", ut)
	}
	if ev.Speedup < 18 || ev.Speedup > 26 {
		t.Errorf("TinyYOLOv4 wdup+32 xinf speedup %.1fx, paper reports 21.9x", ev.Speedup)
	}
}

// TestPaperFig7TinyYOLOv3Peak: the best combination peaks for
// TinyYOLOv3 (paper: 29.2x speedup, 20.1 % utilization — a 17.9x gain).
func TestPaperFig7TinyYOLOv3Peak(t *testing.T) {
	ev := evalCfg(t, "tinyyolov3", 32, true, ModeCrossLayer)
	if ev.Speedup < 20 || ev.Speedup > 33 {
		t.Errorf("TinyYOLOv3 wdup+32 xinf speedup %.1fx, paper reports 29.2x", ev.Speedup)
	}
	ut := ev.Result.Utilization * 100
	if ut < 14 || ut > 23 {
		t.Errorf("TinyYOLOv3 utilization %.2f%%, paper reports 20.1%%", ut)
	}
	if ev.UtilizationGain < 14 || ev.UtilizationGain > 25 {
		t.Errorf("utilization gain %.1fx, paper reports 17.9x", ev.UtilizationGain)
	}
}

// TestPaperFig7Ordering: for every benchmark the paper's ordering holds:
// wdup+xinf > xinf alone and wdup+xinf > wdup alone; everything beats
// the baseline.
func TestPaperFig7Ordering(t *testing.T) {
	models := []string{"tinyyolov3", "vgg16", "resnet50"}
	if testing.Short() {
		models = models[:1]
	}
	for _, model := range models {
		xinf := evalCfg(t, model, 0, false, ModeCrossLayer)
		wdup := evalCfg(t, model, 16, true, ModeLayerByLayer)
		both := evalCfg(t, model, 16, true, ModeCrossLayer)
		if xinf.Speedup <= 1 {
			t.Errorf("%s: xinf speedup %.2f <= 1", model, xinf.Speedup)
		}
		if wdup.Speedup <= 1 {
			t.Errorf("%s: wdup speedup %.2f <= 1", model, wdup.Speedup)
		}
		if both.Speedup <= xinf.Speedup || both.Speedup <= wdup.Speedup {
			t.Errorf("%s: combination %.2fx not best (xinf %.2fx, wdup %.2fx)",
				model, both.Speedup, xinf.Speedup, wdup.Speedup)
		}
	}
}

// TestPaperFig7SmallXBoost: "only x = 4 additional PEs are sufficient to
// outperform the pure xinf configuration by a factor of almost 2x ...
// even for ResNet152" (paper §V-B).
func TestPaperFig7SmallXBoost(t *testing.T) {
	xinf := evalCfg(t, "resnet152", 0, false, ModeCrossLayer)
	wdup4 := evalCfg(t, "resnet152", 4, true, ModeCrossLayer)
	ratio := wdup4.Speedup / xinf.Speedup
	if ratio < 1.5 {
		t.Errorf("ResNet152 wdup+4 xinf is only %.2fx over pure xinf, paper reports ~2x", ratio)
	}
}

// TestPaperFig7UtilizationDepthTrend: "as the model depth increases, the
// utilization decreases" across the ResNet family, and deep-model
// utilization stays below 10 % (paper §V-B).
func TestPaperFig7UtilizationDepthTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the full ResNet family; run without -short")
	}
	var uts []float64
	for _, model := range []string{"resnet50", "resnet101", "resnet152"} {
		ev := evalCfg(t, model, 16, true, ModeCrossLayer)
		uts = append(uts, ev.Result.Utilization*100)
		if ut := ev.Result.Utilization * 100; ut > 10 {
			t.Errorf("%s utilization %.2f%% above the paper's <10%% observation", model, ut)
		}
	}
	if !(uts[0] > uts[1] && uts[1] > uts[2]) {
		t.Errorf("utilization does not decrease with depth: %.2f / %.2f / %.2f",
			uts[0], uts[1], uts[2])
	}
}

// TestPaperWdupModestForLargeModels: weight duplication alone gives only
// modest speedups for large models because x <= 32 extra PEs are few
// compared to PEmin (paper reports 1.1-1.9x; our exact DP solver finds
// somewhat better solutions, so allow up to ~4x — still far from the
// combined configuration).
func TestPaperWdupModestForLargeModels(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles vgg19 and resnet101 with duplication; run without -short")
	}
	for _, model := range []string{"vgg19", "resnet101"} {
		wdup := evalCfg(t, model, 32, true, ModeLayerByLayer)
		if wdup.Speedup > 4.2 {
			t.Errorf("%s wdup+32 lbl speedup %.2fx implausibly high", model, wdup.Speedup)
		}
		if wdup.Speedup < 1.05 {
			t.Errorf("%s wdup+32 lbl speedup %.2fx: duplication had no effect", model, wdup.Speedup)
		}
		both := evalCfg(t, model, 32, true, ModeCrossLayer)
		if both.Speedup < 2*wdup.Speedup {
			t.Errorf("%s: combined %.2fx not clearly above wdup alone %.2fx",
				model, both.Speedup, wdup.Speedup)
		}
	}
}

// TestPaperFig6aDuplicationChoice: "for x = 16 additional PEs, the first
// 6 Conv2D layers need to be duplicated" (paper Fig. 6a).
func TestPaperFig6aDuplicationChoice(t *testing.T) {
	c, err := Compile(load(t, "tinyyolov4"), Config{ExtraPEs: 16, WeightDuplication: true})
	if err != nil {
		t.Fatal(err)
	}
	rows := c.LayerTable()
	for i, r := range rows {
		if i < 6 && r.Dup < 2 {
			t.Errorf("layer %d (%s) not duplicated at x=16", i, r.Name)
		}
		if i >= 6 && r.Dup != 1 {
			t.Errorf("layer %d (%s) duplicated at x=16 (d=%d)", i, r.Name, r.Dup)
		}
	}
}

// TestPaperEq3AcrossSweep: Eq. 3 consistency on the full Fig. 6c-style
// sweep.
func TestPaperEq3AcrossSweep(t *testing.T) {
	xs := []int{0, 4, 16, 32}
	if testing.Short() {
		xs = []int{0, 16} // one duplication-free and one duplicated point
	}
	for _, x := range xs {
		for _, mode := range []ScheduleMode{ModeLayerByLayer, ModeCrossLayer} {
			ev := evalCfg(t, "tinyyolov4", x, x > 0, mode)
			rel := (ev.Speedup - ev.Eq3Speedup) / ev.Speedup
			if rel < -0.01 || rel > 0.01 {
				t.Errorf("x=%d %v: Eq3 %.3f vs measured %.3f", x, mode, ev.Eq3Speedup, ev.Speedup)
			}
		}
	}
}
