package clsacim

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"clsacim/internal/check"
	"clsacim/internal/mapping"
	"clsacim/internal/metrics"
)

// Engine is the concurrency-safe entry point of the package: it holds
// an architecture description (set through Options), a keyed compile
// cache, and a bounded worker pool for batch evaluation.
//
// Compilation — frontend canonicalization, im2col analysis, duplication
// solving, Stage I-II — dominates the cost of an evaluation, and sweeps
// (many mapping points, one model) as well as services (many requests,
// few distinct configurations) repeat it needlessly with the one-shot
// Compile/Evaluate API. The Engine compiles each distinct
// (model, architecture, mapping) key exactly once and shares the
// immutable *Compiled across all subsequent requests; Stats exposes the
// hit accounting. All methods are safe for concurrent use.
//
// Two properties make the cache safe under sustained multi-tenant
// traffic (e.g. behind the serve package's HTTP daemon):
//
//   - Single-flight compilation: concurrent requests for the same key
//     share one compilation — the first requester compiles, everyone
//     else waits on it (honoring their context), so a burst of
//     identical requests costs one compile, not N.
//   - Bounded memory: WithCacheLimit caps the number of retained
//     compilations; beyond the cap, the least-recently-used finished
//     entry is evicted (Stats.Evictions counts them). In-flight
//     compilations are never evicted, so the bound can be exceeded
//     transiently while more than CacheLimit distinct keys compile at
//     once.
type Engine struct {
	base       Config
	workers    int
	validate   bool
	degraded   bool // WithDegradation: every request may degrade
	cacheLimit int  // 0 = unbounded

	mu    sync.Mutex
	cache map[string]*compileEntry
	lru   *list.List // *compileEntry values; front = most recently used

	compiles      atomic.Int64
	hits          atomic.Int64
	partialHits   atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
	evaluations   atomic.Int64
	degradedEvals atomic.Int64
	streamEvals   atomic.Int64
	streamInfs    atomic.Int64
}

// compileEntry is a cache slot with single-flight semantics: the first
// requester compiles, everyone else waits on ready.
type compileEntry struct {
	key   string
	ready chan struct{}
	c     *Compiled
	err   error

	// done is set just before ready is closed; the eviction scan reads
	// it under Engine.mu to skip in-flight entries without blocking.
	done bool
	// elem is the entry's LRU position, nil once evicted. Guarded by
	// Engine.mu.
	elem *list.Element
}

// New builds an Engine from functional options. The zero option set
// reproduces the paper's case-study architecture (256x256 crossbars,
// tMVM = 1400 ns, idealized data movement).
func New(opts ...Option) (*Engine, error) {
	e := &Engine{
		workers: runtime.GOMAXPROCS(0),
		cache:   make(map[string]*compileEntry),
		lru:     list.New(),
	}
	for _, opt := range opts {
		if err := opt(e); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// MustNew is New panicking on error, for initialization of harnesses
// and tests where the options are static.
func MustNew(opts ...Option) *Engine {
	e, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return e
}

// Stats is a snapshot of the Engine's cache and work accounting.
type Stats struct {
	// Compiles counts full pipeline compilations actually executed —
	// one per distinct (model, architecture, mapping) key requested.
	Compiles int64
	// CacheHits counts compile requests served from the cache
	// (including requests that waited on an in-flight compilation).
	CacheHits int64
	// PartialHits counts the cache hits that still ran Stage III/IV
	// because the requested scheduling mode had no cached timeline yet —
	// the incremental re-simulation path (compile reused, event loop
	// re-run). CacheHits - PartialHits are full hits serving both the
	// compilation and the timeline from cache.
	PartialHits int64
	// CacheMisses counts compile requests that had to compile.
	CacheMisses int64
	// Evictions counts cached compilations dropped by the LRU bound
	// (see WithCacheLimit). Always 0 on an unbounded engine.
	Evictions int64
	// Evaluations counts completed Evaluate calls, including degraded
	// ones; DegradedEvaluations counts the subset served by the coarse
	// fast path because the request's deadline was too tight for the
	// full pipeline (see Request.AllowDegraded).
	Evaluations         int64
	DegradedEvaluations int64
	// StreamEvaluations counts completed EvaluateStream calls, and
	// StreamInferences the total inferences they served.
	StreamEvaluations int64
	StreamInferences  int64
	// CachedEntries is the current number of cached compilations.
	CachedEntries int
	// CacheLimit is the configured bound on CachedEntries (0 =
	// unbounded).
	CacheLimit int
}

// Stats returns a consistent-enough snapshot of the Engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	entries := len(e.cache)
	e.mu.Unlock()
	return Stats{
		Compiles:            e.compiles.Load(),
		CacheHits:           e.hits.Load(),
		PartialHits:         e.partialHits.Load(),
		CacheMisses:         e.misses.Load(),
		Evictions:           e.evictions.Load(),
		Evaluations:         e.evaluations.Load(),
		DegradedEvaluations: e.degradedEvals.Load(),
		StreamEvaluations:   e.streamEvals.Load(),
		StreamInferences:    e.streamInfs.Load(),
		CachedEntries:       entries,
		CacheLimit:          e.cacheLimit,
	}
}

// effective resolves the Config a request compiles under: the request's
// full Config override if present (else the Engine defaults), with the
// request's non-zero mapping fields overlaid.
func (e *Engine) effective(req Request) Config {
	cfg := e.base
	if req.Config != nil {
		cfg = *req.Config
	}
	if req.ExtraPEs != 0 {
		cfg.ExtraPEs = req.ExtraPEs
	}
	if req.TotalPEs != 0 {
		cfg.TotalPEs = req.TotalPEs
	}
	if req.WeightDuplication {
		cfg.WeightDuplication = true
	}
	if req.Solver != "" {
		cfg.Solver = req.Solver
	}
	if req.SolverBudget != 0 {
		cfg.SolverBudget = req.SolverBudget
	}
	if req.SolverSeed != 0 {
		cfg.SolverSeed = req.SolverSeed
	}
	// A scored solver optimizes the makespan of a concrete scheduling
	// mode; absent an explicit choice, optimize for the mode the request
	// will actually be scheduled under.
	if cfg.WeightDuplication && cfg.SolverMode == "" && mapping.IsScored(cfg.Solver) {
		cfg.SolverMode = req.Mode.Name()
	}
	return cfg
}

// normalizeCfg canonicalizes a Config for cache keying and returns the
// ExtraPEs the caller must re-apply as a derived view (withExtraPEs).
// Configs are defaulted first so that e.g. Config{} and
// Config{PERows: 256, PECols: 256} share an entry, and
// compile-irrelevant fields are normalized away:
//
//   - Without weight duplication the solver never runs, so all solver
//     names map to the same no-duplication compilation — a solver
//     comparison sweep shares one baseline.
//   - Without weight duplication (and without TotalPEs), extra PEs sit
//     idle: every Stage I-III artifact and every timeline is identical
//     for any ExtraPEs >= 0, so the whole x sweep folds onto the x = 0
//     compilation and is served through F-adjusted views. NoC routing
//     disables this fold — the mesh shape (and with it every hop
//     distance on dependency edges) derives from the PE count.
func normalizeCfg(cfg Config) (Config, int) {
	cfg = cfg.withDefaults()
	// Scored-solver knobs influence compilation only when a scored
	// solver actually runs; otherwise they are cleared so e.g. a dp
	// request with a stray seed shares the plain dp entry. When they do
	// apply, the scoring mode is canonicalized to its wire name (default
	// "xinf") so aliases share an entry.
	if cfg.WeightDuplication && mapping.IsScored(cfg.Solver) {
		if cfg.SolverMode == "" {
			cfg.SolverMode = ModeCrossLayer.wireName()
		} else if m, err := ParseMode(cfg.SolverMode); err == nil {
			cfg.SolverMode = m.wireName()
		}
	} else {
		cfg.SolverBudget, cfg.SolverSeed, cfg.SolverMode = 0, 0, ""
	}
	if !cfg.WeightDuplication {
		cfg.Solver = "none"
		if cfg.TotalPEs == 0 && cfg.ExtraPEs > 0 && cfg.NoCCyclesPerHop <= 0 {
			x := cfg.ExtraPEs
			cfg.ExtraPEs = 0
			return cfg, x
		}
	}
	return cfg, 0
}

// cacheKey canonicalizes a (model, config) pair via normalizeCfg.
func cacheKey(model string, cfg Config) (string, error) {
	cfg, _ = normalizeCfg(cfg)
	b, err := json.Marshal(cfg)
	if err != nil {
		return "", fmt.Errorf("clsacim: encoding cache key: %w", err)
	}
	return model + "\x00" + string(b), nil
}

// compile returns the cached compilation of (m, cfg), compiling at most
// once per key (single-flight).
func (e *Engine) compile(ctx context.Context, m *Model, cfg Config) (*Compiled, error) {
	c, _, err := e.compileCounted(ctx, m, cfg)
	return c, err
}

// compileCounted is compile exposing whether the request was served
// from the cache (hit = true includes waiting on an in-flight
// compilation) — the input of the partial-hit accounting. Waiters honor
// ctx; the compilation itself runs to completion once started so late
// arrivals can still use it. With a cache limit set, finishing a
// compilation may evict the least-recently-used finished entries beyond
// the bound.
//
// Keys are normalized (normalizeCfg): a no-duplication ExtraPEs request
// compiles the x = 0 base once and returns a derived F-view of it.
func (e *Engine) compileCounted(ctx context.Context, m *Model, cfg Config) (*Compiled, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	norm, extra := normalizeCfg(cfg)
	b, err := json.Marshal(norm)
	if err != nil {
		return nil, false, fmt.Errorf("clsacim: encoding cache key: %w", err)
	}
	key := m.Name + "\x00" + string(b)
	view := func(c *Compiled) *Compiled {
		if extra > 0 && c != nil {
			return c.withExtraPEs(extra)
		}
		return c
	}
	e.mu.Lock()
	ent, ok := e.cache[key]
	if ok {
		e.hits.Add(1)
		if ent.elem != nil {
			e.lru.MoveToFront(ent.elem)
		}
		e.mu.Unlock()
		select {
		case <-ent.ready:
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
		return view(ent.c), true, ent.err
	}
	e.misses.Add(1)
	ent = &compileEntry{key: key, ready: make(chan struct{})}
	ent.elem = e.lru.PushFront(ent)
	e.cache[key] = ent
	e.evictLocked()
	e.mu.Unlock()

	e.compiles.Add(1)
	// Close ready even if Compile panics (e.g. inside a custom solver):
	// a never-closed entry would block every later request for this key
	// forever once a recover() higher up keeps the process alive.
	defer func() {
		if ent.err == nil && ent.c == nil {
			ent.err = fmt.Errorf("clsacim: compiling %q panicked", m.Name)
		}
		e.mu.Lock()
		ent.done = true
		// The in-flight guard may have held the cache over its bound
		// while this key compiled; re-run the scan now that the entry
		// is evictable.
		e.evictLocked()
		e.mu.Unlock()
		close(ent.ready)
	}()
	ent.c, ent.err = Compile(m, norm)
	return view(ent.c), false, ent.err
}

// evictLocked drops least-recently-used finished entries until the
// cache respects the configured bound. In-flight compilations are
// skipped: evicting one would detach its waiters from the single-flight
// slot and recompile the same key concurrently. Callers hold e.mu.
func (e *Engine) evictLocked() {
	if e.cacheLimit <= 0 {
		return
	}
	for el := e.lru.Back(); el != nil && len(e.cache) > e.cacheLimit; {
		ent := el.Value.(*compileEntry)
		prev := el.Prev()
		if ent.done {
			delete(e.cache, ent.key)
			e.lru.Remove(el)
			ent.elem = nil
			e.evictions.Add(1)
		}
		el = prev
	}
}

// requestCtx derives the context a request runs under: ctx bounded by
// the request's own deadline when TimeoutMillis is set. Values too
// large to represent as a time.Duration are clamped to the maximum
// rather than overflowing into an already-expired deadline. The
// returned cancel func must always be called.
func requestCtx(ctx context.Context, req Request) (context.Context, context.CancelFunc) {
	if req.TimeoutMillis > 0 {
		ms := req.TimeoutMillis
		if ms > math.MaxInt64/int64(time.Millisecond) {
			ms = math.MaxInt64 / int64(time.Millisecond)
		}
		return context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
	}
	return ctx, func() {}
}

// deadlineErr reports whether ctx is done or its deadline has already
// passed. The wall-clock comparison matters: context timers fire
// asynchronously and can lag a blown deadline by milliseconds, and the
// degraded-mode decision ("is there time left for the full pipeline?")
// must not depend on timer delivery.
func deadlineErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if dl, ok := ctx.Deadline(); ok && !time.Now().Before(dl) {
		return context.DeadlineExceeded
	}
	return nil
}

// compileRequest resolves the request's model and compiles it (cached)
// under the request's effective configuration and deadline. hit reports
// whether the compilation came from the cache. The returned context
// carries the deadline for the caller's later steps; cancel must always
// be called.
func (e *Engine) compileRequest(ctx context.Context, req Request) (*Compiled, bool, context.Context, context.CancelFunc, error) {
	m, err := lookupModel(req.Model)
	if err != nil {
		return nil, false, ctx, func() {}, err
	}
	ctx, cancel := requestCtx(ctx, req)
	c, hit, err := e.compileCounted(ctx, m, e.effective(req))
	return c, hit, ctx, cancel, err
}

// Compile resolves the request's model and returns its (cached)
// compilation under the request's effective configuration.
func (e *Engine) Compile(ctx context.Context, req Request) (*Compiled, error) {
	c, _, ctx, cancel, err := e.compileRequest(ctx, req)
	defer cancel()
	if err != nil {
		return nil, err
	}
	// A compilation that ran past the request deadline still lands in
	// the cache for later requests, but this caller asked for a bound
	// and must see the expiry — same contract as Schedule/Evaluate.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

// notePartial records a compile-cache hit that still has to run Stage
// III/IV because the requested canonical mode has no cached timeline
// yet. Callers invoke it (on hit) before scheduling; the check races
// benignly with concurrent builders of the same timeline — a request
// that loses that race did wait on scheduling work, which is exactly
// what the counter measures.
func (e *Engine) notePartial(comp *Compiled, mode ScheduleMode) {
	if !comp.hasTimeline(mode) {
		e.partialHits.Add(1)
	}
}

// Schedule compiles (cached) and schedules the request, returning the
// paper's per-configuration report.
func (e *Engine) Schedule(ctx context.Context, req Request) (*Report, error) {
	comp, hit, ctx, cancel, err := e.compileRequest(ctx, req)
	defer cancel()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if hit {
		e.notePartial(comp, req.Mode)
	}
	rep, err := comp.Schedule(req.Mode)
	if err != nil {
		return nil, err
	}
	if err := e.checkReport(rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// checkReport runs the engine-independent invariant checker on a
// scheduled report when WithValidation is on. Timelines are immutable
// once cached on the Compiled, so each (compilation, canonical mode)
// pair is validated at most once even across batch sweeps that rescore
// the same baseline per point.
func (e *Engine) checkReport(rep *Report) error {
	if !e.validate {
		return nil
	}
	if rep.sched == nil {
		// Degraded reports carry no timeline; the coarse event loop is
		// covered by the simulator's own equivalence tests.
		return nil
	}
	comp := rep.comp
	key := comp.normalizeMode(rep.Mode).wireName()
	comp.sched.mu.Lock()
	done := comp.sched.checked[key]
	comp.sched.mu.Unlock()
	if done {
		return nil
	}
	tl := rep.sched
	opt := comp.schedOptions(rep.Mode)
	if err := check.Timeline(comp.mapped, comp.depGraph, tl.Policy, tl, check.Options{EdgeCost: opt.EdgeCost}); err != nil {
		return fmt.Errorf("clsacim: %q %s timeline failed validation: %w", rep.Model, rep.Mode, err)
	}
	comp.sched.mu.Lock()
	comp.sched.checked[key] = true
	comp.sched.mu.Unlock()
	return nil
}

// Evaluate compiles and schedules the request and measures it against
// the paper's reference (layer-by-layer, no duplication, F = PEmin).
// Both compilations go through the Engine cache, so a sweep over
// mapping points compiles the shared baseline once.
func (e *Engine) Evaluate(ctx context.Context, req Request) (*Evaluation, error) {
	m, err := lookupModel(req.Model)
	if err != nil {
		return nil, err
	}
	return e.evaluate(ctx, m, req)
}

// EvaluateModel is Evaluate for a *Model held directly (e.g. built with
// Builder but not registered). The compile cache is keyed by the
// model's Name, so distinct models sharing an Engine must carry
// distinct names.
func (e *Engine) EvaluateModel(ctx context.Context, m *Model, req Request) (*Evaluation, error) {
	if m == nil {
		return nil, fmt.Errorf("clsacim: nil model")
	}
	return e.evaluate(ctx, m, req)
}

// baselineCfg derives the paper's reference configuration from an
// effective request config: layer-by-layer on F = PEmin without
// duplication.
func baselineCfg(cfg Config) Config {
	cfg.ExtraPEs = 0
	cfg.TotalPEs = 0
	cfg.WeightDuplication = false
	return cfg
}

func (e *Engine) evaluate(ctx context.Context, m *Model, req Request) (*Evaluation, error) {
	degradable := e.degradable(req)
	rctx, cancel := requestCtx(ctx, req)
	defer cancel()
	// A degradable request compiles under the caller's context alone:
	// its own deadline (TimeoutMillis) must not abort the compilation
	// it intends to salvage a coarse result from. The caller's own
	// deadline or cancellation stays hard either way.
	cctx := rctx
	if degradable {
		cctx = ctx
	}
	cfg := e.effective(req)
	baseComp, baseHit, err := e.compileCounted(cctx, m, baselineCfg(cfg))
	if err != nil {
		return nil, err
	}
	comp, hit, err := e.compileCounted(cctx, m, cfg)
	if err != nil {
		return nil, err
	}
	if err := deadlineErr(rctx); err != nil {
		// The deadline was too tight for the full pipeline; the coarse
		// fast path can still produce exact scalar metrics from the
		// finished compilations.
		if degradable && errors.Is(err, context.DeadlineExceeded) {
			return e.evaluateDegraded(baseComp, comp, req.Mode)
		}
		return nil, err
	}
	if baseHit {
		e.notePartial(baseComp, ModeLayerByLayer)
	}
	baseline, err := baseComp.Schedule(ModeLayerByLayer)
	if err != nil {
		return nil, err
	}
	if err := e.checkReport(baseline); err != nil {
		return nil, err
	}
	if hit {
		e.notePartial(comp, req.Mode)
	}
	result, err := comp.Schedule(req.Mode)
	if err != nil {
		return nil, err
	}
	if err := e.checkReport(result); err != nil {
		return nil, err
	}
	e.evaluations.Add(1)
	return newEvaluation(baseline, result, comp), nil
}

// degradable reports whether a request may fall back to the coarse
// fast path on deadline expiry: its own opt-in or the engine-wide
// WithDegradation.
func (e *Engine) degradable(req Request) bool {
	return req.AllowDegraded || e.degraded
}

// evaluateDegraded serves an evaluation through the coarse simulator:
// exact scalar metrics (makespan, latency, utilization, speedup) with
// no materialized timeline. Both reports and the Evaluation are marked
// Degraded. Virtualized compilations cannot degrade — the coarse loop
// does not model crossbar reprogramming — and fail with the deadline
// instead.
func (e *Engine) evaluateDegraded(baseComp, comp *Compiled, mode ScheduleMode) (*Evaluation, error) {
	if baseComp.virtual != nil || comp.virtual != nil {
		return nil, context.DeadlineExceeded
	}
	baseline, err := baseComp.ScheduleCoarse(ModeLayerByLayer)
	if err != nil {
		return nil, err
	}
	result, err := comp.ScheduleCoarse(mode)
	if err != nil {
		return nil, err
	}
	e.evaluations.Add(1)
	e.degradedEvals.Add(1)
	ev := newEvaluation(baseline, result, comp)
	ev.Degraded = true
	return ev, nil
}

// runPool runs fn(0..n-1) on the Engine's bounded worker pool.
func (e *Engine) runPool(n int, fn func(int)) {
	workers := e.workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// EvaluateBatch evaluates requests concurrently on a worker pool
// bounded by WithWorkers (default GOMAXPROCS). Results are positionally
// aligned with reqs; per-request failures land in BatchResult.Err
// rather than aborting the batch. The returned error is non-nil only
// when ctx was cancelled, in which case unprocessed requests carry the
// context error.
//
// The batch is sweep-structured: requests are first grouped by their
// compile keys (model, architecture, mapping, granularity — baseline
// and variant alike), each distinct key compiles exactly once on the
// worker pool, and only then does the per-request scheduling work fan
// out. A sweep of N points over K distinct configurations probes the
// compile cache K times instead of 2N; cache accounting stays exactly
// as if the requests had run serially (each deduplicated reference
// counts as the hit it would have been).
func (e *Engine) EvaluateBatch(ctx context.Context, reqs []Request) ([]BatchResult, error) {
	out := make([]BatchResult, len(reqs))
	if len(reqs) == 0 {
		return out, nil
	}
	// Phase 1: resolve models, normalize configs, deduplicate compile
	// jobs. A job's probe (its first referencing request) carries the
	// hit/miss accounting, but the compile itself runs under the batch
	// context: per-request deadlines apply only to that request's own
	// result slot, so one short-timeout request can never poison
	// co-batched requests sharing its compile key.
	type compileJob struct {
		m    *Model
		cfg  Config // normalized (ExtraPEs folded out)
		comp *Compiled
		hit  bool
		err  error
	}
	type reqPlan struct {
		err        error
		base, vari *compileJob
		baseFirst  bool // this request's probe compiles the baseline key
		variFirst  bool
		variX      int // ExtraPEs to re-apply as an F-view
	}
	jobs := make(map[string]*compileJob)
	var order []*compileJob
	plan := make([]reqPlan, len(reqs))
	// Per-request deadline clocks start now, before the compile fan-out,
	// so a request's TimeoutMillis covers its share of waiting on shared
	// compilations (as it would when calling Evaluate directly).
	rctxs := make([]context.Context, len(reqs))
	for i, req := range reqs {
		var cancel context.CancelFunc
		rctxs[i], cancel = requestCtx(ctx, req)
		defer cancel()
		m, err := lookupModel(req.Model)
		if err != nil {
			plan[i].err = err
			continue
		}
		cfg := e.effective(req)
		for slot, c := range [2]Config{baselineCfg(cfg), cfg} {
			norm, extra := normalizeCfg(c)
			b, err := json.Marshal(norm)
			if err != nil {
				plan[i].err = fmt.Errorf("clsacim: encoding cache key: %w", err)
				break
			}
			key := m.Name + "\x00" + string(b)
			j, ok := jobs[key]
			if !ok {
				j = &compileJob{m: m, cfg: norm}
				jobs[key] = j
				order = append(order, j)
			}
			if slot == 0 {
				plan[i].base, plan[i].baseFirst = j, !ok
			} else {
				plan[i].vari, plan[i].variFirst, plan[i].variX = j, !ok, extra
			}
		}
	}
	// Phase 2: compile each distinct key once, fanned over the pool,
	// under the batch context — a key may serve many requests with
	// different deadlines, so no individual deadline may abort it.
	e.runPool(len(order), func(k int) {
		j := order[k]
		j.comp, j.hit, j.err = e.compileCounted(ctx, j.m, j.cfg)
	})
	// Phase 3: per-request scheduling, fanned over the pool.
	e.runPool(len(reqs), func(i int) {
		out[i].Request = reqs[i]
		p := plan[i]
		if p.err != nil {
			out[i].Err = p.err
			return
		}
		// Every reference beyond a key's compiling probe is a cache hit.
		if !p.baseFirst {
			e.hits.Add(1)
		}
		if !p.variFirst {
			e.hits.Add(1)
		}
		if err := ctx.Err(); err != nil {
			out[i].Err = err
			return
		}
		if p.base.err != nil {
			out[i].Err = p.base.err
			return
		}
		if p.vari.err != nil {
			out[i].Err = p.vari.err
			return
		}
		baseComp := p.base.comp
		comp := p.vari.comp
		if p.variX > 0 {
			comp = comp.withExtraPEs(p.variX)
		}
		if err := deadlineErr(rctxs[i]); err != nil {
			// The shared compilations exist (phase 2 runs under the
			// batch context), so a degradable request whose own deadline
			// expired can still be served coarsely.
			if e.degradable(reqs[i]) && errors.Is(err, context.DeadlineExceeded) {
				out[i].Evaluation, out[i].Err = e.evaluateDegraded(baseComp, comp, reqs[i].Mode)
				return
			}
			out[i].Err = err
			return
		}
		if p.base.hit || !p.baseFirst {
			e.notePartial(baseComp, ModeLayerByLayer)
		}
		if p.vari.hit || !p.variFirst {
			e.notePartial(comp, reqs[i].Mode)
		}
		baseline, err := baseComp.Schedule(ModeLayerByLayer)
		if err != nil {
			out[i].Err = err
			return
		}
		if err := e.checkReport(baseline); err != nil {
			out[i].Err = err
			return
		}
		result, err := comp.Schedule(reqs[i].Mode)
		if err != nil {
			out[i].Err = err
			return
		}
		if err := e.checkReport(result); err != nil {
			out[i].Err = err
			return
		}
		e.evaluations.Add(1)
		out[i].Evaluation = newEvaluation(baseline, result, comp)
	})
	return out, ctx.Err()
}

// newEvaluation assembles the comparison metrics shared by Evaluate and
// Engine.Evaluate.
func newEvaluation(baseline, result *Report, comp *Compiled) *Evaluation {
	x := comp.TotalPEs() - comp.PEmin()
	return &Evaluation{
		Baseline:        baseline,
		Result:          result,
		Speedup:         metrics.Speedup(baseline.MakespanCycles, result.MakespanCycles),
		UtilizationGain: result.Utilization / baseline.Utilization,
		Eq3Speedup:      metrics.Eq3Speedup(result.Utilization, baseline.Utilization, comp.PEmin(), x),
	}
}
